// Quickstart: the paper's Figure 1 in code — rank five servers with
// the GreenPerf metric, place seven tasks greedily, inspect how the
// Eq. 6 score reorders servers as the user preference moves between
// performance and energy efficiency, and apply Algorithm 1 to cap the
// candidate set under a provider preference.
package main

import (
	"fmt"

	"greensched/internal/core"
	"greensched/internal/provision"
)

func main() {
	// Five heterogeneous servers (Figure 1's S0..S4): S0 is the most
	// energy-efficient under GreenPerf, S4 the fastest but hungriest.
	servers := []core.Server{
		{Name: "S0", Flops: 4e9, PowerW: 60, Active: true},
		{Name: "S1", Flops: 6e9, PowerW: 105, Active: true},
		{Name: "S2", Flops: 8e9, PowerW: 180, Active: true},
		{Name: "S3", Flops: 9e9, PowerW: 270, Active: true},
		{Name: "S4", Flops: 10e9, PowerW: 400, Active: true},
	}

	fmt.Println("GreenPerf ranking (W per flop/s, lower is better):")
	for _, s := range core.Rank(servers, core.ByGreenPerf()) {
		fmt.Printf("  %s  %.1f nW/flops\n", s.Name, s.GreenPerf()*1e9)
	}

	// Figure 1: 7 tasks placed on the most efficient servers first.
	slots := map[string]int{"S0": 2, "S1": 2, "S2": 1, "S3": 1, "S4": 1}
	fmt.Println("\nFigure 1 placement (7 tasks, greedy by GreenPerf):")
	for _, a := range core.PlaceGreedy(servers, core.ByGreenPerf(), 7, slots) {
		fmt.Printf("  task %d -> %s\n", a.Task, a.Server)
	}

	// Eq. 6 score sweep: the same servers, reordered by preference.
	ops := 1e12
	fmt.Println("\nBest server by Eq. 6 score as Preference_user varies:")
	for _, pref := range []core.UserPref{core.PrefMaxPerformance, core.PrefNone, core.PrefMaxEfficiency} {
		best := core.Rank(servers, core.ByScore(ops, pref))[0]
		fmt.Printf("  P=%+.1f  ->  %s (score exponent %.2f)\n",
			float64(pref), best.Name, core.ScoreExponent(pref))
	}

	// Eq. 1 + Algorithm 1: a provider preference caps the accumulated
	// power of the candidate set.
	pp := core.DefaultProviderPref
	provider := pp.Eval(0.6 /*utilization*/, 0.8 /*electricity cost*/)
	candidates := core.SelectCandidates(core.Rank(servers, core.ByGreenPerf()), provider)
	fmt.Printf("\nProvider preference %.2f selects %d candidate servers:", provider, len(candidates))
	for _, c := range candidates {
		fmt.Printf(" %s", c.Name)
	}
	fmt.Println()

	// Figure 8: the provisioning-plan record the scheduler polls.
	plan := &provision.Plan{Records: []provision.Record{{
		Value: 1385896446, Temperature: 23.5, Candidates: 8, Cost: 0.6,
	}}}
	xml, err := plan.MarshalIndent()
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nProvisioning plan sample (Figure 8):\n%s\n", xml)
}
