// Multi-seed replication of the paper's Table II: rerun the §IV-A
// placement experiment across several seeds and report each headline
// claim as mean ± 95% confidence interval, plus Welch t-tests showing
// the POWER/RANDOM energy separation is not a seeding artifact. The
// paper publishes single-run numbers; on a deterministic simulator we
// can check the claims as populations.
package main

import (
	"flag"
	"fmt"
	"os"

	"greensched/internal/experiments"
)

func main() {
	seeds := flag.Int("seeds", 5, "number of independent runs")
	flag.Parse()

	cfg := experiments.DefaultReplicationConfig()
	cfg.Seeds = *seeds
	res, err := experiments.RunReplication(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := res.Render(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
