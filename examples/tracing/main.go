// Distributed tracing end to end: a TCP fleet where the master, the
// transport handles AND the SED daemons all emit spans into one JSONL
// stream, stitched into per-request hop trees purely by the trace
// context the Request carries across the gob wire:
//
//	submit
//	├─ elect ─ estimate ─ encode/decode     (estimation fan-out per level)
//	└─ dispatch                             (the elected SED's round trip)
//	   ├─ queue / solve                     (emitted by the SED itself)
//	   └─ reply                             (wire-return residual)
//
// After the run the program re-reads its own span file, requires every
// request's tree to carry the full canonical lifecycle (the same gate
// `greensched spans -check` applies), and self-scrapes /metrics to
// assert the spans also fed the greensched_stage_seconds histograms.
// It exits non-zero if any invariant fails, which is how CI uses it as
// a tracing smoke test; pipe the file it writes through
// `greensched spans` for percentiles and critical paths.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"greensched/internal/middleware"
	"greensched/internal/obs"
	"greensched/internal/sched"
)

func main() {
	out := flag.String("out", "spans.jsonl", "span JSONL file to write")
	flag.Parse()
	if err := run(*out); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(out string) error {
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	// ONE writer shared by every component in the process; across real
	// processes each daemon would write its own file and the streams
	// concatenate (stitching is by ID, not by position).
	spans := obs.NewSpanWriter(f)

	mkSED := func(name string, speed, watts float64) (*middleware.SED, error) {
		sed, err := middleware.NewSED(middleware.SEDConfig{
			Name:  name,
			Slots: 2,
			Meter: func() (float64, bool) { return watts, true },
			Spans: spans, // the SED emits its own queue/solve spans
		})
		if err != nil {
			return nil, err
		}
		sed.Register(middleware.Service{
			Name: "burn",
			Solve: func(ctx context.Context, req middleware.Request) ([]byte, error) {
				time.Sleep(time.Duration(req.Ops / speed * float64(time.Second)))
				return []byte("done"), nil
			},
		})
		return sed, nil
	}

	opts := []middleware.Option{
		middleware.WithPolicy(sched.New(sched.GreenPerf)),
		middleware.WithSpans(spans),
		middleware.WithInterceptors(&middleware.ObsInterceptor{}),
		middleware.WithMetricsAddr("127.0.0.1:0"),
	}
	for _, s := range []struct {
		name         string
		speed, watts float64
	}{{"lean", 10e6, 80}, {"hungry", 30e6, 320}} {
		sed, err := mkSED(s.name, s.speed, s.watts)
		if err != nil {
			return err
		}
		ep, err := middleware.Serve("127.0.0.1:0", sed, sed)
		if err != nil {
			return err
		}
		defer ep.Close()
		rem := middleware.Dial(s.name, ep.Addr())
		rem.SetSpans(spans) // the transport emits dial/encode/decode spans
		defer rem.Close()
		opts = append(opts, middleware.WithRemotes(rem))
		fmt.Printf("SED %-6s listening on %s\n", s.name, ep.Addr())
	}

	m, err := middleware.NewMaster(opts...)
	if err != nil {
		return err
	}
	defer m.Close()

	const n = 8
	for i := 0; i < n; i++ {
		resp, err := m.Do(context.Background(), middleware.Request{Service: "burn", Ops: 1e6})
		if err != nil {
			return err
		}
		fmt.Printf("request %d -> %s\n", i, resp.Server)
	}

	// Re-read our own stream and apply the `greensched spans -check`
	// gate: every request's hop tree must be complete.
	in, err := os.Open(out)
	if err != nil {
		return err
	}
	defer in.Close()
	all, err := obs.ReadSpans(in)
	if err != nil {
		return fmt.Errorf("span stream does not parse: %w", err)
	}
	rep := obs.AnalyzeSpans(all)
	if len(rep.Traces) != n {
		return fmt.Errorf("%d traces for %d requests", len(rep.Traces), n)
	}
	if err := rep.RequireStages(obs.CanonicalStages...); err != nil {
		return err
	}
	fmt.Printf("\nall %d hop trees carry the full %v lifecycle\n\n", len(rep.Traces), obs.CanonicalStages)
	if err := rep.Render(os.Stdout); err != nil {
		return err
	}

	// The same spans fed the stage histograms: self-scrape /metrics
	// like Prometheus would and check the submit count books every
	// request, next to the Go runtime collector's process gauges.
	resp, err := http.Get("http://" + m.MetricsAddr() + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	samples, err := obs.ParseText(resp.Body)
	if err != nil {
		return fmt.Errorf("self-scrape does not parse: %w", err)
	}
	for _, stage := range obs.CanonicalStages {
		v, ok := samples.Value("greensched_stage_seconds_count", "src=master", "stage="+stage)
		if !ok || v != n {
			return fmt.Errorf("greensched_stage_seconds_count{stage=%s} = %v, want %d", stage, v, n)
		}
	}
	if v, ok := samples.Value("greensched_go_goroutines"); !ok || v <= 0 {
		return fmt.Errorf("greensched_go_goroutines = %v, want > 0", v)
	}
	fmt.Printf("\nstage histograms agree: %d observations per lifecycle stage on /metrics\n", n)
	fmt.Printf("spans written to %s (analyze with 'greensched spans -check %s')\n", out, out)
	return nil
}
