// Fleet observability end to end: the live composed study runs with
// an obs.Registry and a lifecycle tracer attached, serves its own
// /metrics endpoint, scrapes itself over HTTP, and asserts that the
// scraped counters agree EXACTLY with the study's finalized ledger —
// the property that makes the telemetry trustworthy:
//
//   - greensched_requests_total{transport=...} == LiveResult.Submitted
//     for each transport, with at least one rejection and one carbon
//     deferral on the books;
//   - greensched_budget_spent_joules == greensched_energy_joules: the
//     budget tracker metered every attributed joule, as seen through
//     two independent metric families;
//   - the JSONL lifecycle trace from the LIVE masters and from a
//     simulated run (sim.TraceModule) carry the same event schema, so
//     one analysis pipeline reads both.
//
// The program exits non-zero if any invariant fails, which is how CI
// uses it as an observability smoke test.
package main

import (
	"fmt"
	"net/http"
	"os"
	"strings"

	"greensched/internal/cluster"
	"greensched/internal/experiments"
	"greensched/internal/obs"
	"greensched/internal/sched"
	"greensched/internal/sim"
	"greensched/internal/workload"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func main() {
	// 1. Run the composed live study with telemetry attached and its
	// own metrics listener up.
	cfg := experiments.DefaultLiveComposedConfig()
	cfg.Registry = obs.NewRegistry()
	var liveTrace strings.Builder
	cfg.TraceW = &liveTrace

	srv, err := obs.ListenAndServe("127.0.0.1:0", cfg.Registry)
	if err != nil {
		fail(err)
	}
	defer srv.Close()
	fmt.Printf("metrics endpoint: http://%s/metrics\n", srv.Addr())

	res, err := experiments.RunLiveComposedStudy(cfg)
	if err != nil {
		fail(err)
	}

	// 2. Scrape ourselves over real HTTP, like Prometheus would.
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		fail(err)
	}
	samples, err := obs.ParseText(resp.Body)
	resp.Body.Close()
	if err != nil {
		fail(fmt.Errorf("scrape does not parse: %w", err))
	}

	// 3. Counter/ledger agreement, per transport.
	check := func(ok bool, format string, args ...any) {
		if !ok {
			fail(fmt.Errorf(format, args...))
		}
	}
	for _, transport := range []string{experiments.LiveTransportInProcess, experiments.LiveTransportTCP} {
		run, ok := res.Run(transport)
		check(ok, "no %s run in the result", transport)
		lbl := "transport=" + map[string]string{
			experiments.LiveTransportInProcess: "in-process",
			experiments.LiveTransportTCP:       "tcp",
		}[transport]

		get := func(name string) float64 {
			v, ok := samples.Value(name, lbl)
			check(ok, "scrape missing %s{%s}", name, lbl)
			return v
		}
		r := run.Result
		check(get("greensched_requests_total") == float64(r.Submitted),
			"%s: requests_total %v != submitted %d", transport, get("greensched_requests_total"), r.Submitted)
		check(get("greensched_completions_total") == float64(r.Completed),
			"%s: completions_total %v != completed %d", transport, get("greensched_completions_total"), r.Completed)
		check(get("greensched_rejections_total") == float64(r.Rejected) && r.Rejected >= 1,
			"%s: rejections_total %v / rejected %d, want agreement and >= 1", transport, get("greensched_rejections_total"), r.Rejected)
		check(get("greensched_deferrals_total") == float64(r.Deferred) && r.Deferred >= 1,
			"%s: deferrals_total %v / deferred %d, want agreement and >= 1", transport, get("greensched_deferrals_total"), r.Deferred)
		check(get("greensched_energy_joules") == r.EnergyJ,
			"%s: energy gauge %v != ledger %v", transport, get("greensched_energy_joules"), r.EnergyJ)
		// The budget tracker metered every attributed joule: two
		// independent families, one truth.
		check(get("greensched_budget_spent_joules") == get("greensched_energy_joules"),
			"%s: budget %v != energy %v", transport,
			get("greensched_budget_spent_joules"), get("greensched_energy_joules"))
		check(get("greensched_ledger_earned_dollars") == run.ExpectedEarnedUSD,
			"%s: earned %v != expected %v", transport, get("greensched_ledger_earned_dollars"), run.ExpectedEarnedUSD)
		fmt.Printf("%-11s scrape agrees with the ledger: %d requests, %d rejected, %d deferred, %.1f J, $%.2f\n",
			transport, r.Submitted, r.Rejected, r.Deferred, r.EnergyJ, run.ExpectedEarnedUSD)
	}

	// 4. A simulated run traced through sim.TraceModule emits the SAME
	// schema: collect the JSON keys both streams use and require the
	// sim's to be a subset seen on the live side and vice versa (both
	// are obs.Event, but this asserts it end to end, through bytes).
	var simTrace strings.Builder
	tasks, err := workload.BurstThenRate{Total: 12, Burst: 4, Rate: 2, Ops: 1e11}.Tasks()
	if err != nil {
		fail(err)
	}
	_, err = sim.Run(sim.Config{
		Platform: cluster.PaperPlatform(),
		Policy:   sched.New(sched.GreenPerf),
		Tasks:    tasks,
		Seed:     1,
		Modules:  []sim.Module{&sim.TraceModule{W: &simTrace}},
	})
	if err != nil {
		fail(err)
	}

	liveEvents, err := obs.ReadEvents(strings.NewReader(liveTrace.String()))
	if err != nil {
		fail(fmt.Errorf("live trace does not parse: %w", err))
	}
	simEvents, err := obs.ReadEvents(strings.NewReader(simTrace.String()))
	if err != nil {
		fail(fmt.Errorf("sim trace does not parse: %w", err))
	}
	check(len(liveEvents) > 0 && len(simEvents) > 0,
		"empty traces: live %d, sim %d", len(liveEvents), len(simEvents))
	kinds := func(events []obs.Event) map[string]bool {
		m := map[string]bool{}
		for _, ev := range events {
			m[ev.Event] = true
		}
		return m
	}
	liveKinds, simKinds := kinds(liveEvents), kinds(simEvents)
	for _, kind := range []string{obs.EventSubmit, obs.EventAdmit, obs.EventElect, obs.EventSolve, obs.EventComplete} {
		check(liveKinds[kind], "live trace missing %s events", kind)
		check(simKinds[kind], "sim trace missing %s events", kind)
	}
	fmt.Printf("trace schema parity: %d live events, %d sim events, one obs.Event schema\n",
		len(liveEvents), len(simEvents))
	fmt.Println("all observability invariants hold")
}
