// Budget-constrained scheduling (the paper's §V future work): an
// energy budget over a planning horizon steers the effective user
// preference. While consumption tracks the linear burn-down the
// scheduler ranks by energy-delay product; as soon as spending runs
// ahead, the ranking slides toward maximum energy efficiency, and an
// enforcer rejects work once the budget is gone.
package main

import (
	"fmt"
	"os"

	"greensched/internal/budget"
	"greensched/internal/core"
	"greensched/internal/estvec"
)

func main() {
	// 2 MJ to spend over one hour.
	tracker, err := budget.NewTracker(2e6, 3600)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	now := 0.0
	policy, err := budget.NewPolicy(tracker, core.PrefNone, 1e12, func() float64 { return now })
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	enforcer := budget.Enforcer{Tracker: tracker}

	fast := estvec.New("fast-hungry").
		Set(estvec.TagFlops, 10e9).Set(estvec.TagPowerW, 400).SetBool(estvec.TagActive, true)
	lean := estvec.New("slow-lean").
		Set(estvec.TagFlops, 2e9).Set(estvec.TagPowerW, 60).SetBool(estvec.TagActive, true)

	pick := func() string {
		if policy.Less(fast, lean) {
			return "fast-hungry"
		}
		return "slow-lean"
	}

	fmt.Printf("%8s %12s %10s %8s  %s\n", "t (s)", "spent (J)", "burn err", "pref", "election")
	for _, step := range []struct {
		t     float64
		spend float64
	}{
		{0, 0},
		{600, 250e3},  // well under budget
		{1200, 450e3}, // on track
		{1800, 600e3}, // now ahead of the burn-down
		{2400, 500e3}, // far ahead
		{3000, 300e3},
	} {
		now = step.t
		tracker.Charge(now, step.spend)
		if err := enforcer.Admit(); err != nil {
			fmt.Printf("%8.0f %12.0f %10s %8s  rejected: %v\n",
				now, tracker.Spent(), "-", "-", err)
			continue
		}
		pref := policy.Pref.At(now)
		fmt.Printf("%8.0f %12.0f %+10.2f %+8.2f  %s\n",
			now, tracker.Spent(), tracker.BurnError(now), float64(pref), pick())
	}
	fmt.Printf("\nremaining budget: %.0f J\n", tracker.Remaining())
}
