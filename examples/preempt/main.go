// Preemption walkthrough: checkpoint/restart as the escape valve when
// urgent work meets a saturated platform. It prices a checkpoint under
// the restart penalty, shows the safety calculus refusing a victim
// whose own deadline the restart would breach, runs a single-node
// displacement end to end in the simulator, and finishes with the
// express-boot vs preemption study.
package main

import (
	"fmt"
	"os"

	"greensched/internal/cluster"
	"greensched/internal/experiments"
	"greensched/internal/sched"
	"greensched/internal/sim"
	"greensched/internal/sla"
	"greensched/internal/workload"
)

func main() {
	// A checkpoint keeps the completed fraction of a task's Ops minus
	// the restart penalty's share.
	pre := sla.Preemption{RestartPenaltyFrac: 0.25}
	fmt.Println("Checkpointing a 1e12-op task at 40% done (penalty 0.25):")
	fmt.Printf("  redone ops:    %.0e\n", pre.RedoneOps(4e11))
	fmt.Printf("  remaining ops: %.0e (of 1e12)\n", pre.RemainingOps(1e12, 4e11))

	// The cardinal rule: preemption never manufactures a new breach.
	victim := sla.Terms{Class: "batch", Deadline: 1000, ValueUSD: 0.05, Curve: sla.HardDrop{}}
	fmt.Println("\nSafety calculus for a victim due at t=1000:")
	fmt.Printf("  10 s urgent + 800 s restart at t=100: safe=%v\n",
		sla.SafeToDisplace(100, 10, 800, victim))
	fmt.Printf("  10 s urgent + 950 s restart at t=100: safe=%v\n",
		sla.SafeToDisplace(100, 10, 950, victim))

	// Victim ordering: cheapest displacement first — batch (no
	// deadline, low value) before pricier or tighter work.
	views := []sched.VictimView{
		sched.NewVictimView(sched.TaskView{ID: 0, Ops: 9e12, Value: 0.05}, 100, 900),
		sched.NewVictimView(sched.TaskView{ID: 1, Ops: 9e12, Value: 5, Deadline: 1200}, 100, 900),
	}
	fmt.Printf("\nVictim order picks task %d (lowest value density, most slack)\n",
		views[sched.BestVictim(views, nil)].ID)

	// End to end: a 1000 s batch task holds the only slot when a 10 s
	// task due at t=100 arrives. Without preemption it would wait ~950
	// s and forfeit its $2; with it, the batch is checkpointed and
	// restarts with its progress retained.
	res, err := sim.Run(sim.Config{
		Platform: cluster.MustPlatform(cluster.NewNodes("taurus", 1)),
		Policy:   sched.New(sched.GreenPerf),
		Tasks: []workload.Task{
			{ID: 0, Ops: 9e12, Submit: 0},
			{ID: 1, Ops: 9e10, Submit: 50, Deadline: 100, Value: 2, Class: "hard"},
		},
		Explore:      true,
		Seed:         1,
		SlotsPerNode: 1,
		SLA:          &sla.Config{Catalog: sla.Catalog{"hard": {Name: "hard", Curve: sla.HardDrop{}}}},
		Preemption:   &sla.Preemption{RestartPenaltyFrac: 0.25},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("\nSingle-slot displacement (%d preemption):\n", res.Preemptions)
	for _, rec := range res.Records {
		fmt.Printf("  task %d: %.0f→%.0f s, %d checkpoints, %.0f J attributed, earned $%.2f\n",
			rec.ID, rec.Start, rec.Finish, rec.Preemptions, rec.EnergyShareJ, rec.EarnedUSD)
	}

	// The study: express boots alone vs preemption on a saturated
	// platform.
	fmt.Println()
	study, err := experiments.RunPreemptionStudy(experiments.DefaultPreemptionConfig())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := study.Render(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
