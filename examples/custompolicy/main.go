// Custom plug-in scheduler: the paper's framework lets developers
// "implement aggregation and resource ranking based on contextual
// information" without touching the middleware. This example defines
// an energy-delay-product (EDP) policy as a sched.Policy, plugs it
// into a live in-process DIET hierarchy next to the stock policies,
// and shows the election changing with the plug-in.
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"greensched/internal/estvec"
	"greensched/internal/middleware"
	"greensched/internal/sched"
)

// edpPolicy ranks servers by estimated energy-delay product for a
// fixed task size — exactly what the Eq. 6 score degrades to at P=0,
// but written from scratch as a third-party plug-in would be.
type edpPolicy struct{ ops float64 }

func (edpPolicy) Name() string { return "EDP" }

func (p edpPolicy) Less(a, b *estvec.Vector) bool {
	ea, aok := p.edp(a)
	eb, bok := p.edp(b)
	switch {
	case aok && !bok:
		return true
	case !aok && bok:
		return false
	case ea != eb:
		return ea < eb
	default:
		return a.Server < b.Server
	}
}

func (p edpPolicy) edp(v *estvec.Vector) (float64, bool) {
	srv, ok := sched.ServerFromVector(v)
	if !ok {
		return 0, false
	}
	t := srv.ComputationTime(p.ops)
	e := srv.EnergyConsumption(p.ops)
	return t * e, true
}

func main() {
	// Three SEDs with very different profiles, solving a "burn"
	// service that sleeps proportionally to the problem size.
	mkSED := func(name string, speed, watts float64) *middleware.SED {
		sed, err := middleware.NewSED(middleware.SEDConfig{
			Name:  name,
			Slots: 2,
			Meter: func() (float64, bool) { return watts, true },
		})
		if err != nil {
			panic(err)
		}
		sed.Register(middleware.Service{
			Name: "burn",
			Solve: func(ctx context.Context, req middleware.Request) ([]byte, error) {
				time.Sleep(time.Duration(req.Ops / speed * float64(time.Second)))
				return []byte("ok"), nil
			},
		})
		return sed
	}
	fast := mkSED("fast-hungry", 40e6, 400) // 40 Mflop/s, 400 W
	lean := mkSED("slow-lean", 10e6, 60)    // 10 Mflop/s, 60 W
	mid := mkSED("balanced", 25e6, 150)     // 25 Mflop/s, 150 W

	ma, err := middleware.NewMasterAgent("ma", sched.New(sched.GreenPerf))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	ma.Attach(fast, lean, mid)
	dir := middleware.NewMapDirectory()
	for _, sed := range []*middleware.SED{fast, lean, mid} {
		dir.Add(sed.Name(), sed)
	}
	client, err := middleware.NewClient(ma, dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// Prime the dynamic estimators (the learning phase).
	for range 3 {
		for _, sed := range []*middleware.SED{fast, lean, mid} {
			if _, err := sed.Solve(context.Background(), middleware.Request{Service: "burn", Ops: 1e6}); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}

	ops := 2e6
	for _, policy := range []sched.Policy{
		sched.New(sched.Power),
		sched.New(sched.Performance),
		edpPolicy{ops: ops},
	} {
		ma.SetPolicy(policy)
		resp, err := client.Submit(context.Background(), "burn", ops, 0, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("%-12s elected %s\n", policy.Name(), resp.Server)
	}
}
