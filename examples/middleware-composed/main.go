// Composed live middleware: the interceptor stack puts the paper's
// green-scheduling machinery on the LIVE serving path, mirroring what
// sim.Config.Modules does for the simulator. A Master built with
// functional options mounts three interceptors — carbon-window
// deferral, budget metering, SLA admission + revenue ledger — over two
// TCP SEDs, and a mixed workload shows each one acting:
//
//   - a deferrable batch request submitted on a dirty grid is parked
//     until the clean window opens;
//   - a request whose deadline no node can meet is rejected by
//     admission control and its value forfeited in the ledger;
//   - every completion charges its metered energy share to the budget
//     tracker (the share travels inside the gob response, so metering
//     works across the wire).
//
// The legacy SEDConfig.Meter/Carbon/Estimation fields still work and
// are converted onto this exact interceptor path internally; new
// deployments should compose interceptors directly.
package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"greensched/internal/budget"
	"greensched/internal/middleware"
	"greensched/internal/sched"
	"greensched/internal/sla"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

// flipFeed is a toy grid: dirty until the demo opens the window.
type flipFeed struct {
	mu    sync.Mutex
	clean bool
}

func (f *flipFeed) open() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.clean = true
}

func (f *flipFeed) read() (float64, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.clean {
		return 60, true // hydro hours
	}
	return 600, true // coal hours
}

func main() {
	// Two metered SEDs, each serving "compute" behind a TCP endpoint.
	grid := &flipFeed{}
	mkSED := func(name string, flops, watts float64) *middleware.SED {
		sed, err := middleware.NewSED(middleware.SEDConfig{
			Name:  name,
			Slots: 2,
			Interceptors: []middleware.Interceptor{
				&middleware.MeterInterceptor{Meter: func() (float64, bool) { return watts, true }},
				&middleware.CarbonInterceptor{Func: grid.read},
			},
		})
		if err != nil {
			fail(err)
		}
		if err := sed.Register(middleware.Service{
			Name: "compute",
			Solve: func(ctx context.Context, req middleware.Request) ([]byte, error) {
				time.Sleep(time.Duration(req.Ops / flops * float64(time.Second)))
				return []byte(fmt.Sprintf("%g flops on %s", req.Ops, name)), nil
			},
		}); err != nil {
			fail(err)
		}
		return sed
	}
	lean := mkSED("lean", 1e9, 80)
	hungry := mkSED("hungry", 4e9, 320)

	var remotes []*middleware.Remote
	for _, sed := range []*middleware.SED{lean, hungry} {
		ep, err := middleware.Serve("127.0.0.1:0", sed, sed)
		if err != nil {
			fail(err)
		}
		defer ep.Close()
		fmt.Printf("SED %-6s listening on %s\n", sed.Name(), ep.Addr())
		rem := middleware.Dial(sed.Name(), ep.Addr())
		defer rem.Close()
		remotes = append(remotes, rem)
	}

	// The interceptor stack: SLA admission first (reject before
	// anything is parked; its resolved deadlines keep urgent traffic
	// out of the green window), then carbon deferral, then budget
	// metering. Finalize runs in reverse, so the ledger summary
	// divides by the energy and grams the later interceptors publish.
	tracker, err := budget.NewTracker(1e6, 3600)
	if err != nil {
		fail(err)
	}
	catalog := sla.Catalog{
		"interactive": {Name: "interactive", RelDeadlineSec: 60, ValueUSD: 2, Curve: sla.HardDrop{}},
		"batch":       {Name: "batch", ValueUSD: 0.05, Curve: sla.Flat{}},
		"hopeless":    {Name: "hopeless", RelDeadlineSec: 1e-5, ValueUSD: 1, Curve: sla.HardDrop{}},
	}
	master, err := middleware.NewMaster(
		middleware.WithName("master"),
		middleware.WithPolicy(sched.New(sched.GreenPerf)),
		middleware.WithRemotes(remotes...),
		middleware.WithInterceptors(
			&middleware.SLAInterceptor{
				Config:    &sla.Config{Catalog: catalog, Admission: &sla.Admission{Margin: 1}},
				BestFlops: 4e9,
			},
			&middleware.CarbonInterceptor{
				Func: grid.read, DirtyG: 300, MaxDeferSec: 10, PollSec: 0.02,
			},
			&middleware.BudgetInterceptor{Tracker: tracker},
		),
	)
	if err != nil {
		fail(err)
	}
	ctx := context.Background()

	// Learning phase: the master measures both SEDs.
	for i := 0; i < 4; i++ {
		if _, err := master.Do(ctx, middleware.Request{Service: "compute", Ops: 4e6}); err != nil {
			fail(err)
		}
	}

	// A deferrable batch request on the dirty grid: parked by the
	// carbon window until the grid turns clean.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := master.Do(ctx, middleware.Request{
			Service: "compute", Ops: 4e6, Class: "batch", Deferrable: true,
		})
		if err != nil {
			fail(err)
		}
		fmt.Printf("deferred batch ran on %s once the window opened\n", resp.Server)
	}()

	// Interactive traffic is never parked behind a green window.
	for i := 0; i < 3; i++ {
		resp, err := master.Do(ctx, middleware.Request{
			Service: "compute", Ops: 4e6, Class: "interactive",
		})
		if err != nil {
			fail(err)
		}
		fmt.Printf("interactive -> %s (%s)\n", resp.Server, resp.Output)
	}

	// A deadline no node can meet: admission refuses it outright.
	if _, err := master.Do(ctx, middleware.Request{
		Service: "compute", Ops: 4e6, Class: "hopeless",
	}); errors.Is(err, middleware.ErrRejected) {
		fmt.Printf("hopeless request rejected: %v\n", err)
	} else {
		fail(fmt.Errorf("hopeless request was not rejected (err=%v)", err))
	}

	// Open the clean window; the parked batch resumes.
	time.Sleep(300 * time.Millisecond)
	grid.open()
	wg.Wait()

	res := master.Finalize()
	fmt.Printf("\n%d submitted: %d completed, %d rejected, %d carbon-deferred (%.2fs waited)\n",
		res.Submitted, res.Completed, res.Rejected, res.Deferred, res.DeferredSec)
	fmt.Printf("energy %.2f J (budget metered %.2f J of %.0f), %.4f g CO2\n",
		res.EnergyJ, res.BudgetSpentJ, tracker.Remaining()+tracker.Spent(), res.CO2Grams)
	fmt.Println("ledger:")
	if err := res.SLA.Render(os.Stdout); err != nil {
		fail(err)
	}
}
