// DVFS vs race-to-idle: reproduces the related-work claim (Le Sueur &
// Heiser, the paper's ref [8]) that frequency scaling yields
// diminishing returns on servers with high idle floors — the argument
// for the paper's shutdown-based provisioning. The example sweeps the
// energy-vs-frequency curve for a real node profile and an
// energy-proportional strawman, then pits governors against each
// other on a periodic workload.
package main

import (
	"fmt"
	"os"

	"greensched/internal/cluster"
	"greensched/internal/dvfs"
)

func main() {
	taurus, _ := cluster.Spec("taurus")
	taurus.Name = "taurus"
	proportional := taurus
	proportional.Name = "proportional"
	proportional.IdleW, proportional.ActivationW, proportional.OffW = 0, 0, 0

	levels := dvfs.DefaultLevels()
	ops, horizon := 9.0e11, 500.0

	for _, spec := range []cluster.NodeSpec{taurus, proportional} {
		curve, err := dvfs.Curve(spec, ops, horizon, levels)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("energy to run %.0g flops within %.0fs on %s:\n", ops, horizon, spec.Name)
		for _, p := range curve {
			fmt.Printf("  f=%.1f  exec=%6.0fs  energy=%8.0f J\n", p.Freq, p.ExecSec, p.Energy)
		}
		saving, err := dvfs.DiminishingReturns(spec, ops, horizon, levels)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		best, _ := dvfs.OptimalFreq(spec, ops, horizon, levels)
		fmt.Printf("  -> best level %.1f, saving vs f_max: %.1f%%\n\n", best, saving*100)
	}

	fmt.Println("governor comparison (20 × 50s tasks, one every 200s, taurus):")
	for _, gov := range []dvfs.Governor{
		dvfs.PerformanceGov{}, dvfs.OnDemandGov{Headroom: 0.1}, dvfs.PowersaveGov{},
	} {
		run, err := dvfs.SimulateGovernor(taurus, levels, gov, 4.5e11, 200, 20)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("  %-12s makespan=%6.0fs  energy=%8.0f J  mean f=%.2f\n",
			run.Governor, run.Makespan, run.EnergyJ, run.MeanFreq)
	}
	fmt.Println("\nconclusion: on high-idle-floor hardware the frequency knob barely")
	fmt.Println("moves energy — powering idle nodes off (the paper's approach) does.")
}
