// SLA walkthrough: deadlines, dollar values and penalty curves as
// scheduling inputs. It prices lateness under the three bundled curve
// shapes, screens tasks through admission control, ranks servers with
// the deadline- and value-aware criteria, reorders a backlog with EDF,
// and runs the energy-only vs SLA-aware vs SLA+carbon comparison on a
// trimmed scenario.
package main

import (
	"fmt"
	"os"

	"greensched/internal/core"
	"greensched/internal/experiments"
	"greensched/internal/sched"
	"greensched/internal/sla"
	"greensched/internal/workload"
)

func main() {
	// Penalty curves price lateness: a result is worth its class's
	// value on time, and the curve says how fast that value decays.
	curves := []sla.Curve{
		sla.HardDrop{},
		sla.LinearDecay{DecaySec: 300, Floor: 0},
		sla.Stepped{Steps: []sla.Step{{AfterSec: 0, Retained: 0.5}, {AfterSec: 60, Retained: 0}, {AfterSec: 300, Retained: -0.25}}},
	}
	fmt.Println("Retained value fraction by lateness:")
	fmt.Printf("  %-12s", "lateness")
	for _, c := range curves {
		fmt.Printf("  %12s", c.Name())
	}
	fmt.Println()
	for _, late := range []float64{0, 30, 150, 600} {
		fmt.Printf("  %9.0f s ", late)
		for _, c := range curves {
			fmt.Printf("  %12.2f", c.Retained(late))
		}
		fmt.Println()
	}

	// Admission control refuses work that provably earns nothing: the
	// best case for this task is 300 s, so a 120 s deadline under a
	// hard-drop contract would only burn joules.
	adm := sla.Admission{}
	hard := sla.Terms{Class: "deadline", Deadline: 120, ValueUSD: 0.5, Curve: sla.HardDrop{}}
	soft := sla.Terms{Class: "report", Deadline: 120, ValueUSD: 0.5, Curve: sla.LinearDecay{DecaySec: 3600}}
	fmt.Printf("\nAdmission at t=0 with a 300 s best case:\n")
	fmt.Printf("  hard-drop 120 s deadline: %s\n", adm.Decide(0, 300, hard))
	fmt.Printf("  linear-decay same deadline: %s (late work still pays)\n", adm.Decide(0, 300, soft))

	// Deadline-aware ranking: the greener server loses the election
	// when only the faster one can meet the deadline.
	servers := []core.Server{
		{Name: "lean-queued", Flops: 5e9, PowerW: 150, Active: true, WaitSec: 900},
		{Name: "fast-free", Flops: 5e9, PowerW: 300, Active: true},
	}
	ops := 1e12 // 200 s of work
	fmt.Println("\nServer ranking for a 500 s deadline:")
	fmt.Printf("  by GreenPerf:      %s first\n", core.Rank(servers, core.ByGreenPerf())[0].Name)
	fmt.Printf("  by DeadlineSlack:  %s first\n", core.Rank(servers, core.ByDeadlineSlack(ops, 0, 500))[0].Name)
	fmt.Printf("  by ValueEfficiency ($2 task): %s first\n", core.Rank(servers, core.ByValueEfficiency(ops, 2))[0].Name)

	// Queue disciplines decide who gets the next free slot.
	backlog := []sched.TaskView{
		{ID: 0, Ops: 2e12, Submit: 0},                             // batch, no deadline
		{ID: 1, Ops: 1e11, Submit: 5, Deadline: 120, Value: 2},    // interactive
		{ID: 2, Ops: 1e12, Submit: 2, Deadline: 1800, Value: 0.5}, // report
	}
	edf := sched.NewOrder(sched.EDF)
	next := backlog[0]
	for _, v := range backlog[1:] {
		if edf.Less(v, next) {
			next = v
		}
	}
	fmt.Printf("\nEDF pops task %d (deadline %v) from the backlog; FIFO would run task 0.\n", next.ID, next.Deadline)

	// The full study on a trimmed evening mix: FIFO + energy-only
	// placement forfeits the deadline revenue that EDF + admission
	// recovers; the carbon run defers only the batch.
	cfg := experiments.DefaultSLAConfig()
	cfg.BatchTasks = 24
	cfg.DeadlineTasks = 6
	cfg.InteractiveTasks = 10
	cfg.HopelessTasks = 2
	res, err := experiments.RunSLAStudy(cfg)
	if err != nil {
		panic(err)
	}
	fmt.Println()
	if err := res.Render(os.Stdout); err != nil {
		panic(err)
	}

	// Every task stream can also be written to (and replayed from) a
	// trace file with the SLA columns.
	tasks, err := workload.BurstThenRate{Total: 2, Burst: 2, Ops: 1e12, Class: sla.ClassDeadline, RelDeadline: 900}.Tasks()
	if err != nil {
		panic(err)
	}
	fmt.Println("\nTrace dialect with SLA columns:")
	if err := workload.WriteTrace(os.Stdout, tasks); err != nil {
		panic(err)
	}
}
