// Composable scenarios: sim.NewScenario builds a run from a platform,
// a workload and a stack of sim.Module values — carbon accounting, SLA
// machinery, checkpoint/restart preemption, a power-management
// controller and an energy-budget tracker all attach as modules, with
// no glue code between them. This walkthrough stacks all five on a
// small two-site platform and prints what each module contributed.
//
// The legacy sim.Config one-slot hooks (Carbon, SLA, Preemption,
// OnControl, OnFinish, PolicyFunc) still work and are converted onto
// this exact module path internally; new scenarios should compose
// modules directly.
package main

import (
	"fmt"
	"os"

	"greensched/internal/budget"
	"greensched/internal/carbon"
	"greensched/internal/cluster"
	"greensched/internal/consolidation"
	"greensched/internal/core"
	"greensched/internal/sched"
	"greensched/internal/sim"
	"greensched/internal/sla"
	"greensched/internal/workload"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func main() {
	// A trimmed two-site platform: taurus on a solar-diurnal grid,
	// sagittaire on a flat fossil one.
	platform := cluster.MustPlatform(
		cluster.NewNodes("taurus", 2),
		cluster.NewNodes("sagittaire", 2),
	)
	profile := carbon.MustProfile(carbon.SiteProfile{Site: "solar-valley", Signal: carbon.Diurnal{
		MeanG: 300, AmplitudeG: 250, CleanHour: 13, RenewableMin: 0.05, RenewableMax: 0.8,
	}})
	if err := profile.SetCluster("sagittaire", carbon.SiteProfile{Site: "fossil-ridge",
		Signal: carbon.Diurnal{MeanG: 450, AmplitudeG: 50, CleanHour: 13}}); err != nil {
		fail(err)
	}

	// Morning mix: a deferrable batch burst at 08:00 plus an urgent
	// interactive stream with two-minute deadlines.
	batch, err := workload.BurstThenRate{Total: 36, Burst: 36, Ops: 1.9e12, Class: sla.ClassBatch}.Tasks()
	if err != nil {
		fail(err)
	}
	urgent, err := workload.BurstThenRate{Total: 18, Rate: 1.0 / 700, Ops: 9e10,
		Class: sla.ClassInteractive, RelDeadline: 120}.Tasks()
	if err != nil {
		fail(err)
	}
	tasks := workload.Merge(
		workload.Shift(batch, 8*3600),
		workload.Shift(urgent, 8*3600),
	)

	// The module stack. Order is the hook order: carbon accounting
	// first, then budget metering (before the SLA module, so its
	// over-budget steering stays inside the deadline screen), then SLA
	// terms/admission, then preemption semantics, then the power
	// controller.
	tracker, err := budget.NewTracker(50e6, 24*3600) // 50 MJ over the day
	if err != nil {
		fail(err)
	}
	ctl := &consolidation.CarbonController{
		Profile:          profile,
		CleanG:           250,
		DirtyG:           450,
		IdleTimeout:      900,
		MinOn:            1,
		MaxDeferSec:      12 * 3600,
		DeadlineSlackSec: 300,
		PreemptBatch:     true,
	}
	cfg := sim.NewScenario(platform, tasks,
		sim.WithPolicy(sched.New(sched.Carbon)),
		sim.WithExplore(),
		sim.WithSeed(1),
		sim.WithSlotsPerNode(1),
		sim.WithTick(120),
		sim.WithRetryEvery(300),
		sim.WithModules(
			&sim.CarbonModule{Profile: profile},
			&budget.Module{Tracker: tracker, Steer: true, Base: core.PrefNone},
			&sim.SLAModule{
				Config: &sla.Config{
					Catalog:      sla.DefaultCatalog(),
					Admission:    &sla.Admission{Margin: 1},
					Order:        sched.NewOrder(sched.EDF),
					UrgentBypass: true,
				},
				WrapDeadline: true,
			},
			&sim.PreemptModule{Preemption: &sla.Preemption{RestartPenaltyFrac: 0.1}},
			&consolidation.Module{Controller: ctl},
		),
	)

	res, err := sim.Run(cfg)
	if err != nil {
		fail(err)
	}

	fmt.Printf("one run, five modules — %d tasks under %s\n\n", res.Completed, res.Policy)
	fmt.Printf("carbon module:    %.0f g CO2 (%.2f g/task), per-site accounting attached\n",
		res.CO2Grams, res.GramsPerTask())
	if res.SLA != nil {
		fmt.Printf("sla module:       $%.2f earned, $%.2f forfeited, %d late, %d rejected\n",
			res.SLA.EarnedUSD, res.SLA.ForfeitedUSD, res.SLA.Misses, res.Rejected)
	}
	fmt.Printf("preempt module:   %d checkpoint/displace events (%.0f s of work redone)\n",
		res.Preemptions, res.PreemptRedoneOps/9e9)
	fmt.Printf("controller:       %d boots, %d shutdowns (carbon candidacy windows)\n",
		res.Boots, res.Shutdowns)
	fmt.Printf("budget module:    %.2f MJ of task energy metered, %.2f MJ of budget left\n",
		tracker.Spent()/1e6, tracker.Remaining()/1e6)
	fmt.Printf("\nmakespan %.1f h, platform energy %.2f MJ\n", res.Makespan/3600, float64(res.EnergyJ)/1e6)
}
