// Carbon walkthrough: the grid behind the socket as a scheduling
// signal. It builds diurnal and tariff-derived carbon signals, shows
// how the same joule costs different grams across sites and hours,
// ranks servers with the carbon-aware criteria, and runs the
// carbon-blind vs carbon-aware comparison on a one-day scenario.
package main

import (
	"fmt"
	"os"

	"greensched/internal/carbon"
	"greensched/internal/core"
	"greensched/internal/experiments"
	"greensched/internal/forecast"
)

func main() {
	// A solar-dominated grid: cleanest at 13:00, dirtiest overnight.
	solar := carbon.Diurnal{
		MeanG: 300, AmplitudeG: 250, CleanHour: 13,
		RenewableMin: 0.05, RenewableMax: 0.8,
	}
	fmt.Println("Diurnal grid (gCO2/kWh by hour):")
	for h := 0; h < 24; h += 3 {
		t := float64(h) * 3600
		fmt.Printf("  %02d:00  %3.0f g/kWh  (renewables %2.0f%%)\n",
			h, solar.IntensityAt(t), solar.RenewableAt(t)*100)
	}

	// The §IV-C electricity tariff doubles as a coarse carbon signal.
	sched, err := carbon.FromTariff(forecast.PaperTariff(), 100, 500)
	if err != nil {
		panic(err)
	}
	fmt.Println("\nTariff-derived step schedule:")
	for _, h := range []float64{4, 12, 23} {
		fmt.Printf("  %02.0f:00  %3.0f g/kWh\n", h, sched.IntensityAt(h*3600))
	}

	// One kWh is not one footprint: integrate 1000 W for an hour at
	// midday vs midnight.
	site := carbon.SiteProfile{Site: "solar-valley", Signal: solar}
	midday := carbon.Grams(site, carbon.JoulesPerKWh, 12.5*3600, 13.5*3600)
	midnight := carbon.Grams(site, carbon.JoulesPerKWh, 23.5*3600, 24.5*3600)
	fmt.Printf("\n1 kWh drawn at midday: %.0f g CO2; the same kWh at midnight: %.0f g\n",
		midday, midnight)

	// Carbon-aware ranking: a hungrier server on a cleaner grid can
	// beat the GreenPerf favourite.
	servers := []core.Server{
		{Name: "lean-dirty", Flops: 5e9, PowerW: 200, CarbonIntensity: 500, Active: true},
		{Name: "hungry-clean", Flops: 5e9, PowerW: 300, CarbonIntensity: 50, Active: true},
	}
	fmt.Println("\nGreenPerf vs CarbonPerf ordering:")
	fmt.Printf("  by GreenPerf:  %s first\n", core.Rank(servers, core.ByGreenPerf())[0].Name)
	fmt.Printf("  by CarbonPerf: %s first\n", core.Rank(servers, core.ByCarbonPerf())[0].Name)
	fmt.Printf("  blended (perf=1, watts=1, carbon=1): %s first\n",
		core.Rank(servers, core.ByGreenWeights(core.DefaultGreenWeights))[0].Name)

	// The full study on a small one-day scenario: an evening batch
	// either runs immediately (carbon-blind) or waits for the next
	// clean window (carbon-aware candidacy windows).
	cfg := experiments.DefaultCarbonConfig()
	cfg.Days = 1
	cfg.BurstTasks = 24
	res, err := experiments.RunCarbonStudy(cfg)
	if err != nil {
		panic(err)
	}
	fmt.Println()
	if err := res.Render(os.Stdout); err != nil {
		panic(err)
	}
}
