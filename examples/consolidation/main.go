// The related-work baseline (§II-B): load concentration plus idle
// shutdown, compared against the paper's always-on policies on an
// under-utilized workload — a burst, an idle hour, then a trickle of
// requests. GreenPerf reduces the draw of active servers but cannot
// touch the idle floor of the other eleven; the consolidation
// controller powers them off and boots them back when backlog builds.
package main

import (
	"fmt"
	"os"

	"greensched/internal/consolidation"
	"greensched/internal/experiments"
	"greensched/internal/sched"
)

func main() {
	cfg := experiments.DefaultConsolidationConfig()
	res, err := experiments.RunConsolidation(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := res.Render(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// The trade the table shows in one sentence.
	pw, _ := res.Run(string(sched.Power))
	cons, _ := res.Run(consolidation.PolicyName)
	fmt.Printf("\nconsolidation traded %.0f s of makespan (%d boots) for a %.0f kJ saving\n",
		cons.Makespan-pw.Makespan, cons.Boots, (pw.EnergyJ-cons.EnergyJ)/1e3)
}
