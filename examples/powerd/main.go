// External power estimation that survives its estimator dying: per-node
// watts come from an out-of-process powerd sidecar over a unix socket,
// and the scheduler keeps electing when that sidecar is kill -9'd
// mid-run. The walkthrough runs the same composed serving stack twice —
// SLA ledger + energy budget + sidecar power on two SEDs — and proves
// the fault changes nothing the books can see:
//
//  1. control: the sidecar stays up; every reading is live, the
//     fallback counter stays at zero;
//  2. faulted: the sidecar is killed after the first third of the
//     requests. The client degrades loudly — last-good cache, then the
//     built-in analytic curves — while elections continue; the sidecar
//     restarts (serving shifted figures so a live reading is provably
//     live) and the client converges back within its staleness window;
//  3. both runs must complete every request, earn the same dollar
//     total, and meter the budget to exactly the energy the master
//     attributed — and the faulted run must have tripped the fallback
//     counter on the metrics endpoint, because silent degradation is
//     the one failure mode this subsystem refuses.
//
// Any broken invariant exits non-zero.
//
// Run it:
//
//	go run ./examples/powerd
package main

import (
	"context"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"time"

	"greensched/internal/budget"
	"greensched/internal/middleware"
	"greensched/internal/obs"
	"greensched/internal/power"
	"greensched/internal/powerd"
	"greensched/internal/sched"
	"greensched/internal/sla"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func failf(format string, args ...any) { fail(fmt.Errorf(format, args...)) }

// burnService spins req.Ops through a synthetic flops/sec rate — the
// workload whose execution time the power attribution integrates over.
func burnService(speed float64) middleware.Service {
	return middleware.Service{
		Name: "burn",
		Solve: func(ctx context.Context, req middleware.Request) ([]byte, error) {
			select {
			case <-time.After(time.Duration(req.Ops / speed * float64(time.Second))):
				return []byte("done"), nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
	}
}

// totals is what a faulted run must share with the control: the
// deterministic books, never wall-clock joules.
type totals struct {
	completed int
	earnedUSD float64
	fallbacks uint64
}

// study drives 14 gold requests through the composed stack. With fault
// set, the sidecar dies after the first third and restarts before the
// last third.
func study(fault bool) totals {
	label := "control"
	if fault {
		label = "faulted"
	}
	dir, err := os.MkdirTemp("", "powerd-example-*")
	if err != nil {
		fail(err)
	}
	defer os.RemoveAll(dir)
	addr := "unix:" + filepath.Join(dir, "powerd.sock")

	// The reference sidecar serves a static per-node profile; the
	// client's fallback curves carry the same figures, so dying mid-run
	// cannot move the books — only the counters.
	srv, err := powerd.Serve(addr, power.StaticSource{"lean": 80, "hungry": 320}, powerd.Options{})
	if err != nil {
		fail(err)
	}
	defer srv.Close()
	fmt.Printf("== %s run: sidecar serving protocol v%d on %s ==\n", label, powerd.ProtocolVersion, srv.Addr())

	cli, err := powerd.NewClient(powerd.Config{
		Addr: addr, Timeout: 100 * time.Millisecond, Retries: -1,
		StalenessSec: 0.05, BreakerAfter: 2, ReprobeSec: 0.02,
		Fallback: power.StaticSource{"lean": 80, "hungry": 320},
		Logf:     func(format string, args ...any) { fmt.Printf("  powerd client: "+format+"\n", args...) },
	})
	if err != nil {
		fail(err)
	}
	defer cli.Close()

	newSED := func(name string, flops float64) *middleware.SED {
		sed, err := middleware.NewSED(middleware.SEDConfig{
			Name:  name,
			Slots: 2,
			// No local meter: the sidecar client is the only power feed.
			Interceptors: []middleware.Interceptor{
				&middleware.ExternalPowerInterceptor{Source: cli},
			},
		})
		if err != nil {
			fail(err)
		}
		if err := sed.Register(burnService(flops)); err != nil {
			fail(err)
		}
		return sed
	}

	tracker, err := budget.NewTracker(1e6, 60)
	if err != nil {
		fail(err)
	}
	reg := obs.NewRegistry()
	master, err := middleware.NewMaster(
		middleware.WithName("power-"+label),
		middleware.WithPolicy(sched.New(sched.GreenPerf)),
		middleware.WithSEDs(newSED("lean", 1e9), newSED("hungry", 4e9)),
		middleware.WithInterceptors(
			&middleware.SLAInterceptor{
				Config: &sla.Config{
					Catalog: sla.Catalog{
						"gold": {Name: "gold", RelDeadlineSec: 60, ValueUSD: 2, Curve: sla.HardDrop{}},
					},
					Admission: &sla.Admission{Margin: 1},
				},
				BestFlops: 4e9,
			},
			&middleware.BudgetInterceptor{Tracker: tracker},
			&middleware.ExternalPowerInterceptor{Source: cli, Registry: reg},
		),
	)
	if err != nil {
		fail(err)
	}

	ctx := context.Background()
	do := func(n int, phase string) {
		for i := 0; i < n; i++ {
			if _, err := master.Do(ctx, middleware.Request{Service: "burn", Ops: 4e6, Class: "gold"}); err != nil {
				failf("%s request during %q failed — elections must survive sidecar faults: %v", label, phase, err)
			}
		}
		fmt.Printf("  %d requests served (%s)\n", n, phase)
	}

	do(5, "live sidecar readings")
	if fault {
		srv.Close()
		fmt.Println("  kill -9: sidecar gone, leaning on the analytic curves")
		// Outlive the last-good cache window so the next phase provably
		// runs on the fallback curves, not the cache.
		time.Sleep(100 * time.Millisecond)
	}
	do(5, "fallback curves")
	if fault {
		// Restart at the same address with shifted figures: reading 81
		// (not the fallback's 80) proves the client converged back.
		srv2, err := powerd.Serve(addr, power.StaticSource{"lean": 81, "hungry": 321}, powerd.Options{})
		if err != nil {
			fail(err)
		}
		defer srv2.Close()
		deadline := time.Now().Add(5 * time.Second)
		for {
			if w, ok := cli.NodePowerW("lean", nil, nil); ok && w == 81 {
				break
			}
			if time.Now().After(deadline) {
				failf("client never recovered to the restarted sidecar (stats %+v)", cli.Stats())
			}
			time.Sleep(10 * time.Millisecond)
		}
		if _, age, ok := cli.LastReading("lean"); !ok || age > 0.05 {
			failf("reading not fresh after restart: age %.3fs, ok %v", age, ok)
		}
		fmt.Println("  sidecar restarted: breaker closed, fresh readings resumed")
	}
	do(4, "live again")

	res := master.Finalize()
	if res.Failed != 0 || res.Rejected != 0 {
		failf("%s run lost work: %d failed, %d rejected", label, res.Failed, res.Rejected)
	}
	// The budget metered exactly what the master attributed — the
	// invariant a wrong power feed would break first.
	if math.Abs(res.BudgetSpentJ-res.EnergyJ) > 1e-6*math.Max(1, res.EnergyJ) {
		failf("%s run books off: budget metered %.6f J, master attributed %.6f J", label, res.BudgetSpentJ, res.EnergyJ)
	}
	st := cli.Stats()
	fmt.Printf("  books: %d completed, $%.2f earned, %.1f J metered == %.1f J attributed\n",
		res.Completed, res.SLA.EarnedUSD, res.BudgetSpentJ, res.EnergyJ)
	fmt.Printf("  sidecar client: %d requests, %d errors, %d fallbacks, %d cache hits\n\n",
		st.Requests, st.Errors, st.Fallbacks, st.CacheHits)

	// The fallback must be loud on the metrics endpoint, never silent.
	var sb strings.Builder
	if err := reg.Render(&sb); err != nil {
		fail(err)
	}
	if !strings.Contains(sb.String(), "greensched_power_requests_total") {
		failf("%s run: greensched_power_* families missing from the exposition", label)
	}
	if fault && strings.Contains(sb.String(), "greensched_power_fallbacks_total 0") {
		failf("faulted run: fallbacks invisible on the exposition endpoint:\n%s", sb.String())
	}
	return totals{completed: res.Completed, earnedUSD: res.SLA.EarnedUSD, fallbacks: st.Fallbacks}
}

func main() {
	control := study(false)
	faulted := study(true)

	if control.fallbacks != 0 {
		failf("control run fell back %d times with a healthy sidecar", control.fallbacks)
	}
	if faulted.fallbacks < 1 {
		failf("sidecar killed mid-run but the fallback counter never fired")
	}
	if faulted.completed != control.completed {
		failf("completed %d with faults, %d in control", faulted.completed, control.completed)
	}
	if math.Abs(faulted.earnedUSD-control.earnedUSD) > 1e-9 || faulted.earnedUSD != 28 {
		failf("ledger earned $%.4f with faults, $%.4f in control (want $28 both ways)",
			faulted.earnedUSD, control.earnedUSD)
	}
	fmt.Println("== verdict ==")
	fmt.Printf("killing the power estimator moved zero requests and zero dollars\n")
	fmt.Printf("(%d fallback readings, all on the metrics endpoint — loud, never silent)\n", faulted.fallbacks)
}
