// Placement study: a compact version of the paper's §IV-A experiment.
// A burst-then-continuous stream of CPU-bound tasks is scheduled on
// the Table I platform under the RANDOM, POWER and PERFORMANCE plug-in
// policies; the example prints per-cluster task distribution, energy
// and the headline gains, mirroring Figures 2-5 and Table II.
package main

import (
	"fmt"
	"os"

	"greensched/internal/cluster"
	"greensched/internal/sched"
	"greensched/internal/sim"
	"greensched/internal/stats"
	"greensched/internal/workload"
)

func main() {
	platform := cluster.PaperPlatform()
	// 3 requests per core keeps the example quick; the full harness
	// (cmd/greensched placement) uses the paper's 10 per core.
	tasks, err := workload.BurstThenRate{
		Total: workload.PerCore(platform.Cores(), 3),
		Burst: platform.Cores() / 10,
		Rate:  0.45,
		Ops:   9.0e11,
	}.Tasks()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	results := map[sched.Kind]*sim.Result{}
	for _, kind := range sched.Kinds() {
		res, err := sim.Run(sim.Config{
			Platform:   platform,
			Policy:     sched.New(kind),
			Tasks:      tasks,
			Explore:    kind != sched.Random,
			Contention: 0.08,
			ExecJitter: 0.02,
			Seed:       1,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		results[kind] = res
	}

	fmt.Printf("%-12s %10s %14s   %s\n", "policy", "makespan", "energy (J)", "tasks per cluster")
	for _, kind := range sched.Kinds() {
		res := results[kind]
		fmt.Printf("%-12s %9.0fs %14.0f   taurus=%d orion=%d sagittaire=%d\n",
			kind, res.Makespan, res.EnergyJ,
			res.PerClusterTasks["taurus"], res.PerClusterTasks["orion"], res.PerClusterTasks["sagittaire"])
	}

	gain := stats.Gain(results[sched.Random].EnergyJ, results[sched.Power].EnergyJ)
	loss := stats.Loss(results[sched.Performance].Makespan, results[sched.Power].Makespan)
	fmt.Printf("\nPOWER saves %.1f%% energy vs RANDOM at a %.1f%% makespan cost vs PERFORMANCE\n",
		gain*100, loss*100)
	fmt.Println("(paper: 25% energy gain, ≤6% performance loss)")
}
