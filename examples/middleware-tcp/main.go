// Distributed deployment: the DIET-style hierarchy over TCP on
// localhost. Two SEDs serve behind gob endpoints, a Master Agent
// elects through remote estimation calls, and the client solves on
// the elected SED over the wire — the §III-A scheduling process end
// to end across process boundaries (here, across sockets).
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"greensched/internal/middleware"
	"greensched/internal/sched"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	mkSED := func(name string, speed, watts float64) (*middleware.SED, error) {
		sed, err := middleware.NewSED(middleware.SEDConfig{
			Name:  name,
			Slots: 2,
			Meter: func() (float64, bool) { return watts, true },
		})
		if err != nil {
			return nil, err
		}
		sed.Register(middleware.Service{
			Name: "burn",
			Solve: func(ctx context.Context, req middleware.Request) ([]byte, error) {
				time.Sleep(time.Duration(req.Ops / speed * float64(time.Second)))
				return []byte(fmt.Sprintf("solved %g flops on %s", req.Ops, name)), nil
			},
		})
		return sed, nil
	}

	lean, err := mkSED("lean", 10e6, 80)
	if err != nil {
		return err
	}
	hungry, err := mkSED("hungry", 30e6, 320)
	if err != nil {
		return err
	}

	// Serve each SED on an ephemeral localhost port.
	epLean, err := middleware.Serve("127.0.0.1:0", lean, lean)
	if err != nil {
		return err
	}
	defer epLean.Close()
	epHungry, err := middleware.Serve("127.0.0.1:0", hungry, hungry)
	if err != nil {
		return err
	}
	defer epHungry.Close()
	fmt.Printf("SED lean   listening on %s\n", epLean.Addr())
	fmt.Printf("SED hungry listening on %s\n", epHungry.Addr())

	// The MA talks to the SEDs through remote handles.
	remLean := middleware.Dial("lean", epLean.Addr())
	remHungry := middleware.Dial("hungry", epHungry.Addr())
	defer remLean.Close()
	defer remHungry.Close()

	ma, err := middleware.NewMasterAgent("ma", sched.New(sched.GreenPerf))
	if err != nil {
		return err
	}
	ma.Attach(remLean, remHungry)
	dir := middleware.NewMapDirectory()
	dir.Add("lean", remLean)
	dir.Add("hungry", remHungry)
	client, err := middleware.NewClient(ma, dir)
	if err != nil {
		return err
	}

	// Learning phase: one request lands on each unknown SED first.
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		resp, err := client.Submit(ctx, "burn", 1e6, 0, nil)
		if err != nil {
			return err
		}
		fmt.Printf("request %d -> %s: %s\n", i, resp.Server, resp.Output)
	}

	// With both SEDs measured, GreenPerf favours the lean one.
	resp, err := client.Submit(ctx, "burn", 2e6, float64(1) /*maximize efficiency*/, nil)
	if err != nil {
		return err
	}
	fmt.Printf("steady state -> %s (GreenPerf election over TCP)\n", resp.Server)
	return nil
}
