// Durable dispatch: a master that can be kill -9'd without losing
// work. Every admission is journaled to a checksummed write-ahead log
// before dispatch, every dispatch books a lease (owning SED + expiry),
// and every outcome settles the entry — so the walkthrough below can
// murder a master with a request still executing and prove the next
// incarnation recovers it:
//
//  1. master A journals three requests to completion, then dispatches
//     a fourth that stalls mid-solve on its SED;
//  2. A dies (the journal is abandoned exactly as a crash would leave
//     it: the lease is on disk, the settle never lands);
//  3. the journal is reopened — the fold shows one incomplete
//     lifecycle, leased to the dead dispatch's SED;
//  4. master B replays: settled outcomes are re-booked onto its ledger
//     without re-executing anything, the orphaned lease is waited out,
//     and the request is redone on a DIFFERENT SED — exactly-once on
//     the books even though the stalled solve also finished.
//
// Run it:
//
//	go run ./examples/durable
package main

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"greensched/internal/estvec"
	"greensched/internal/journal"
	"greensched/internal/middleware"
	"greensched/internal/sched"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

// sedFor builds one SED with an instant compute service and a stall
// service that blocks until release is closed — the in-flight request
// the crash orphans.
func sedFor(name string, release <-chan struct{}, started chan<- string) (*middleware.SED, error) {
	sed, err := middleware.NewSED(middleware.SEDConfig{
		Name:  name,
		Slots: 2,
		Meter: func() (float64, bool) { return 100, true },
	})
	if err != nil {
		return nil, err
	}
	if err := sed.Register(middleware.Service{
		Name:  "compute",
		Solve: func(ctx context.Context, req middleware.Request) ([]byte, error) { return nil, nil },
	}); err != nil {
		return nil, err
	}
	return sed, sed.Register(middleware.Service{
		Name: "stall",
		Solve: func(ctx context.Context, req middleware.Request) ([]byte, error) {
			started <- name
			<-release
			return []byte("late"), nil
		},
	})
}

func main() {
	dir, err := os.MkdirTemp("", "durable-example-*")
	if err != nil {
		fail(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "master.wal")
	ctx := context.Background()

	release := make(chan struct{})
	started := make(chan string, 1)
	lean, err := sedFor("lean", release, started)
	if err != nil {
		fail(err)
	}
	hungry, err := sedFor("hungry", release, started)
	if err != nil {
		fail(err)
	}

	// --- incarnation A: journal mounted, short leases ---------------
	jrnA, err := journal.Open(path, journal.Options{})
	if err != nil {
		fail(err)
	}
	masterA, err := middleware.NewMaster(
		middleware.WithName("master-A"),
		middleware.WithPolicy(sched.New(sched.GreenPerf)),
		middleware.WithSEDs(lean, hungry),
		middleware.WithJournal(jrnA),
		middleware.WithLeaseTerm(300*time.Millisecond),
	)
	if err != nil {
		fail(err)
	}

	fmt.Println("== incarnation A: journaling every dispatch ==")
	for i := 0; i < 3; i++ {
		resp, err := masterA.Do(ctx, middleware.Request{Service: "compute", Ops: 1e9})
		if err != nil {
			fail(err)
		}
		fmt.Printf("  compute %d solved on %-6s (journaled: admit -> lease -> settle)\n", i+1, resp.Server)
	}

	// The fourth request stalls mid-solve: its lease is on disk, its
	// settle will never be.
	done := make(chan struct{})
	go func() {
		defer close(done)
		masterA.Do(ctx, middleware.Request{Service: "stall", Ops: 1e9})
	}()
	owner := <-started
	fmt.Printf("  stall request executing on %s, lease journaled\n", owner)

	// --- kill -9 ----------------------------------------------------
	// Abandon drops the journal exactly as a crash would: the fd is
	// closed without settling anything. The stalled solve then finishes
	// on the SED, but the dead master can no longer book it — that
	// duplicate-execution outcome is what the journal dedups.
	jrnA.Abandon()
	fmt.Println("\n== kill -9: master A is gone, one lease orphaned ==")
	close(release)
	<-done

	// --- recovery ---------------------------------------------------
	jrnB, err := journal.Open(path, journal.Options{})
	if err != nil {
		fail(err)
	}
	for _, e := range jrnB.Pending() {
		fmt.Printf("  journal fold: request #%d %s, leased to %s until t=%.0f\n",
			e.Admit.ID, e.State, e.SED, e.Expiry)
	}

	masterB, err := middleware.NewMaster(
		middleware.WithName("master-B"),
		middleware.WithPolicy(sched.New(sched.GreenPerf)),
		middleware.WithSEDs(lean, hungry),
		middleware.WithJournal(jrnB),
		middleware.WithLeaseTerm(300*time.Millisecond),
		middleware.WithInterceptors(&middleware.HookInterceptor{
			OnElectFunc: func(now float64, req middleware.Request, server string, list estvec.List) {
				fmt.Printf("  redo: %s re-elected onto %s (the dead lease's SED is excluded)\n", req.Service, server)
			},
		}),
	)
	if err != nil {
		fail(err)
	}

	fmt.Println("\n== incarnation B: replaying the journal ==")
	stats, err := masterB.Replay(ctx)
	if err != nil {
		fail(err)
	}
	fmt.Printf("  re-booked %d settled outcomes (no re-execution), resubmitted %d,\n", stats.Rebooked, stats.Resubmitted)
	fmt.Printf("  waited out %d expired lease(s), redone %d, failed %d\n", stats.LeaseExpired, stats.Redone, stats.Failed)
	if stats.Rebooked != 3 || stats.Resubmitted != 1 || stats.LeaseExpired != 1 || stats.Redone != 1 || stats.Failed != 0 {
		fail(fmt.Errorf("replay stats %+v: want 3 rebooked, 1 resubmission redone after its lease expired", stats))
	}

	res := masterB.Finalize()
	fmt.Printf("\nbooks after recovery: %d submitted, %d completed, %d failed — nothing lost\n",
		res.Submitted, res.Completed, res.Failed)
	if res.Submitted != 4 || res.Completed != 4 || res.Failed != 0 {
		fail(fmt.Errorf("books lost work: %d submitted, %d completed, %d failed", res.Submitted, res.Completed, res.Failed))
	}
	if st := jrnB.Stats(); st.Pending != 0 {
		fail(fmt.Errorf("journal left %d incomplete lifecycles", st.Pending))
	}
	fmt.Println("journal drained: 0 incomplete lifecycles")
	jrnB.Close()
	fmt.Printf("\n(inspect such a log anytime: go run ./cmd/greensched journal %s)\n", path)
}
