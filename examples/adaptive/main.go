// Adaptive provisioning: the §IV-C scenario with a custom event
// timeline. A closed-loop client keeps the candidate pool saturated
// while the planner reacts to electricity-price schedules (anticipated
// through its lookahead window) and unexpected heat events (detected
// at check time); drained nodes power off and boot back progressively.
package main

import (
	"fmt"
	"os"

	"greensched/internal/cluster"
	"greensched/internal/provision"
	"greensched/internal/sched"
	"greensched/internal/sim"
)

func main() {
	// A 2-hour timeline: one scheduled off-peak window and one
	// unexpected heat spike in the middle of it.
	store := provision.NewStore()
	store.Put(provision.Record{Value: 0, Cost: 1.0, Temperature: 22})
	store.Put(provision.Record{Value: 30 * 60, Cost: 0.5, Temperature: 22}) // scheduled off-peak
	store.Put(provision.Record{Value: 60 * 60, Cost: 0.5, Temperature: 28, Unexpected: true})
	store.Put(provision.Record{Value: 90 * 60, Cost: 0.5, Temperature: 21, Unexpected: true})

	planner := provision.NewPlanner(12, 4)
	planner.MinNodes = 2

	res, err := sim.RunAdaptive(sim.AdaptiveConfig{
		Platform: cluster.PaperPlatform(),
		Planner:  planner,
		Store:    store,
		Policy:   sched.New(sched.GreenPerf),
		TaskOps:  1.8e12,
		Horizon:  120 * 60,
		Seed:     1,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("%6s  %10s  %12s  %8s\n", "min", "candidates", "avg power W", "running")
	for _, s := range res.Samples {
		fmt.Printf("%6.0f  %10d  %12.0f  %8d\n", s.T/60, s.Candidates, s.AvgW, s.Running)
	}
	fmt.Printf("\ncompleted=%d tasks, energy=%.1f MJ, boots=%d, mean drain lag=%.0fs\n",
		res.Completed, res.EnergyJ/1e6, res.Boots, res.DrainLagS)
	for _, d := range res.Decisions {
		if d.Changed != 0 {
			fmt.Printf("t+%3.0fmin rule=%-12s pool %2d (%+d)\n",
				d.At/60, d.RuleNow, d.Pool, d.Changed)
		}
	}
}
