// Package greensched reproduces "Energy-Aware Server Provisioning by
// Introducing Middleware-Level Dynamic Green Scheduling"
// (Balouek-Thomert, Caron, Lefèvre — HPPAC/IPDPSW 2015): the GreenPerf
// metric, the provider/user preference model, score-based server
// election, Algorithm 1 candidate selection, and a DIET-style
// middleware with plug-in schedulers, together with the simulation
// substrate and harnesses that regenerate every table and figure of
// the paper's evaluation.
//
// Layout:
//
//	internal/core           the paper's contribution (GreenPerf, Eq. 1-6, Algorithm 1)
//	                        plus the carbon-aware ranking extensions
//	internal/middleware     live DIET-style hierarchy (in-process and TCP)
//	                        with the composable middleware.Interceptor
//	                        stack (NewMaster + functional options): SLA
//	                        admission + revenue ledger, carbon-window
//	                        deferral and budget metering run on the live
//	                        serving path, mirroring sim's module stack.
//	                        The master is concurrent: agent/SED config
//	                        lives behind atomic copy-on-write snapshots,
//	                        WithConcurrency bounds in-flight admissions,
//	                        and Master.Pipeline streams a request channel
//	                        through a bounded worker pool
//	internal/sim            deterministic discrete-event simulator with
//	                        per-node CO2 accounting and the composable
//	                        sim.Module extension stack (NewScenario +
//	                        functional options); carbon accounting, SLA
//	                        machinery, preemption, power controllers,
//	                        budget tracking and thermal monitoring all
//	                        mount as stackable modules. The run loop is
//	                        an event-heap kernel (time-ordered event
//	                        queue + arrival cursor, preallocated task
//	                        arenas, zero-alloc election inner loop);
//	                        Config.LegacyKernel retains the original
//	                        tick loop, held to byte-identical Results by
//	                        the cross-engine equivalence suite
//	internal/journal        crash-safety layer under the live path: an
//	                        append-only, checksummed, fsync-controlled
//	                        write-ahead log of request lifecycles
//	                        (admit → lease → settle) with torn-tail
//	                        recovery and compacting segment rotation;
//	                        middleware.WithJournal mounts it and
//	                        Master.Replay folds it back into exactly-once
//	                        books after a crash, redoing expired leases
//	                        on a surviving SED
//	internal/powerd         out-of-process power estimation: a versioned
//	                        JSON line protocol over unix/TCP sockets, a
//	                        reference sidecar (powerd.Serve, `greensched
//	                        powerd`) wrapping any power.Source, a
//	                        trace-replay model, and a fault-tolerant
//	                        client (timeout, retry, last-good cache,
//	                        circuit breaker, loud fallback to the
//	                        analytic curves); both substrates mount it —
//	                        middleware.ExternalPowerInterceptor on the
//	                        live path, sim.ExternalPowerModule in the
//	                        simulator
//	internal/simtime        virtual-time event engine (the kernel's heap)
//	internal/carbon         grid carbon-intensity signals, site profiles
//	                        and the joules→grams integrator
//	internal/sla            SLA classes (deadline, value, penalty curve),
//	                        admission control, the checkpoint/restart
//	                        preemption calculus and the revenue/penalty
//	                        ledger
//	internal/consolidation  related-work baseline (concentration + idle
//	                        shutdown) and the carbon-window controller,
//	                        both guarded by pending deadline slack, able
//	                        to preempt batch for urgent work, and
//	                        mountable as a consolidation.Module
//	internal/obs            fleet telemetry: Prometheus-style metric
//	                        registry + text exposition (no client_golang),
//	                        HTTP serving with pprof and the Go runtime
//	                        collector, the JSONL lifecycle tracer shared
//	                        by middleware (ObsInterceptor, WithMetricsAddr,
//	                        SEDConfig.MetricsAddr) and the simulator
//	                        (sim.TraceModule, sim.TelemetryModule), and
//	                        span-based distributed tracing (Span,
//	                        SpanWriter, AnalyzeSpans) stitched across the
//	                        gob wire and analyzed by `greensched spans`
//	internal/stats          gains, EDP and summary helpers for the harnesses
//	internal/analysis       Student-t / Welch statistics for multi-seed replication
//	internal/experiments    one harness per table/figure + extension studies
//	cmd/greensched          CLI to regenerate the evaluation
//	cmd/greenplan           provisioning-plan (Figure 8 XML) utility
//	examples/               runnable walkthroughs
//
// See README.md for the full package tour. The root package
// intentionally exposes only metadata; the implementation lives in the
// internal packages exercised by the benchmarks in bench_test.go.
package greensched

// Version is the library version.
const Version = "1.0.0"

// Paper identifies the reproduced publication.
const Paper = "Balouek-Thomert, Caron, Lefèvre: Energy-Aware Server Provisioning by " +
	"Introducing Middleware-Level Dynamic Green Scheduling. HPPAC/IPDPSW 2015, " +
	"DOI 10.1109/IPDPSW.2015.121"
