// Package report renders experiment outputs as the ASCII equivalents
// of the paper's tables and figures, plus CSV for external plotting.
package report

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// PerTask renders the per-completed-task cost pair — joules next to
// grams — that experiment harnesses print under their tables (the
// per-request carbon attribution of the ROADMAP follow-on).
func PerTask(joules, grams float64) string {
	return fmt.Sprintf("%.0f J/task, %.2f gCO2/task", joules, grams)
}

// Table is a simple aligned-column text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// CSV writes the table as CSV (no quoting: experiment cells never
// contain commas; enforced below).
func (t *Table) CSV(w io.Writer) error {
	var b strings.Builder
	writeRow := func(cells []string) error {
		for i, c := range cells {
			if strings.ContainsAny(c, ",\n\"") {
				return fmt.Errorf("report: CSV cell %q needs quoting", c)
			}
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
		return nil
	}
	if err := writeRow(t.Headers); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// BarChart renders a horizontal ASCII bar chart — the stand-in for the
// paper's per-node task histograms (Figures 2–4) and per-cluster
// energy bars (Figure 5).
type BarChart struct {
	Title string
	Unit  string
	Width int // bar width in characters; 0 means 50

	labels []string
	values []float64
}

// Add appends a labelled value.
func (c *BarChart) Add(label string, value float64) {
	c.labels = append(c.labels, label)
	c.values = append(c.values, value)
}

// Render writes the chart.
func (c *BarChart) Render(w io.Writer) error {
	width := c.Width
	if width <= 0 {
		width = 50
	}
	maxV, maxL := 0.0, 0
	for i, v := range c.values {
		maxV = math.Max(maxV, v)
		if len(c.labels[i]) > maxL {
			maxL = len(c.labels[i])
		}
	}
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	for i, v := range c.values {
		n := 0
		if maxV > 0 {
			n = int(math.Round(v / maxV * float64(width)))
		}
		fmt.Fprintf(&b, "%-*s | %s %.6g%s\n", maxL, c.labels[i], strings.Repeat("#", n), v, c.Unit)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Scatter renders labelled (x, y) points plus optional envelopes as a
// coarse ASCII plane — the Figures 6/7 stand-in. Points outside every
// envelope are plotted with their label's first rune.
type Scatter struct {
	Title  string
	XLabel string
	YLabel string
	Cols   int
	Lines  int

	labels []string
	xs     []float64
	ys     []float64
	band   *struct{ minX, maxX, minY, maxY float64 }
}

// Add places a labelled point.
func (s *Scatter) Add(label string, x, y float64) {
	s.labels = append(s.labels, label)
	s.xs = append(s.xs, x)
	s.ys = append(s.ys, y)
}

// SetBand sets the shaded RANDOM envelope.
func (s *Scatter) SetBand(minX, maxX, minY, maxY float64) {
	s.band = &struct{ minX, maxX, minY, maxY float64 }{minX, maxX, minY, maxY}
}

// Render writes the plot followed by a point legend.
func (s *Scatter) Render(w io.Writer) error {
	cols, lines := s.Cols, s.Lines
	if cols <= 0 {
		cols = 60
	}
	if lines <= 0 {
		lines = 16
	}
	if len(s.xs) == 0 {
		_, err := fmt.Fprintf(w, "%s\n(no points)\n", s.Title)
		return err
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	grow := func(x, y float64) {
		minX, maxX = math.Min(minX, x), math.Max(maxX, x)
		minY, maxY = math.Min(minY, y), math.Max(maxY, y)
	}
	for i := range s.xs {
		grow(s.xs[i], s.ys[i])
	}
	if s.band != nil {
		grow(s.band.minX, s.band.minY)
		grow(s.band.maxX, s.band.maxY)
	}
	// Pad degenerate ranges.
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	padX, padY := (maxX-minX)*0.05, (maxY-minY)*0.05
	minX, maxX = minX-padX, maxX+padX
	minY, maxY = minY-padY, maxY+padY

	grid := make([][]rune, lines)
	for i := range grid {
		grid[i] = []rune(strings.Repeat(" ", cols))
	}
	toCell := func(x, y float64) (int, int) {
		cx := int((x - minX) / (maxX - minX) * float64(cols-1))
		cy := int((maxY - y) / (maxY - minY) * float64(lines-1))
		return cx, cy
	}
	if s.band != nil {
		for _, y := range []float64{s.band.minY, s.band.maxY} {
			for x := s.band.minX; x <= s.band.maxX; x += (maxX - minX) / float64(cols) {
				cx, cy := toCell(x, y)
				grid[cy][cx] = '.'
			}
		}
		for _, x := range []float64{s.band.minX, s.band.maxX} {
			for y := s.band.minY; y <= s.band.maxY; y += (maxY - minY) / float64(lines) {
				cx, cy := toCell(x, y)
				grid[cy][cx] = '.'
			}
		}
	}
	for i := range s.xs {
		cx, cy := toCell(s.xs[i], s.ys[i])
		r := '*'
		if len(s.labels[i]) > 0 {
			r = []rune(s.labels[i])[0]
		}
		grid[cy][cx] = r
	}
	var b strings.Builder
	if s.Title != "" {
		fmt.Fprintf(&b, "%s\n", s.Title)
	}
	fmt.Fprintf(&b, "%s ^\n", s.YLabel)
	for _, row := range grid {
		fmt.Fprintf(&b, "  |%s\n", string(row))
	}
	fmt.Fprintf(&b, "  +%s> %s\n", strings.Repeat("-", cols), s.XLabel)
	// Legend sorted by label for stable output.
	idx := make([]int, len(s.labels))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return s.labels[idx[a]] < s.labels[idx[b]] })
	for _, i := range idx {
		fmt.Fprintf(&b, "  %s: (%.6g, %.6g)\n", s.labels[i], s.xs[i], s.ys[i])
	}
	if s.band != nil {
		fmt.Fprintf(&b, "  RANDOM area: x∈[%.6g,%.6g] y∈[%.6g,%.6g]\n",
			s.band.minX, s.band.maxX, s.band.minY, s.band.maxY)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// TimeSeries renders a two-axis series (the Figure 9 stand-in): an
// integer step series (candidates, left axis) and a float series
// (average watts, right axis) over shared timestamps.
type TimeSeries struct {
	Title string

	t     []float64
	left  []float64
	right []float64
}

// Add appends one sample.
func (ts *TimeSeries) Add(t, left, right float64) {
	ts.t = append(ts.t, t)
	ts.left = append(ts.left, left)
	ts.right = append(ts.right, right)
}

// Render writes "minute  candidates  watts" rows with spark bars.
func (ts *TimeSeries) Render(w io.Writer) error {
	var b strings.Builder
	if ts.Title != "" {
		fmt.Fprintf(&b, "%s\n", ts.Title)
	}
	maxL, maxR := 0.0, 0.0
	for i := range ts.t {
		maxL = math.Max(maxL, ts.left[i])
		maxR = math.Max(maxR, ts.right[i])
	}
	fmt.Fprintf(&b, "%8s  %28s  %s\n", "min", "candidates", "avg power (W)")
	for i := range ts.t {
		lBar, rBar := 0, 0
		if maxL > 0 {
			lBar = int(math.Round(ts.left[i] / maxL * 12))
		}
		if maxR > 0 {
			rBar = int(math.Round(ts.right[i] / maxR * 24))
		}
		fmt.Fprintf(&b, "%8.0f  %2.0f %-25s  %7.0f %s\n",
			ts.t[i]/60, ts.left[i], strings.Repeat("#", lBar), ts.right[i], strings.Repeat("+", rBar))
	}
	_, err := io.WriteString(w, b.String())
	return err
}
