package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := &Table{
		Title:   "Table II",
		Headers: []string{"Metric", "RANDOM", "POWER"},
	}
	tb.AddRow("Makespan (s)", "2336", "2321")
	tb.AddRow("Energy (J)", "6041436", "4528547")
	var b strings.Builder
	if err := tb.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Table II", "Makespan (s)", "6041436", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
}

func TestTableCSV(t *testing.T) {
	tb := &Table{Headers: []string{"a", "b"}}
	tb.AddRow("1", "2")
	var b strings.Builder
	if err := tb.CSV(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != "a,b\n1,2\n" {
		t.Fatalf("CSV = %q", b.String())
	}
	bad := &Table{Headers: []string{"a,b"}}
	if err := bad.CSV(&strings.Builder{}); err == nil {
		t.Fatal("comma cell accepted")
	}
}

func TestBarChart(t *testing.T) {
	c := &BarChart{Title: "Fig 2", Unit: " tasks", Width: 10}
	c.Add("taurus-0", 100)
	c.Add("sagittaire-0", 25)
	var b strings.Builder
	if err := c.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "##########") {
		t.Errorf("max bar not full width:\n%s", out)
	}
	if !strings.Contains(out, "100 tasks") || !strings.Contains(out, "25 tasks") {
		t.Errorf("values missing:\n%s", out)
	}
	// Rows keep insertion order.
	if strings.Index(out, "taurus-0") > strings.Index(out, "sagittaire-0") {
		t.Error("rows reordered")
	}
}

func TestBarChartZeroValues(t *testing.T) {
	c := &BarChart{}
	c.Add("empty", 0)
	var b strings.Builder
	if err := c.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "empty") {
		t.Fatal("zero-value row missing")
	}
}

func TestScatterRender(t *testing.T) {
	s := &Scatter{Title: "Fig 7", XLabel: "makespan (s)", YLabel: "energy (J)", Cols: 40, Lines: 10}
	s.Add("G", 3000, 4.0e6)
	s.Add("GP", 2500, 4.5e6)
	s.Add("P", 2200, 5.5e6)
	s.SetBand(2400, 3100, 5.0e6, 6.2e6)
	var b strings.Builder
	if err := s.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Fig 7", "G: (3000", "GP: (2500", "P: (2200", "RANDOM area"} {
		if !strings.Contains(out, want) {
			t.Errorf("scatter missing %q:\n%s", want, out)
		}
	}
	// Legend sorted by label.
	if strings.Index(out, "G: (") > strings.Index(out, "P: (") {
		t.Error("legend unsorted")
	}
}

func TestScatterEmpty(t *testing.T) {
	s := &Scatter{Title: "empty"}
	var b strings.Builder
	if err := s.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "no points") {
		t.Fatal("empty scatter should say so")
	}
}

func TestScatterDegenerateRange(t *testing.T) {
	s := &Scatter{}
	s.Add("A", 5, 5)
	s.Add("B", 5, 5) // identical point: zero range must not divide by zero
	var b strings.Builder
	if err := s.Render(&b); err != nil {
		t.Fatal(err)
	}
}

func TestTimeSeriesRender(t *testing.T) {
	ts := &TimeSeries{Title: "Fig 9"}
	ts.Add(600, 4, 800)
	ts.Add(1200, 8, 1500)
	var b strings.Builder
	if err := ts.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "Fig 9") || !strings.Contains(out, "avg power (W)") {
		t.Errorf("header missing:\n%s", out)
	}
	if !strings.Contains(out, "10") || !strings.Contains(out, "20") {
		t.Errorf("minutes missing:\n%s", out)
	}
	if !strings.Contains(out, "1500") {
		t.Errorf("watts missing:\n%s", out)
	}
}
