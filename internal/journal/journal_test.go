package journal

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// admit returns a minimal admission record for ID.
func admit(id uint64) Record {
	return Record{ID: id, Service: "compute", Ops: 1e6, Class: "batch", SubmitAt: float64(id)}
}

// TestLifecycleFold drives one full lifecycle per outcome and checks
// the reopened fold: settled entries on the settled side, incomplete
// entries pending with their last-known state.
func TestLifecycleFold(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	j, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// 1 completes, 2 fails, 3 is rejected, 4 stays leased, 5 stays
	// deferred, 6 stays admitted.
	for id := uint64(1); id <= 6; id++ {
		if err := j.Admit(admit(id)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := j.Lease(1, "lean", 30); err != nil {
		t.Fatal(err)
	}
	if err := j.Settle(1, StateCompleted, 10, 0.5, 42, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Lease(2, "hungry", 30); err != nil {
		t.Fatal(err)
	}
	if err := j.Settle(2, StateFailed, 11, 0, 0, "boom"); err != nil {
		t.Fatal(err)
	}
	if err := j.Settle(3, StateRejected, 12, 0, 0, "rejected"); err != nil {
		t.Fatal(err)
	}
	exp, err := j.Lease(4, "lean", 7)
	if err != nil {
		t.Fatal(err)
	}
	if exp <= 0 {
		t.Fatalf("lease expiry %v", exp)
	}
	if err := j.Defer(5); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if got := j2.MaxID(); got != 6 {
		t.Errorf("MaxID = %d, want 6", got)
	}
	settled := j2.Settled()
	if len(settled) != 3 {
		t.Fatalf("settled %d entries, want 3", len(settled))
	}
	if settled[0].State != StateCompleted || settled[0].Final.EnergyJ != 42 {
		t.Errorf("entry 1 = %+v", settled[0])
	}
	if settled[1].State != StateFailed || settled[1].Final.Err != "boom" {
		t.Errorf("entry 2 = %+v", settled[1])
	}
	if settled[2].State != StateRejected {
		t.Errorf("entry 3 = %+v", settled[2])
	}
	pending := j2.Pending()
	if len(pending) != 3 {
		t.Fatalf("pending %d entries, want 3", len(pending))
	}
	if pending[0].State != StateLeased || pending[0].SED != "lean" || pending[0].Expiry != exp {
		t.Errorf("entry 4 = %+v", pending[0])
	}
	if pending[1].State != StateDeferred {
		t.Errorf("entry 5 = %+v", pending[1])
	}
	if pending[2].State != StateAdmitted {
		t.Errorf("entry 6 = %+v", pending[2])
	}
	if pending[2].Admit.Service != "compute" || pending[2].Admit.Class != "batch" {
		t.Errorf("admission payload lost: %+v", pending[2].Admit)
	}
}

// TestDedup checks the journal's idempotence guarantees: re-admitting
// a pending ID, settling twice, and mutating an unknown ID are all
// silent no-ops.
func TestDedup(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	j, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.Admit(admit(1)); err != nil {
		t.Fatal(err)
	}
	before := j.Stats().Appended
	if err := j.Admit(admit(1)); err != nil {
		t.Fatal(err)
	}
	if got := j.Stats().Appended; got != before {
		t.Errorf("re-admit wrote a record (%d → %d)", before, got)
	}
	if err := j.Settle(1, StateCompleted, 1, 1, 1, ""); err != nil {
		t.Fatal(err)
	}
	before = j.Stats().Appended
	if err := j.Settle(1, StateCompleted, 2, 2, 2, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Lease(1, "x", 1); err != nil {
		t.Fatal(err)
	}
	if err := j.Defer(99); err != nil {
		t.Fatal(err)
	}
	if got := j.Stats().Appended; got != before {
		t.Errorf("settled/unknown mutations wrote records (%d → %d)", before, got)
	}
	if err := j.Settle(2, StateLeased, 0, 0, 0, ""); err == nil {
		t.Error("Settle accepted a non-terminal state")
	}
}

// TestTornTail cuts the final frame mid-payload and checks recovery
// truncates to the good prefix with a warning — never panics, never
// loses the good records.
func TestTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	j, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for id := uint64(1); id <= 3; id++ {
		if err := j.Admit(admit(id)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Cut the last 5 bytes: the final record is torn.
	if err := os.WriteFile(path, raw[:len(raw)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	var warned strings.Builder
	j2, err := Open(path, Options{Warn: func(f string, a ...any) {
		warned.WriteString(strings.TrimSpace(f))
	}})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(j2.Pending()); got != 2 {
		t.Errorf("pending %d, want 2 (good prefix)", got)
	}
	if !j2.Stats().Truncated {
		t.Error("Truncated flag not set")
	}
	if warned.Len() == 0 {
		t.Error("no warning for torn tail")
	}
	// The journal stays appendable at the truncation point.
	if err := j2.Admit(admit(9)); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	j3, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if got := len(j3.Pending()); got != 3 {
		t.Errorf("pending %d after re-append, want 3", got)
	}
}

// TestCorruptChecksum flips a byte in a mid-log record: recovery keeps
// the records before it and reports the cut.
func TestCorruptChecksum(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	j, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for id := uint64(1); id <= 4; id++ {
		if err := j.Admit(admit(id)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte roughly in the middle of the log (inside the
	// second or third record, past its header).
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	rec, err := Recover(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Truncated {
		t.Fatal("corrupt record not reported")
	}
	if !strings.Contains(rec.Reason, "checksum") && !strings.Contains(rec.Reason, "undecodable") && !strings.Contains(rec.Reason, "implausible") {
		t.Errorf("reason %q does not describe corruption", rec.Reason)
	}
	if rec.Records == 0 || rec.Records >= 4 {
		t.Errorf("recovered %d records, want a proper prefix of 4", rec.Records)
	}
	// Open applies the same cut and keeps going.
	j2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if got := len(j2.Pending()); got != rec.Records {
		t.Errorf("pending %d, want %d (one admission per good record)", got, rec.Records)
	}
}

// syncFail wraps the real segment file, failing every Sync.
type syncFail struct {
	segmentFile
}

func (s syncFail) Sync() error { return errors.New("injected fsync failure") }

// TestFsyncError injects a failing fsync: the append surfaces the
// error and counts it, but the journal neither panics nor wedges —
// the record is written and later appends still work.
func TestFsyncError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	j, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	real := j.f
	j.f = syncFail{real}
	if err := j.Admit(admit(1)); err == nil {
		t.Fatal("fsync failure not surfaced")
	}
	if got := j.Stats().SyncErrors; got != 1 {
		t.Errorf("SyncErrors = %d, want 1", got)
	}
	// The record reached the OS buffer; the fold sees it.
	if got := len(j.Pending()); got != 1 {
		t.Errorf("pending %d, want 1", got)
	}
	j.f = real
	if err := j.Admit(admit(2)); err != nil {
		t.Fatalf("journal wedged after fsync error: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if got := len(j2.Pending()); got != 2 {
		t.Errorf("pending %d after reopen, want 2", got)
	}
}

// TestOversizeRecordRejected: a record whose encoding exceeds the
// frame limit is refused BEFORE any byte hits the file — recovery
// treats oversized frames as a corrupt tail, so writing one would
// silently discard it and every later record at the next restart.
func TestOversizeRecordRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	j, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	big := admit(1)
	big.Payload = bytes.Repeat([]byte("x"), maxRecordBytes+1)
	if err := j.Admit(big); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversize admit returned %v, want ErrTooLarge", err)
	}
	if got := len(j.Pending()); got != 0 {
		t.Errorf("oversize record entered the pending set (%d entries)", got)
	}
	if got := j.Stats().Appended; got != 0 {
		t.Errorf("oversize record counted as appended (%d)", got)
	}
	// The journal stays clean and appendable.
	if err := j.Admit(admit(2)); err != nil {
		t.Fatalf("journal wedged after oversize refusal: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Stats().Truncated {
		t.Error("oversize refusal left a corrupt tail on disk")
	}
	if got := len(j2.Pending()); got != 1 {
		t.Errorf("pending %d after reopen, want 1", got)
	}
}

// shortWrite writes a 2-byte prefix of the next frame then fails — a
// transient ENOSPC mid-append. Embedding *os.File keeps Truncate/Seek
// visible, so the journal can rewind the torn frame.
type shortWrite struct {
	*os.File
	failNext bool
}

func (s *shortWrite) Write(b []byte) (int, error) {
	if s.failNext {
		s.failNext = false
		n, _ := s.File.Write(b[:2])
		return n, errors.New("injected short write")
	}
	return s.File.Write(b)
}

// TestPartialWriteRewound: a failed append that left a torn frame on
// disk is truncated back to the last good boundary, so later appends
// never land behind bytes recovery would reject.
func TestPartialWriteRewound(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	var warned strings.Builder
	j, err := Open(path, Options{Warn: func(f string, a ...any) {
		warned.WriteString(f + "\n")
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Admit(admit(1)); err != nil {
		t.Fatal(err)
	}
	j.f = &shortWrite{File: j.f.(*os.File), failNext: true}
	if err := j.Admit(admit(2)); err == nil {
		t.Fatal("partial write not surfaced")
	}
	if !strings.Contains(warned.String(), "rewound") {
		t.Errorf("no rewind warning, got %q", warned.String())
	}
	if got := len(j.Pending()); got != 1 {
		t.Errorf("pending %d after failed append, want 1", got)
	}
	// The next append lands on the restored good boundary...
	if err := j.Admit(admit(3)); err != nil {
		t.Fatalf("journal wedged after rewind: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// ...and recovery sees a clean log: ids 1 and 3, no truncation.
	j2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Stats().Truncated {
		t.Error("rewound journal recovered as truncated")
	}
	pending := j2.Pending()
	if len(pending) != 2 || pending[0].Admit.ID != 1 || pending[1].Admit.ID != 3 {
		t.Errorf("pending after reopen = %+v, want ids 1 and 3", pending)
	}
}

// opaqueShortWrite fails like shortWrite but hides the underlying
// file's Truncate/Seek, so the torn frame cannot be rewound.
type opaqueShortWrite struct {
	segmentFile
	failNext bool
}

func (s *opaqueShortWrite) Write(b []byte) (int, error) {
	if s.failNext {
		s.failNext = false
		n, _ := s.segmentFile.Write(b[:2])
		return n, errors.New("injected short write")
	}
	return s.segmentFile.Write(b)
}

// TestPartialWriteUnrewindableFailsJournal: when a torn frame cannot
// be cut away, the journal fails loudly (ErrClosed on every later
// mutation) instead of appending records recovery would silently drop.
func TestPartialWriteUnrewindableFailsJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	var warned strings.Builder
	j, err := Open(path, Options{Warn: func(f string, a ...any) {
		warned.WriteString(f + "\n")
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Admit(admit(1)); err != nil {
		t.Fatal(err)
	}
	j.f = &opaqueShortWrite{segmentFile: j.f, failNext: true}
	if err := j.Admit(admit(2)); err == nil {
		t.Fatal("partial write not surfaced")
	}
	if !strings.Contains(warned.String(), "failing journal") {
		t.Errorf("no failure warning, got %q", warned.String())
	}
	if err := j.Admit(admit(3)); !errors.Is(err, ErrClosed) {
		t.Errorf("append after unrewindable tear returned %v, want ErrClosed", err)
	}
	// Recovery truncates the torn tail and keeps the good prefix.
	j2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if !j2.Stats().Truncated {
		t.Error("torn tail not reported on reopen")
	}
	if got := len(j2.Pending()); got != 1 {
		t.Errorf("pending %d after reopen, want the good prefix only", got)
	}
}

// TestRecoverLeaseAfterSettle: a lease record appearing after a settle
// (possible only in a damaged or hand-edited log) must not revert the
// journaled terminal outcome — Replay would re-execute settled work.
func TestRecoverLeaseAfterSettle(t *testing.T) {
	var buf bytes.Buffer
	for _, rec := range []Record{
		{Seq: 1, T: 1, State: StateAdmitted, ID: 1, Service: "compute"},
		{Seq: 2, T: 2, State: StateCompleted, ID: 1, FinishAt: 2, EnergyJ: 5},
		{Seq: 3, T: 3, State: StateLeased, ID: 1, SED: "lean", Expiry: 99},
	} {
		rec := rec
		if _, err := writeFrame(&buf, &rec); err != nil {
			t.Fatal(err)
		}
	}
	rec, err := Recover(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Entries) != 1 {
		t.Fatalf("entries = %d, want 1", len(rec.Entries))
	}
	if e := rec.Entries[0]; e.State != StateCompleted || e.Final.EnergyJ != 5 {
		t.Errorf("entry = %+v, want the settled outcome preserved", e)
	}
	if inc := rec.Incomplete(); len(inc) != 0 {
		t.Errorf("incomplete = %+v, want none (stale lease must not resurrect settled work)", inc)
	}
}

// TestRotationCompaction drives enough settled lifecycles through a
// tiny segment limit to force rotation, then checks the compacted
// file holds only the incomplete entries and folds identically.
func TestRotationCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	j, err := Open(path, Options{NoSync: true, SegmentBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	// Two long-lived incomplete entries bracket a churn of settled ones.
	if err := j.Admit(admit(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Lease(1, "lean", 60); err != nil {
		t.Fatal(err)
	}
	if err := j.Admit(admit(2)); err != nil {
		t.Fatal(err)
	}
	if err := j.Defer(2); err != nil {
		t.Fatal(err)
	}
	for id := uint64(10); id < 100; id++ {
		if err := j.Admit(admit(id)); err != nil {
			t.Fatal(err)
		}
		if _, err := j.Lease(id, "hungry", 60); err != nil {
			t.Fatal(err)
		}
		if err := j.Settle(id, StateCompleted, float64(id), 0.1, 1, ""); err != nil {
			t.Fatal(err)
		}
	}
	st := j.Stats()
	if st.Rotations == 0 {
		t.Fatal("no rotation under a 2 KiB segment limit")
	}
	if st.SegmentBytes > 2048+1024 {
		t.Errorf("active segment %d bytes despite compaction", st.SegmentBytes)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() > 4096 {
		t.Errorf("on-disk journal %d bytes; compaction should keep it near the pending set", fi.Size())
	}
	j2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	pending := j2.Pending()
	if len(pending) != 2 {
		t.Fatalf("pending %d after compaction, want 2", len(pending))
	}
	if pending[0].State != StateLeased || pending[0].SED != "lean" {
		t.Errorf("entry 1 lost its lease through compaction: %+v", pending[0])
	}
	if pending[1].State != StateDeferred {
		t.Errorf("entry 2 lost its park through compaction: %+v", pending[1])
	}
	// Rotation dropped the settled bulk; only lifecycles settled after
	// the last rotation may remain in the tail.
	if got := len(j2.Settled()); got >= 45 {
		t.Errorf("%d of 90 settled entries survived compaction", got)
	}
}

// TestAbandon is the crash drill: appends after Abandon are lost with
// ErrClosed, appends before it survive on disk.
func TestAbandon(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	j, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Admit(admit(1)); err != nil {
		t.Fatal(err)
	}
	j.Abandon()
	if err := j.Admit(admit(2)); !errors.Is(err, ErrClosed) {
		t.Errorf("append after Abandon: %v, want ErrClosed", err)
	}
	if err := j.Settle(1, StateCompleted, 1, 1, 1, ""); !errors.Is(err, ErrClosed) {
		t.Errorf("settle after Abandon: %v, want ErrClosed", err)
	}
	j2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if got := len(j2.Pending()); got != 1 {
		t.Errorf("pending %d, want the pre-crash admission only", got)
	}
}

// TestRecoverEmpty folds an empty log.
func TestRecoverEmpty(t *testing.T) {
	rec, err := Recover(bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Truncated || rec.Records != 0 || len(rec.Entries) != 0 {
		t.Errorf("empty log folded to %+v", rec)
	}
}
