package journal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Recovery is the fold of a journal log: every request the log has
// seen with its last-known state, plus a report on how the read ended.
type Recovery struct {
	// Entries holds one folded entry per admitted request, in
	// first-admission order.
	Entries []Entry
	// Counts tallies the records read, by state.
	Counts map[State]int
	// Records is the total number of good records folded.
	Records int
	// Orphans counts non-admission records whose request was never
	// admitted in this log (compaction can legitimately produce none;
	// a nonzero count usually means the log lost its head).
	Orphans int
	// MaxID and MaxSeq are the highest request ID / sequence number
	// seen.
	MaxID  uint64
	MaxSeq uint64
	// GoodBytes is the length of the valid prefix. When Truncated is
	// true the log should be cut here.
	GoodBytes int64
	// Truncated reports a torn or corrupt tail: the read stopped at
	// GoodBytes instead of a clean EOF.
	Truncated bool
	// Reason describes why the tail was dropped ("" on a clean read).
	Reason string
}

// Incomplete returns the folded entries that never settled — the set
// a restarting master re-submits — sorted by admission order.
func (r *Recovery) Incomplete() []Entry {
	var out []Entry
	for _, e := range r.Entries {
		if !e.Settled() {
			out = append(out, e)
		}
	}
	return out
}

// Settled returns the folded entries that reached a terminal state.
func (r *Recovery) Settled() []Entry {
	var out []Entry
	for _, e := range r.Entries {
		if e.Settled() {
			out = append(out, e)
		}
	}
	return out
}

// Recover folds a journal log into the set of requests it describes.
// It never fails on a damaged tail: a torn final frame (crash
// mid-append) or a checksum mismatch stops the read at the last good
// frame and reports it via Truncated/Reason — the caller decides
// whether to truncate the file (Open does). Only a genuine read error
// from r is returned as an error.
func Recover(r io.Reader) (*Recovery, error) {
	out := &Recovery{Counts: make(map[State]int)}
	index := make(map[uint64]int) // request ID → position in Entries
	var hdr [headerBytes]byte
	for {
		n, err := io.ReadFull(r, hdr[:])
		if err != nil {
			if errors.Is(err, io.EOF) {
				return out, nil // clean end of log
			}
			if errors.Is(err, io.ErrUnexpectedEOF) {
				out.torn(fmt.Sprintf("torn header (%d of %d bytes)", n, headerBytes))
				return out, nil
			}
			return nil, fmt.Errorf("journal: read header: %w", err)
		}
		size := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if size == 0 || size > maxRecordBytes {
			out.torn(fmt.Sprintf("implausible record length %d", size))
			return out, nil
		}
		payload := make([]byte, size)
		if m, err := io.ReadFull(r, payload); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				out.torn(fmt.Sprintf("torn payload (%d of %d bytes)", m, size))
				return out, nil
			}
			return nil, fmt.Errorf("journal: read payload: %w", err)
		}
		if got := crc32.ChecksumIEEE(payload); got != sum {
			out.torn(fmt.Sprintf("checksum mismatch (want %08x, got %08x)", sum, got))
			return out, nil
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			out.torn(fmt.Sprintf("undecodable record: %v", err))
			return out, nil
		}
		out.GoodBytes += int64(headerBytes) + int64(size)
		out.Records++
		out.Counts[rec.State]++
		if rec.Seq > out.MaxSeq {
			out.MaxSeq = rec.Seq
		}
		if rec.ID > out.MaxID {
			out.MaxID = rec.ID
		}
		out.fold(index, rec)
	}
}

// fold applies one record to the running per-request state.
func (r *Recovery) fold(index map[uint64]int, rec Record) {
	if rec.State == StateAdmitted {
		if _, ok := index[rec.ID]; ok {
			return // duplicate admission: first one wins
		}
		index[rec.ID] = len(r.Entries)
		r.Entries = append(r.Entries, Entry{Admit: rec, State: StateAdmitted})
		return
	}
	i, ok := index[rec.ID]
	if !ok {
		r.Orphans++
		return
	}
	e := &r.Entries[i]
	switch rec.State {
	case StateLeased:
		// Never revert a settled entry (possible only in a damaged or
		// hand-edited log): a journaled terminal outcome must not be
		// re-executed by Replay.
		if !e.State.Settled() {
			e.State = StateLeased
			e.SED = rec.SED
			e.Expiry = rec.Expiry
		}
	case StateDeferred:
		if !e.State.Settled() {
			e.State = StateDeferred
		}
	case StateCompleted, StateFailed, StateRejected:
		e.State = rec.State
		e.Final = rec
	}
}

// torn marks a damaged tail.
func (r *Recovery) torn(reason string) {
	r.Truncated = true
	r.Reason = reason
}
