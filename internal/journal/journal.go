// Package journal is the crash-safety layer under the live serving
// path: an append-only, checksummed, fsync-controlled write-ahead log
// of request lifecycle records. Every admitted request is journaled
// before dispatch, every SED dispatch books a lease (owner + expiry),
// and every outcome settles the entry — so a master that dies
// mid-flight can be restarted over the same file and fold the log back
// into the exact set of incomplete requests with their last-known
// state (middleware.Master.Replay consumes that fold).
//
// The format is deliberately simple: length-prefixed frames, each an
// 8-byte header (uint32 LE payload length, uint32 LE IEEE CRC-32 of
// the payload) followed by one JSON-encoded Record. A torn final frame
// — the normal signature of a crash mid-append — is truncated away
// with a warning on recovery; a checksum mismatch anywhere cuts the
// log at the last good frame the same way. Recovery never panics and
// never invents records: the good prefix is the journal.
//
// The active segment rotates once it exceeds Options.SegmentBytes:
// rotation writes a compacted segment holding only the incomplete
// entries (fully-settled lifecycles are dropped — their bytes are the
// ones a long-lived master would otherwise accumulate forever) and
// atomically renames it over the path, so the on-disk journal stays
// proportional to the in-flight set, not the request history.
package journal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"sync"
	"time"
)

// State is a lifecycle record's kind. A request folds through
// admitted → (deferred) → leased → completed/failed/rejected; the
// first three are incomplete states, the last three settle the entry.
type State string

// Lifecycle states, in the order a request moves through them.
const (
	StateAdmitted  State = "admitted"
	StateDeferred  State = "deferred"
	StateLeased    State = "leased"
	StateCompleted State = "completed"
	StateFailed    State = "failed"
	StateRejected  State = "rejected"
)

// Settled reports whether s is a terminal state.
func (s State) Settled() bool {
	return s == StateCompleted || s == StateFailed || s == StateRejected
}

// Record is one journal frame. Admission records carry the request
// payload (enough to re-submit it verbatim after a restart); lease
// records carry the owning SED and the lease expiry; settle records
// carry the outcome. T is on the journal's clock (absolute seconds,
// wall by default) while SubmitAt/FinishAt are on the mounting
// master's clock, so replay re-books outcomes at their original times.
type Record struct {
	Seq   uint64  `json:"seq"`
	T     float64 `json:"t"`
	State State   `json:"state"`
	ID    uint64  `json:"id"`

	// Admission payload (StateAdmitted).
	Service    string  `json:"service,omitempty"`
	Ops        float64 `json:"ops,omitempty"`
	Pref       float64 `json:"pref,omitempty"`
	Class      string  `json:"class,omitempty"`
	Deadline   float64 `json:"deadline,omitempty"`
	Value      float64 `json:"value,omitempty"`
	Deferrable bool    `json:"deferrable,omitempty"`
	Payload    []byte  `json:"payload,omitempty"`
	SubmitAt   float64 `json:"submit,omitempty"`

	// Lease fields (StateLeased).
	SED    string  `json:"sed,omitempty"`
	Expiry float64 `json:"expiry,omitempty"`

	// Outcome fields (StateCompleted / StateFailed / StateRejected).
	FinishAt float64 `json:"finish,omitempty"`
	ExecSec  float64 `json:"exec,omitempty"`
	EnergyJ  float64 `json:"energy,omitempty"`
	Err      string  `json:"err,omitempty"`
}

// Entry is the folded last-known state of one journaled request: its
// admission record plus whatever the latest lifecycle record said.
type Entry struct {
	// Admit is the admission record (request payload).
	Admit Record
	// State is the last-known lifecycle state.
	State State
	// SED and Expiry are the current lease when State is StateLeased.
	SED    string
	Expiry float64
	// Final is the terminal record when State is settled.
	Final Record
}

// Settled reports whether the entry reached a terminal state.
func (e Entry) Settled() bool { return e.State.Settled() }

// Stats is the journal's observability snapshot.
type Stats struct {
	// Appended counts records written since Open (excluding records
	// re-emitted by compaction).
	Appended uint64
	// BytesTotal counts bytes written since Open (including
	// compaction).
	BytesTotal uint64
	// SegmentBytes is the active segment's current size.
	SegmentBytes int64
	// Rotations counts segment rotations (each one compacted away the
	// settled entries).
	Rotations uint64
	// Pending is the current incomplete-entry count.
	Pending int
	// SyncErrors counts fsync failures (the record is in the OS buffer
	// but its durability is not confirmed).
	SyncErrors uint64
	// Truncated is true when Open cut a torn or corrupt tail.
	Truncated bool
}

// Options configures Open.
type Options struct {
	// NoSync disables the per-append fsync: throughput over
	// durability (a crash may lose the OS-buffered suffix, which
	// recovery then treats as a torn tail).
	NoSync bool
	// SegmentBytes is the rotation threshold; once the active segment
	// exceeds it, settled entries are compacted away. 0 means 4 MiB;
	// negative disables rotation.
	SegmentBytes int64
	// Now overrides the journal clock (absolute seconds). The default
	// is Unix wall time, which is what lets lease expiries written by
	// one master incarnation be compared by the next.
	Now func() float64
	// Warn receives recovery and rotation warnings; nil discards them.
	Warn func(format string, args ...any)
}

const (
	headerBytes     = 8
	defaultSegBytes = 4 << 20
	maxRecordBytes  = 1 << 20
	compactSuffix   = ".compact"
)

// DefaultLeaseTermSec is the lease term middleware uses when none is
// configured.
const DefaultLeaseTermSec = 30.0

// ErrClosed is returned by mutations on a closed or abandoned journal.
var ErrClosed = fmt.Errorf("journal: closed")

// ErrSync wraps a failed fsync: the record reached the OS buffer (the
// fold applied it) but its durability is unconfirmed. Callers decide
// whether that is fatal; the middleware counts it and keeps serving.
var ErrSync = fmt.Errorf("journal: fsync")

// ErrTooLarge is returned when a record's encoding exceeds
// maxRecordBytes. The frame is never written: recovery treats any
// frame length over the limit as a corrupt tail, so emitting one would
// silently truncate the record AND everything journaled after it at
// the next restart.
var ErrTooLarge = fmt.Errorf("journal: record too large")

// segmentFile is the active segment's runtime surface — *os.File in
// production; tests substitute a failing implementation to drive the
// fsync-error path.
type segmentFile interface {
	io.Writer
	io.Closer
	Sync() error
}

// Journal is an open write-ahead log. All methods are safe for
// concurrent use.
type Journal struct {
	mu       sync.Mutex
	f        segmentFile
	path     string
	now      func() float64
	noSync   bool
	segLimit int64
	warn     func(string, ...any)

	seq     uint64
	segLen  int64
	pending map[uint64]*Entry
	settled []Entry // folded from disk at Open; consumed by Replay
	maxID   uint64

	appended   uint64
	bytesTotal uint64
	rotations  uint64
	syncErrs   uint64
	truncated  bool
}

// Open opens (creating if needed) the journal at path, folds any
// existing log into memory, and truncates a torn or corrupt tail with
// a warning. The returned journal appends at the end of the good
// prefix; Pending and Settled expose the fold for replay.
func Open(path string, o Options) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: open %s: %w", path, err)
	}
	rec, err := Recover(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: recover %s: %w", path, err)
	}
	warn := o.Warn
	if warn == nil {
		warn = func(string, ...any) {}
	}
	if rec.Truncated {
		warn("journal: %s: torn or corrupt tail, truncating to %d bytes (%d good records)", path, rec.GoodBytes, rec.Records)
		if err := f.Truncate(rec.GoodBytes); err != nil {
			f.Close()
			return nil, fmt.Errorf("journal: truncate %s: %w", path, err)
		}
	}
	if _, err := f.Seek(rec.GoodBytes, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: seek %s: %w", path, err)
	}
	now := o.Now
	if now == nil {
		now = func() float64 { return float64(time.Now().UnixNano()) / float64(time.Second) }
	}
	segLimit := o.SegmentBytes
	if segLimit == 0 {
		segLimit = defaultSegBytes
	}
	j := &Journal{
		f: f, path: path, now: now, noSync: o.NoSync, segLimit: segLimit, warn: warn,
		seq: rec.MaxSeq, segLen: rec.GoodBytes,
		pending:   make(map[uint64]*Entry),
		maxID:     rec.MaxID,
		truncated: rec.Truncated,
	}
	for _, e := range rec.Entries {
		if e.Settled() {
			j.settled = append(j.settled, e)
		} else {
			cp := e
			j.pending[e.Admit.ID] = &cp
		}
	}
	return j, nil
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// MaxID is the highest request ID the log has seen — a restarting
// master seeds its ID sequence past it so new traffic never collides
// with journaled lifecycles.
func (j *Journal) MaxID() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.maxID
}

// Now reads the journal clock.
func (j *Journal) Now() float64 { return j.now() }

// Admit journals a request's admission. It is the dedup point for
// replay: an ID that is already pending (the entry a replay is
// re-submitting) is not re-admitted, so a lifecycle appears in the log
// exactly once no matter how many times it is re-driven.
func (j *Journal) Admit(rec Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return ErrClosed
	}
	if _, ok := j.pending[rec.ID]; ok {
		return nil
	}
	rec.State = StateAdmitted
	err := j.append(&rec)
	if err != nil && !errors.Is(err, ErrSync) {
		return err
	}
	cp := rec
	j.pending[rec.ID] = &Entry{Admit: cp, State: StateAdmitted}
	if rec.ID > j.maxID {
		j.maxID = rec.ID
	}
	if err != nil {
		return err
	}
	return j.maybeRotate()
}

// Lease books a dispatch: sed owns the request until the returned
// expiry (journal clock). Re-leasing a pending request (failover to
// another SED, or redo after replay) simply supersedes the previous
// lease. An ID that is not pending is ignored.
func (j *Journal) Lease(id uint64, sed string, termSec float64) (float64, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return 0, ErrClosed
	}
	e, ok := j.pending[id]
	if !ok {
		return 0, nil
	}
	if termSec <= 0 {
		termSec = DefaultLeaseTermSec
	}
	expiry := j.now() + termSec
	rec := Record{State: StateLeased, ID: id, SED: sed, Expiry: expiry}
	err := j.append(&rec)
	if err != nil && !errors.Is(err, ErrSync) {
		return 0, err
	}
	e.State = StateLeased
	e.SED = sed
	e.Expiry = expiry
	if err != nil {
		return expiry, err
	}
	return expiry, j.maybeRotate()
}

// Defer marks a pending request as carbon-parked, so deferral survives
// a master restart: replay re-submits it through the stack, where it
// re-parks if the grid is still dirty. An ID that is not pending is
// ignored.
func (j *Journal) Defer(id uint64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return ErrClosed
	}
	e, ok := j.pending[id]
	if !ok || e.State == StateDeferred {
		return nil
	}
	rec := Record{State: StateDeferred, ID: id}
	err := j.append(&rec)
	if err != nil && !errors.Is(err, ErrSync) {
		return err
	}
	e.State = StateDeferred
	if err != nil {
		return err
	}
	return j.maybeRotate()
}

// Settle records a terminal outcome and removes the entry from the
// pending set. outcome must be a settled State. An ID that is not
// pending (already settled, or never admitted) is ignored — that is
// what makes a duplicate settle attempt a no-op on the books.
func (j *Journal) Settle(id uint64, outcome State, finishAt, execSec, energyJ float64, errMsg string) error {
	if !outcome.Settled() {
		return fmt.Errorf("journal: Settle with non-terminal state %q", outcome)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return ErrClosed
	}
	if _, ok := j.pending[id]; !ok {
		return nil
	}
	rec := Record{State: outcome, ID: id, FinishAt: finishAt, ExecSec: execSec, EnergyJ: energyJ, Err: errMsg}
	err := j.append(&rec)
	if err != nil && !errors.Is(err, ErrSync) {
		return err
	}
	delete(j.pending, id)
	if err != nil {
		return err
	}
	return j.maybeRotate()
}

// Pending snapshots the incomplete entries, sorted by request ID —
// the set Master.Replay re-submits.
func (j *Journal) Pending() []Entry {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Entry, 0, len(j.pending))
	for _, e := range j.pending {
		out = append(out, *e)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Admit.ID < out[b].Admit.ID })
	return out
}

// Settled returns the entries that were already terminal when the
// journal was opened, sorted by request ID — the set Master.Replay
// re-books (exactly once) into a fresh interceptor stack. Entries
// settled after Open are not accumulated here; they are already on the
// running master's books.
func (j *Journal) Settled() []Entry {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Entry, len(j.settled))
	copy(out, j.settled)
	sort.Slice(out, func(a, b int) bool { return out[a].Admit.ID < out[b].Admit.ID })
	return out
}

// Stats snapshots the journal's counters.
func (j *Journal) Stats() Stats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Stats{
		Appended:     j.appended,
		BytesTotal:   j.bytesTotal,
		SegmentBytes: j.segLen,
		Rotations:    j.rotations,
		Pending:      len(j.pending),
		SyncErrors:   j.syncErrs,
		Truncated:    j.truncated,
	}
}

// Sync flushes the active segment to stable storage.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return ErrClosed
	}
	return j.f.Sync()
}

// Close syncs and closes the journal. Pending entries stay pending on
// disk — that is the point: a clean shutdown with unfinished work
// replays exactly like a crash.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	f := j.f
	j.f = nil
	syncErr := f.Sync()
	if err := f.Close(); err != nil {
		return err
	}
	return syncErr
}

// Abandon drops the file handle WITHOUT syncing and marks the journal
// closed — the in-process equivalent of kill -9 for crash drills:
// everything appended so far stays in the log, every append after it
// is lost, exactly as if the process had died. RunDurableStudy uses it
// to kill a master mid-run.
func (j *Journal) Abandon() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return
	}
	j.f.Close()
	j.f = nil
}

// append frames and writes one record (caller holds mu). The sequence
// number is assigned here; fsync follows unless NoSync.
func (j *Journal) append(rec *Record) error {
	j.seq++
	rec.Seq = j.seq
	if rec.T == 0 {
		rec.T = j.now()
	}
	n, err := writeFrame(j.f, rec)
	if err != nil {
		if n > 0 {
			j.rewindTorn(int64(n), err)
		}
		return fmt.Errorf("journal: append: %w", err)
	}
	j.segLen += int64(n)
	j.bytesTotal += uint64(n)
	j.appended++
	if !j.noSync {
		if err := j.f.Sync(); err != nil {
			// The bytes are written (recovery will see them unless the
			// machine dies before the OS flushes); durability is just
			// unconfirmed. Surface the error, keep the journal usable.
			j.syncErrs++
			return fmt.Errorf("%w: %w", ErrSync, err)
		}
	}
	return nil
}

// rewindTorn repairs a partial frame write (caller holds mu): wrote
// bytes of a frame landed after the last good boundary at segLen, and
// recovery stops at the first bad frame, so any append allowed to land
// after them would be silently lost at the next restart. The segment is
// truncated back to segLen and the write offset restored; if the
// segment cannot be rewound, the journal is failed (every later
// mutation returns ErrClosed) — loudly non-durable beats quietly
// journaling records recovery will drop.
func (j *Journal) rewindTorn(wrote int64, cause error) {
	type rewinder interface {
		Truncate(size int64) error
		io.Seeker
	}
	if rw, ok := j.f.(rewinder); ok {
		if err := rw.Truncate(j.segLen); err == nil {
			if _, err := rw.Seek(j.segLen, io.SeekStart); err == nil {
				j.warn("journal: %s: rewound torn frame (%d bytes) after write error: %v", j.path, wrote, cause)
				return
			}
		}
	}
	j.warn("journal: %s: torn frame (%d bytes) could not be rewound after write error (%v); failing journal", j.path, wrote, cause)
	j.f.Close()
	j.f = nil
}

// maybeRotate compacts the active segment once it exceeds the limit:
// a fresh segment holding only the incomplete entries replaces the
// file atomically (write-temp, fsync, rename). Failure to rotate is a
// warning, never data loss — appends continue on the old segment.
func (j *Journal) maybeRotate() error {
	if j.segLimit < 0 || j.segLen <= j.segLimit {
		return nil
	}
	tmp := j.path + compactSuffix
	nf, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		j.warn("journal: rotate %s: %v", j.path, err)
		return nil
	}
	var size int64
	fail := func(err error) error {
		j.warn("journal: rotate %s: %v", j.path, err)
		nf.Close()
		os.Remove(tmp)
		return nil
	}
	// Re-emit each incomplete lifecycle in its canonical order:
	// admission, then the park or lease that is still in force.
	ids := make([]uint64, 0, len(j.pending))
	for id := range j.pending {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	for _, id := range ids {
		e := j.pending[id]
		recs := []Record{e.Admit}
		switch e.State {
		case StateDeferred:
			recs = append(recs, Record{State: StateDeferred, ID: id, T: j.now()})
		case StateLeased:
			recs = append(recs, Record{State: StateLeased, ID: id, SED: e.SED, Expiry: e.Expiry, T: j.now()})
		}
		for _, rec := range recs {
			j.seq++
			rec.Seq = j.seq
			n, err := writeFrame(nf, &rec)
			size += int64(n)
			j.bytesTotal += uint64(n)
			if err != nil {
				return fail(err)
			}
		}
	}
	if err := nf.Sync(); err != nil {
		return fail(err)
	}
	if err := os.Rename(tmp, j.path); err != nil {
		return fail(err)
	}
	j.f.Close()
	j.f = nf
	j.segLen = size
	j.rotations++
	return nil
}

// writeFrame encodes one record as header+payload and returns the
// bytes written (possibly partial on error). A record whose encoding
// exceeds maxRecordBytes is refused BEFORE any byte hits the file —
// recovery rejects oversized frames as a corrupt tail, so writing one
// would discard it and every later record at the next restart.
func writeFrame(w io.Writer, rec *Record) (int, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return 0, err
	}
	if len(payload) > maxRecordBytes {
		return 0, fmt.Errorf("%w: %d-byte record (limit %d)", ErrTooLarge, len(payload), maxRecordBytes)
	}
	var hdr [headerBytes]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	n, err := w.Write(hdr[:])
	if err != nil {
		return n, err
	}
	m, err := w.Write(payload)
	return n + m, err
}
