// Package forecast implements the §III-B/§III-C prediction inputs:
// "Resource usage forecast: using historical data to identify patterns
// and ensure the responsiveness of the platform during peak periods"
// and "predicting future usage from historical data". It provides an
// exponentially weighted forecaster, a seasonal (period-bucketed)
// forecaster for daily/weekly load patterns, and helpers that turn
// electricity tariff schedules into provisioning-plan records.
package forecast

import (
	"fmt"
	"math"

	"greensched/internal/provision"
)

// EWMA is an exponentially weighted moving average forecaster: the
// simplest "recent history" predictor, used for short-horizon
// utilization.
type EWMA struct {
	Alpha float64 // smoothing in (0,1]
	value float64
	init  bool
}

// NewEWMA returns a forecaster with the given smoothing factor.
func NewEWMA(alpha float64) (*EWMA, error) {
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("forecast: alpha %v outside (0,1]", alpha)
	}
	return &EWMA{Alpha: alpha}, nil
}

// Observe folds in a sample.
func (e *EWMA) Observe(v float64) {
	if !e.init {
		e.value = v
		e.init = true
		return
	}
	e.value += e.Alpha * (v - e.value)
}

// Forecast returns the current prediction; ok is false before any
// observation.
func (e *EWMA) Forecast() (float64, bool) { return e.value, e.init }

// Seasonal is a period-bucketed forecaster: it keeps one EWMA per
// bucket of the season (e.g. 24 hourly buckets of a day), capturing
// the utilization patterns the provider preference feeds on.
type Seasonal struct {
	Period     float64 // season length in seconds (86400 for daily)
	BucketSize float64 // bucket width in seconds (3600 for hourly)
	buckets    []*EWMA
}

// NewSeasonal builds a seasonal forecaster.
func NewSeasonal(period, bucketSize, alpha float64) (*Seasonal, error) {
	if period <= 0 || bucketSize <= 0 || bucketSize > period {
		return nil, fmt.Errorf("forecast: invalid period %v / bucket %v", period, bucketSize)
	}
	n := int(math.Ceil(period / bucketSize))
	s := &Seasonal{Period: period, BucketSize: bucketSize, buckets: make([]*EWMA, n)}
	for i := range s.buckets {
		e, err := NewEWMA(alpha)
		if err != nil {
			return nil, err
		}
		s.buckets[i] = e
	}
	return s, nil
}

// Buckets returns the number of buckets per season.
func (s *Seasonal) Buckets() int { return len(s.buckets) }

func (s *Seasonal) bucketFor(t float64) int {
	phase := math.Mod(t, s.Period)
	if phase < 0 {
		phase += s.Period
	}
	i := int(phase / s.BucketSize)
	if i >= len(s.buckets) {
		i = len(s.buckets) - 1
	}
	return i
}

// Observe records a utilization sample at absolute time t.
func (s *Seasonal) Observe(t, v float64) {
	s.buckets[s.bucketFor(t)].Observe(v)
}

// Forecast predicts the value at absolute (possibly future) time t
// from the matching seasonal bucket. ok is false when that bucket has
// never been observed.
func (s *Seasonal) Forecast(t float64) (float64, bool) {
	return s.buckets[s.bucketFor(t)].Forecast()
}

// ForecastOrDefault is Forecast with a fallback.
func (s *Seasonal) ForecastOrDefault(t, def float64) float64 {
	if v, ok := s.Forecast(t); ok {
		return v
	}
	return def
}

// TariffWindow is one electricity-price window of a daily schedule.
type TariffWindow struct {
	StartHour float64 // hour of day, [0, 24)
	EndHour   float64 // exclusive; may wrap past midnight
	Cost      float64 // cost ratio in [0,1] (the paper's c)
}

// Tariff is a daily electricity price schedule — the paper's regular /
// off-peak-1 / off-peak-2 states (§IV-C: 1.0, 0.8, 0.5).
type Tariff []TariffWindow

// PaperTariff returns the §IV-C three-state schedule mapped onto a
// plausible day: regular 08-22h (1.0), off-peak-1 22-02h (0.8),
// off-peak-2 02-08h (0.5).
func PaperTariff() Tariff {
	return Tariff{
		{StartHour: 8, EndHour: 22, Cost: 1.0},
		{StartHour: 22, EndHour: 2, Cost: 0.8},
		{StartHour: 2, EndHour: 8, Cost: 0.5},
	}
}

// Validate checks window sanity.
func (tf Tariff) Validate() error {
	if len(tf) == 0 {
		return fmt.Errorf("forecast: empty tariff")
	}
	for i, w := range tf {
		if w.StartHour < 0 || w.StartHour >= 24 || w.EndHour < 0 || w.EndHour > 24 {
			return fmt.Errorf("forecast: window %d hours out of range", i)
		}
		if w.Cost < 0 || w.Cost > 1 {
			return fmt.Errorf("forecast: window %d cost %v outside [0,1]", i, w.Cost)
		}
	}
	return nil
}

// CostAt returns the cost ratio in force at hour-of-day h (windows may
// wrap midnight); defaults to 1.0 (regular) when uncovered.
func (tf Tariff) CostAt(h float64) float64 {
	h = math.Mod(h, 24)
	if h < 0 {
		h += 24
	}
	for _, w := range tf {
		if w.StartHour <= w.EndHour {
			if h >= w.StartHour && h < w.EndHour {
				return w.Cost
			}
		} else { // wraps midnight
			if h >= w.StartHour || h < w.EndHour {
				return w.Cost
			}
		}
	}
	return 1.0
}

// PlanRecords materializes the tariff into scheduled plan records over
// [from, to) (seconds), one per window boundary, with the given
// temperature. The provisioning planner's lookahead then anticipates
// every price change exactly as in §IV-C Event 1.
func (tf Tariff) PlanRecords(from, to float64, temperature float64) ([]provision.Record, error) {
	if err := tf.Validate(); err != nil {
		return nil, err
	}
	if to <= from {
		return nil, fmt.Errorf("forecast: empty horizon")
	}
	var out []provision.Record
	last := math.NaN()
	for t := from; t < to; t += 3600 {
		hour := math.Mod(t/3600, 24)
		c := tf.CostAt(hour)
		if c != last {
			out = append(out, provision.Record{
				Value:       int64(t),
				Cost:        c,
				Temperature: temperature,
			})
			last = c
		}
	}
	return out, nil
}
