package forecast

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEWMAValidation(t *testing.T) {
	for _, bad := range []float64{0, -1, 1.5} {
		if _, err := NewEWMA(bad); err == nil {
			t.Errorf("alpha %v accepted", bad)
		}
	}
}

func TestEWMAConverges(t *testing.T) {
	e, err := NewEWMA(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.Forecast(); ok {
		t.Fatal("forecast before observation should be !ok")
	}
	e.Observe(10)
	if v, ok := e.Forecast(); !ok || v != 10 {
		t.Fatalf("first forecast = %v,%v", v, ok)
	}
	for i := 0; i < 20; i++ {
		e.Observe(50)
	}
	if v, _ := e.Forecast(); math.Abs(v-50) > 0.01 {
		t.Fatalf("EWMA did not converge: %v", v)
	}
}

func TestSeasonalValidation(t *testing.T) {
	if _, err := NewSeasonal(0, 1, 0.5); err == nil {
		t.Fatal("zero period accepted")
	}
	if _, err := NewSeasonal(10, 20, 0.5); err == nil {
		t.Fatal("bucket larger than period accepted")
	}
	if _, err := NewSeasonal(10, 1, 0); err == nil {
		t.Fatal("bad alpha accepted")
	}
}

func TestSeasonalLearnsDailyPattern(t *testing.T) {
	day := 86400.0
	s, err := NewSeasonal(day, 3600, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if s.Buckets() != 24 {
		t.Fatalf("buckets = %d", s.Buckets())
	}
	// Three days of a synthetic pattern: busy at 10:00 (0.9), quiet at
	// 03:00 (0.1).
	for d := 0; d < 3; d++ {
		base := float64(d) * day
		s.Observe(base+10*3600, 0.9)
		s.Observe(base+3*3600, 0.1)
	}
	// Forecast day 10 at the same hours.
	busy, ok := s.Forecast(10*day + 10*3600)
	if !ok || math.Abs(busy-0.9) > 0.01 {
		t.Fatalf("busy-hour forecast = %v,%v", busy, ok)
	}
	quiet, ok := s.Forecast(10*day + 3*3600)
	if !ok || math.Abs(quiet-0.1) > 0.01 {
		t.Fatalf("quiet-hour forecast = %v,%v", quiet, ok)
	}
	// Unobserved hour: fallback.
	if got := s.ForecastOrDefault(17*3600, 0.42); got != 0.42 {
		t.Fatalf("fallback = %v", got)
	}
}

func TestSeasonalNegativeTime(t *testing.T) {
	s, _ := NewSeasonal(100, 10, 0.5)
	s.Observe(-95, 0.7) // phase 5 → bucket 0
	if v, ok := s.Forecast(5); !ok || v != 0.7 {
		t.Fatalf("negative-time bucket = %v,%v", v, ok)
	}
}

func TestTariffCostAt(t *testing.T) {
	tf := PaperTariff()
	if err := tf.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		hour float64
		want float64
	}{
		{9, 1.0}, {21.9, 1.0}, // regular
		{22, 0.8}, {23.5, 0.8}, {1, 0.8}, // off-peak 1 wraps midnight
		{2, 0.5}, {7.9, 0.5}, // off-peak 2
		{8, 1.0},
		{33, 1.0}, // 33h = 9h next day
		{-2, 0.8}, // -2h = 22h
	}
	for _, c := range cases {
		if got := tf.CostAt(c.hour); got != c.want {
			t.Errorf("CostAt(%v) = %v, want %v", c.hour, got, c.want)
		}
	}
	// Uncovered hours default to regular.
	sparse := Tariff{{StartHour: 0, EndHour: 1, Cost: 0.5}}
	if sparse.CostAt(12) != 1.0 {
		t.Fatal("uncovered hour should default to 1.0")
	}
}

func TestTariffValidate(t *testing.T) {
	bad := []Tariff{
		{},
		{{StartHour: -1, EndHour: 2, Cost: 0.5}},
		{{StartHour: 1, EndHour: 25, Cost: 0.5}},
		{{StartHour: 1, EndHour: 2, Cost: 1.5}},
	}
	for i, tf := range bad {
		if tf.Validate() == nil {
			t.Errorf("case %d: invalid tariff accepted", i)
		}
	}
}

func TestPlanRecordsFromTariff(t *testing.T) {
	tf := PaperTariff()
	// Two days starting at midnight.
	recs, err := tf.PlanRecords(0, 2*86400, 22)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) < 6 {
		t.Fatalf("only %d records for two days of three windows", len(recs))
	}
	// First record: midnight is off-peak 1 (22-02h window).
	if recs[0].Cost != 0.8 || recs[0].Value != 0 {
		t.Fatalf("first record = %+v", recs[0])
	}
	// Consecutive records always change cost.
	for i := 1; i < len(recs); i++ {
		if recs[i].Cost == recs[i-1].Cost {
			t.Fatalf("redundant record %d: %+v", i, recs[i])
		}
		if recs[i].Value <= recs[i-1].Value {
			t.Fatal("records out of order")
		}
	}
	// Temperature propagated; records are scheduled (not unexpected).
	for _, r := range recs {
		if r.Temperature != 22 || r.Unexpected {
			t.Fatalf("record %+v", r)
		}
	}
	if _, err := tf.PlanRecords(10, 10, 22); err == nil {
		t.Fatal("empty horizon accepted")
	}
	if _, err := (Tariff{}).PlanRecords(0, 100, 22); err == nil {
		t.Fatal("invalid tariff accepted")
	}
}

// Property: seasonal forecasts always fall within the observed value
// range of their bucket.
func TestPropertySeasonalBounded(t *testing.T) {
	f := func(samples []uint8) bool {
		if len(samples) == 0 {
			return true
		}
		s, _ := NewSeasonal(100, 10, 0.3)
		min, max := 1.0, 0.0
		for i, raw := range samples {
			v := float64(raw) / 255
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
			s.Observe(float64(i%10), v) // all in bucket 0
		}
		v, ok := s.Forecast(5)
		if !ok {
			return false
		}
		return v >= min-1e-9 && v <= max+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSeasonalObserveForecast(b *testing.B) {
	s, _ := NewSeasonal(86400, 3600, 0.3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := float64(i * 137)
		s.Observe(t, 0.5)
		s.ForecastOrDefault(t+86400, 0.5)
	}
}
