package obs

import "runtime"

// RegisterRuntime adds the Go runtime's health gauges to the registry,
// refreshed at every scrape: goroutine count, heap bytes, GC cycles
// and cumulative GC pause seconds. ListenAndServe calls it on every
// registry it serves, so every /metrics endpoint in a deployment
// carries process health next to the domain metrics; calling it again
// on the same registry is a no-op (the refresh must not run twice per
// scrape).
func RegisterRuntime(reg *Registry) {
	reg.mu.Lock()
	if reg.runtimeDone {
		reg.mu.Unlock()
		return
	}
	reg.runtimeDone = true
	reg.mu.Unlock()

	goroutines := reg.Gauge("greensched_go_goroutines", "Goroutines currently live in the process.")
	heap := reg.Gauge("greensched_go_heap_bytes", "Bytes of allocated heap objects (runtime.MemStats.HeapAlloc).")
	gcs := reg.Counter("greensched_go_gcs_total", "Completed GC cycles.")
	gcPause := reg.Counter("greensched_go_gc_pause_seconds_total", "Cumulative GC stop-the-world pause time.")

	reg.OnScrape(func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		goroutines.Set(float64(runtime.NumGoroutine()))
		heap.Set(float64(ms.HeapAlloc))
		// MemStats counters are monotone; Add the delta to keep the
		// exposition counters monotone too.
		gcs.Add(float64(ms.NumGC) - gcs.Value())
		gcPause.Add(float64(ms.PauseTotalNs)/1e9 - gcPause.Value())
	})
}
