package obs

import (
	"bytes"
	"strings"
	"testing"
)

// TestRegisterRuntime: one scrape carries live process-health gauges.
func TestRegisterRuntime(t *testing.T) {
	reg := NewRegistry()
	RegisterRuntime(reg)
	var buf bytes.Buffer
	if err := reg.Render(&buf); err != nil {
		t.Fatal(err)
	}
	samples, err := ParseText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := samples.Value("greensched_go_goroutines"); !ok || v <= 0 {
		t.Errorf("greensched_go_goroutines = %v ok=%v, want > 0", v, ok)
	}
	if v, ok := samples.Value("greensched_go_heap_bytes"); !ok || v <= 0 {
		t.Errorf("greensched_go_heap_bytes = %v ok=%v, want > 0", v, ok)
	}
	for _, name := range []string{"greensched_go_gcs_total", "greensched_go_gc_pause_seconds_total"} {
		if _, ok := samples.Value(name); !ok {
			t.Errorf("%s missing from scrape", name)
		}
	}
}

// TestRegisterRuntimeIdempotent: registering twice (every
// ListenAndServe calls it on its registry) must neither panic on
// duplicate families nor emit duplicate series.
func TestRegisterRuntimeIdempotent(t *testing.T) {
	reg := NewRegistry()
	RegisterRuntime(reg)
	RegisterRuntime(reg)
	var buf bytes.Buffer
	if err := reg.Render(&buf); err != nil {
		t.Fatal(err)
	}
	samples := 0
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, "greensched_go_goroutines ") {
			samples++
		}
	}
	if samples != 1 {
		t.Fatalf("%d greensched_go_goroutines samples after double registration, want 1", samples)
	}
}
