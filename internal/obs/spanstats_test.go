package obs

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fixtureSpans loads the testdata span stream shared with the golden
// test (two complete traces, one errored, one orphan span).
func fixtureSpans(t *testing.T) []Span {
	t.Helper()
	f, err := os.Open(filepath.Join("testdata", "spans.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	spans, err := ReadSpans(f)
	if err != nil {
		t.Fatal(err)
	}
	return spans
}

// TestAnalyzeSpans pins the analyzer's semantics on the fixture:
// canonical stage ordering, nearest-rank percentiles, leaf-only
// critical paths with the "(other)" residual, error propagation and
// orphan counting.
func TestAnalyzeSpans(t *testing.T) {
	rep := AnalyzeSpans(fixtureSpans(t))

	wantOrder := []string{
		StageSubmit, StageElect, StageEstimate, StageDispatch,
		StageQueue, StageSolve, StageReply,
	}
	if len(rep.Stages) != len(wantOrder) {
		t.Fatalf("%d stages, want %d", len(rep.Stages), len(wantOrder))
	}
	for i, st := range rep.Stages {
		if st.Stage != wantOrder[i] {
			t.Fatalf("stage[%d] = %q, want %q (canonical order)", i, st.Stage, wantOrder[i])
		}
	}
	var solve StageStats
	for _, st := range rep.Stages {
		if st.Stage == StageSolve {
			solve = st
		}
	}
	// Three solve spans (0.005, 0.013, orphan 0.002): nearest-rank P50
	// is the 2nd of the sorted [0.002 0.005 0.013].
	if solve.Count != 3 || solve.P50 != 0.005 || solve.P99 != 0.013 || solve.Max != 0.013 {
		t.Fatalf("solve stats = %+v", solve)
	}

	if len(rep.Traces) != 3 || rep.Orphans != 1 {
		t.Fatalf("%d traces, %d orphans — want 3 and 1", len(rep.Traces), rep.Orphans)
	}
	t1, t2, t3 := rep.Traces[0], rep.Traces[1], rep.Traces[2]

	if t1.TotalSec != 0.01 || t1.Critical != StageSolve {
		t.Fatalf("trace 1 = %+v, want 0.01s dominated by solve", t1)
	}
	var other float64
	for _, sh := range t1.Shares {
		if sh.Stage == OtherStage {
			other = sh.Sec
		}
	}
	// Leaves explain 0.0085 of 0.01: the residual must surface, not
	// silently vanish.
	if diff := other - 0.0015; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("trace 1 %s share = %v, want 0.0015", OtherStage, other)
	}

	if t2.Critical != StageSolve || t2.Shares[0].Frac < 0.6 {
		t.Fatalf("trace 2 = %+v, want solve as dominant share", t2)
	}

	if t3.Err != "no admissible server" {
		t.Fatalf("trace 3 err = %q, want the root's error", t3.Err)
	}
}

// TestRequireStages: complete traces pass the canonical gate, errored
// traces are exempt from it, and a genuinely missing stage (or an
// empty stream) fails.
func TestRequireStages(t *testing.T) {
	rep := AnalyzeSpans(fixtureSpans(t))
	// Trace 3 lacks dispatch/queue/solve/reply but carries an error, so
	// the canonical gate must still pass.
	if err := rep.RequireStages(CanonicalStages...); err != nil {
		t.Fatalf("canonical gate failed on complete fixture: %v", err)
	}
	if err := rep.RequireStages("warp"); err == nil {
		t.Fatal("missing stage accepted")
	} else if !strings.Contains(err.Error(), `"warp"`) {
		t.Fatalf("error does not name the missing stage: %v", err)
	}
	if err := (&SpanReport{}).RequireStages(StageSubmit); err == nil {
		t.Fatal("empty stream accepted")
	}
}

// TestSpanReportGolden pins the exact analyzer output `greensched
// spans` prints — the CLI contract scripts parse. Regenerate after a
// deliberate format change with:
//
//	UPDATE_GOLDEN=1 go test ./internal/obs/ -run TestSpanReportGolden
func TestSpanReportGolden(t *testing.T) {
	rep := AnalyzeSpans(fixtureSpans(t))
	var buf bytes.Buffer
	if err := rep.Render(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "report.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if buf.String() != string(want) {
		t.Errorf("render drifted from golden:\n--- got ---\n%s--- want ---\n%s", buf.String(), want)
	}
}
