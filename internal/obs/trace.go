package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// Lifecycle event kinds. The same schema describes a request on the
// live middleware and a task in the simulator, so a million-task sim
// run and a TCP fleet produce comparable JSONL streams:
//
//	submit → admit|reject → elect → solve → complete|fail
//
// with defer interleaved when a carbon window parks deferrable work.
const (
	EventSubmit   = "submit"   // first seen by the stack
	EventAdmit    = "admit"    // passed admission control
	EventReject   = "reject"   // refused by admission control
	EventElect    = "elect"    // a server was elected
	EventSolve    = "solve"    // execution started on the elected server
	EventComplete = "complete" // execution finished successfully
	EventFail     = "fail"     // execution or election failed (crash, transport loss)
	EventDefer    = "defer"    // released after waiting out a dirty-grid window
)

// Event is one structured lifecycle transition. T is seconds on the
// emitting component's clock — the master's injectable clock on the
// live path, virtual time in the simulator — so a deterministic run
// emits a byte-identical stream.
type Event struct {
	T     float64 `json:"t"`
	Event string  `json:"event"`
	ID    uint64  `json:"id"`

	// Src names the emitting component (a master's name, "sim").
	Src string `json:"src,omitempty"`
	// Server is the elected/executing SED, where known.
	Server string `json:"server,omitempty"`
	// Class is the request's SLA class ("" = best-effort).
	Class string `json:"class,omitempty"`
	// DurSec is the transition's duration where one is meaningful:
	// execution time on complete, parked time on defer.
	DurSec float64 `json:"dur_sec,omitempty"`
	// EnergyJ is the attributed energy share on complete.
	EnergyJ float64 `json:"energy_j,omitempty"`
	// Err carries the failure or rejection reason.
	Err string `json:"err,omitempty"`
}

// Tracer writes lifecycle events as JSON Lines, one object per event,
// safe for concurrent emitters. A nil *Tracer is a valid no-op, so
// call sites thread an optional tracer without guarding.
type Tracer struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewTracer returns a tracer writing JSONL to w.
func NewTracer(w io.Writer) *Tracer {
	return &Tracer{enc: json.NewEncoder(w)}
}

// Emit writes one event. Write errors are swallowed: telemetry must
// never fail the serving path it observes.
func (t *Tracer) Emit(ev Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.enc.Encode(ev)
}

// ReadEvents decodes a JSONL event stream back into events — the
// analysis-side inverse of a Tracer.
func ReadEvents(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(r)
	var out []Event
	for {
		var ev Event
		if err := dec.Decode(&ev); err == io.EOF {
			return out, nil
		} else if err != nil {
			return out, err
		}
		out = append(out, ev)
	}
}
