package obs

import (
	"strings"
	"testing"
)

// TestPowerMetricsRenderGolden locks the greensched_power_* exposition
// byte for byte — the family set the external power estimation path
// publishes (sidecar request/error/fallback counters, breaker state,
// cache freshness and the per-node watts gauge).
func TestPowerMetricsRenderGolden(t *testing.T) {
	reg := NewRegistry()
	m := NewPowerMetrics(reg, map[string]string{"transport": "tcp"})
	m.SetCounters(12, 3, 2)
	m.SetState(true, 1.5)
	m.SetNodeWatts("lean", 80)
	m.SetNodeWatts("hungry", 320)
	// A second snapshot must fold in as a monotone delta, not a sum.
	m.SetCounters(15, 3, 2)
	m.SetState(false, 0.25)

	var sb strings.Builder
	if err := reg.Render(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP greensched_power_breaker_open 1 while the sidecar circuit breaker is open (readings come from fallback curves).
# TYPE greensched_power_breaker_open gauge
greensched_power_breaker_open{transport="tcp"} 0
# HELP greensched_power_errors_total Sidecar requests that failed (transport, protocol or application errors).
# TYPE greensched_power_errors_total counter
greensched_power_errors_total{transport="tcp"} 3
# HELP greensched_power_fallbacks_total Readings served from the built-in analytic curves because the sidecar was unavailable or stale.
# TYPE greensched_power_fallbacks_total counter
greensched_power_fallbacks_total{transport="tcp"} 2
# HELP greensched_power_requests_total Requests sent to the external power sidecar (per attempt).
# TYPE greensched_power_requests_total counter
greensched_power_requests_total{transport="tcp"} 15
# HELP greensched_power_staleness_seconds Age of the freshest cached sidecar reading (-1 before the first success).
# TYPE greensched_power_staleness_seconds gauge
greensched_power_staleness_seconds{transport="tcp"} 0.25
# HELP greensched_power_watts Last sidecar power reading per node.
# TYPE greensched_power_watts gauge
greensched_power_watts{transport="tcp",node="hungry"} 320
greensched_power_watts{transport="tcp",node="lean"} 80
`
	if got := sb.String(); got != want {
		t.Errorf("rendered exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestPowerMetricsIdempotentRegistration: two mounts sharing a
// Registry must land on the same families without a panic, split by
// label values.
func TestPowerMetricsIdempotentRegistration(t *testing.T) {
	reg := NewRegistry()
	a := NewPowerMetrics(reg, map[string]string{"transport": "tcp"})
	b := NewPowerMetrics(reg, map[string]string{"transport": "inproc"})
	a.SetCounters(1, 0, 0)
	b.SetCounters(2, 0, 0)
	var sb strings.Builder
	if err := reg.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, line := range []string{
		`greensched_power_requests_total{transport="inproc"} 2`,
		`greensched_power_requests_total{transport="tcp"} 1`,
	} {
		if !strings.Contains(out, line) {
			t.Errorf("missing %q in:\n%s", line, out)
		}
	}
	if strings.Count(out, "# TYPE greensched_power_requests_total counter") != 1 {
		t.Errorf("family registered twice:\n%s", out)
	}
}
