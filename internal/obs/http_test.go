package obs

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestServerServesMetricsAndHealth(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("srv_up_total", "Liveness.").Inc()
	srv, err := ListenAndServe("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ct := get("/metrics")
	if ct != ContentType {
		t.Errorf("content type %q", ct)
	}
	samples, err := ParseText(strings.NewReader(body))
	if err != nil {
		t.Fatalf("scrape does not parse: %v", err)
	}
	if v, ok := samples.Value("srv_up_total"); !ok || v != 1 {
		t.Errorf("srv_up_total = %v ok=%v", v, ok)
	}

	if body, _ := get("/healthz"); !strings.Contains(body, "ok") {
		t.Errorf("healthz body %q", body)
	}
	// pprof index must be mounted (profiling a hot master is the point).
	if body, _ := get("/debug/pprof/"); !strings.Contains(body, "profile") {
		t.Errorf("pprof index body %q", body)
	}

	if err := srv.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestListenAndServeErrors(t *testing.T) {
	if _, err := ListenAndServe("127.0.0.1:0", nil); err == nil {
		t.Error("nil registry accepted")
	}
	if _, err := ListenAndServe("500.500.500.500:99999", NewRegistry()); err == nil {
		t.Error("bad address accepted")
	}
}
