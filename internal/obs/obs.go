// Package obs is the fleet telemetry layer: a dependency-free,
// concurrency-safe metric registry rendering the Prometheus text
// exposition format, HTTP serving (metrics + pprof), a small exposition
// parser for self-scraping tests, and a structured JSONL lifecycle
// tracer shared by the live middleware and the simulator.
//
// The paper's pitch is middleware-level green scheduling an operator
// can run; everything the stack computes — ledger dollars, joules,
// grams, deferrals, admission rejects — becomes watchable while it
// happens:
//
//	reg := obs.NewRegistry()
//	reqs := reg.Counter("greensched_requests_total", "Submitted requests.")
//	srv, _ := obs.ListenAndServe("127.0.0.1:9090", reg)
//	defer srv.Close()
//	reqs.Inc()
//
// Any Prometheus-compatible scraper can read the endpoint; nothing in
// this package imports client_golang (or anything outside the standard
// library).
//
// Metric model:
//
//   - Counter: monotone accumulator (requests, completions, failures).
//   - Gauge: settable level (in-flight, parked queue, ledger dollars).
//   - Histogram: bucketed distribution with sum and count
//     (solve latency, energy per request).
//
// Each metric family optionally carries label names; children are
// addressed with With(values...). Registering an existing family with
// the same kind and label names returns the existing one, so several
// producers (two masters, per-transport interceptor mounts) can feed
// one registry, distinguished by label values.
package obs
