package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// metric kinds, as rendered by # TYPE.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// Registry holds metric families and renders them in Prometheus text
// exposition format. All methods are safe for concurrent use; the
// zero value is not usable — construct with NewRegistry.
type Registry struct {
	mu         sync.RWMutex
	families   map[string]*family
	collectors []func()

	// runtimeDone guards RegisterRuntime idempotence: the Go runtime
	// collector must refresh once per scrape no matter how many
	// listeners serve the registry.
	runtimeDone bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// OnScrape registers a collector: a function run (in registration
// order) at the start of every Render, before samples are read. Use it
// to refresh gauges from an external source of truth (a master's
// ledger, a SED's stats snapshot) so every scrape is consistent with
// the books at scrape time.
func (r *Registry) OnScrape(fn func()) {
	if fn == nil {
		return
	}
	r.mu.Lock()
	r.collectors = append(r.collectors, fn)
	r.mu.Unlock()
}

// family is one named metric with a fixed kind and label-name set.
type family struct {
	name   string
	help   string
	kind   string
	labels []string  // label names, in declaration order
	bounds []float64 // histogram bucket upper bounds (sorted, no +Inf)

	mu       sync.Mutex
	children map[string]*child
	ordered  []*child // insertion order; sorted at render time
}

// child is one labelled series of a family.
type child struct {
	values []string // label values, parallel to family.labels

	bits atomic.Uint64 // float64 bits (counter / gauge)

	// histogram state: cumulative handled at render; counts[i] counts
	// observations <= bounds[i], counts[len(bounds)] is +Inf.
	counts []atomic.Uint64
	sum    atomicFloat
	count  atomic.Uint64
}

// atomicFloat is an atomic float64 accumulator (CAS add).
type atomicFloat struct{ bits atomic.Uint64 }

func (a *atomicFloat) Add(v float64) {
	for {
		old := a.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if a.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (a *atomicFloat) Load() float64 { return math.Float64frombits(a.bits.Load()) }

// family returns (or creates) the named family, enforcing that kind
// and label names match any prior registration. Mismatches panic: they
// are programming errors in the instrumented process, not runtime
// conditions.
func (r *Registry) family(name, help, kind string, bounds []float64, labels []string) *family {
	if err := checkName(name); err != nil {
		panic(err)
	}
	for _, l := range labels {
		if err := checkName(l); err != nil {
			panic(err)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind {
			panic(fmt.Sprintf("obs: metric %s re-registered as %s (was %s)", name, kind, f.kind))
		}
		if strings.Join(f.labels, ",") != strings.Join(labels, ",") {
			panic(fmt.Sprintf("obs: metric %s re-registered with labels %v (was %v)", name, labels, f.labels))
		}
		return f
	}
	f := &family{
		name: name, help: help, kind: kind,
		labels:   append([]string(nil), labels...),
		bounds:   append([]float64(nil), bounds...),
		children: make(map[string]*child),
	}
	r.families[name] = f
	return f
}

// checkName validates a metric or label name against the Prometheus
// grammar [a-zA-Z_:][a-zA-Z0-9_:]*.
func checkName(name string) error {
	if name == "" {
		return fmt.Errorf("obs: empty metric/label name")
	}
	for i, c := range name {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return fmt.Errorf("obs: invalid metric/label name %q", name)
		}
	}
	return nil
}

// with returns (or creates) the child for the given label values.
func (f *family) with(values []string) *child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	c := &child{values: append([]string(nil), values...)}
	if f.kind == kindHistogram {
		c.counts = make([]atomic.Uint64, len(f.bounds)+1)
	}
	f.children[key] = c
	f.ordered = append(f.ordered, c)
	return c
}

// --- Counter ---------------------------------------------------------

// Counter is a monotone accumulator. The zero Counter is invalid;
// obtain one from Registry.Counter or CounterVec.With.
type Counter struct{ c *child }

// Inc adds one.
func (c Counter) Inc() { c.Add(1) }

// Add adds v; negative deltas are ignored (counters only go up).
func (c Counter) Add(v float64) {
	if v <= 0 {
		return
	}
	for {
		old := c.c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if c.c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current total.
func (c Counter) Value() float64 { return math.Float64frombits(c.c.bits.Load()) }

// CounterVec is a labelled counter family.
type CounterVec struct{ f *family }

// With returns the child counter for the label values.
func (v *CounterVec) With(values ...string) Counter { return Counter{v.f.with(values)} }

// Counter registers (or fetches) an unlabelled counter.
func (r *Registry) Counter(name, help string) Counter {
	return Counter{r.family(name, help, kindCounter, nil, nil).with(nil)}
}

// CounterVec registers (or fetches) a labelled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.family(name, help, kindCounter, nil, labels)}
}

// --- Gauge -----------------------------------------------------------

// Gauge is a settable level. The zero Gauge is invalid; obtain one
// from Registry.Gauge or GaugeVec.With.
type Gauge struct{ c *child }

// Set stores v.
func (g Gauge) Set(v float64) { g.c.bits.Store(math.Float64bits(v)) }

// Add adds v (which may be negative).
func (g Gauge) Add(v float64) {
	for {
		old := g.c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if g.c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds one.
func (g Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g Gauge) Dec() { g.Add(-1) }

// Value returns the current level.
func (g Gauge) Value() float64 { return math.Float64frombits(g.c.bits.Load()) }

// GaugeVec is a labelled gauge family.
type GaugeVec struct{ f *family }

// With returns the child gauge for the label values.
func (v *GaugeVec) With(values ...string) Gauge { return Gauge{v.f.with(values)} }

// Gauge registers (or fetches) an unlabelled gauge.
func (r *Registry) Gauge(name, help string) Gauge {
	return Gauge{r.family(name, help, kindGauge, nil, nil).with(nil)}
}

// GaugeVec registers (or fetches) a labelled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.family(name, help, kindGauge, nil, labels)}
}

// --- Histogram -------------------------------------------------------

// Histogram is a bucketed distribution with cumulative buckets, sum
// and count, rendered in the standard _bucket/_sum/_count triplet. The
// zero Histogram is invalid; obtain one from Registry.Histogram or
// HistogramVec.With.
type Histogram struct {
	c      *child
	bounds []float64
}

// Observe records v.
func (h Histogram) Observe(v float64) {
	for i, b := range h.bounds {
		if v <= b {
			h.c.counts[i].Add(1)
			break
		}
	}
	h.c.counts[len(h.bounds)].Add(1) // +Inf bucket counts everything
	h.c.sum.Add(v)
	h.c.count.Add(1)
}

// Count returns the number of observations.
func (h Histogram) Count() uint64 { return h.c.count.Load() }

// Sum returns the sum of observations.
func (h Histogram) Sum() float64 { return h.c.sum.Load() }

// HistogramVec is a labelled histogram family.
type HistogramVec struct{ f *family }

// With returns the child histogram for the label values.
func (v *HistogramVec) With(values ...string) Histogram {
	return Histogram{v.f.with(values), v.f.bounds}
}

// DefBuckets are general-purpose latency buckets in seconds, matching
// the client_golang defaults.
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// ExpBuckets returns n exponential bucket bounds starting at start and
// multiplying by factor — for wide-dynamic-range quantities like
// per-request joules. It panics on invalid parameters.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic(fmt.Sprintf("obs: invalid exponential buckets (start %v factor %v n %d)", start, factor, n))
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// Histogram registers (or fetches) an unlabelled histogram with the
// given bucket upper bounds (sorted ascending; +Inf is implicit). Nil
// buckets mean DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) Histogram {
	f := r.family(name, help, kindHistogram, normBuckets(buckets), nil)
	return Histogram{f.with(nil), f.bounds}
}

// HistogramVec registers (or fetches) a labelled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{r.family(name, help, kindHistogram, normBuckets(buckets), labels)}
}

// normBuckets defaults, sorts and deduplicates bucket bounds, and
// strips a trailing +Inf (it is implicit).
func normBuckets(buckets []float64) []float64 {
	if buckets == nil {
		buckets = DefBuckets
	}
	out := append([]float64(nil), buckets...)
	sort.Float64s(out)
	dst := out[:0]
	for _, b := range out {
		if math.IsInf(b, 1) {
			continue
		}
		if len(dst) > 0 && dst[len(dst)-1] == b {
			continue
		}
		dst = append(dst, b)
	}
	return dst
}
