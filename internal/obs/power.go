package obs

import "sort"

// PowerMetrics is the greensched_power_* exposition family set — the
// observability surface of the external power estimation path (the
// powerd sidecar protocol). The middleware's ExternalPowerInterceptor
// registers one per master mount and refreshes it at scrape time from
// the client's counters; the setters take plain values so this package
// stays below the protocol packages in the dependency order.
//
// Registration is idempotent the same way every Registry family is:
// two mounts sharing a Registry and label keys reuse the same
// families, split per mount by label values.
type PowerMetrics struct {
	Requests  Counter // greensched_power_requests_total
	Errors    Counter // greensched_power_errors_total
	Fallbacks Counter // greensched_power_fallbacks_total

	Staleness Gauge // greensched_power_staleness_seconds
	Breaker   Gauge // greensched_power_breaker_open

	watts *GaugeVec // greensched_power_watts, labelled (labels..., node)
	vals  []string
}

// NewPowerMetrics registers the power families on reg with the given
// constant labels (same key-set discipline as ObsInterceptor.Labels).
func NewPowerMetrics(reg *Registry, labels map[string]string) *PowerMetrics {
	names := make([]string, 0, len(labels))
	for k := range labels {
		names = append(names, k)
	}
	sort.Strings(names)
	vals := make([]string, len(names))
	for i, k := range names {
		vals[i] = labels[k]
	}
	m := &PowerMetrics{vals: vals}
	m.Requests = reg.CounterVec("greensched_power_requests_total",
		"Requests sent to the external power sidecar (per attempt).", names...).With(vals...)
	m.Errors = reg.CounterVec("greensched_power_errors_total",
		"Sidecar requests that failed (transport, protocol or application errors).", names...).With(vals...)
	m.Fallbacks = reg.CounterVec("greensched_power_fallbacks_total",
		"Readings served from the built-in analytic curves because the sidecar was unavailable or stale.", names...).With(vals...)
	m.Staleness = reg.GaugeVec("greensched_power_staleness_seconds",
		"Age of the freshest cached sidecar reading (-1 before the first success).", names...).With(vals...)
	m.Breaker = reg.GaugeVec("greensched_power_breaker_open",
		"1 while the sidecar circuit breaker is open (readings come from fallback curves).", names...).With(vals...)
	m.watts = reg.GaugeVec("greensched_power_watts",
		"Last sidecar power reading per node.", append(append([]string{}, names...), "node")...)
	return m
}

// SetCounters folds absolute counter snapshots in (monotone delta, the
// same idiom the journal families use for scrape-time snapshots).
func (m *PowerMetrics) SetCounters(requests, errors, fallbacks float64) {
	m.Requests.Add(requests - m.Requests.Value())
	m.Errors.Add(errors - m.Errors.Value())
	m.Fallbacks.Add(fallbacks - m.Fallbacks.Value())
}

// SetState publishes the breaker state and cache freshness.
func (m *PowerMetrics) SetState(breakerOpen bool, stalenessSec float64) {
	if breakerOpen {
		m.Breaker.Set(1)
	} else {
		m.Breaker.Set(0)
	}
	m.Staleness.Set(stalenessSec)
}

// SetNodeWatts publishes one node's last reading.
func (m *PowerMetrics) SetNodeWatts(node string, w float64) {
	m.watts.With(append(append([]string{}, m.vals...), node)...).Set(w)
}
