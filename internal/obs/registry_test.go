package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestRenderGolden locks the exposition format byte for byte: HELP and
// TYPE lines, lexical family and label ordering, histogram triplet,
// value formatting.
func TestRenderGolden(t *testing.T) {
	reg := NewRegistry()
	reqs := reg.CounterVec("fleet_requests_total", "Requests submitted.", "transport")
	reqs.With("tcp").Add(3)
	reqs.With("inproc").Inc()
	inflight := reg.Gauge("fleet_inflight", "Requests in flight.")
	inflight.Set(2)
	h := reg.Histogram("fleet_solve_seconds", "Solve latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var sb strings.Builder
	if err := reg.Render(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP fleet_inflight Requests in flight.
# TYPE fleet_inflight gauge
fleet_inflight 2
# HELP fleet_requests_total Requests submitted.
# TYPE fleet_requests_total counter
fleet_requests_total{transport="inproc"} 1
fleet_requests_total{transport="tcp"} 3
# HELP fleet_solve_seconds Solve latency.
# TYPE fleet_solve_seconds histogram
fleet_solve_seconds_bucket{le="0.1"} 1
fleet_solve_seconds_bucket{le="1"} 2
fleet_solve_seconds_bucket{le="+Inf"} 3
fleet_solve_seconds_sum 5.55
fleet_solve_seconds_count 3
`
	if got := sb.String(); got != want {
		t.Errorf("rendered exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestLabelEscaping covers the three escaped characters in label
// values and round-trips them through the parser.
func TestLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	v := reg.GaugeVec("esc_gauge", `Help with \ backslash
and newline.`, "path")
	tricky := "a\\b\"c\nd"
	v.With(tricky).Set(1)

	var sb strings.Builder
	if err := reg.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `# HELP esc_gauge Help with \\ backslash\nand newline.`) {
		t.Errorf("HELP not escaped:\n%s", out)
	}
	if !strings.Contains(out, `esc_gauge{path="a\\b\"c\nd"} 1`) {
		t.Errorf("label value not escaped:\n%s", out)
	}

	samples, err := ParseText(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	got, ok := samples.Value("esc_gauge", "path="+tricky)
	if !ok || got != 1 {
		t.Errorf("escaped label did not round-trip through the parser: %+v", samples)
	}
}

// TestRegistryConcurrency hammers one registry from concurrent
// goroutines — the interceptor-callback shape — while scraping; run
// under -race this is the data-race regression test the CI race job
// executes.
func TestRegistryConcurrency(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("hammer_total", "")
	g := reg.Gauge("hammer_inflight", "")
	hv := reg.HistogramVec("hammer_seconds", "", []float64{0.5}, "server")

	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := hv.With([]string{"a", "b"}[w%2])
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Inc()
				h.Observe(float64(i%2) * 0.9)
				g.Dec()
			}
		}()
	}
	// Concurrent scrapes while the writers run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			if err := reg.Render(&sb); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()

	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter lost updates: %v != %v", got, workers*perWorker)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("gauge unbalanced: %v", got)
	}
	var total uint64
	for _, lbl := range []string{"a", "b"} {
		total += hv.With(lbl).Count()
	}
	if total != workers*perWorker {
		t.Errorf("histogram lost observations: %v != %v", total, workers*perWorker)
	}
}

func TestCounterMonotone(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("mono_total", "")
	c.Add(5)
	c.Add(-3) // ignored
	if got := c.Value(); got != 5 {
		t.Errorf("negative Add changed a counter: %v", got)
	}
}

func TestRegistryReuseAndMismatch(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("shared_total", "")
	b := reg.Counter("shared_total", "")
	a.Inc()
	b.Inc()
	if got := a.Value(); got != 2 {
		t.Errorf("re-registration did not share state: %v", got)
	}
	assertPanics := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	assertPanics("kind mismatch", func() { reg.Gauge("shared_total", "") })
	assertPanics("label mismatch", func() { reg.CounterVec("shared_total", "", "x") })
	assertPanics("bad name", func() { reg.Counter("0bad", "") })
	assertPanics("bad label", func() { reg.CounterVec("ok_total", "", "0bad") })
	assertPanics("wrong label arity", func() { reg.CounterVec("arity_total", "", "a").With("x", "y") })
}

func TestHistogramBuckets(t *testing.T) {
	reg := NewRegistry()
	// Unsorted with duplicate and explicit +Inf: normalized.
	h := reg.Histogram("hb_seconds", "", []float64{1, 0.1, 1, math.Inf(1)})
	h.Observe(0.1) // on-boundary lands in le="0.1"
	h.Observe(2)

	var sb strings.Builder
	if err := reg.Render(&sb); err != nil {
		t.Fatal(err)
	}
	samples, err := ParseText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		le   string
		want float64
	}{{"0.1", 1}, {"1", 1}, {"+Inf", 2}} {
		if got, ok := samples.Value("hb_seconds_bucket", "le="+tc.le); !ok || got != tc.want {
			t.Errorf("le=%s: got %v ok=%v, want %v", tc.le, got, ok, tc.want)
		}
	}
	if got, _ := samples.Value("hb_seconds_count"); got != 2 {
		t.Errorf("count %v", got)
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 10, 4)
	want := []float64{1, 10, 100, 1000}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets %v != %v", got, want)
		}
	}
}

func TestOnScrapeCollector(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("fresh_gauge", "")
	calls := 0
	reg.OnScrape(func() { calls++; g.Set(float64(calls)) })
	var sb strings.Builder
	reg.Render(&sb)
	reg.Render(&sb)
	if calls != 2 {
		t.Errorf("collector ran %d times, want 2", calls)
	}
	if got := g.Value(); got != 2 {
		t.Errorf("gauge %v after two scrapes", got)
	}
}
