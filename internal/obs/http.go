package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// Handler returns an http.Handler serving the registry's current state
// in text exposition format — mount it wherever the deployment's mux
// wants it.
func Handler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		reg.Render(w)
	})
}

// Server is a telemetry listener: /metrics (exposition format),
// /debug/pprof/* (the standard profiles) and /healthz.
type Server struct {
	srv *http.Server
	ln  net.Listener

	mu     sync.Mutex
	closed bool
}

// ListenAndServe starts a telemetry server on addr ("127.0.0.1:0" for
// an ephemeral port). The returned server is already accepting.
func ListenAndServe(addr string, reg *Registry) (*Server, error) {
	if reg == nil {
		return nil, fmt.Errorf("obs: telemetry server needs a registry")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listening on %s: %w", addr, err)
	}
	// Every served registry carries the process's own health gauges
	// (goroutines, heap, GC) next to the domain metrics; idempotent,
	// so several listeners over one registry refresh it once.
	RegisterRuntime(reg)
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(reg))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	s := &Server{srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}, ln: ln}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound address (host:port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and closes active connections. Safe to call
// twice.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	return s.srv.Close()
}
