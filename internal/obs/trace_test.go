package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestTracerJSONL(t *testing.T) {
	var sb strings.Builder
	tr := NewTracer(&sb)
	tr.Emit(Event{T: 1.5, Event: EventSubmit, ID: 7, Src: "m", Class: "batch"})
	tr.Emit(Event{T: 2.5, Event: EventComplete, ID: 7, Server: "sed-1", DurSec: 1, EnergyJ: 42})

	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 JSONL lines, got %d: %q", len(lines), sb.String())
	}
	var ev Event
	if err := json.Unmarshal([]byte(lines[1]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Event != EventComplete || ev.ID != 7 || ev.Server != "sed-1" || ev.EnergyJ != 42 {
		t.Errorf("round-trip mismatch: %+v", ev)
	}
	// Zero-valued optional fields stay off the wire.
	if strings.Contains(lines[0], "server") || strings.Contains(lines[0], "energy_j") {
		t.Errorf("omitempty fields leaked: %s", lines[0])
	}
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	tr.Emit(Event{Event: EventSubmit}) // must not panic
}

func TestTracerConcurrent(t *testing.T) {
	var sb strings.Builder
	var mu sync.Mutex
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return sb.Write(p)
	})
	tr := NewTracer(w)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				tr.Emit(Event{T: float64(j), Event: EventSolve, ID: uint64(i)})
			}
		}()
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 8*200 {
		t.Fatalf("lost events: %d lines", len(lines))
	}
	for _, ln := range lines {
		var ev Event
		if err := json.Unmarshal([]byte(ln), &ev); err != nil {
			t.Fatalf("interleaved write corrupted a line: %q: %v", ln, err)
		}
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
