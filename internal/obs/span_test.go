package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// TestSpanWriterNilSafe: a nil *SpanWriter is a valid no-op sink, so
// every call site can thread an optional writer without guarding.
func TestSpanWriterNilSafe(t *testing.T) {
	var w *SpanWriter
	w.Emit(Span{TraceID: 1, SpanID: 2, Name: StageSolve}) // must not panic
}

// TestSpanRoundTrip: Emit → ReadSpans is lossless, including attrs and
// error marks.
func TestSpanRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewSpanWriter(&buf)
	in := []Span{
		{TraceID: 1, SpanID: 10, Name: StageSubmit, Src: "master", Start: 0.5, DurSec: 0.25},
		{TraceID: 1, SpanID: 11, Parent: 10, Name: StageElect, Src: "master",
			Attrs: map[string]string{"server": "sed-0"}},
		{TraceID: 2, SpanID: 12, Name: StageDispatch, Err: "connection reset"},
	}
	for _, sp := range in {
		w.Emit(sp)
	}
	out, err := ReadSpans(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("%d spans back, want %d", len(out), len(in))
	}
	for i := range in {
		got, want := out[i], in[i]
		if got.TraceID != want.TraceID || got.SpanID != want.SpanID || got.Parent != want.Parent ||
			got.Name != want.Name || got.Src != want.Src || got.Start != want.Start ||
			got.DurSec != want.DurSec || got.Err != want.Err {
			t.Errorf("span %d = %+v, want %+v", i, got, want)
		}
	}
	if out[1].Attrs["server"] != "sed-0" {
		t.Errorf("attrs lost: %+v", out[1].Attrs)
	}
}

// TestSpanWriterConcurrent: many emitters on one writer yield a stream
// where every line still parses — no interleaved JSON (run with -race).
func TestSpanWriterConcurrent(t *testing.T) {
	var buf bytes.Buffer
	w := NewSpanWriter(&buf)
	const emitters, per = 16, 50
	var wg sync.WaitGroup
	for g := 0; g < emitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				w.Emit(Span{TraceID: uint64(g + 1), SpanID: NewSpanID(), Name: StageSolve,
					Attrs: map[string]string{"g": strings.Repeat("x", 20)}})
			}
		}(g)
	}
	wg.Wait()
	out, err := ReadSpans(&buf)
	if err != nil {
		t.Fatalf("concurrent stream does not parse: %v", err)
	}
	if len(out) != emitters*per {
		t.Fatalf("%d spans, want %d", len(out), emitters*per)
	}
}

// TestReadSpansGarbage: a corrupt stream reports the error and returns
// the spans decoded before it.
func TestReadSpansGarbage(t *testing.T) {
	stream := `{"trace":1,"span":2,"name":"solve","start":0,"dur_sec":0.1}` + "\nnot json\n"
	out, err := ReadSpans(strings.NewReader(stream))
	if err == nil {
		t.Fatal("corrupt stream accepted")
	}
	if len(out) != 1 || out[0].Name != StageSolve {
		t.Fatalf("prefix spans = %+v, want the one valid span", out)
	}
}

// TestNewSpanIDUnique: IDs are process-unique under concurrency.
func TestNewSpanIDUnique(t *testing.T) {
	const n = 1000
	ids := make(chan uint64, n)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n/4; i++ {
				ids <- NewSpanID()
			}
		}()
	}
	wg.Wait()
	close(ids)
	seen := map[uint64]bool{}
	for id := range ids {
		if id == 0 || seen[id] {
			t.Fatalf("span ID %d zero or reused", id)
		}
		seen[id] = true
	}
}
