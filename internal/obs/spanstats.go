package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// StageStats aggregates one stage's latency distribution across every
// span in the analyzed stream.
type StageStats struct {
	Stage string
	Count int
	P50   float64
	P95   float64
	P99   float64
	Mean  float64
	Max   float64
}

// StageShare is one leaf stage's contribution to a request's total.
type StageShare struct {
	Stage string
	Sec   float64
	Frac  float64 // of the root span's duration
}

// TraceSummary is one request's critical-path decomposition: its root
// duration split over the LEAF stages of the hop tree (a span is a
// leaf when no other span names it as parent — dispatch time, for
// example, is already decomposed into queue/solve/reply, so only the
// leaves are summed and nothing double-counts). Time the leaves do not
// explain appears as the synthetic "other" share.
type TraceSummary struct {
	TraceID  uint64
	Src      string // root span's emitter
	TotalSec float64
	Err      string // root error, or the first terminated span's
	Stages   map[string]bool
	Shares   []StageShare // sorted by Sec descending
	Critical string       // the dominant leaf stage
}

// SpanReport is the analyzed view of a span stream: per-stage
// percentiles plus per-request critical paths.
type SpanReport struct {
	Stages []StageStats   // canonical stage order, then alphabetical
	Traces []TraceSummary // by TraceID
	// Orphans counts spans whose trace has no root span (Parent 0) —
	// usually a partial file; they still feed Stages.
	Orphans int
}

// OtherStage labels critical-path time not explained by leaf spans
// (interceptor overhead between stages, clock-edge residue).
const OtherStage = "(other)"

// stageRank orders known stages canonically so reports read in
// lifecycle order; unknown stages sort after, alphabetically.
func stageRank(stage string) int {
	order := []string{
		StageSubmit, StageAdmission, StageElect, StageReelect,
		StageEstimate, StageDial, StageEncode, StageDecode,
		StageDispatch, StageQueue, StageSolve, StageReply,
	}
	for i, s := range order {
		if s == stage {
			return i
		}
	}
	return len(order)
}

// percentile returns the q-quantile (0 < q <= 1) of sorted (ascending)
// values via the nearest-rank method — deterministic and exact on the
// small-n fixtures golden tests pin.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// AnalyzeSpans builds the report: group by trace, find each root,
// decompose its duration over leaf stages, and aggregate per-stage
// percentiles over every span seen.
func AnalyzeSpans(spans []Span) *SpanReport {
	rep := &SpanReport{}

	byStage := make(map[string][]float64)
	byTrace := make(map[uint64][]Span)
	for _, sp := range spans {
		byStage[sp.Name] = append(byStage[sp.Name], sp.DurSec)
		byTrace[sp.TraceID] = append(byTrace[sp.TraceID], sp)
	}

	stages := make([]string, 0, len(byStage))
	for s := range byStage {
		stages = append(stages, s)
	}
	sort.Slice(stages, func(i, j int) bool {
		ri, rj := stageRank(stages[i]), stageRank(stages[j])
		if ri != rj {
			return ri < rj
		}
		return stages[i] < stages[j]
	})
	for _, s := range stages {
		durs := byStage[s]
		sort.Float64s(durs)
		sum := 0.0
		for _, d := range durs {
			sum += d
		}
		rep.Stages = append(rep.Stages, StageStats{
			Stage: s, Count: len(durs),
			P50:  percentile(durs, 0.50),
			P95:  percentile(durs, 0.95),
			P99:  percentile(durs, 0.99),
			Mean: sum / float64(len(durs)),
			Max:  durs[len(durs)-1],
		})
	}

	traceIDs := make([]uint64, 0, len(byTrace))
	for id := range byTrace {
		traceIDs = append(traceIDs, id)
	}
	sort.Slice(traceIDs, func(i, j int) bool { return traceIDs[i] < traceIDs[j] })

	for _, id := range traceIDs {
		tspans := byTrace[id]
		sort.Slice(tspans, func(i, j int) bool { return tspans[i].SpanID < tspans[j].SpanID })

		var root *Span
		isParent := make(map[uint64]bool, len(tspans))
		for i := range tspans {
			isParent[tspans[i].Parent] = true
			if tspans[i].Parent == 0 && root == nil {
				root = &tspans[i]
			}
		}
		if root == nil {
			rep.Orphans += len(tspans)
			continue
		}

		ts := TraceSummary{
			TraceID:  id,
			Src:      root.Src,
			TotalSec: root.DurSec,
			Err:      root.Err,
			Stages:   make(map[string]bool, len(tspans)),
		}
		leafSec := make(map[string]float64)
		explained := 0.0
		for i := range tspans {
			sp := &tspans[i]
			ts.Stages[sp.Name] = true
			if ts.Err == "" && sp.Err != "" {
				ts.Err = sp.Err
			}
			if sp.SpanID == root.SpanID || isParent[sp.SpanID] {
				continue // inner node: its children already carry the time
			}
			leafSec[sp.Name] += sp.DurSec
			explained += sp.DurSec
		}
		if rest := ts.TotalSec - explained; rest > 0 {
			leafSec[OtherStage] += rest
		}
		for s, sec := range leafSec {
			share := StageShare{Stage: s, Sec: sec}
			if ts.TotalSec > 0 {
				share.Frac = sec / ts.TotalSec
			}
			ts.Shares = append(ts.Shares, share)
		}
		sort.Slice(ts.Shares, func(i, j int) bool {
			if ts.Shares[i].Sec != ts.Shares[j].Sec {
				return ts.Shares[i].Sec > ts.Shares[j].Sec
			}
			return ts.Shares[i].Stage < ts.Shares[j].Stage
		})
		if len(ts.Shares) > 0 {
			ts.Critical = ts.Shares[0].Stage
		}
		rep.Traces = append(rep.Traces, ts)
	}
	return rep
}

// RequireStages verifies every successful trace's hop tree contains
// all of the given stages — the analyzer-side completeness gate CI
// runs span streams through. Traces that ended in an error are exempt
// (their tree is legitimately truncated at the failing stage).
func (r *SpanReport) RequireStages(stages ...string) error {
	if len(r.Traces) == 0 {
		return fmt.Errorf("obs: span stream contains no complete traces")
	}
	for _, ts := range r.Traces {
		if ts.Err != "" {
			continue
		}
		for _, s := range stages {
			if !ts.Stages[s] {
				return fmt.Errorf("obs: trace %d is missing stage %q (has %s)",
					ts.TraceID, s, strings.Join(sortedKeys(ts.Stages), ", "))
			}
		}
	}
	return nil
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// renderTraces caps the per-request section: the slowest requests are
// the ones worth a line each.
const renderTraces = 10

// Render writes the human view: the per-stage percentile table, then
// the critical-path breakdown of the slowest requests.
func (r *SpanReport) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Per-stage latency (seconds):\n"); err != nil {
		return err
	}
	fmt.Fprintf(w, "  %-12s %7s %12s %12s %12s %12s %12s\n",
		"STAGE", "COUNT", "P50", "P95", "P99", "MEAN", "MAX")
	for _, st := range r.Stages {
		fmt.Fprintf(w, "  %-12s %7d %12.6f %12.6f %12.6f %12.6f %12.6f\n",
			st.Stage, st.Count, st.P50, st.P95, st.P99, st.Mean, st.Max)
	}

	sorted := append([]TraceSummary(nil), r.Traces...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].TotalSec != sorted[j].TotalSec {
			return sorted[i].TotalSec > sorted[j].TotalSec
		}
		return sorted[i].TraceID < sorted[j].TraceID
	})
	shown := len(sorted)
	if shown > renderTraces {
		shown = renderTraces
	}
	fmt.Fprintf(w, "\nCritical path of the %d slowest of %d requests:\n", shown, len(sorted))
	for _, ts := range sorted[:shown] {
		parts := make([]string, 0, len(ts.Shares))
		for _, sh := range ts.Shares {
			parts = append(parts, fmt.Sprintf("%s %4.1f%%", sh.Stage, 100*sh.Frac))
		}
		line := fmt.Sprintf("  trace %-6d %10.6fs  critical=%-10s %s",
			ts.TraceID, ts.TotalSec, ts.Critical, strings.Join(parts, " | "))
		if ts.Err != "" {
			line += fmt.Sprintf("  ERR: %s", ts.Err)
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	if r.Orphans > 0 {
		fmt.Fprintf(w, "\n%d spans belong to traces with no root span (partial stream?)\n", r.Orphans)
	}
	return nil
}
