package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ContentType is the exposition format version served by Handler.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Render writes the registry in Prometheus text exposition format:
// every family preceded by its # HELP and # TYPE lines, families in
// lexical name order, children in lexical label-value order, so output
// is deterministic and golden-testable. Collectors registered with
// OnScrape run first.
func (r *Registry) Render(w io.Writer) error {
	r.mu.RLock()
	collectors := append([]func(){}, r.collectors...)
	r.mu.RUnlock()
	for _, fn := range collectors {
		fn()
	}

	r.mu.RLock()
	families := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		families = append(families, f)
	}
	r.mu.RUnlock()
	sort.Slice(families, func(i, j int) bool { return families[i].name < families[j].name })

	bw := bufio.NewWriter(w)
	for _, f := range families {
		if err := f.render(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func (f *family) render(w *bufio.Writer) error {
	f.mu.Lock()
	children := append([]*child(nil), f.ordered...)
	f.mu.Unlock()
	if len(children) == 0 {
		return nil
	}
	sort.Slice(children, func(i, j int) bool {
		return strings.Join(children[i].values, "\x00") < strings.Join(children[j].values, "\x00")
	})

	if f.help != "" {
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	}
	fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind)
	for _, c := range children {
		switch f.kind {
		case kindHistogram:
			f.renderHistogram(w, c)
		default:
			fmt.Fprintf(w, "%s%s %s\n", f.name, labelSet(f.labels, c.values, "", 0),
				formatValue(math.Float64frombits(c.bits.Load())))
		}
	}
	return nil
}

// renderHistogram emits the cumulative _bucket series plus _sum and
// _count. counts[i] holds the non-cumulative tally of bucket i;
// counts[len(bounds)] holds the total observation count (the +Inf
// bucket), so the running sum over the finite buckets plus that final
// cell yields the required monotone cumulative series.
func (f *family) renderHistogram(w *bufio.Writer, c *child) {
	var running uint64
	for i, b := range f.bounds {
		running += c.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
			labelSet(f.labels, c.values, "le", b), running)
	}
	total := c.counts[len(f.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
		labelSet(f.labels, c.values, "le", math.Inf(1)), total)
	fmt.Fprintf(w, "%s_sum%s %s\n", f.name,
		labelSet(f.labels, c.values, "", 0), formatValue(c.sum.Load()))
	fmt.Fprintf(w, "%s_count%s %d\n", f.name,
		labelSet(f.labels, c.values, "", 0), total)
}

// labelSet renders {k="v",...}, optionally appending an le bucket
// label; it returns "" for a label-free sample.
func labelSet(names, values []string, le string, bound float64) string {
	if len(names) == 0 && le == "" {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(n)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(values[i]))
		sb.WriteByte('"')
	}
	if le != "" {
		if len(names) > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(le)
		sb.WriteString(`="`)
		sb.WriteString(formatValue(bound))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

// formatValue renders a float the way Prometheus expects: shortest
// round-trip representation, with +Inf/-Inf/NaN spelled out.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes a HELP text: backslash and newline.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value: backslash, double quote, newline.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
