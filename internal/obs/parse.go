package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed exposition sample.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Samples indexes a parsed scrape for assertions.
type Samples []Sample

// Value returns the first sample matching name and every given
// label=value pair (pairs are "k=v" strings); ok is false when absent.
// Samples may carry more labels than asked for.
func (s Samples) Value(name string, pairs ...string) (float64, bool) {
	for _, smp := range s {
		if smp.Name != name {
			continue
		}
		match := true
		for _, p := range pairs {
			k, v, found := strings.Cut(p, "=")
			if !found || smp.Labels[k] != v {
				match = false
				break
			}
		}
		if match {
			return smp.Value, true
		}
	}
	return 0, false
}

// Names returns the distinct sample names, sorted.
func (s Samples) Names() []string {
	seen := make(map[string]bool)
	var out []string
	for _, smp := range s {
		if !seen[smp.Name] {
			seen[smp.Name] = true
			out = append(out, smp.Name)
		}
	}
	sort.Strings(out)
	return out
}

// ParseText parses Prometheus text exposition format (the subset
// Render emits plus anything sample-shaped a real exporter would add).
// Comment and blank lines are skipped; malformed sample lines are an
// error, so a scrape of garbage fails loudly instead of parsing as an
// empty result.
func ParseText(r io.Reader) (Samples, error) {
	var out Samples
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		smp, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("obs: line %d: %w", lineNo, err)
		}
		out = append(out, smp)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func parseSample(line string) (Sample, error) {
	smp := Sample{Labels: map[string]string{}}
	rest := line
	if i := strings.IndexAny(rest, "{ \t"); i < 0 {
		return smp, fmt.Errorf("no value in %q", line)
	} else {
		smp.Name = rest[:i]
		rest = rest[i:]
	}
	if err := checkName(smp.Name); err != nil {
		return smp, err
	}
	if strings.HasPrefix(rest, "{") {
		body, tail, err := splitLabels(rest)
		if err != nil {
			return smp, err
		}
		if err := parseLabels(body, smp.Labels); err != nil {
			return smp, err
		}
		rest = tail
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 {
		return smp, fmt.Errorf("no value in %q", line)
	}
	v, err := parseValue(fields[0])
	if err != nil {
		return smp, fmt.Errorf("bad value %q: %w", fields[0], err)
	}
	smp.Value = v // a second field would be the optional timestamp; ignored
	return smp, nil
}

// splitLabels returns the text between the opening '{' and its closing
// '}' (respecting quoted values) plus the remainder of the line.
func splitLabels(s string) (body, tail string, err error) {
	inQuote, esc := false, false
	for i := 1; i < len(s); i++ {
		c := s[i]
		switch {
		case esc:
			esc = false
		case c == '\\':
			esc = true
		case c == '"':
			inQuote = !inQuote
		case c == '}' && !inQuote:
			return s[1:i], s[i+1:], nil
		}
	}
	return "", "", fmt.Errorf("unterminated label set in %q", s)
}

func parseLabels(body string, into map[string]string) error {
	for len(body) > 0 {
		body = strings.TrimLeft(body, ", \t")
		if body == "" {
			break
		}
		eq := strings.IndexByte(body, '=')
		if eq < 0 {
			return fmt.Errorf("label without value in %q", body)
		}
		name := strings.TrimSpace(body[:eq])
		if err := checkName(name); err != nil {
			return err
		}
		rest := strings.TrimLeft(body[eq+1:], " \t")
		if !strings.HasPrefix(rest, `"`) {
			return fmt.Errorf("unquoted label value in %q", body)
		}
		val, tail, err := unquoteLabel(rest)
		if err != nil {
			return err
		}
		into[name] = val
		body = tail
	}
	return nil
}

// unquoteLabel consumes a leading quoted value, unescaping \\, \" and
// \n, and returns the remainder.
func unquoteLabel(s string) (val, tail string, err error) {
	var sb strings.Builder
	esc := false
	for i := 1; i < len(s); i++ {
		c := s[i]
		switch {
		case esc:
			switch c {
			case 'n':
				sb.WriteByte('\n')
			default:
				sb.WriteByte(c)
			}
			esc = false
		case c == '\\':
			esc = true
		case c == '"':
			return sb.String(), s[i+1:], nil
		default:
			sb.WriteByte(c)
		}
	}
	return "", "", fmt.Errorf("unterminated label value in %q", s)
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	}
	return strconv.ParseFloat(s, 64)
}
