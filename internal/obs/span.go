package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Span stage names. A live request's hop tree is rooted at a submit
// span covering the whole lifecycle, with one child per stage:
//
//	submit
//	├─ admission            master: OnSubmit hooks (absent without a stack)
//	├─ elect | reelect      master: estimation fan-out + selection (reelect
//	│  └─ estimate          on failover re-elections); one estimate span
//	│     └─ estimate…      per agent LEVEL, nested down the DIET tree
//	│        └─ dial/encode/decode   transport frames of remote children
//	└─ dispatch             master: the elected SED's Solve round trip
//	   ├─ queue             SED: waiting for a free execution slot
//	   ├─ solve             SED: the service's execution
//	   └─ reply             master: residual transport overhead
//
// The queue and solve spans are emitted by the SED itself when it has a
// SpanWriter (stitched by the trace context the Request carries across
// the gob wire); otherwise the master reconstructs them from the
// timings the Response carries back, so the tree is complete even when
// the SED-side stream is unavailable (or the transport is one-way).
const (
	StageSubmit    = "submit"
	StageAdmission = "admission"
	StageElect     = "elect"
	StageReelect   = "reelect"
	StageEstimate  = "estimate"
	StageDial      = "dial"
	StageEncode    = "encode"
	StageDecode    = "decode"
	StageDispatch  = "dispatch"
	StageQueue     = "queue"
	StageSolve     = "solve"
	StageReply     = "reply"
)

// CanonicalStages is the stage set every successful request's hop tree
// must contain — what `greensched spans -check` (and the CI smoke run)
// verify per trace.
var CanonicalStages = []string{
	StageSubmit, StageElect, StageDispatch, StageQueue, StageSolve, StageReply,
}

// Span is one timed stage of a distributed request. Spans stitch into
// a tree by ID, not by clock: TraceID groups the request's spans across
// processes, Parent links a stage under its enclosing one, and Start is
// seconds on the EMITTING component's clock (the master's injectable
// clock, a SED's process uptime) — durations are comparable everywhere,
// absolute starts only within one Src.
type Span struct {
	TraceID uint64 `json:"trace"`
	SpanID  uint64 `json:"span"`
	// Parent is the enclosing span's SpanID (0 for the root).
	Parent uint64 `json:"parent,omitempty"`
	// Name is the stage (one of the Stage* constants).
	Name string `json:"name"`
	// Src names the emitting component (a master's or SED's name).
	Src string `json:"src,omitempty"`

	Start  float64 `json:"start"`
	DurSec float64 `json:"dur_sec"`

	// Attrs carries stage-specific annotations (elected server,
	// retry attempt, candidate counts).
	Attrs map[string]string `json:"attrs,omitempty"`
	// Err marks a terminated span: the stage ended in failure.
	Err string `json:"err,omitempty"`
}

// spanIDs is the process-wide ID source: trace and span IDs only need
// to be unique, and the master propagates its trace ID to every other
// process touching the request, so a counter suffices.
var spanIDs atomic.Uint64

// NewSpanID returns a process-unique span (or trace) ID.
func NewSpanID() uint64 { return spanIDs.Add(1) }

// epoch anchors Uptime.
var epoch = time.Now()

// Uptime returns seconds since process start — the clock components
// without an injectable one (SEDs, remotes, agents) stamp span starts
// with. Monotonic, so durations derived from it are exact.
func Uptime() float64 { return time.Since(epoch).Seconds() }

// SpanWriter writes spans as JSON Lines, one object per span, safe for
// concurrent emitters. A nil *SpanWriter is a valid no-op, so call
// sites thread an optional writer without guarding — the same contract
// as Tracer.
type SpanWriter struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewSpanWriter returns a writer emitting JSONL to w.
func NewSpanWriter(w io.Writer) *SpanWriter {
	return &SpanWriter{enc: json.NewEncoder(w)}
}

// Emit writes one span. Write errors are swallowed: telemetry must
// never fail the serving path it observes.
func (w *SpanWriter) Emit(sp Span) {
	if w == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.enc.Encode(sp)
}

// ReadSpans decodes a JSONL span stream back into spans — the
// analysis-side inverse of a SpanWriter. Streams from several
// components (a master's file, each SED's file) concatenate freely:
// stitching is by ID.
func ReadSpans(r io.Reader) ([]Span, error) {
	dec := json.NewDecoder(r)
	var out []Span
	for {
		var sp Span
		if err := dec.Decode(&sp); err == io.EOF {
			return out, nil
		} else if err != nil {
			return out, err
		}
		out = append(out, sp)
	}
}
