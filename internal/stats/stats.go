// Package stats provides the small statistics toolkit the experiment
// harnesses use: summaries, series and distribution helpers matching
// what the paper reports (makespan, energy, per-node task counts,
// per-cluster energy, min/max envelopes for RANDOM runs).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary aggregates a sample set.
type Summary struct {
	N                   int
	Mean, Min, Max, Std float64
}

// Summarize computes a Summary; empty input yields a zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	sum := 0.0
	for _, x := range xs {
		sum += x
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}

// Percentile returns the p-th percentile (0..100) by nearest-rank;
// it returns 0 for empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// Gain returns the relative saving of b versus a: (a-b)/a. The paper's
// "gain of 25%" for POWER vs RANDOM energy is Gain(E_random, E_power).
func Gain(a, b float64) float64 {
	if a == 0 {
		return 0
	}
	return (a - b) / a
}

// Loss returns the relative degradation of b versus a: (b-a)/a. The
// paper's "loss of performance of up to 6%" is Loss(makespan_perf,
// makespan_power).
func Loss(a, b float64) float64 {
	if a == 0 {
		return 0
	}
	return (b - a) / a
}

// Envelope is a min/max band, used for the RANDOM shaded areas of
// Figures 6 and 7.
type Envelope struct {
	MinX, MaxX float64
	MinY, MaxY float64
}

// EnvelopeOf computes the band over (x, y) pairs.
func EnvelopeOf(xs, ys []float64) (Envelope, error) {
	if len(xs) == 0 || len(xs) != len(ys) {
		return Envelope{}, fmt.Errorf("metrics: envelope needs equal-length non-empty series")
	}
	e := Envelope{MinX: math.Inf(1), MaxX: math.Inf(-1), MinY: math.Inf(1), MaxY: math.Inf(-1)}
	for i := range xs {
		e.MinX = math.Min(e.MinX, xs[i])
		e.MaxX = math.Max(e.MaxX, xs[i])
		e.MinY = math.Min(e.MinY, ys[i])
		e.MaxY = math.Max(e.MaxY, ys[i])
	}
	return e, nil
}

// Contains reports whether the point lies inside the band (inclusive).
func (e Envelope) Contains(x, y float64) bool {
	return x >= e.MinX && x <= e.MaxX && y >= e.MinY && y <= e.MaxY
}

// Counts is a name → count distribution (tasks per node/cluster).
type Counts map[string]int

// Total sums the counts.
func (c Counts) Total() int {
	t := 0
	for _, v := range c {
		t += v
	}
	return t
}

// Share returns name's fraction of the total (0 when empty).
func (c Counts) Share(name string) float64 {
	t := c.Total()
	if t == 0 {
		return 0
	}
	return float64(c[name]) / float64(t)
}

// SortedKeys returns the keys in lexical order for stable rendering.
func (c Counts) SortedKeys() []string {
	keys := make([]string, 0, len(c))
	for k := range c {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// ArgMax returns the key with the largest count ("" when empty); ties
// break lexically for determinism.
func (c Counts) ArgMax() string {
	best, bestV := "", -1
	for _, k := range c.SortedKeys() {
		if c[k] > bestV {
			best, bestV = k, c[k]
		}
	}
	return best
}
