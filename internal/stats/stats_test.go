package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 6})
	if s.N != 3 || s.Mean != 4 || s.Min != 2 || s.Max != 6 {
		t.Fatalf("Summary = %+v", s)
	}
	if math.Abs(s.Std-2) > 1e-12 {
		t.Fatalf("Std = %v, want 2", s.Std)
	}
	if z := Summarize(nil); z.N != 0 || z.Mean != 0 {
		t.Fatalf("empty summary = %+v", z)
	}
	one := Summarize([]float64{5})
	if one.Std != 0 || one.Mean != 5 {
		t.Fatalf("single summary = %+v", one)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := Percentile(xs, 50); got != 5 {
		t.Fatalf("p50 = %v", got)
	}
	if got := Percentile(xs, 0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 10 {
		t.Fatalf("p100 = %v", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Fatalf("empty percentile = %v", got)
	}
	// Input must not be mutated (sorted copy).
	unsorted := []float64{3, 1, 2}
	Percentile(unsorted, 50)
	if unsorted[0] != 3 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestGainLoss(t *testing.T) {
	// Table II: POWER 4,528,547 J vs RANDOM 6,041,436 J → ≈25% gain.
	g := Gain(6041436, 4528547)
	if math.Abs(g-0.2504) > 0.001 {
		t.Fatalf("paper energy gain = %v, want ≈0.25", g)
	}
	// POWER 2321 s vs PERFORMANCE 2228 s → ≈4.2% loss ("up to 6%").
	l := Loss(2228, 2321)
	if l <= 0 || l > 0.06 {
		t.Fatalf("paper makespan loss = %v, want (0,0.06]", l)
	}
	if Gain(0, 5) != 0 || Loss(0, 5) != 0 {
		t.Fatal("zero baselines must not divide by zero")
	}
}

func TestEnvelope(t *testing.T) {
	e, err := EnvelopeOf([]float64{1, 3, 2}, []float64{10, 30, 20})
	if err != nil {
		t.Fatal(err)
	}
	if e.MinX != 1 || e.MaxX != 3 || e.MinY != 10 || e.MaxY != 30 {
		t.Fatalf("envelope = %+v", e)
	}
	if !e.Contains(2, 20) || e.Contains(0, 20) || e.Contains(2, 31) {
		t.Fatal("Contains wrong")
	}
	if _, err := EnvelopeOf(nil, nil); err == nil {
		t.Fatal("empty envelope accepted")
	}
	if _, err := EnvelopeOf([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("mismatched envelope accepted")
	}
}

func TestCounts(t *testing.T) {
	c := Counts{"taurus": 700, "orion": 300, "sagittaire": 40}
	if c.Total() != 1040 {
		t.Fatalf("Total = %d", c.Total())
	}
	if got := c.Share("taurus"); math.Abs(got-700.0/1040) > 1e-12 {
		t.Fatalf("Share = %v", got)
	}
	if c.ArgMax() != "taurus" {
		t.Fatalf("ArgMax = %s", c.ArgMax())
	}
	keys := c.SortedKeys()
	if len(keys) != 3 || keys[0] != "orion" {
		t.Fatalf("SortedKeys = %v", keys)
	}
	var empty Counts
	if empty.Total() != 0 || empty.Share("x") != 0 || empty.ArgMax() != "" {
		t.Fatal("empty Counts misbehave")
	}
	// Tie breaks lexically.
	tie := Counts{"b": 5, "a": 5}
	if tie.ArgMax() != "a" {
		t.Fatalf("tie ArgMax = %s", tie.ArgMax())
	}
}

// Property: mean lies in [min,max]; std is non-negative.
func TestPropertySummary(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		s := Summarize(xs)
		return s.Mean >= s.Min-1e-9 && s.Mean <= s.Max+1e-9 && s.Std >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
