package experiments

import (
	"fmt"
	"io"

	"greensched/internal/carbon"
	"greensched/internal/cluster"
	"greensched/internal/consolidation"
	"greensched/internal/report"
	"greensched/internal/sched"
	"greensched/internal/sim"
	"greensched/internal/sla"
	"greensched/internal/workload"
)

// SLAConfig parameterizes the deadline/value-aware scheduling study:
// an evening mix of heavy deferrable batch work, mid-value tasks with
// hard one-shot deadlines (a few provably hopeless), and a high-value
// interactive stream lands on the trimmed Table I platform at the
// dirtiest hour of the solar grid. Three configurations run on the
// identical schedule:
//
//	ENERGY-ONLY   GreenPerf + idle shutdown, FIFO queues, admits
//	              everything — the PR-1 state of the art, SLA-blind
//	SLA-AWARE     deadline-aware placement, EDF queues, admission
//	              control, shutdowns guarded by pending deadline slack
//	SLA+CARBON    the same plus carbon candidacy windows that defer
//	              the batch into the clean window while deadline
//	              traffic rides the SLA express lane
//
// The comparison makes the subsystem's claim measurable: equal work,
// equal platform, bounded extra energy, far less revenue forfeited —
// and, with carbon windows on top, fewer grams too.
type SLAConfig struct {
	StartHour float64 // when the evening mix begins (solar-dirty hour)

	BatchTasks int     // deferrable batch tasks bursting at StartHour
	BatchOps   float64 // flops per batch task

	DeadlineTasks  int     // hard-deadline tasks, one every DeadlineEverySec
	DeadlineOps    float64 // flops per deadline task
	DeadlineRelSec float64 // completion deadline after submission
	DeadlineEvery  float64 // arrival period, seconds

	HopelessTasks  int     // deadline tasks no node can serve in time
	HopelessRelSec float64 // their (unmeetable) relative deadline

	InteractiveTasks  int     // high-value interactive stream
	InteractiveOps    float64 // flops per interactive task
	InteractiveRelSec float64 // completion deadline after submission
	InteractiveEvery  float64 // arrival period, seconds

	SlotsPerNode int // concurrency cap per node (pressure knob)

	// Solar-site diurnal grid (the fossil site runs flatter and
	// dirtier, as in the carbon study).
	MeanG      float64
	AmplitudeG float64
	CleanHour  float64

	CleanG           float64 // candidacy window opens at/below this
	DirtyG           float64 // idle capacity shed immediately at/above
	IdleTimeout      float64 // idle-shutdown grace, seconds
	MinOn            int     // nodes kept powered between windows
	TickSec          float64 // controller cadence
	MaxDeferSec      float64 // deferral bound (makespan guarantee)
	DeadlineSlackSec float64 // controllers' SLA guard margin

	AdmissionMargin float64 // admission safety factor (≥1)

	Seed int64
}

// DefaultSLAConfig returns the calibrated one-evening scenario. The
// 18:00 batch burst (240 tasks of ≈400 s each against 12 slots) keeps
// every queue saturated for over two hours — the sustained backlog
// under which FIFO sacrifices the deadline and interactive streams
// that EDF and deadline-aware placement protect, because slots churn
// every few hundred seconds and the disciplines decide who gets them.
func DefaultSLAConfig() SLAConfig {
	return SLAConfig{
		StartHour: 18,

		BatchTasks: 240,
		BatchOps:   3.6e12, // ≈400 s on a taurus core

		DeadlineTasks:  24,
		DeadlineOps:    2.7e12, // ≈300 s on a taurus core
		DeadlineRelSec: 1800,
		DeadlineEvery:  600,

		HopelessTasks:  6,
		HopelessRelSec: 120, // < best-case execution anywhere

		InteractiveTasks:  60,
		InteractiveOps:    9e10, // ≈10 s on a taurus core
		InteractiveRelSec: 600,
		InteractiveEvery:  120,

		SlotsPerNode: 2,

		MeanG:      300,
		AmplitudeG: 250,
		CleanHour:  13,

		CleanG:           150,
		DirtyG:           450,
		IdleTimeout:      1200,
		MinOn:            0, // carbon run: fully dark between windows
		TickSec:          300,
		MaxDeferSec:      20 * 3600,
		DeadlineSlackSec: 450,

		AdmissionMargin: 1,

		Seed: 1,
	}
}

// Validate reports configuration errors.
func (c SLAConfig) Validate() error {
	switch {
	case c.BatchTasks < 1 || c.BatchOps <= 0:
		return fmt.Errorf("experiments: sla study needs a positive batch workload")
	case c.DeadlineTasks < 1 || c.DeadlineOps <= 0 || c.DeadlineRelSec <= 0 || c.DeadlineEvery <= 0:
		return fmt.Errorf("experiments: sla study needs a positive deadline stream")
	case c.InteractiveTasks < 1 || c.InteractiveOps <= 0 || c.InteractiveRelSec <= 0 || c.InteractiveEvery <= 0:
		return fmt.Errorf("experiments: sla study needs a positive interactive stream")
	case c.HopelessTasks < 0 || (c.HopelessTasks > 0 && c.HopelessRelSec <= 0):
		return fmt.Errorf("experiments: sla study hopeless stream misconfigured")
	case c.MaxDeferSec <= 0 || c.DeadlineSlackSec <= 0:
		return fmt.Errorf("experiments: sla study needs positive defer bound and slack guard")
	case c.AdmissionMargin < 1:
		return fmt.Errorf("experiments: admission margin %v must be at least 1", c.AdmissionMargin)
	}
	return (carbon.Diurnal{MeanG: c.MeanG, AmplitudeG: c.AmplitudeG, CleanHour: c.CleanHour}).Validate()
}

// Profile builds the two-site grid, identical to the carbon study's:
// taurus and orion on the solar-diurnal grid, sagittaire fossil.
func (c SLAConfig) Profile() *carbon.Profile {
	solar := carbon.SiteProfile{Site: "solar-valley", Signal: carbon.Diurnal{
		MeanG: c.MeanG, AmplitudeG: c.AmplitudeG, CleanHour: c.CleanHour,
		RenewableMin: 0.05, RenewableMax: 0.8,
	}}
	fossil := carbon.SiteProfile{Site: "fossil-ridge", Signal: carbon.Diurnal{
		MeanG: c.MeanG * 1.5, AmplitudeG: c.AmplitudeG * 0.2, CleanHour: c.CleanHour,
		RenewableMin: 0.02, RenewableMax: 0.2,
	}}
	p := carbon.MustProfile(solar)
	if err := p.SetCluster("sagittaire", fossil); err != nil {
		panic(err)
	}
	return p
}

// Tasks materializes the identical arrival schedule all three
// configurations replay.
func (c SLAConfig) Tasks() ([]workload.Task, error) {
	batch, err := workload.BurstThenRate{
		Total: c.BatchTasks, Burst: c.BatchTasks, Ops: c.BatchOps,
		Class: sla.ClassBatch,
	}.Tasks()
	if err != nil {
		return nil, err
	}
	deadline, err := workload.BurstThenRate{
		Total: c.DeadlineTasks, Burst: 0, Rate: 1 / c.DeadlineEvery,
		Ops: c.DeadlineOps, Class: sla.ClassDeadline, RelDeadline: c.DeadlineRelSec,
	}.Tasks()
	if err != nil {
		return nil, err
	}
	interactive, err := workload.BurstThenRate{
		Total: c.InteractiveTasks, Burst: 0, Rate: 1 / c.InteractiveEvery,
		Ops: c.InteractiveOps, Class: sla.ClassInteractive, RelDeadline: c.InteractiveRelSec,
	}.Tasks()
	if err != nil {
		return nil, err
	}
	streams := [][]workload.Task{batch, deadline, interactive}
	if c.HopelessTasks > 0 {
		hopeless, err := workload.BurstThenRate{
			Total: c.HopelessTasks, Burst: c.HopelessTasks,
			Ops: c.DeadlineOps, Class: sla.ClassDeadline, RelDeadline: c.HopelessRelSec,
		}.Tasks()
		if err != nil {
			return nil, err
		}
		streams = append(streams, hopeless)
	}
	at := c.StartHour * 3600
	for i, s := range streams {
		streams[i] = workload.Shift(s, at)
	}
	return workload.Merge(streams...), nil
}

// MakespanBound is the guarantee the deferral bound implies for the
// SLA+CARBON run: the batch starts no later than MaxDeferSec after its
// StartHour submission, plus a day of slack for draining.
func (c SLAConfig) MakespanBound() float64 {
	return c.StartHour*3600 + c.MaxDeferSec + carbon.DaySeconds
}

// SLARun is one configuration's outcome.
type SLARun struct {
	Name     string
	EnergyJ  float64
	CO2Grams float64
	Makespan float64
	MeanWait float64

	EarnedUSD    float64
	ForfeitedUSD float64
	PenaltyUSD   float64
	OnTime       int
	Misses       int
	Rejected     int

	JoulesPerTask float64
	GramsPerTask  float64
	GramsPerUSD   float64

	// PerClass carries the full ledger breakdown.
	PerClass []sla.Account
}

// NetUSD returns earned minus contractual penalties.
func (r SLARun) NetUSD() float64 { return r.EarnedUSD - r.PenaltyUSD }

// SLAResult bundles the compared configurations.
type SLAResult struct {
	Config SLAConfig
	Runs   []SLARun // fixed order: ENERGY-ONLY, SLA-AWARE, SLA+CARBON
}

// Names of the compared configurations.
const (
	SLARunEnergyOnly = "ENERGY-ONLY"
	SLARunAware      = "SLA-AWARE"
	SLARunCarbon     = "SLA+CARBON"
)

// Run returns the named configuration's outcome, or false.
func (r *SLAResult) Run(name string) (SLARun, bool) {
	for _, run := range r.Runs {
		if run.Name == name {
			return run, true
		}
	}
	return SLARun{}, false
}

// slaPlatform is the trimmed Table I platform the SLA-family studies
// share: two nodes per cluster — real placement choices across both
// grid sites without the idle floor drowning the workload energy.
func slaPlatform() *cluster.Platform {
	return cluster.MustPlatform(
		cluster.NewNodes("orion", 2),
		cluster.NewNodes("sagittaire", 2),
		cluster.NewNodes("taurus", 2),
	)
}

// RunSLAStudy executes the three configurations on the identical
// schedule, platform and grid profile.
func RunSLAStudy(cfg SLAConfig) (*SLAResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	platform := slaPlatform()
	profile := cfg.Profile()
	tasks, err := cfg.Tasks()
	if err != nil {
		return nil, fmt.Errorf("experiments: sla workload: %w", err)
	}
	catalog := sla.DefaultCatalog()

	// ENERGY-ONLY: the paper's GreenPerf placement, always-on (the
	// §IV-B baseline), FIFO queues, admits everything; the SLA module
	// only keeps the ledger, so revenue loss is measured on identical
	// scheduling behaviour.
	only := sim.NewScenario(platform, tasks,
		sim.WithPolicy(sched.New(sched.GreenPerf)),
		sim.WithExplore(),
		sim.WithSeed(cfg.Seed),
		sim.WithSlotsPerNode(cfg.SlotsPerNode),
		sim.WithModules(
			&sim.CarbonModule{Profile: profile},
			&sim.SLAModule{Config: &sla.Config{Catalog: catalog}},
		),
	)

	// SLA-AWARE: deadline-aware placement over the same GreenPerf
	// base (SLAModule.WrapDeadline), EDF queues, admission control —
	// same always-on platform, so the delta is purely the SLA
	// machinery.
	admission := &sla.Admission{Margin: cfg.AdmissionMargin}
	aware := sim.NewScenario(platform, tasks,
		sim.WithPolicy(sched.New(sched.GreenPerf)),
		sim.WithExplore(),
		sim.WithSeed(cfg.Seed),
		sim.WithSlotsPerNode(cfg.SlotsPerNode),
		sim.WithModules(
			&sim.CarbonModule{Profile: profile},
			&sim.SLAModule{
				Config:       &sla.Config{Catalog: catalog, Admission: admission, Order: sched.NewOrder(sched.EDF)},
				WrapDeadline: true,
			},
		),
	)

	// SLA+CARBON: carbon-ranked placement and candidacy windows on top
	// of the full SLA stack; deadline traffic rides the express lane
	// while the windows defer only the batch.
	carbonCtl := &consolidation.CarbonController{
		Profile:          profile,
		CleanG:           cfg.CleanG,
		DirtyG:           cfg.DirtyG,
		IdleTimeout:      cfg.IdleTimeout,
		MinOn:            cfg.MinOn,
		MaxDeferSec:      cfg.MaxDeferSec,
		DeadlineSlackSec: cfg.DeadlineSlackSec,
	}
	green := sim.NewScenario(platform, tasks,
		sim.WithPolicy(sched.New(sched.Carbon)),
		sim.WithExplore(),
		sim.WithSeed(cfg.Seed),
		sim.WithSlotsPerNode(cfg.SlotsPerNode),
		sim.WithTick(cfg.TickSec),
		sim.WithRetryEvery(60),
		sim.WithModules(
			&sim.CarbonModule{Profile: profile},
			&sim.SLAModule{
				Config: &sla.Config{
					Catalog: catalog, Admission: admission,
					Order: sched.NewOrder(sched.EDF), UrgentBypass: true,
				},
				WrapDeadline: true,
			},
			&consolidation.Module{Controller: carbonCtl},
		),
	)

	out := &SLAResult{Config: cfg}
	for _, c := range []struct {
		name string
		cfg  sim.Config
	}{
		{SLARunEnergyOnly, only},
		{SLARunAware, aware},
		{SLARunCarbon, green},
	} {
		res, err := sim.Run(c.cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: sla %s: %w", c.name, err)
		}
		run := SLARun{
			Name:          c.name,
			EnergyJ:       float64(res.EnergyJ),
			CO2Grams:      res.CO2Grams,
			Makespan:      res.Makespan,
			MeanWait:      res.MeanWait(),
			Misses:        res.DeadlineMisses,
			Rejected:      res.Rejected,
			JoulesPerTask: res.JoulesPerTask(),
			GramsPerTask:  res.GramsPerTask(),
		}
		if res.SLA != nil {
			run.EarnedUSD = res.SLA.EarnedUSD
			run.ForfeitedUSD = res.SLA.ForfeitedUSD
			run.PenaltyUSD = res.SLA.PenaltyUSD
			run.OnTime = res.SLA.OnTime
			run.GramsPerUSD = res.SLA.GramsPerUSD
			run.PerClass = res.SLA.PerClass
		}
		out.Runs = append(out.Runs, run)
	}
	return out, nil
}

// Table renders the comparison.
func (r *SLAResult) Table() *report.Table {
	t := &report.Table{
		Title: fmt.Sprintf("SLA-aware scheduling: %d batch + %d deadline (+%d hopeless) + %d interactive tasks from %02.0f:00",
			r.Config.BatchTasks, r.Config.DeadlineTasks, r.Config.HopelessTasks,
			r.Config.InteractiveTasks, r.Config.StartHour),
		Headers: []string{"Configuration", "Earned ($)", "Forfeited ($)", "Penalties ($)",
			"Late", "Rejected", "Energy (MJ)", "CO2 (g)", "g/task", "Makespan (h)"},
	}
	for _, run := range r.Runs {
		t.AddRow(run.Name,
			fmt.Sprintf("%.2f", run.EarnedUSD),
			fmt.Sprintf("%.2f", run.ForfeitedUSD),
			fmt.Sprintf("%.2f", run.PenaltyUSD),
			fmt.Sprintf("%d", run.Misses),
			fmt.Sprintf("%d", run.Rejected),
			fmt.Sprintf("%.2f", run.EnergyJ/1e6),
			fmt.Sprintf("%.0f", run.CO2Grams),
			fmt.Sprintf("%.2f", run.GramsPerTask),
			fmt.Sprintf("%.1f", run.Makespan/3600),
		)
	}
	return t
}

// Render writes the table plus the headline trade-off.
func (r *SLAResult) Render(w io.Writer) error {
	if err := r.Table().Render(w); err != nil {
		return err
	}
	aware, ok1 := r.Run(SLARunAware)
	only, ok2 := r.Run(SLARunEnergyOnly)
	green, ok3 := r.Run(SLARunCarbon)
	if !ok1 || !ok2 || !ok3 {
		return nil
	}
	fmt.Fprintf(w, "\n%s recovers $%.2f of revenue lost by %s at %+.1f%% energy; %s also cuts CO2 %.1f%% (%s, makespan bound %.1f h, actual %.1f h)\n",
		SLARunAware, only.ForfeitedUSD+only.PenaltyUSD-aware.ForfeitedUSD-aware.PenaltyUSD,
		SLARunEnergyOnly, (aware.EnergyJ/only.EnergyJ-1)*100,
		SLARunCarbon, (1-green.CO2Grams/only.CO2Grams)*100,
		report.PerTask(green.JoulesPerTask, green.GramsPerTask),
		r.Config.MakespanBound()/3600, green.Makespan/3600)
	fmt.Fprintf(w, "\nPer-class ledger (%s):\n", SLARunCarbon)
	for _, a := range green.PerClass {
		fmt.Fprintf(w, "  %s\n", a.Line())
	}
	return nil
}
