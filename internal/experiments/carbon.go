package experiments

import (
	"fmt"
	"io"
	"sort"

	"greensched/internal/carbon"
	"greensched/internal/cluster"
	"greensched/internal/consolidation"
	"greensched/internal/report"
	"greensched/internal/sched"
	"greensched/internal/sim"
	"greensched/internal/stats"
	"greensched/internal/workload"
)

// CarbonConfig parameterizes the carbon-aware scheduling study: a
// multi-day scenario on the Table I platform where each cluster sits
// on its own grid (solar-diurnal vs fossil-heavy) and a deferrable
// batch burst arrives every evening — exactly when the solar grid is
// dirtiest. Three configurations run on the identical arrival
// schedule:
//
//	GREENPERF            always-on, carbon-blind (the paper's §IV-B policy)
//	GREENPERF+IDLE       carbon-blind with idle-shutdown consolidation
//	CARBON+WINDOWS       carbon-ranked placement plus candidacy windows
//	                     that defer the batch into clean periods
//
// The comparison makes the subsystem's claim measurable: equal work,
// equal platform, bounded extra makespan, fewer grams.
type CarbonConfig struct {
	Days       int     // scenario length in days (≥1)
	BurstTasks int     // deferrable tasks per 20:00 burst
	TaskOps    float64 // flops per task

	// Diurnal grid model for the solar site; the fossil site runs
	// flatter and dirtier.
	MeanG      float64 // solar-site daily mean, gCO2/kWh
	AmplitudeG float64 // solar-site swing
	CleanHour  float64 // solar-site cleanest hour

	CleanG      float64 // candidacy window opens at/below this
	DirtyG      float64 // idle capacity shed immediately at/above this
	IdleTimeout float64 // idle-shutdown grace, seconds
	MinOn       int     // nodes kept powered between windows
	TickSec     float64 // controller cadence
	MaxDeferSec float64 // deferral bound (makespan guarantee)

	Seed int64
}

// DefaultCarbonConfig returns the calibrated two-day scenario. The
// batch is deliberately heavy (≈33 min per task on a taurus core) so
// execution energy, not the platform's idle floor, carries the
// comparison; MinOn 0 lets the windowed controller keep the platform
// dark between clean periods.
func DefaultCarbonConfig() CarbonConfig {
	return CarbonConfig{
		Days:        2,
		BurstTasks:  120,
		TaskOps:     1.8e13, // ≈2000 s on a taurus core
		MeanG:       300,
		AmplitudeG:  250,
		CleanHour:   13,
		CleanG:      150,
		DirtyG:      450,
		IdleTimeout: 1200,
		MinOn:       0,
		TickSec:     300,
		MaxDeferSec: 24 * 3600,
		Seed:        1,
	}
}

// Validate reports configuration errors.
func (c CarbonConfig) Validate() error {
	switch {
	case c.Days < 1:
		return fmt.Errorf("experiments: carbon study needs at least one day")
	case c.BurstTasks < 1 || c.TaskOps <= 0:
		return fmt.Errorf("experiments: carbon study needs a positive burst workload")
	case c.MaxDeferSec <= 0:
		return fmt.Errorf("experiments: carbon study needs a positive defer bound")
	}
	return (carbon.Diurnal{MeanG: c.MeanG, AmplitudeG: c.AmplitudeG, CleanHour: c.CleanHour}).Validate()
}

// Profile builds the study's two-site grid: taurus and orion draw from
// a solar-diurnal grid, sagittaire from a flatter fossil-heavy one.
func (c CarbonConfig) Profile() *carbon.Profile {
	solar := carbon.SiteProfile{Site: "solar-valley", Signal: carbon.Diurnal{
		MeanG: c.MeanG, AmplitudeG: c.AmplitudeG, CleanHour: c.CleanHour,
		RenewableMin: 0.05, RenewableMax: 0.8,
	}}
	fossil := carbon.SiteProfile{Site: "fossil-ridge", Signal: carbon.Diurnal{
		MeanG: c.MeanG * 1.5, AmplitudeG: c.AmplitudeG * 0.2, CleanHour: c.CleanHour,
		RenewableMin: 0.02, RenewableMax: 0.2,
	}}
	p := carbon.MustProfile(solar)
	if err := p.SetCluster("sagittaire", fossil); err != nil {
		panic(err)
	}
	return p
}

// Tasks materializes the arrival schedule: one deferrable burst at
// 20:00 of every scenario day.
func (c CarbonConfig) Tasks() ([]workload.Task, error) {
	var days [][]workload.Task
	for d := 0; d < c.Days; d++ {
		burst, err := workload.BurstThenRate{Total: c.BurstTasks, Burst: c.BurstTasks, Ops: c.TaskOps}.Tasks()
		if err != nil {
			return nil, err
		}
		days = append(days, workload.Shift(burst, float64(d)*carbon.DaySeconds+20*3600))
	}
	return workload.Merge(days...), nil
}

// MakespanBound is the guarantee the deferral bound implies: the last
// burst (day Days−1, 20:00) starts no later than MaxDeferSec after
// submission, plus a day of slack for draining on a partial platform.
func (c CarbonConfig) MakespanBound() float64 {
	return float64(c.Days-1)*carbon.DaySeconds + 20*3600 + c.MaxDeferSec + carbon.DaySeconds
}

// CarbonRun is one configuration's outcome.
type CarbonRun struct {
	Name      string
	EnergyJ   float64
	CO2Grams  float64
	Makespan  float64
	MeanWait  float64
	Boots     int
	Shutdowns int

	// JoulesPerTask and GramsPerTask divide the run's totals across
	// completed tasks — the per-request attribution of the ROADMAP
	// follow-on.
	JoulesPerTask float64
	GramsPerTask  float64
}

// CarbonResult bundles the compared configurations.
type CarbonResult struct {
	Config CarbonConfig
	Runs   []CarbonRun // fixed order: GREENPERF, GREENPERF+IDLE, CARBON+WINDOWS
	// PerSiteCO2 breaks the carbon-aware run's emissions down by site.
	PerSiteCO2 map[string]float64
}

// Run returns the named configuration's outcome, or false.
func (r *CarbonResult) Run(name string) (CarbonRun, bool) {
	for _, run := range r.Runs {
		if run.Name == name {
			return run, true
		}
	}
	return CarbonRun{}, false
}

// Names of the compared configurations.
const (
	CarbonRunAlwaysOn = "GREENPERF"
	CarbonRunIdle     = "GREENPERF+IDLE"
	CarbonRunAware    = "CARBON+WINDOWS"
)

// RunCarbonStudy executes the three configurations on the identical
// schedule, platform and grid profile.
func RunCarbonStudy(cfg CarbonConfig) (*CarbonResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// A trimmed Table I platform (two nodes per cluster): large enough
	// for real placement choices across both sites, small enough that
	// the idle floor does not drown the batch energy the study shifts.
	platform := cluster.MustPlatform(
		cluster.NewNodes("orion", 2),
		cluster.NewNodes("sagittaire", 2),
		cluster.NewNodes("taurus", 2),
	)
	profile := cfg.Profile()
	tasks, err := cfg.Tasks()
	if err != nil {
		return nil, fmt.Errorf("experiments: carbon workload: %w", err)
	}

	// Each configuration is one module stack over the identical
	// platform and schedule; the carbon accounting module is common,
	// the controllers differ.
	alwaysOn := sim.NewScenario(platform, tasks,
		sim.WithPolicy(sched.New(sched.GreenPerf)),
		sim.WithExplore(),
		sim.WithSeed(cfg.Seed),
		sim.WithModules(&sim.CarbonModule{Profile: profile}),
	)

	idleCtl := &consolidation.Controller{IdleTimeout: cfg.IdleTimeout, MinOn: cfg.MinOn}
	if cfg.MinOn < 1 {
		idleCtl.MinOn = 1 // the blind controller requires a serving floor
	}
	idle := sim.NewScenario(platform, tasks,
		sim.WithPolicy(sched.New(sched.GreenPerf)),
		sim.WithExplore(),
		sim.WithSeed(cfg.Seed),
		sim.WithTick(cfg.TickSec),
		sim.WithModules(
			&sim.CarbonModule{Profile: profile},
			&consolidation.Module{Controller: idleCtl},
		),
	)

	awareCtl := &consolidation.CarbonController{
		Profile:     profile,
		CleanG:      cfg.CleanG,
		DirtyG:      cfg.DirtyG,
		IdleTimeout: cfg.IdleTimeout,
		MinOn:       cfg.MinOn,
		MaxDeferSec: cfg.MaxDeferSec,
	}
	aware := sim.NewScenario(platform, tasks,
		sim.WithPolicy(sched.New(sched.Carbon)),
		sim.WithExplore(),
		sim.WithSeed(cfg.Seed),
		sim.WithTick(cfg.TickSec),
		sim.WithRetryEvery(60),
		sim.WithModules(
			&sim.CarbonModule{Profile: profile},
			&consolidation.Module{Controller: awareCtl},
		),
	)

	out := &CarbonResult{Config: cfg, PerSiteCO2: make(map[string]float64)}
	for _, c := range []struct {
		name string
		cfg  sim.Config
	}{
		{CarbonRunAlwaysOn, alwaysOn},
		{CarbonRunIdle, idle},
		{CarbonRunAware, aware},
	} {
		res, err := sim.Run(c.cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: carbon %s: %w", c.name, err)
		}
		out.Runs = append(out.Runs, CarbonRun{
			Name:          c.name,
			EnergyJ:       res.EnergyJ,
			CO2Grams:      res.CO2Grams,
			Makespan:      res.Makespan,
			MeanWait:      res.MeanWait(),
			Boots:         res.Boots,
			Shutdowns:     res.Shutdowns,
			JoulesPerTask: res.JoulesPerTask(),
			GramsPerTask:  res.GramsPerTask(),
		})
		if c.name == CarbonRunAware {
			for clusterName, g := range res.PerClusterCO2 {
				out.PerSiteCO2[profile.Site(clusterName).Site] += g
			}
		}
	}
	return out, nil
}

// Table renders the comparison.
func (r *CarbonResult) Table() *report.Table {
	t := &report.Table{
		Title: fmt.Sprintf("Carbon-aware scheduling over %d day(s): %d deferrable tasks per 20:00 burst",
			r.Config.Days, r.Config.BurstTasks),
		Headers: []string{"Configuration", "Energy (MJ)", "CO2 (g)", "Makespan (h)", "Mean wait (h)", "Boots", "Shutdowns"},
	}
	for _, run := range r.Runs {
		t.AddRow(run.Name,
			fmt.Sprintf("%.2f", run.EnergyJ/1e6),
			fmt.Sprintf("%.0f", run.CO2Grams),
			fmt.Sprintf("%.1f", run.Makespan/3600),
			fmt.Sprintf("%.2f", run.MeanWait/3600),
			fmt.Sprintf("%d", run.Boots),
			fmt.Sprintf("%d", run.Shutdowns),
		)
	}
	return t
}

// Render writes the table plus the headline savings.
func (r *CarbonResult) Render(w io.Writer) error {
	if err := r.Table().Render(w); err != nil {
		return err
	}
	aware, ok1 := r.Run(CarbonRunAware)
	idle, ok2 := r.Run(CarbonRunIdle)
	always, ok3 := r.Run(CarbonRunAlwaysOn)
	if ok1 && ok2 && ok3 {
		fmt.Fprintf(w, "\nCO2 saving of %s: %.1f%% vs %s, %.1f%% vs %s (makespan bound %.1f h, actual %.1f h)\n",
			CarbonRunAware,
			stats.Gain(idle.CO2Grams, aware.CO2Grams)*100, CarbonRunIdle,
			stats.Gain(always.CO2Grams, aware.CO2Grams)*100, CarbonRunAlwaysOn,
			r.Config.MakespanBound()/3600, aware.Makespan/3600)
	}
	if len(r.PerSiteCO2) > 0 {
		fmt.Fprintf(w, "%s per-site CO2:", CarbonRunAware)
		for _, site := range sortedKeys(r.PerSiteCO2) {
			fmt.Fprintf(w, "  %s %.0f g", site, r.PerSiteCO2[site])
		}
		fmt.Fprintln(w)
	}
	for _, run := range r.Runs {
		fmt.Fprintf(w, "%s per task: %s\n", run.Name, report.PerTask(run.JoulesPerTask, run.GramsPerTask))
	}
	return nil
}

func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
