package experiments

import (
	"fmt"
	"io"

	"greensched/internal/analysis"
	"greensched/internal/cluster"
	"greensched/internal/report"
	"greensched/internal/sched"
	"greensched/internal/sim"
	"greensched/internal/workload"
)

// HeterogeneityPoint is one level of the continuum generalizing
// Figures 6–7: a synthetic platform of fixed size whose hardware
// diversity is set by Spread, and the geometry of the G/GP/P placement
// points on it. The paper's claim is about that geometry: "with two
// similar server types" the points nearly coincide (Figure 6 — no
// trade-off exists to exploit), while four diverse types open a
// makespan↔energy range within which GreenPerf "shows a better
// tradeoff" (Figure 7).
type HeterogeneityPoint struct {
	Spread   float64 // cluster.SyntheticPlatform knob in [0,1]
	HetIndex float64 // measured coefficient-of-variation of GreenPerf ratios

	// The G–P trade-off space, as relative ranges over the three
	// placement points (percent).
	MakespanSpread float64 // (max−min)/min makespan across G/GP/P
	EnergySpread   float64 // (max−min)/min energy across G/GP/P

	// Quality is GP's normalized distance from the ideal corner
	// (MetricResult.TradeoffQuality, 0 best). Only meaningful once the
	// spreads are non-trivial.
	Quality float64
}

// HeterogeneityResult is the full sweep.
type HeterogeneityResult struct {
	Points []HeterogeneityPoint
	// Fit is the least-squares line of EnergySpread over HetIndex —
	// the quantified form of the paper's conclusion that GreenPerf's
	// effectiveness "strongly relies on the heterogeneity of servers":
	// the trade-off space the metric exploits grows with hardware
	// diversity.
	Fit analysis.Fit
}

// HeterogeneityConfig parameterizes the continuum sweep. It drives the
// §IV-A placement machinery (per-core slots, dynamic learning) rather
// than the §IV-B one-task-per-server simulation: with hundreds of
// placement decisions per run the G/GP/P geometry varies smoothly with
// the platform knob instead of jumping at type-count quantization
// boundaries.
type HeterogeneityConfig struct {
	ReqsPerCore int     // requests per available core
	BurstFrac   float64 // fraction submitted as the opening burst
	Rate        float64 // continuous-phase requests per second
	TaskOps     float64 // flops per task
	Seed        int64
}

// DefaultHeterogeneityConfig returns the calibrated sweep setup
// (synthetic platforms have 96 cores; the load factor mirrors §IV-A).
func DefaultHeterogeneityConfig() HeterogeneityConfig {
	return HeterogeneityConfig{
		ReqsPerCore: 5,
		BurstFrac:   0.10,
		Rate:        0.45,
		TaskOps:     6.0e11, // ≈100 s on a base synthetic core
		Seed:        1,
	}
}

// RunHeterogeneitySweep measures the G/GP/P geometry on synthetic
// platforms across the given spread levels (each > 0; at spread 0 the
// G/GP/P points coincide by construction).
func RunHeterogeneitySweep(cfg HeterogeneityConfig, spreads []float64) (*HeterogeneityResult, error) {
	if len(spreads) < 2 {
		return nil, fmt.Errorf("experiments: heterogeneity sweep needs >=2 levels")
	}
	out := &HeterogeneityResult{}
	for _, s := range spreads {
		if s <= 0 {
			return nil, fmt.Errorf("experiments: spread %v must be positive", s)
		}
		platform, err := cluster.SyntheticPlatform(4, 3, s)
		if err != nil {
			return nil, err
		}
		total := workload.PerCore(platform.Cores(), cfg.ReqsPerCore)
		tasks, err := workload.BurstThenRate{
			Total: total, Burst: int(float64(total) * cfg.BurstFrac), Rate: cfg.Rate, Ops: cfg.TaskOps,
		}.Tasks()
		if err != nil {
			return nil, err
		}
		point := make(map[string]*sim.Result, 3)
		for label, kind := range map[string]sched.Kind{
			"G": sched.Power, "GP": sched.GreenPerf, "P": sched.Performance,
		} {
			res, err := sim.Run(sim.Config{
				Platform:        platform,
				Policy:          sched.New(kind),
				Tasks:           tasks,
				Explore:         true,
				Seed:            cfg.Seed,
				Contention:      0.08,
				ExecJitter:      0.02,
				MeterNoiseW:     2,
				EstimatorWindow: 32,
			})
			if err != nil {
				return nil, fmt.Errorf("experiments: heterogeneity spread %v %s: %w", s, kind, err)
			}
			point[label] = res
		}
		g, gp, p := point["G"], point["GP"], point["P"]
		minT := min3(g.Makespan, gp.Makespan, p.Makespan)
		maxT := max3(g.Makespan, gp.Makespan, p.Makespan)
		minE := min3(g.EnergyJ, gp.EnergyJ, p.EnergyJ)
		maxE := max3(g.EnergyJ, gp.EnergyJ, p.EnergyJ)
		quality := 0.0
		if maxT > minT {
			quality += (gp.Makespan - minT) / (maxT - minT) / 2
		}
		if maxE > minE {
			quality += (gp.EnergyJ - minE) / (maxE - minE) / 2
		}
		out.Points = append(out.Points, HeterogeneityPoint{
			Spread:         s,
			HetIndex:       platform.HeterogeneityIndex(),
			MakespanSpread: (maxT - minT) / minT * 100,
			EnergySpread:   (maxE - minE) / minE * 100,
			Quality:        quality,
		})
	}
	xs := make([]float64, len(out.Points))
	ys := make([]float64, len(out.Points))
	for i, pt := range out.Points {
		xs[i] = pt.HetIndex
		ys[i] = pt.EnergySpread
	}
	fit, err := analysis.LinearFit(xs, ys)
	if err != nil {
		return nil, err
	}
	out.Fit = fit
	return out, nil
}

// Table renders the continuum.
func (r *HeterogeneityResult) Table() *report.Table {
	t := &report.Table{
		Title:   "Extension D. Heterogeneity continuum (synthetic 4-type platforms)",
		Headers: []string{"Spread", "Het. index", "Makespan spread (%)", "Energy spread (%)", "GP tradeoff quality"},
	}
	for _, p := range r.Points {
		t.AddRow(
			fmt.Sprintf("%.2f", p.Spread),
			fmt.Sprintf("%.3f", p.HetIndex),
			fmt.Sprintf("%.1f", p.MakespanSpread),
			fmt.Sprintf("%.1f", p.EnergySpread),
			fmt.Sprintf("%.2f", p.Quality),
		)
	}
	return t
}

// Render writes the table and the fitted trend line.
func (r *HeterogeneityResult) Render(w io.Writer) error {
	if err := r.Table().Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w,
		"\nenergy trade-off space ≈ %.1f%% + %.1f%% × het-index (R²=%.2f) — the paper's\n\"strongly relies on the heterogeneity of servers\", quantified.\n",
		r.Fit.Intercept, r.Fit.Slope, r.Fit.R2)
	return err
}
