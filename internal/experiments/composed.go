package experiments

import (
	"fmt"
	"io"

	"greensched/internal/budget"
	"greensched/internal/consolidation"
	"greensched/internal/core"
	"greensched/internal/report"
	"greensched/internal/sched"
	"greensched/internal/sim"
	"greensched/internal/sla"
)

// ComposedConfig parameterizes the composition study — the proof that
// the sim.Module stack is a real extension surface, not three features
// that happen to coexist: carbon accounting, the full SLA machinery,
// checkpoint/restart preemption, the carbon-window controller and an
// energy-budget tracker all mount on ONE run, with no glue code
// between them.
//
// The scenario is the SLA study's evening mix with the interactive
// deadline tightened below a batch task's execution time, so that
// queue-wait math provably breaches it while an immediate start does
// not — the condition under which the arrival path checkpoints a
// running batch task in place. Two configurations replay the identical
// schedule:
//
//	CARBON-BLIND   GreenPerf always-on, FIFO, admits everything; the
//	               carbon and SLA modules only keep the books
//	COMPOSED       carbon-ranked placement + candidacy windows + EDF +
//	               admission + express lane + preemption + budget
//	               metering, stacked as five modules in one run
type ComposedConfig struct {
	// SLA is the underlying evening-mix scenario and controller knobs
	// (its Seed drives both runs).
	SLA SLAConfig

	// InteractiveRelSec overrides the SLA scenario's interactive
	// deadline; it must sit below a batch task's execution time for
	// the preemption path to fire.
	InteractiveRelSec float64

	// RestartPenaltyFrac is the checkpoint quality (0 = perfect).
	RestartPenaltyFrac float64

	// BudgetJ is the attributed-energy budget (joules of per-task
	// energy share) the tracker meters over BudgetHorizonSec; the
	// default is generous — the study asserts exact metering, and the
	// module steers elections only if consumption outruns the linear
	// burn-down.
	BudgetJ          float64
	BudgetHorizonSec float64

	// Trace, when set, receives the COMPOSED run's lifecycle events as
	// JSONL (sim.TraceModule) — the same schema the live study's
	// ObsInterceptor emits, so the two paths' traces are directly
	// comparable.
	Trace io.Writer
}

// DefaultComposedConfig returns the calibrated scenario: the SLA
// study's evening mix, with the interactive stream stretched to one
// arrival every ten minutes for twenty hours so it keeps arriving
// while the deferred batch saturates the clean-window capacity — the
// collision the preemption module resolves in place.
func DefaultComposedConfig() ComposedConfig {
	s := DefaultSLAConfig()
	s.InteractiveTasks = 120
	s.InteractiveEvery = 600
	// One slot per node: an urgent arrival's wait is one full batch
	// remainder (uniform over ≈400 s), which regularly exceeds its
	// ≈170 s of slack — queueing alone cannot save it, preemption can.
	s.SlotsPerNode = 1
	// Keep a serving floor powered: the express stream never pays a
	// boot transient, and at window-open the deferred batch spreads
	// across warm capacity instead of clumping onto the single
	// express-boot node — which is what makes every node saturated
	// when the interactive stream collides with it.
	s.MinOn = 4
	return ComposedConfig{
		SLA:                s,
		InteractiveRelSec:  180, // below a ≈400 s batch execution
		RestartPenaltyFrac: 0.1,
		BudgetJ:            600e6,
		BudgetHorizonSec:   s.MakespanBound(),
	}
}

// ScaleTasks rescales the scenario's four task streams so their sum
// approaches total while preserving the mix's proportions (each stream
// keeps at least one task, so the study's admission/preemption/deferral
// paths all still fire). total <= 0 leaves the config untouched — the
// CLI passes 0 for "use the calibrated default".
func (c *ComposedConfig) ScaleTasks(total int) {
	if total <= 0 {
		return
	}
	base := c.SLA.BatchTasks + c.SLA.DeadlineTasks + c.SLA.HopelessTasks + c.SLA.InteractiveTasks
	if base <= 0 {
		return
	}
	scale := float64(total) / float64(base)
	grow := func(n int) int {
		scaled := int(float64(n) * scale)
		if scaled < 1 {
			return 1
		}
		return scaled
	}
	c.SLA.BatchTasks = grow(c.SLA.BatchTasks)
	c.SLA.DeadlineTasks = grow(c.SLA.DeadlineTasks)
	c.SLA.HopelessTasks = grow(c.SLA.HopelessTasks)
	c.SLA.InteractiveTasks = grow(c.SLA.InteractiveTasks)
	// The budget stays "generous per task" and the horizon tracks the
	// longer run, so scaling exercises throughput — not starvation.
	c.BudgetJ *= scale
	c.BudgetHorizonSec = c.SLA.MakespanBound()
}

// Validate reports configuration errors.
func (c ComposedConfig) Validate() error {
	if err := c.SLA.Validate(); err != nil {
		return err
	}
	if c.InteractiveRelSec <= 0 {
		return fmt.Errorf("experiments: composed study needs a positive interactive deadline")
	}
	if c.BudgetJ <= 0 || c.BudgetHorizonSec <= 0 {
		return fmt.Errorf("experiments: composed study needs a positive budget and horizon")
	}
	return (sla.Preemption{RestartPenaltyFrac: c.RestartPenaltyFrac}).Validate()
}

// scenario returns the SLA config with the interactive deadline
// override applied — the schedule both runs replay.
func (c ComposedConfig) scenario() SLAConfig {
	s := c.SLA
	s.InteractiveRelSec = c.InteractiveRelSec
	return s
}

// ComposedRun is one configuration's outcome.
type ComposedRun struct {
	Name     string
	EnergyJ  float64
	CO2Grams float64
	Makespan float64

	EarnedUSD    float64
	ForfeitedUSD float64
	PenaltyUSD   float64
	Misses       int
	Rejected     int

	Boots       int
	Shutdowns   int
	Preemptions int
	RedoneOps   float64

	// VictimMisses counts completions that were preempted at least
	// once and still finished past their own deadline — breaches the
	// composition itself would be guilty of. The safety calculus keeps
	// this at zero.
	VictimMisses int

	// TaskShareJ sums every completed task's attributed energy share;
	// BudgetSpentJ is what the budget tracker metered. The two must
	// agree to the last charge (asserted in the study's test).
	TaskShareJ   float64
	BudgetSpentJ float64
}

// NetUSD returns earned minus contractual penalties.
func (r ComposedRun) NetUSD() float64 { return r.EarnedUSD - r.PenaltyUSD }

// Names of the compared configurations.
const (
	ComposedRunBlind = "CARBON-BLIND"
	ComposedRunFull  = "COMPOSED"
)

// ComposedResult bundles the compared configurations.
type ComposedResult struct {
	Config ComposedConfig
	Runs   []ComposedRun // fixed order: CARBON-BLIND, COMPOSED
}

// Run returns the named configuration's outcome, or false.
func (r *ComposedResult) Run(name string) (ComposedRun, bool) {
	for _, run := range r.Runs {
		if run.Name == name {
			return run, true
		}
	}
	return ComposedRun{}, false
}

// RunComposedStudy executes both configurations on the identical
// schedule, platform and grid profile.
func RunComposedStudy(cfg ComposedConfig) (*ComposedResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	scen := cfg.scenario()
	tasks, err := scen.Tasks()
	if err != nil {
		return nil, fmt.Errorf("experiments: composed workload: %w", err)
	}
	profile := scen.Profile()
	catalog := sla.DefaultCatalog()
	admission := &sla.Admission{Margin: scen.AdmissionMargin}

	out := &ComposedResult{Config: cfg}
	for _, variant := range []struct {
		name string
		full bool
	}{
		{ComposedRunBlind, false},
		{ComposedRunFull, true},
	} {
		plat := slaPlatform()
		var mods []sim.Module
		var tracker *budget.Tracker
		opts := []sim.Option{
			sim.WithExplore(),
			sim.WithSeed(scen.Seed),
			sim.WithSlotsPerNode(scen.SlotsPerNode),
		}
		if variant.full {
			tracker, err = budget.NewTracker(cfg.BudgetJ, cfg.BudgetHorizonSec)
			if err != nil {
				return nil, err
			}
			mods = []sim.Module{
				&sim.CarbonModule{Profile: profile},
				// Budget before SLA: if steering ever engages, the
				// deadline-feasibility screen below wraps the steered
				// ranking instead of being replaced by it.
				&budget.Module{Tracker: tracker, Steer: true, Base: core.PrefNone},
				&sim.SLAModule{
					Config: &sla.Config{
						Catalog: catalog, Admission: admission,
						Order: sched.NewOrder(sched.EDF), UrgentBypass: true,
					},
					WrapDeadline: true,
				},
				&sim.PreemptModule{Preemption: &sla.Preemption{RestartPenaltyFrac: cfg.RestartPenaltyFrac}},
				&consolidation.Module{Controller: &consolidation.CarbonController{
					Profile:          profile,
					CleanG:           scen.CleanG,
					DirtyG:           scen.DirtyG,
					IdleTimeout:      scen.IdleTimeout,
					MinOn:            scen.MinOn,
					MaxDeferSec:      scen.MaxDeferSec,
					DeadlineSlackSec: scen.DeadlineSlackSec,
					PreemptBatch:     true,
				}},
			}
			if cfg.Trace != nil {
				mods = append(mods, &sim.TraceModule{W: cfg.Trace})
			}
			opts = append(opts,
				sim.WithPolicy(sched.New(sched.Carbon)),
				sim.WithTick(scen.TickSec),
				// Longer than any boot transient (and off the 300 s tick
				// grid): when a candidacy window opens and dark capacity
				// boots, the deferred batch's next retry wave lands after
				// every boot completes, so it spreads across all warm
				// nodes instead of clumping onto whichever booted first.
				sim.WithRetryEvery(510),
			)
		} else {
			mods = []sim.Module{
				&sim.CarbonModule{Profile: profile},
				&sim.SLAModule{Config: &sla.Config{Catalog: catalog}},
			}
			opts = append(opts, sim.WithPolicy(sched.New(sched.GreenPerf)))
		}
		opts = append(opts, sim.WithModules(mods...))
		res, err := sim.Run(sim.NewScenario(plat, tasks, opts...))
		if err != nil {
			return nil, fmt.Errorf("experiments: composed %s: %w", variant.name, err)
		}
		run := ComposedRun{
			Name:        variant.name,
			EnergyJ:     float64(res.EnergyJ),
			CO2Grams:    res.CO2Grams,
			Makespan:    res.Makespan,
			Misses:      res.DeadlineMisses,
			Rejected:    res.Rejected,
			Boots:       res.Boots,
			Shutdowns:   res.Shutdowns,
			Preemptions: res.Preemptions,
			RedoneOps:   res.PreemptRedoneOps,
		}
		if res.SLA != nil {
			run.EarnedUSD = res.SLA.EarnedUSD
			run.ForfeitedUSD = res.SLA.ForfeitedUSD
			run.PenaltyUSD = res.SLA.PenaltyUSD
		}
		for _, rec := range res.Records {
			run.TaskShareJ += rec.EnergyShareJ
			if rec.Preemptions > 0 && rec.Deadline > 0 && rec.Finish > rec.Deadline {
				run.VictimMisses++
			}
		}
		if tracker != nil {
			run.BudgetSpentJ = tracker.Spent()
		}
		out.Runs = append(out.Runs, run)
	}
	return out, nil
}

// Table renders the comparison.
func (r *ComposedResult) Table() *report.Table {
	t := &report.Table{
		Title: fmt.Sprintf("Composed module stack: %d batch + %d deadline (+%d hopeless) + %d interactive (%.0f s deadline) from %02.0f:00",
			r.Config.SLA.BatchTasks, r.Config.SLA.DeadlineTasks, r.Config.SLA.HopelessTasks,
			r.Config.SLA.InteractiveTasks, r.Config.InteractiveRelSec, r.Config.SLA.StartHour),
		Headers: []string{"Configuration", "Net ($)", "Late", "Rejected", "Preempts",
			"Victim misses", "Energy (MJ)", "CO2 (g)", "Budget (MJ)", "Makespan (h)"},
	}
	for _, run := range r.Runs {
		budgetCell := "-"
		if run.BudgetSpentJ > 0 {
			budgetCell = fmt.Sprintf("%.2f", run.BudgetSpentJ/1e6)
		}
		t.AddRow(run.Name,
			fmt.Sprintf("%.2f", run.NetUSD()),
			fmt.Sprintf("%d", run.Misses),
			fmt.Sprintf("%d", run.Rejected),
			fmt.Sprintf("%d", run.Preemptions),
			fmt.Sprintf("%d", run.VictimMisses),
			fmt.Sprintf("%.2f", run.EnergyJ/1e6),
			fmt.Sprintf("%.0f", run.CO2Grams),
			budgetCell,
			fmt.Sprintf("%.1f", run.Makespan/3600),
		)
	}
	return t
}

// Render writes the table plus the composition's headline invariants.
func (r *ComposedResult) Render(w io.Writer) error {
	if err := r.Table().Render(w); err != nil {
		return err
	}
	blind, ok1 := r.Run(ComposedRunBlind)
	full, ok2 := r.Run(ComposedRunFull)
	if !ok1 || !ok2 {
		return nil
	}
	fmt.Fprintf(w, "\n%s stacks carbon + SLA + preemption + budget in one run: %.1f%% less CO2 than %s, net $%.2f vs $%.2f, %d preemptions with %d victim deadlines broken\n",
		ComposedRunFull, (1-full.CO2Grams/blind.CO2Grams)*100, ComposedRunBlind,
		full.NetUSD(), blind.NetUSD(), full.Preemptions, full.VictimMisses)
	fmt.Fprintf(w, "budget tracker metered %.2f MJ of task energy against a %.2f MJ budget (task shares sum to %.2f MJ)\n",
		full.BudgetSpentJ/1e6, r.Config.BudgetJ/1e6, full.TaskShareJ/1e6)
	return nil
}
