package experiments

import (
	"strings"
	"testing"
)

// TestSLAStudyAcceptance is the subsystem's acceptance check on the
// identical evening-mix scenario:
//
//  1. the SLA-aware run cuts the deadline-miss revenue loss of the
//     energy-only baseline at bounded extra energy, and
//  2. the SLA+carbon run respects both deadlines and candidacy
//     windows — forfeiting as little revenue while emitting far less
//     CO2 inside the declared makespan bound.
func TestSLAStudyAcceptance(t *testing.T) {
	cfg := DefaultSLAConfig()
	res, err := RunSLAStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	only, ok1 := res.Run(SLARunEnergyOnly)
	aware, ok2 := res.Run(SLARunAware)
	green, ok3 := res.Run(SLARunCarbon)
	if !ok1 || !ok2 || !ok3 {
		t.Fatalf("missing runs: %+v", res.Runs)
	}

	lossOnly := only.ForfeitedUSD + only.PenaltyUSD
	lossAware := aware.ForfeitedUSD + aware.PenaltyUSD
	lossGreen := green.ForfeitedUSD + green.PenaltyUSD

	// (1a) The revenue-loss cut is decisive, not marginal.
	if lossAware >= 0.25*lossOnly {
		t.Errorf("SLA-aware loss $%.2f not measurably below energy-only $%.2f", lossAware, lossOnly)
	}
	if aware.EarnedUSD <= 2*only.EarnedUSD {
		t.Errorf("SLA-aware earned $%.2f, not decisively above energy-only $%.2f", aware.EarnedUSD, only.EarnedUSD)
	}
	// (1b) …at bounded extra energy.
	if aware.EnergyJ > 1.10*only.EnergyJ {
		t.Errorf("SLA-aware energy %.0f J exceeds the +10%% bound over %.0f J", aware.EnergyJ, only.EnergyJ)
	}
	// (1c) Admission control refuses exactly the hopeless tasks; the
	// blind baseline burns energy running them for nothing.
	if aware.Rejected != cfg.HopelessTasks || only.Rejected != 0 {
		t.Errorf("rejections: aware %d (want %d), energy-only %d (want 0)",
			aware.Rejected, cfg.HopelessTasks, only.Rejected)
	}

	// (2a) The carbon run keeps the SLA discipline: deadline misses
	// stay at SLA-aware levels, nowhere near the blind baseline's.
	if green.Misses > aware.Misses+2 {
		t.Errorf("SLA+carbon misses %d regress well past SLA-aware %d", green.Misses, aware.Misses)
	}
	if lossGreen >= 0.25*lossOnly {
		t.Errorf("SLA+carbon loss $%.2f not measurably below energy-only $%.2f", lossGreen, lossOnly)
	}
	// (2b) …while the candidacy windows shift the batch into clean
	// hours: a decisive CO2 cut on equal completed work.
	if green.CO2Grams >= 0.5*only.CO2Grams {
		t.Errorf("SLA+carbon CO2 %.0f g not measurably below energy-only %.0f g", green.CO2Grams, only.CO2Grams)
	}
	if green.GramsPerTask >= 0.5*only.GramsPerTask {
		t.Errorf("per-task CO2 %.2f g not measurably below %.2f g", green.GramsPerTask, only.GramsPerTask)
	}
	// (2c) Deferral happened (the windows were respected, so the batch
	// waited) and stayed inside the declared bound.
	if green.Makespan <= only.Makespan {
		t.Errorf("SLA+carbon makespan %.0f s shows no deferral vs %.0f s", green.Makespan, only.Makespan)
	}
	if green.Makespan > cfg.MakespanBound() {
		t.Errorf("SLA+carbon makespan %.0f s exceeds bound %.0f s", green.Makespan, cfg.MakespanBound())
	}

	// The baseline actually hurts: without SLA machinery the backlog
	// forfeits a large share of the value at stake.
	if lossOnly < 50 {
		t.Errorf("energy-only loss $%.2f too small for a meaningful comparison", lossOnly)
	}
	// Per-class ledgers surface in the carbon run.
	if len(green.PerClass) < 3 {
		t.Errorf("per-class ledger incomplete: %+v", green.PerClass)
	}
}

func TestSLAStudyRender(t *testing.T) {
	cfg := DefaultSLAConfig()
	// Trim the scenario for render speed; the acceptance test covers
	// the full numbers.
	cfg.BatchTasks = 24
	cfg.DeadlineTasks = 6
	cfg.InteractiveTasks = 10
	cfg.HopelessTasks = 2
	res, err := RunSLAStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := res.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{SLARunEnergyOnly, SLARunAware, SLARunCarbon,
		"Earned", "Forfeited", "gCO2/task", "Per-class ledger", "interactive"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestSLAConfigValidate(t *testing.T) {
	bad := DefaultSLAConfig()
	bad.BatchTasks = 0
	if _, err := RunSLAStudy(bad); err == nil {
		t.Error("zero batch accepted")
	}
	bad = DefaultSLAConfig()
	bad.AdmissionMargin = 0.5
	if _, err := RunSLAStudy(bad); err == nil {
		t.Error("sub-1 admission margin accepted")
	}
	bad = DefaultSLAConfig()
	bad.DeadlineSlackSec = 0
	if _, err := RunSLAStudy(bad); err == nil {
		t.Error("zero slack guard accepted")
	}
	bad = DefaultSLAConfig()
	bad.AmplitudeG = bad.MeanG * 2
	if _, err := RunSLAStudy(bad); err == nil {
		t.Error("invalid diurnal model accepted")
	}
}
