package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// TestDurableStudy is the acceptance drill: a master killed mid-run
// (one request leased to a SED, one parked in a carbon window) loses
// nothing — the restarted incarnation's books are byte-equal to the
// uninterrupted control run's, the orphaned lease is redone on a
// different SED, and the journal drains to zero pending — on both
// transports.
func TestDurableStudy(t *testing.T) {
	cfg := DefaultDurableConfig()
	cfg.Dir = t.TempDir()
	res, err := RunDurableStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 2 {
		t.Fatalf("runs = %d, want 2", len(res.Runs))
	}
	wantCompleted := cfg.Interactive + 1 + cfg.Batch
	for _, transport := range []string{LiveTransportInProcess, LiveTransportTCP} {
		run, ok := res.Run(transport)
		if !ok {
			t.Fatalf("no %s run", transport)
		}
		c, i := run.Control, run.Interrupted

		// Zero lost admitted requests: the restarted master's counters
		// equal the uninterrupted run's.
		if i.Submitted != c.Submitted || i.Completed != c.Completed ||
			i.Rejected != c.Rejected || i.Failed != 0 || c.Failed != 0 {
			t.Errorf("%s: interrupted counters %+v != control %+v", transport, i, c)
		}
		if c.Completed != wantCompleted {
			t.Errorf("%s: control completed %d, want %d", transport, c.Completed, wantCompleted)
		}
		if c.Rejected != cfg.Hopeless {
			t.Errorf("%s: control rejected %d, want %d", transport, c.Rejected, cfg.Hopeless)
		}

		// Exactly-once books: dollars equal the mix-implied total in
		// both runs, hence each other, to float exactness.
		if c.SLA == nil || i.SLA == nil {
			t.Fatalf("%s: missing SLA summary", transport)
		}
		if math.Abs(c.SLA.EarnedUSD-run.ExpectedEarnedUSD) > 1e-9 {
			t.Errorf("%s: control earned $%.6f, want $%.6f", transport, c.SLA.EarnedUSD, run.ExpectedEarnedUSD)
		}
		if math.Abs(i.SLA.EarnedUSD-c.SLA.EarnedUSD) > 1e-9 {
			t.Errorf("%s: interrupted earned $%.6f != control $%.6f", transport, i.SLA.EarnedUSD, c.SLA.EarnedUSD)
		}
		wantForfeit := float64(cfg.Hopeless)
		if math.Abs(i.SLA.ForfeitedUSD-wantForfeit) > 1e-9 || math.Abs(c.SLA.ForfeitedUSD-wantForfeit) > 1e-9 {
			t.Errorf("%s: forfeited control $%.4f / interrupted $%.4f, want $%.4f",
				transport, c.SLA.ForfeitedUSD, i.SLA.ForfeitedUSD, wantForfeit)
		}
		if i.SLA.Misses != 0 || c.SLA.Misses != 0 {
			t.Errorf("%s: deadline misses on 60s deadlines (control %d, interrupted %d)",
				transport, c.SLA.Misses, i.SLA.Misses)
		}

		// Exactly-once budget: every attributed joule is metered once.
		checkBudget := func(name string, budgetJ, energyJ float64) {
			if energyJ <= 0 {
				t.Errorf("%s/%s: no attributed energy", transport, name)
			}
			if math.Abs(budgetJ-energyJ) > 1e-6*math.Max(1, energyJ) {
				t.Errorf("%s/%s: budget %.6f J != energy %.6f J", transport, name, budgetJ, energyJ)
			}
		}
		checkBudget("control", c.BudgetSpentJ, c.EnergyJ)
		checkBudget("interrupted", i.BudgetSpentJ, i.EnergyJ)

		// The crash left exactly one leased and one deferred lifecycle.
		if run.LeasedAtCrash != 1 || run.DeferredAtCrash != 1 {
			t.Errorf("%s: crash left %d leased + %d deferred, want 1 + 1",
				transport, run.LeasedAtCrash, run.DeferredAtCrash)
		}

		// Replay: both incompletes re-driven, the lease waited out, the
		// redo landed on a different SED, and nothing failed.
		st := run.Replay
		wantRebooked := cfg.Interactive + (cfg.Batch - 1) + cfg.Hopeless
		if st.Rebooked != wantRebooked {
			t.Errorf("%s: rebooked %d, want %d", transport, st.Rebooked, wantRebooked)
		}
		if st.Resubmitted != 2 || st.LeaseExpired != 1 || st.Redone != 1 || st.Failed != 0 {
			t.Errorf("%s: replay stats %+v, want 2 resubmissions, 1 lease expiry, 1 redo, 0 failures", transport, st)
		}
		if run.RedoFrom == "" || run.RedoTo == "" || run.RedoFrom == run.RedoTo {
			t.Errorf("%s: redo %q -> %q, want a different surviving SED", transport, run.RedoFrom, run.RedoTo)
		}

		// The journal drained: nothing incomplete survives the replay.
		if run.JournalStats.Pending != 0 {
			t.Errorf("%s: %d pending after replay, want 0", transport, run.JournalStats.Pending)
		}
		if run.JournalStats.Appended == 0 || run.JournalStats.BytesTotal == 0 {
			t.Errorf("%s: journal stats %+v, want appended records", transport, run.JournalStats)
		}
	}

	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Durable dispatch", "kill+restart", "redone on"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

// TestDurableConfigValidate covers the config screens.
func TestDurableConfigValidate(t *testing.T) {
	good := DefaultDurableConfig()
	good.Dir = t.TempDir()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	for name, mut := range map[string]func(*DurableConfig){
		"no interactive": func(c *DurableConfig) { c.Interactive = 0 },
		"no ops":         func(c *DurableConfig) { c.Ops = 0 },
		"clean>=dirty":   func(c *DurableConfig) { c.DirtyG = c.CleanG },
		"no lease":       func(c *DurableConfig) { c.LeaseTermSec = 0 },
		"no budget":      func(c *DurableConfig) { c.BudgetJ = 0 },
		"no dir":         func(c *DurableConfig) { c.Dir = "" },
	} {
		bad := good
		mut(&bad)
		if err := bad.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
