package experiments

import (
	"fmt"
	"io"

	"greensched/internal/cluster"
	"greensched/internal/provision"
	"greensched/internal/report"
	"greensched/internal/sched"
	"greensched/internal/sim"
)

// AdaptiveConfig parameterizes the §IV-C reactivity experiment
// (Figure 9): 260 minutes on the Table I platform, a client tracking
// the capacity of the candidate pool, and four injected events.
type AdaptiveConfig struct {
	TaskOps float64
	Seed    int64
	// HorizonMin is the experiment length in minutes (paper: 260).
	HorizonMin float64
}

// DefaultAdaptiveConfig returns the calibrated §IV-C setup.
func DefaultAdaptiveConfig() AdaptiveConfig {
	return AdaptiveConfig{TaskOps: 1.8e12, Seed: 1, HorizonMin: 260}
}

// PaperEventTimeline builds the §IV-C provisioning plan:
//
//   - start: regular time (cost 1.0), in-range temperature
//   - Event 1 (scheduled):  cost 0.8 at t+60 min
//   - Event 2 (scheduled):  cost 0.5 at t+120 min
//   - Event 3 (unexpected): temperature rise just before t+160 min
//   - Event 4 (unexpected): temperature back in range before t+240 min
func PaperEventTimeline() *provision.Store {
	store := provision.NewStore()
	store.Put(provision.Record{Value: 0, Cost: 1.0, Temperature: 23})
	store.Put(provision.Record{Value: 60 * 60, Cost: 0.8, Temperature: 23})
	store.Put(provision.Record{Value: 120 * 60, Cost: 0.5, Temperature: 23})
	store.Put(provision.Record{Value: 160*60 - 50, Cost: 0.5, Temperature: 27, Unexpected: true})
	store.Put(provision.Record{Value: 240*60 - 50, Cost: 0.5, Temperature: 22, Unexpected: true})
	return store
}

// PaperPlanner builds the §IV-C planner: 12 nodes, 10-minute checks,
// 20-minute lookahead, progressive ramps, 2-node floor during heat
// events, starting from the regular-time pool of 4.
func PaperPlanner() *provision.Planner {
	p := provision.NewPlanner(12, 4)
	p.MinNodes = 2
	return p
}

// RunAdaptive executes the Figure 9 scenario.
func RunAdaptive(cfg AdaptiveConfig) (*sim.AdaptiveResult, error) {
	if cfg.HorizonMin <= 0 {
		cfg.HorizonMin = 260
	}
	return sim.RunAdaptive(sim.AdaptiveConfig{
		Platform: cluster.PaperPlatform(),
		Planner:  PaperPlanner(),
		Store:    PaperEventTimeline(),
		Policy:   sched.New(sched.GreenPerf),
		TaskOps:  cfg.TaskOps,
		Horizon:  cfg.HorizonMin * 60,
		Seed:     cfg.Seed,
	})
}

// Figure9 renders the candidates/power evolution.
func Figure9(res *sim.AdaptiveResult) *report.TimeSeries {
	ts := &report.TimeSeries{Title: "Figure 9. Evolution of candidate nodes and power consumption"}
	for _, s := range res.Samples {
		ts.Add(s.T, float64(s.Candidates), s.AvgW)
	}
	return ts
}

// Figure8 renders the provisioning-plan XML sample corresponding to
// the §IV-C timeline at a given timestamp.
func Figure8(store *provision.Store, at int64) (string, error) {
	rec, ok := store.At(at)
	if !ok {
		return "", fmt.Errorf("experiments: no plan record at %d", at)
	}
	plan := &provision.Plan{Records: []provision.Record{rec}}
	data, err := plan.MarshalIndent()
	if err != nil {
		return "", err
	}
	return string(data), nil
}

// RenderAdaptive runs the scenario and writes Figure 8 (plan sample)
// and Figure 9 (time series) plus the reactivity summary.
func RenderAdaptive(cfg AdaptiveConfig, w io.Writer) error {
	store := PaperEventTimeline()
	sample, err := Figure8(store, 60*60)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Figure 8. Sample of the server status (provisioning plan record):\n%s\n\n", sample)
	res, err := RunAdaptive(cfg)
	if err != nil {
		return err
	}
	if err := Figure9(res).Render(w); err != nil {
		return err
	}
	_, err = fmt.Fprintf(w,
		"\ncompleted=%d tasks  energy=%.0f J  boots=%d  mean drain lag=%.0f s\n",
		res.Completed, res.EnergyJ, res.Boots, res.DrainLagS)
	return err
}
