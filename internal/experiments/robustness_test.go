package experiments

import (
	"testing"

	"greensched/internal/sched"
)

// The §IV-A conclusions must be robust to realistic measurement and
// platform faults: the dynamic estimator consumes noisy, lossy
// wattmeter data, and nodes can die mid-run. These tests re-run the
// placement comparison under injected faults and assert the paper's
// orderings survive.

func TestPlacementRobustToMeterFaults(t *testing.T) {
	cfg := DefaultPlacementConfig()
	cfg.ReqsPerCore = 5 // keep the fault sweep quick
	cfg.MeterNoise = 20 // ±20 W on readings in the 100-500 W range
	res, err := RunPlacement(cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertPaperOrdering(t, res, "meter noise")

	cfg = DefaultPlacementConfig()
	cfg.ReqsPerCore = 5
	// 30% of samples lost: the estimator sees a sparse trace.
	cfg.MeterDropout = 0.3
	noisy, err := RunPlacement(cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertPaperOrdering(t, noisy, "meter dropout")
}

func assertPaperOrdering(t *testing.T, r *PlacementResult, label string) {
	t.Helper()
	pw := r.Runs[sched.Power]
	pf := r.Runs[sched.Performance]
	rd := r.Runs[sched.Random]
	if !(pw.EnergyJ < rd.EnergyJ) {
		t.Errorf("%s: POWER energy %.0f not below RANDOM %.0f", label, pw.EnergyJ, rd.EnergyJ)
	}
	if !(pw.EnergyJ < pf.EnergyJ) {
		t.Errorf("%s: POWER energy %.0f not below PERFORMANCE %.0f", label, pw.EnergyJ, pf.EnergyJ)
	}
	if !(pf.Makespan <= pw.Makespan*1.02) {
		t.Errorf("%s: PERFORMANCE makespan %.0f not fastest (POWER %.0f)", label, pf.Makespan, pw.Makespan)
	}
	// Placement shapes survive.
	if pw.PerClusterTasks["taurus"] <= pw.PerClusterTasks["orion"] {
		t.Errorf("%s: POWER no longer taurus-dominant: %v", label, pw.PerClusterTasks)
	}
	if pf.PerClusterTasks["orion"] <= pf.PerClusterTasks["taurus"] {
		t.Errorf("%s: PERFORMANCE no longer orion-dominant: %v", label, pf.PerClusterTasks)
	}
}

func TestPlacementSeedStability(t *testing.T) {
	// The headline ratios must not be a single-seed fluke: across
	// seeds, POWER always beats RANDOM by ≥15% and PERFORMANCE by
	// ≥8%.
	for _, seed := range []int64{2, 3} {
		cfg := DefaultPlacementConfig()
		cfg.ReqsPerCore = 5
		cfg.Seed = seed
		res, err := RunPlacement(cfg)
		if err != nil {
			t.Fatal(err)
		}
		gainRandom, gainPerf, _ := res.Headline()
		if gainRandom < 0.15 {
			t.Errorf("seed %d: gain vs RANDOM = %.1f%%", seed, gainRandom*100)
		}
		if gainPerf < 0.08 {
			t.Errorf("seed %d: gain vs PERFORMANCE = %.1f%%", seed, gainPerf*100)
		}
	}
}
