package experiments

import (
	"fmt"
	"io"

	"greensched/internal/cluster"
	"greensched/internal/report"
	"greensched/internal/sched"
	"greensched/internal/sim"
	"greensched/internal/stats"
	"greensched/internal/workload"
)

// MetricConfig parameterizes the §IV-B GreenPerf evaluation: a
// simulation seeded from an initial benchmark of the nodes, where
// "each server is limited to the computation of one task" and two
// clients submit requests. The experiment compares the placements of
// POWER (G), GreenPerf (GP) and PERFORMANCE (P) against the envelope
// of repeated RANDOM runs, on a low-heterogeneity platform (Figure 6,
// two server types) and a high-heterogeneity one (Figure 7, four
// types).
type MetricConfig struct {
	TasksPerClient int     // requests each of the two clients submits
	ClientRate     float64 // per-client submission rate (req/s)
	TaskOps        float64 // flops per task
	RandomRuns     int     // RANDOM repetitions for the shaded area
	Seed           int64
}

// DefaultMetricConfig returns the calibrated §IV-B setup.
func DefaultMetricConfig() MetricConfig {
	return MetricConfig{
		TasksPerClient: 60,
		ClientRate:     0.025,
		TaskOps:        9.0e11,
		RandomRuns:     20,
		Seed:           1,
	}
}

// MetricPoint is one labelled figure coordinate.
type MetricPoint struct {
	Label    string // "G", "GP" or "P"
	Policy   string
	Makespan float64
	EnergyJ  float64
}

// MetricResult holds one figure's data.
type MetricResult struct {
	Platform *cluster.Platform
	Points   []MetricPoint
	Random   stats.Envelope // min/max area over the RANDOM runs
}

// RunMetricStudy executes the §IV-B simulation on the given platform
// (use cluster.LowHeterogeneityPlatform for Figure 6 and
// cluster.HighHeterogeneityPlatform for Figure 7).
func RunMetricStudy(cfg MetricConfig, platform *cluster.Platform) (*MetricResult, error) {
	if cfg.TasksPerClient <= 0 || cfg.ClientRate <= 0 || cfg.TaskOps <= 0 {
		return nil, fmt.Errorf("experiments: metric study needs positive tasks, rate and ops")
	}
	if cfg.RandomRuns <= 0 {
		cfg.RandomRuns = 10
	}
	// Two clients submitting the same stream shape (§IV-B: "2 clients
	// submitting requests").
	mkTasks := func() ([]workload.Task, error) {
		c1, err := workload.BurstThenRate{
			Total: cfg.TasksPerClient, Burst: 1, Rate: cfg.ClientRate, Ops: cfg.TaskOps,
		}.Tasks()
		if err != nil {
			return nil, err
		}
		c2, err := workload.BurstThenRate{
			Total: cfg.TasksPerClient, Burst: 1, Rate: cfg.ClientRate, Ops: cfg.TaskOps,
		}.Tasks()
		if err != nil {
			return nil, err
		}
		return workload.Merge(c1, c2), nil
	}
	tasks, err := mkTasks()
	if err != nil {
		return nil, err
	}

	run := func(policy sched.Policy, seed int64) (*sim.Result, error) {
		return sim.Run(sim.Config{
			Platform:     platform,
			Policy:       policy,
			Tasks:        tasks,
			SlotsPerNode: 1,    // §IV-B: one task per server
			Static:       true, // seeded from the initial benchmark
			Seed:         seed,
		})
	}

	out := &MetricResult{Platform: platform}
	for _, p := range []struct {
		label string
		kind  sched.Kind
	}{
		{"G", sched.Power},
		{"GP", sched.GreenPerf},
		{"P", sched.Performance},
	} {
		res, err := run(sched.New(p.kind), cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("experiments: metric study %s: %w", p.kind, err)
		}
		out.Points = append(out.Points, MetricPoint{
			Label:    p.label,
			Policy:   string(p.kind),
			Makespan: res.Makespan,
			EnergyJ:  res.EnergyJ,
		})
	}

	xs := make([]float64, 0, cfg.RandomRuns)
	ys := make([]float64, 0, cfg.RandomRuns)
	for i := 0; i < cfg.RandomRuns; i++ {
		res, err := run(sched.New(sched.Random), cfg.Seed+int64(i)*7919)
		if err != nil {
			return nil, fmt.Errorf("experiments: metric study RANDOM run %d: %w", i, err)
		}
		xs = append(xs, res.Makespan)
		ys = append(ys, res.EnergyJ)
	}
	env, err := stats.EnvelopeOf(xs, ys)
	if err != nil {
		return nil, err
	}
	out.Random = env
	return out, nil
}

// Point returns the labelled point ("G", "GP", "P"), or nil.
func (r *MetricResult) Point(label string) *MetricPoint {
	for i := range r.Points {
		if r.Points[i].Label == label {
			return &r.Points[i]
		}
	}
	return nil
}

// TradeoffQuality quantifies Figure 7's claim that GP is "a better
// tradeoff between POWER and PERFORMANCE": it returns GP's normalized
// distance from the ideal corner (min makespan of G/GP/P, min energy
// of G/GP/P) relative to the G–P spread; smaller is better.
func (r *MetricResult) TradeoffQuality() float64 {
	g, gp, p := r.Point("G"), r.Point("GP"), r.Point("P")
	if g == nil || gp == nil || p == nil {
		return 1
	}
	minT := min3(g.Makespan, gp.Makespan, p.Makespan)
	maxT := max3(g.Makespan, gp.Makespan, p.Makespan)
	minE := min3(g.EnergyJ, gp.EnergyJ, p.EnergyJ)
	maxE := max3(g.EnergyJ, gp.EnergyJ, p.EnergyJ)
	dt, de := 0.0, 0.0
	if maxT > minT {
		dt = (gp.Makespan - minT) / (maxT - minT)
	}
	if maxE > minE {
		de = (gp.EnergyJ - minE) / (maxE - minE)
	}
	// Euclidean-ish combination normalized to [0, 1].
	return (dt + de) / 2
}

// Figure renders the Figure 6/7 scatter.
func (r *MetricResult) Figure(title string) *report.Scatter {
	s := &report.Scatter{Title: title, XLabel: "makespan (s)", YLabel: "energy (J)"}
	for _, p := range r.Points {
		s.Add(p.Label, p.Makespan, p.EnergyJ)
	}
	s.SetBand(r.Random.MinX, r.Random.MaxX, r.Random.MinY, r.Random.MaxY)
	return s
}

// Table3 renders the simulated-cluster consumption table.
func Table3() *report.Table {
	t := &report.Table{
		Title:   "Table III. Energy consumption of simulated clusters",
		Headers: []string{"Cluster", "Idle consumption (W)", "Peak consumption (W)"},
	}
	for _, typ := range []string{"sim1", "sim2"} {
		spec, _ := cluster.Spec(typ)
		t.AddRow(typ, fmt.Sprintf("%.0f", spec.IdleW), fmt.Sprintf("%.0f", spec.PeakW))
	}
	return t
}

// RenderMetricStudy runs both heterogeneity scenarios and writes
// Figures 6 and 7 plus Table III.
func RenderMetricStudy(cfg MetricConfig, w io.Writer) error {
	low, err := RunMetricStudy(cfg, cluster.LowHeterogeneityPlatform())
	if err != nil {
		return err
	}
	if err := low.Figure("Figure 6. Comparison of metrics, 2 server types, 2 clients").Render(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "platform heterogeneity index: %.2f — GP tradeoff quality (0 best, 1 worst): %.2f\n\n",
		low.Platform.HeterogeneityIndex(), low.TradeoffQuality())
	high, err := RunMetricStudy(cfg, cluster.HighHeterogeneityPlatform())
	if err != nil {
		return err
	}
	if err := high.Figure("Figure 7. Comparison of metrics, 4 server types, 2 clients").Render(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "platform heterogeneity index: %.2f — GP tradeoff quality (0 best, 1 worst): %.2f\n\n",
		high.Platform.HeterogeneityIndex(), high.TradeoffQuality())
	return Table3().Render(w)
}

func min3(a, b, c float64) float64 {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

func max3(a, b, c float64) float64 {
	if b > a {
		a = b
	}
	if c > a {
		a = c
	}
	return a
}
