package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"greensched/internal/budget"
	"greensched/internal/carbon"
	"greensched/internal/journal"
	"greensched/internal/middleware"
	"greensched/internal/obs"
	"greensched/internal/power"
	"greensched/internal/powerd"
	"greensched/internal/report"
	"greensched/internal/sched"
	"greensched/internal/sla"
)

// The live composed study is the proof that the middleware.Interceptor
// stack gives the LIVE hierarchy the same composable machinery the
// sim.Module stack gave the simulator: SLA admission + a real-dollar
// ledger, carbon-window deferral of deferrable requests, and budget
// metering, all mounted on one Master — and behaving the same whether
// the SEDs are in-process or behind the TCP/gob transport. It runs on
// the wall clock with deliberately tiny durations (sub-second grid
// windows, millisecond solves) so it doubles as a CI smoke test.

// Transport names of the compared deployments.
const (
	LiveTransportInProcess = "IN-PROCESS"
	LiveTransportTCP       = "TCP"
)

// transportLabel maps a transport name to its metric label value.
func transportLabel(transport string) string {
	if transport == LiveTransportTCP {
		return "tcp"
	}
	return "in-process"
}

// Live SLA class names (the catalog is deployment-specific: real
// wall-clock deadlines, not the simulator's hour-scale ones).
const (
	LiveClassInteractive = "interactive"
	LiveClassBatch       = "batch"
	LiveClassHopeless    = "hopeless"
)

// LiveComposedConfig parameterizes the live composition study.
type LiveComposedConfig struct {
	// Request mix: Warmup best-effort requests measure the SEDs,
	// Interactive carry a 60 s deadline at $2, Batch are deferrable at
	// $0.05, Hopeless carry a deadline no node can meet (admission
	// must reject every one).
	Warmup      int
	Interactive int
	Batch       int
	Hopeless    int

	// Ops per request; the SEDs "compute" by sleeping Ops/flops.
	Ops float64
	// LeanFlops/HungryFlops and the watt figures describe the two
	// SEDs (the hungry node is faster and thirstier).
	LeanFlops   float64
	HungryFlops float64
	LeanWatts   float64
	HungryWatts float64

	// The grid: dirty (DirtyG) for DirtyWindowSec after the start,
	// clean (CleanG) afterwards. Deferrable work waits out the dirty
	// window, bounded by MaxDeferSec.
	CleanG         float64
	DirtyG         float64
	DirtyWindowSec float64
	MaxDeferSec    float64
	PollSec        float64

	// BudgetJ over BudgetHorizonSec is generous by default: the study
	// asserts exact metering, not starvation.
	BudgetJ          float64
	BudgetHorizonSec float64

	// Concurrency, when positive, bounds each master's in-flight
	// admissions (middleware.WithConcurrency): client fan-out beyond it
	// queues at the semaphore instead of stampeding the election path.
	// Zero means unbounded — the pre-PR-8 behaviour.
	Concurrency int

	// Registry, when set, receives fleet telemetry: each transport's
	// master mounts an ObsInterceptor FIRST in its stack, publishing
	// into this shared registry under a transport label
	// ({transport="in-process"} / {transport="tcp"}), so one /metrics
	// endpoint covers the whole study.
	Registry *obs.Registry
	// TraceW, when set, receives both masters' lifecycle events (and
	// the carbon interceptor's defer events) as one JSONL stream.
	TraceW io.Writer
	// SpanW, when set, turns on distributed tracing: both masters (and,
	// on the TCP transport, the remotes and the SED daemons themselves)
	// emit their request span trees into one JSONL stream — the input
	// to obs.AnalyzeSpans / `greensched spans`.
	SpanW io.Writer
	// JournalPath, when set, mounts a crash-safe dispatch journal
	// (internal/journal) under each master: the in-process run appends
	// to JournalPath+".in-process.wal" and the TCP run to
	// JournalPath+".tcp.wal". Inspect either file afterwards with
	// `greensched journal FILE`; with Registry also set, the
	// greensched_journal_* metrics appear on /metrics.
	JournalPath string

	// PowerAddr, when set, routes every power reading through an
	// external powerd sidecar at this address ("unix:/path" or
	// "host:port"): the SEDs mount ExternalPowerInterceptor instead of
	// a local meter, the master attributes from sidecar readings, and
	// with Registry set the greensched_power_* families appear on
	// /metrics. The client falls back to the config's static watt
	// figures if the sidecar is unreachable, so a dead sidecar slows
	// nothing down — it just shows up in the fallback counters.
	PowerAddr string
}

// DefaultLiveComposedConfig returns the calibrated sub-second
// scenario.
func DefaultLiveComposedConfig() LiveComposedConfig {
	return LiveComposedConfig{
		Warmup:      4,
		Interactive: 4,
		Batch:       4,
		Hopeless:    1,
		Ops:         4e6,
		LeanFlops:   1e9,
		HungryFlops: 4e9,
		LeanWatts:   80,
		HungryWatts: 320,
		CleanG:      60,
		DirtyG:      600,
		// The dirty window is long enough that batch submitted at
		// start provably waits, short enough to keep the study fast.
		DirtyWindowSec:   0.4,
		MaxDeferSec:      10,
		PollSec:          0.02,
		BudgetJ:          1e6,
		BudgetHorizonSec: 60,
	}
}

// ScaleTasks rescales the live request mix so Warmup + Interactive +
// Batch + Hopeless approaches total while preserving proportions (each
// stream keeps at least one request, so warmup measurement, the express
// lane, deferral and admission-reject all still fire). total <= 0
// leaves the config untouched.
func (c *LiveComposedConfig) ScaleTasks(total int) {
	if total <= 0 {
		return
	}
	base := c.Warmup + c.Interactive + c.Batch + c.Hopeless
	if base <= 0 {
		return
	}
	scale := float64(total) / float64(base)
	grow := func(n int) int {
		scaled := int(float64(n) * scale)
		if scaled < 1 {
			return 1
		}
		return scaled
	}
	c.Warmup = grow(c.Warmup)
	c.Interactive = grow(c.Interactive)
	c.Batch = grow(c.Batch)
	c.Hopeless = grow(c.Hopeless)
	c.BudgetJ *= scale
}

// Validate reports configuration errors.
func (c LiveComposedConfig) Validate() error {
	switch {
	case c.Interactive <= 0 || c.Batch <= 0 || c.Hopeless <= 0:
		return fmt.Errorf("experiments: live study needs interactive, batch and hopeless requests")
	case c.Warmup < 0:
		return fmt.Errorf("experiments: negative warmup")
	case c.Ops <= 0 || c.LeanFlops <= 0 || c.HungryFlops <= 0:
		return fmt.Errorf("experiments: live study needs positive ops and flops")
	case c.DirtyG <= c.CleanG || c.CleanG < 0:
		return fmt.Errorf("experiments: dirty intensity %v must exceed clean %v", c.DirtyG, c.CleanG)
	case c.DirtyWindowSec <= 0 || c.MaxDeferSec <= c.DirtyWindowSec:
		return fmt.Errorf("experiments: MaxDeferSec %v must exceed the dirty window %v", c.MaxDeferSec, c.DirtyWindowSec)
	case c.BudgetJ <= 0 || c.BudgetHorizonSec <= 0:
		return fmt.Errorf("experiments: live study needs a positive budget and horizon")
	case c.Concurrency < 0:
		return fmt.Errorf("experiments: negative concurrency %d", c.Concurrency)
	}
	return nil
}

// liveCatalog returns the wall-clock SLA catalog: the hopeless class
// deadline sits far below the best-case execution time, so admission
// rejects it deterministically.
func (c LiveComposedConfig) liveCatalog() sla.Catalog {
	bestExec := c.Ops / c.HungryFlops
	return sla.Catalog{
		LiveClassInteractive: {
			Name: LiveClassInteractive, RelDeadlineSec: 60, ValueUSD: 2, Curve: sla.HardDrop{},
		},
		LiveClassBatch: {
			Name: LiveClassBatch, ValueUSD: 0.05, Curve: sla.Flat{},
		},
		LiveClassHopeless: {
			Name: LiveClassHopeless, RelDeadlineSec: bestExec / 100, ValueUSD: 1, Curve: sla.HardDrop{},
		},
	}
}

// ExpectedEarnedUSD is the dollar total the ledger must show when
// every admitted request completes on time.
func (c LiveComposedConfig) ExpectedEarnedUSD() float64 {
	return 2*float64(c.Interactive) + 0.05*float64(c.Batch)
}

// liveStepSignal is the study's grid: dirty until dirtyUntil (on the
// master clock), clean afterwards. The study anchors the window right
// before it submits the deferrable batch — the submissions land while
// the grid is provably dirty no matter how long the warmup phase took
// on a loaded machine.
type liveStepSignal struct {
	mu         sync.Mutex
	dirtyUntil float64
	dirtyG     float64
	cleanG     float64
}

// dirtyAt reports whether t falls inside the dirty window.
func (s *liveStepSignal) dirtyAt(t float64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return t < s.dirtyUntil
}

// anchor opens a dirty window ending at t.
func (s *liveStepSignal) anchor(t float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dirtyUntil = t
}

// Name implements carbon.Signal.
func (s *liveStepSignal) Name() string { return "live-step" }

// IntensityAt implements carbon.Signal.
func (s *liveStepSignal) IntensityAt(t float64) float64 {
	if s.dirtyAt(t) {
		return s.dirtyG
	}
	return s.cleanG
}

// RenewableAt implements carbon.Signal.
func (s *liveStepSignal) RenewableAt(t float64) float64 {
	if s.dirtyAt(t) {
		return 0.1
	}
	return 0.8
}

// MeanIntensity implements carbon.Signal exactly for the single step.
func (s *liveStepSignal) MeanIntensity(t0, t1 float64) float64 {
	if t1 <= t0 {
		return s.IntensityAt(t0)
	}
	s.mu.Lock()
	edge := s.dirtyUntil
	s.mu.Unlock()
	if t1 <= edge {
		return s.dirtyG
	}
	if t0 >= edge {
		return s.cleanG
	}
	return (s.dirtyG*(edge-t0) + s.cleanG*(t1-edge)) / (t1 - t0)
}

// LiveComposedRun is one transport's outcome.
type LiveComposedRun struct {
	Transport string
	// Result is the master's finalized counters and the summaries the
	// interceptor stack published.
	Result middleware.LiveResult
	// ExpectedEarnedUSD is the dollar total implied by the request mix.
	ExpectedEarnedUSD float64
	// PowerStats is the sidecar client's counter snapshot when
	// Config.PowerAddr routed power through a powerd sidecar.
	PowerStats *powerd.Stats
}

// LiveComposedResult bundles the compared transports.
type LiveComposedResult struct {
	Config LiveComposedConfig
	Runs   []LiveComposedRun // fixed order: IN-PROCESS, TCP
}

// Run returns the named transport's outcome, or false.
func (r *LiveComposedResult) Run(transport string) (LiveComposedRun, bool) {
	for _, run := range r.Runs {
		if run.Transport == transport {
			return run, true
		}
	}
	return LiveComposedRun{}, false
}

// RunLiveComposedStudy executes the composed live scenario over both
// transports.
func RunLiveComposedStudy(cfg LiveComposedConfig) (*LiveComposedResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	out := &LiveComposedResult{Config: cfg}
	for _, transport := range []string{LiveTransportInProcess, LiveTransportTCP} {
		run, err := runLiveComposed(cfg, transport)
		if err != nil {
			return nil, fmt.Errorf("experiments: live composed %s: %w", transport, err)
		}
		out.Runs = append(out.Runs, run)
	}
	return out, nil
}

// liveSED builds one metered, carbon-tagged SED whose service sleeps
// ops/flops. With a power source set, the SED reads the external
// sidecar instead of a local constant-watt meter.
func liveSED(name string, flops, watts float64, sig carbon.Signal, spans *obs.SpanWriter, src power.Source) (*middleware.SED, error) {
	meter := middleware.Interceptor(&middleware.MeterInterceptor{
		Meter: func() (float64, bool) { return watts, true },
	})
	if src != nil {
		meter = &middleware.ExternalPowerInterceptor{Source: src}
	}
	sed, err := middleware.NewSED(middleware.SEDConfig{
		Name:  name,
		Slots: 2,
		Spans: spans,
		Interceptors: []middleware.Interceptor{
			meter,
			&middleware.CarbonInterceptor{Signal: sig},
		},
	})
	if err != nil {
		return nil, err
	}
	if err := sed.Register(middleware.Service{
		Name:  "compute",
		Solve: sleepSolve(flops),
	}); err != nil {
		return nil, err
	}
	return sed, nil
}

// runLiveComposed runs the scenario on one transport.
func runLiveComposed(cfg LiveComposedConfig, transport string) (LiveComposedRun, error) {
	sig := &liveStepSignal{dirtyG: cfg.DirtyG, cleanG: cfg.CleanG}
	// One span writer serves every emitter (runs are sequential and the
	// writer itself is concurrency-safe), so master, transport and SED
	// spans stitch in one stream.
	var spans *obs.SpanWriter
	if cfg.SpanW != nil {
		spans = obs.NewSpanWriter(cfg.SpanW)
	}
	// Optional external power: one sidecar client per transport run,
	// falling back to the config's static watt figures when the
	// sidecar is unreachable.
	var powerCli *powerd.Client
	if cfg.PowerAddr != "" {
		var err error
		powerCli, err = powerd.NewClient(powerd.Config{
			Addr:     cfg.PowerAddr,
			Fallback: power.StaticSource{"lean": cfg.LeanWatts, "hungry": cfg.HungryWatts},
		})
		if err != nil {
			return LiveComposedRun{}, err
		}
		defer powerCli.Close()
	}
	var powerSrc power.Source
	if powerCli != nil {
		powerSrc = powerCli
	}
	lean, err := liveSED("lean", cfg.LeanFlops, cfg.LeanWatts, sig, spans, powerSrc)
	if err != nil {
		return LiveComposedRun{}, err
	}
	hungry, err := liveSED("hungry", cfg.HungryFlops, cfg.HungryWatts, sig, spans, powerSrc)
	if err != nil {
		return LiveComposedRun{}, err
	}

	tracker, err := budget.NewTracker(cfg.BudgetJ, cfg.BudgetHorizonSec)
	if err != nil {
		return LiveComposedRun{}, err
	}
	// Optional fleet telemetry: both runs execute sequentially, so two
	// tracers over one writer never interleave a line.
	var tracer *obs.Tracer
	if cfg.TraceW != nil {
		tracer = obs.NewTracer(cfg.TraceW)
	}
	// Stack order: observability first (it must see every submission
	// before admission can refuse it, and reverse-order Finalize then
	// runs it last, over the totals the whole stack published), the SLA
	// layer next (resolve terms, admit or reject before anything is
	// parked — and its resolved deadlines keep urgent traffic out of
	// the green window below), then the carbon window, then budget
	// metering. Finalize runs in reverse, so the ledger summary divides
	// by the grams and joules the later interceptors published.
	ics := []middleware.Interceptor{
		&middleware.SLAInterceptor{
			Config: &sla.Config{
				Catalog:   cfg.liveCatalog(),
				Admission: &sla.Admission{Margin: 1},
			},
			BestFlops: cfg.HungryFlops,
		},
		&middleware.CarbonInterceptor{
			Signal:      sig,
			DirtyG:      (cfg.CleanG + cfg.DirtyG) / 2,
			MaxDeferSec: cfg.MaxDeferSec, PollSec: cfg.PollSec,
			Tracer: tracer,
		},
		&middleware.BudgetInterceptor{Tracker: tracker},
	}
	if powerCli != nil {
		ics = append(ics, &middleware.ExternalPowerInterceptor{
			Source:   powerCli,
			Registry: cfg.Registry,
			Labels:   map[string]string{"transport": transportLabel(transport)},
		})
	}
	if cfg.Registry != nil || tracer != nil {
		ics = append([]middleware.Interceptor{&middleware.ObsInterceptor{
			Registry: cfg.Registry,
			Tracer:   tracer,
			Labels:   map[string]string{"transport": transportLabel(transport)},
		}}, ics...)
	}

	opts := []middleware.Option{
		middleware.WithName("live-" + transport),
		middleware.WithPolicy(sched.New(sched.GreenPerf)),
		middleware.WithInterceptors(ics...),
	}
	if spans != nil {
		opts = append(opts, middleware.WithSpans(spans))
	}
	if cfg.Concurrency > 0 {
		opts = append(opts, middleware.WithConcurrency(cfg.Concurrency))
	}
	var cleanup []func() error
	defer func() {
		for _, fn := range cleanup {
			fn()
		}
	}()
	if cfg.JournalPath != "" {
		jrn, err := journal.Open(cfg.JournalPath+"."+transportLabel(transport)+".wal", journal.Options{})
		if err != nil {
			return LiveComposedRun{}, err
		}
		cleanup = append(cleanup, jrn.Close)
		opts = append(opts, middleware.WithJournal(jrn))
	}
	switch transport {
	case LiveTransportInProcess:
		opts = append(opts, middleware.WithSEDs(lean, hungry))
	case LiveTransportTCP:
		for _, sed := range []*middleware.SED{lean, hungry} {
			ep, err := middleware.Serve("127.0.0.1:0", sed, sed)
			if err != nil {
				return LiveComposedRun{}, err
			}
			cleanup = append(cleanup, ep.Close)
			rem := middleware.Dial(sed.Name(), ep.Addr())
			rem.SetSpans(spans)
			cleanup = append(cleanup, rem.Close)
			opts = append(opts, middleware.WithRemotes(rem))
		}
	default:
		return LiveComposedRun{}, fmt.Errorf("unknown transport %q", transport)
	}

	master, err := middleware.NewMaster(opts...)
	if err != nil {
		return LiveComposedRun{}, err
	}
	ctx := context.Background()

	// Learning phase: best-effort warmups measure the SEDs.
	for i := 0; i < cfg.Warmup; i++ {
		if _, err := master.Do(ctx, middleware.Request{Service: "compute", Ops: cfg.Ops}); err != nil {
			return LiveComposedRun{}, fmt.Errorf("warmup %d: %w", i, err)
		}
	}

	// Deferrable batch goes in first, while the grid is provably
	// dirty: the window is anchored to open NOW and the carbon
	// interceptor must hold every one of them until it closes.
	sig.anchor(master.Now() + cfg.DirtyWindowSec)
	var wg sync.WaitGroup
	errs := make(chan error, cfg.Batch+cfg.Interactive)
	submit := func(req middleware.Request) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := master.Do(ctx, req); err != nil {
				errs <- err
			}
		}()
	}
	for i := 0; i < cfg.Batch; i++ {
		submit(middleware.Request{Service: "compute", Ops: cfg.Ops, Class: LiveClassBatch, Deferrable: true})
	}
	// Interactive traffic rides the express lane: deadlines are never
	// parked behind the green window.
	for i := 0; i < cfg.Interactive; i++ {
		submit(middleware.Request{Service: "compute", Ops: cfg.Ops, Class: LiveClassInteractive})
	}
	// Hopeless requests: admission must refuse each one (the master's
	// Rejected counter, asserted in the study's test, keeps the tally).
	for i := 0; i < cfg.Hopeless; i++ {
		_, err := master.Do(ctx, middleware.Request{Service: "compute", Ops: cfg.Ops, Class: LiveClassHopeless})
		if err == nil {
			return LiveComposedRun{}, fmt.Errorf("hopeless request %d was admitted", i)
		}
		if !errors.Is(err, middleware.ErrRejected) {
			return LiveComposedRun{}, fmt.Errorf("hopeless request %d: %w", i, err)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return LiveComposedRun{}, err
	}

	res := master.Finalize()
	run := LiveComposedRun{
		Transport:         transport,
		Result:            *res,
		ExpectedEarnedUSD: cfg.ExpectedEarnedUSD(),
	}
	if powerCli != nil {
		st := powerCli.Stats()
		run.PowerStats = &st
	}
	return run, nil
}

// sleepSolve pretends to compute by sleeping ops/flops.
func sleepSolve(flops float64) func(context.Context, middleware.Request) ([]byte, error) {
	return func(ctx context.Context, req middleware.Request) ([]byte, error) {
		select {
		case <-time.After(time.Duration(req.Ops / flops * float64(time.Second))):
			return []byte("done"), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// Table renders the per-transport comparison.
func (r *LiveComposedResult) Table() *report.Table {
	t := &report.Table{
		Title: fmt.Sprintf("Live interceptor stack: %d interactive + %d deferrable batch + %d hopeless over a %.2gs dirty window",
			r.Config.Interactive, r.Config.Batch, r.Config.Hopeless, r.Config.DirtyWindowSec),
		Headers: []string{"Transport", "Done", "Rejected", "Deferred", "Wait (s)",
			"Earned ($)", "Energy (J)", "CO2 (g)", "Budget (J)"},
	}
	for _, run := range r.Runs {
		earned := 0.0
		if run.Result.SLA != nil {
			earned = run.Result.SLA.EarnedUSD
		}
		t.AddRow(run.Transport,
			fmt.Sprintf("%d", run.Result.Completed),
			fmt.Sprintf("%d", run.Result.Rejected),
			fmt.Sprintf("%d", run.Result.Deferred),
			fmt.Sprintf("%.2f", run.Result.DeferredSec),
			fmt.Sprintf("%.2f", earned),
			fmt.Sprintf("%.2f", run.Result.EnergyJ),
			fmt.Sprintf("%.3f", run.Result.CO2Grams),
			fmt.Sprintf("%.2f", run.Result.BudgetSpentJ),
		)
	}
	return t
}

// Render writes the table plus the study's headline invariants.
func (r *LiveComposedResult) Render(w io.Writer) error {
	if err := r.Table().Render(w); err != nil {
		return err
	}
	for _, run := range r.Runs {
		if run.Result.SLA == nil {
			continue
		}
		fmt.Fprintf(w, "\n%s ledger (expected $%.2f):\n", run.Transport, run.ExpectedEarnedUSD)
		if err := run.Result.SLA.Render(w); err != nil {
			return err
		}
	}
	for _, run := range r.Runs {
		if st := run.PowerStats; st != nil {
			fmt.Fprintf(w, "\n%s external power: %d sidecar requests, %d errors, %d fallbacks (breaker open: %v)\n",
				run.Transport, st.Requests, st.Errors, st.Fallbacks, st.BreakerOpen)
		}
	}
	fmt.Fprintf(w, "\nSLA admission, the revenue ledger, carbon-window deferral and budget metering all ran on the LIVE serving path, identically over %s and %s transports\n",
		LiveTransportInProcess, LiveTransportTCP)
	return nil
}
