package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"sync"
	"time"

	"greensched/internal/budget"
	"greensched/internal/estvec"
	"greensched/internal/journal"
	"greensched/internal/middleware"
	"greensched/internal/report"
	"greensched/internal/sched"
	"greensched/internal/sla"
)

// The durable dispatch study is the crash drill for the journaled live
// queue: the same workload runs twice per transport — once
// uninterrupted (the control books), once with the master killed
// mid-run while one request is leased to a SED and another is parked
// in a carbon window. A second master incarnation recovers the journal,
// rebooks every settled outcome exactly once, waits out the orphaned
// lease and redoes the work on a DIFFERENT SED. The study's claim is
// the paper-level one for a middleware that fronts real clusters: a
// scheduler process is allowed to die without losing admitted work or
// corrupting the revenue books.

// DurableConfig parameterizes the crash drill.
type DurableConfig struct {
	// Request mix: Interactive requests carry a 60 s deadline at $2
	// (one more interactive request is the one caught mid-execution by
	// the crash), Batch are deferrable at $0.05 (one is caught parked
	// in a carbon window), Hopeless are admission-rejected before the
	// crash so a settled rejection is rebooked too.
	Interactive int
	Batch       int
	Hopeless    int

	// Ops per request; SEDs "compute" by sleeping Ops/flops.
	Ops         float64
	LeanFlops   float64
	HungryFlops float64
	LeanWatts   float64
	HungryWatts float64

	// The grid: the interrupted run's first incarnation opens a dirty
	// window (DirtyG) long enough that the parked batch request is
	// provably still parked at the crash; the restarted incarnation
	// and the control run see a clean grid (CleanG) throughout.
	CleanG float64
	DirtyG float64

	// LeaseTermSec bounds SED ownership of a dispatched request: the
	// restarted master waits this long (from the lease) before redoing
	// orphaned work on another SED.
	LeaseTermSec float64

	BudgetJ          float64
	BudgetHorizonSec float64

	// Dir receives the journal files (control-*.wal, crash-*.wal);
	// empty means the caller must set one (tests use t.TempDir()).
	Dir string
}

// DefaultDurableConfig returns the calibrated sub-second drill.
func DefaultDurableConfig() DurableConfig {
	return DurableConfig{
		Interactive:      3,
		Batch:            2,
		Hopeless:         1,
		Ops:              2e6,
		LeanFlops:        1e9,
		HungryFlops:      4e9,
		LeanWatts:        80,
		HungryWatts:      320,
		CleanG:           60,
		DirtyG:           600,
		LeaseTermSec:     0.25,
		BudgetJ:          1e6,
		BudgetHorizonSec: 60,
	}
}

// Validate reports configuration errors.
func (c DurableConfig) Validate() error {
	switch {
	case c.Interactive <= 0 || c.Batch <= 0 || c.Hopeless <= 0:
		return fmt.Errorf("experiments: durable study needs interactive, batch and hopeless requests")
	case c.Ops <= 0 || c.LeanFlops <= 0 || c.HungryFlops <= 0:
		return fmt.Errorf("experiments: durable study needs positive ops and flops")
	case c.DirtyG <= c.CleanG || c.CleanG < 0:
		return fmt.Errorf("experiments: dirty intensity %v must exceed clean %v", c.DirtyG, c.CleanG)
	case c.LeaseTermSec <= 0:
		return fmt.Errorf("experiments: durable study needs a positive lease term")
	case c.BudgetJ <= 0 || c.BudgetHorizonSec <= 0:
		return fmt.Errorf("experiments: durable study needs a positive budget and horizon")
	case c.Dir == "":
		return fmt.Errorf("experiments: durable study needs a journal directory")
	}
	return nil
}

// ExpectedEarnedUSD is the dollar total BOTH runs must book: every
// interactive request (including the one the crash interrupts) at $2,
// every batch request at $0.05. The hopeless requests forfeit $1 each
// in both runs — rejection happens before the crash, and its rebooked
// record restores the forfeiture exactly once.
func (c DurableConfig) ExpectedEarnedUSD() float64 {
	return 2*float64(c.Interactive+1) + 0.05*float64(c.Batch)
}

// durableCatalog is the wall-clock catalog with timing-robust curves:
// HardDrop earns full value anywhere before the (generous) deadline
// and Flat earns regardless, so an interrupted run that finishes the
// same work later still books the same dollars — which is what makes
// "ledger byte-equal to the uninterrupted run" a meaningful assertion
// rather than a wall-clock coincidence.
func (c DurableConfig) durableCatalog() sla.Catalog {
	bestExec := c.Ops / c.HungryFlops
	return sla.Catalog{
		LiveClassInteractive: {
			Name: LiveClassInteractive, RelDeadlineSec: 60, ValueUSD: 2, Curve: sla.HardDrop{},
		},
		LiveClassBatch: {
			Name: LiveClassBatch, ValueUSD: 0.05, Curve: sla.Flat{},
		},
		LiveClassHopeless: {
			Name: LiveClassHopeless, RelDeadlineSec: bestExec / 100, ValueUSD: 1, Curve: sla.HardDrop{},
		},
	}
}

// DurableRun is one transport's outcome.
type DurableRun struct {
	Transport string

	// Control is the uninterrupted run's finalized result.
	Control middleware.LiveResult
	// Interrupted is the RESTARTED master's finalized result: rebooked
	// settled outcomes plus replayed incomplete work. Zero lost
	// requests means its counters equal Control's.
	Interrupted middleware.LiveResult

	// Replay is the restarted master's replay pass.
	Replay middleware.ReplayStats

	// The incomplete set the crash left behind, as the restarted
	// journal recovered it.
	LeasedAtCrash   int
	DeferredAtCrash int

	// RedoFrom is the SED that held the orphaned lease; RedoTo is the
	// SED the restarted master elected for the redo (always different).
	RedoFrom string
	RedoTo   string

	// JournalStats snapshots the restarted journal after replay.
	JournalStats journal.Stats

	ExpectedEarnedUSD float64
}

// DurableResult bundles the compared transports.
type DurableResult struct {
	Config DurableConfig
	Runs   []DurableRun // fixed order: IN-PROCESS, TCP
}

// Run returns the named transport's outcome, or false.
func (r *DurableResult) Run(transport string) (DurableRun, bool) {
	for _, run := range r.Runs {
		if run.Transport == transport {
			return run, true
		}
	}
	return DurableRun{}, false
}

// RunDurableStudy executes the crash drill over both transports.
func RunDurableStudy(cfg DurableConfig) (*DurableResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	out := &DurableResult{Config: cfg}
	for _, transport := range []string{LiveTransportInProcess, LiveTransportTCP} {
		run, err := runDurable(cfg, transport)
		if err != nil {
			return nil, fmt.Errorf("experiments: durable %s: %w", transport, err)
		}
		out.Runs = append(out.Runs, run)
	}
	return out, nil
}

// durableDeployment is one master incarnation over a set of SEDs: the
// interceptor stack is rebuilt from scratch each time (a restarted
// process has no memory), only the journal file persists.
type durableDeployment struct {
	master  *middleware.Master
	cleanup []func() error
}

func (d *durableDeployment) close() {
	for i := len(d.cleanup) - 1; i >= 0; i-- {
		d.cleanup[i]()
	}
	d.cleanup = nil
}

// durableMaster builds one incarnation: fresh interceptors, the given
// journal, and the SEDs over the requested transport. elected, when
// non-nil, observes every election.
func durableMaster(cfg DurableConfig, transport, name string, jrn *journal.Journal,
	sig *liveStepSignal, seds []*middleware.SED, elected func(req middleware.Request, server string)) (*durableDeployment, error) {
	tracker, err := budget.NewTracker(cfg.BudgetJ, cfg.BudgetHorizonSec)
	if err != nil {
		return nil, err
	}
	ics := []middleware.Interceptor{
		&middleware.SLAInterceptor{
			Config: &sla.Config{
				Catalog:   cfg.durableCatalog(),
				Admission: &sla.Admission{Margin: 1},
			},
			BestFlops: cfg.HungryFlops,
		},
		&middleware.CarbonInterceptor{
			Signal:      sig,
			DirtyG:      (cfg.CleanG + cfg.DirtyG) / 2,
			MaxDeferSec: 600, PollSec: 0.02,
		},
		&middleware.BudgetInterceptor{Tracker: tracker},
	}
	if elected != nil {
		ics = append(ics, &middleware.HookInterceptor{
			OnElectFunc: func(_ float64, req middleware.Request, server string, _ estvec.List) {
				elected(req, server)
			},
		})
	}
	opts := []middleware.Option{
		middleware.WithName(name),
		middleware.WithPolicy(sched.New(sched.GreenPerf)),
		middleware.WithInterceptors(ics...),
		middleware.WithJournal(jrn),
		middleware.WithLeaseTerm(time.Duration(cfg.LeaseTermSec * float64(time.Second))),
	}
	d := &durableDeployment{}
	switch transport {
	case LiveTransportInProcess:
		opts = append(opts, middleware.WithSEDs(seds...))
	case LiveTransportTCP:
		for _, sed := range seds {
			ep, err := middleware.Serve("127.0.0.1:0", sed, sed)
			if err != nil {
				d.close()
				return nil, err
			}
			d.cleanup = append(d.cleanup, ep.Close)
			rem := middleware.Dial(sed.Name(), ep.Addr())
			d.cleanup = append(d.cleanup, rem.Close)
			opts = append(opts, middleware.WithRemotes(rem))
		}
	default:
		return nil, fmt.Errorf("unknown transport %q", transport)
	}
	m, err := middleware.NewMaster(opts...)
	if err != nil {
		d.close()
		return nil, err
	}
	d.master = m
	return d, nil
}

// runDurable runs control + interrupted on one transport.
func runDurable(cfg DurableConfig, transport string) (DurableRun, error) {
	run := DurableRun{Transport: transport, ExpectedEarnedUSD: cfg.ExpectedEarnedUSD()}
	suffix := transportLabel(transport)

	// --- Control: the same mix, uninterrupted, clean grid ---
	ctlPath := filepath.Join(cfg.Dir, "control-"+suffix+".wal")
	ctlJrn, err := journal.Open(ctlPath, journal.Options{})
	if err != nil {
		return run, err
	}
	ctlSig := &liveStepSignal{dirtyG: cfg.DirtyG, cleanG: cfg.CleanG}
	release := make(chan struct{})
	close(release) // control never stalls
	seds, err := durableSEDs(cfg, ctlSig, release, nil)
	if err != nil {
		return run, err
	}
	ctl, err := durableMaster(cfg, transport, "durable-control-"+suffix, ctlJrn, ctlSig, seds, nil)
	if err != nil {
		return run, err
	}
	if err := submitDurableMix(ctl.master, cfg, true); err != nil {
		ctl.close()
		return run, err
	}
	run.Control = *ctl.master.Finalize()
	ctl.close()
	if err := ctlJrn.Close(); err != nil {
		return run, err
	}

	// --- Interrupted, incarnation 1: crash mid-run ---
	crashPath := filepath.Join(cfg.Dir, "crash-"+suffix+".wal")
	jrn1, err := journal.Open(crashPath, journal.Options{})
	if err != nil {
		return run, err
	}
	sig1 := &liveStepSignal{dirtyG: cfg.DirtyG, cleanG: cfg.CleanG}
	stallRelease := make(chan struct{})
	stallStarted := make(chan uint64, 2)
	seds1, err := durableSEDs(cfg, sig1, stallRelease, stallStarted)
	if err != nil {
		return run, err
	}
	inc1, err := durableMaster(cfg, transport, "durable-crash-"+suffix, jrn1, sig1, seds1, nil)
	if err != nil {
		return run, err
	}
	m1 := inc1.master

	// Settled before the crash: the quick interactives and the
	// hopeless rejections.
	if err := submitDurableSettled(m1, cfg); err != nil {
		inc1.close()
		return run, err
	}

	// Open a dirty window ending far past the crash point and park one
	// batch request in it (the rest of the batch settled above, before
	// the window opened): the crash must catch a live carbon park.
	ctx1, crash := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	sig1.anchor(m1.Now() + 600) // dirty until long after the crash
	wg.Add(1)
	go func() {
		defer wg.Done()
		m1.Do(ctx1, middleware.Request{Service: "compute", Ops: cfg.Ops, Class: LiveClassBatch, Deferrable: true})
	}()
	if err := awaitParked(m1, 1); err != nil {
		crash()
		wg.Wait()
		inc1.close()
		return run, err
	}

	// One interactive request is mid-execution (leased, never to
	// settle) when the master dies.
	wg.Add(1)
	go func() {
		defer wg.Done()
		m1.Do(ctx1, middleware.Request{Service: "stall", Ops: cfg.Ops, Class: LiveClassInteractive})
	}()
	select {
	case <-stallStarted:
	case <-time.After(10 * time.Second):
		crash()
		wg.Wait()
		inc1.close()
		return run, fmt.Errorf("stalled request never reached a SED")
	}

	// The crash: the journal handle dies first (kill -9 — no settle,
	// no sync, so the leased and parked lifecycles stay incomplete on
	// disk), then every in-flight lifecycle is torn down. The stall is
	// released before the transport closes — the TCP endpoint drains
	// in-flight handlers on Close — which also means the dead master's
	// request finishes EXECUTING on the executor: lease-based redo is
	// at-least-once execution with exactly-once booking, and the books
	// asserted below prove the duplicate never lands.
	jrn1.Abandon()
	crash()
	close(stallRelease)
	wg.Wait()
	inc1.close()

	// --- Interrupted, incarnation 2: recover, replay, finish ---
	jrn2, err := journal.Open(crashPath, journal.Options{})
	if err != nil {
		return run, err
	}
	for _, e := range jrn2.Pending() {
		switch e.State {
		case journal.StateLeased:
			run.LeasedAtCrash++
			run.RedoFrom = e.SED
		case journal.StateDeferred:
			run.DeferredAtCrash++
		}
	}
	sig2 := &liveStepSignal{dirtyG: cfg.DirtyG, cleanG: cfg.CleanG} // clean: the window died with incarnation 1
	var redoMu sync.Mutex
	// The executors survived the master's death: in-process the SED
	// objects carry straight over; on TCP their daemons are re-served
	// and re-dialed by the new incarnation.
	inc2, err := durableMaster(cfg, transport, "durable-restart-"+suffix, jrn2, sig2, seds1,
		func(req middleware.Request, server string) {
			if req.Service == "stall" {
				redoMu.Lock()
				run.RedoTo = server
				redoMu.Unlock()
			}
		})
	if err != nil {
		jrn2.Close()
		return run, err
	}
	st, err := inc2.master.Replay(context.Background())
	if err != nil {
		inc2.close()
		jrn2.Close()
		return run, err
	}
	// The deferred entry replays in the background (Replay never waits
	// behind a carbon window); the restarted grid is clean, so draining
	// it here is what proves the park survived the crash.
	if err := inc2.master.ReplayWait(context.Background()); err != nil {
		inc2.close()
		jrn2.Close()
		return run, err
	}
	run.Replay = st
	run.Interrupted = *inc2.master.Finalize()
	run.JournalStats = jrn2.Stats()
	inc2.close()
	if err := jrn2.Close(); err != nil {
		return run, err
	}
	return run, nil
}

// durableSEDs builds the two executors, both offering "compute" (sleep
// ops/flops) and "stall" (block until release closes — the request the
// crash catches mid-execution).
func durableSEDs(cfg DurableConfig, sig *liveStepSignal, release <-chan struct{}, started chan<- uint64) ([]*middleware.SED, error) {
	var seds []*middleware.SED
	for _, spec := range []struct {
		name         string
		flops, watts float64
	}{
		{"lean", cfg.LeanFlops, cfg.LeanWatts},
		{"hungry", cfg.HungryFlops, cfg.HungryWatts},
	} {
		sed, err := liveSED(spec.name, spec.flops, spec.watts, sig, nil, nil)
		if err != nil {
			return nil, err
		}
		if err := sed.Register(middleware.Service{
			Name: "stall",
			Solve: func(ctx context.Context, req middleware.Request) ([]byte, error) {
				if started != nil {
					select {
					case started <- req.ID:
					default:
					}
				}
				select {
				case <-release:
					return []byte("done"), nil
				case <-ctx.Done():
					return nil, ctx.Err()
				}
			},
		}); err != nil {
			return nil, err
		}
		seds = append(seds, sed)
	}
	return seds, nil
}

// submitDurableSettled drives the requests that settle BEFORE the
// crash: the quick interactives and the hopeless rejections.
func submitDurableSettled(m *middleware.Master, cfg DurableConfig) error {
	ctx := context.Background()
	for i := 0; i < cfg.Interactive; i++ {
		if _, err := m.Do(ctx, middleware.Request{Service: "compute", Ops: cfg.Ops, Class: LiveClassInteractive}); err != nil {
			return fmt.Errorf("interactive %d: %w", i, err)
		}
	}
	for i := 0; i < cfg.Batch-1; i++ {
		if _, err := m.Do(ctx, middleware.Request{Service: "compute", Ops: cfg.Ops, Class: LiveClassBatch, Deferrable: true}); err != nil {
			return fmt.Errorf("batch %d: %w", i, err)
		}
	}
	for i := 0; i < cfg.Hopeless; i++ {
		_, err := m.Do(ctx, middleware.Request{Service: "compute", Ops: cfg.Ops, Class: LiveClassHopeless})
		if err == nil {
			return fmt.Errorf("hopeless request %d was admitted", i)
		}
		if !errors.Is(err, middleware.ErrRejected) {
			return fmt.Errorf("hopeless request %d: %w", i, err)
		}
	}
	return nil
}

// submitDurableMix drives the FULL mix to completion — the control
// run's workload: everything submitDurableSettled covers plus the two
// requests the interrupted run crashes on (one more batch, one more
// interactive — service "stall" resolves instantly there because the
// control's release channel is pre-closed).
func submitDurableMix(m *middleware.Master, cfg DurableConfig, stallService bool) error {
	if err := submitDurableSettled(m, cfg); err != nil {
		return err
	}
	ctx := context.Background()
	if _, err := m.Do(ctx, middleware.Request{Service: "compute", Ops: cfg.Ops, Class: LiveClassBatch, Deferrable: true}); err != nil {
		return fmt.Errorf("final batch: %w", err)
	}
	svc := "compute"
	if stallService {
		svc = "stall"
	}
	if _, err := m.Do(ctx, middleware.Request{Service: svc, Ops: cfg.Ops, Class: LiveClassInteractive}); err != nil {
		return fmt.Errorf("final interactive: %w", err)
	}
	return nil
}

// awaitParked polls the master's deferral stats until n requests are
// parked (bounded; the poll interval is far below the study's dirty
// window).
func awaitParked(m *middleware.Master, n int) error {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if m.Deferred().Parked >= n {
			return nil
		}
		time.Sleep(5 * time.Millisecond)
	}
	return fmt.Errorf("deferrable request never parked")
}

// Table renders the per-transport comparison.
func (r *DurableResult) Table() *report.Table {
	t := &report.Table{
		Title: fmt.Sprintf("Durable dispatch: kill/restart with 1 leased + 1 parked in flight (lease %.2gs)",
			r.Config.LeaseTermSec),
		Headers: []string{"Transport", "Run", "Done", "Rejected", "Failed",
			"Earned ($)", "Budget (J)", "Replayed", "Redone"},
	}
	for _, run := range r.Runs {
		for _, row := range []struct {
			name   string
			res    middleware.LiveResult
			replay *middleware.ReplayStats
		}{
			{"control", run.Control, nil},
			{"kill+restart", run.Interrupted, &run.Replay},
		} {
			earned := 0.0
			if row.res.SLA != nil {
				earned = row.res.SLA.EarnedUSD
			}
			replayed, redone := "-", "-"
			if row.replay != nil {
				replayed = fmt.Sprintf("%d", row.replay.Resubmitted)
				redone = fmt.Sprintf("%d", row.replay.Redone)
			}
			t.AddRow(run.Transport, row.name,
				fmt.Sprintf("%d", row.res.Completed),
				fmt.Sprintf("%d", row.res.Rejected),
				fmt.Sprintf("%d", row.res.Failed),
				fmt.Sprintf("%.2f", earned),
				fmt.Sprintf("%.2f", row.res.BudgetSpentJ),
				replayed, redone,
			)
		}
	}
	return t
}

// Render writes the table plus the study's headline invariants.
func (r *DurableResult) Render(w io.Writer) error {
	if err := r.Table().Render(w); err != nil {
		return err
	}
	for _, run := range r.Runs {
		fmt.Fprintf(w, "\n%s: crash left %d leased + %d deferred incomplete; lease expired on %q, redone on %q; journal holds %d records (%d B, %d pending after replay)\n",
			run.Transport, run.LeasedAtCrash, run.DeferredAtCrash, run.RedoFrom, run.RedoTo,
			run.JournalStats.Appended, run.JournalStats.BytesTotal, run.JournalStats.Pending)
	}
	fmt.Fprintf(w, "\nEvery admitted request survived a master kill: settled outcomes rebooked exactly once, the orphaned lease redone on a different SED, the carbon park replayed — identical books over %s and %s transports\n",
		LiveTransportInProcess, LiveTransportTCP)
	return nil
}
