package experiments

import (
	"fmt"
	"io"
	"sort"

	"greensched/internal/analysis"
	"greensched/internal/report"
	"greensched/internal/sched"
)

// ReplicationConfig parameterizes the multi-seed replication of the
// §IV-A experiment. The paper reports a single run per policy; on a
// deterministic simulator we can rerun the whole experiment across
// seeds and report each quantity as mean ± confidence interval, which
// turns the headline claims ("25% gain", "6% loss") into population
// statements instead of point estimates.
type ReplicationConfig struct {
	Base       PlacementConfig // per-run setup; Base.Seed is overridden
	Seeds      int             // number of independent runs (≥2)
	FirstSeed  int64           // seeds are FirstSeed, FirstSeed+1, ...
	Confidence float64         // CI level, e.g. 0.95
}

// DefaultReplicationConfig replicates the calibrated §IV-A setup
// across 10 seeds at 95% confidence.
func DefaultReplicationConfig() ReplicationConfig {
	return ReplicationConfig{
		Base:       DefaultPlacementConfig(),
		Seeds:      10,
		FirstSeed:  1,
		Confidence: 0.95,
	}
}

// ReplicationResult holds the per-seed series and their summaries.
type ReplicationResult struct {
	Config   ReplicationConfig
	Seeds    []int64
	Makespan map[sched.Kind][]float64 // seconds, one entry per seed
	Energy   map[sched.Kind][]float64 // joules, one entry per seed

	// Per-seed headline ratios (POWER vs RANDOM energy gain, POWER vs
	// PERFORMANCE energy gain, POWER vs PERFORMANCE makespan loss).
	GainVsRandom []float64
	GainVsPerf   []float64
	Loss         []float64
}

// RunReplication reruns the §IV-A placement experiment for each seed.
func RunReplication(cfg ReplicationConfig) (*ReplicationResult, error) {
	if cfg.Seeds < 2 {
		return nil, fmt.Errorf("experiments: replication needs at least 2 seeds, got %d", cfg.Seeds)
	}
	if cfg.Confidence <= 0 || cfg.Confidence >= 1 {
		return nil, fmt.Errorf("experiments: confidence %v outside (0,1)", cfg.Confidence)
	}
	out := &ReplicationResult{
		Config:   cfg,
		Makespan: make(map[sched.Kind][]float64),
		Energy:   make(map[sched.Kind][]float64),
	}
	for i := 0; i < cfg.Seeds; i++ {
		seed := cfg.FirstSeed + int64(i)
		run := cfg.Base
		run.Seed = seed
		res, err := RunPlacement(run)
		if err != nil {
			return nil, fmt.Errorf("experiments: replication seed %d: %w", seed, err)
		}
		out.Seeds = append(out.Seeds, seed)
		for _, kind := range sched.Kinds() {
			out.Makespan[kind] = append(out.Makespan[kind], res.Runs[kind].Makespan)
			out.Energy[kind] = append(out.Energy[kind], float64(res.Runs[kind].EnergyJ))
		}
		gR, gP, loss := res.Headline()
		out.GainVsRandom = append(out.GainVsRandom, gR)
		out.GainVsPerf = append(out.GainVsPerf, gP)
		out.Loss = append(out.Loss, loss)
	}
	return out, nil
}

// ShapeViolation describes one seed where a paper ordering failed.
type ShapeViolation struct {
	Seed int64
	Rule string
}

// ShapeViolations checks the paper's orderings on every seed:
// energy(POWER) < energy(PERFORMANCE) < energy(RANDOM) and
// makespan(PERFORMANCE) ≤ makespan(POWER). An empty result means the
// Table II shape reproduced in all runs, not just on average.
func (r *ReplicationResult) ShapeViolations() []ShapeViolation {
	var out []ShapeViolation
	for i, seed := range r.Seeds {
		eP := r.Energy[sched.Power][i]
		ePf := r.Energy[sched.Performance][i]
		eR := r.Energy[sched.Random][i]
		if !(eP < ePf) {
			out = append(out, ShapeViolation{seed, fmt.Sprintf("energy POWER (%.3g) ≥ PERFORMANCE (%.3g)", eP, ePf)})
		}
		if !(ePf < eR) {
			out = append(out, ShapeViolation{seed, fmt.Sprintf("energy PERFORMANCE (%.3g) ≥ RANDOM (%.3g)", ePf, eR)})
		}
		if r.Makespan[sched.Performance][i] > r.Makespan[sched.Power][i] {
			out = append(out, ShapeViolation{seed, "makespan PERFORMANCE > POWER"})
		}
	}
	return out
}

// Summaries returns the per-policy makespan and energy summaries in
// the paper's policy order.
func (r *ReplicationResult) Summaries() (makespan, energy map[sched.Kind]analysis.Summary, err error) {
	makespan = make(map[sched.Kind]analysis.Summary)
	energy = make(map[sched.Kind]analysis.Summary)
	for _, kind := range sched.Kinds() {
		m, err := analysis.Summarize(r.Makespan[kind])
		if err != nil {
			return nil, nil, fmt.Errorf("experiments: summarizing %s makespan: %w", kind, err)
		}
		e, err := analysis.Summarize(r.Energy[kind])
		if err != nil {
			return nil, nil, fmt.Errorf("experiments: summarizing %s energy: %w", kind, err)
		}
		makespan[kind] = m
		energy[kind] = e
	}
	return makespan, energy, nil
}

// HeadlineSummaries summarizes the three per-seed headline ratio
// series.
func (r *ReplicationResult) HeadlineSummaries() (gainVsRandom, gainVsPerf, loss analysis.Summary, err error) {
	gR, err := analysis.Summarize(r.GainVsRandom)
	if err != nil {
		return analysis.Summary{}, analysis.Summary{}, analysis.Summary{}, err
	}
	gP, err := analysis.Summarize(r.GainVsPerf)
	if err != nil {
		return analysis.Summary{}, analysis.Summary{}, analysis.Summary{}, err
	}
	l, err := analysis.Summarize(r.Loss)
	if err != nil {
		return analysis.Summary{}, analysis.Summary{}, analysis.Summary{}, err
	}
	return gR, gP, l, nil
}

// EnergySignificance runs Welch's t-test on the POWER vs RANDOM and
// POWER vs PERFORMANCE energy samples. Small p-values mean the energy
// separation is not a seeding artifact.
func (r *ReplicationResult) EnergySignificance() (vsRandom, vsPerf analysis.WelchResult, err error) {
	_, energy, err := r.Summaries()
	if err != nil {
		return analysis.WelchResult{}, analysis.WelchResult{}, err
	}
	vsRandom, err = analysis.WelchT(energy[sched.Power], energy[sched.Random])
	if err != nil {
		return analysis.WelchResult{}, analysis.WelchResult{}, err
	}
	vsPerf, err = analysis.WelchT(energy[sched.Power], energy[sched.Performance])
	return vsRandom, vsPerf, err
}

// Table renders Table II with mean ± CI cells.
func (r *ReplicationResult) Table() (*report.Table, error) {
	makespan, energy, err := r.Summaries()
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		Title: fmt.Sprintf("Table II replicated over %d seeds (mean ± %.0f%% CI)",
			len(r.Seeds), r.Config.Confidence*100),
		Headers: []string{"Metric", "RANDOM", "POWER", "PERFORMANCE"},
	}
	cell := func(s analysis.Summary) string {
		lo, hi := s.CI(r.Config.Confidence)
		return fmt.Sprintf("%.0f ± %.0f", s.Mean, (hi-lo)/2)
	}
	t.AddRow("Makespan (s)",
		cell(makespan[sched.Random]), cell(makespan[sched.Power]), cell(makespan[sched.Performance]))
	t.AddRow("Energy (J)",
		cell(energy[sched.Random]), cell(energy[sched.Power]), cell(energy[sched.Performance]))
	return t, nil
}

// Render writes the replicated Table II, the headline ratio intervals,
// the Welch significance tests and the per-seed shape check.
func (r *ReplicationResult) Render(w io.Writer) error {
	tbl, err := r.Table()
	if err != nil {
		return err
	}
	if err := tbl.Render(w); err != nil {
		return err
	}
	gR, gP, loss, err := r.HeadlineSummaries()
	if err != nil {
		return err
	}
	line := func(name string, s analysis.Summary, paper string) {
		lo, hi := s.CI(r.Config.Confidence)
		fmt.Fprintf(w, "%s: %.1f%% ± %.1f%% (paper: %s)\n", name, s.Mean*100, (hi-lo)/2*100, paper)
	}
	fmt.Fprintln(w)
	line("POWER energy gain vs RANDOM", gR, "25%")
	line("POWER energy gain vs PERFORMANCE", gP, "up to 19%")
	line("POWER makespan loss vs PERFORMANCE", loss, "up to 6%")

	vsRandom, vsPerf, err := r.EnergySignificance()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nWelch t-test, energy POWER vs RANDOM:      t=%.2f df=%.1f p=%.2g\n",
		vsRandom.T, vsRandom.DF, vsRandom.P)
	fmt.Fprintf(w, "Welch t-test, energy POWER vs PERFORMANCE: t=%.2f df=%.1f p=%.2g\n",
		vsPerf.T, vsPerf.DF, vsPerf.P)

	if viols := r.ShapeViolations(); len(viols) > 0 {
		sort.Slice(viols, func(i, j int) bool { return viols[i].Seed < viols[j].Seed })
		fmt.Fprintf(w, "\nshape violations (%d):\n", len(viols))
		for _, v := range viols {
			fmt.Fprintf(w, "  seed %d: %s\n", v.Seed, v.Rule)
		}
	} else {
		fmt.Fprintf(w, "\nTable II orderings held in all %d seeds.\n", len(r.Seeds))
	}
	return nil
}
