package experiments

import (
	"strings"
	"testing"
)

// TestCarbonStudyAwareBeatsBlind is the subsystem's acceptance check:
// on the identical multi-day diurnal scenario, carbon-aware scheduling
// must emit measurably less CO2 than both carbon-blind baselines while
// staying inside the declared makespan bound.
func TestCarbonStudyAwareBeatsBlind(t *testing.T) {
	cfg := DefaultCarbonConfig()
	res, err := RunCarbonStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	aware, ok1 := res.Run(CarbonRunAware)
	idle, ok2 := res.Run(CarbonRunIdle)
	always, ok3 := res.Run(CarbonRunAlwaysOn)
	if !ok1 || !ok2 || !ok3 {
		t.Fatalf("missing runs: %+v", res.Runs)
	}
	// Measurably lower: at least 20% below the consolidation baseline,
	// not a rounding artifact.
	if aware.CO2Grams >= idle.CO2Grams*0.8 {
		t.Errorf("aware %.0f g not measurably below idle-shutdown %.0f g", aware.CO2Grams, idle.CO2Grams)
	}
	if aware.CO2Grams >= always.CO2Grams {
		t.Errorf("aware %.0f g not below always-on %.0f g", aware.CO2Grams, always.CO2Grams)
	}
	// Bounded makespan: the deferral bound is honoured.
	if aware.Makespan > cfg.MakespanBound() {
		t.Errorf("aware makespan %.0f s exceeds bound %.0f s", aware.Makespan, cfg.MakespanBound())
	}
	// The blind baselines should not have been slowed by deferral.
	if idle.MeanWait > aware.MeanWait {
		t.Errorf("blind idle run waits longer (%.0f s) than the deferring run (%.0f s)?",
			idle.MeanWait, aware.MeanWait)
	}
	// Per-site breakdown covers both grids of the profile.
	if len(res.PerSiteCO2) != 2 {
		t.Errorf("per-site breakdown %v, want solar-valley and fossil-ridge", res.PerSiteCO2)
	}
}

func TestCarbonStudyRender(t *testing.T) {
	cfg := DefaultCarbonConfig()
	cfg.Days = 1
	cfg.BurstTasks = 24
	res, err := RunCarbonStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := res.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{CarbonRunAlwaysOn, CarbonRunIdle, CarbonRunAware, "CO2 saving", "per-site CO2"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestCarbonConfigValidate(t *testing.T) {
	bad := DefaultCarbonConfig()
	bad.Days = 0
	if _, err := RunCarbonStudy(bad); err == nil {
		t.Error("zero days must be rejected")
	}
	bad = DefaultCarbonConfig()
	bad.AmplitudeG = bad.MeanG * 2
	if _, err := RunCarbonStudy(bad); err == nil {
		t.Error("invalid diurnal model must be rejected")
	}
}
