package experiments

import (
	"fmt"
	"io"

	"greensched/internal/cluster"
	"greensched/internal/consolidation"
	"greensched/internal/report"
	"greensched/internal/sched"
	"greensched/internal/sim"
	"greensched/internal/sla"
	"greensched/internal/workload"
)

// PreemptionConfig parameterizes the preemption study: a batch burst
// saturates every powered node's slot and queue while a periodic
// high-value interactive stream arrives with deadlines far tighter
// than the batch drain. Two configurations replay the identical
// schedule:
//
//	EXPRESS-BOOT   the PR-2 state of the art: deadline-slack guards
//	               boot dark capacity when a deadline tightens — but
//	               an elected request never migrates, so work already
//	               queued behind running batch cannot reach the fresh
//	               node; the boots burn joules while some deadlines
//	               still slip
//	PREEMPTION     the same controller plus checkpoint/restart: the
//	               urgent arrival displaces a running batch task in
//	               place (progress retained minus the restart
//	               penalty), no boot needed
//
// The comparison makes the tentpole claim measurable: strictly more
// net revenue at no more energy, with zero victim deadlines broken by
// the displacements.
type PreemptionConfig struct {
	Nodes        int // taurus nodes; one is shed idle pre-burst
	SlotsPerNode int

	BatchTasks  int     // burst saturating slots and queues
	BatchOps    float64 // flops per batch task
	BatchRelSec float64 // generous batch deadline (victim safety must hold)
	BatchAt     float64 // burst submission time

	InteractiveTasks  int     // periodic urgent stream
	InteractiveOps    float64 // flops per interactive task
	InteractiveRelSec float64 // deadline after submission
	InteractiveEvery  float64 // arrival period, seconds
	InteractiveAt     float64 // first arrival

	IdleTimeout      float64 // controller idle-shutdown grace
	MinOn            int     // nodes kept powered
	TickSec          float64 // controller cadence
	DeadlineSlackSec float64 // urgent guard margin

	RestartPenaltyFrac float64 // checkpoint quality (0 = perfect)

	Seed int64
}

// DefaultPreemptionConfig returns the calibrated scenario: four taurus
// nodes at one slot each; the idle-shutdown controller sheds one node
// before a six-task batch burst (≈1000 s each) saturates the remaining
// three slots and queues; six interactive tasks (10 s, 250 s deadline)
// then arrive every 400 s. Express boots alone cannot rescue the ones
// that land while every slot is held by batch — preemption can.
func DefaultPreemptionConfig() PreemptionConfig {
	return PreemptionConfig{
		Nodes:        4,
		SlotsPerNode: 1,

		BatchTasks:  6,
		BatchOps:    9e12, // ≈1000 s on a taurus core
		BatchRelSec: 18000,
		BatchAt:     400,

		InteractiveTasks:  6,
		InteractiveOps:    9e10, // ≈10 s on a taurus core
		InteractiveRelSec: 250,
		InteractiveEvery:  400,
		InteractiveAt:     500,

		IdleTimeout:      300,
		MinOn:            3,
		TickSec:          60,
		DeadlineSlackSec: 300,

		RestartPenaltyFrac: 0.1,

		Seed: 1,
	}
}

// Validate reports configuration errors.
func (c PreemptionConfig) Validate() error {
	switch {
	case c.Nodes < 2 || c.SlotsPerNode < 1:
		return fmt.Errorf("experiments: preemption study needs ≥2 nodes with ≥1 slot")
	case c.MinOn < 1 || c.MinOn >= c.Nodes:
		return fmt.Errorf("experiments: MinOn %d must leave a dark node on a %d-node platform", c.MinOn, c.Nodes)
	case c.BatchTasks < 1 || c.BatchOps <= 0 || c.BatchRelSec <= 0:
		return fmt.Errorf("experiments: preemption study needs a positive batch burst")
	case c.InteractiveTasks < 1 || c.InteractiveOps <= 0 || c.InteractiveRelSec <= 0 || c.InteractiveEvery <= 0:
		return fmt.Errorf("experiments: preemption study needs a positive interactive stream")
	case c.IdleTimeout <= 0 || c.TickSec <= 0 || c.DeadlineSlackSec <= 0:
		return fmt.Errorf("experiments: preemption study needs positive controller parameters")
	}
	return (sla.Preemption{RestartPenaltyFrac: c.RestartPenaltyFrac}).Validate()
}

// Catalog returns the two classes of the study: deferrable batch with
// a generous hard deadline (so victim safety is a real obligation) and
// high-value interactive work on a tight one.
func (c PreemptionConfig) Catalog() sla.Catalog {
	return sla.Catalog{
		"batch": {Name: "batch", RelDeadlineSec: c.BatchRelSec, ValueUSD: 0.05, Curve: sla.HardDrop{}},
		"interactive": {Name: "interactive", RelDeadlineSec: c.InteractiveRelSec, ValueUSD: 2.00,
			Curve: sla.HardDrop{}},
	}
}

// Tasks materializes the identical arrival schedule both runs replay.
func (c PreemptionConfig) Tasks() ([]workload.Task, error) {
	batch, err := workload.BurstThenRate{
		Total: c.BatchTasks, Burst: c.BatchTasks, Ops: c.BatchOps, Class: "batch",
	}.Tasks()
	if err != nil {
		return nil, err
	}
	interactive, err := workload.BurstThenRate{
		Total: c.InteractiveTasks, Burst: 0, Rate: 1 / c.InteractiveEvery,
		Ops: c.InteractiveOps, Class: "interactive",
	}.Tasks()
	if err != nil {
		return nil, err
	}
	return workload.Merge(
		workload.Shift(batch, c.BatchAt),
		workload.Shift(interactive, c.InteractiveAt-c.InteractiveEvery),
	), nil
}

// PreemptRun is one configuration's outcome.
type PreemptRun struct {
	Name     string
	EnergyJ  float64
	Makespan float64

	EarnedUSD    float64
	ForfeitedUSD float64
	PenaltyUSD   float64
	OnTime       int
	Misses       int

	Boots       int
	Preemptions int
	RedoneOps   float64

	// VictimMisses counts completions that were preempted at least
	// once and still finished past their own deadline — the breaches
	// preemption itself would be guilty of. The safety calculus keeps
	// this at zero.
	VictimMisses int
}

// NetUSD returns earned minus contractual penalties.
func (r PreemptRun) NetUSD() float64 { return r.EarnedUSD - r.PenaltyUSD }

// Names of the compared configurations.
const (
	PreemptRunExpressBoot = "EXPRESS-BOOT"
	PreemptRunPreemption  = "PREEMPTION"
)

// PreemptionResult bundles the compared configurations.
type PreemptionResult struct {
	Config PreemptionConfig
	Runs   []PreemptRun // fixed order: EXPRESS-BOOT, PREEMPTION
}

// Run returns the named configuration's outcome, or false.
func (r *PreemptionResult) Run(name string) (PreemptRun, bool) {
	for _, run := range r.Runs {
		if run.Name == name {
			return run, true
		}
	}
	return PreemptRun{}, false
}

// RunPreemptionStudy executes both configurations on the identical
// schedule and platform.
func RunPreemptionStudy(cfg PreemptionConfig) (*PreemptionResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	tasks, err := cfg.Tasks()
	if err != nil {
		return nil, fmt.Errorf("experiments: preemption workload: %w", err)
	}
	out := &PreemptionResult{Config: cfg}
	for _, variant := range []struct {
		name    string
		preempt bool
	}{
		{PreemptRunExpressBoot, false},
		{PreemptRunPreemption, true},
	} {
		ctl := &consolidation.Controller{
			IdleTimeout:      cfg.IdleTimeout,
			MinOn:            cfg.MinOn,
			DeadlineSlackSec: cfg.DeadlineSlackSec,
			PreemptBatch:     variant.preempt,
		}
		mods := []sim.Module{
			&sim.SLAModule{Config: &sla.Config{Catalog: cfg.Catalog(), Order: sched.NewOrder(sched.EDF)}},
		}
		if variant.preempt {
			mods = append(mods, &sim.PreemptModule{
				Preemption: &sla.Preemption{RestartPenaltyFrac: cfg.RestartPenaltyFrac},
			})
		}
		mods = append(mods, &consolidation.Module{Controller: ctl})
		simCfg := sim.NewScenario(
			cluster.MustPlatform(cluster.NewNodes("taurus", cfg.Nodes)),
			tasks,
			sim.WithPolicy(sched.New(sched.GreenPerf)),
			sim.WithStatic(), // deterministic placement: the contrast is the controller, not learning noise
			sim.WithSeed(cfg.Seed),
			sim.WithSlotsPerNode(cfg.SlotsPerNode),
			sim.WithTick(cfg.TickSec),
			sim.WithRetryEvery(30),
			sim.WithModules(mods...),
		)
		res, err := sim.Run(simCfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: preemption %s: %w", variant.name, err)
		}
		run := PreemptRun{
			Name:        variant.name,
			EnergyJ:     float64(res.EnergyJ),
			Makespan:    res.Makespan,
			Misses:      res.DeadlineMisses,
			Boots:       res.Boots,
			Preemptions: res.Preemptions,
			RedoneOps:   res.PreemptRedoneOps,
		}
		if res.SLA != nil {
			run.EarnedUSD = res.SLA.EarnedUSD
			run.ForfeitedUSD = res.SLA.ForfeitedUSD
			run.PenaltyUSD = res.SLA.PenaltyUSD
			run.OnTime = res.SLA.OnTime
		}
		for _, rec := range res.Records {
			if rec.Preemptions > 0 && rec.Deadline > 0 && rec.Finish > rec.Deadline {
				run.VictimMisses++
			}
		}
		out.Runs = append(out.Runs, run)
	}
	return out, nil
}

// Table renders the comparison.
func (r *PreemptionResult) Table() *report.Table {
	t := &report.Table{
		Title: fmt.Sprintf("Preemption vs express boot: %d batch (≈%.0f s) + %d interactive (%.0f s deadline) on %d nodes",
			r.Config.BatchTasks, r.Config.BatchOps/9e9, r.Config.InteractiveTasks,
			r.Config.InteractiveRelSec, r.Config.Nodes),
		Headers: []string{"Configuration", "Net ($)", "Forfeited ($)", "Late", "Boots",
			"Preempts", "Victim misses", "Energy (MJ)", "Makespan (h)"},
	}
	for _, run := range r.Runs {
		t.AddRow(run.Name,
			fmt.Sprintf("%.2f", run.NetUSD()),
			fmt.Sprintf("%.2f", run.ForfeitedUSD),
			fmt.Sprintf("%d", run.Misses),
			fmt.Sprintf("%d", run.Boots),
			fmt.Sprintf("%d", run.Preemptions),
			fmt.Sprintf("%d", run.VictimMisses),
			fmt.Sprintf("%.2f", run.EnergyJ/1e6),
			fmt.Sprintf("%.1f", run.Makespan/3600),
		)
	}
	return t
}

// Render writes the table plus the headline trade-off.
func (r *PreemptionResult) Render(w io.Writer) error {
	if err := r.Table().Render(w); err != nil {
		return err
	}
	boot, ok1 := r.Run(PreemptRunExpressBoot)
	pre, ok2 := r.Run(PreemptRunPreemption)
	if !ok1 || !ok2 {
		return nil
	}
	fmt.Fprintf(w, "\n%s recovers $%.2f of net revenue over %s at %+.1f%% energy, %d preemptions (%.0f s of work redone), %d victim deadlines broken\n",
		PreemptRunPreemption, pre.NetUSD()-boot.NetUSD(), PreemptRunExpressBoot,
		(pre.EnergyJ/boot.EnergyJ-1)*100, pre.Preemptions, pre.RedoneOps/9e9, pre.VictimMisses)
	return nil
}
