package experiments

import (
	"math"
	"strings"
	"testing"

	"greensched/internal/obs"
	"greensched/internal/power"
	"greensched/internal/powerd"
)

// TestLiveComposedStudy is the acceptance test for the live
// interceptor stack: over BOTH transports, the ledger shows the exact
// dollar total the request mix implies, admission rejects every
// hopeless request, at least one deferrable request waits out the
// dirty window, and the budget tracker meters exactly the energy the
// master attributed.
func TestLiveComposedStudy(t *testing.T) {
	cfg := DefaultLiveComposedConfig()
	// Keep CI fast: shrink the dirty window and solves.
	cfg.DirtyWindowSec = 0.2
	cfg.PollSec = 0.01
	cfg.Ops = 2e6

	res, err := RunLiveComposedStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 2 {
		t.Fatalf("got %d runs, want 2 transports", len(res.Runs))
	}
	for _, transport := range []string{LiveTransportInProcess, LiveTransportTCP} {
		run, ok := res.Run(transport)
		if !ok {
			t.Fatalf("no %s run", transport)
		}
		r := run.Result

		// Ledger dollar totals: every admitted request completed on
		// time, so earned must equal the mix's value exactly and the
		// hopeless value is forfeited.
		if r.SLA == nil {
			t.Fatalf("%s: no ledger summary", transport)
		}
		if math.Abs(r.SLA.EarnedUSD-run.ExpectedEarnedUSD) > 1e-9 {
			t.Errorf("%s: earned $%.4f, want $%.4f", transport, r.SLA.EarnedUSD, run.ExpectedEarnedUSD)
		}
		if math.Abs(r.SLA.ForfeitedUSD-float64(cfg.Hopeless)) > 1e-9 {
			t.Errorf("%s: forfeited $%.4f, want $%.4f", transport, r.SLA.ForfeitedUSD, float64(cfg.Hopeless))
		}

		// Admission rejections: every hopeless request refused, on the
		// master's counters and the ledger alike.
		if r.Rejected != cfg.Hopeless || r.SLA.Rejected != cfg.Hopeless {
			t.Errorf("%s: rejected master=%d ledger=%d, want %d", transport, r.Rejected, r.SLA.Rejected, cfg.Hopeless)
		}

		// Deferred-window behaviour: deferrable batch waited for the
		// clean window.
		if r.Deferred < 1 {
			t.Errorf("%s: no request was carbon-deferred", transport)
		}
		if r.DeferredSec <= 0 {
			t.Errorf("%s: deferral recorded no wait", transport)
		}

		// Everything admitted completed, nothing failed.
		wantDone := cfg.Warmup + cfg.Interactive + cfg.Batch
		if r.Completed != wantDone || r.Failed != 0 {
			t.Errorf("%s: completed=%d failed=%d, want %d/0", transport, r.Completed, r.Failed, wantDone)
		}
		if r.SLA.Misses != 0 {
			t.Errorf("%s: %d deadline misses on 60s deadlines", transport, r.SLA.Misses)
		}

		// Budget metering matches the master's energy attribution to
		// the last charge, and energy actually flowed (over TCP this
		// proves the share crossed the wire).
		if r.EnergyJ <= 0 {
			t.Errorf("%s: no energy attributed", transport)
		}
		if math.Abs(r.BudgetSpentJ-r.EnergyJ) > 1e-6*math.Max(1, r.EnergyJ) {
			t.Errorf("%s: budget metered %.6f J, master attributed %.6f J", transport, r.BudgetSpentJ, r.EnergyJ)
		}
		if r.CO2Grams <= 0 {
			t.Errorf("%s: no emissions attributed", transport)
		}
	}
}

// TestLiveComposedRender smoke-checks the report.
func TestLiveComposedRender(t *testing.T) {
	cfg := DefaultLiveComposedConfig()
	cfg.DirtyWindowSec = 0.15
	cfg.PollSec = 0.01
	cfg.Ops = 2e6
	res, err := RunLiveComposedStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := res.Render(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{LiveTransportInProcess, LiveTransportTCP, "Deferred", "Earned"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("render missing %q:\n%s", want, b.String())
		}
	}
}

// TestLiveComposedConfigValidation exercises the error paths.
func TestLiveComposedConfigValidation(t *testing.T) {
	for name, mutate := range map[string]func(*LiveComposedConfig){
		"no-interactive": func(c *LiveComposedConfig) { c.Interactive = 0 },
		"no-hopeless":    func(c *LiveComposedConfig) { c.Hopeless = 0 },
		"inverted-grid":  func(c *LiveComposedConfig) { c.DirtyG = c.CleanG - 1 },
		"short-defer":    func(c *LiveComposedConfig) { c.MaxDeferSec = c.DirtyWindowSec / 2 },
		"no-budget":      func(c *LiveComposedConfig) { c.BudgetJ = 0 },
	} {
		cfg := DefaultLiveComposedConfig()
		mutate(&cfg)
		if _, err := RunLiveComposedStudy(cfg); err == nil {
			t.Errorf("%s: invalid config accepted", name)
		}
	}
}

// TestLiveComposedStudyExternalPower: with PowerAddr set, the whole
// study runs its power readings through a powerd sidecar on both
// transports — the books still balance to the cent, no fallback fires
// while the sidecar is healthy, and the greensched_power_* families
// land on the shared registry.
func TestLiveComposedStudyExternalPower(t *testing.T) {
	addr := "unix:" + t.TempDir() + "/powerd.sock"
	srv, err := powerd.Serve(addr, power.StaticSource{"lean": 80, "hungry": 320}, powerd.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cfg := DefaultLiveComposedConfig()
	cfg.DirtyWindowSec = 0.2
	cfg.PollSec = 0.01
	cfg.Ops = 2e6
	cfg.PowerAddr = addr
	cfg.Registry = obs.NewRegistry()

	res, err := RunLiveComposedStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, transport := range []string{LiveTransportInProcess, LiveTransportTCP} {
		run, ok := res.Run(transport)
		if !ok {
			t.Fatalf("no %s run", transport)
		}
		if run.Result.SLA == nil || math.Abs(run.Result.SLA.EarnedUSD-run.ExpectedEarnedUSD) > 1e-9 {
			t.Errorf("%s: ledger off under external power: %+v", transport, run.Result.SLA)
		}
		st := run.PowerStats
		if st == nil {
			t.Fatalf("%s: no power stats surfaced", transport)
		}
		if st.Requests == 0 {
			t.Errorf("%s: sidecar never queried", transport)
		}
		if st.Fallbacks != 0 || st.BreakerOpen {
			t.Errorf("%s: healthy sidecar run fell back: %+v", transport, st)
		}
	}
	var sb strings.Builder
	if err := cfg.Registry.Render(&sb); err != nil {
		t.Fatal(err)
	}
	for _, family := range []string{
		`greensched_power_requests_total{transport="in-process"}`,
		`greensched_power_requests_total{transport="tcp"}`,
		`greensched_power_watts{transport="tcp",node="lean"} 80`,
	} {
		if !strings.Contains(sb.String(), family) {
			t.Errorf("missing %q on the shared registry:\n%s", family, sb.String())
		}
	}
	if err := res.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "external power") {
		t.Error("Render does not mention the external power stats")
	}
}
