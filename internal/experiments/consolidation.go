package experiments

import (
	"fmt"
	"io"

	"greensched/internal/cluster"
	"greensched/internal/consolidation"
	"greensched/internal/report"
	"greensched/internal/sched"
	"greensched/internal/sim"
	"greensched/internal/stats"
	"greensched/internal/workload"
)

// ConsolidationConfig parameterizes the related-work comparison: the
// §II-B consolidation/load-concentration baseline (Hermenier [11],
// Green Open Cloud [12]) against the paper's always-on policies, on an
// under-utilized workload — a burst, a long idle gap, then a sustained
// second phase. This is the regime §II-B motivates ("Cloud computing
// infrastructures are seldom fully utilized") and where the paper's
// §IV-C shutdowns are the answer to GreenPerf's idle-floor blind spot.
type ConsolidationConfig struct {
	Tasks       int     // tasks per phase
	TaskOps     float64 // flops per first-phase task
	GapSec      float64 // idle gap between the phases
	SecondRate  float64 // second-phase arrivals per second
	IdleTimeout float64 // controller idle threshold, seconds
	TickSec     float64 // controller cadence, seconds
	MinOn       int     // nodes always kept on
	Seed        int64
}

// DefaultConsolidationConfig returns the calibrated low-utilization
// scenario on the Table I platform.
func DefaultConsolidationConfig() ConsolidationConfig {
	return ConsolidationConfig{
		Tasks:       60,
		TaskOps:     4.5e11, // ≈50 s on a taurus core
		GapSec:      3600,   // one idle hour
		SecondRate:  0.25,   // trickle: ~1 node's worth of sustained work
		IdleTimeout: 600,    // match the paper's 10-minute planner tick
		TickSec:     60,
		MinOn:       2,
		Seed:        1,
	}
}

// ConsolidationRun is one configuration's outcome.
type ConsolidationRun struct {
	Name      string
	EnergyJ   float64
	Makespan  float64
	MeanWait  float64
	Boots     int
	Shutdowns int
}

// ConsolidationResult bundles the compared configurations.
type ConsolidationResult struct {
	Runs []ConsolidationRun // fixed order: RANDOM, POWER, CONSOLIDATION, CONSOLIDATION+GREENPERF
}

// Run returns the named configuration's outcome, or false.
func (r *ConsolidationResult) Run(name string) (ConsolidationRun, bool) {
	for _, run := range r.Runs {
		if run.Name == name {
			return run, true
		}
	}
	return ConsolidationRun{}, false
}

// RunConsolidation executes the four configurations on the identical
// arrival schedule.
func RunConsolidation(cfg ConsolidationConfig) (*ConsolidationResult, error) {
	platform := cluster.PaperPlatform()
	first, err := workload.BurstThenRate{
		Total: cfg.Tasks, Burst: cfg.Tasks, Ops: cfg.TaskOps,
	}.Tasks()
	if err != nil {
		return nil, fmt.Errorf("experiments: consolidation phase 1: %w", err)
	}
	second, err := workload.BurstThenRate{
		Total: cfg.Tasks, Burst: cfg.Tasks / 4, Rate: cfg.SecondRate, Ops: cfg.TaskOps,
	}.Tasks()
	if err != nil {
		return nil, fmt.Errorf("experiments: consolidation phase 2: %w", err)
	}
	tasks := workload.Merge(first, workload.Shift(second, cfg.GapSec))

	base := sim.Config{
		Platform: platform,
		Tasks:    tasks,
		Seed:     cfg.Seed,
	}
	managed := func(policy sched.Policy) (sim.Config, error) {
		ctl := &consolidation.Controller{
			IdleTimeout: cfg.IdleTimeout,
			MinOn:       cfg.MinOn,
		}
		if err := ctl.Validate(); err != nil {
			return sim.Config{}, err
		}
		c := base
		c.Policy = policy
		c.OnControl = ctl.Tick
		c.ControlEvery = cfg.TickSec
		return c, nil
	}

	randomCfg := base
	randomCfg.Policy = sched.New(sched.Random)
	powerCfg := base
	powerCfg.Policy = sched.New(sched.Power)
	powerCfg.Explore = true
	consCfg, err := managed(consolidation.Policy{})
	if err != nil {
		return nil, err
	}
	greenCfg, err := managed(consolidation.GreenTieBreak{})
	if err != nil {
		return nil, err
	}
	greenCfg.Explore = true // the green tie-break needs estimates

	out := &ConsolidationResult{}
	for _, c := range []sim.Config{randomCfg, powerCfg, consCfg, greenCfg} {
		res, err := sim.Run(c)
		if err != nil {
			return nil, fmt.Errorf("experiments: consolidation %s: %w", c.Policy.Name(), err)
		}
		out.Runs = append(out.Runs, ConsolidationRun{
			Name:      c.Policy.Name(),
			EnergyJ:   float64(res.EnergyJ),
			Makespan:  res.Makespan,
			MeanWait:  res.MeanWait(),
			Boots:     res.Boots,
			Shutdowns: res.Shutdowns,
		})
	}
	return out, nil
}

// Table renders the comparison.
func (r *ConsolidationResult) Table() *report.Table {
	t := &report.Table{
		Title:   "Consolidation baseline vs always-on policies (under-utilized workload)",
		Headers: []string{"Configuration", "Energy (J)", "Makespan (s)", "Mean wait (s)", "Boots", "Shutdowns"},
	}
	for _, run := range r.Runs {
		t.AddRow(run.Name,
			fmt.Sprintf("%.0f", run.EnergyJ),
			fmt.Sprintf("%.0f", run.Makespan),
			fmt.Sprintf("%.1f", run.MeanWait),
			fmt.Sprintf("%d", run.Boots),
			fmt.Sprintf("%d", run.Shutdowns),
		)
	}
	return t
}

// Render writes the table plus the headline saving of consolidation
// over the always-on POWER policy.
func (r *ConsolidationResult) Render(w io.Writer) error {
	if err := r.Table().Render(w); err != nil {
		return err
	}
	pw, ok1 := r.Run(string(sched.Power))
	cons, ok2 := r.Run(consolidation.PolicyName)
	if ok1 && ok2 {
		fmt.Fprintf(w, "\nidle shutdown saving vs always-on POWER: %.1f%% (idle gap %s)\n",
			stats.Gain(pw.EnergyJ, cons.EnergyJ)*100, "in the workload")
	}
	return nil
}
