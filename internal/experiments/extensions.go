package experiments

import (
	"fmt"
	"io"

	"greensched/internal/cluster"
	"greensched/internal/core"
	"greensched/internal/forecast"
	"greensched/internal/provision"
	"greensched/internal/report"
	"greensched/internal/sched"
	"greensched/internal/sim"
	"greensched/internal/stats"
	"greensched/internal/workload"
)

// PreferencePoint is one sample of the Eq. 6 trade-off curve.
type PreferencePoint struct {
	Pref     float64
	Makespan float64
	// EnergyJ is whole-platform energy over the makespan (includes
	// the idle floor of every node).
	EnergyJ float64
	// TaskEnergyJ is the Eq. 5-attributed energy: Σ measured mean
	// power × execution time over all tasks — the quantity the score
	// actually optimizes.
	TaskEnergyJ float64
}

// RunPreferenceSweep is an extension experiment: it sweeps
// Preference_user across the Eq. 2 range and schedules the same
// workload with the Eq. 6 score policy at each point, tracing the
// performance↔efficiency frontier the paper's preference model spans
// (Eq. 7's limits become the curve's endpoints).
func RunPreferenceSweep(steps int, seed int64) ([]PreferencePoint, error) {
	if steps < 2 {
		return nil, fmt.Errorf("experiments: sweep needs at least 2 steps")
	}
	platform := cluster.PaperPlatform()
	// Load heavy enough that queues build on the preferred servers:
	// the Eq. 4 wait term then trades off against the Eq. 5 energy
	// term and the sweep traces a real frontier.
	tasks, err := workload.BurstThenRate{Total: 500, Burst: 100, Rate: 1.0, Ops: 9.0e11}.Tasks()
	if err != nil {
		return nil, err
	}
	out := make([]PreferencePoint, 0, steps)
	for i := 0; i < steps; i++ {
		p := -0.9 + 1.8*float64(i)/float64(steps-1)
		res, err := sim.Run(sim.Config{
			Platform:    platform,
			Policy:      sched.ScorePolicy{Ops: 9.0e11, Pref: core.UserPref(p)},
			Tasks:       tasks,
			Explore:     true,
			RankAll:     true, // the score's wait term prices queueing
			QueueFactor: 4,
			Contention:  0.08,
			Seed:        seed,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: sweep P=%.2f: %w", p, err)
		}
		taskEnergy := 0.0
		for _, rec := range res.Records {
			taskEnergy += rec.MeanPowerW * rec.Exec()
		}
		out = append(out, PreferencePoint{
			Pref:        p,
			Makespan:    res.Makespan,
			EnergyJ:     res.EnergyJ,
			TaskEnergyJ: taskEnergy,
		})
	}
	return out, nil
}

// TariffResult summarizes the multi-day tariff-driven provisioning
// extension.
type TariffResult struct {
	Adaptive *sim.AdaptiveResult
	// BaselineEnergyJ is the energy of the naive alternative: the
	// whole platform powered on and saturated for the same horizon.
	BaselineEnergyJ float64
	// Saving is 1 − adaptive/baseline.
	Saving float64
}

// RunTariffDays is an extension of §IV-C: instead of four hand-placed
// events, the provisioning plan is generated from a realistic daily
// electricity tariff (regular / off-peak-1 / off-peak-2, the paper's
// three states) over several days. The planner anticipates every
// price change through its lookahead, and the result quantifies what
// tariff-following provisioning saves against an always-on platform.
func RunTariffDays(days int, seed int64) (*TariffResult, error) {
	if days <= 0 {
		return nil, fmt.Errorf("experiments: need at least one day")
	}
	horizon := float64(days) * 86400
	store := provision.NewStore()
	recs, err := forecast.PaperTariff().PlanRecords(0, horizon, 22)
	if err != nil {
		return nil, err
	}
	for _, r := range recs {
		store.Put(r)
	}
	planner := provision.NewPlanner(12, 4)
	planner.MinNodes = 2
	res, err := sim.RunAdaptive(sim.AdaptiveConfig{
		Platform:     cluster.PaperPlatform(),
		Planner:      planner,
		Store:        store,
		Policy:       sched.New(sched.GreenPerf),
		TaskOps:      1.8e12,
		Horizon:      horizon,
		SampleWindow: 3600, // hourly samples keep multi-day output readable
		Seed:         seed,
	})
	if err != nil {
		return nil, err
	}
	baseline := cluster.PaperPlatform().PeakWatts() * horizon
	return &TariffResult{
		Adaptive:        res,
		BaselineEnergyJ: baseline,
		Saving:          stats.Gain(baseline, res.EnergyJ),
	}, nil
}

// RenderExtensions writes both extension studies.
func RenderExtensions(w io.Writer, seed int64) error {
	sweep, err := RunPreferenceSweep(7, seed)
	if err != nil {
		return err
	}
	t := &report.Table{
		Title:   "Extension A. Eq. 6 preference sweep (score policy, 500 tasks)",
		Headers: []string{"Preference_user", "Makespan (s)", "Task energy (J)", "Platform energy (J)"},
	}
	for _, p := range sweep {
		t.AddRow(fmt.Sprintf("%+.2f", p.Pref),
			fmt.Sprintf("%.0f", p.Makespan),
			fmt.Sprintf("%.0f", p.TaskEnergyJ),
			fmt.Sprintf("%.0f", p.EnergyJ))
	}
	if err := t.Render(w); err != nil {
		return err
	}

	tr, err := RunTariffDays(2, seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nExtension B. Tariff-following provisioning over 2 days:\n")
	ts := &report.TimeSeries{Title: ""}
	for _, s := range tr.Adaptive.Samples {
		ts.Add(s.T, float64(s.Candidates), s.AvgW)
	}
	if err := ts.Render(w); err != nil {
		return err
	}
	if _, err = fmt.Fprintf(w, "\nadaptive energy: %.1f MJ, always-on-saturated baseline: %.1f MJ, saving: %.1f%%\n",
		tr.Adaptive.EnergyJ/1e6, tr.BaselineEnergyJ/1e6, tr.Saving*100); err != nil {
		return err
	}

	bake, err := RunBaselineBakeoff(seed)
	if err != nil {
		return err
	}
	fmt.Fprintln(w)
	if err := bake.Table().Render(w); err != nil {
		return err
	}

	hetCfg := DefaultHeterogeneityConfig()
	hetCfg.Seed = seed
	het, err := RunHeterogeneitySweep(hetCfg, []float64{0.1, 0.25, 0.5, 0.75, 1.0})
	if err != nil {
		return err
	}
	fmt.Fprintln(w)
	return het.Render(w)
}

// BaselineBakeoff extends Table II with two extra orderings: GREENPERF
// (the paper's hybrid ratio, §IV-B) and LEASTLOADED (the classical
// energy-blind queue balancer of grid meta-schedulers, §II-B). It
// situates the paper's three policies against what a plain load
// balancer already achieves and what the hybrid metric buys.
type BaselineBakeoff struct {
	Order []sched.Kind
	Runs  map[sched.Kind]*sim.Result
}

// RunBaselineBakeoff executes the five policies on the calibrated
// Table II workload.
func RunBaselineBakeoff(seed int64) (*BaselineBakeoff, error) {
	cfg := DefaultPlacementConfig()
	cfg.Seed = seed
	platform := cluster.PaperPlatform()
	total := workload.PerCore(platform.Cores(), cfg.ReqsPerCore)
	tasks, err := workload.BurstThenRate{
		Total: total, Burst: int(float64(total) * cfg.BurstFrac), Rate: cfg.Rate, Ops: cfg.TaskOps,
	}.Tasks()
	if err != nil {
		return nil, err
	}
	out := &BaselineBakeoff{
		Order: []sched.Kind{sched.Random, sched.LeastLoaded, sched.Performance, sched.GreenPerf, sched.Power},
		Runs:  make(map[sched.Kind]*sim.Result),
	}
	for _, kind := range out.Order {
		res, err := sim.Run(sim.Config{
			Platform:        platform,
			Policy:          sched.New(kind),
			Tasks:           tasks,
			Explore:         kind != sched.Random && kind != sched.LeastLoaded,
			Seed:            cfg.Seed,
			Contention:      cfg.Contention,
			ExecJitter:      cfg.ExecJitter,
			MeterNoiseW:     cfg.MeterNoise,
			EstimatorWindow: 32,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: bakeoff %s: %w", kind, err)
		}
		out.Runs[kind] = res
	}
	return out, nil
}

// Table renders the five-policy comparison.
func (b *BaselineBakeoff) Table() *report.Table {
	t := &report.Table{
		Title:   "Extension C. Five-policy bake-off on the Table II workload",
		Headers: []string{"Policy", "Makespan (s)", "Energy (J)", "Mean wait (s)"},
	}
	for _, kind := range b.Order {
		res := b.Runs[kind]
		t.AddRow(string(kind),
			fmt.Sprintf("%.0f", res.Makespan),
			fmt.Sprintf("%.0f", res.EnergyJ),
			fmt.Sprintf("%.1f", res.MeanWait()))
	}
	return t
}
