// Package experiments contains one harness per table and figure of the
// paper's evaluation (§IV): workload placement (Table II, Figures 2–5),
// the GreenPerf metric study (Figures 6–7, Table III) and adaptive
// resource provisioning (Figure 9). Each harness builds the workload,
// runs the simulator and renders the corresponding report artifacts.
package experiments

import (
	"fmt"
	"io"

	"greensched/internal/cluster"
	"greensched/internal/report"
	"greensched/internal/sched"
	"greensched/internal/sim"
	"greensched/internal/stats"
	"greensched/internal/workload"
)

// PlacementConfig parameterizes the §IV-A experiment. The defaults
// reproduce the paper's operating regime: Table I platform (12 SEDs,
// 104 cores), 10 requests per available core, a burst phase followed
// by a continuous phase, and a CPU-bound single-core task.
//
// Calibration (DESIGN.md §3): the paper's task is nominally "1e8
// successive additions" with a 2 req/s continuous phase on 2011-2015
// hardware; TaskOps and Rate here are scaled so the load factor
// (demand ≈ one cluster's worth of cores) and the ≈2,300 s makespan
// match the published regime on the simulated FLOPS calibration.
type PlacementConfig struct {
	ReqsPerCore int     // requests per available core (paper: 10)
	BurstFrac   float64 // fraction of requests submitted as the burst
	Rate        float64 // continuous-phase requests per second
	TaskOps     float64 // flops per task
	Seed        int64

	// Physical realism knobs (see sim.Config).
	Contention   float64
	ExecJitter   float64
	MeterNoise   float64
	MeterDropout float64

	// Static switches to the static (initial benchmark) estimation
	// approach; the default is the paper's dynamic approach.
	Static bool
}

// DefaultPlacementConfig returns the calibrated §IV-A setup.
func DefaultPlacementConfig() PlacementConfig {
	return PlacementConfig{
		ReqsPerCore: 10,
		BurstFrac:   0.10,
		Rate:        0.45,
		TaskOps:     9.0e11, // ≈100 s on a taurus core
		Seed:        1,
		Contention:  0.08,
		ExecJitter:  0.02,
		MeterNoise:  2,
	}
}

// PlacementResult bundles the three policy runs of §IV-A.
type PlacementResult struct {
	Platform *cluster.Platform
	Runs     map[sched.Kind]*sim.Result
}

// RunPlacement executes the experiment for the three §IV-A policies.
func RunPlacement(cfg PlacementConfig) (*PlacementResult, error) {
	platform := cluster.PaperPlatform()
	total := workload.PerCore(platform.Cores(), cfg.ReqsPerCore)
	burst := int(float64(total) * cfg.BurstFrac)
	tasks, err := workload.BurstThenRate{
		Total: total, Burst: burst, Rate: cfg.Rate, Ops: cfg.TaskOps,
	}.Tasks()
	if err != nil {
		return nil, err
	}
	out := &PlacementResult{Platform: platform, Runs: make(map[sched.Kind]*sim.Result)}
	for _, kind := range sched.Kinds() {
		res, err := sim.Run(sim.Config{
			Platform:        platform,
			Policy:          sched.New(kind),
			Tasks:           tasks,
			Explore:         kind != sched.Random,
			Static:          cfg.Static,
			Seed:            cfg.Seed,
			Contention:      cfg.Contention,
			ExecJitter:      cfg.ExecJitter,
			MeterNoiseW:     cfg.MeterNoise,
			MeterDropout:    cfg.MeterDropout,
			EstimatorWindow: 32,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: placement %s: %w", kind, err)
		}
		out.Runs[kind] = res
	}
	return out, nil
}

// Table1 renders the experimental-infrastructure table.
func (r *PlacementResult) Table1() *report.Table {
	t := &report.Table{
		Title:   "Table I. Experimental infrastructure (SED nodes)",
		Headers: []string{"Cluster", "Nodes", "Cores/node", "GFlops/core", "Idle W", "Peak W"},
	}
	for _, cl := range r.Platform.Clusters() {
		idx := r.Platform.ByCluster(cl)
		spec := r.Platform.Nodes[idx[0]]
		t.AddRow(cl,
			fmt.Sprintf("%d", len(idx)),
			fmt.Sprintf("%d", spec.Cores),
			fmt.Sprintf("%.1f", spec.FlopsPerCore/1e9),
			fmt.Sprintf("%.0f", spec.IdleW),
			fmt.Sprintf("%.0f", spec.PeakW),
		)
	}
	return t
}

// Table2 renders the §IV-A makespan/energy comparison.
func (r *PlacementResult) Table2() *report.Table {
	t := &report.Table{
		Title:   "Table II. Experimental results",
		Headers: []string{"Metric", "RANDOM", "POWER", "PERFORMANCE"},
	}
	row := func(name string, f func(*sim.Result) string) {
		t.AddRow(name,
			f(r.Runs[sched.Random]),
			f(r.Runs[sched.Power]),
			f(r.Runs[sched.Performance]),
		)
	}
	row("Makespan (s)", func(res *sim.Result) string { return fmt.Sprintf("%.0f", res.Makespan) })
	row("Energy (J)", func(res *sim.Result) string { return fmt.Sprintf("%.0f", res.EnergyJ) })
	return t
}

// Headline computes the paper's three headline ratios: the energy gain
// of POWER vs RANDOM ("25%"), the energy gain of POWER vs PERFORMANCE
// ("19%"), and the makespan loss of POWER vs PERFORMANCE ("6%").
func (r *PlacementResult) Headline() (gainVsRandom, gainVsPerf, makespanLoss float64) {
	pw := r.Runs[sched.Power]
	rd := r.Runs[sched.Random]
	pf := r.Runs[sched.Performance]
	return stats.Gain(rd.EnergyJ, pw.EnergyJ),
		stats.Gain(pf.EnergyJ, pw.EnergyJ),
		stats.Loss(pf.Makespan, pw.Makespan)
}

// TaskFigure renders the per-node task distribution for a policy —
// Figure 2 (POWER), Figure 3 (PERFORMANCE) or Figure 4 (RANDOM).
func (r *PlacementResult) TaskFigure(kind sched.Kind, title string) *report.BarChart {
	c := &report.BarChart{Title: title, Unit: " tasks"}
	for _, node := range r.Platform.Nodes {
		c.Add(node.Name, float64(r.Runs[kind].PerNodeTasks[node.Name]))
	}
	return c
}

// EnergyFigure renders Figure 5: energy per cluster for each policy.
func (r *PlacementResult) EnergyFigure() *report.BarChart {
	c := &report.BarChart{Title: "Figure 5. Energy consumption per cluster (J)", Unit: " J"}
	for _, kind := range sched.Kinds() {
		for _, cl := range r.Platform.Clusters() {
			c.Add(fmt.Sprintf("%s/%s", kind, cl), r.Runs[kind].PerClusterEnergy[cl])
		}
	}
	return c
}

// Render writes the full §IV-A report: Table I, Figures 2–5, Table II
// and the headline ratios.
func (r *PlacementResult) Render(w io.Writer) error {
	if err := r.Table1().Render(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	figs := []struct {
		kind  sched.Kind
		title string
	}{
		{sched.Power, "Figure 2. Tasks distribution using power consumption as placement criterion"},
		{sched.Performance, "Figure 3. Tasks distribution using performance as placement criterion"},
		{sched.Random, "Figure 4. Tasks distribution with random placement"},
	}
	for _, f := range figs {
		if err := r.TaskFigure(f.kind, f.title).Render(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if err := r.EnergyFigure().Render(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	if err := r.Table2().Render(w); err != nil {
		return err
	}
	gR, gP, loss := r.Headline()
	_, err := fmt.Fprintf(w,
		"\nPOWER energy gain vs RANDOM: %.1f%% (paper: 25%%)\nPOWER energy gain vs PERFORMANCE: %.1f%% (paper: up to 19%%)\nPOWER makespan loss vs PERFORMANCE: %.1f%% (paper: up to 6%%)\n",
		gR*100, gP*100, loss*100)
	return err
}
