package experiments

import (
	"bytes"
	"strings"
	"testing"

	"greensched/internal/sched"
)

func TestPreferenceSweepFrontier(t *testing.T) {
	sweep, err := RunPreferenceSweep(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep) != 5 {
		t.Fatalf("points = %d", len(sweep))
	}
	if sweep[0].Pref != -0.9 || sweep[len(sweep)-1].Pref != 0.9 {
		t.Fatalf("sweep range wrong: %v..%v", sweep[0].Pref, sweep[len(sweep)-1].Pref)
	}
	first, last := sweep[0], sweep[len(sweep)-1]
	// Eq. 7's limits: the performance end must be at least as fast,
	// the efficiency end leaner in the Eq. 5-attributed task energy
	// (whole-platform energy also pays the idle floor over the longer
	// makespan, so the per-task attribution is the score's target).
	if last.Makespan < first.Makespan {
		t.Errorf("P=+0.9 makespan %.0f faster than P=-0.9 %.0f", last.Makespan, first.Makespan)
	}
	if last.TaskEnergyJ > first.TaskEnergyJ {
		t.Errorf("P=+0.9 task energy %.0f above P=-0.9 %.0f", last.TaskEnergyJ, first.TaskEnergyJ)
	}
	// The frontier actually moves (the knob does something).
	if first.TaskEnergyJ == last.TaskEnergyJ && first.Makespan == last.Makespan {
		t.Error("preference sweep is flat")
	}
	if _, err := RunPreferenceSweep(1, 1); err == nil {
		t.Fatal("single-step sweep accepted")
	}
}

func TestTariffDaysProvisioningSaves(t *testing.T) {
	res, err := RunTariffDays(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Adaptive.Completed == 0 {
		t.Fatal("no work done")
	}
	// Tariff-following provisioning must beat the always-on-saturated
	// baseline by a wide margin.
	if res.Saving < 0.2 {
		t.Fatalf("saving = %.1f%%, want ≥20%%", res.Saving*100)
	}
	// The pool must visibly follow the tariff: hold the full platform
	// during off-peak-2 (02-08h) and shrink during regular hours.
	var offPeakMax, regularMin = 0, 99
	for _, s := range res.Adaptive.Samples {
		hour := s.T / 3600
		if hour > 4 && hour <= 7 { // deep off-peak, after ramp
			if s.Candidates > offPeakMax {
				offPeakMax = s.Candidates
			}
		}
		if hour > 12 && hour <= 20 { // regular tariff, after drain
			if s.Candidates < regularMin {
				regularMin = s.Candidates
			}
		}
	}
	if offPeakMax != 12 {
		t.Errorf("off-peak pool max = %d, want full platform", offPeakMax)
	}
	if regularMin > 4 {
		t.Errorf("regular-hours pool min = %d, want ≤4", regularMin)
	}
	if _, err := RunTariffDays(0, 1); err == nil {
		t.Fatal("zero days accepted")
	}
}

func TestRenderExtensions(t *testing.T) {
	var b strings.Builder
	if err := RenderExtensions(&b, 1); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"Extension A.", "Preference_user", "+0.90", "-0.90",
		"Extension B.", "always-on-saturated baseline", "saving:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("extensions report missing %q", want)
		}
	}
}

func TestBaselineBakeoffShape(t *testing.T) {
	bake, err := RunBaselineBakeoff(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(bake.Runs) != 5 {
		t.Fatalf("got %d runs, want 5", len(bake.Runs))
	}
	pw := bake.Runs[sched.Power]
	ll := bake.Runs[sched.LeastLoaded]
	gp := bake.Runs[sched.GreenPerf]
	rd := bake.Runs[sched.Random]
	// The energy-blind queue balancer must not beat the energy-aware
	// policies on energy; POWER bounds the energy side.
	if pw.EnergyJ >= ll.EnergyJ {
		t.Errorf("POWER energy %.0f not below LEASTLOADED %.0f", pw.EnergyJ, ll.EnergyJ)
	}
	if gp.EnergyJ >= rd.EnergyJ {
		t.Errorf("GREENPERF energy %.0f not below RANDOM %.0f", gp.EnergyJ, rd.EnergyJ)
	}
	// Every policy completes the same task count in the same regime.
	for kind, res := range bake.Runs {
		if res.Makespan < 1500 || res.Makespan > 3500 {
			t.Errorf("%s makespan %.0f outside the §IV-A regime", kind, res.Makespan)
		}
	}
}

func TestBaselineBakeoffTable(t *testing.T) {
	bake, err := RunBaselineBakeoff(1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := bake.Table().Render(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"LEASTLOADED", "GREENPERF", "RANDOM"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("bakeoff table missing %q", want)
		}
	}
}
