package experiments

import (
	"bytes"
	"strings"
	"testing"

	"greensched/internal/cluster"
)

func TestSyntheticPlatformSpreadZeroIsHomogeneous(t *testing.T) {
	p, err := cluster.SyntheticPlatform(4, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if idx := p.HeterogeneityIndex(); idx != 0 {
		t.Errorf("spread 0: heterogeneity index %v, want 0", idx)
	}
}

func TestSyntheticPlatformIndexGrowsWithSpread(t *testing.T) {
	prev := -1.0
	for _, s := range []float64{0.1, 0.3, 0.6, 1.0} {
		p, err := cluster.SyntheticPlatform(4, 2, s)
		if err != nil {
			t.Fatal(err)
		}
		idx := p.HeterogeneityIndex()
		if idx <= prev {
			t.Errorf("heterogeneity index not increasing at spread %v: %v <= %v", s, idx, prev)
		}
		prev = idx
	}
}

func TestSyntheticPlatformValidation(t *testing.T) {
	cases := []struct {
		types, per int
		spread     float64
	}{
		{1, 2, 0.5},
		{4, 0, 0.5},
		{4, 2, -0.1},
		{4, 2, 1.5},
	}
	for _, c := range cases {
		if _, err := cluster.SyntheticPlatform(c.types, c.per, c.spread); err == nil {
			t.Errorf("SyntheticPlatform(%d,%d,%v) must error", c.types, c.per, c.spread)
		}
	}
	// Every generated spec must survive platform validation at the
	// extremes.
	for _, s := range []float64{0, 1} {
		if _, err := cluster.SyntheticPlatform(4, 3, s); err != nil {
			t.Errorf("spread %v: %v", s, err)
		}
	}
}

func TestHeterogeneitySweepTradeoffSpaceGrows(t *testing.T) {
	res, err := RunHeterogeneitySweep(DefaultHeterogeneityConfig(), []float64{0.1, 0.5, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("points = %d, want 3", len(res.Points))
	}
	first, last := res.Points[0], res.Points[len(res.Points)-1]
	// Figure 6 vs Figure 7, generalized: the trade-off space must be
	// several times wider at the diverse end than at the homogeneous
	// end, and the fitted trend must be strongly positive.
	if last.EnergySpread < 3*first.EnergySpread {
		t.Errorf("energy spread grew only %0.1f%% → %0.1f%%", first.EnergySpread, last.EnergySpread)
	}
	if res.Fit.Slope <= 0 {
		t.Errorf("fitted slope %v, want positive", res.Fit.Slope)
	}
	if res.Fit.R2 < 0.6 {
		t.Errorf("fit R² = %v, want ≥ 0.6", res.Fit.R2)
	}
	// At high heterogeneity GP must offer a genuinely good trade-off.
	if last.Quality > 0.4 {
		t.Errorf("GP tradeoff quality at spread 1.0 = %v, want ≤ 0.4", last.Quality)
	}
}

func TestHeterogeneitySweepValidation(t *testing.T) {
	if _, err := RunHeterogeneitySweep(DefaultHeterogeneityConfig(), []float64{0.5}); err == nil {
		t.Error("single level must error")
	}
	if _, err := RunHeterogeneitySweep(DefaultHeterogeneityConfig(), []float64{0, 0.5}); err == nil {
		t.Error("zero spread must error")
	}
}

func TestHeterogeneitySweepRender(t *testing.T) {
	res, err := RunHeterogeneitySweep(DefaultHeterogeneityConfig(), []float64{0.2, 0.8})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Heterogeneity continuum", "het-index", "R²"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("render missing %q", want)
		}
	}
}
