package experiments

import (
	"bytes"
	"strings"
	"testing"

	"greensched/internal/consolidation"
	"greensched/internal/sched"
)

func fastConsolidation() ConsolidationConfig {
	cfg := DefaultConsolidationConfig()
	cfg.Tasks = 24
	cfg.GapSec = 1800
	return cfg
}

func TestConsolidationRunsAllConfigurations(t *testing.T) {
	res, err := RunConsolidation(fastConsolidation())
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		string(sched.Random),
		string(sched.Power),
		consolidation.PolicyName,
		"CONSOLIDATION+GREENPERF",
	}
	if len(res.Runs) != len(want) {
		t.Fatalf("got %d runs, want %d", len(res.Runs), len(want))
	}
	for i, name := range want {
		if res.Runs[i].Name != name {
			t.Errorf("run %d = %s, want %s", i, res.Runs[i].Name, name)
		}
		if res.Runs[i].EnergyJ <= 0 || res.Runs[i].Makespan <= 0 {
			t.Errorf("%s: non-positive energy/makespan: %+v", name, res.Runs[i])
		}
	}
}

func TestConsolidationSavesEnergyOnIdleGap(t *testing.T) {
	res, err := RunConsolidation(fastConsolidation())
	if err != nil {
		t.Fatal(err)
	}
	pw, _ := res.Run(string(sched.Power))
	rd, _ := res.Run(string(sched.Random))
	cons, _ := res.Run(consolidation.PolicyName)
	// The managed configuration must beat both always-on policies on
	// this under-utilized workload: the idle gap dominates the bill.
	if cons.EnergyJ >= pw.EnergyJ {
		t.Errorf("consolidation %.0f J not below always-on POWER %.0f J", cons.EnergyJ, pw.EnergyJ)
	}
	if cons.EnergyJ >= rd.EnergyJ {
		t.Errorf("consolidation %.0f J not below always-on RANDOM %.0f J", cons.EnergyJ, rd.EnergyJ)
	}
	if cons.Shutdowns == 0 {
		t.Error("managed run never shut a node down")
	}
}

func TestConsolidationGreenTieBreakNotWorse(t *testing.T) {
	res, err := RunConsolidation(fastConsolidation())
	if err != nil {
		t.Fatal(err)
	}
	cons, _ := res.Run(consolidation.PolicyName)
	green, _ := res.Run("CONSOLIDATION+GREENPERF")
	// Concentrating onto efficient nodes should not burn more energy
	// than name-ordered concentration; allow a small tolerance for
	// learning-phase noise.
	if green.EnergyJ > cons.EnergyJ*1.10 {
		t.Errorf("green tie-break %.0f J much worse than plain consolidation %.0f J",
			green.EnergyJ, cons.EnergyJ)
	}
}

func TestConsolidationDeterministic(t *testing.T) {
	a, err := RunConsolidation(fastConsolidation())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunConsolidation(fastConsolidation())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Runs {
		if a.Runs[i] != b.Runs[i] {
			t.Errorf("run %s not deterministic: %+v vs %+v",
				a.Runs[i].Name, a.Runs[i], b.Runs[i])
		}
	}
}

func TestConsolidationRender(t *testing.T) {
	res, err := RunConsolidation(fastConsolidation())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"CONSOLIDATION", "idle shutdown saving", "Boots"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
