package experiments

import (
	"bytes"
	"strings"
	"testing"

	"greensched/internal/sched"
)

// fastReplication shrinks the workload so multi-seed runs stay quick
// while preserving the load regime (same burst fraction and rate).
func fastReplication(seeds int) ReplicationConfig {
	cfg := DefaultReplicationConfig()
	cfg.Seeds = seeds
	cfg.Base.ReqsPerCore = 3
	return cfg
}

func TestReplicationValidation(t *testing.T) {
	cfg := fastReplication(1)
	if _, err := RunReplication(cfg); err == nil {
		t.Error("1 seed must be rejected")
	}
	cfg = fastReplication(2)
	cfg.Confidence = 1.2
	if _, err := RunReplication(cfg); err == nil {
		t.Error("confidence outside (0,1) must be rejected")
	}
}

func TestReplicationSeriesShape(t *testing.T) {
	cfg := fastReplication(3)
	res, err := RunReplication(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 3 {
		t.Fatalf("got %d seeds, want 3", len(res.Seeds))
	}
	for _, kind := range sched.Kinds() {
		if len(res.Makespan[kind]) != 3 || len(res.Energy[kind]) != 3 {
			t.Errorf("%s: series lengths %d/%d, want 3/3",
				kind, len(res.Makespan[kind]), len(res.Energy[kind]))
		}
		for i, e := range res.Energy[kind] {
			if e <= 0 {
				t.Errorf("%s seed %d: energy %v not positive", kind, res.Seeds[i], e)
			}
		}
	}
	if len(res.GainVsRandom) != 3 || len(res.GainVsPerf) != 3 || len(res.Loss) != 3 {
		t.Error("headline series must have one entry per seed")
	}
}

func TestReplicationSeedsDiffer(t *testing.T) {
	// Different seeds must actually produce different runs — otherwise
	// the CIs silently collapse and mean nothing.
	res, err := RunReplication(fastReplication(3))
	if err != nil {
		t.Fatal(err)
	}
	series := res.Energy[sched.Random]
	if series[0] == series[1] && series[1] == series[2] {
		t.Errorf("RANDOM energy identical across seeds: %v", series)
	}
}

func TestReplicationDeterministicForSameSeeds(t *testing.T) {
	a, err := RunReplication(fastReplication(2))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunReplication(fastReplication(2))
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range sched.Kinds() {
		for i := range a.Energy[kind] {
			if a.Energy[kind][i] != b.Energy[kind][i] {
				t.Errorf("%s seed %d: %v != %v (not deterministic)",
					kind, a.Seeds[i], a.Energy[kind][i], b.Energy[kind][i])
			}
		}
	}
}

func TestReplicationPaperShapeHolds(t *testing.T) {
	// At the calibrated load the paper's orderings must hold for every
	// seed, not just the default one. Use a moderate size to keep CI
	// time in check but the regime realistic.
	cfg := DefaultReplicationConfig()
	cfg.Seeds = 3
	cfg.Base.ReqsPerCore = 5
	res, err := RunReplication(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.ShapeViolations() {
		t.Errorf("seed %d: %s", v.Seed, v.Rule)
	}
	gR, _, _, err := res.HeadlineSummaries()
	if err != nil {
		t.Fatal(err)
	}
	if gR.Mean < 0.10 || gR.Mean > 0.40 {
		t.Errorf("mean POWER-vs-RANDOM gain %.3f far from the paper's 0.25 regime", gR.Mean)
	}
}

func TestReplicationSignificance(t *testing.T) {
	res, err := RunReplication(fastReplication(4))
	if err != nil {
		t.Fatal(err)
	}
	vsRandom, _, err := res.EnergySignificance()
	if err != nil {
		t.Fatal(err)
	}
	// POWER saves energy vs RANDOM: negative t (mean(POWER) < mean(RANDOM)).
	if vsRandom.T >= 0 {
		t.Errorf("expected negative t for POWER vs RANDOM energy, got %v", vsRandom.T)
	}
	if vsRandom.P > 0.05 {
		t.Errorf("POWER vs RANDOM separation not significant: p=%v", vsRandom.P)
	}
}

func TestReplicationRender(t *testing.T) {
	res, err := RunReplication(fastReplication(3))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Table II replicated over 3 seeds",
		"POWER energy gain vs RANDOM",
		"Welch t-test",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render output missing %q:\n%s", want, out)
		}
	}
}
