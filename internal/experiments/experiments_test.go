package experiments

import (
	"strings"
	"testing"

	"greensched/internal/cluster"
	"greensched/internal/sched"
)

// The placement experiment is the paper's headline result; run it once
// and share across assertions.
var placementOnce *PlacementResult

func placement(t *testing.T) *PlacementResult {
	t.Helper()
	if placementOnce == nil {
		res, err := RunPlacement(DefaultPlacementConfig())
		if err != nil {
			t.Fatal(err)
		}
		placementOnce = res
	}
	return placementOnce
}

func TestTable2ShapeMatchesPaper(t *testing.T) {
	r := placement(t)
	rd := r.Runs[sched.Random]
	pw := r.Runs[sched.Power]
	pf := r.Runs[sched.Performance]

	// Energy ordering: POWER < PERFORMANCE < RANDOM.
	if !(pw.EnergyJ < pf.EnergyJ && pf.EnergyJ < rd.EnergyJ) {
		t.Fatalf("energy ordering wrong: POWER=%.0f PERFORMANCE=%.0f RANDOM=%.0f",
			pw.EnergyJ, pf.EnergyJ, rd.EnergyJ)
	}
	// Makespan ordering: PERFORMANCE < POWER < RANDOM.
	if !(pf.Makespan < pw.Makespan && pw.Makespan < rd.Makespan) {
		t.Fatalf("makespan ordering wrong: PERFORMANCE=%.0f POWER=%.0f RANDOM=%.0f",
			pf.Makespan, pw.Makespan, rd.Makespan)
	}

	gainRandom, gainPerf, loss := r.Headline()
	// Paper: 25% energy gain vs RANDOM; accept the same regime.
	if gainRandom < 0.15 || gainRandom > 0.35 {
		t.Errorf("energy gain vs RANDOM = %.1f%%, want ≈25%% (15-35%%)", gainRandom*100)
	}
	// Paper: up to 19% vs PERFORMANCE.
	if gainPerf < 0.08 || gainPerf > 0.25 {
		t.Errorf("energy gain vs PERFORMANCE = %.1f%%, want ≈19%% (8-25%%)", gainPerf*100)
	}
	// Paper: performance loss of up to 6%.
	if loss < 0 || loss > 0.06 {
		t.Errorf("makespan loss = %.1f%%, want (0,6%%]", loss*100)
	}
	// Makespans land in the paper's regime (≈2,200-2,400 s).
	for kind, res := range r.Runs {
		if res.Makespan < 1800 || res.Makespan > 2800 {
			t.Errorf("%s makespan %.0f outside the paper regime", kind, res.Makespan)
		}
	}
}

func TestFigure2PowerPrefersTaurus(t *testing.T) {
	r := placement(t)
	res := r.Runs[sched.Power]
	taurus := res.PerClusterTasks["taurus"]
	orion := res.PerClusterTasks["orion"]
	sag := res.PerClusterTasks["sagittaire"]
	if !(taurus > orion && orion > sag) {
		t.Fatalf("POWER distribution: taurus=%d orion=%d sagittaire=%d, want taurus-dominant", taurus, orion, sag)
	}
	// "Most jobs are computed by Taurus nodes".
	if float64(taurus) < 0.6*float64(res.Completed) {
		t.Errorf("taurus share %.0f%%, want majority", 100*float64(taurus)/float64(res.Completed))
	}
	// Learning phase: every node computed at least one task.
	for _, n := range r.Platform.Nodes {
		if res.PerNodeTasks[n.Name] == 0 {
			t.Errorf("node %s never used (learning phase missing)", n.Name)
		}
	}
}

func TestFigure3PerformancePrefersOrion(t *testing.T) {
	r := placement(t)
	res := r.Runs[sched.Performance]
	if res.PerClusterTasks["orion"] <= res.PerClusterTasks["taurus"] {
		t.Fatalf("PERFORMANCE should prefer orion: %v", res.PerClusterTasks)
	}
	if float64(res.PerClusterTasks["orion"]) < 0.6*float64(res.Completed) {
		t.Error("orion should execute the majority under PERFORMANCE")
	}
}

func TestFigure4RandomUsesEverythingSagittaireLeast(t *testing.T) {
	r := placement(t)
	res := r.Runs[sched.Random]
	for _, n := range r.Platform.Nodes {
		if res.PerNodeTasks[n.Name] == 0 {
			t.Errorf("RANDOM left node %s unused", n.Name)
		}
	}
	// "Sagittaire nodes compute less tasks than other nodes" (slower,
	// less frequently available).
	sagPerNode := float64(res.PerClusterTasks["sagittaire"]) / 4
	taurusPerNode := float64(res.PerClusterTasks["taurus"]) / 4
	if sagPerNode >= taurusPerNode {
		t.Fatalf("sagittaire per-node count %.0f should be lowest (taurus %.0f)", sagPerNode, taurusPerNode)
	}
}

func TestFigure5ClusterEnergyShape(t *testing.T) {
	r := placement(t)
	// RANDOM keeps all clusters active: each cluster burns more under
	// RANDOM than under the policy that avoids it.
	rd := r.Runs[sched.Random].PerClusterEnergy
	pw := r.Runs[sched.Power].PerClusterEnergy
	if rd["orion"] <= pw["orion"] {
		t.Errorf("orion energy under RANDOM (%.0f) should exceed POWER (%.0f)", rd["orion"], pw["orion"])
	}
	if rd["sagittaire"] <= pw["sagittaire"] {
		t.Errorf("sagittaire energy under RANDOM should exceed POWER")
	}
	// Every cluster consumed something (idle floor) under every policy.
	for kind, run := range r.Runs {
		for _, cl := range r.Platform.Clusters() {
			if run.PerClusterEnergy[cl] <= 0 {
				t.Errorf("%s: cluster %s has no energy", kind, cl)
			}
		}
	}
}

func TestPlacementRenderArtifacts(t *testing.T) {
	r := placement(t)
	var b strings.Builder
	if err := r.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"Table I.", "Table II.", "Figure 2.", "Figure 3.", "Figure 4.", "Figure 5.",
		"Makespan (s)", "Energy (J)", "POWER energy gain vs RANDOM",
		"taurus-0", "orion-3", "sagittaire-2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("placement report missing %q", want)
		}
	}
}

func TestPlacementStaticAblationStillGreen(t *testing.T) {
	cfg := DefaultPlacementConfig()
	cfg.Static = true
	cfg.ReqsPerCore = 3 // keep the ablation quick
	res, err := RunPlacement(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs[sched.Power].EnergyJ >= res.Runs[sched.Random].EnergyJ {
		t.Error("static POWER should still beat RANDOM on energy")
	}
}

func TestMetricStudyLowHeterogeneity(t *testing.T) {
	res, err := RunMetricStudy(DefaultMetricConfig(), cluster.LowHeterogeneityPlatform())
	if err != nil {
		t.Fatal(err)
	}
	g, gp, p := res.Point("G"), res.Point("GP"), res.Point("P")
	if g == nil || gp == nil || p == nil {
		t.Fatal("missing points")
	}
	// Figure 6's message: with two similar server types GP collapses
	// onto G — the ratio cannot trade anything off.
	if gp.EnergyJ != g.EnergyJ || gp.Makespan != g.Makespan {
		t.Errorf("low heterogeneity: GP (%.0f,%.0f) should coincide with G (%.0f,%.0f)",
			gp.Makespan, gp.EnergyJ, g.Makespan, g.EnergyJ)
	}
	// P pays more energy for (at best) marginal time gains.
	if p.EnergyJ <= gp.EnergyJ {
		t.Error("PERFORMANCE should cost more energy than GP")
	}
}

func TestMetricStudyHighHeterogeneity(t *testing.T) {
	res, err := RunMetricStudy(DefaultMetricConfig(), cluster.HighHeterogeneityPlatform())
	if err != nil {
		t.Fatal(err)
	}
	g, gp, p := res.Point("G"), res.Point("GP"), res.Point("P")
	// Figure 7's message: GP achieves "a better tradeoff between POWER
	// and PERFORMANCE" — faster than G, greener than P.
	if gp.Makespan >= g.Makespan {
		t.Errorf("GP makespan %.0f should beat G %.0f (G wastes time on slow cheap nodes)",
			gp.Makespan, g.Makespan)
	}
	if gp.EnergyJ >= p.EnergyJ {
		t.Errorf("GP energy %.0f should beat P %.0f", gp.EnergyJ, p.EnergyJ)
	}
	if q := res.TradeoffQuality(); q > 0.5 {
		t.Errorf("tradeoff quality %.2f, want ≤0.5 (closer to ideal corner)", q)
	}
	// GP must not be dominated by the RANDOM envelope's best corner.
	if res.Random.Contains(gp.Makespan, gp.EnergyJ) &&
		gp.EnergyJ > res.Random.MinY && gp.Makespan > res.Random.MinX {
		t.Log("note: GP inside RANDOM envelope (acceptable but unusual)")
	}
}

func TestMetricStudyValidation(t *testing.T) {
	if _, err := RunMetricStudy(MetricConfig{}, cluster.LowHeterogeneityPlatform()); err == nil {
		t.Fatal("zero config accepted")
	}
}

func TestTable3MatchesPaper(t *testing.T) {
	var b strings.Builder
	if err := Table3().Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Table III.", "sim1", "190", "230", "sim2", "160"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table III missing %q:\n%s", want, out)
		}
	}
}

func TestRenderMetricStudy(t *testing.T) {
	cfg := DefaultMetricConfig()
	cfg.TasksPerClient = 20
	cfg.RandomRuns = 4
	var b strings.Builder
	if err := RenderMetricStudy(cfg, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Figure 6.", "Figure 7.", "Table III.", "GP tradeoff quality"} {
		if !strings.Contains(out, want) {
			t.Errorf("metric report missing %q", want)
		}
	}
}

func TestAdaptiveHarness(t *testing.T) {
	res, err := RunAdaptive(DefaultAdaptiveConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) != 26 {
		t.Fatalf("samples = %d, want 26", len(res.Samples))
	}
	// Candidate trajectory summary: starts at 4, reaches 12, drops to
	// 2, recovers.
	seen12, seen2After12, recovered := false, false, false
	for _, s := range res.Samples {
		if s.Candidates == 12 {
			seen12 = true
		}
		if seen12 && s.Candidates == 2 {
			seen2After12 = true
		}
		if seen2After12 && s.Candidates > 2 {
			recovered = true
		}
	}
	if !seen12 || !seen2After12 || !recovered {
		t.Fatalf("candidate trajectory wrong: 12=%v 2-after=%v recovered=%v", seen12, seen2After12, recovered)
	}
}

func TestRenderAdaptive(t *testing.T) {
	cfg := DefaultAdaptiveConfig()
	var b strings.Builder
	if err := RenderAdaptive(cfg, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"Figure 8.", "<timestamp value=", "<electricity_cost>", "Figure 9.",
		"avg power (W)", "mean drain lag",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("adaptive report missing %q", want)
		}
	}
}

func TestFigure8SampleSchema(t *testing.T) {
	store := PaperEventTimeline()
	xml, err := Figure8(store, 60*60)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"<temperature>", "<electricity_cost>0.8</electricity_cost>"} {
		if !strings.Contains(xml, want) {
			t.Errorf("Figure 8 sample missing %q:\n%s", want, xml)
		}
	}
	if _, err := Figure8(store, -5); err == nil {
		t.Fatal("before-first-record timestamp accepted")
	}
}
