package experiments

import (
	"strings"
	"testing"
)

// TestPreemptionStudyAcceptance is the tentpole's acceptance check on
// the identical saturated scenario: the preemption-enabled run must
// earn strictly more net revenue than the express-boot-only baseline
// at no more energy, without breaking a single victim's deadline.
func TestPreemptionStudyAcceptance(t *testing.T) {
	cfg := DefaultPreemptionConfig()
	res, err := RunPreemptionStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	boot, ok1 := res.Run(PreemptRunExpressBoot)
	pre, ok2 := res.Run(PreemptRunPreemption)
	if !ok1 || !ok2 {
		t.Fatalf("missing runs: %+v", res.Runs)
	}

	// The headline: strictly more net dollars at no more energy.
	if pre.NetUSD() <= boot.NetUSD() {
		t.Errorf("preemption net $%.2f not strictly above express-boot $%.2f",
			pre.NetUSD(), boot.NetUSD())
	}
	if pre.EnergyJ > boot.EnergyJ {
		t.Errorf("preemption energy %.0f J exceeds express-boot %.0f J", pre.EnergyJ, boot.EnergyJ)
	}
	// Preemption must actually have happened, and never at a victim's
	// expense.
	if pre.Preemptions == 0 {
		t.Error("preemption run never preempted")
	}
	if pre.VictimMisses != 0 || boot.VictimMisses != 0 {
		t.Errorf("victim deadline breaches: preemption %d, baseline %d; want 0",
			pre.VictimMisses, boot.VictimMisses)
	}
	// The baseline's failure mode is real: express boots fire yet
	// deadlines still slip — queued work cannot migrate to the fresh
	// node.
	if boot.Boots == 0 {
		t.Error("baseline never express-booted; the scenario lost its contrast")
	}
	if boot.Misses == 0 {
		t.Error("baseline missed nothing; the scenario lost its contrast")
	}
	if pre.Misses >= boot.Misses {
		t.Errorf("preemption misses %d not below baseline %d", pre.Misses, boot.Misses)
	}
	// Checkpoints are not free: the restart penalty redid some work.
	if pre.RedoneOps <= 0 {
		t.Error("restart penalty redid no work despite preemptions")
	}
}

// TestPreemptionStudyPerfectCheckpoint: with a zero restart penalty no
// work is redone, and the revenue claim still holds.
func TestPreemptionStudyPerfectCheckpoint(t *testing.T) {
	cfg := DefaultPreemptionConfig()
	cfg.RestartPenaltyFrac = 0
	res, err := RunPreemptionStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	boot, _ := res.Run(PreemptRunExpressBoot)
	pre, _ := res.Run(PreemptRunPreemption)
	if pre.RedoneOps != 0 {
		t.Errorf("perfect checkpoint redid %v ops", pre.RedoneOps)
	}
	if pre.NetUSD() <= boot.NetUSD() || pre.EnergyJ > boot.EnergyJ {
		t.Errorf("perfect checkpoint lost the claim: net $%.2f vs $%.2f, energy %.0f vs %.0f J",
			pre.NetUSD(), boot.NetUSD(), pre.EnergyJ, boot.EnergyJ)
	}
}

func TestPreemptionStudyRender(t *testing.T) {
	res, err := RunPreemptionStudy(DefaultPreemptionConfig())
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := res.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{PreemptRunExpressBoot, PreemptRunPreemption,
		"Victim misses", "Preempts", "recovers"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestPreemptionConfigValidate(t *testing.T) {
	bad := DefaultPreemptionConfig()
	bad.MinOn = bad.Nodes
	if _, err := RunPreemptionStudy(bad); err == nil {
		t.Error("MinOn leaving no dark node accepted")
	}
	bad = DefaultPreemptionConfig()
	bad.BatchTasks = 0
	if _, err := RunPreemptionStudy(bad); err == nil {
		t.Error("zero batch accepted")
	}
	bad = DefaultPreemptionConfig()
	bad.RestartPenaltyFrac = 1.5
	if _, err := RunPreemptionStudy(bad); err == nil {
		t.Error("restart penalty above 1 accepted")
	}
	bad = DefaultPreemptionConfig()
	bad.DeadlineSlackSec = 0
	if _, err := RunPreemptionStudy(bad); err == nil {
		t.Error("zero slack guard accepted")
	}
}
