package experiments

import (
	"strings"
	"testing"
)

// TestComposedStudyAcceptance is the module stack's acceptance check:
// carbon accounting, the full SLA machinery, checkpoint/restart
// preemption, the carbon-window controller and the budget tracker run
// as ONE stack, and every subsystem's own invariant still holds in the
// composition.
func TestComposedStudyAcceptance(t *testing.T) {
	cfg := DefaultComposedConfig()
	res, err := RunComposedStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	blind, ok1 := res.Run(ComposedRunBlind)
	full, ok2 := res.Run(ComposedRunFull)
	if !ok1 || !ok2 {
		t.Fatalf("missing runs: %+v", res.Runs)
	}

	// Preemption engaged — and never at a victim's expense: zero
	// completions that were displaced and then missed their own
	// deadline.
	if full.Preemptions == 0 {
		t.Error("composed run never preempted; the scenario lost its collision")
	}
	if full.VictimMisses != 0 {
		t.Errorf("composed run broke %d victim deadlines; want 0", full.VictimMisses)
	}
	if full.RedoneOps <= 0 {
		t.Error("restart penalty redid no work despite preemptions")
	}

	// Carbon windows worked under the full stack: a decisive CO2 cut
	// below the carbon-blind baseline.
	if full.CO2Grams >= 0.8*blind.CO2Grams {
		t.Errorf("composed CO2 %.0f g not measurably below carbon-blind %.0f g", full.CO2Grams, blind.CO2Grams)
	}
	if full.Makespan > cfg.SLA.MakespanBound() {
		t.Errorf("composed makespan %.0f s exceeds bound %.0f s", full.Makespan, cfg.SLA.MakespanBound())
	}

	// Budget metering is exact: the tracker's charges equal the sum of
	// per-task energy shares, charge for charge (same addition order),
	// and stayed inside the configured budget.
	if full.BudgetSpentJ <= 0 {
		t.Error("budget tracker metered nothing")
	}
	if full.BudgetSpentJ != full.TaskShareJ {
		t.Errorf("budget charges %.6f J diverge from task energy shares %.6f J",
			full.BudgetSpentJ, full.TaskShareJ)
	}
	if full.BudgetSpentJ > cfg.BudgetJ {
		t.Errorf("run burned %.0f J against a %.0f J budget", full.BudgetSpentJ, cfg.BudgetJ)
	}

	// The SLA machinery held inside the composition: admission refused
	// exactly the hopeless tasks, deadline outcomes beat the blind
	// baseline decisively, and the stack earned more net dollars.
	if full.Rejected != cfg.SLA.HopelessTasks || blind.Rejected != 0 {
		t.Errorf("rejections: composed %d (want %d), blind %d (want 0)",
			full.Rejected, cfg.SLA.HopelessTasks, blind.Rejected)
	}
	if full.Misses*2 >= blind.Misses {
		t.Errorf("composed misses %d not well below blind %d", full.Misses, blind.Misses)
	}
	if full.NetUSD() <= blind.NetUSD() {
		t.Errorf("composed net $%.2f not above blind $%.2f", full.NetUSD(), blind.NetUSD())
	}
}

// TestComposedStudyDeterminism: the full five-module stack replays
// byte-identically for a fixed seed.
func TestComposedStudyDeterminism(t *testing.T) {
	a, err := RunComposedStudy(DefaultComposedConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunComposedStudy(DefaultComposedConfig())
	if err != nil {
		t.Fatal(err)
	}
	fa, _ := a.Run(ComposedRunFull)
	fb, _ := b.Run(ComposedRunFull)
	if fa != fb {
		t.Fatalf("composed run not deterministic:\n%+v\n%+v", fa, fb)
	}
}

func TestComposedStudyRender(t *testing.T) {
	res, err := RunComposedStudy(DefaultComposedConfig())
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := res.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{ComposedRunBlind, ComposedRunFull,
		"Victim misses", "Budget", "stacks carbon + SLA + preemption + budget", "metered"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestComposedConfigValidate(t *testing.T) {
	bad := DefaultComposedConfig()
	bad.InteractiveRelSec = 0
	if _, err := RunComposedStudy(bad); err == nil {
		t.Error("zero interactive deadline accepted")
	}
	bad = DefaultComposedConfig()
	bad.BudgetJ = 0
	if _, err := RunComposedStudy(bad); err == nil {
		t.Error("zero budget accepted")
	}
	bad = DefaultComposedConfig()
	bad.RestartPenaltyFrac = 2
	if _, err := RunComposedStudy(bad); err == nil {
		t.Error("restart penalty above 1 accepted")
	}
	bad = DefaultComposedConfig()
	bad.SLA.BatchTasks = 0
	if _, err := RunComposedStudy(bad); err == nil {
		t.Error("invalid underlying SLA scenario accepted")
	}
}
