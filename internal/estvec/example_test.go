package estvec_test

import (
	"fmt"

	"greensched/internal/estvec"
)

// ExampleVector shows a SED populating the paper's energy tags and an
// agent sorting responses by them.
func ExampleVector() {
	taurus := estvec.New("taurus-0").
		Set(estvec.TagFlops, 9.0e9).
		Set(estvec.TagPowerW, 151).
		Set(estvec.TagGreenPerf, 151/9.0e9)
	orion := estvec.New("orion-0").
		Set(estvec.TagFlops, 9.6e9).
		Set(estvec.TagPowerW, 339).
		Set(estvec.TagGreenPerf, 339/9.6e9)

	list := estvec.List{orion, taurus}
	list.SortStable(estvec.ByTagAsc(estvec.TagGreenPerf, estvec.ByServerName))
	for _, v := range list {
		fmt.Println(v.Server)
	}
	// Output:
	// taurus-0
	// orion-0
}

// ExampleMergeSorted is the hierarchical aggregation step: two Local
// Agents' sorted lists merge into the Master Agent's candidate list.
func ExampleMergeSorted() {
	less := estvec.ByTagAsc(estvec.TagPowerW, estvec.ByServerName)
	la1 := estvec.List{
		estvec.New("a").Set(estvec.TagPowerW, 100),
		estvec.New("c").Set(estvec.TagPowerW, 300),
	}
	la2 := estvec.List{
		estvec.New("b").Set(estvec.TagPowerW, 200),
	}
	for _, v := range estvec.MergeSorted(less, la1, la2) {
		fmt.Println(v.Server)
	}
	// Output:
	// a
	// b
	// c
}
