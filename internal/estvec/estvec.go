// Package estvec implements DIET-style estimation vectors: tagged
// collections of scalar metrics that each Server Daemon (SED) fills in
// response to a request, and that agents consume to sort candidate
// servers (§II-A, §III-A of the paper).
//
// DIET's estimation vector is a list of (tag, value) pairs; a default
// estimation function populates system metrics, and plug-in schedulers
// may add custom tags. The paper's contribution adds energy tags
// (average power, boot cost, GreenPerf) next to the classic
// performance tags.
package estvec

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
)

// Tag identifies one metric inside an estimation vector.
type Tag string

// Standard tags. A SED is free to define additional custom tags; these
// are the ones the bundled policies consume.
const (
	// TagFlops is the server's sustained performance in flop/s
	// (fs). Filled from the dynamic estimator or a static benchmark.
	TagFlops Tag = "flops"
	// TagPowerW is the server's average active power draw in watts
	// (cs), learned from past requests.
	TagPowerW Tag = "power_w"
	// TagGreenPerf is the power/performance ratio (lower = greener).
	TagGreenPerf Tag = "greenperf"
	// TagFreeCores is the number of immediately available cores.
	TagFreeCores Tag = "free_cores"
	// TagQueueLen is the number of accepted-but-not-started tasks.
	TagQueueLen Tag = "queue_len"
	// TagWaitSec is the estimated wait before a new task starts (ws).
	TagWaitSec Tag = "wait_sec"
	// TagBootSec is the boot duration if the server is off (bts).
	TagBootSec Tag = "boot_sec"
	// TagBootPowerW is the draw while booting (bcs).
	TagBootPowerW Tag = "boot_power_w"
	// TagActive is 1 if the server is powered on, 0 otherwise.
	TagActive Tag = "active"
	// TagKnown is 1 once the dynamic estimator has data for the
	// server; 0 marks servers still in the learning phase.
	TagKnown Tag = "known"
	// TagRequests is the number of requests the server has completed
	// (the estimator's confidence).
	TagRequests Tag = "requests"
	// TagRandom is a per-response uniform draw in [0,1) used by the
	// RANDOM policy so that sorting stays a pure function of vectors.
	TagRandom Tag = "random"
	// TagCarbonIntensity is the grid carbon intensity the SED's site
	// sees right now, in gCO2/kWh. Carbon-aware policies combine it
	// with the power and flops tags into a grams-per-flop ordering.
	TagCarbonIntensity Tag = "carbon_gkwh"
	// TagRenewableFrac is the renewable supply fraction of the SED's
	// grid in [0,1] at response time.
	TagRenewableFrac Tag = "renewable_frac"
)

// stdTags enumerates the tags the bundled estimation functions and
// policies touch on every election, in declaration order. They get
// fixed array slots inside Vector so the sim's million-task hot loop
// reads and writes them without a single map operation or allocation.
// The "cores" entry is sched's auxiliary capacity tag (sched.TagCores)
// — not exported here, but set by every SED, so it earns a slot too.
var stdTags = [...]Tag{
	TagFlops, TagPowerW, TagGreenPerf, TagFreeCores, TagQueueLen,
	TagWaitSec, TagBootSec, TagBootPowerW, TagActive, TagKnown,
	TagRequests, TagRandom, TagCarbonIntensity, TagRenewableFrac,
	Tag("cores"),
}

const numStdTags = len(stdTags)

var stdTagIndex = func() map[Tag]int {
	m := make(map[Tag]int, numStdTags)
	for i, t := range stdTags {
		m[t] = i
	}
	return m
}()

// Vector is one server's estimation vector. The zero value is empty
// and ready to use via Set.
//
// Standard tags live in a fixed array with a presence bitmask; only
// custom plug-in tags spill into a lazily allocated map. A Vector can
// therefore be embedded by value and recycled with Reset, which is how
// the simulator's election loop stays allocation-free.
type Vector struct {
	// Server is the responding SED's unique name.
	Server string
	std    [numStdTags]float64
	mask   uint32 // presence bits for std slots
	extra  map[Tag]float64
}

// New returns an empty vector for a server.
func New(server string) *Vector {
	return &Vector{Server: server}
}

// Reset empties the vector and retargets it at server, keeping any
// overflow-map capacity. It lets hot loops reuse one Vector per
// candidate slot instead of allocating fresh ones per election.
func (v *Vector) Reset(server string) *Vector {
	v.Server = server
	v.mask = 0
	for t := range v.extra {
		delete(v.extra, t)
	}
	return v
}

// Set stores a metric, replacing any previous value. NaN and ±Inf are
// rejected with a panic: they would poison every comparison downstream
// and always indicate an estimation-function bug.
func (v *Vector) Set(t Tag, val float64) *Vector {
	if math.IsNaN(val) || math.IsInf(val, 0) {
		panic(fmt.Sprintf("estvec: non-finite value %v for tag %q on %s", val, t, v.Server))
	}
	if i, ok := stdTagIndex[t]; ok {
		v.std[i] = val
		v.mask |= 1 << uint(i)
		return v
	}
	if v.extra == nil {
		v.extra = make(map[Tag]float64)
	}
	v.extra[t] = val
	return v
}

// SetBool stores 1 for true, 0 for false.
func (v *Vector) SetBool(t Tag, b bool) *Vector {
	if b {
		return v.Set(t, 1)
	}
	return v.Set(t, 0)
}

// Get returns the value for a tag and whether it was set.
func (v *Vector) Get(t Tag) (float64, bool) {
	if i, ok := stdTagIndex[t]; ok {
		if v.mask&(1<<uint(i)) == 0 {
			return 0, false
		}
		return v.std[i], true
	}
	val, ok := v.extra[t]
	return val, ok
}

// Value returns the tag's value, or def if unset. Policies use this to
// stay robust against SEDs that omit optional tags.
func (v *Vector) Value(t Tag, def float64) float64 {
	if val, ok := v.Get(t); ok {
		return val
	}
	return def
}

// Bool returns whether the tag is set to a non-zero value.
func (v *Vector) Bool(t Tag) bool { return v.Value(t, 0) != 0 }

// Has reports whether the tag is present.
func (v *Vector) Has(t Tag) bool { _, ok := v.Get(t); return ok }

// Tags returns the present tags in sorted order.
func (v *Vector) Tags() []Tag {
	out := make([]Tag, 0, v.Len())
	for i, t := range stdTags {
		if v.mask&(1<<uint(i)) != 0 {
			out = append(out, t)
		}
	}
	for t := range v.extra {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Len returns the number of set tags.
func (v *Vector) Len() int { return bits.OnesCount32(v.mask) + len(v.extra) }

// Clone returns a deep copy.
func (v *Vector) Clone() *Vector {
	c := &Vector{Server: v.Server, std: v.std, mask: v.mask}
	if len(v.extra) > 0 {
		c.extra = make(map[Tag]float64, len(v.extra))
		for t, val := range v.extra {
			c.extra[t] = val
		}
	}
	return c
}

// String renders "server{tag=value,...}" with tags sorted, for logs
// and tests.
func (v *Vector) String() string {
	var b strings.Builder
	b.WriteString(v.Server)
	b.WriteByte('{')
	for i, t := range v.Tags() {
		if i > 0 {
			b.WriteByte(',')
		}
		val, _ := v.Get(t)
		fmt.Fprintf(&b, "%s=%.4g", t, val)
	}
	b.WriteByte('}')
	return b.String()
}

// List is an ordered collection of vectors — what an agent receives
// from its children and sorts with its plug-in scheduler.
type List []*Vector

// Servers returns the server names in list order.
func (l List) Servers() []string {
	out := make([]string, len(l))
	for i, v := range l {
		out[i] = v.Server
	}
	return out
}

// Find returns the vector for a server, or nil.
func (l List) Find(server string) *Vector {
	for _, v := range l {
		if v.Server == server {
			return v
		}
	}
	return nil
}

// Clone deep-copies the list.
func (l List) Clone() List {
	out := make(List, len(l))
	for i, v := range l {
		out[i] = v.Clone()
	}
	return out
}

// Less is a comparison function over vectors; true means a ranks
// strictly before b.
type Less func(a, b *Vector) bool

// SortStable sorts the list in place with a stable sort so that equal
// servers keep their child order — this is what makes hierarchical
// merging deterministic.
func (l List) SortStable(less Less) {
	sort.SliceStable(l, func(i, j int) bool { return less(l[i], l[j]) })
}

// MergeSorted merges already-sorted child lists into one sorted list —
// the aggregation step an agent performs on responses coming up the
// hierarchy. Ties preserve child order.
func MergeSorted(less Less, lists ...List) List {
	var out List
	for _, l := range lists {
		out = append(out, l...)
	}
	out.SortStable(less)
	return out
}

// ByTagAsc returns a Less ordering by a tag ascending (missing values
// rank last); ties fall through to the next comparison.
func ByTagAsc(t Tag, next Less) Less {
	return func(a, b *Vector) bool {
		av, aok := a.Get(t)
		bv, bok := b.Get(t)
		switch {
		case aok && !bok:
			return true
		case !aok && bok:
			return false
		case aok && bok && av != bv:
			return av < bv
		default:
			if next != nil {
				return next(a, b)
			}
			return false
		}
	}
}

// ByTagDesc returns a Less ordering by a tag descending (missing
// values rank last).
func ByTagDesc(t Tag, next Less) Less {
	return func(a, b *Vector) bool {
		av, aok := a.Get(t)
		bv, bok := b.Get(t)
		switch {
		case aok && !bok:
			return true
		case !aok && bok:
			return false
		case aok && bok && av != bv:
			return av > bv
		default:
			if next != nil {
				return next(a, b)
			}
			return false
		}
	}
}

// ByServerName is a final deterministic tiebreak.
func ByServerName(a, b *Vector) bool { return a.Server < b.Server }
