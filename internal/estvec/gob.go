package estvec

import (
	"bytes"
	"encoding/gob"
)

// wireVector is the encoded form of a Vector: the exported shape used
// by the middleware's TCP transport. It stays map-based so the wire
// format is independent of the in-memory array layout — peers built
// before or after the array-backed Vector interoperate.
type wireVector struct {
	Server string
	Vals   map[Tag]float64
}

// GobEncode implements gob.GobEncoder so vectors can cross the
// middleware's network transport.
func (v *Vector) GobEncode() ([]byte, error) {
	vals := make(map[Tag]float64, v.Len())
	for i, t := range stdTags {
		if v.mask&(1<<uint(i)) != 0 {
			vals[t] = v.std[i]
		}
	}
	for t, val := range v.extra {
		vals[t] = val
	}
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(wireVector{Server: v.Server, Vals: vals})
	return buf.Bytes(), err
}

// GobDecode implements gob.GobDecoder.
func (v *Vector) GobDecode(data []byte) error {
	var w wireVector
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return err
	}
	v.Reset(w.Server)
	for t, val := range w.Vals {
		v.Set(t, val)
	}
	return nil
}
