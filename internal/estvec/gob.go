package estvec

import (
	"bytes"
	"encoding/gob"
)

// wireVector is the encoded form of a Vector: the exported shape used
// by the middleware's TCP transport.
type wireVector struct {
	Server string
	Vals   map[Tag]float64
}

// GobEncode implements gob.GobEncoder so vectors can cross the
// middleware's network transport.
func (v *Vector) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(wireVector{Server: v.Server, Vals: v.vals})
	return buf.Bytes(), err
}

// GobDecode implements gob.GobDecoder.
func (v *Vector) GobDecode(data []byte) error {
	var w wireVector
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return err
	}
	v.Server = w.Server
	v.vals = w.Vals
	if v.vals == nil {
		v.vals = make(map[Tag]float64)
	}
	return nil
}
