package estvec

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestSetGetValue(t *testing.T) {
	v := New("s1")
	v.Set(TagFlops, 9e9).Set(TagPowerW, 200)
	if got, ok := v.Get(TagFlops); !ok || got != 9e9 {
		t.Fatalf("Get(flops) = %v,%v", got, ok)
	}
	if got := v.Value(TagPowerW, -1); got != 200 {
		t.Fatalf("Value(power) = %v", got)
	}
	if got := v.Value(TagWaitSec, 42); got != 42 {
		t.Fatalf("Value default = %v, want 42", got)
	}
	if !v.Has(TagFlops) || v.Has(TagWaitSec) {
		t.Fatal("Has wrong")
	}
	if v.Len() != 2 {
		t.Fatalf("Len = %d, want 2", v.Len())
	}
}

func TestSetBoolAndBool(t *testing.T) {
	v := New("s")
	v.SetBool(TagActive, true).SetBool(TagKnown, false)
	if !v.Bool(TagActive) {
		t.Fatal("active should be true")
	}
	if v.Bool(TagKnown) {
		t.Fatal("known should be false")
	}
	if v.Bool(TagRandom) {
		t.Fatal("unset bool should be false")
	}
}

func TestZeroValueVectorUsable(t *testing.T) {
	var v Vector
	v.Set(TagFlops, 1)
	if got, ok := v.Get(TagFlops); !ok || got != 1 {
		t.Fatal("zero-value vector Set/Get failed")
	}
}

func TestNonFiniteRejected(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Set(%v) did not panic", bad)
				}
			}()
			New("s").Set(TagFlops, bad)
		}()
	}
}

func TestTagsSortedAndString(t *testing.T) {
	v := New("s2").Set(TagPowerW, 100).Set(TagFlops, 2).Set(TagActive, 1)
	tags := v.Tags()
	if !sort.SliceIsSorted(tags, func(i, j int) bool { return tags[i] < tags[j] }) {
		t.Fatalf("Tags not sorted: %v", tags)
	}
	want := "s2{active=1,flops=2,power_w=100}"
	if got := v.String(); got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}

func TestClone(t *testing.T) {
	v := New("s").Set(TagFlops, 1)
	c := v.Clone()
	c.Set(TagFlops, 2)
	if got := v.Value(TagFlops, 0); got != 1 {
		t.Fatal("Clone is not deep")
	}
	if c.Server != "s" {
		t.Fatal("Clone lost server name")
	}
}

func TestListHelpers(t *testing.T) {
	l := List{New("a"), New("b"), New("c")}
	if got := l.Servers(); len(got) != 3 || got[1] != "b" {
		t.Fatalf("Servers = %v", got)
	}
	if l.Find("b") == nil || l.Find("z") != nil {
		t.Fatal("Find wrong")
	}
	c := l.Clone()
	c[0].Set(TagFlops, 5)
	if l[0].Has(TagFlops) {
		t.Fatal("List.Clone is not deep")
	}
}

func TestByTagAscDesc(t *testing.T) {
	a := New("a").Set(TagPowerW, 100)
	b := New("b").Set(TagPowerW, 200)
	missing := New("m")
	asc := ByTagAsc(TagPowerW, nil)
	if !asc(a, b) || asc(b, a) {
		t.Fatal("asc ordering wrong")
	}
	if !asc(a, missing) || asc(missing, a) {
		t.Fatal("missing values must rank last (asc)")
	}
	desc := ByTagDesc(TagPowerW, nil)
	if !desc(b, a) || desc(a, b) {
		t.Fatal("desc ordering wrong")
	}
	if !desc(a, missing) || desc(missing, a) {
		t.Fatal("missing values must rank last (desc)")
	}
}

func TestTiebreakChaining(t *testing.T) {
	a := New("a").Set(TagPowerW, 100).Set(TagFlops, 1)
	b := New("b").Set(TagPowerW, 100).Set(TagFlops, 9)
	less := ByTagAsc(TagPowerW, ByTagDesc(TagFlops, ByServerName))
	if !less(b, a) {
		t.Fatal("tiebreak should fall through to flops desc")
	}
	c := New("c").Set(TagPowerW, 100).Set(TagFlops, 9)
	if !less(b, c) || less(c, b) {
		t.Fatal("final name tiebreak wrong")
	}
}

func TestSortStableKeepsEqualOrder(t *testing.T) {
	l := List{
		New("x").Set(TagPowerW, 1),
		New("y").Set(TagPowerW, 1),
		New("z").Set(TagPowerW, 0),
	}
	l.SortStable(ByTagAsc(TagPowerW, nil))
	got := l.Servers()
	want := []string{"z", "x", "y"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestMergeSorted(t *testing.T) {
	less := ByTagAsc(TagPowerW, ByServerName)
	l1 := List{New("a").Set(TagPowerW, 1), New("c").Set(TagPowerW, 3)}
	l2 := List{New("b").Set(TagPowerW, 2), New("d").Set(TagPowerW, 4)}
	m := MergeSorted(less, l1, l2)
	got := m.Servers()
	want := []string{"a", "b", "c", "d"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merged = %v, want %v", got, want)
		}
	}
	if len(MergeSorted(less)) != 0 {
		t.Fatal("merging nothing should yield empty list")
	}
}

// Property: sorting by any tag ascending yields a list whose tag
// values are non-decreasing among vectors that have the tag, with all
// missing-tag vectors at the tail.
func TestPropertySortByTag(t *testing.T) {
	f := func(vals []uint8, missingMask []bool) bool {
		var l List
		for i, val := range vals {
			v := New(string(rune('a' + i%26)))
			if i < len(missingMask) && missingMask[i] {
				// leave tag unset
			} else {
				v.Set(TagWaitSec, float64(val))
			}
			l = append(l, v)
		}
		l.SortStable(ByTagAsc(TagWaitSec, nil))
		seenMissing := false
		last := math.Inf(-1)
		for _, v := range l {
			val, ok := v.Get(TagWaitSec)
			if !ok {
				seenMissing = true
				continue
			}
			if seenMissing {
				return false // a present value after a missing one
			}
			if val < last {
				return false
			}
			last = val
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSortStable(b *testing.B) {
	base := make(List, 100)
	for i := range base {
		base[i] = New(string(rune('a'+i%26))).Set(TagPowerW, float64(i*7%53)).Set(TagFlops, float64(i))
	}
	less := ByTagAsc(TagPowerW, ByTagDesc(TagFlops, ByServerName))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l := base.Clone()
		l.SortStable(less)
	}
}
