package middleware

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"greensched/internal/estvec"
	"greensched/internal/obs"
)

// ErrTransport marks a transport-layer failure — dial, encode, decode,
// a connection dropped mid-exchange, a malformed frame — as opposed to
// an application error the remote returned. Agents treat it like any
// failed child (the subtree is masked, the election proceeds) and
// clients test with errors.Is to decide whether re-electing another
// SED makes sense.
var ErrTransport = errors.New("transport failure")

// The wire protocol is a minimal gob request/response exchange: one
// message per connection-turn, multiplexed over a persistent
// connection per peer. It exists so the middleware can actually be
// deployed across machines like DIET; the experiments use the
// in-process topology for determinism.

type wireKind uint8

const (
	wireEstimate wireKind = iota + 1
	wireSolve
	// wireStats fetches the remote SED's observability snapshot — the
	// frame behind Remote.Stats, so Master.SEDStats covers daemons on
	// other machines, not just in-process SEDs.
	wireStats
)

type wireMsg struct {
	Kind wireKind
	Req  Request
}

type wireReply struct {
	Err     string
	Vectors []*estvec.Vector
	Resp    Response
	Stats   SEDStats
}

// Endpoint serves a Child (agent or SED) over TCP. SEDs additionally
// serve Solve calls.
type Endpoint struct {
	child  Child
	solver Solver // nil for pure agents

	ln     net.Listener
	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// Serve starts a TCP endpoint on addr ("127.0.0.1:0" for an ephemeral
// port). The returned endpoint is already accepting.
func Serve(addr string, child Child, solver Solver) (*Endpoint, error) {
	if child == nil {
		return nil, fmt.Errorf("middleware: endpoint needs a child")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	e := &Endpoint{child: child, solver: solver, ln: ln, conns: make(map[net.Conn]struct{})}
	e.wg.Add(1)
	go e.acceptLoop()
	return e, nil
}

// Addr returns the bound address.
func (e *Endpoint) Addr() string { return e.ln.Addr().String() }

// Close stops accepting, closes every active connection, and waits for
// in-flight handlers to drain. Handlers block reading the next request
// on persistent connections, so closing the conns is what unblocks them.
func (e *Endpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	for conn := range e.conns {
		conn.Close()
	}
	e.mu.Unlock()
	err := e.ln.Close()
	e.wg.Wait()
	return err
}

func (e *Endpoint) acceptLoop() {
	defer e.wg.Done()
	for {
		conn, err := e.ln.Accept()
		if err != nil {
			return // listener closed
		}
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			conn.Close()
			return
		}
		e.conns[conn] = struct{}{}
		e.mu.Unlock()
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			e.handle(conn)
		}()
	}
}

func (e *Endpoint) handle(conn net.Conn) {
	defer func() {
		conn.Close()
		e.mu.Lock()
		delete(e.conns, conn)
		e.mu.Unlock()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var msg wireMsg
		if err := dec.Decode(&msg); err != nil {
			return // peer hung up or garbage; drop the connection
		}
		var reply wireReply
		switch msg.Kind {
		case wireEstimate:
			list, err := e.child.Estimate(context.Background(), msg.Req)
			if err != nil {
				reply.Err = err.Error()
			} else {
				reply.Vectors = list
			}
		case wireSolve:
			if e.solver == nil {
				reply.Err = fmt.Sprintf("middleware: endpoint %s cannot solve", e.child.Name())
			} else {
				resp, err := e.solver.Solve(context.Background(), msg.Req)
				if err != nil {
					reply.Err = err.Error()
				} else {
					reply.Resp = resp
				}
			}
		case wireStats:
			var src statser
			if s, ok := e.solver.(statser); ok {
				src = s
			} else if s, ok := e.child.(statser); ok {
				src = s
			}
			if src == nil {
				reply.Err = fmt.Sprintf("middleware: endpoint %s exposes no stats", e.child.Name())
			} else {
				reply.Stats = src.Stats()
			}
		default:
			reply.Err = fmt.Sprintf("middleware: unknown wire kind %d", msg.Kind)
		}
		if err := enc.Encode(&reply); err != nil {
			return
		}
	}
}

// Remote is a client-side handle to a TCP endpoint; it implements both
// Child (Estimate) and Solver (Solve), so remote SEDs and remote
// agents compose into hierarchies exactly like local ones.
type Remote struct {
	name string
	addr string

	mu      sync.Mutex
	conn    net.Conn
	enc     *gob.Encoder
	dec     *gob.Decoder
	timeout time.Duration
	spans   *obs.SpanWriter
}

// Dial returns a lazy-connecting remote handle. name must match the
// remote child's name (used in error messages and directories).
func Dial(name, addr string) *Remote {
	return &Remote{name: name, addr: addr, timeout: 10 * time.Second}
}

// SetTimeout bounds each round trip (0 disables).
func (r *Remote) SetTimeout(d time.Duration) { r.timeout = d }

// SetSpans makes the handle emit dial/encode/decode spans for traced
// requests, parented under the caller's span (the master's dispatch
// span for Solve, the agent level's estimate span for Estimate) — the
// wire's own cost becomes visible in the trace. Nil turns it off.
func (r *Remote) SetSpans(w *obs.SpanWriter) { r.spans = w }

// emitSpan records one transport-stage span for a traced request.
func (r *Remote) emitSpan(req Request, stage string, start, dur float64, err error) {
	if r.spans == nil || req.TraceID == 0 {
		return
	}
	sp := obs.Span{
		TraceID: req.TraceID, SpanID: obs.NewSpanID(), Parent: req.ParentSpan,
		Name: stage, Src: r.name, Start: start, DurSec: dur,
	}
	if err != nil {
		sp.Err = err.Error()
	}
	r.spans.Emit(sp)
}

// Stats fetches the remote SED's observability snapshot over the wire.
// The fallible signature is deliberate: it keeps Remote distinct from
// the in-process statser surface, and Master.SEDStats skips daemons
// whose round trip fails.
func (r *Remote) Stats() (SEDStats, error) {
	reply, err := r.call(context.Background(), wireMsg{Kind: wireStats})
	if err != nil {
		return SEDStats{}, err
	}
	return reply.Stats, nil
}

// Name implements Child.
func (r *Remote) Name() string { return r.name }

// Estimate implements Child over the wire.
func (r *Remote) Estimate(ctx context.Context, req Request) (estvec.List, error) {
	reply, err := r.call(ctx, wireMsg{Kind: wireEstimate, Req: req})
	if err != nil {
		return nil, err
	}
	return estvec.List(reply.Vectors), nil
}

// Solve implements Solver over the wire.
func (r *Remote) Solve(ctx context.Context, req Request) (Response, error) {
	reply, err := r.call(ctx, wireMsg{Kind: wireSolve, Req: req})
	if err != nil {
		return Response{}, err
	}
	return reply.Resp, nil
}

// Close tears down the cached connection.
func (r *Remote) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.conn != nil {
		err := r.conn.Close()
		r.conn = nil
		return err
	}
	return nil
}

func (r *Remote) call(ctx context.Context, msg wireMsg) (wireReply, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var reply wireReply
	if r.conn == nil {
		dialStart := obs.Uptime()
		d := net.Dialer{Timeout: r.timeout}
		conn, err := d.DialContext(ctx, "tcp", r.addr)
		if err != nil {
			err = fmt.Errorf("middleware: dialing %s (%s): %w: %w", r.name, r.addr, ErrTransport, err)
			r.emitSpan(msg.Req, obs.StageDial, dialStart, obs.Uptime()-dialStart, err)
			return reply, err
		}
		r.emitSpan(msg.Req, obs.StageDial, dialStart, obs.Uptime()-dialStart, nil)
		r.conn = conn
		r.enc = gob.NewEncoder(conn)
		r.dec = gob.NewDecoder(conn)
	}
	if r.timeout > 0 {
		r.conn.SetDeadline(time.Now().Add(r.timeout))
	}
	if dl, ok := ctx.Deadline(); ok {
		r.conn.SetDeadline(dl)
	}
	encStart := obs.Uptime()
	if err := r.enc.Encode(&msg); err != nil {
		r.reset()
		err = fmt.Errorf("middleware: sending to %s: %w: %w", r.name, ErrTransport, err)
		r.emitSpan(msg.Req, obs.StageEncode, encStart, obs.Uptime()-encStart, err)
		return reply, err
	}
	r.emitSpan(msg.Req, obs.StageEncode, encStart, obs.Uptime()-encStart, nil)
	decStart := obs.Uptime()
	if err := r.dec.Decode(&reply); err != nil {
		r.reset()
		err = fmt.Errorf("middleware: reading from %s: %w: %w", r.name, ErrTransport, err)
		r.emitSpan(msg.Req, obs.StageDecode, decStart, obs.Uptime()-decStart, err)
		return reply, err
	}
	decDur := obs.Uptime() - decStart
	if msg.Kind == wireSolve {
		// The reply read blocks for the SED's whole queue+solve time,
		// which is already spanned on the far side of the wire — keep
		// only the wire-and-codec residual here so critical paths don't
		// count the execution twice.
		if served := reply.Resp.QueueSec + reply.Resp.ExecSec; served > 0 && decDur > served {
			decDur -= served
		}
	}
	r.emitSpan(msg.Req, obs.StageDecode, decStart, decDur, nil)
	if reply.Err != "" {
		return reply, fmt.Errorf("middleware: %s: %s", r.name, reply.Err)
	}
	return reply, nil
}

func (r *Remote) reset() {
	if r.conn != nil {
		r.conn.Close()
		r.conn = nil
	}
}
