package middleware

import "greensched/internal/obs"

// spanSink is the master's span fan-out: every stage span goes to the
// optional JSONL writer AND — when the interceptor stack carries a
// registry — into the greensched_stage_seconds histogram, so /metrics
// exposes the same per-stage latency decomposition the span stream
// records. A nil sink (tracing off, no registry) costs the request
// path nothing.
type spanSink struct {
	w    *obs.SpanWriter   // may be nil: histograms only
	hist *obs.HistogramVec // may be nil: spans only
	src  string            // the master's name

	// The canonical stages' histogram children, pre-resolved at
	// construction so the per-request observe path is a constant-string
	// switch instead of a label-key join under the family mutex.
	submitH, admissionH, electH, reelectH, estimateH obs.Histogram
	dispatchH, queueH, solveH, replyH                obs.Histogram
}

// stageBuckets span the decomposed stages' dynamic range: in-process
// elections sit in the tens of microseconds, queue waits behind a
// dirty-grid deferral in the tens of seconds.
var stageBuckets = obs.ExpBuckets(1e-5, 4, 12)

// newSpanSink wires the sink; nil when both outputs are absent.
func newSpanSink(src string, w *obs.SpanWriter, reg *obs.Registry) *spanSink {
	if w == nil && reg == nil {
		return nil
	}
	s := &spanSink{w: w, src: src}
	if reg != nil {
		s.hist = reg.HistogramVec("greensched_stage_seconds",
			"Request latency decomposed by lifecycle stage.", stageBuckets, "src", "stage")
		s.submitH = s.hist.With(src, obs.StageSubmit)
		s.admissionH = s.hist.With(src, obs.StageAdmission)
		s.electH = s.hist.With(src, obs.StageElect)
		s.reelectH = s.hist.With(src, obs.StageReelect)
		s.estimateH = s.hist.With(src, obs.StageEstimate)
		s.dispatchH = s.hist.With(src, obs.StageDispatch)
		s.queueH = s.hist.With(src, obs.StageQueue)
		s.solveH = s.hist.With(src, obs.StageSolve)
		s.replyH = s.hist.With(src, obs.StageReply)
	}
	return s
}

// spans reports whether full span records are wanted — a JSONL writer
// is attached. Histogram-only sinks (registry, no writer) skip span
// construction entirely: no trace/span IDs, no Attrs maps, just stage
// durations into the histogram.
func (s *spanSink) spans() bool { return s != nil && s.w != nil }

// emit records one span: histogram always, writer when present.
func (s *spanSink) emit(sp obs.Span) {
	if s == nil {
		return
	}
	if sp.Src == "" {
		sp.Src = s.src
	}
	s.observe(sp.Name, sp.DurSec)
	s.w.Emit(sp)
}

// observe feeds the stage histogram alone — for stages whose span is
// emitted elsewhere (a SED writing its own queue/solve spans) but whose
// latency still belongs in the master's /metrics.
func (s *spanSink) observe(stage string, dur float64) {
	if s == nil || s.hist == nil {
		return
	}
	switch stage {
	case obs.StageSubmit:
		s.submitH.Observe(dur)
	case obs.StageAdmission:
		s.admissionH.Observe(dur)
	case obs.StageElect:
		s.electH.Observe(dur)
	case obs.StageReelect:
		s.reelectH.Observe(dur)
	case obs.StageEstimate:
		s.estimateH.Observe(dur)
	case obs.StageDispatch:
		s.dispatchH.Observe(dur)
	case obs.StageQueue:
		s.queueH.Observe(dur)
	case obs.StageSolve:
		s.solveH.Observe(dur)
	case obs.StageReply:
		s.replyH.Observe(dur)
	default:
		s.hist.With(s.src, stage).Observe(dur)
	}
}
