package middleware

import "greensched/internal/obs"

// spanSink is the master's span fan-out: every stage span goes to the
// optional JSONL writer AND — when the interceptor stack carries a
// registry — into the greensched_stage_seconds histogram, so /metrics
// exposes the same per-stage latency decomposition the span stream
// records. A nil sink (tracing off, no registry) costs the request
// path nothing.
type spanSink struct {
	w    *obs.SpanWriter   // may be nil: histograms only
	hist *obs.HistogramVec // may be nil: spans only
	src  string            // the master's name
}

// stageBuckets span the decomposed stages' dynamic range: in-process
// elections sit in the tens of microseconds, queue waits behind a
// dirty-grid deferral in the tens of seconds.
var stageBuckets = obs.ExpBuckets(1e-5, 4, 12)

// newSpanSink wires the sink; nil when both outputs are absent.
func newSpanSink(src string, w *obs.SpanWriter, reg *obs.Registry) *spanSink {
	if w == nil && reg == nil {
		return nil
	}
	s := &spanSink{w: w, src: src}
	if reg != nil {
		s.hist = reg.HistogramVec("greensched_stage_seconds",
			"Request latency decomposed by lifecycle stage.", stageBuckets, "src", "stage")
	}
	return s
}

// emit records one span: histogram always, writer when present.
func (s *spanSink) emit(sp obs.Span) {
	if s == nil {
		return
	}
	if sp.Src == "" {
		sp.Src = s.src
	}
	s.observe(sp.Name, sp.DurSec)
	s.w.Emit(sp)
}

// observe feeds the stage histogram alone — for stages whose span is
// emitted elsewhere (a SED writing its own queue/solve spans) but whose
// latency still belongs in the master's /metrics.
func (s *spanSink) observe(stage string, dur float64) {
	if s == nil || s.hist == nil {
		return
	}
	s.hist.With(s.src, stage).Observe(dur)
}
