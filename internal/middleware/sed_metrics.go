package middleware

import "greensched/internal/obs"

// startSEDMetrics builds the per-node registry behind
// SEDConfig.MetricsAddr and starts its listener. Every family is
// labeled {sed="name"} so a fleet-level scraper can aggregate across
// nodes without name collisions, and every value refreshes from
// SED.Stats at scrape time — the endpoint is a view over the SED's own
// counters, never a second set of books.
func startSEDMetrics(s *SED, addr string) (*obs.Server, error) {
	reg := obs.NewRegistry()
	name := s.Name()
	completed := reg.CounterVec("greensched_sed_completed_total", "Requests this SED solved.", "sed").With(name)
	failed := reg.CounterVec("greensched_sed_failed_total", "Solve calls that returned an error.", "sed").With(name)
	inflight := reg.GaugeVec("greensched_sed_inflight", "Requests executing right now.", "sed").With(name)
	queued := reg.GaugeVec("greensched_sed_queued", "Requests waiting for a free slot.", "sed").With(name)
	slots := reg.GaugeVec("greensched_sed_slots", "Configured execution slots.", "sed").With(name)
	active := reg.GaugeVec("greensched_sed_active", "1 when the SED accepts work, 0 when draining.", "sed").With(name)
	meanExec := reg.GaugeVec("greensched_sed_mean_exec_seconds", "Mean execution time of completed requests.", "sed").With(name)
	powerW := reg.GaugeVec("greensched_sed_power_watts", "Learned mean power draw (0 until known).", "sed").With(name)
	flops := reg.GaugeVec("greensched_sed_flops", "Learned throughput estimate (0 until known).", "sed").With(name)
	greenPerf := reg.GaugeVec("greensched_sed_green_perf", "Learned flops-per-watt estimate (0 until known).", "sed").With(name)

	slots.Set(float64(s.cfg.Slots))
	reg.OnScrape(func() {
		st := s.Stats()
		// Stats counters are monotone; Add the delta to keep the
		// exposition counters monotone too.
		completed.Add(float64(st.Completed) - completed.Value())
		failed.Add(float64(st.Failed) - failed.Value())
		inflight.Set(float64(st.InFlight))
		queued.Set(float64(st.Queued))
		meanExec.Set(st.MeanExecSec)
		powerW.Set(st.PowerW)
		flops.Set(st.Flops)
		greenPerf.Set(st.GreenPerf)
		if st.Active {
			active.Set(1)
		} else {
			active.Set(0)
		}
	})
	return obs.ListenAndServe(addr, reg)
}
