package middleware

import (
	"context"
	"fmt"

	"greensched/internal/core"
	"greensched/internal/estvec"
	"greensched/internal/sched"
)

// TreeSpec declares an agent hierarchy: the paper deploys a Master
// Agent over Local Agents over SEDs; this builder turns the shape into
// wired components plus a directory of every SED.
type TreeSpec struct {
	Name     string
	TopK     int
	Children []TreeSpec
	SEDs     []*SED
}

// BuildTree constructs the hierarchy with one plug-in policy shared by
// every agent (DIET configures plug-ins per agent; SetPolicy allows
// divergence afterwards). It returns the Master Agent and a directory
// resolving every SED in the tree.
func BuildTree(spec TreeSpec, policy sched.Policy) (*MasterAgent, *MapDirectory, error) {
	if policy == nil {
		return nil, nil, fmt.Errorf("middleware: tree needs a policy")
	}
	ma, err := NewMasterAgent(spec.Name, policy)
	if err != nil {
		return nil, nil, err
	}
	dir := NewMapDirectory()
	if err := attachSpec(ma.Agent, spec, policy, dir); err != nil {
		return nil, nil, err
	}
	return ma, dir, nil
}

func attachSpec(agent *Agent, spec TreeSpec, policy sched.Policy, dir *MapDirectory) error {
	for _, sed := range spec.SEDs {
		if sed == nil {
			return fmt.Errorf("middleware: nil SED under agent %s", spec.Name)
		}
		agent.Attach(sed)
		dir.Add(sed.Name(), sed)
	}
	for _, child := range spec.Children {
		sub, err := NewAgent(child.Name, policy, child.TopK)
		if err != nil {
			return err
		}
		if err := attachSpec(sub, child, policy, dir); err != nil {
			return err
		}
		agent.Attach(sub)
	}
	return nil
}

// ElectExcluding runs the election while masking a set of servers —
// the retry path after a SED failure.
func (m *MasterAgent) ElectExcluding(ctx context.Context, req Request, exclude map[string]bool) (string, estvec.List, error) {
	server, list, err := m.Elect(ctx, req)
	if err != nil {
		return "", list, err
	}
	if !exclude[server] {
		return server, list, nil
	}
	filtered := make(estvec.List, 0, len(list))
	for _, v := range list {
		if !exclude[v.Server] {
			filtered = append(filtered, v)
		}
	}
	if len(filtered) == 0 {
		return "", nil, fmt.Errorf("middleware: all candidates for %q excluded", req.Service)
	}
	chosen, err := m.elect.Load().selector.Select(filtered)
	if err != nil {
		return "", filtered, err
	}
	return chosen.Server, filtered, nil
}

// SubmitWithRetry is Submit with failover: when the elected SED's
// Solve fails, the request is re-elected excluding the failed servers,
// up to `retries` additional attempts. Context cancellation is
// terminal (the client gave up, not the server).
func (c *Client) SubmitWithRetry(ctx context.Context, service string, ops float64, pref float64, payload []byte, retries int) (Response, error) {
	id := c.nextID.Add(1)
	req := Request{ID: id, Service: service, Ops: ops, Pref: core.UserPref(pref), Payload: payload}

	exclude := map[string]bool{}
	var lastErr error
	for attempt := 0; attempt <= retries; attempt++ {
		if err := ctx.Err(); err != nil {
			return Response{}, err
		}
		server, _, err := c.ma.ElectExcluding(ctx, req, exclude)
		if err != nil {
			if lastErr != nil {
				return Response{}, fmt.Errorf("%w (after: %v)", err, lastErr)
			}
			return Response{}, err
		}
		solver, ok := c.dir.Lookup(server)
		if !ok {
			exclude[server] = true
			lastErr = fmt.Errorf("middleware: elected SED %q not in directory", server)
			continue
		}
		resp, err := solver.Solve(ctx, req)
		if err == nil {
			return resp, nil
		}
		if ctx.Err() != nil {
			return Response{}, err
		}
		exclude[server] = true
		lastErr = err
	}
	return Response{}, fmt.Errorf("middleware: request %d failed after %d attempts: %w", id, retries+1, lastErr)
}

// ProviderFilter builds the Master Agent candidate filter that applies
// §III-C: it sorts the incoming estimation vectors by GreenPerf and
// keeps the Algorithm 1 prefix whose accumulated power covers
// Preference_provider × P_total. pref is sampled per request so the
// provider preference can track electricity cost and utilization live.
func ProviderFilter(pref func() float64) CandidateFilter {
	return func(list estvec.List) estvec.List {
		servers := make([]core.Server, 0, len(list))
		byName := make(map[string]*estvec.Vector, len(list))
		for _, v := range list {
			srv, ok := sched.ServerFromVector(v)
			if !ok {
				continue // unmeasured servers pass through below
			}
			servers = append(servers, srv)
			byName[srv.Name] = v
		}
		selected := core.SelectCandidates(core.Rank(servers, core.ByGreenPerf()), pref())
		out := make(estvec.List, 0, len(list))
		for _, s := range selected {
			out = append(out, byName[s.Name])
		}
		// Unmeasured servers stay candidates: the learning phase
		// must be able to reach them.
		for _, v := range list {
			if _, ok := sched.ServerFromVector(v); !ok {
				out = append(out, v)
			}
		}
		return out
	}
}
