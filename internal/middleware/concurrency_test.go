package middleware

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"greensched/internal/budget"
	"greensched/internal/carbon"
	"greensched/internal/estvec"
	"greensched/internal/sched"
	"greensched/internal/sla"
)

// This file hammers the concurrent serving path: many goroutines
// driving Master.Do/Submit through the full SLA+carbon+budget+obs
// interceptor stack, over both transports, with the race detector as
// the referee and the books as the oracle — every parallel completion
// must land exactly once in the ledger, the budget and the energy
// total.

// unitCatalog books exactly $1 per completion (flat curve, no
// deadline), so EarnedUSD must equal the completion count to the bit.
func unitCatalog() sla.Catalog {
	return sla.Catalog{
		"unit": {Name: "unit", ValueUSD: 1, Curve: sla.Flat{}},
	}
}

// hammerSEDs builds n two-slot SEDs with distinct constant meters and
// a microsleep service, so every completion carries a positive energy
// share and the estimator learns real figures.
func hammerSEDs(t *testing.T, n int) []*SED {
	t.Helper()
	seds := make([]*SED, n)
	for i := range seds {
		watts := 100 + 50*float64(i)
		sed, err := NewSED(SEDConfig{
			Name:  fmt.Sprintf("sed-%d", i),
			Slots: 2,
			Interceptors: []Interceptor{
				&MeterInterceptor{Meter: func() (float64, bool) { return watts, true }},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := sed.Register(Service{Name: "burn", Solve: func(ctx context.Context, req Request) ([]byte, error) {
			time.Sleep(100 * time.Microsecond)
			return nil, nil
		}}); err != nil {
			t.Fatal(err)
		}
		seds[i] = sed
	}
	return seds
}

// hammerMaster wires the full interceptor stack over the requested
// transport ("inproc" or "tcp") and returns the master plus a cleanup.
func hammerMaster(t *testing.T, transport string, extra ...Option) (*Master, func()) {
	t.Helper()
	tracker, err := budget.NewTracker(1e12, 3600)
	if err != nil {
		t.Fatal(err)
	}
	opts := []Option{
		WithPolicy(sched.New(sched.LeastLoaded)),
		WithInterceptors(
			&ObsInterceptor{},
			&SLAInterceptor{Config: &sla.Config{Catalog: unitCatalog()}},
			&CarbonInterceptor{Signal: carbon.Diurnal{MeanG: 100, AmplitudeG: 50, CleanHour: 13}},
			&BudgetInterceptor{Tracker: tracker},
		),
	}
	opts = append(opts, extra...)
	seds := hammerSEDs(t, 3)
	var cleanup func()
	switch transport {
	case "inproc":
		opts = append(opts, WithSEDs(seds...))
		cleanup = func() {}
	case "tcp":
		var eps []*Endpoint
		var rems []*Remote
		for _, sed := range seds {
			ep, err := Serve("127.0.0.1:0", sed, sed)
			if err != nil {
				t.Fatal(err)
			}
			eps = append(eps, ep)
			rems = append(rems, Dial(sed.Name(), ep.Addr()))
		}
		opts = append(opts, WithRemotes(rems...))
		cleanup = func() {
			for _, r := range rems {
				r.Close()
			}
			for _, ep := range eps {
				ep.Close()
			}
		}
	default:
		t.Fatalf("unknown transport %q", transport)
	}
	m, err := NewMaster(opts...)
	if err != nil {
		cleanup()
		t.Fatal(err)
	}
	return m, cleanup
}

// near asserts agreement up to summation-order float drift.
func near(t *testing.T, name string, got, want float64) {
	t.Helper()
	if diff := math.Abs(got - want); diff > 1e-9*math.Max(1, math.Abs(want)) {
		t.Errorf("%s = %v, want %v (diff %v)", name, got, want, diff)
	}
}

// TestMasterConcurrentHammer drives parallel Do (classed, $1 each) and
// Submit (best-effort) traffic through the full stack on both
// transports and requires the counters, ledger, budget and energy
// totals to account for every request exactly — no double charges, no
// lost completions, no races.
func TestMasterConcurrentHammer(t *testing.T) {
	for _, transport := range []string{"inproc", "tcp"} {
		t.Run(transport, func(t *testing.T) {
			m, cleanup := hammerMaster(t, transport, WithConcurrency(8))
			defer cleanup()

			workers := 12
			perWorker := 30
			if transport == "tcp" {
				workers, perWorker = 8, 15 // one serialized conn per remote
			}
			// Even workers run classed Do requests, odd ones bare
			// Submits; both paths race through the same stack.
			energies := make([]float64, workers)
			var wg sync.WaitGroup
			wg.Add(workers)
			for w := 0; w < workers; w++ {
				go func(w int) {
					defer wg.Done()
					for i := 0; i < perWorker; i++ {
						var resp Response
						var err error
						if w%2 == 0 {
							resp, err = m.Do(context.Background(),
								Request{Service: "burn", Ops: 1e6, Class: "unit"})
						} else {
							resp, err = m.Submit(context.Background(), "burn", 1e6, 0, nil)
						}
						if err != nil {
							t.Errorf("worker %d: %v", w, err)
							return
						}
						energies[w] += resp.EnergyJ
					}
				}(w)
			}
			wg.Wait()
			if t.Failed() {
				return
			}

			total := workers * perWorker
			classed := (workers + 1) / 2 * perWorker
			var clientEnergy float64
			for _, e := range energies {
				clientEnergy += e
			}
			if clientEnergy <= 0 {
				t.Fatal("no energy attributed; totals are vacuous")
			}

			res := m.Finalize()
			if res.Submitted != total || res.Completed != total {
				t.Errorf("submitted/completed = %d/%d, want %d/%d", res.Submitted, res.Completed, total, total)
			}
			if res.Rejected != 0 || res.Failed != 0 {
				t.Errorf("rejected/failed = %d/%d, want 0/0", res.Rejected, res.Failed)
			}
			if res.SLA == nil {
				t.Fatal("no SLA summary published")
			}
			if res.SLA.Completed != total {
				t.Errorf("ledger completed = %d, want %d", res.SLA.Completed, total)
			}
			// $1 per classed completion, booked exactly once each.
			if res.SLA.EarnedUSD != float64(classed) {
				t.Errorf("EarnedUSD = %v, want exactly %v", res.SLA.EarnedUSD, float64(classed))
			}
			// The master's accumulator and the budget tracker both saw
			// the same joules the clients did.
			near(t, "EnergyJ", res.EnergyJ, clientEnergy)
			near(t, "BudgetSpentJ", res.BudgetSpentJ, clientEnergy)
			if res.CO2Grams <= 0 {
				t.Error("no emissions integrated")
			}
		})
	}
}

// TestMasterPipeline pushes a workload through the bounded worker pool
// and checks every request comes back exactly once.
func TestMasterPipeline(t *testing.T) {
	m, cleanup := hammerMaster(t, "inproc", WithConcurrency(4))
	defer cleanup()

	const n = 120
	reqs := make(chan Request, n)
	for i := 0; i < n; i++ {
		reqs <- Request{Service: "burn", Ops: 1e6, Class: "unit"}
	}
	close(reqs)

	got := 0
	for out := range m.Pipeline(context.Background(), reqs) {
		if out.Err != nil {
			t.Fatalf("pipelined request %d failed: %v", out.Req.ID, out.Err)
		}
		if out.Resp.Server == "" {
			t.Fatal("outcome without a server")
		}
		got++
	}
	if got != n {
		t.Fatalf("pipeline returned %d outcomes, want %d", got, n)
	}
	res := m.Finalize()
	if res.Completed != n || res.SLA.EarnedUSD != float64(n) {
		t.Fatalf("completed %d earned %v, want %d and %v", res.Completed, res.SLA.EarnedUSD, n, float64(n))
	}
}

// TestWithConcurrencyBoundsInflight proves the semaphore is real: a
// master bounded at 2 never has more than 2 lifecycles in flight, even
// with 8 clients pushing.
func TestWithConcurrencyBoundsInflight(t *testing.T) {
	var inflight, peak atomic.Int64
	sed, err := NewSED(SEDConfig{Name: "bounded", Slots: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := sed.Register(Service{Name: "burn", Solve: func(ctx context.Context, req Request) ([]byte, error) {
		cur := inflight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
		inflight.Add(-1)
		return nil, nil
	}}); err != nil {
		t.Fatal(err)
	}
	m, err := NewMaster(WithPolicy(sched.New(sched.LeastLoaded)), WithSEDs(sed), WithConcurrency(2))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(8)
	for w := 0; w < 8; w++ {
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				if _, err := m.Do(context.Background(), Request{Service: "burn", Ops: 1e6}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > 2 {
		t.Fatalf("peak in-flight %d, want ≤ 2", p)
	}
}

// TestAgentCandidateFilterSubTree installs a filter on a mid-tree
// agent: its subtree runs its own provisioning election, so the root
// only ever sees the servers the local agent chose to expose.
func TestAgentCandidateFilterSubTree(t *testing.T) {
	seds := hammerSEDs(t, 3)
	la, err := NewAgentFromConfig(AgentConfig{
		Name:   "la",
		Policy: sched.New(sched.LeastLoaded),
		CandidateFilter: func(list estvec.List) estvec.List {
			out := list[:0]
			for _, v := range list {
				if v.Server != "sed-2" {
					out = append(out, v)
				}
			}
			return out
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	la.Attach(seds[0], seds[1], seds[2])
	m, err := NewMaster(WithPolicy(sched.New(sched.LeastLoaded)), WithChildren(la),
		WithTransport(prepopulatedDir(seds)))
	if err != nil {
		t.Fatal(err)
	}
	list, err := m.Estimate(context.Background(), Request{Service: "burn", Ops: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range list {
		if v.Server == "sed-2" {
			t.Fatalf("filtered server leaked upward: %v", list.Servers())
		}
	}
	if len(list) != 2 {
		t.Fatalf("expected 2 candidates after sub-tree filter, got %v", list.Servers())
	}
	resp, err := m.Do(context.Background(), Request{Service: "burn", Ops: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Server == "sed-2" {
		t.Fatalf("elected the filtered server %s", resp.Server)
	}
}

// TestAgentSnapshotUnderMutation races Estimate against Attach,
// SetPolicy and SetChildTimeout: the copy-on-write snapshot must keep
// every in-flight fan-out consistent (the race detector referees).
func TestAgentSnapshotUnderMutation(t *testing.T) {
	seds := hammerSEDs(t, 2)
	// Both SEDs are resolvable from the start; only sed-0 is attached —
	// the mutator goroutine grows the fan-out mid-flight.
	m, err := NewMaster(WithPolicy(sched.New(sched.LeastLoaded)), WithChildren(seds[0]),
		WithTransport(prepopulatedDir(seds)))
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		policies := []sched.Policy{sched.New(sched.Power), sched.New(sched.LeastLoaded)}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			m.SetPolicy(policies[i%2])
			m.SetChildTimeout(time.Duration(i%2) * time.Second)
			if i == 3 {
				m.Attach(seds[1]) // grows the snapshot mid-flight once
			}
		}
	}()
	for i := 0; i < 200; i++ {
		if _, err := m.Do(context.Background(), Request{Service: "burn", Ops: 1e6}); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

// prepopulatedDir builds a read-only-style directory for WithChildren
// wiring where the SEDs sit below a sub-agent.
func prepopulatedDir(seds []*SED) *MapDirectory {
	dir := NewMapDirectory()
	for _, sed := range seds {
		dir.Add(sed.Name(), sed)
	}
	return dir
}
