package middleware

import (
	"context"
	"sync"
	"testing"
	"time"

	"greensched/internal/sched"
)

// TestConcurrentPolicySwapUnderLoad hot-swaps the plug-in scheduler
// while elections are in flight — the paper's "policy management ...
// abstracted into a software layer that can be ... controlled
// centrally" must be race-free.
func TestConcurrentPolicySwapUnderLoad(t *testing.T) {
	ma, client, seds := buildHierarchy(t, sched.New(sched.Power))
	prime(t, seds)

	stop := make(chan struct{})
	var swapper sync.WaitGroup
	swapper.Add(1)
	go func() {
		defer swapper.Done()
		policies := []sched.Policy{
			sched.New(sched.Power),
			sched.New(sched.Performance),
			sched.New(sched.GreenPerf),
		}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				ma.SetPolicy(policies[i%len(policies)])
				time.Sleep(time.Millisecond)
			}
		}
	}()

	errs := make([]error, 24)
	var submitters sync.WaitGroup
	for i := range errs {
		submitters.Add(1)
		go func(i int) {
			defer submitters.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			_, errs[i] = client.Submit(ctx, "burn", 1e7, 0, nil)
		}(i)
	}
	submitters.Wait()
	close(stop)
	swapper.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("submission %d failed during policy swaps: %v", i, err)
		}
	}
}

// TestRemoteReconnectsAfterServerRestart: a Remote handle must survive
// its endpoint being restarted on a new connection (persistent grids
// restart daemons all the time).
func TestRemoteReconnectsAfterServerRestart(t *testing.T) {
	sed := newSED(t, "restartable", 2, 2e9, 100)
	prime(t, map[string]*SED{"restartable": sed})
	ep, err := Serve("127.0.0.1:0", sed, sed)
	if err != nil {
		t.Fatal(err)
	}
	addr := ep.Addr()
	rem := Dial("restartable", addr)
	defer rem.Close()
	if _, err := rem.Estimate(context.Background(), Request{Service: "burn", Ops: 1e6}); err != nil {
		t.Fatal(err)
	}
	// Kill the endpoint; the cached connection goes stale.
	if err := ep.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := rem.Estimate(context.Background(), Request{Service: "burn", Ops: 1e6}); err == nil {
		t.Fatal("estimate against a dead endpoint should fail")
	}
	// Restart on the same address and retry: Remote must redial.
	ep2, err := Serve(addr, sed, sed)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer ep2.Close()
	list, err := rem.Estimate(context.Background(), Request{Service: "burn", Ops: 1e6})
	if err != nil {
		t.Fatalf("remote did not reconnect: %v", err)
	}
	if len(list) != 1 || list[0].Server != "restartable" {
		t.Fatalf("reconnected estimate = %v", list.Servers())
	}
}

// TestEndpointCloseUnblocksIdleConnection: Close must return promptly
// even when a Remote holds an idle persistent connection whose handler
// goroutine is parked in Decode waiting for the next request. (A past
// version only closed the listener, so Close hung on the handler
// WaitGroup until the 10-minute test deadline.)
func TestEndpointCloseUnblocksIdleConnection(t *testing.T) {
	sed := newSED(t, "idleconn", 2, 2e9, 100)
	prime(t, map[string]*SED{"idleconn": sed})
	ep, err := Serve("127.0.0.1:0", sed, sed)
	if err != nil {
		t.Fatal(err)
	}
	rem := Dial("idleconn", ep.Addr())
	defer rem.Close()
	// Establish the persistent connection and leave it idle.
	if _, err := rem.Estimate(context.Background(), Request{Service: "burn", Ops: 1e6}); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- ep.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Endpoint.Close did not return while a connection sat idle")
	}
	// Close must be idempotent after draining.
	if err := ep.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

// TestEndpointCloseDuringInFlightSolve: Close waits for a handler that
// is actively computing, and the reply still reaches the client that
// issued it before shutdown started.
func TestEndpointCloseDuringInFlightSolve(t *testing.T) {
	sed := newSED(t, "draining", 2, 2e9, 100)
	prime(t, map[string]*SED{"draining": sed})
	ep, err := Serve("127.0.0.1:0", sed, sed)
	if err != nil {
		t.Fatal(err)
	}
	rem := Dial("draining", ep.Addr())
	defer rem.Close()

	type result struct {
		resp Response
		err  error
	}
	got := make(chan result, 1)
	go func() {
		resp, err := rem.Solve(context.Background(), Request{Service: "burn", Ops: 1e6})
		got <- result{resp, err}
	}()
	// Give the solve a moment to go in flight, then shut down.
	time.Sleep(20 * time.Millisecond)
	closed := make(chan error, 1)
	go func() { closed <- ep.Close() }()
	select {
	case err := <-closed:
		if err != nil {
			t.Fatalf("close: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Endpoint.Close hung during an in-flight solve")
	}
	r := <-got
	// Either outcome is acceptable — completed before the conn died, or
	// failed because shutdown won the race — but it must not hang.
	if r.err == nil && r.resp.Server != "draining" {
		t.Fatalf("solve succeeded on wrong server: %+v", r.resp)
	}
}
