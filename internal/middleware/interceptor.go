package middleware

import (
	"context"
	"errors"

	"greensched/internal/estvec"
	"greensched/internal/sla"
)

// This file is the live middleware's composable extension surface —
// the counterpart of the simulator's sim.Module stack. The paper's
// architecture is a plug-in middleware, and after the sim grew its
// module API every cross-cutting concern (carbon windows, SLA
// admission and ledgers, budget tracking) composed there but not on
// the live serving path. Interceptor closes that gap: request
// lifecycle hooks mount on a Master, estimation hooks mount on SEDs,
// and the first-party interceptors (SLAInterceptor, CarbonInterceptor,
// BudgetInterceptor) give the live hierarchy parity with the sim
// stack.
//
// Hooks run in stack order. Estimation wraps fold left-to-right
// exactly like sim.Config.Modules' WrapPolicy: the first interceptor
// receives the SED's stock estimation function, each later one wraps
// what the previous produced, so the last interceptor in the stack is
// outermost.
//
// The legacy one-slot SEDConfig fields (Meter, Carbon, Estimation)
// still work: NewSED converts each into the equivalent interceptor and
// prepends it to the stack — in that fixed order — so a legacy
// configuration and its explicit interceptor spelling produce
// identical elections (asserted in compat_test.go).

// ErrRejected marks a submission refused by an interceptor's OnSubmit
// (admission control, budget exhaustion). Callers distinguish a
// rejection from an infrastructure failure with errors.Is.
var ErrRejected = errors.New("middleware: submission rejected")

// Mount identifies where an interceptor is being installed. Exactly
// one field is non-nil: Master for request-lifecycle mounts
// (NewMaster/WithInterceptors), SED for estimation-side mounts
// (SEDConfig.Interceptors), Agent for mid-tree agents built through
// NewAgentFromConfig.
type Mount struct {
	Master *Master
	SED    *SED
	Agent  *Agent
}

// RequestRecord is one request outcome as the lifecycle hooks see it.
// Times are seconds on the mounting Master's clock (Master.Now).
type RequestRecord struct {
	Req    Request
	Server string // the SED that solved it ("" when election failed)

	Submit float64 // when OnSubmit hooks finished (post-deferral)
	Start  float64 // when the elected SED was invoked
	Finish float64 // when the outcome was known

	// ExecSec and EnergyJ are the SED-reported execution time and
	// attributed energy share (see Response); zero when the SED has no
	// meter.
	ExecSec float64
	EnergyJ float64

	// Err is non-nil when the request failed after admission (election
	// error, transport loss, execution failure) — interceptors that
	// attached per-request state in OnSubmit release it here, and
	// ledgers book the loss instead of letting it vanish.
	Err error
}

// LiveResult is the live counterpart of sim.Result: the counters a
// Master accumulated plus whatever summaries the interceptors publish
// from their Finalize hooks.
type LiveResult struct {
	Submitted int
	Completed int
	// Rejected counts submissions refused by OnSubmit hooks
	// (errors.Is ErrRejected); Failed counts elections and executions
	// that errored.
	Rejected int
	Failed   int

	// EnergyJ sums the attributed energy share of every completion.
	EnergyJ float64

	// Deferred / DeferredSec describe carbon-window deferrals
	// (published by CarbonInterceptor.Finalize).
	Deferred    int
	DeferredSec float64

	// CO2Grams is the emissions attribution published by
	// CarbonInterceptor.Finalize (energy shares integrated against the
	// grid signal at completion time).
	CO2Grams float64

	// BudgetSpentJ is the consumption the budget tracker metered
	// (published by BudgetInterceptor.Finalize).
	BudgetSpentJ float64

	// SLA is the revenue/penalty ledger summary (published by
	// SLAInterceptor.Finalize).
	SLA *sla.Summary
}

// Interceptor observes and steers the live request lifecycle — the
// middleware mirror of sim.Module. Implementations embed
// BaseInterceptor to pick only the hooks they need. Hooks mounted on a
// Master may run concurrently for different requests; implementations
// guard their own state.
type Interceptor interface {
	// Init runs once when the interceptor is mounted (NewMaster,
	// NewSED, NewAgentFromConfig) — the place to validate parameters
	// and grab the mount's clock. Returning an error aborts
	// construction.
	Init(mount Mount) error

	// OnSubmit screens (and may mutate) a request before election.
	// Returning an error aborts the submission; wrap ErrRejected to
	// mark a deliberate refusal. Hooks run in stack order and the
	// first error wins. A hook may block (carbon-window deferral) —
	// ctx bounds the wait, and each hook receives the clock reading at
	// its own invocation, so time spent deferring in an earlier
	// interceptor is visible to later ones. Master mounts only.
	OnSubmit(ctx context.Context, now float64, req *Request) error

	// WrapEstimation builds the SED's effective estimation function
	// from the one the previous interceptor in the stack produced (the
	// first receives the stock DefaultEstimation). Returning base
	// unchanged leaves estimation alone. SED mounts only.
	WrapEstimation(base EstimationFunc) EstimationFunc

	// OnElect observes the election outcome before the SED is invoked.
	OnElect(now float64, req Request, server string, list estvec.List)

	// OnComplete observes every request outcome: successful
	// completions, and failures or rejections (rec.Err non-nil —
	// including an error from a LATER interceptor's OnSubmit) so
	// per-request state attached in OnSubmit is always released.
	// Hooks must tolerate records for requests they never admitted.
	OnComplete(rec RequestRecord)

	// Finalize publishes summaries onto the result. Master.Finalize
	// fills the counters, then runs the hooks in REVERSE stack order —
	// the onion's exit path — so an early-mounted interceptor
	// summarizes over what later ones published (SLAInterceptor
	// mounted first divides its ledger by the grams a later
	// CarbonInterceptor attributed).
	Finalize(res *LiveResult)
}

// PowerSource is an optional Interceptor extension for SED mounts: a
// SED polls every mounted source around each execution and feeds the
// first available reading to its dynamic power/performance estimator,
// exactly as the legacy SEDConfig.Meter did. MeterInterceptor is the
// stock implementation.
type PowerSource interface {
	PowerW() (watts float64, ok bool)
}

// BaseInterceptor is a no-op Interceptor for embedding:
// implementations override only the hooks they care about.
type BaseInterceptor struct{}

// Init implements Interceptor.
func (BaseInterceptor) Init(Mount) error { return nil }

// OnSubmit implements Interceptor.
func (BaseInterceptor) OnSubmit(context.Context, float64, *Request) error { return nil }

// WrapEstimation implements Interceptor.
func (BaseInterceptor) WrapEstimation(base EstimationFunc) EstimationFunc { return base }

// OnElect implements Interceptor.
func (BaseInterceptor) OnElect(float64, Request, string, estvec.List) {}

// OnComplete implements Interceptor.
func (BaseInterceptor) OnComplete(RequestRecord) {}

// Finalize implements Interceptor.
func (BaseInterceptor) Finalize(*LiveResult) {}

// HookInterceptor adapts bare functions into an Interceptor — the
// bridge the legacy SEDConfig fields ride on, and the quickest way to
// drop an ad-hoc observer into a stack. Nil fields are no-ops.
type HookInterceptor struct {
	InitFunc           func(mount Mount) error
	OnSubmitFunc       func(ctx context.Context, now float64, req *Request) error
	WrapEstimationFunc func(base EstimationFunc) EstimationFunc
	OnElectFunc        func(now float64, req Request, server string, list estvec.List)
	OnCompleteFunc     func(rec RequestRecord)
	FinalizeFunc       func(res *LiveResult)
}

// Init implements Interceptor.
func (h *HookInterceptor) Init(mount Mount) error {
	if h.InitFunc == nil {
		return nil
	}
	return h.InitFunc(mount)
}

// OnSubmit implements Interceptor.
func (h *HookInterceptor) OnSubmit(ctx context.Context, now float64, req *Request) error {
	if h.OnSubmitFunc == nil {
		return nil
	}
	return h.OnSubmitFunc(ctx, now, req)
}

// WrapEstimation implements Interceptor.
func (h *HookInterceptor) WrapEstimation(base EstimationFunc) EstimationFunc {
	if h.WrapEstimationFunc == nil {
		return base
	}
	return h.WrapEstimationFunc(base)
}

// OnElect implements Interceptor.
func (h *HookInterceptor) OnElect(now float64, req Request, server string, list estvec.List) {
	if h.OnElectFunc != nil {
		h.OnElectFunc(now, req, server, list)
	}
}

// OnComplete implements Interceptor.
func (h *HookInterceptor) OnComplete(rec RequestRecord) {
	if h.OnCompleteFunc != nil {
		h.OnCompleteFunc(rec)
	}
}

// Finalize implements Interceptor.
func (h *HookInterceptor) Finalize(res *LiveResult) {
	if h.FinalizeFunc != nil {
		h.FinalizeFunc(res)
	}
}

// MeterInterceptor supplies live power readings to the SED's dynamic
// estimator — the interceptor spelling of the deprecated
// SEDConfig.Meter field. Mount it on a SED.
type MeterInterceptor struct {
	BaseInterceptor
	Meter MeterFunc
}

// Init implements Interceptor.
func (m *MeterInterceptor) Init(Mount) error {
	if m.Meter == nil {
		return errors.New("middleware: meter interceptor needs a meter function")
	}
	return nil
}

// PowerW implements PowerSource.
func (m *MeterInterceptor) PowerW() (float64, bool) { return m.Meter() }

// EstimationInterceptor replaces the SED's estimation function
// outright — the interceptor spelling of the deprecated
// SEDConfig.Estimation field. Because it discards the function built
// so far, mount it before interceptors whose wraps must survive (the
// legacy adapter order puts it after the carbon tag, reproducing the
// old field semantics where a custom estimation suppressed the carbon
// tag).
type EstimationInterceptor struct {
	BaseInterceptor
	Estimate EstimationFunc
}

// Init implements Interceptor.
func (e *EstimationInterceptor) Init(Mount) error {
	if e.Estimate == nil {
		return errors.New("middleware: estimation interceptor needs an estimation function")
	}
	return nil
}

// WrapEstimation implements Interceptor: the custom function replaces
// whatever the stack built below it.
func (e *EstimationInterceptor) WrapEstimation(EstimationFunc) EstimationFunc {
	return e.Estimate
}
