package middleware

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"greensched/internal/core"
	"greensched/internal/estvec"
	"greensched/internal/obs"
	"greensched/internal/sched"
)

// Child is anything an agent can forward a request to: a SED or a
// lower agent. Estimate returns the child's sorted candidate vectors
// (nil when it cannot serve the request).
type Child interface {
	Name() string
	Estimate(ctx context.Context, req Request) (estvec.List, error)
}

// Agent is a DIET agent (Local Agent, or Master Agent at the root):
// it forwards requests to its children in parallel, gathers their
// candidate lists, and sorts the merged list with its plug-in
// scheduler (§III-A steps 2–4).
type Agent struct {
	name   string
	policy sched.Policy

	mu           sync.RWMutex
	children     []Child
	topK         int
	childTimeout time.Duration
	spans        *obs.SpanWriter
}

// AgentConfig declares one agent of the hierarchy for the composed
// constructors: NewAgentFromConfig for mid-tree agents, NewMaster
// (through its functional options) for the root.
type AgentConfig struct {
	Name   string
	Policy sched.Policy
	// TopK bounds how many candidates the agent forwards upward
	// (0 = all).
	TopK int
	// ChildTimeout bounds each child's estimation round trip
	// (0 disables).
	ChildTimeout time.Duration
	// Interceptors is the agent's extension stack. On the Master the
	// full request lifecycle runs; on mid-tree agents only Init fires
	// today (elections — and therefore the lifecycle — happen at the
	// root), so lower mounts are for Init-time wiring and config
	// uniformity.
	Interceptors []Interceptor
	// Spans, when set, makes this agent emit an "estimate" span per
	// fan-out (see Agent.SetSpans).
	Spans *obs.SpanWriter
}

// NewAgentFromConfig builds a mid-tree agent from a config, running
// every interceptor's Init with the agent mount.
func NewAgentFromConfig(cfg AgentConfig) (*Agent, error) {
	a, err := NewAgent(cfg.Name, cfg.Policy, cfg.TopK)
	if err != nil {
		return nil, err
	}
	if cfg.ChildTimeout > 0 {
		a.SetChildTimeout(cfg.ChildTimeout)
	}
	a.SetSpans(cfg.Spans)
	for _, ic := range cfg.Interceptors {
		if ic == nil {
			return nil, fmt.Errorf("middleware: agent %s: nil interceptor", cfg.Name)
		}
		if err := ic.Init(Mount{Agent: a}); err != nil {
			return nil, fmt.Errorf("middleware: agent %s: %w", cfg.Name, err)
		}
	}
	return a, nil
}

// NewAgent builds an agent with a plug-in policy. topK bounds how many
// candidates it forwards upward (0 = all); DIET trims lists for
// scalability in deep hierarchies.
func NewAgent(name string, policy sched.Policy, topK int) (*Agent, error) {
	if name == "" {
		return nil, fmt.Errorf("middleware: agent needs a name")
	}
	if policy == nil {
		return nil, fmt.Errorf("middleware: agent %s needs a policy", name)
	}
	if topK < 0 {
		return nil, fmt.Errorf("middleware: agent %s: negative topK", name)
	}
	return &Agent{name: name, policy: policy, topK: topK}, nil
}

// Name implements Child.
func (a *Agent) Name() string { return a.name }

// Attach adds children (SEDs or sub-agents).
func (a *Agent) Attach(children ...Child) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.children = append(a.children, children...)
}

// SetChildTimeout bounds each child's estimation round trip; a slow or
// hung subtree is then treated like a failed one instead of stalling
// the whole scheduling process. Zero (the default) disables the bound.
func (a *Agent) SetChildTimeout(d time.Duration) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.childTimeout = d
}

// SetPolicy swaps the plug-in scheduler at runtime (the paper's
// framework lets administrators change ranking behaviour centrally).
func (a *Agent) SetPolicy(p sched.Policy) {
	if p == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.policy = p
}

// Policy returns the current plug-in scheduler.
func (a *Agent) Policy() sched.Policy {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.policy
}

// SetSpans makes the agent emit one "estimate" span per traced fan-out
// (a request carrying a TraceID). The span parents under the request's
// incoming ParentSpan, and the copies forwarded to children carry the
// new span's ID as their parent — so in a multi-level hierarchy each
// agent level nests its own estimate span, and transport spans (dial/
// encode/decode) nest under the level that crossed the wire. Nil turns
// emission off.
func (a *Agent) SetSpans(w *obs.SpanWriter) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.spans = w
}

// Estimate implements Child: parallel fan-out, merge, plug-in sort,
// optional top-K trim.
func (a *Agent) Estimate(ctx context.Context, req Request) (estvec.List, error) {
	a.mu.RLock()
	children := append([]Child(nil), a.children...)
	policy := a.policy
	topK := a.topK
	childTimeout := a.childTimeout
	spans := a.spans
	a.mu.RUnlock()
	if len(children) == 0 {
		return nil, nil
	}

	// One "estimate" span per traced fan-out at this level. The copies
	// forwarded to children parent under it, so sub-agent estimates and
	// transport spans nest per hierarchy level.
	estStart := obs.Uptime()
	var estSpan *obs.Span
	if spans != nil && req.TraceID != 0 {
		estSpan = &obs.Span{
			TraceID: req.TraceID, SpanID: obs.NewSpanID(), Parent: req.ParentSpan,
			Name: obs.StageEstimate, Src: a.name, Start: estStart,
		}
		req.ParentSpan = estSpan.SpanID
	}
	endEstimate := func(candidates int, err error) {
		if estSpan == nil {
			return
		}
		estSpan.DurSec = obs.Uptime() - estStart
		estSpan.Attrs = map[string]string{
			"children":   strconv.Itoa(len(children)),
			"candidates": strconv.Itoa(candidates),
		}
		if err != nil {
			estSpan.Err = err.Error()
		}
		spans.Emit(*estSpan)
	}

	lists := make([]estvec.List, len(children))
	errs := make([]error, len(children))
	var wg sync.WaitGroup
	for i, c := range children {
		wg.Add(1)
		go func(i int, c Child) {
			defer wg.Done()
			childCtx := ctx
			if childTimeout > 0 {
				var cancel context.CancelFunc
				childCtx, cancel = context.WithTimeout(ctx, childTimeout)
				defer cancel()
			}
			type estimation struct {
				list estvec.List
				err  error
			}
			ch := make(chan estimation, 1) // buffered: abandoned child must not leak
			go func() {
				list, err := c.Estimate(childCtx, req)
				ch <- estimation{list, err}
			}()
			select {
			case r := <-ch:
				lists[i], errs[i] = r.list, r.err
			case <-childCtx.Done():
				// The child ignored cancellation; abandon it.
				errs[i] = fmt.Errorf("middleware: child %s timed out: %w", c.Name(), childCtx.Err())
			}
		}(i, c)
	}
	wg.Wait()

	var merged estvec.List
	var lastErr error
	healthy := 0
	for i := range lists {
		if errs[i] != nil {
			// A dead child must not fail the whole hierarchy;
			// DIET treats unreachable subtrees as empty. Keep the
			// last error for the all-failed case.
			lastErr = errs[i]
			continue
		}
		healthy++
		merged = append(merged, lists[i]...)
	}
	if healthy == 0 && lastErr != nil {
		err := fmt.Errorf("middleware: agent %s: all children failed: %w", a.name, lastErr)
		endEstimate(0, err)
		return nil, err
	}
	merged.SortStable(policy.Less)
	if topK > 0 && len(merged) > topK {
		merged = merged[:topK]
	}
	endEstimate(len(merged), nil)
	return merged, nil
}

// CandidateFilter trims the final candidate list at the Master Agent
// before election — the §III-C hook where the provisioning layer
// applies Preference_provider (e.g. core.SelectCandidates).
type CandidateFilter func(estvec.List) estvec.List

// MasterAgent is the hierarchy root: it runs the full scheduling
// process and elects the SED for a request.
type MasterAgent struct {
	*Agent
	mu       sync.RWMutex
	filter   CandidateFilter
	selector *sched.Selector
}

// NewMasterAgent builds the root agent.
func NewMasterAgent(name string, policy sched.Policy) (*MasterAgent, error) {
	a, err := NewAgent(name, policy, 0)
	if err != nil {
		return nil, err
	}
	return &MasterAgent{Agent: a, selector: sched.NewSelector(policy)}, nil
}

// SetCandidateFilter installs the provisioning filter.
func (m *MasterAgent) SetCandidateFilter(f CandidateFilter) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.filter = f
}

// SetPolicy swaps both the sort policy and the election policy.
func (m *MasterAgent) SetPolicy(p sched.Policy) {
	if p == nil {
		return
	}
	m.Agent.SetPolicy(p)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.selector = sched.NewSelector(p)
}

// Elect runs steps 2–4 of the scheduling process and returns the
// chosen SED's name together with the sorted candidate list.
func (m *MasterAgent) Elect(ctx context.Context, req Request) (string, estvec.List, error) {
	list, err := m.Estimate(ctx, req)
	if err != nil {
		return "", nil, err
	}
	m.mu.RLock()
	filter := m.filter
	selector := m.selector
	m.mu.RUnlock()
	if filter != nil {
		list = filter(list)
	}
	if len(list) == 0 {
		return "", nil, fmt.Errorf("middleware: no server is able to solve %q", req.Service)
	}
	chosen, err := selector.Select(list)
	if err != nil {
		return "", list, err
	}
	return chosen.Server, list, nil
}

// Solver executes requests on a named SED — the client-side handle
// used for §III-A step 5 ("the client contacts the elected SED").
type Solver interface {
	Solve(ctx context.Context, req Request) (Response, error)
}

// Directory resolves SED names to Solvers. The in-process directory is
// a simple map; the TCP transport resolves to remote connections.
type Directory interface {
	Lookup(name string) (Solver, bool)
}

// MapDirectory is the in-process Directory.
type MapDirectory struct {
	mu   sync.RWMutex
	seds map[string]Solver
}

// NewMapDirectory returns an empty directory.
func NewMapDirectory() *MapDirectory {
	return &MapDirectory{seds: make(map[string]Solver)}
}

// Add registers a solver under a name.
func (d *MapDirectory) Add(name string, s Solver) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.seds[name] = s
}

// Lookup implements Directory.
func (d *MapDirectory) Lookup(name string) (Solver, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	s, ok := d.seds[name]
	return s, ok
}

// Names returns the registered SED names, sorted — the enumeration
// surface Master.SEDStats aggregates through.
func (d *MapDirectory) Names() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]string, 0, len(d.seds))
	for name := range d.seds {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Client submits problems through a Master Agent and invokes the
// elected SED.
type Client struct {
	ma  *MasterAgent
	dir Directory

	nextID uint64
	mu     sync.Mutex
}

// NewClient builds a client.
func NewClient(ma *MasterAgent, dir Directory) (*Client, error) {
	if ma == nil || dir == nil {
		return nil, fmt.Errorf("middleware: client needs a master agent and a directory")
	}
	return &Client{ma: ma, dir: dir}, nil
}

// Submit runs the full §III-A problem-submission flow.
func (c *Client) Submit(ctx context.Context, service string, ops float64, pref float64, payload []byte) (Response, error) {
	c.mu.Lock()
	c.nextID++
	id := c.nextID
	c.mu.Unlock()
	req := Request{ID: id, Service: service, Ops: ops, Pref: core.UserPref(pref), Payload: payload}

	server, _, err := c.ma.Elect(ctx, req)
	if err != nil {
		return Response{}, err
	}
	solver, ok := c.dir.Lookup(server)
	if !ok {
		return Response{}, fmt.Errorf("middleware: elected SED %q not in directory", server)
	}
	return solver.Solve(ctx, req)
}
