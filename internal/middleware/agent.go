package middleware

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"greensched/internal/core"
	"greensched/internal/estvec"
	"greensched/internal/obs"
	"greensched/internal/sched"
)

// Child is anything an agent can forward a request to: a SED or a
// lower agent. Estimate returns the child's sorted candidate vectors
// (nil when it cannot serve the request).
type Child interface {
	Name() string
	Estimate(ctx context.Context, req Request) (estvec.List, error)
}

// Agent is a DIET agent (Local Agent, or Master Agent at the root):
// it forwards requests to its children in parallel, gathers their
// candidate lists, and sorts the merged list with its plug-in
// scheduler (§III-A steps 2–4).
//
// The agent's configuration lives behind an atomic copy-on-write
// snapshot: Estimate loads one pointer and runs lock-free, so
// concurrent requests never contend on a mutex just to read children
// that almost never change. Mutators (Attach, SetPolicy, ...) build a
// fresh snapshot under mu and publish it atomically.
type Agent struct {
	name string

	mu    sync.Mutex // serializes mutators; readers go through state
	state atomic.Pointer[agentState]
}

// agentState is one immutable configuration snapshot. Fields are never
// mutated after publication; mutators copy.
type agentState struct {
	children     []Child
	policy       sched.Policy
	topK         int
	childTimeout time.Duration
	spans        *obs.SpanWriter
	filter       CandidateFilter
	// localFanout is true when every child is an in-process SED:
	// estimations answer in microseconds, so the fan-out calls them
	// sequentially instead of paying goroutine churn per request.
	// Recomputed by Attach.
	localFanout bool
}

// mutate publishes a new snapshot derived from the current one.
func (a *Agent) mutate(f func(st *agentState)) {
	a.mu.Lock()
	defer a.mu.Unlock()
	next := *a.state.Load()
	f(&next)
	a.state.Store(&next)
}

// AgentConfig declares one agent of the hierarchy for the composed
// constructors: NewAgentFromConfig for mid-tree agents, NewMaster
// (through its functional options) for the root.
type AgentConfig struct {
	Name   string
	Policy sched.Policy
	// TopK bounds how many candidates the agent forwards upward
	// (0 = all).
	TopK int
	// ChildTimeout bounds each child's estimation round trip
	// (0 disables).
	ChildTimeout time.Duration
	// Interceptors is the agent's extension stack. On the Master the
	// full request lifecycle runs; on mid-tree agents only Init fires
	// today (elections — and therefore the lifecycle — happen at the
	// root), so lower mounts are for Init-time wiring and config
	// uniformity.
	Interceptors []Interceptor
	// Spans, when set, makes this agent emit an "estimate" span per
	// fan-out (see Agent.SetSpans).
	Spans *obs.SpanWriter
	// CandidateFilter trims this agent's merged candidate list before
	// the top-K cut (see Agent.SetCandidateFilter) — the sub-tree
	// election hook.
	CandidateFilter CandidateFilter
}

// NewAgentFromConfig builds a mid-tree agent from a config, running
// every interceptor's Init with the agent mount.
func NewAgentFromConfig(cfg AgentConfig) (*Agent, error) {
	a, err := NewAgent(cfg.Name, cfg.Policy, cfg.TopK)
	if err != nil {
		return nil, err
	}
	if cfg.ChildTimeout > 0 {
		a.SetChildTimeout(cfg.ChildTimeout)
	}
	a.SetSpans(cfg.Spans)
	if cfg.CandidateFilter != nil {
		a.SetCandidateFilter(cfg.CandidateFilter)
	}
	for _, ic := range cfg.Interceptors {
		if ic == nil {
			return nil, fmt.Errorf("middleware: agent %s: nil interceptor", cfg.Name)
		}
		if err := ic.Init(Mount{Agent: a}); err != nil {
			return nil, fmt.Errorf("middleware: agent %s: %w", cfg.Name, err)
		}
	}
	return a, nil
}

// NewAgent builds an agent with a plug-in policy. topK bounds how many
// candidates it forwards upward (0 = all); DIET trims lists for
// scalability in deep hierarchies.
func NewAgent(name string, policy sched.Policy, topK int) (*Agent, error) {
	if name == "" {
		return nil, fmt.Errorf("middleware: agent needs a name")
	}
	if policy == nil {
		return nil, fmt.Errorf("middleware: agent %s needs a policy", name)
	}
	if topK < 0 {
		return nil, fmt.Errorf("middleware: agent %s: negative topK", name)
	}
	a := &Agent{name: name}
	a.state.Store(&agentState{policy: policy, topK: topK, localFanout: true})
	return a, nil
}

// Name implements Child.
func (a *Agent) Name() string { return a.name }

// Attach adds children (SEDs or sub-agents).
func (a *Agent) Attach(children ...Child) {
	a.mutate(func(st *agentState) {
		// Fresh backing array: the previous snapshot's slice may still
		// be scanned by an in-flight Estimate.
		next := make([]Child, 0, len(st.children)+len(children))
		next = append(next, st.children...)
		st.children = append(next, children...)
		st.localFanout = true
		for _, c := range st.children {
			if _, ok := c.(*SED); !ok {
				st.localFanout = false
				break
			}
		}
	})
}

// Detach removes the first child with the given name, reporting
// whether one was found. Like Attach it publishes a fresh snapshot, so
// in-flight Estimates keep scanning the old child list unharmed.
func (a *Agent) Detach(name string) bool {
	removed := false
	a.mutate(func(st *agentState) {
		next := make([]Child, 0, len(st.children))
		for _, c := range st.children {
			if !removed && c.Name() == name {
				removed = true
				continue
			}
			next = append(next, c)
		}
		st.children = next
		st.localFanout = true
		for _, c := range next {
			if _, ok := c.(*SED); !ok {
				st.localFanout = false
				break
			}
		}
	})
	return removed
}

// SetChildTimeout bounds each child's estimation round trip; a slow or
// hung subtree is then treated like a failed one instead of stalling
// the whole scheduling process. Zero (the default) disables the bound.
func (a *Agent) SetChildTimeout(d time.Duration) {
	a.mutate(func(st *agentState) { st.childTimeout = d })
}

// SetPolicy swaps the plug-in scheduler at runtime (the paper's
// framework lets administrators change ranking behaviour centrally).
func (a *Agent) SetPolicy(p sched.Policy) {
	if p == nil {
		return
	}
	a.mutate(func(st *agentState) { st.policy = p })
}

// Policy returns the current plug-in scheduler.
func (a *Agent) Policy() sched.Policy {
	return a.state.Load().policy
}

// SetCandidateFilter trims this agent's merged, sorted candidate list
// before the top-K cut — a sub-tree election: a Local Agent can apply
// its own Preference_provider to the servers it fronts, so the upward
// list already reflects a per-site provisioning decision. Nil removes
// the filter. (MasterAgent.SetCandidateFilter is the root-level
// variant applied at election time.)
func (a *Agent) SetCandidateFilter(f CandidateFilter) {
	a.mutate(func(st *agentState) { st.filter = f })
}

// SetSpans makes the agent emit one "estimate" span per traced fan-out
// (a request carrying a TraceID). The span parents under the request's
// incoming ParentSpan, and the copies forwarded to children carry the
// new span's ID as their parent — so in a multi-level hierarchy each
// agent level nests its own estimate span, and transport spans (dial/
// encode/decode) nest under the level that crossed the wire. Nil turns
// emission off.
func (a *Agent) SetSpans(w *obs.SpanWriter) {
	a.mutate(func(st *agentState) { st.spans = w })
}

// Estimate implements Child: parallel fan-out, merge, plug-in sort,
// per-agent candidate filter, optional top-K trim. The configuration
// snapshot is one atomic load — concurrent requests share it without
// locking or copying — and the fan-out spawns the minimum goroutines
// the semantics allow: none for a single child without a timeout, one
// per child without a timeout, two per child (worker + abandoning
// waiter) only when a timeout must cut a hung subtree loose.
func (a *Agent) Estimate(ctx context.Context, req Request) (estvec.List, error) {
	st := a.state.Load()
	children := st.children
	policy := st.policy
	topK := st.topK
	childTimeout := st.childTimeout
	spans := st.spans
	if len(children) == 0 {
		return nil, nil
	}

	// One "estimate" span per traced fan-out at this level. The copies
	// forwarded to children parent under it, so sub-agent estimates and
	// transport spans nest per hierarchy level.
	var estStart float64
	var estSpan *obs.Span
	if spans != nil && req.TraceID != 0 {
		estStart = obs.Uptime()
		estSpan = &obs.Span{
			TraceID: req.TraceID, SpanID: obs.NewSpanID(), Parent: req.ParentSpan,
			Name: obs.StageEstimate, Src: a.name, Start: estStart,
		}
		req.ParentSpan = estSpan.SpanID
	}
	endEstimate := func(candidates int, err error) {
		if estSpan == nil {
			return
		}
		estSpan.DurSec = obs.Uptime() - estStart
		estSpan.Attrs = map[string]string{
			"children":   strconv.Itoa(len(children)),
			"candidates": strconv.Itoa(candidates),
		}
		if err != nil {
			estSpan.Err = err.Error()
		}
		spans.Emit(*estSpan)
	}

	var merged estvec.List
	var lastErr error
	healthy := 0
	switch {
	case childTimeout <= 0 && (len(children) == 1 || st.localFanout):
		// A single child, or all in-process SEDs: their estimations
		// answer in microseconds, so sequential calls beat spawning
		// goroutines per request. Merge order matches children order,
		// exactly like the indexed parallel paths.
		for _, c := range children {
			list, err := c.Estimate(ctx, req)
			if err != nil {
				lastErr = err
				continue
			}
			healthy++
			if merged == nil {
				merged = list
			} else {
				merged = append(merged, list...)
			}
		}
	case childTimeout <= 0:
		// No timeout to enforce: one goroutine per child.
		lists := make([]estvec.List, len(children))
		errs := make([]error, len(children))
		var wg sync.WaitGroup
		wg.Add(len(children))
		for i, c := range children {
			go func(i int, c Child) {
				defer wg.Done()
				lists[i], errs[i] = c.Estimate(ctx, req)
			}(i, c)
		}
		wg.Wait()
		merged, lastErr, healthy = mergeLists(lists, errs)
	default:
		// Bounded round trips: a worker per child plus a waiter that
		// abandons it at the deadline (the worker may ignore
		// cancellation; its result channel is buffered so it never
		// leaks).
		lists := make([]estvec.List, len(children))
		errs := make([]error, len(children))
		var wg sync.WaitGroup
		wg.Add(len(children))
		for i, c := range children {
			go func(i int, c Child) {
				defer wg.Done()
				childCtx, cancel := context.WithTimeout(ctx, childTimeout)
				defer cancel()
				type estimation struct {
					list estvec.List
					err  error
				}
				ch := make(chan estimation, 1)
				go func() {
					list, err := c.Estimate(childCtx, req)
					ch <- estimation{list, err}
				}()
				select {
				case r := <-ch:
					lists[i], errs[i] = r.list, r.err
				case <-childCtx.Done():
					// The child ignored cancellation; abandon it.
					errs[i] = fmt.Errorf("middleware: child %s timed out: %w", c.Name(), childCtx.Err())
				}
			}(i, c)
		}
		wg.Wait()
		merged, lastErr, healthy = mergeLists(lists, errs)
	}
	if healthy == 0 && lastErr != nil {
		err := fmt.Errorf("middleware: agent %s: all children failed: %w", a.name, lastErr)
		endEstimate(0, err)
		return nil, err
	}
	merged.SortStable(policy.Less)
	if st.filter != nil {
		merged = st.filter(merged)
	}
	if topK > 0 && len(merged) > topK {
		merged = merged[:topK]
	}
	endEstimate(len(merged), nil)
	return merged, nil
}

// mergeLists folds the indexed fan-out results in children order. A
// dead child must not fail the whole hierarchy; DIET treats unreachable
// subtrees as empty. The last error is kept for the all-failed case.
func mergeLists(lists []estvec.List, errs []error) (merged estvec.List, lastErr error, healthy int) {
	for i := range lists {
		if errs[i] != nil {
			lastErr = errs[i]
			continue
		}
		healthy++
		merged = append(merged, lists[i]...)
	}
	return merged, lastErr, healthy
}

// CandidateFilter trims the final candidate list at the Master Agent
// before election — the §III-C hook where the provisioning layer
// applies Preference_provider (e.g. core.SelectCandidates).
type CandidateFilter func(estvec.List) estvec.List

// MasterAgent is the hierarchy root: it runs the full scheduling
// process and elects the SED for a request. Its election state
// (provisioning filter + selector) sits behind the same atomic
// copy-on-write discipline as the Agent snapshot, so concurrent
// elections never serialize on configuration reads.
type MasterAgent struct {
	*Agent
	mu    sync.Mutex // serializes mutators; readers load elect
	elect atomic.Pointer[electState]
}

// electState is the root's immutable election configuration.
type electState struct {
	filter   CandidateFilter
	selector *sched.Selector
}

// NewMasterAgent builds the root agent.
func NewMasterAgent(name string, policy sched.Policy) (*MasterAgent, error) {
	a, err := NewAgent(name, policy, 0)
	if err != nil {
		return nil, err
	}
	m := &MasterAgent{Agent: a}
	m.elect.Store(&electState{selector: sched.NewSelector(policy)})
	return m, nil
}

// SetCandidateFilter installs the provisioning filter.
func (m *MasterAgent) SetCandidateFilter(f CandidateFilter) {
	m.mu.Lock()
	defer m.mu.Unlock()
	next := *m.elect.Load()
	next.filter = f
	m.elect.Store(&next)
}

// SetPolicy swaps both the sort policy and the election policy.
func (m *MasterAgent) SetPolicy(p sched.Policy) {
	if p == nil {
		return
	}
	m.Agent.SetPolicy(p)
	m.mu.Lock()
	defer m.mu.Unlock()
	next := *m.elect.Load()
	next.selector = sched.NewSelector(p)
	m.elect.Store(&next)
}

// Elect runs steps 2–4 of the scheduling process and returns the
// chosen SED's name together with the sorted candidate list.
func (m *MasterAgent) Elect(ctx context.Context, req Request) (string, estvec.List, error) {
	list, err := m.Estimate(ctx, req)
	if err != nil {
		return "", nil, err
	}
	st := m.elect.Load()
	filter := st.filter
	selector := st.selector
	if filter != nil {
		list = filter(list)
	}
	if len(list) == 0 {
		return "", nil, fmt.Errorf("middleware: no server is able to solve %q", req.Service)
	}
	chosen, err := selector.Select(list)
	if err != nil {
		return "", list, err
	}
	return chosen.Server, list, nil
}

// Solver executes requests on a named SED — the client-side handle
// used for §III-A step 5 ("the client contacts the elected SED").
type Solver interface {
	Solve(ctx context.Context, req Request) (Response, error)
}

// Directory resolves SED names to Solvers. The in-process directory is
// a simple map; the TCP transport resolves to remote connections.
type Directory interface {
	Lookup(name string) (Solver, bool)
}

// MapDirectory is the in-process Directory.
type MapDirectory struct {
	mu   sync.RWMutex
	seds map[string]Solver
}

// NewMapDirectory returns an empty directory.
func NewMapDirectory() *MapDirectory {
	return &MapDirectory{seds: make(map[string]Solver)}
}

// Add registers a solver under a name.
func (d *MapDirectory) Add(name string, s Solver) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.seds[name] = s
}

// Lookup implements Directory.
func (d *MapDirectory) Lookup(name string) (Solver, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	s, ok := d.seds[name]
	return s, ok
}

// Names returns the registered SED names, sorted — the enumeration
// surface Master.SEDStats aggregates through.
func (d *MapDirectory) Names() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]string, 0, len(d.seds))
	for name := range d.seds {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Client submits problems through a Master Agent and invokes the
// elected SED.
type Client struct {
	ma  *MasterAgent
	dir Directory

	nextID atomic.Uint64
}

// NewClient builds a client.
func NewClient(ma *MasterAgent, dir Directory) (*Client, error) {
	if ma == nil || dir == nil {
		return nil, fmt.Errorf("middleware: client needs a master agent and a directory")
	}
	return &Client{ma: ma, dir: dir}, nil
}

// Submit runs the full §III-A problem-submission flow.
func (c *Client) Submit(ctx context.Context, service string, ops float64, pref float64, payload []byte) (Response, error) {
	req := Request{ID: c.nextID.Add(1), Service: service, Ops: ops, Pref: core.UserPref(pref), Payload: payload}

	server, _, err := c.ma.Elect(ctx, req)
	if err != nil {
		return Response{}, err
	}
	solver, ok := c.dir.Lookup(server)
	if !ok {
		return Response{}, fmt.Errorf("middleware: elected SED %q not in directory", server)
	}
	return solver.Solve(ctx, req)
}
