package middleware

import (
	"context"
	"sync"
	"testing"

	"greensched/internal/sched"
)

// TestLifecycleHooks: AgentJoined fires for construction-time children
// and Attach, AgentLeft fires on Detach (and a detached SED is no
// longer electable), SEDDown fires when a dispatch fails while the
// request is still live.
func TestLifecycleHooks(t *testing.T) {
	var mu sync.Mutex
	var joined, left []string
	var downName string
	var downErr error

	lc := Lifecycle{
		AgentJoined: func(name string) { mu.Lock(); joined = append(joined, name); mu.Unlock() },
		AgentLeft:   func(name string) { mu.Lock(); left = append(left, name); mu.Unlock() },
		SEDDown: func(name string, err error) {
			mu.Lock()
			downName, downErr = name, err
			mu.Unlock()
		},
	}

	sedA := newSED(t, "sed-a", 1, 1e9, 100)
	m, err := NewMaster(
		WithPolicy(sched.New(sched.LeastLoaded)),
		WithSEDs(sedA),
		WithLifecycle(lc),
	)
	if err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	if len(joined) != 1 || joined[0] != "sed-a" {
		t.Fatalf("joined after NewMaster = %v, want [sed-a]", joined)
	}
	mu.Unlock()

	sedB := newSED(t, "sed-b", 1, 1e9, 100)
	m.Attach(sedB)
	mu.Lock()
	if len(joined) != 2 || joined[1] != "sed-b" {
		t.Fatalf("joined after Attach = %v, want [sed-a sed-b]", joined)
	}
	mu.Unlock()

	if !m.Detach("sed-b") {
		t.Fatal("Detach(sed-b) = false, want true")
	}
	if m.Detach("sed-b") {
		t.Fatal("second Detach(sed-b) = true, want false (already gone)")
	}
	mu.Lock()
	if len(left) != 1 || left[0] != "sed-b" {
		t.Fatalf("left = %v, want [sed-b]", left)
	}
	mu.Unlock()

	// The detached SED is out of the election pool: every dispatch
	// lands on the survivor.
	for i := 0; i < 4; i++ {
		resp, err := m.Submit(context.Background(), "burn", 1e6, 0.5, nil)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Server != "sed-a" {
			t.Fatalf("post-detach dispatch landed on %q, want sed-a", resp.Server)
		}
	}

	// A failing dispatch with a live request context reports the SED.
	sedBad, err := NewSED(SEDConfig{Name: "sed-bad", Slots: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := sedBad.Register(Service{
		Name:  "flaky",
		Solve: func(context.Context, Request) ([]byte, error) { return nil, context.DeadlineExceeded },
	}); err != nil {
		t.Fatal(err)
	}
	m.Attach(sedBad)
	if _, err := m.Submit(context.Background(), "flaky", 1e6, 0.5, nil); err == nil {
		t.Fatal("flaky dispatch succeeded, want error")
	}
	mu.Lock()
	defer mu.Unlock()
	if downName != "sed-bad" || downErr == nil {
		t.Fatalf("SEDDown = (%q, %v), want sed-bad with its error", downName, downErr)
	}
}
