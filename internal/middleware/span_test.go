package middleware

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"greensched/internal/obs"
	"greensched/internal/sched"
)

// readSpans parses a span stream back.
func readSpans(t *testing.T, buf *bytes.Buffer) []obs.Span {
	t.Helper()
	spans, err := obs.ReadSpans(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("span stream does not parse: %v", err)
	}
	return spans
}

// spansByTrace groups spans per trace.
func spansByTrace(spans []obs.Span) map[uint64][]obs.Span {
	byTrace := map[uint64][]obs.Span{}
	for _, sp := range spans {
		byTrace[sp.TraceID] = append(byTrace[sp.TraceID], sp)
	}
	return byTrace
}

// TestSpanTreeStitchesAcrossTCP: a live TCP run produces, for every
// request, one span tree whose hop structure is stitched purely by the
// trace context that crossed the gob wire: submit at the root, elect
// and dispatch under it, the SED's own queue/solve spans under
// dispatch, and the transport's dial/encode/decode spans nested where
// the wire was crossed.
func TestSpanTreeStitchesAcrossTCP(t *testing.T) {
	var buf bytes.Buffer
	w := obs.NewSpanWriter(&buf)
	sedNames := map[string]bool{"lean": true, "hungry": true}
	opts := []Option{
		WithPolicy(sched.New(sched.Power)),
		WithSpans(w),
	}
	for name, speed := range map[string]float64{"lean": 2e9, "hungry": 4e9} {
		sed, err := NewSED(SEDConfig{
			Name: name, Slots: 2, Spans: w,
			Meter: func() (float64, bool) { return 100, true },
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := sed.Register(burnService(speed)); err != nil {
			t.Fatal(err)
		}
		ep, err := Serve("127.0.0.1:0", sed, sed)
		if err != nil {
			t.Fatal(err)
		}
		defer ep.Close()
		rem := Dial(name, ep.Addr())
		rem.SetSpans(w)
		defer rem.Close()
		opts = append(opts, WithRemotes(rem))
	}
	m, err := NewMaster(opts...)
	if err != nil {
		t.Fatal(err)
	}
	const n = 6
	for i := 0; i < n; i++ {
		if _, err := m.Do(context.Background(), Request{Service: "burn", Ops: 1e6}); err != nil {
			t.Fatal(err)
		}
	}

	byTrace := spansByTrace(readSpans(t, &buf))
	if len(byTrace) != n {
		t.Fatalf("%d traces for %d requests", len(byTrace), n)
	}
	for trace, spans := range byTrace {
		byID := map[uint64]obs.Span{}
		var root obs.Span
		roots := 0
		for _, sp := range spans {
			byID[sp.SpanID] = sp
			if sp.Parent == 0 {
				root, roots = sp, roots+1
			}
		}
		if roots != 1 || root.Name != obs.StageSubmit {
			t.Fatalf("trace %d: %d roots, first %q — want one submit root", trace, roots, root.Name)
		}
		stages := map[string][]obs.Span{}
		for _, sp := range spans {
			stages[sp.Name] = append(stages[sp.Name], sp)
		}
		for _, want := range obs.CanonicalStages {
			if len(stages[want]) == 0 {
				t.Fatalf("trace %d misses stage %q (has %v)", trace, want, stages)
			}
		}
		for _, stage := range []string{obs.StageDial, obs.StageEncode, obs.StageDecode} {
			for _, sp := range stages[stage] {
				if !sedNames[sp.Src] {
					t.Errorf("trace %d: %s span src %q, want a remote name", trace, stage, sp.Src)
				}
				parent, ok := byID[sp.Parent]
				if !ok || (parent.Name != obs.StageDispatch && parent.Name != obs.StageEstimate) {
					t.Errorf("trace %d: %s span parents under %q, want dispatch or estimate", trace, stage, parent.Name)
				}
			}
		}
		dispatch := stages[obs.StageDispatch][0]
		if dispatch.Parent != root.SpanID {
			t.Errorf("trace %d: dispatch parents under %d, want root %d", trace, dispatch.Parent, root.SpanID)
		}
		for _, stage := range []string{obs.StageQueue, obs.StageSolve} {
			sp := stages[stage][0]
			// The SED emitted these itself (shared writer): the source
			// must be the SED's name and the parent the dispatch span
			// that crossed the wire.
			if !sedNames[sp.Src] {
				t.Errorf("trace %d: %s span src %q, want the SED's name", trace, stage, sp.Src)
			}
			if sp.Parent != dispatch.SpanID {
				t.Errorf("trace %d: %s parents under %d, want dispatch %d", trace, stage, sp.Parent, dispatch.SpanID)
			}
		}
		if elect := stages[obs.StageElect][0]; elect.Parent != root.SpanID {
			t.Errorf("trace %d: elect parents under %d, want root %d", trace, elect.Parent, root.SpanID)
		}
	}
}

// TestSpanEmissionConcurrent hammers one shared SpanWriter from two
// masters (in-process and TCP transports) under concurrent submission;
// run with -race, and the merged stream must still parse line by line.
func TestSpanEmissionConcurrent(t *testing.T) {
	var buf bytes.Buffer
	w := obs.NewSpanWriter(&buf)

	inproc, err := NewMaster(
		WithName("inproc"),
		WithPolicy(sched.New(sched.Power)),
		WithSEDs(newSED(t, "local", 4, 4e9, 100)),
		WithSpans(w),
	)
	if err != nil {
		t.Fatal(err)
	}

	far := newSED(t, "far", 4, 4e9, 100)
	ep, err := Serve("127.0.0.1:0", far, far)
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	rem := Dial("far", ep.Addr())
	rem.SetSpans(w)
	defer rem.Close()
	tcp, err := NewMaster(
		WithName("tcp"),
		WithPolicy(sched.New(sched.Power)),
		WithRemotes(rem),
		WithSpans(w),
	)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for _, m := range []*Master{inproc, tcp} {
		for i := 0; i < 16; i++ {
			wg.Add(1)
			go func(m *Master) {
				defer wg.Done()
				if _, err := m.Do(context.Background(), Request{Service: "burn", Ops: 1e5}); err != nil {
					errs <- err
				}
			}(m)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	spans := readSpans(t, &buf)
	byTrace := spansByTrace(spans)
	if len(byTrace) != 32 {
		t.Fatalf("%d traces for 32 requests", len(byTrace))
	}
	seen := map[uint64]bool{}
	for _, sp := range spans {
		if sp.TraceID == 0 || sp.SpanID == 0 {
			t.Fatalf("span without identity: %+v", sp)
		}
		if seen[sp.SpanID] {
			t.Fatalf("span ID %d reused", sp.SpanID)
		}
		seen[sp.SpanID] = true
	}
}

// TestSpanTransportFaultTerminates: a connection dropped mid-solve
// still terminates the request's span tree — the dispatch and root
// spans carry the transport error instead of dangling open.
func TestSpanTransportFaultTerminates(t *testing.T) {
	var buf bytes.Buffer
	w := obs.NewSpanWriter(&buf)
	release := make(chan struct{})
	defer close(release)
	sed := newSED(t, "doomed", 1, 2e9, 100)
	sed.Register(Service{Name: "slow", Solve: func(ctx context.Context, _ Request) ([]byte, error) {
		select {
		case <-release:
			return []byte("late"), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}})
	ep, err := Serve("127.0.0.1:0", sed, sed)
	if err != nil {
		t.Fatal(err)
	}
	rem := Dial("doomed", ep.Addr())
	rem.SetSpans(w)
	defer rem.Close()
	m, err := NewMaster(
		WithPolicy(sched.New(sched.Power)),
		WithRemotes(rem),
		WithSpans(w),
	)
	if err != nil {
		t.Fatal(err)
	}

	go func() {
		time.Sleep(100 * time.Millisecond) // let the solve get in flight
		ep.Close()
	}()
	_, err = m.Do(context.Background(), Request{Service: "slow", Ops: 1e6})
	if !errors.Is(err, ErrTransport) {
		t.Fatalf("dropped connection err = %v, want ErrTransport", err)
	}

	var dispatch, root *obs.Span
	for _, sp := range readSpans(t, &buf) {
		sp := sp
		switch sp.Name {
		case obs.StageDispatch:
			dispatch = &sp
		case obs.StageSubmit:
			root = &sp
		}
	}
	if dispatch == nil || dispatch.Err == "" {
		t.Fatalf("dispatch span = %+v, want terminated with the transport error", dispatch)
	}
	if root == nil || root.Err == "" {
		t.Fatalf("root span = %+v, want terminated with the transport error", root)
	}
}

// TestWithRetriesReelects: a failed Solve under WithRetries re-elects
// excluding the failed SED — the request completes on the healthy one,
// the failover is visible as a "reelect" span, and the lifecycle books
// one completion (not a failure plus a success).
func TestWithRetriesReelects(t *testing.T) {
	var buf bytes.Buffer
	w := obs.NewSpanWriter(&buf)
	// POWER makes the flaky SED (lowest watts) win the first election.
	flaky := newSED(t, "flaky", 1, 2e9, 50)
	flaky.Register(Service{Name: "shaky", Solve: func(context.Context, Request) ([]byte, error) {
		return nil, fmt.Errorf("spurious execution failure")
	}})
	healthy := newSED(t, "healthy", 1, 2e9, 400)
	healthy.Register(Service{Name: "shaky", Solve: func(context.Context, Request) ([]byte, error) {
		return []byte("rescued"), nil
	}})
	prime(t, map[string]*SED{"flaky": flaky, "healthy": healthy})

	m, err := NewMaster(
		WithPolicy(sched.New(sched.Power)),
		WithSEDs(flaky, healthy),
		WithRetries(2),
		WithSpans(w),
	)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := m.Do(context.Background(), Request{Service: "shaky", Ops: 1e6})
	if err != nil {
		t.Fatalf("failover Do: %v", err)
	}
	if resp.Server != "healthy" || string(resp.Output) != "rescued" {
		t.Fatalf("resp = %+v, want rescue by healthy", resp)
	}
	res := m.Finalize()
	if res.Completed != 1 || res.Failed != 0 {
		t.Fatalf("result %+v, want exactly one completion and no failure", res)
	}

	reelects := 0
	for _, sp := range readSpans(t, &buf) {
		if sp.Name == obs.StageReelect {
			reelects++
			if sp.Attrs["server"] != "healthy" {
				t.Errorf("reelect span chose %q, want healthy", sp.Attrs["server"])
			}
		}
	}
	if reelects != 1 {
		t.Fatalf("%d reelect spans, want 1", reelects)
	}
}

// TestRemoteStatsFleetCoverage: the wireStats frame carries a remote
// daemon's stats snapshot to Remote.Stats, Master.SEDStats covers the
// remote, and one master scrape exposes the fleet's greensched_sed_*
// series without any per-SED listener.
func TestRemoteStatsFleetCoverage(t *testing.T) {
	far := newSED(t, "far", 2, 2e9, 100)
	ep, err := Serve("127.0.0.1:0", far, far)
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	rem := Dial("far", ep.Addr())
	defer rem.Close()

	obsIC := &ObsInterceptor{Labels: map[string]string{"transport": "tcp"}}
	m, err := NewMaster(
		WithPolicy(sched.New(sched.Power)),
		WithSEDs(newSED(t, "near", 2, 2e9, 200)),
		WithRemotes(rem),
		WithInterceptors(obsIC),
	)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := m.Do(context.Background(), Request{Service: "burn", Ops: 1e6}); err != nil {
			t.Fatal(err)
		}
	}

	st, err := rem.Stats()
	if err != nil {
		t.Fatalf("remote stats: %v", err)
	}
	if st.Name != "far" || st.Completed == 0 {
		t.Fatalf("remote stats = %+v, want far with completions", st)
	}

	fleet := m.SEDStats()
	if len(fleet) != 2 || fleet[0].Name != "far" || fleet[1].Name != "near" {
		t.Fatalf("fleet stats = %+v, want [far near]", fleet)
	}
	total := fleet[0].Completed + fleet[1].Completed
	if total != 4 {
		t.Fatalf("fleet completions = %d, want 4", total)
	}

	samples := scrape(t, obsIC.Metrics())
	for _, sed := range []string{"far", "near"} {
		if _, ok := samples.Value("greensched_sed_completed_total", "transport=tcp", "sed="+sed); !ok {
			t.Errorf("greensched_sed_completed_total{sed=%s} missing from the master scrape", sed)
		}
		if _, ok := samples.Value("greensched_sed_power_watts", "transport=tcp", "sed="+sed); !ok {
			t.Errorf("greensched_sed_power_watts{sed=%s} missing from the master scrape", sed)
		}
	}
	got, _ := samples.Value("greensched_sed_completed_total", "sed=far")
	want := float64(fleet[0].Completed)
	if got != want {
		t.Errorf("scraped far completions = %v, want %v", got, want)
	}

	// An unreachable daemon is skipped, not an error.
	ep.Close()
	rem.Close()
	fleet = m.SEDStats()
	if len(fleet) != 1 || fleet[0].Name != "near" {
		t.Fatalf("fleet stats after daemon death = %+v, want [near]", fleet)
	}
}

// TestStageHistogramSelfScrape: with an ObsInterceptor registry in the
// stack, every lifecycle stage feeds greensched_stage_seconds even
// without a span writer, and the served /metrics carries the stage
// histograms next to the Go runtime collector's process gauges.
func TestStageHistogramSelfScrape(t *testing.T) {
	obsIC := &ObsInterceptor{Labels: map[string]string{"transport": "inproc"}}
	m, err := NewMaster(
		WithPolicy(sched.New(sched.Power)),
		WithSEDs(newSED(t, "only", 2, 2e9, 100)),
		WithInterceptors(obsIC),
		WithMetricsAddr("127.0.0.1:0"),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	const n = 5
	for i := 0; i < n; i++ {
		if _, err := m.Do(context.Background(), Request{Service: "burn", Ops: 1e6}); err != nil {
			t.Fatal(err)
		}
	}

	resp, err := http.Get("http://" + m.MetricsAddr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	samples, err := obs.ParseText(resp.Body)
	if err != nil {
		t.Fatalf("served exposition does not parse: %v", err)
	}
	for _, stage := range obs.CanonicalStages {
		got, ok := samples.Value("greensched_stage_seconds_count", "src=master", "stage="+stage)
		if !ok || got != n {
			t.Errorf("stage_seconds_count{stage=%s} = %v ok=%v, want %d", stage, got, ok, n)
		}
	}
	if got, ok := samples.Value("greensched_go_goroutines"); !ok || got <= 0 {
		t.Errorf("greensched_go_goroutines = %v ok=%v, want > 0", got, ok)
	}
	if _, ok := samples.Value("greensched_go_heap_bytes"); !ok {
		t.Error("greensched_go_heap_bytes missing from the served scrape")
	}
}
