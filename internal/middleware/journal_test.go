package middleware

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"greensched/internal/estvec"
	"greensched/internal/journal"
	"greensched/internal/sched"
)

// stallService blocks until release is closed (or the request context
// dies) — the in-process stand-in for an executor that is mid-compute
// when the master crashes.
func stallService(release <-chan struct{}, started chan<- uint64) Service {
	return Service{
		Name: "stall",
		Solve: func(ctx context.Context, req Request) ([]byte, error) {
			select {
			case started <- req.ID:
			default:
			}
			select {
			case <-release:
				return []byte("done"), nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
	}
}

// rebookProbe records every Rebook call Replay makes.
type rebookProbe struct {
	BaseInterceptor
	mu   sync.Mutex
	recs []RequestRecord
}

func (p *rebookProbe) Rebook(rec RequestRecord) {
	p.mu.Lock()
	p.recs = append(p.recs, rec)
	p.mu.Unlock()
}

// TestJournalReplayKillRestart is the crash drill at the middleware
// layer: a journaled master completes work, then dies (Abandon — the
// in-process kill -9) with one request leased to a SED. A fresh master
// over the same file must rebook every settled outcome exactly once,
// wait out the orphaned lease, and redo the leased request on a
// DIFFERENT SED — ending with the counters of an uninterrupted run and
// no ID collisions for post-restart traffic.
func TestJournalReplayKillRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	j1, err := journal.Open(path, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	started := make(chan uint64, 1)
	sedA := newSED(t, "sed-a", 2, 1e9, 100)
	sedB := newSED(t, "sed-b", 2, 1e9, 100)
	if err := sedA.Register(stallService(release, started)); err != nil {
		t.Fatal(err)
	}
	if err := sedB.Register(stallService(release, started)); err != nil {
		t.Fatal(err)
	}
	m1, err := NewMaster(
		WithPolicy(sched.New(sched.LeastLoaded)),
		WithSEDs(sedA, sedB),
		WithJournal(j1),
		WithLeaseTerm(150*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}

	const settled = 5
	for i := 0; i < settled; i++ {
		if _, err := m1.Submit(context.Background(), "burn", 1e6, 0.5, nil); err != nil {
			t.Fatalf("warm request %d: %v", i, err)
		}
	}

	ctx1, crash := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		m1.Submit(ctx1, "stall", 1e6, 0.5, nil)
	}()
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("stall request never reached a SED")
	}
	// Crash: the journal handle dies first (no settle can land), then
	// the in-flight lifecycle is torn down.
	j1.Abandon()
	crash()
	wg.Wait()
	close(release)

	// Restart over the same file.
	j2, err := journal.Open(path, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if got := len(j2.Pending()); got != 1 {
		t.Fatalf("pending after crash = %d, want 1", got)
	}
	orphan := j2.Pending()[0]
	if orphan.State != journal.StateLeased || orphan.SED == "" {
		t.Fatalf("orphan entry = %+v, want a leased entry with an owner", orphan)
	}
	if got := len(j2.Settled()); got != settled {
		t.Fatalf("settled after crash = %d, want %d", got, settled)
	}

	var mu sync.Mutex
	var elected []string
	probe := &rebookProbe{}
	sedA2 := newSED(t, "sed-a", 2, 1e9, 100)
	sedB2 := newSED(t, "sed-b", 2, 1e9, 100)
	if err := sedA2.Register(stallService(release, nil)); err != nil {
		t.Fatal(err)
	}
	if err := sedB2.Register(stallService(release, nil)); err != nil {
		t.Fatal(err)
	}
	m2, err := NewMaster(
		WithPolicy(sched.New(sched.LeastLoaded)),
		WithSEDs(sedA2, sedB2),
		WithJournal(j2),
		WithInterceptors(probe, &HookInterceptor{
			OnElectFunc: func(_ float64, _ Request, server string, _ estvec.List) {
				mu.Lock()
				elected = append(elected, server)
				mu.Unlock()
			},
		}),
	)
	if err != nil {
		t.Fatal(err)
	}

	st, err := m2.Replay(context.Background())
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if st.Rebooked != settled {
		t.Fatalf("Rebooked = %d, want %d", st.Rebooked, settled)
	}
	if st.Resubmitted != 1 || st.LeaseExpired != 1 || st.Redone != 1 || st.Failed != 0 {
		t.Fatalf("replay stats = %+v, want 1 resubmission redone after its lease expired", st)
	}
	if len(probe.recs) != settled {
		t.Fatalf("Rebook calls = %d, want %d (settled outcomes rebook exactly once)", len(probe.recs), settled)
	}
	for _, rec := range probe.recs {
		if rec.Err != nil || rec.EnergyJ <= 0 {
			t.Fatalf("rebooked record = %+v, want a completed outcome with energy", rec)
		}
	}
	mu.Lock()
	replayElected := append([]string(nil), elected...)
	mu.Unlock()
	if len(replayElected) != 1 {
		t.Fatalf("elections during replay = %v, want exactly one", replayElected)
	}
	if replayElected[0] == orphan.SED {
		t.Fatalf("redo elected %q, the SED holding the expired lease — must pick a different one", replayElected[0])
	}
	if got := len(j2.Pending()); got != 0 {
		t.Fatalf("pending after replay = %d, want 0", got)
	}

	// The restarted master's books read like an uninterrupted run's.
	res := m2.Finalize()
	if res.Submitted != settled+1 || res.Completed != settled+1 || res.Failed != 0 || res.Rejected != 0 {
		t.Fatalf("restarted result = %+v, want %d submitted and completed", res, settled+1)
	}

	// Post-restart traffic must not collide with journaled IDs: its
	// admission has to raise the journal's high-water mark.
	maxBefore := j2.MaxID()
	if _, err := m2.Submit(context.Background(), "burn", 1e6, 0.5, nil); err != nil {
		t.Fatal(err)
	}
	if j2.MaxID() <= maxBefore {
		t.Fatalf("journal max ID %d did not advance past %d — new traffic reused a journaled ID", j2.MaxID(), maxBefore)
	}
}

// TestReplayDeferredDoesNotBlockStartup: a deferred entry recovered
// against a STILL-DIRTY grid re-parks in the carbon interceptor — in
// the background. Replay (and so master startup) must return without
// waiting out the window; ReplayWait drains the park once it clears.
func TestReplayDeferredDoesNotBlockStartup(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	j1, err := journal.Open(path, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := j1.Admit(journal.Record{ID: 3, Service: "burn", Ops: 1e6, Pref: 0.5, Deferrable: true}); err != nil {
		t.Fatal(err)
	}
	if err := j1.Defer(3); err != nil {
		t.Fatal(err)
	}
	j1.Abandon()

	j2, err := journal.Open(path, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	var dirty atomic.Bool
	dirty.Store(true)
	m, err := NewMaster(
		WithPolicy(sched.New(sched.LeastLoaded)),
		WithSEDs(newSED(t, "sed", 2, 1e9, 100)),
		WithJournal(j2),
		WithInterceptors(&CarbonInterceptor{
			Func: func() (float64, bool) {
				if dirty.Load() {
					return 1000, true
				}
				return 0, true
			},
			DirtyG: 100, MaxDeferSec: 300, PollSec: 0.005,
		}),
	)
	if err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	st, err := m.Replay(context.Background())
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("Replay blocked %v behind a dirty grid", took)
	}
	if st.Resubmitted != 1 || st.Failed != 0 {
		t.Fatalf("replay stats = %+v, want 1 background resubmission", st)
	}

	// The replayed request is parked behind the dirty window, its
	// lifecycle still incomplete in the journal.
	deadline := time.Now().Add(5 * time.Second)
	for m.Deferred().Parked == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := m.Deferred().Parked; got != 1 {
		t.Fatalf("parked = %d, want the replayed deferrable re-parked", got)
	}
	if got := len(j2.Pending()); got != 1 {
		t.Fatalf("pending during park = %d, want 1", got)
	}

	// The window clears: the background replay settles and drains.
	dirty.Store(false)
	wctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m.ReplayWait(wctx); err != nil {
		t.Fatalf("ReplayWait: %v", err)
	}
	if got := len(j2.Pending()); got != 0 {
		t.Fatalf("pending after drain = %d, want 0", got)
	}
	res := m.Finalize()
	if res.Completed != 1 || res.Failed != 0 {
		t.Fatalf("result = %+v, want the deferred replay completed", res)
	}
}

// TestJournalAdmissionRejectionSettles checks a rejection is a
// terminal journal state: nothing incomplete survives it, so a crash
// right after an admission refusal replays nothing.
func TestJournalAdmissionRejectionSettles(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	j, err := journal.Open(path, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	reject := &HookInterceptor{OnSubmitFunc: func(_ context.Context, _ float64, req *Request) error {
		return fmt.Errorf("%w: request %d: test says no", ErrRejected, req.ID)
	}}
	m, err := NewMaster(
		WithPolicy(sched.New(sched.LeastLoaded)),
		WithSEDs(newSED(t, "sed", 1, 1e9, 100)),
		WithJournal(j),
		WithInterceptors(reject),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(context.Background(), "burn", 1e6, 0.5, nil); !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v, want ErrRejected", err)
	}
	if got := len(j.Pending()); got != 0 {
		t.Fatalf("pending = %d, want 0 (rejection must settle the entry)", got)
	}
	// Settled() only reports entries terminal at Open; reopen to see
	// the on-disk fold of this run's rejection.
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := journal.Open(path, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	s := j2.Settled()
	if len(s) != 1 || s[0].State != journal.StateRejected {
		t.Fatalf("settled = %+v, want one rejected entry", s)
	}
}

// TestJournalReplayRejectionNotFailed: an incomplete request that the
// restarted master's admission refuses counts as a replayed rejection,
// not a replay failure — admission re-screened it, by design.
func TestJournalReplayRejectionNotFailed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	j1, err := journal.Open(path, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := j1.Admit(journal.Record{ID: 7, Service: "burn", Ops: 1e6, Pref: 0.5}); err != nil {
		t.Fatal(err)
	}
	j1.Abandon()

	j2, err := journal.Open(path, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	reject := &HookInterceptor{OnSubmitFunc: func(_ context.Context, _ float64, req *Request) error {
		return fmt.Errorf("%w: request %d: no capacity", ErrRejected, req.ID)
	}}
	m, err := NewMaster(
		WithPolicy(sched.New(sched.LeastLoaded)),
		WithSEDs(newSED(t, "sed", 1, 1e9, 100)),
		WithJournal(j2),
		WithInterceptors(reject),
	)
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Replay(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Resubmitted != 1 || st.Failed != 0 {
		t.Fatalf("replay stats = %+v, want one resubmission and zero failures", st)
	}
	if got := len(j2.Pending()); got != 0 {
		t.Fatalf("pending after replay = %d, want 0", got)
	}
}
