package middleware

import (
	"context"
	"testing"
	"time"

	"greensched/internal/estvec"
	"greensched/internal/sched"
)

// hangingChild blocks until its context is cancelled (a cooperative
// hang) or, when stubborn, blocks on a private channel forever.
type hangingChild struct {
	stubborn bool
	release  chan struct{}
}

func (h *hangingChild) Name() string { return "hanging" }
func (h *hangingChild) Estimate(ctx context.Context, req Request) (estvec.List, error) {
	if h.stubborn {
		<-h.release
		return nil, nil
	}
	<-ctx.Done()
	return nil, ctx.Err()
}

func TestChildTimeoutIsolatesSlowSubtree(t *testing.T) {
	good := newSED(t, "good", 2, 2e9, 100)
	prime(t, map[string]*SED{"good": good})
	ma, err := NewMasterAgent("ma", sched.New(sched.Power))
	if err != nil {
		t.Fatal(err)
	}
	cooperative := &hangingChild{}
	ma.Attach(cooperative, good)
	ma.SetChildTimeout(50 * time.Millisecond)

	start := time.Now()
	server, list, err := ma.Elect(context.Background(), Request{Service: "burn", Ops: 1e7})
	if err != nil {
		t.Fatal(err)
	}
	if server != "good" || len(list) != 1 {
		t.Fatalf("elected %s with %d candidates", server, len(list))
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("election took %v despite child timeout", elapsed)
	}
}

func TestChildTimeoutStubbornChild(t *testing.T) {
	// A child that ignores cancellation entirely must still not stall
	// the hierarchy (it is abandoned).
	good := newSED(t, "good2", 2, 2e9, 100)
	prime(t, map[string]*SED{"good2": good})
	ma, _ := NewMasterAgent("ma", sched.New(sched.Power))
	stubborn := &hangingChild{stubborn: true, release: make(chan struct{})}
	defer close(stubborn.release) // let the goroutine exit at test end
	ma.Attach(stubborn, good)
	ma.SetChildTimeout(50 * time.Millisecond)
	server, _, err := ma.Elect(context.Background(), Request{Service: "burn", Ops: 1e7})
	if err != nil {
		t.Fatal(err)
	}
	if server != "good2" {
		t.Fatalf("elected %s", server)
	}
}

func TestChildTimeoutAllChildrenHang(t *testing.T) {
	ma, _ := NewMasterAgent("ma", sched.New(sched.Power))
	ma.Attach(&hangingChild{})
	ma.SetChildTimeout(30 * time.Millisecond)
	if _, _, err := ma.Elect(context.Background(), Request{Service: "burn"}); err == nil {
		t.Fatal("all-hanging hierarchy should error")
	}
}

func TestNoTimeoutByDefault(t *testing.T) {
	// Without SetChildTimeout the parent context still applies.
	ma, _ := NewMasterAgent("ma", sched.New(sched.Power))
	ma.Attach(&hangingChild{})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, _, err := ma.Elect(ctx, Request{Service: "burn"})
	if err == nil {
		t.Fatal("cancelled context should surface an error")
	}
}
