package middleware

import (
	"context"
	"fmt"
	"sync"
	"time"

	"greensched/internal/carbon"
	"greensched/internal/estvec"
	"greensched/internal/journal"
	"greensched/internal/obs"
)

// CarbonInterceptor puts the grid on the live serving path — the
// mirror of sim.CarbonModule plus the candidacy-window deferral the
// simulator delegates to the consolidation controller:
//
//   - mounted on a SED, its WrapEstimation hook publishes the site's
//     current intensity under estvec.TagCarbonIntensity so
//     carbon-aware policies rank on it (the interceptor spelling of
//     the deprecated SEDConfig.Carbon field);
//   - mounted on a Master, its OnSubmit hook holds Deferrable
//     requests back while the grid is dirtier than DirtyG — bounded
//     by MaxDeferSec and the caller's context — and its OnComplete
//     hook integrates every completion's energy share against the
//     signal into grams of CO2.
//
// One instance belongs to one mount; a deployment that wants both
// roles mounts two instances (SEDs see their own site's grid, the
// master the deployment's), exactly as sim.CarbonModule attaches
// per-node state.
//
// Mount it AFTER an SLAInterceptor: the SLA hook resolves class
// deadlines onto Request.Deadline first, so the deferral below can see
// them and honour the "deadline traffic is never parked" rule for
// class-carrying requests too.
type CarbonInterceptor struct {
	BaseInterceptor

	// Signal is the grid behind the mount, read on the mount's clock.
	Signal carbon.Signal
	// Epoch pins the signal's t=0 for SED mounts (zero = Init time);
	// master mounts read the master clock instead.
	Epoch time.Time
	// Func overrides Signal with a live feed — the legacy
	// SEDConfig.Carbon shape (value, ok).
	Func CarbonFunc

	// DirtyG enables deferral on master mounts: Deferrable requests
	// wait while the intensity exceeds it (0 disables deferral).
	DirtyG float64
	// MaxDeferSec bounds one request's wait; when it expires the
	// request proceeds on the dirty grid. Required when DirtyG is set.
	MaxDeferSec float64
	// PollSec is the re-check interval while deferred (0 = 50ms).
	PollSec float64

	// Tracer, when set, receives an obs.EventDefer for every request
	// released after a parked wait. Nil is a no-op.
	Tracer *obs.Tracer

	clock func() float64
	src   string
	jrn   *journal.Journal

	mu          sync.Mutex
	parked      map[uint64]float64 // request ID → park time on the mount's clock
	deferred    int
	deferredSec float64
	grams       float64
}

// Init implements Interceptor.
func (c *CarbonInterceptor) Init(mount Mount) error {
	if c.Signal == nil && c.Func == nil {
		return fmt.Errorf("middleware: carbon interceptor needs a signal or a live feed")
	}
	if c.DirtyG > 0 && c.MaxDeferSec <= 0 {
		return fmt.Errorf("middleware: carbon interceptor with DirtyG %v needs a positive MaxDeferSec (unbounded deferral would park requests forever)", c.DirtyG)
	}
	if c.PollSec < 0 {
		return fmt.Errorf("middleware: carbon interceptor PollSec %v negative", c.PollSec)
	}
	c.parked = make(map[uint64]float64)
	if mount.Master != nil {
		c.clock = mount.Master.Now
		c.src = mount.Master.Name()
		c.jrn = mount.Master.Journal()
	} else {
		epoch := c.Epoch
		if epoch.IsZero() {
			epoch = time.Now()
		}
		c.clock = func() float64 { return time.Since(epoch).Seconds() }
	}
	return nil
}

// intensity reads the grid at time now on the mount's clock.
func (c *CarbonInterceptor) intensity(now float64) (float64, bool) {
	if c.Func != nil {
		return c.Func()
	}
	if c.Signal != nil {
		return c.Signal.IntensityAt(now), true
	}
	return 0, false
}

// WrapEstimation implements Interceptor: the SED's vectors gain the
// site's current carbon intensity.
func (c *CarbonInterceptor) WrapEstimation(base EstimationFunc) EstimationFunc {
	return func(s *SED, req Request) *estvec.Vector {
		v := base(s, req)
		if g, ok := c.intensity(c.clock()); ok {
			v.Set(estvec.TagCarbonIntensity, g)
		}
		return v
	}
}

// OnSubmit implements Interceptor: Deferrable requests wait for a
// clean window — the live candidacy-window deferral. Non-deferrable
// (and deadline-carrying) traffic passes straight through, matching
// the simulator's rule that SLA work is never parked behind a green
// window.
func (c *CarbonInterceptor) OnSubmit(ctx context.Context, now float64, req *Request) error {
	if c.DirtyG <= 0 || !req.Deferrable || req.Deadline > 0 {
		return nil
	}
	g, ok := c.intensity(now)
	if !ok || g <= c.DirtyG {
		return nil
	}
	poll := c.PollSec
	if poll <= 0 {
		poll = 0.05
	}
	start := now
	c.mu.Lock()
	c.parked[req.ID] = start
	c.mu.Unlock()
	if c.jrn != nil {
		// Best-effort: the admission record already keeps a parked
		// request incomplete (hence replayed); the deferred record is
		// what lets inspection tell a park from a lost dispatch.
		c.jrn.Defer(req.ID)
	}
	ticker := time.NewTicker(time.Duration(poll * float64(time.Second)))
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			c.mu.Lock()
			delete(c.parked, req.ID)
			c.mu.Unlock()
			return ctx.Err()
		case <-ticker.C:
		}
		now = c.clock()
		g, ok = c.intensity(now)
		if !ok || g <= c.DirtyG || now-start >= c.MaxDeferSec {
			break
		}
	}
	c.mu.Lock()
	delete(c.parked, req.ID)
	c.deferred++
	c.deferredSec += now - start
	c.mu.Unlock()
	c.Tracer.Emit(obs.Event{T: now, Event: obs.EventDefer, ID: req.ID, Src: c.src, Class: req.Class, DurSec: now - start})
	return nil
}

// DeferralStats implements DeferralReporter: the currently parked
// queue — how many requests are waiting out a dirty window and how
// long the oldest has waited, as of now on the mount's clock. This is
// what Master.Deferred aggregates for the observability surface: a
// parked request is visible here BEFORE its window opens or its
// deferral bound expires.
func (c *CarbonInterceptor) DeferralStats(now float64) DeferralStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := DeferralStats{Parked: len(c.parked)}
	for _, since := range c.parked {
		if age := now - since; age > st.OldestSec {
			st.OldestSec = age
		}
	}
	return st
}

// OnComplete implements Interceptor: the completion's energy share is
// integrated against the grid at its finish time.
func (c *CarbonInterceptor) OnComplete(rec RequestRecord) {
	g, ok := c.intensity(rec.Finish)
	if !ok {
		return
	}
	c.mu.Lock()
	c.grams += rec.EnergyJ / carbon.JoulesPerKWh * g
	c.mu.Unlock()
}

// Rebook implements Rebooker: a journaled outcome's energy share is
// re-integrated against the grid at its original finish time. The
// deferral counters are NOT restored — they are observability of this
// incarnation's waits, not books.
func (c *CarbonInterceptor) Rebook(rec RequestRecord) {
	c.OnComplete(rec)
}

// Finalize implements Interceptor: deferral counters and the emissions
// attribution land on the result.
func (c *CarbonInterceptor) Finalize(res *LiveResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	res.Deferred += c.deferred
	res.DeferredSec += c.deferredSec
	res.CO2Grams += c.grams
}
