package middleware

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"greensched/internal/sched"
)

// Fault injection for the TCP transport: a connection dropped
// mid-solve and a malformed gob frame must surface ErrTransport
// promptly (no hang) and leave the hierarchy able to elect another
// SED.

// TestRemoteConnDroppedMidSolve: killing the endpoint while a solve is
// in flight surfaces a typed transport error instead of hanging.
func TestRemoteConnDroppedMidSolve(t *testing.T) {
	release := make(chan struct{})
	sed := newSED(t, "doomed", 1, 2e9, 100)
	sed.Register(Service{Name: "slow", Solve: func(ctx context.Context, _ Request) ([]byte, error) {
		select {
		case <-release:
			return []byte("late"), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}})
	ep, err := Serve("127.0.0.1:0", sed, sed)
	if err != nil {
		t.Fatal(err)
	}
	rem := Dial("doomed", ep.Addr())
	defer rem.Close()

	closed := make(chan struct{})
	go func() {
		time.Sleep(100 * time.Millisecond) // let the solve get in flight
		ep.Close()
		close(closed)
	}()
	errCh := make(chan error, 1)
	go func() {
		_, err := rem.Solve(context.Background(), Request{ID: 1, Service: "slow", Ops: 1e6})
		errCh <- err
	}()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrTransport) {
			t.Fatalf("mid-solve drop err = %v, want ErrTransport", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("dropped connection hung the solve")
	}
	close(release) // let the abandoned server-side execution finish
	<-closed
}

// TestRemoteMalformedGobFrame: a peer speaking garbage instead of the
// wire protocol surfaces ErrTransport, bounded by the remote timeout.
func TestRemoteMalformedGobFrame(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		buf := make([]byte, 512)
		conn.Read(buf) // swallow the request frame
		conn.Write([]byte("\x07NOT-A-GOB-FRAME\xff\xfe"))
	}()

	rem := Dial("garbled", ln.Addr().String())
	rem.SetTimeout(2 * time.Second)
	defer rem.Close()
	done := make(chan error, 1)
	go func() {
		_, err := rem.Estimate(context.Background(), Request{Service: "burn", Ops: 1e6})
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrTransport) {
			t.Fatalf("malformed frame err = %v, want ErrTransport", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("malformed frame hung the estimate")
	}
}

// TestRemoteApplicationErrorIsNotTransport: an error the remote SED
// itself returned travels as an application error — re-electing will
// not help, and callers must be able to tell the two apart.
func TestRemoteApplicationErrorIsNotTransport(t *testing.T) {
	sed := newSED(t, "honest", 1, 2e9, 100)
	ep, err := Serve("127.0.0.1:0", sed, nil) // endpoint that cannot solve
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	rem := Dial("honest", ep.Addr())
	defer rem.Close()
	_, err = rem.Solve(context.Background(), Request{Service: "burn", Ops: 1e6})
	if err == nil {
		t.Fatal("solve against a non-solving endpoint should error")
	}
	if errors.Is(err, ErrTransport) {
		t.Fatalf("application error misclassified as transport failure: %v", err)
	}
}

// TestFailoverAfterTransportFault: when the elected SED's connection
// dies mid-solve, the retry path re-elects another SED and the request
// still completes — the hierarchy never hangs on one dead socket.
func TestFailoverAfterTransportFault(t *testing.T) {
	// The remote SED looks most attractive under POWER (lowest watts),
	// so the first election lands on it.
	doomed := newSED(t, "doomed", 1, 2e9, 50)
	doomed.Register(Service{Name: "burn2", Solve: func(ctx context.Context, _ Request) ([]byte, error) {
		select {
		case <-time.After(5 * time.Second):
			return []byte("late"), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}})
	healthy := newSED(t, "healthy", 1, 2e9, 400)
	healthy.Register(Service{Name: "burn2", Solve: func(context.Context, Request) ([]byte, error) {
		return []byte("rescued"), nil
	}})
	prime(t, map[string]*SED{"doomed": doomed, "healthy": healthy})

	ep, err := Serve("127.0.0.1:0", doomed, doomed)
	if err != nil {
		t.Fatal(err)
	}
	rem := Dial("doomed", ep.Addr())
	defer rem.Close()

	ma, err := NewMasterAgent("ma", sched.New(sched.Power))
	if err != nil {
		t.Fatal(err)
	}
	ma.Attach(rem, healthy)
	ma.SetChildTimeout(2 * time.Second)
	dir := NewMapDirectory()
	dir.Add("doomed", rem)
	dir.Add("healthy", healthy)
	client, err := NewClient(ma, dir)
	if err != nil {
		t.Fatal(err)
	}

	// Sanity: the doomed remote wins the first election.
	server, _, err := ma.Elect(context.Background(), Request{Service: "burn2", Ops: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	if server != "doomed" {
		t.Fatalf("first election = %s, want doomed", server)
	}

	go func() {
		time.Sleep(150 * time.Millisecond)
		ep.Close() // drop the connection mid-solve
	}()
	resp, err := client.SubmitWithRetry(context.Background(), "burn2", 1e6, 0, nil, 2)
	if err != nil {
		t.Fatalf("failover submit: %v", err)
	}
	if resp.Server != "healthy" || string(resp.Output) != "rescued" {
		t.Fatalf("resp = %+v, want rescue by healthy", resp)
	}
}
