// Package middleware is a live, concurrent implementation of the
// DIET-style architecture the paper builds on (§II-A): clients submit
// problems to a Master Agent; a hierarchy of agents forwards the
// request to Server Daemons (SEDs); each SED populates an estimation
// vector via its (pluggable) estimation function; agents sort the
// responses with their plug-in scheduler at every level; the Master
// Agent elects a SED and the client invokes it.
//
// The same policies and election logic run inside the deterministic
// simulator (package sim); this package exists so the library is
// usable as an actual middleware: components communicate through a
// Transport, with in-process and TCP/gob implementations provided.
package middleware

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"greensched/internal/core"
	"greensched/internal/estvec"
	"greensched/internal/obs"
	"greensched/internal/power"
	"greensched/internal/sched"
)

// Request is a client problem submission (§III-A step 1), carrying the
// §III-C user preference plus the live SLA terms the interceptor stack
// resolves and enforces.
type Request struct {
	ID      uint64
	Service string
	Ops     float64 // problem size in flops
	Pref    core.UserPref
	Payload []byte // opaque problem data

	// Class names the request's SLA class ("" = best-effort); an
	// SLAInterceptor resolves it against its catalog exactly like
	// workload.Task.Class in the simulator.
	Class string
	// Deadline is the absolute completion deadline in seconds on the
	// master's clock (0 = none). When zero, OnSubmit resolves it from
	// the class's relative deadline so later interceptors see the
	// effective terms.
	Deadline float64
	// Value is the dollars an on-time completion earns (0 = class
	// default).
	Value float64
	// Deferrable marks work a CarbonInterceptor may hold back until
	// the grid is clean (the live analogue of the simulator's
	// candidacy-window deferral of no-deadline batch).
	Deferrable bool

	// TraceID and ParentSpan are the request's distributed-tracing
	// context. The master assigns TraceID at submission (when tracing
	// is on) and rewrites ParentSpan as the request enters each stage,
	// so components downstream — agents a level below, remote SEDs on
	// the far side of the gob wire — emit spans that stitch into the
	// same hop tree. Zero means untraced; every emitter checks.
	TraceID    uint64
	ParentSpan uint64
}

// Response is the outcome of solving a request.
type Response struct {
	Server string
	Output []byte

	// ExecSec is the observed execution time on the solving SED.
	ExecSec float64
	// EnergyJ is the request's attributed energy share: the SED's mean
	// metered draw over the execution divided by its slot count, times
	// ExecSec — the static per-slot share of the node. Zero when the
	// SED has no power source. It travels with the response so a
	// master-side BudgetInterceptor can charge live completions even
	// across the TCP transport.
	EnergyJ float64

	// QueueSec is the time the request waited for a free execution
	// slot, on the solving SED's clock. It rides back with the
	// response so the master can reconstruct the SED-side hop tree
	// (queue → solve → reply) from durations alone — clocks differ
	// across processes, durations don't.
	QueueSec float64
	// Spanned reports that the solving SED emitted its own queue and
	// solve spans (SEDConfig.Spans): the master then skips
	// reconstructing them from QueueSec/ExecSec, so a merged span
	// stream carries exactly one span per stage.
	Spanned bool
}

// Service is a computational service a SED exposes ("a single SED can
// offer any number of computational services").
type Service struct {
	Name string
	// Solve computes the problem. It runs on one execution slot.
	Solve func(ctx context.Context, req Request) ([]byte, error)
}

// MeterFunc reads the node's current power draw in watts; ok=false
// when no meter is attached. Real deployments wire this to a wattmeter
// (the paper uses external Omegawatt meters); tests and examples use
// synthetic sources.
type MeterFunc func() (watts float64, ok bool)

// CarbonFunc reads the current carbon intensity of the grid behind
// the SED's site, in gCO2/kWh; ok=false when no signal is attached.
// Wire it to carbon.Live(signal, epoch) for a modelled grid, or to a
// grid-operator feed in real deployments.
type CarbonFunc func() (gPerKWh float64, ok bool)

// EstimationFunc populates a SED's estimation vector for a request.
// This is the paper's plug-in customization point: "A developer can
// create his own performance estimation function and include it into a
// SED so that when the SED receives a user request, the custom
// function is called to populate an estimation vector."
type EstimationFunc func(s *SED, req Request) *estvec.Vector

// SEDConfig configures a Server Daemon.
type SEDConfig struct {
	Name  string
	Slots int // concurrent executions (cores); ≥1

	// Interceptors is the SED's extension stack: WrapEstimation hooks
	// fold left-to-right over DefaultEstimation, and PowerSource
	// implementations feed the dynamic estimator. The deprecated
	// Meter and Estimation fields below are converted into equivalent
	// interceptors and prepended (in that order); the deprecated
	// Carbon field stays inside DefaultEstimation — the chain's base —
	// so custom estimation functions built on it keep seeing the tag
	// exactly once. Legacy configurations keep their exact behaviour
	// either way (asserted in compat_test.go).
	Interceptors []Interceptor

	// Meter supplies live power readings for the dynamic estimator.
	//
	// Deprecated: mount a MeterInterceptor in Interceptors instead.
	Meter MeterFunc
	// Carbon supplies the site's live grid carbon intensity; when
	// set, the default estimation function reports it under
	// estvec.TagCarbonIntensity so carbon-aware policies can rank on
	// it.
	//
	// Deprecated: mount a CarbonInterceptor (Func or Signal) in
	// Interceptors instead.
	Carbon CarbonFunc
	// EstimatorWindow is the moving-average window (requests); 0
	// means 64.
	EstimatorWindow int
	// Estimation overrides the default estimation function.
	//
	// Deprecated: mount an EstimationInterceptor in Interceptors
	// instead.
	Estimation EstimationFunc
	// BootSec/BootPowerW describe the node for Eq. 4/5 when the SED
	// is provisioned from cold.
	BootSec    float64
	BootPowerW float64

	// MetricsAddr, when set (host:port; host:0 picks a free port),
	// starts a per-node observability listener serving /metrics,
	// /healthz and net/http/pprof. The greensched_sed_* gauges are
	// labeled {sed="Name"} and refresh from Stats at every scrape.
	// The listener's resolved address is SED.MetricsAddr; SED.Close
	// shuts it down.
	MetricsAddr string

	// Spans, when set, receives the SED's own queue-wait and solve
	// spans for traced requests (Request.TraceID non-zero), stitched
	// to the master's dispatch span by the propagated trace context.
	// In a cross-process deployment each daemon writes its own file;
	// the analyzer ingests the concatenation.
	Spans *obs.SpanWriter
}

// SED is a Server Daemon: a service provider with bounded concurrency,
// a FIFO admission queue and a dynamic power/performance estimator.
type SED struct {
	cfg SEDConfig
	// services is a copy-on-write map (Register replaces it whole):
	// Estimate and Solve look services up with one atomic load instead
	// of taking the estimator mutex on every request.
	services atomic.Pointer[map[string]Service]

	// estFn is the effective estimation function after the interceptor
	// chain's WrapEstimation hooks fold over DefaultEstimation;
	// sources holds the chain's PowerSource implementations in stack
	// order.
	estFn   EstimationFunc
	sources []PowerSource

	sem      chan struct{}
	queueLen atomic.Int64
	inflight atomic.Int64
	done     atomic.Uint64
	fails    atomic.Uint64

	mu        sync.Mutex
	est       *power.Estimator
	execTotal float64 // summed execution seconds of completed requests

	active  atomic.Bool
	metrics *obs.Server
}

// SEDStats is a point-in-time observability snapshot of one SED.
type SEDStats struct {
	Name      string
	Completed uint64
	// Failed counts Solve calls that returned an error (service
	// failures, unknown-service routing, context cancellation) — they
	// never reach Completed, and without this counter they vanished
	// from observability entirely.
	Failed   uint64
	InFlight int
	Queued   int
	// MeanExecSec is the average execution time of completed
	// requests (0 before the first completion).
	MeanExecSec float64
	// Learned dynamic estimates; zero when still unknown.
	PowerW    float64
	Flops     float64
	GreenPerf float64
	Active    bool
}

// Stats returns the SED's current counters and learned estimates.
func (s *SED) Stats() SEDStats {
	st := SEDStats{
		Name:      s.cfg.Name,
		Completed: s.done.Load(),
		Failed:    s.fails.Load(),
		InFlight:  int(s.inflight.Load()),
		Queued:    int(s.queueLen.Load()),
		Active:    s.active.Load(),
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if st.Completed > 0 {
		st.MeanExecSec = s.execTotal / float64(st.Completed)
	}
	if p, ok := s.est.Power(); ok {
		st.PowerW = p
	}
	if f, ok := s.est.Flops(); ok {
		st.Flops = f
	}
	if gp, ok := s.est.GreenPerf(); ok {
		st.GreenPerf = gp
	}
	return st
}

// NewSED constructs a SED: it converts the deprecated one-slot config
// fields into their interceptor equivalents, prepends them to the
// explicit stack (Meter, Estimation, then cfg.Interceptors), runs
// every Init, and folds the WrapEstimation hooks left-to-right over
// DefaultEstimation.
func NewSED(cfg SEDConfig) (*SED, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("middleware: SED needs a name")
	}
	if cfg.Slots <= 0 {
		return nil, fmt.Errorf("middleware: SED %s needs at least one slot", cfg.Name)
	}
	if cfg.EstimatorWindow <= 0 {
		cfg.EstimatorWindow = 64
	}
	s := &SED{
		cfg: cfg,
		sem: make(chan struct{}, cfg.Slots),
		est: power.NewEstimator(cfg.EstimatorWindow),
	}
	s.services.Store(&map[string]Service{})
	s.active.Store(true)

	// Legacy adapters first, in a fixed documented order. cfg.Carbon
	// stays inside DefaultEstimation (the chain's base) rather than
	// becoming a chain element: custom estimation functions build on
	// DefaultEstimation and must keep seeing the legacy tag exactly
	// once.
	var chain []Interceptor
	if cfg.Meter != nil {
		chain = append(chain, &MeterInterceptor{Meter: cfg.Meter})
	}
	if cfg.Estimation != nil {
		chain = append(chain, &EstimationInterceptor{Estimate: cfg.Estimation})
	}
	chain = append(chain, cfg.Interceptors...)

	est := EstimationFunc(func(sed *SED, req Request) *estvec.Vector {
		return sed.DefaultEstimation(req)
	})
	for _, ic := range chain {
		if ic == nil {
			return nil, fmt.Errorf("middleware: SED %s: nil interceptor", cfg.Name)
		}
		if err := ic.Init(Mount{SED: s}); err != nil {
			return nil, fmt.Errorf("middleware: SED %s: %w", cfg.Name, err)
		}
		est = ic.WrapEstimation(est)
		if src, ok := ic.(PowerSource); ok {
			s.sources = append(s.sources, src)
		}
	}
	s.estFn = est
	if cfg.MetricsAddr != "" {
		srv, err := startSEDMetrics(s, cfg.MetricsAddr)
		if err != nil {
			return nil, fmt.Errorf("middleware: SED %s: metrics listener: %w", cfg.Name, err)
		}
		s.metrics = srv
	}
	return s, nil
}

// MetricsAddr is the SED's observability listener's resolved
// host:port, or "" when SEDConfig.MetricsAddr was not set.
func (s *SED) MetricsAddr() string {
	if s.metrics == nil {
		return ""
	}
	return s.metrics.Addr()
}

// Close shuts the SED's observability listener down (a no-op without
// one). The SED itself keeps serving.
func (s *SED) Close() error {
	if s.metrics == nil {
		return nil
	}
	return s.metrics.Close()
}

// readPower polls the SED's power sources in stack order and returns
// the first available reading — single-meter deployments behave
// exactly as the legacy Meter field did.
func (s *SED) readPower() (float64, bool) {
	for _, src := range s.sources {
		if w, ok := src.PowerW(); ok {
			return w, true
		}
	}
	return 0, false
}

// Name returns the SED's unique name.
func (s *SED) Name() string { return s.cfg.Name }

// Register adds (or replaces) a service. It publishes a fresh copy of
// the service map, so in-flight lookups keep reading the old one.
func (s *SED) Register(svc Service) error {
	if svc.Name == "" || svc.Solve == nil {
		return fmt.Errorf("middleware: SED %s: invalid service", s.cfg.Name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	old := *s.services.Load()
	next := make(map[string]Service, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[svc.Name] = svc
	s.services.Store(&next)
	return nil
}

// SetActive marks the SED available/unavailable (provisioning uses
// this to drain a node before shutdown).
func (s *SED) SetActive(v bool) { s.active.Store(v) }

// Active reports availability.
func (s *SED) Active() bool { return s.active.Load() }

// Completed returns the number of requests solved.
func (s *SED) Completed() uint64 { return s.done.Load() }

// Failed returns the number of Solve calls that returned an error.
func (s *SED) Failed() uint64 { return s.fails.Load() }

// Estimate responds to a request propagation (§III-A step 3): nil when
// the SED does not offer the service, otherwise a single-vector list.
func (s *SED) Estimate(ctx context.Context, req Request) (estvec.List, error) {
	if _, offers := (*s.services.Load())[req.Service]; !offers {
		return nil, nil
	}
	return estvec.List{s.estFn(s, req)}, nil
}

// DefaultEstimation is the stock estimation function: the classic DIET
// system tags plus the paper's energy tags, fed by the dynamic
// estimator.
func (s *SED) DefaultEstimation(req Request) *estvec.Vector {
	free := s.cfg.Slots - int(s.inflight.Load())
	if free < 0 {
		free = 0
	}
	qlen := float64(s.queueLen.Load())
	v := estvec.New(s.cfg.Name).
		Set(estvec.TagFreeCores, float64(free)).
		Set(sched.TagCores(), float64(s.cfg.Slots)).
		Set(estvec.TagQueueLen, qlen).
		Set(estvec.TagBootSec, s.cfg.BootSec).
		Set(estvec.TagBootPowerW, s.cfg.BootPowerW).
		SetBool(estvec.TagActive, s.active.Load()).
		Set(estvec.TagRandom, randFloat())

	if s.cfg.Carbon != nil {
		if g, ok := s.cfg.Carbon(); ok {
			v.Set(estvec.TagCarbonIntensity, g)
		}
	}

	s.mu.Lock()
	est := s.est
	known := est.Known()
	reqs := float64(est.Requests())
	flops, okF := est.Flops()
	pw, okP := est.Power()
	gp, okG := est.GreenPerf()
	s.mu.Unlock()

	v.SetBool(estvec.TagKnown, known).Set(estvec.TagRequests, reqs)
	var wait float64
	if okF && flops > 0 && free == 0 {
		wait = (qlen + 1) * req.Ops / flops / float64(s.cfg.Slots)
	}
	v.Set(estvec.TagWaitSec, wait)
	if okF {
		v.Set(estvec.TagFlops, flops)
	}
	if okP {
		v.Set(estvec.TagPowerW, pw)
	}
	if okG {
		v.Set(estvec.TagGreenPerf, gp)
	}
	return v
}

// emitSpan writes one SED-side span for a traced request, stitched to
// the master's tree by the propagated trace context. No-op without a
// writer or a trace.
func (s *SED) emitSpan(req Request, stage string, start, dur float64, errText string) {
	if s.cfg.Spans == nil || req.TraceID == 0 {
		return
	}
	s.cfg.Spans.Emit(obs.Span{
		TraceID: req.TraceID, SpanID: obs.NewSpanID(), Parent: req.ParentSpan,
		Name: stage, Src: s.cfg.Name,
		Start: start, DurSec: dur, Err: errText,
	})
}

// Solve executes a request (§III-A step 5), blocking for a free slot.
// It feeds the dynamic estimator with the observed execution time and
// the power sources' readings, and attributes the request its per-slot
// energy share in the response. The queue wait rides back on the
// response (and, with SEDConfig.Spans, becomes the SED's own queue and
// solve spans) so the master can decompose the dispatch round trip.
func (s *SED) Solve(ctx context.Context, req Request) (Response, error) {
	svc, ok := (*s.services.Load())[req.Service]
	if !ok {
		s.fails.Add(1)
		return Response{}, fmt.Errorf("middleware: SED %s does not offer %q", s.cfg.Name, req.Service)
	}
	qStart := obs.Uptime()
	s.queueLen.Add(1)
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		s.queueLen.Add(-1)
		s.fails.Add(1)
		s.emitSpan(req, obs.StageQueue, qStart, obs.Uptime()-qStart, ctx.Err().Error())
		return Response{}, ctx.Err()
	}
	s.queueLen.Add(-1)
	queueSec := obs.Uptime() - qStart
	s.emitSpan(req, obs.StageQueue, qStart, queueSec, "")
	s.inflight.Add(1)
	defer func() {
		s.inflight.Add(-1)
		<-s.sem
	}()

	var meterSum float64
	var meterN int
	if w, ok := s.readPower(); ok {
		meterSum += w
		meterN++
	}
	start := time.Now()
	solveStart := obs.Uptime()
	out, err := svc.Solve(ctx, req)
	elapsed := time.Since(start).Seconds()
	if err != nil {
		s.fails.Add(1)
		s.emitSpan(req, obs.StageSolve, solveStart, elapsed, err.Error())
		return Response{}, err
	}
	s.emitSpan(req, obs.StageSolve, solveStart, elapsed, "")
	if w, ok := s.readPower(); ok {
		meterSum += w
		meterN++
	}
	meanW := 0.0
	if meterN > 0 {
		meanW = meterSum / float64(meterN)
	}
	if elapsed > 0 {
		s.mu.Lock()
		s.est.ObserveRequest(meanW, req.Ops, elapsed)
		s.execTotal += elapsed
		s.mu.Unlock()
	}
	s.done.Add(1)
	return Response{
		Server:   s.cfg.Name,
		Output:   out,
		ExecSec:  elapsed,
		EnergyJ:  meanW * elapsed / float64(s.cfg.Slots),
		QueueSec: queueSec,
		Spanned:  s.cfg.Spans != nil && req.TraceID != 0,
	}, nil
}

// randFloat is a package-level uniform source for the RANDOM policy
// tag. It is deliberately shared rather than per-SED so that
// concurrent estimations stay uniform; a CAS loop on the xorshift
// state replaces the old mutex so the random tag never becomes the
// serialization point of a parallel fan-out.
var randState atomic.Uint64

func init() { randState.Store(0x9E3779B97F4A7C15) }

func randFloat() float64 {
	// xorshift64*: small, deterministic-enough shuffle source.
	for {
		old := randState.Load()
		x := old
		x ^= x >> 12
		x ^= x << 25
		x ^= x >> 27
		if randState.CompareAndSwap(old, x) {
			return float64((x*0x2545F4914F6CDD1D)>>11) / float64(1<<53)
		}
	}
}

// SeedRand reseeds the shared shuffle source (tests).
func SeedRand(seed uint64) {
	if seed == 0 {
		seed = 1
	}
	randState.Store(seed)
}
