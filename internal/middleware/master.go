package middleware

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"greensched/internal/core"
	"greensched/internal/estvec"
	"greensched/internal/journal"
	"greensched/internal/obs"
	"greensched/internal/sched"
)

// Master is the composed hierarchy root: a MasterAgent plus the
// transport it invokes elected SEDs through and the interceptor stack
// that runs the request lifecycle (OnSubmit → Elect → OnElect → Solve
// → OnComplete, with Finalize at shutdown). It is the live counterpart
// of a sim scenario built with sim.NewScenario + WithModules.
type Master struct {
	*MasterAgent

	dir         Directory
	ics         []Interceptor
	clock       func() float64
	sink        *spanSink
	retries     int
	concurrency int
	sem         chan struct{}

	jrn          *journal.Journal
	leaseTermSec float64
	lifecycle    Lifecycle

	nextID    atomic.Uint64
	submitted atomic.Int64
	completed atomic.Int64
	rejected  atomic.Int64
	failed    atomic.Int64

	// Journal-path counters (see WithJournal / Replay); surfaced as
	// greensched_journal_* by ObsInterceptor.
	journalErrs   atomic.Int64
	replays       atomic.Int64
	leaseExpiries atomic.Int64
	redone        atomic.Int64
	// replayWG tracks the background deferred re-submissions Replay
	// launches; ReplayWait drains it.
	replayWG sync.WaitGroup

	// energyBits is the running joule total as math.Float64bits — a
	// CAS loop instead of a mutex, so thousands of concurrent
	// completions don't serialize on the accumulator.
	energyBits atomic.Uint64

	metrics *obs.Server
}

// addEnergy folds one completion's joules into the running total.
func (m *Master) addEnergy(j float64) {
	for {
		old := m.energyBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + j)
		if m.energyBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// EnergyJ is the summed attributed energy of every completion so far.
func (m *Master) EnergyJ() float64 {
	return math.Float64frombits(m.energyBits.Load())
}

// masterConfig is what the functional options assemble.
type masterConfig struct {
	agent        AgentConfig
	transport    Directory
	filter       CandidateFilter
	children     []Child
	seds         []*SED
	remotes      []*Remote
	clock        func() float64
	metricsAddr  string
	spans        *obs.SpanWriter
	retries      int
	concurrency  int
	journal      *journal.Journal
	leaseTermSec float64
	lifecycle    Lifecycle
}

// Option configures NewMaster.
type Option func(*masterConfig)

// WithName names the master agent (default "master").
func WithName(name string) Option {
	return func(c *masterConfig) { c.agent.Name = name }
}

// WithPolicy sets the plug-in election policy (required).
func WithPolicy(p sched.Policy) Option {
	return func(c *masterConfig) { c.agent.Policy = p }
}

// WithChildTimeout bounds each child's estimation round trip (see
// Agent.SetChildTimeout).
func WithChildTimeout(d time.Duration) Option {
	return func(c *masterConfig) { c.agent.ChildTimeout = d }
}

// WithInterceptors appends request-lifecycle interceptors to the
// master's stack; hooks run in the order given.
func WithInterceptors(ics ...Interceptor) Option {
	return func(c *masterConfig) { c.agent.Interceptors = append(c.agent.Interceptors, ics...) }
}

// WithTransport installs the directory the master resolves elected SED
// names through: a MapDirectory of in-process SEDs, or one of Remote
// handles for a TCP deployment. WithSEDs/WithRemotes register into it
// (the directory must support Add — MapDirectory does); without this
// option they populate an implicit MapDirectory.
func WithTransport(dir Directory) Option {
	return func(c *masterConfig) { c.transport = dir }
}

// WithCandidateFilter installs the §III-C provisioning filter (see
// MasterAgent.SetCandidateFilter).
func WithCandidateFilter(f CandidateFilter) Option {
	return func(c *masterConfig) { c.filter = f }
}

// WithChildren attaches children (SEDs, sub-agents or Remotes) without
// touching the transport — callers pairing it with WithTransport keep
// full control of name resolution.
func WithChildren(children ...Child) Option {
	return func(c *masterConfig) { c.children = append(c.children, children...) }
}

// WithSEDs attaches in-process SEDs AND registers them in the
// transport — the one-line wiring for single-process deployments.
func WithSEDs(seds ...*SED) Option {
	return func(c *masterConfig) { c.seds = append(c.seds, seds...) }
}

// WithRemotes attaches remote SED handles AND registers them in the
// transport — the one-line wiring for TCP deployments.
func WithRemotes(remotes ...*Remote) Option {
	return func(c *masterConfig) { c.remotes = append(c.remotes, remotes...) }
}

// WithMetricsAddr starts an observability listener (host:port;
// host:0 picks a free port) serving /metrics, /healthz and
// net/http/pprof for the master's telemetry. It requires an
// ObsInterceptor in the stack — the listener serves that interceptor's
// registry (the first one found, which is shared when several mounts
// share one). The listener's resolved address is MetricsAddr; Close
// shuts it down.
func WithMetricsAddr(addr string) Option {
	return func(c *masterConfig) { c.metricsAddr = addr }
}

// WithClock overrides the master's clock (seconds, monotone). The
// default reads the wall clock with t=0 at NewMaster; tests inject
// virtual time.
func WithClock(clock func() float64) Option {
	return func(c *masterConfig) { c.clock = clock }
}

// WithSpans turns on distributed tracing: every request's lifecycle is
// emitted as a span tree (submit → admission → elect → dispatch →
// queue/solve/reply; see the obs.Stage* constants) to the writer, and
// the trace context propagates on the Request — through the root
// agent's estimation fan-out and across the gob wire — so agent,
// transport and SED spans stitch into the same tree. With an
// ObsInterceptor in the stack the same stages also feed the
// greensched_stage_seconds histogram on its registry (the histogram is
// registered whenever a registry is present, spans or not).
func WithSpans(w *obs.SpanWriter) Option {
	return func(c *masterConfig) { c.spans = w }
}

// WithConcurrency bounds the master's in-flight request lifecycles to
// n: Do blocks for a slot (respecting ctx) before admission, and
// Pipeline runs n workers. Zero (the default) leaves Do unbounded and
// gives Pipeline one worker. The bound is backpressure at the front
// door — the live analogue of the simulator's bounded event queue —
// so a burst of clients queues at the master instead of fanning a
// thousand simultaneous elections into the hierarchy.
func WithConcurrency(n int) Option {
	return func(c *masterConfig) { c.concurrency = n }
}

// WithRetries arms failover inside Do: when the elected SED's Solve
// fails (transport loss, execution error) and the context is still
// live, the master re-elects excluding the failed servers, up to n
// additional attempts — the Master-level counterpart of
// Client.SubmitWithRetry, running INSIDE the interceptor lifecycle
// (admission once, OnElect per election, one OnComplete at the end).
// Re-elections emit "reelect" spans when tracing is on.
func WithRetries(n int) Option {
	return func(c *masterConfig) { c.retries = n }
}

// NewMaster builds the composed root from functional options. At
// minimum a policy is required; SEDs/remotes/children and interceptors
// are attached in the order given, and every interceptor's Init runs
// before the master accepts work.
func NewMaster(opts ...Option) (*Master, error) {
	cfg := masterConfig{agent: AgentConfig{Name: "master"}}
	for _, opt := range opts {
		opt(&cfg)
	}
	ma, err := NewMasterAgent(cfg.agent.Name, cfg.agent.Policy)
	if err != nil {
		return nil, err
	}
	if cfg.agent.ChildTimeout > 0 {
		ma.SetChildTimeout(cfg.agent.ChildTimeout)
	}
	if cfg.filter != nil {
		ma.SetCandidateFilter(cfg.filter)
	}

	// WithSEDs/WithRemotes register into the transport: the implicit
	// MapDirectory normally, or an explicit WithTransport directory
	// when it supports registration — a transport that doesn't is a
	// construction-time error, not a per-request "not in transport".
	type adder interface {
		Add(name string, s Solver)
	}
	dir := cfg.transport
	if dir == nil {
		dir = NewMapDirectory()
	}
	register := func(name string, s Solver) error {
		if a, ok := dir.(adder); ok {
			a.Add(name, s)
			return nil
		}
		return fmt.Errorf("middleware: master %s: transport cannot register %s (use WithChildren with a pre-populated WithTransport directory)", cfg.agent.Name, name)
	}
	for _, sed := range cfg.seds {
		if sed == nil {
			return nil, fmt.Errorf("middleware: master %s: nil SED", cfg.agent.Name)
		}
		ma.Attach(sed)
		if err := register(sed.Name(), sed); err != nil {
			return nil, err
		}
	}
	for _, rem := range cfg.remotes {
		if rem == nil {
			return nil, fmt.Errorf("middleware: master %s: nil remote", cfg.agent.Name)
		}
		ma.Attach(rem)
		if err := register(rem.Name(), rem); err != nil {
			return nil, err
		}
	}
	ma.Attach(cfg.children...)

	clock := cfg.clock
	if clock == nil {
		epoch := time.Now()
		clock = func() float64 { return time.Since(epoch).Seconds() }
	}

	if cfg.concurrency < 0 {
		return nil, fmt.Errorf("middleware: master %s: negative concurrency", cfg.agent.Name)
	}
	m := &Master{MasterAgent: ma, dir: dir, ics: cfg.agent.Interceptors, clock: clock,
		retries: cfg.retries, concurrency: cfg.concurrency,
		jrn: cfg.journal, leaseTermSec: cfg.leaseTermSec, lifecycle: cfg.lifecycle}
	if m.jrn != nil {
		if m.leaseTermSec <= 0 {
			m.leaseTermSec = journal.DefaultLeaseTermSec
		}
		// New traffic must never reuse a journaled lifecycle's ID.
		m.nextID.Store(m.jrn.MaxID())
	}
	if cfg.concurrency > 0 {
		m.sem = make(chan struct{}, cfg.concurrency)
	}
	for _, ic := range m.ics {
		if ic == nil {
			return nil, fmt.Errorf("middleware: master %s: nil interceptor", cfg.agent.Name)
		}
		if err := ic.Init(Mount{Master: m}); err != nil {
			return nil, fmt.Errorf("middleware: master %s: %w", cfg.agent.Name, err)
		}
	}
	var reg *obs.Registry
	for _, ic := range m.ics {
		if mp, ok := ic.(interface{ Metrics() *obs.Registry }); ok && mp.Metrics() != nil {
			reg = mp.Metrics()
			break
		}
	}
	// The span sink exists whenever there is anywhere for stage data
	// to go: a WithSpans writer, a registry for the stage histogram,
	// or both. The root agent shares the writer so per-level election
	// spans land in the same stream.
	m.sink = newSpanSink(ma.Name(), cfg.spans, reg)
	ma.SetSpans(cfg.spans)
	if cfg.metricsAddr != "" {
		if reg == nil {
			return nil, fmt.Errorf("middleware: master %s: WithMetricsAddr needs an ObsInterceptor in the stack", cfg.agent.Name)
		}
		srv, err := obs.ListenAndServe(cfg.metricsAddr, reg)
		if err != nil {
			return nil, fmt.Errorf("middleware: master %s: metrics listener: %w", cfg.agent.Name, err)
		}
		m.metrics = srv
	}
	if m.lifecycle.AgentJoined != nil {
		for _, sed := range cfg.seds {
			m.lifecycle.AgentJoined(sed.Name())
		}
		for _, rem := range cfg.remotes {
			m.lifecycle.AgentJoined(rem.Name())
		}
		for _, c := range cfg.children {
			if c != nil {
				m.lifecycle.AgentJoined(c.Name())
			}
		}
	}
	return m, nil
}

// MetricsAddr is the observability listener's resolved host:port, or
// "" when WithMetricsAddr was not used.
func (m *Master) MetricsAddr() string {
	if m.metrics == nil {
		return ""
	}
	return m.metrics.Addr()
}

// Close shuts the master's observability listener down (a no-op
// without one). The interceptor stack itself needs no teardown beyond
// Finalize.
func (m *Master) Close() error {
	if m.metrics == nil {
		return nil
	}
	return m.metrics.Close()
}

// Now returns seconds on the master's clock.
func (m *Master) Now() float64 { return m.clock() }

// Submit runs the full §III-A problem-submission flow through the
// interceptor stack — the composed counterpart of Client.Submit.
func (m *Master) Submit(ctx context.Context, service string, ops float64, pref float64, payload []byte) (Response, error) {
	return m.Do(ctx, Request{Service: service, Ops: ops, Pref: core.UserPref(pref), Payload: payload})
}

// Do runs one request through the lifecycle: OnSubmit hooks in stack
// order (first error aborts; ErrRejected counts as a rejection),
// election, OnElect hooks, execution on the elected SED through the
// transport, OnComplete hooks. Failures after admission also reach
// OnComplete (rec.Err set) so interceptors release per-request state.
// A zero req.ID is assigned from the master's sequence.
//
// With WithRetries armed, a failed Solve re-elects excluding the
// servers that already failed (admission runs once, OnElect per
// election, one OnComplete for the final outcome). With tracing on,
// the lifecycle is emitted as a span tree rooted at "submit" — see
// WithSpans — and every stage feeds greensched_stage_seconds when an
// ObsInterceptor registry is mounted.
//
// With WithJournal mounted, the admission is journaled before the
// hooks run, each dispatch books a lease on the elected SED, and the
// outcome settles the entry — see Replay for the restart path.
func (m *Master) Do(ctx context.Context, req Request) (Response, error) {
	return m.doWith(ctx, req, nil)
}

// doWith is Do with a pre-seeded election exclusion set: Replay uses
// it to redo a journaled lease on a DIFFERENT SED than the one the
// dead master had dispatched to.
func (m *Master) doWith(ctx context.Context, req Request, excluded map[string]bool) (Response, error) {
	if m.sem != nil {
		select {
		case m.sem <- struct{}{}:
			defer func() { <-m.sem }()
		case <-ctx.Done():
			return Response{}, ctx.Err()
		}
	}
	if req.ID == 0 {
		req.ID = m.nextID.Add(1)
	}
	m.submitted.Add(1)
	// The admission is durable BEFORE the interceptor stack runs, so a
	// request that crashes while parked inside an OnSubmit hook (carbon
	// deferral) is still replayed. Re-admission of a replayed ID dedups
	// inside the journal.
	m.journalAdmit(req)

	// Trace context is minted here and rides the Request — through the
	// estimation fan-out, across the gob wire, into the SED — so every
	// downstream span stitches to this root by ID alone (no cross-
	// process clock agreement needed; Start is each emitter's clock).
	var rootID uint64
	var rootStart float64
	if m.sink != nil {
		rootStart = obs.Uptime()
		if m.sink.spans() {
			if req.TraceID == 0 {
				req.TraceID = obs.NewSpanID()
			}
			rootID = obs.NewSpanID()
			req.ParentSpan = rootID
		}
	}
	endRoot := func(err error) {
		if m.sink == nil {
			return
		}
		dur := obs.Uptime() - rootStart
		if !m.sink.spans() {
			m.sink.observe(obs.StageSubmit, dur)
			return
		}
		sp := obs.Span{
			TraceID: req.TraceID, SpanID: rootID,
			Name: obs.StageSubmit, Start: rootStart, DurSec: dur,
			Attrs: map[string]string{"service": req.Service},
		}
		if err != nil {
			sp.Err = err.Error()
		}
		m.sink.emit(sp)
	}

	if len(m.ics) > 0 {
		var admStart float64
		if m.sink != nil {
			admStart = obs.Uptime()
		}
		for _, ic := range m.ics {
			if err := ic.OnSubmit(ctx, m.clock(), &req); err != nil {
				if errors.Is(err, ErrRejected) {
					m.rejected.Add(1)
				} else {
					m.failed.Add(1)
				}
				// Earlier hooks may have attached per-request state; the
				// failure record releases it (hooks ignore IDs they never
				// admitted).
				now := m.clock()
				m.journalSettle(req.ID, err, now, 0, 0)
				rec := RequestRecord{Req: req, Submit: now, Start: now, Finish: now, Err: err}
				for _, ic := range m.ics {
					ic.OnComplete(rec)
				}
				m.emitStage(req, rootID, obs.StageAdmission, admStart, err)
				endRoot(err)
				return Response{}, err
			}
		}
		m.emitStage(req, rootID, obs.StageAdmission, admStart, nil)
	}
	submitAt := m.clock()
	fail := func(server string, start float64, err error) (Response, error) {
		m.failed.Add(1)
		finish := m.clock()
		m.journalSettle(req.ID, err, finish, 0, 0)
		rec := RequestRecord{
			Req: req, Server: server,
			Submit: submitAt, Start: start, Finish: finish,
			Err: err,
		}
		for _, ic := range m.ics {
			ic.OnComplete(rec)
		}
		endRoot(err)
		return Response{}, err
	}

	for attempt := 0; ; attempt++ {
		// Election. The elect span's ID is minted up front so the
		// per-level estimate spans (and, through them, transport spans)
		// nest under it; re-elections after a failed attempt are their
		// own "reelect" spans.
		stage := obs.StageElect
		if attempt > 0 {
			stage = obs.StageReelect
		}
		var electStart float64
		ereq := req
		var electID uint64
		if m.sink != nil {
			electStart = obs.Uptime()
			if m.sink.spans() {
				electID = obs.NewSpanID()
				ereq.ParentSpan = electID
			}
		}
		var server string
		var list estvec.List
		var err error
		if attempt == 0 && excluded == nil {
			server, list, err = m.Elect(ctx, ereq)
		} else {
			server, list, err = m.ElectExcluding(ctx, ereq, excluded)
		}
		if m.sink != nil {
			electDur := obs.Uptime() - electStart
			if !m.sink.spans() {
				m.sink.observe(stage, electDur)
			} else {
				sp := obs.Span{
					TraceID: req.TraceID, SpanID: electID, Parent: rootID,
					Name: stage, Start: electStart, DurSec: electDur,
				}
				if server != "" {
					sp.Attrs = map[string]string{"server": server}
				}
				if err != nil {
					sp.Err = err.Error()
				}
				m.sink.emit(sp)
			}
		}
		if err != nil {
			return fail("", submitAt, err)
		}
		now := m.clock()
		for _, ic := range m.ics {
			ic.OnElect(now, req, server, list)
		}

		solver, ok := m.dir.Lookup(server)
		if !ok {
			return fail(server, now, fmt.Errorf("middleware: elected SED %q not in transport", server))
		}

		// Dispatch: the wire crossing plus remote execution. The lease
		// books the elected SED as the request's owner until the term
		// expires; a failover re-lease supersedes it. The copy handed to
		// the solver parents under the dispatch span so transport
		// (dial/encode/decode) and SED (queue/solve) spans nest here.
		m.journalLease(req.ID, server)
		start := m.clock()
		var dispStart float64
		dreq := req
		var dispID uint64
		if m.sink != nil {
			dispStart = obs.Uptime()
			if m.sink.spans() {
				dispID = obs.NewSpanID()
				dreq.ParentSpan = dispID
			}
		}
		resp, err := solver.Solve(ctx, dreq)
		m.endDispatch(req, rootID, dispID, server, dispStart, resp, err)
		if err != nil {
			if ctx.Err() == nil && m.lifecycle.SEDDown != nil {
				m.lifecycle.SEDDown(server, err)
			}
			if attempt < m.retries && ctx.Err() == nil {
				if excluded == nil {
					excluded = make(map[string]bool)
				}
				excluded[server] = true
				continue
			}
			return fail(server, start, err)
		}
		finish := m.clock()

		m.completed.Add(1)
		m.addEnergy(resp.EnergyJ)
		m.journalSettle(req.ID, nil, finish, resp.ExecSec, resp.EnergyJ)

		rec := RequestRecord{
			Req: req, Server: resp.Server,
			Submit: submitAt, Start: start, Finish: finish,
			ExecSec: resp.ExecSec, EnergyJ: resp.EnergyJ,
		}
		for _, ic := range m.ics {
			ic.OnComplete(rec)
		}
		endRoot(nil)
		return resp, nil
	}
}

// Outcome pairs a pipelined request with its result.
type Outcome struct {
	Req  Request
	Resp Response
	Err  error
}

// Pipeline runs every request from reqs through the full Do lifecycle
// on a bounded worker pool and streams the outcomes — the submission
// analogue of the simulator swallowing a million-task workload in one
// call. The pool size is WithConcurrency's n (1 without it); outcomes
// arrive in completion order, not submission order, and the channel
// closes once reqs is closed and drained. Cancelling ctx stops the
// workers; requests not yet started are dropped, never failed.
func (m *Master) Pipeline(ctx context.Context, reqs <-chan Request) <-chan Outcome {
	workers := m.concurrency
	if workers <= 0 {
		workers = 1
	}
	out := make(chan Outcome, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer wg.Done()
			for {
				select {
				case <-ctx.Done():
					return
				case req, ok := <-reqs:
					if !ok {
						return
					}
					resp, err := m.Do(ctx, req)
					select {
					case out <- Outcome{Req: req, Resp: resp, Err: err}:
					case <-ctx.Done():
						return
					}
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(out)
	}()
	return out
}

// emitStage records one master-side stage span parented under the
// request's root span. A nil sink costs nothing.
func (m *Master) emitStage(req Request, rootID uint64, stage string, start float64, err error) {
	if m.sink == nil {
		return
	}
	dur := obs.Uptime() - start
	if !m.sink.spans() {
		m.sink.observe(stage, dur)
		return
	}
	sp := obs.Span{
		TraceID: req.TraceID, SpanID: obs.NewSpanID(), Parent: rootID,
		Name: stage, Start: start, DurSec: dur,
	}
	if err != nil {
		sp.Err = err.Error()
	}
	m.sink.emit(sp)
}

// endDispatch closes a dispatch span and reconstructs the SED-side
// stage decomposition from the timings that rode back on the Response.
// When the SED emitted its own queue/solve spans (resp.Spanned — it
// shares a span writer), reconstruction is skipped to avoid duplicates
// but the stage histogram still observes every stage, so /metrics is
// complete either way. For a SED without a writer (or across a one-way
// transport) the master derives the queue/solve/reply spans on its own
// clock: queue from dispatch start, solve after it, reply as the
// residual wire-and-framing time, clipped at zero.
func (m *Master) endDispatch(req Request, rootID, dispID uint64, server string, dispStart float64, resp Response, err error) {
	if m.sink == nil {
		return
	}
	dispDur := obs.Uptime() - dispStart
	if !m.sink.spans() {
		m.sink.observe(obs.StageDispatch, dispDur)
		if err != nil {
			return
		}
		reply := dispDur - resp.QueueSec - resp.ExecSec
		if reply < 0 {
			reply = 0
		}
		m.sink.observe(obs.StageQueue, resp.QueueSec)
		m.sink.observe(obs.StageSolve, resp.ExecSec)
		m.sink.observe(obs.StageReply, reply)
		return
	}
	sp := obs.Span{
		TraceID: req.TraceID, SpanID: dispID, Parent: rootID,
		Name: obs.StageDispatch, Start: dispStart, DurSec: dispDur,
		Attrs: map[string]string{"server": server},
	}
	if err != nil {
		sp.Err = err.Error()
		m.sink.emit(sp)
		return
	}
	m.sink.emit(sp)

	reply := dispDur - resp.QueueSec - resp.ExecSec
	if reply < 0 {
		reply = 0
	}
	if resp.Spanned {
		// SED-side queue/solve spans are already in the stream;
		// histogram only for those two.
		m.sink.observe(obs.StageQueue, resp.QueueSec)
		m.sink.observe(obs.StageSolve, resp.ExecSec)
	} else {
		m.sink.emit(obs.Span{
			TraceID: req.TraceID, SpanID: obs.NewSpanID(), Parent: dispID,
			Name: obs.StageQueue, Src: resp.Server, Start: dispStart, DurSec: resp.QueueSec,
		})
		m.sink.emit(obs.Span{
			TraceID: req.TraceID, SpanID: obs.NewSpanID(), Parent: dispID,
			Name: obs.StageSolve, Src: resp.Server, Start: dispStart + resp.QueueSec, DurSec: resp.ExecSec,
		})
	}
	// The reply residual is only visible from the master's side of the
	// wire, so it is always the master's span.
	m.sink.emit(obs.Span{
		TraceID: req.TraceID, SpanID: obs.NewSpanID(), Parent: dispID,
		Name: obs.StageReply, Start: dispStart + resp.QueueSec + resp.ExecSec, DurSec: reply,
	})
}

// Finalize assembles the LiveResult: the master's counters first, then
// every interceptor's Finalize in REVERSE stack order (the onion's
// exit path — an early-mounted SLAInterceptor summarizes over the
// grams and joules later interceptors published). Call it when the
// workload drains; calling again re-publishes current totals.
func (m *Master) Finalize() *LiveResult {
	energy := m.EnergyJ()
	res := &LiveResult{
		Submitted: int(m.submitted.Load()),
		Completed: int(m.completed.Load()),
		Rejected:  int(m.rejected.Load()),
		Failed:    int(m.failed.Load()),
		EnergyJ:   energy,
	}
	for i := len(m.ics) - 1; i >= 0; i-- {
		m.ics[i].Finalize(res)
	}
	return res
}

// DeferralStats snapshots a parked carbon-deferral queue.
type DeferralStats struct {
	// Parked counts requests currently waiting out a dirty window.
	Parked int
	// OldestSec is the age of the longest-waiting parked request
	// (0 when nothing is parked).
	OldestSec float64
}

// DeferralReporter is the optional interceptor surface behind
// Master.Deferred. CarbonInterceptor implements it.
type DeferralReporter interface {
	DeferralStats(now float64) DeferralStats
}

// Deferred aggregates the parked carbon-deferral queues across the
// interceptor stack: total parked requests and the age of the oldest.
// A request held back by a dirty-grid window appears here from the
// moment it parks — before its window opens — which is what makes the
// deferral queue observable while Do blocks on it.
func (m *Master) Deferred() DeferralStats {
	now := m.clock()
	var agg DeferralStats
	for _, ic := range m.ics {
		if dr, ok := ic.(DeferralReporter); ok {
			st := dr.DeferralStats(now)
			agg.Parked += st.Parked
			if st.OldestSec > agg.OldestSec {
				agg.OldestSec = st.OldestSec
			}
		}
	}
	return agg
}

// statser is the optional stats surface in-process SEDs expose through
// the transport.
type statser interface {
	Stats() SEDStats
}

// namer is the optional enumeration surface a Directory exposes
// (MapDirectory implements it).
type namer interface {
	Names() []string
}

// remoteStatser is the fallible stats surface Remote handles expose:
// the snapshot crosses the wire (a wireStats round trip), so it can
// fail — deliberately a different signature from statser so in-process
// and remote paths stay distinct.
type remoteStatser interface {
	Stats() (SEDStats, error)
}

// SEDStats aggregates the observability snapshots of every SED the
// transport can enumerate and that exposes stats: in-process SEDs
// directly, Remote handles through a wireStats round trip (an
// unreachable daemon is skipped, not an error — stats are best-effort
// observability, not control flow). Sorted by name.
func (m *Master) SEDStats() []SEDStats {
	dir, ok := m.dir.(namer)
	if !ok {
		return nil
	}
	var out []SEDStats
	for _, name := range dir.Names() {
		solver, ok := m.dir.Lookup(name)
		if !ok {
			continue
		}
		switch st := solver.(type) {
		case statser:
			out = append(out, st.Stats())
		case remoteStatser:
			if s, err := st.Stats(); err == nil {
				out = append(out, s)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
