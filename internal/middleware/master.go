package middleware

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"greensched/internal/core"
	"greensched/internal/obs"
	"greensched/internal/sched"
)

// Master is the composed hierarchy root: a MasterAgent plus the
// transport it invokes elected SEDs through and the interceptor stack
// that runs the request lifecycle (OnSubmit → Elect → OnElect → Solve
// → OnComplete, with Finalize at shutdown). It is the live counterpart
// of a sim scenario built with sim.NewScenario + WithModules.
type Master struct {
	*MasterAgent

	dir   Directory
	ics   []Interceptor
	clock func() float64

	nextID    atomic.Uint64
	submitted atomic.Int64
	completed atomic.Int64
	rejected  atomic.Int64
	failed    atomic.Int64

	mu      sync.Mutex
	energyJ float64

	metrics *obs.Server
}

// masterConfig is what the functional options assemble.
type masterConfig struct {
	agent       AgentConfig
	transport   Directory
	filter      CandidateFilter
	children    []Child
	seds        []*SED
	remotes     []*Remote
	clock       func() float64
	metricsAddr string
}

// Option configures NewMaster.
type Option func(*masterConfig)

// WithName names the master agent (default "master").
func WithName(name string) Option {
	return func(c *masterConfig) { c.agent.Name = name }
}

// WithPolicy sets the plug-in election policy (required).
func WithPolicy(p sched.Policy) Option {
	return func(c *masterConfig) { c.agent.Policy = p }
}

// WithChildTimeout bounds each child's estimation round trip (see
// Agent.SetChildTimeout).
func WithChildTimeout(d time.Duration) Option {
	return func(c *masterConfig) { c.agent.ChildTimeout = d }
}

// WithInterceptors appends request-lifecycle interceptors to the
// master's stack; hooks run in the order given.
func WithInterceptors(ics ...Interceptor) Option {
	return func(c *masterConfig) { c.agent.Interceptors = append(c.agent.Interceptors, ics...) }
}

// WithTransport installs the directory the master resolves elected SED
// names through: a MapDirectory of in-process SEDs, or one of Remote
// handles for a TCP deployment. WithSEDs/WithRemotes register into it
// (the directory must support Add — MapDirectory does); without this
// option they populate an implicit MapDirectory.
func WithTransport(dir Directory) Option {
	return func(c *masterConfig) { c.transport = dir }
}

// WithCandidateFilter installs the §III-C provisioning filter (see
// MasterAgent.SetCandidateFilter).
func WithCandidateFilter(f CandidateFilter) Option {
	return func(c *masterConfig) { c.filter = f }
}

// WithChildren attaches children (SEDs, sub-agents or Remotes) without
// touching the transport — callers pairing it with WithTransport keep
// full control of name resolution.
func WithChildren(children ...Child) Option {
	return func(c *masterConfig) { c.children = append(c.children, children...) }
}

// WithSEDs attaches in-process SEDs AND registers them in the
// transport — the one-line wiring for single-process deployments.
func WithSEDs(seds ...*SED) Option {
	return func(c *masterConfig) { c.seds = append(c.seds, seds...) }
}

// WithRemotes attaches remote SED handles AND registers them in the
// transport — the one-line wiring for TCP deployments.
func WithRemotes(remotes ...*Remote) Option {
	return func(c *masterConfig) { c.remotes = append(c.remotes, remotes...) }
}

// WithMetricsAddr starts an observability listener (host:port;
// host:0 picks a free port) serving /metrics, /healthz and
// net/http/pprof for the master's telemetry. It requires an
// ObsInterceptor in the stack — the listener serves that interceptor's
// registry (the first one found, which is shared when several mounts
// share one). The listener's resolved address is MetricsAddr; Close
// shuts it down.
func WithMetricsAddr(addr string) Option {
	return func(c *masterConfig) { c.metricsAddr = addr }
}

// WithClock overrides the master's clock (seconds, monotone). The
// default reads the wall clock with t=0 at NewMaster; tests inject
// virtual time.
func WithClock(clock func() float64) Option {
	return func(c *masterConfig) { c.clock = clock }
}

// NewMaster builds the composed root from functional options. At
// minimum a policy is required; SEDs/remotes/children and interceptors
// are attached in the order given, and every interceptor's Init runs
// before the master accepts work.
func NewMaster(opts ...Option) (*Master, error) {
	cfg := masterConfig{agent: AgentConfig{Name: "master"}}
	for _, opt := range opts {
		opt(&cfg)
	}
	ma, err := NewMasterAgent(cfg.agent.Name, cfg.agent.Policy)
	if err != nil {
		return nil, err
	}
	if cfg.agent.ChildTimeout > 0 {
		ma.SetChildTimeout(cfg.agent.ChildTimeout)
	}
	if cfg.filter != nil {
		ma.SetCandidateFilter(cfg.filter)
	}

	// WithSEDs/WithRemotes register into the transport: the implicit
	// MapDirectory normally, or an explicit WithTransport directory
	// when it supports registration — a transport that doesn't is a
	// construction-time error, not a per-request "not in transport".
	type adder interface {
		Add(name string, s Solver)
	}
	dir := cfg.transport
	if dir == nil {
		dir = NewMapDirectory()
	}
	register := func(name string, s Solver) error {
		if a, ok := dir.(adder); ok {
			a.Add(name, s)
			return nil
		}
		return fmt.Errorf("middleware: master %s: transport cannot register %s (use WithChildren with a pre-populated WithTransport directory)", cfg.agent.Name, name)
	}
	for _, sed := range cfg.seds {
		if sed == nil {
			return nil, fmt.Errorf("middleware: master %s: nil SED", cfg.agent.Name)
		}
		ma.Attach(sed)
		if err := register(sed.Name(), sed); err != nil {
			return nil, err
		}
	}
	for _, rem := range cfg.remotes {
		if rem == nil {
			return nil, fmt.Errorf("middleware: master %s: nil remote", cfg.agent.Name)
		}
		ma.Attach(rem)
		if err := register(rem.Name(), rem); err != nil {
			return nil, err
		}
	}
	ma.Attach(cfg.children...)

	clock := cfg.clock
	if clock == nil {
		epoch := time.Now()
		clock = func() float64 { return time.Since(epoch).Seconds() }
	}

	m := &Master{MasterAgent: ma, dir: dir, ics: cfg.agent.Interceptors, clock: clock}
	for _, ic := range m.ics {
		if ic == nil {
			return nil, fmt.Errorf("middleware: master %s: nil interceptor", cfg.agent.Name)
		}
		if err := ic.Init(Mount{Master: m}); err != nil {
			return nil, fmt.Errorf("middleware: master %s: %w", cfg.agent.Name, err)
		}
	}
	if cfg.metricsAddr != "" {
		var reg *obs.Registry
		for _, ic := range m.ics {
			if mp, ok := ic.(interface{ Metrics() *obs.Registry }); ok && mp.Metrics() != nil {
				reg = mp.Metrics()
				break
			}
		}
		if reg == nil {
			return nil, fmt.Errorf("middleware: master %s: WithMetricsAddr needs an ObsInterceptor in the stack", cfg.agent.Name)
		}
		srv, err := obs.ListenAndServe(cfg.metricsAddr, reg)
		if err != nil {
			return nil, fmt.Errorf("middleware: master %s: metrics listener: %w", cfg.agent.Name, err)
		}
		m.metrics = srv
	}
	return m, nil
}

// MetricsAddr is the observability listener's resolved host:port, or
// "" when WithMetricsAddr was not used.
func (m *Master) MetricsAddr() string {
	if m.metrics == nil {
		return ""
	}
	return m.metrics.Addr()
}

// Close shuts the master's observability listener down (a no-op
// without one). The interceptor stack itself needs no teardown beyond
// Finalize.
func (m *Master) Close() error {
	if m.metrics == nil {
		return nil
	}
	return m.metrics.Close()
}

// Now returns seconds on the master's clock.
func (m *Master) Now() float64 { return m.clock() }

// Submit runs the full §III-A problem-submission flow through the
// interceptor stack — the composed counterpart of Client.Submit.
func (m *Master) Submit(ctx context.Context, service string, ops float64, pref float64, payload []byte) (Response, error) {
	return m.Do(ctx, Request{Service: service, Ops: ops, Pref: core.UserPref(pref), Payload: payload})
}

// Do runs one request through the lifecycle: OnSubmit hooks in stack
// order (first error aborts; ErrRejected counts as a rejection),
// election, OnElect hooks, execution on the elected SED through the
// transport, OnComplete hooks. Failures after admission also reach
// OnComplete (rec.Err set) so interceptors release per-request state.
// A zero req.ID is assigned from the master's sequence.
func (m *Master) Do(ctx context.Context, req Request) (Response, error) {
	if req.ID == 0 {
		req.ID = m.nextID.Add(1)
	}
	m.submitted.Add(1)

	for _, ic := range m.ics {
		if err := ic.OnSubmit(ctx, m.clock(), &req); err != nil {
			if errors.Is(err, ErrRejected) {
				m.rejected.Add(1)
			} else {
				m.failed.Add(1)
			}
			// Earlier hooks may have attached per-request state; the
			// failure record releases it (hooks ignore IDs they never
			// admitted).
			now := m.clock()
			rec := RequestRecord{Req: req, Submit: now, Start: now, Finish: now, Err: err}
			for _, ic := range m.ics {
				ic.OnComplete(rec)
			}
			return Response{}, err
		}
	}
	submitAt := m.clock()
	fail := func(server string, start float64, err error) (Response, error) {
		m.failed.Add(1)
		rec := RequestRecord{
			Req: req, Server: server,
			Submit: submitAt, Start: start, Finish: m.clock(),
			Err: err,
		}
		for _, ic := range m.ics {
			ic.OnComplete(rec)
		}
		return Response{}, err
	}

	server, list, err := m.Elect(ctx, req)
	if err != nil {
		return fail("", submitAt, err)
	}
	now := m.clock()
	for _, ic := range m.ics {
		ic.OnElect(now, req, server, list)
	}

	solver, ok := m.dir.Lookup(server)
	if !ok {
		return fail(server, now, fmt.Errorf("middleware: elected SED %q not in transport", server))
	}
	start := m.clock()
	resp, err := solver.Solve(ctx, req)
	if err != nil {
		return fail(server, start, err)
	}
	finish := m.clock()

	m.completed.Add(1)
	m.mu.Lock()
	m.energyJ += resp.EnergyJ
	m.mu.Unlock()

	rec := RequestRecord{
		Req: req, Server: resp.Server,
		Submit: submitAt, Start: start, Finish: finish,
		ExecSec: resp.ExecSec, EnergyJ: resp.EnergyJ,
	}
	for _, ic := range m.ics {
		ic.OnComplete(rec)
	}
	return resp, nil
}

// Finalize assembles the LiveResult: the master's counters first, then
// every interceptor's Finalize in REVERSE stack order (the onion's
// exit path — an early-mounted SLAInterceptor summarizes over the
// grams and joules later interceptors published). Call it when the
// workload drains; calling again re-publishes current totals.
func (m *Master) Finalize() *LiveResult {
	m.mu.Lock()
	energy := m.energyJ
	m.mu.Unlock()
	res := &LiveResult{
		Submitted: int(m.submitted.Load()),
		Completed: int(m.completed.Load()),
		Rejected:  int(m.rejected.Load()),
		Failed:    int(m.failed.Load()),
		EnergyJ:   energy,
	}
	for i := len(m.ics) - 1; i >= 0; i-- {
		m.ics[i].Finalize(res)
	}
	return res
}

// DeferralStats snapshots a parked carbon-deferral queue.
type DeferralStats struct {
	// Parked counts requests currently waiting out a dirty window.
	Parked int
	// OldestSec is the age of the longest-waiting parked request
	// (0 when nothing is parked).
	OldestSec float64
}

// DeferralReporter is the optional interceptor surface behind
// Master.Deferred. CarbonInterceptor implements it.
type DeferralReporter interface {
	DeferralStats(now float64) DeferralStats
}

// Deferred aggregates the parked carbon-deferral queues across the
// interceptor stack: total parked requests and the age of the oldest.
// A request held back by a dirty-grid window appears here from the
// moment it parks — before its window opens — which is what makes the
// deferral queue observable while Do blocks on it.
func (m *Master) Deferred() DeferralStats {
	now := m.clock()
	var agg DeferralStats
	for _, ic := range m.ics {
		if dr, ok := ic.(DeferralReporter); ok {
			st := dr.DeferralStats(now)
			agg.Parked += st.Parked
			if st.OldestSec > agg.OldestSec {
				agg.OldestSec = st.OldestSec
			}
		}
	}
	return agg
}

// statser is the optional stats surface in-process SEDs expose through
// the transport.
type statser interface {
	Stats() SEDStats
}

// namer is the optional enumeration surface a Directory exposes
// (MapDirectory implements it).
type namer interface {
	Names() []string
}

// SEDStats aggregates the observability snapshots of every SED the
// transport can enumerate and that exposes Stats (in-process SEDs;
// Remote handles carry no stats and are skipped). Sorted by name.
func (m *Master) SEDStats() []SEDStats {
	dir, ok := m.dir.(namer)
	if !ok {
		return nil
	}
	var out []SEDStats
	for _, name := range dir.Names() {
		solver, ok := m.dir.Lookup(name)
		if !ok {
			continue
		}
		if st, ok := solver.(statser); ok {
			out = append(out, st.Stats())
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
