package middleware

import (
	"fmt"
	"sync"
	"time"

	"greensched/internal/estvec"
	"greensched/internal/obs"
	"greensched/internal/power"
	"greensched/internal/powerd"
)

// ExternalPowerInterceptor puts an out-of-process power estimator on
// the live serving path — the middleware face of the powerd sidecar
// protocol. Like CarbonInterceptor it mounts on either substrate, one
// instance per mount:
//
//   - mounted on a SED, it is a PowerSource (the SED polls it around
//     every execution, so the dynamic estimator learns from sidecar
//     watts instead of a local meter) and its WrapEstimation hook
//     overrides estvec.TagPowerW — and recomputes TagGreenPerf — with
//     the sidecar's current reading, so elections rank on external
//     watts the moment they arrive;
//   - mounted on a Master, it attributes energy to completions that
//     arrived without a SED-side meter reading (rec.EnergyJ == 0),
//     using the source's last reading for the solving server when
//     fresh, and publishes the greensched_power_* families when a
//     Registry is attached.
//
// The Source is typically a powerd.Client, which degrades to analytic
// curves on its own — so a dead sidecar never blinds an election, it
// only changes where the watts come from (loudly: the client warns
// once and the fallback counter climbs).
type ExternalPowerInterceptor struct {
	BaseInterceptor

	// Source supplies per-node watts; required. A powerd.Client gives
	// the full sidecar protocol with fallback; any power.Source works.
	Source power.Source

	// Node is the node name sent to the source from SED mounts;
	// default: the SED's name.
	Node string

	// FreshSec bounds master-side attribution: a completion is
	// attributed sidecar watts only when the source's last reading for
	// the solving server is at most this old (default 5 s — the
	// client's default staleness window).
	FreshSec float64

	// Registry, on master mounts, receives the greensched_power_*
	// families, refreshed from the source at every scrape. Labels are
	// the constant labels stamped on them (ObsInterceptor discipline:
	// same keys across mounts sharing a Registry).
	Registry *obs.Registry
	Labels   map[string]string

	sed   *SED
	clock func() float64

	mu          sync.Mutex
	attributedJ float64
}

// Init implements Interceptor.
func (p *ExternalPowerInterceptor) Init(mount Mount) error {
	if p.Source == nil {
		return fmt.Errorf("middleware: external power interceptor needs a power source")
	}
	if p.FreshSec == 0 {
		p.FreshSec = 5
	}
	if mount.SED != nil {
		p.sed = mount.SED
		if p.Node == "" {
			p.Node = mount.SED.Name()
		}
		epoch := time.Now()
		p.clock = func() float64 { return time.Since(epoch).Seconds() }
		return nil
	}
	if mount.Master == nil {
		return nil // agent mounts observe nothing yet
	}
	p.clock = mount.Master.Now
	if p.Registry != nil {
		m := obs.NewPowerMetrics(p.Registry, p.Labels)
		src := p.Source
		p.Registry.OnScrape(func() {
			if cli, ok := src.(interface{ Stats() powerd.Stats }); ok {
				st := cli.Stats()
				m.SetCounters(float64(st.Requests), float64(st.Errors), float64(st.Fallbacks))
				m.SetState(st.BreakerOpen, st.LastGoodSec)
			}
			if cli, ok := src.(interface{ Readings() []powerd.Reading }); ok {
				for _, r := range cli.Readings() {
					m.SetNodeWatts(r.Node, float64(r.Watts))
				}
			}
		})
	}
	return nil
}

// read polls the source at the SED's current operating point.
func (p *ExternalPowerInterceptor) read() (float64, bool) {
	util := 0.0
	if slots := p.sed.cfg.Slots; slots > 0 {
		util = float64(p.sed.inflight.Load()) / float64(slots)
	}
	w, ok := p.Source.NodePowerW(p.Node,
		[]string{power.MetricUtil, power.MetricTime},
		[]float64{util, p.clock()})
	return float64(w), ok
}

// PowerW implements PowerSource: the SED feeds sidecar watts to its
// dynamic estimator exactly as it would a local meter's.
func (p *ExternalPowerInterceptor) PowerW() (float64, bool) {
	if p.sed == nil {
		return 0, false
	}
	return p.read()
}

// WrapEstimation implements Interceptor: the vector's power tag (and
// the green-perf ratio derived from it) reflects the sidecar's current
// reading instead of the estimator's trailing mean.
func (p *ExternalPowerInterceptor) WrapEstimation(base EstimationFunc) EstimationFunc {
	return func(s *SED, req Request) *estvec.Vector {
		v := base(s, req)
		if w, ok := p.read(); ok {
			v.Set(estvec.TagPowerW, w)
			if f, okF := v.Get(estvec.TagFlops); okF && f > 0 {
				v.Set(estvec.TagGreenPerf, w/f)
			}
		}
		return v
	}
}

// OnComplete implements Interceptor: completions that carried no
// SED-attributed energy (remote daemons without meters, stub
// services) get sidecar watts integrated over their execution time —
// but only from a reading fresh enough to describe that execution.
func (p *ExternalPowerInterceptor) OnComplete(rec RequestRecord) {
	if rec.Err != nil || rec.EnergyJ != 0 || rec.ExecSec <= 0 || rec.Server == "" {
		return
	}
	rs, ok := p.Source.(power.ReadingSource)
	if !ok {
		return
	}
	w, age, ok := rs.LastReading(rec.Server)
	if !ok || age > p.FreshSec {
		return
	}
	p.mu.Lock()
	p.attributedJ += float64(w) * rec.ExecSec
	p.mu.Unlock()
}

// AttributedJ returns the energy this mount has attributed from
// sidecar readings.
func (p *ExternalPowerInterceptor) AttributedJ() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.attributedJ
}

// Finalize implements Interceptor: attributed sidecar energy joins the
// result's energy total.
func (p *ExternalPowerInterceptor) Finalize(res *LiveResult) {
	p.mu.Lock()
	defer p.mu.Unlock()
	res.EnergyJ += p.attributedJ
}
