package middleware

import (
	"context"
	"testing"
	"time"

	"greensched/internal/carbon"
	"greensched/internal/estvec"
	"greensched/internal/sched"
)

func carbonSED(t *testing.T, name string, g float64) *SED {
	t.Helper()
	sed, err := NewSED(SEDConfig{
		Name:   name,
		Slots:  2,
		Carbon: func() (float64, bool) { return g, true },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sed.Register(Service{Name: "burn", Solve: func(ctx context.Context, r Request) ([]byte, error) {
		return []byte(name), nil
	}}); err != nil {
		t.Fatal(err)
	}
	return sed
}

// TestSEDReportsCarbonIntensity: a SED with a carbon signal attached
// must publish its site's current intensity in the estimation vector —
// the paper's "new tags" mechanism applied to the grid.
func TestSEDReportsCarbonIntensity(t *testing.T) {
	sed := carbonSED(t, "lyon-0", 215)
	list, err := sed.Estimate(context.Background(), Request{Service: "burn", Ops: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	if got := list[0].Value(estvec.TagCarbonIntensity, -1); got != 215 {
		t.Errorf("carbon tag = %v, want 215", got)
	}
}

func TestSEDWithoutCarbonOmitsTag(t *testing.T) {
	sed, err := NewSED(SEDConfig{Name: "plain", Slots: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := sed.Register(Service{Name: "burn", Solve: func(ctx context.Context, r Request) ([]byte, error) {
		return nil, nil
	}}); err != nil {
		t.Fatal(err)
	}
	list, err := sed.Estimate(context.Background(), Request{Service: "burn"})
	if err != nil {
		t.Fatal(err)
	}
	if list[0].Has(estvec.TagCarbonIntensity) {
		t.Error("SED without a signal must not invent an intensity")
	}
	// An attached func reporting ok=false behaves the same.
	sed2 := &SEDConfig{Name: "dark", Slots: 1, Carbon: func() (float64, bool) { return 0, false }}
	s2, err := NewSED(*sed2)
	if err != nil {
		t.Fatal(err)
	}
	if s2.DefaultEstimation(Request{}).Has(estvec.TagCarbonIntensity) {
		t.Error("ok=false must omit the tag")
	}
}

// TestLiveSEDElectionFollowsCleanGrid wires two live SEDs to carbon.Live
// signals on different grids: a carbon-weighted election must pick the
// clean site once both servers are measured.
func TestLiveSEDElectionFollowsCleanGrid(t *testing.T) {
	epoch := time.Now()
	clean := carbonSEDWithSignal(t, "clean", carbon.Constant{G: 40}, epoch)
	dirty := carbonSEDWithSignal(t, "dirty", carbon.Constant{G: 600}, epoch)

	// Identical measured behaviour, so only the carbon tag differs.
	seed := func(s *SED) {
		for i := 0; i < 4; i++ {
			if _, err := s.Solve(context.Background(), Request{Service: "burn", Ops: 1e7}); err != nil {
				t.Fatal(err)
			}
		}
	}
	seed(clean)
	seed(dirty)

	ma, err := NewMasterAgent("ma", sched.New(sched.Carbon))
	if err != nil {
		t.Fatal(err)
	}
	ma.Attach(dirty, clean)
	server, list, err := ma.Elect(context.Background(), Request{Service: "burn", Ops: 1e7})
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 {
		t.Fatalf("got %d vectors", len(list))
	}
	if server != "clean" {
		t.Errorf("carbon policy elected %s, want clean", server)
	}
}

func carbonSEDWithSignal(t *testing.T, name string, sig carbon.Signal, epoch time.Time) *SED {
	t.Helper()
	sed, err := NewSED(SEDConfig{
		Name:   name,
		Slots:  2,
		Meter:  func() (float64, bool) { return 150, true },
		Carbon: carbon.Live(sig, epoch),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sed.Register(Service{Name: "burn", Solve: func(ctx context.Context, r Request) ([]byte, error) {
		time.Sleep(time.Millisecond)
		return []byte(name), nil
	}}); err != nil {
		t.Fatal(err)
	}
	return sed
}
