package middleware

import (
	"context"
	"sync"
	"testing"
	"time"

	"greensched/internal/sched"
)

// TestLivePlacementShape reproduces the §IV-A comparison through the
// real concurrent middleware (goroutines and wall-clock execution,
// scaled down ~1000×): a burst of requests flows through an MA→LA→SED
// hierarchy under POWER and PERFORMANCE plug-ins, and the completed
// counts must show the same winners as the simulated Figures 2-3.
func TestLivePlacementShape(t *testing.T) {
	type nodeProfile struct {
		name  string
		speed float64 // flop/s of the fake service
		watts float64
		slots int
	}
	// Miniature taurus/orion/sagittaire: taurus leanest, orion
	// fastest, sagittaire slow and hot.
	profiles := []nodeProfile{
		{"taurus-0", 2.0e9, 150, 4},
		{"taurus-1", 2.0e9, 152, 4},
		{"orion-0", 2.4e9, 340, 4},
		{"orion-1", 2.4e9, 342, 4},
		{"sagittaire-0", 1.0e9, 245, 1},
		{"sagittaire-1", 1.0e9, 246, 1},
	}

	build := func(policy sched.Policy) (*Client, map[string]*SED) {
		seds := map[string]*SED{}
		spec := TreeSpec{Name: "ma", Children: []TreeSpec{
			{Name: "la-0"}, {Name: "la-1"},
		}}
		for i, p := range profiles {
			sed, err := NewSED(SEDConfig{
				Name:  p.name,
				Slots: p.slots,
				Meter: func(w float64) MeterFunc {
					return func() (float64, bool) { return w, true }
				}(p.watts),
			})
			if err != nil {
				t.Fatal(err)
			}
			speed := p.speed
			sed.Register(Service{Name: "burn", Solve: func(ctx context.Context, req Request) ([]byte, error) {
				select {
				case <-time.After(time.Duration(req.Ops / speed * float64(time.Second))):
					return nil, nil
				case <-ctx.Done():
					return nil, ctx.Err()
				}
			}})
			seds[p.name] = sed
			spec.Children[i%2].SEDs = append(spec.Children[i%2].SEDs, sed)
		}
		ma, dir, err := BuildTree(spec, policy)
		if err != nil {
			t.Fatal(err)
		}
		client, err := NewClient(ma, dir)
		if err != nil {
			t.Fatal(err)
		}
		return client, seds
	}

	run := func(policy sched.Policy) map[string]uint64 {
		client, seds := build(policy)
		// Learning phase: the first requests spread to unmeasured
		// SEDs automatically; then steady-state requests follow the
		// policy. 60 requests of ~10 ms (2e7 flops at 2 Gflop/s).
		var wg sync.WaitGroup
		errs := make(chan error, 60)
		sem := make(chan struct{}, 8) // client-side concurrency
		for i := 0; i < 60; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				defer cancel()
				if _, err := client.Submit(ctx, "burn", 2e7, 0, nil); err != nil {
					errs <- err
				}
			}()
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
		counts := map[string]uint64{}
		for name, sed := range seds {
			counts[name] = sed.Completed()
		}
		return counts
	}

	power := run(sched.New(sched.Power))
	perf := run(sched.New(sched.Performance))

	sum := func(counts map[string]uint64, prefix string) uint64 {
		total := uint64(0)
		for name, c := range counts {
			if len(name) >= len(prefix) && name[:len(prefix)] == prefix {
				total += c
			}
		}
		return total
	}
	// POWER must concentrate on the lean taurus pair.
	if sum(power, "taurus") <= sum(power, "orion") {
		t.Errorf("live POWER: taurus=%d orion=%d, want taurus-dominant",
			sum(power, "taurus"), sum(power, "orion"))
	}
	// PERFORMANCE must concentrate on the fast orion pair.
	if sum(perf, "orion") <= sum(perf, "taurus") {
		t.Errorf("live PERFORMANCE: orion=%d taurus=%d, want orion-dominant",
			sum(perf, "orion"), sum(perf, "taurus"))
	}
	// Every SED was touched at least once (learning phase).
	for name, c := range power {
		if c == 0 {
			t.Errorf("live POWER never touched %s", name)
		}
	}
}
