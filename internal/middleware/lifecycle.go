package middleware

// Lifecycle bundles typed callbacks for hierarchy churn — the
// observability hooks a fleet controller registers to react to agents
// joining and leaving and to SEDs failing dispatches, without polling
// SEDStats. Callbacks run synchronously on the mutating (or, for
// SEDDown, the dispatching) goroutine: keep them fast and non-blocking,
// and make them concurrency-safe — SEDDown in particular fires from
// concurrent request lifecycles. Nil fields are simply not called.
type Lifecycle struct {
	// AgentJoined fires for every child attached to the master's root
	// agent: once per WithSEDs/WithRemotes/WithChildren entry during
	// NewMaster, then on every Master.Attach.
	AgentJoined func(name string)
	// AgentLeft fires when Master.Detach removes a child.
	AgentLeft func(name string)
	// SEDDown fires when a dispatch to an elected SED fails while the
	// request's context is still live — transport loss or execution
	// error, the signal WithRetries fails over on (and, with a journal
	// mounted, the in-run counterpart of a lease expiring).
	SEDDown func(name string, err error)
}

// WithLifecycle registers the churn callbacks on the master.
func WithLifecycle(lc Lifecycle) Option {
	return func(c *masterConfig) { c.lifecycle = lc }
}

// Attach adds children to the root agent and fires AgentJoined for
// each (shadows Agent.Attach to add the hook). A child that is itself
// a Solver (a SED, a Remote) is also registered in the transport
// directory when the transport supports it, so an attached node is
// dispatchable, not just electable — the same wiring NewMaster does
// for construction-time children.
func (m *Master) Attach(children ...Child) {
	m.MasterAgent.Attach(children...)
	type adder interface {
		Add(name string, s Solver)
	}
	dir, canAdd := m.dir.(adder)
	for _, c := range children {
		if c == nil {
			continue
		}
		if s, ok := c.(Solver); ok && canAdd {
			dir.Add(c.Name(), s)
		}
		if m.lifecycle.AgentJoined != nil {
			m.lifecycle.AgentJoined(c.Name())
		}
	}
}

// Detach removes the named child from the root agent and fires
// AgentLeft when it was present. The transport directory is left
// untouched: in-flight requests already elected onto the SED may still
// resolve it, they just can't be elected onto it anymore.
func (m *Master) Detach(name string) bool {
	ok := m.MasterAgent.Detach(name)
	if ok && m.lifecycle.AgentLeft != nil {
		m.lifecycle.AgentLeft(name)
	}
	return ok
}
