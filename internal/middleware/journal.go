package middleware

import (
	"context"
	"errors"
	"fmt"
	"time"

	"greensched/internal/core"
	"greensched/internal/journal"
)

// WithJournal mounts a write-ahead log under the request lifecycle:
// every admission is journaled before the interceptor stack runs, every
// SED dispatch books a lease (owner + expiry), carbon-parked requests
// are journaled as deferred, and every outcome settles the entry. A
// master restarted over the same journal calls Replay to re-book the
// settled outcomes and re-submit the incomplete work, so a crash loses
// nothing that was admitted.
//
// The master also seeds its request-ID sequence past the journal's
// highest ID, so post-restart traffic never collides with journaled
// lifecycles. Journal write errors never fail requests — availability
// over durability — they are counted (greensched_journal_errors_total
// with an ObsInterceptor mounted).
func WithJournal(j *journal.Journal) Option {
	return func(c *masterConfig) { c.journal = j }
}

// WithLeaseTerm sets the dispatch lease term booked per SED dispatch
// (default journal.DefaultLeaseTermSec). A lease bounds how long a SED
// owns a request: after a master restart, a journaled lease must expire
// before Replay redoes the work — on a different SED — which is what
// keeps redo from racing an executor that may still be computing.
func WithLeaseTerm(d time.Duration) Option {
	return func(c *masterConfig) { c.leaseTermSec = d.Seconds() }
}

// Journal returns the mounted write-ahead log, or nil without
// WithJournal. Interceptors use it at Init time to journal their own
// lifecycle contributions (CarbonInterceptor journals parks).
func (m *Master) Journal() *journal.Journal { return m.jrn }

// journalAdmit journals a request's admission before the interceptor
// stack runs, so even a request that parks (or crashes) inside an
// OnSubmit hook is durable. Errors are counted, never fatal. Fsync
// failures are excluded here — journal.Stats.SyncErrors already counts
// them, and greensched_journal_errors_total sums both sources.
func (m *Master) journalAdmit(req Request) {
	if m.jrn == nil {
		return
	}
	if err := m.jrn.Admit(journal.Record{
		ID: req.ID, Service: req.Service, Ops: req.Ops, Pref: float64(req.Pref),
		Class: req.Class, Deadline: req.Deadline, Value: req.Value,
		Deferrable: req.Deferrable, Payload: req.Payload, SubmitAt: m.clock(),
	}); err != nil && !errors.Is(err, journal.ErrSync) {
		m.journalErrs.Add(1)
	}
}

// journalLease books a dispatch lease; a failover re-lease simply
// supersedes the previous one.
func (m *Master) journalLease(id uint64, sed string) {
	if m.jrn == nil {
		return
	}
	if _, err := m.jrn.Lease(id, sed, m.leaseTermSec); err != nil && !errors.Is(err, journal.ErrSync) {
		m.journalErrs.Add(1)
	}
}

// journalSettle records a request's terminal outcome.
func (m *Master) journalSettle(id uint64, err error, finish, execSec, energyJ float64) {
	if m.jrn == nil {
		return
	}
	outcome := journal.StateCompleted
	msg := ""
	switch {
	case err == nil:
	case errors.Is(err, ErrRejected):
		outcome, msg = journal.StateRejected, err.Error()
	default:
		outcome, msg = journal.StateFailed, err.Error()
	}
	if jerr := m.jrn.Settle(id, outcome, finish, execSec, energyJ, msg); jerr != nil && !errors.Is(jerr, journal.ErrSync) {
		m.journalErrs.Add(1)
	}
}

// Rebooker is the optional interceptor surface Replay restores settled
// outcomes through: Rebook books a journaled, already-terminal record
// into the interceptor's accounts exactly once, without re-running
// admission or execution. SLA, carbon, budget and obs interceptors
// implement it, which is what makes a restarted master's ledger,
// emissions, budget and counters byte-equal to an uninterrupted run.
type Rebooker interface {
	Rebook(rec RequestRecord)
}

// ReplayStats summarizes one Replay pass.
type ReplayStats struct {
	// Rebooked counts settled outcomes restored to the books.
	Rebooked int
	// Resubmitted counts incomplete requests re-driven through the
	// full lifecycle, including the deferred entries handed to the
	// background (see Replay — their outcomes land after it returns).
	Resubmitted int
	// LeaseExpired counts leases Replay waited out before redoing the
	// work.
	LeaseExpired int
	// Redone counts leased requests redone successfully on a different
	// SED.
	Redone int
	// Failed counts synchronous resubmissions that failed again (a
	// replayed rejection is not a failure — admission re-screened it).
	// A background deferred re-submission that fails is journaled and
	// counted on the master like any failed request, not here.
	Failed int
}

// Replay folds the journal back into a freshly restarted master: the
// outcomes that settled before the crash are re-booked through every
// Rebooker interceptor (exactly once — they are never re-executed),
// and the incomplete requests are re-submitted through the full
// interceptor stack, so SLA admission, carbon deferral and budget
// metering account for them exactly as first-time traffic. A request
// the dead master had leased to a SED is redone only after its lease
// expires, excluding that SED from the election — the restart
// generalization of the SED-death-only SubmitWithRetry.
//
// Deferred (carbon-parked) entries are re-submitted in the BACKGROUND:
// a replayed deferrable request re-enters the carbon interceptor,
// which parks it until the grid window clears — potentially hours —
// and master startup must not wait behind a green window (nor delay
// the redo of expired leases, which Replay drives first). The
// background re-submissions run under ctx and settle onto the books
// and the journal exactly like first-time traffic; ReplayWait blocks
// until they drain.
//
// Call it once, after NewMaster and before accepting new traffic.
func (m *Master) Replay(ctx context.Context) (ReplayStats, error) {
	var st ReplayStats
	if m.jrn == nil {
		return st, fmt.Errorf("middleware: Replay needs WithJournal")
	}
	for _, e := range m.jrn.Settled() {
		rec := replayRecord(e)
		m.submitted.Add(1)
		switch e.State {
		case journal.StateCompleted:
			m.completed.Add(1)
			m.addEnergy(rec.EnergyJ)
		case journal.StateRejected:
			m.rejected.Add(1)
		default:
			m.failed.Add(1)
		}
		for _, ic := range m.ics {
			if rb, ok := ic.(Rebooker); ok {
				rb.Rebook(rec)
			}
		}
		st.Rebooked++
	}
	var deferred []journal.Entry
	for _, e := range m.jrn.Pending() {
		if e.State == journal.StateDeferred {
			deferred = append(deferred, e)
			continue
		}
		req := replayRequest(e)
		var excluded map[string]bool
		if e.State == journal.StateLeased {
			if err := m.awaitLeaseExpiry(ctx, e.Expiry); err != nil {
				return st, err
			}
			st.LeaseExpired++
			m.leaseExpiries.Add(1)
			if e.SED != "" {
				excluded = map[string]bool{e.SED: true}
			}
		}
		st.Resubmitted++
		m.replays.Add(1)
		_, err := m.doWith(ctx, req, excluded)
		switch {
		case err == nil:
			if e.State == journal.StateLeased {
				st.Redone++
				m.redone.Add(1)
			}
		case ctx.Err() != nil:
			return st, ctx.Err()
		case !errors.Is(err, ErrRejected):
			st.Failed++
		}
	}
	for _, e := range deferred {
		st.Resubmitted++
		m.replays.Add(1)
		req := replayRequest(e)
		m.replayWG.Add(1)
		go func() {
			defer m.replayWG.Done()
			m.doWith(ctx, req, nil)
		}()
	}
	return st, nil
}

// ReplayWait blocks until the background deferred re-submissions the
// last Replay launched have settled, or ctx ends. An entry still
// parked when the master shuts down simply stays incomplete in the
// journal — the next incarnation replays it again.
func (m *Master) ReplayWait(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		m.replayWG.Wait()
		close(done)
	}()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-done:
		return nil
	}
}

// awaitLeaseExpiry sleeps (on the journal clock) until a journaled
// lease expires, respecting ctx.
func (m *Master) awaitLeaseExpiry(ctx context.Context, expiry float64) error {
	for {
		wait := expiry - m.jrn.Now()
		if wait <= 0 {
			return nil
		}
		t := time.NewTimer(time.Duration(wait * float64(time.Second)))
		select {
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		case <-t.C:
		}
	}
}

// replayRequest rebuilds the admitted request from its journal entry,
// preserving its original ID (the journal dedups on it — the replayed
// lifecycle continues the journaled one instead of starting another).
func replayRequest(e journal.Entry) Request {
	a := e.Admit
	return Request{
		ID: a.ID, Service: a.Service, Ops: a.Ops, Pref: core.UserPref(a.Pref),
		Payload: a.Payload, Class: a.Class, Deadline: a.Deadline, Value: a.Value,
		Deferrable: a.Deferrable,
	}
}

// replayRecord rebuilds the RequestRecord of a settled journal entry
// for rebooking, at its ORIGINAL submit and finish times.
func replayRecord(e journal.Entry) RequestRecord {
	req := replayRequest(e)
	f := e.Final
	start := e.Admit.SubmitAt
	if f.ExecSec > 0 && f.FinishAt > f.ExecSec {
		start = f.FinishAt - f.ExecSec
	}
	rec := RequestRecord{
		Req: req, Server: e.SED,
		Submit: e.Admit.SubmitAt, Start: start, Finish: f.FinishAt,
		ExecSec: f.ExecSec, EnergyJ: f.EnergyJ,
	}
	switch e.State {
	case journal.StateRejected:
		rec.Err = fmt.Errorf("%w: %s", ErrRejected, f.Err)
	case journal.StateFailed:
		rec.Err = errors.New(f.Err)
	}
	return rec
}
