package middleware

import (
	"context"
	"reflect"
	"testing"

	"greensched/internal/estvec"
	"greensched/internal/sched"
)

// This file is the interceptor redesign's back-compat contract,
// mirroring sim/compat_test.go: a legacy SEDConfig driving the
// deprecated one-slot fields (Meter, Carbon, Estimation) must produce
// identical estimation vectors and identical elections to the
// equivalent explicit interceptor stack. If an adapter ever drifts
// from its interceptor, this is the test that fails.

// compatPair builds the same two-SED deployment twice: once through
// the legacy fields, once through the explicit interceptor stack. The
// SEDs oppose power and carbon (lean grid, hungry node vs dirty grid,
// lean node) so different policies elect different servers — an
// adapter that drops a tag flips an election here.
func compatPair(t *testing.T) (legacy, explicit map[string]*SED) {
	t.Helper()
	specs := []struct {
		name   string
		watts  float64
		carbon float64
	}{
		{"greedy-clean", 300, 100},
		{"frugal-dirty", 90, 500},
	}
	legacy = make(map[string]*SED)
	explicit = make(map[string]*SED)
	for _, spec := range specs {
		watts, g := spec.watts, spec.carbon
		meter := func() (float64, bool) { return watts, true }
		carbonFn := func() (float64, bool) { return g, true }

		l, err := NewSED(SEDConfig{Name: spec.name, Slots: 2, Meter: meter, Carbon: carbonFn})
		if err != nil {
			t.Fatal(err)
		}
		e, err := NewSED(SEDConfig{Name: spec.name, Slots: 2, Interceptors: []Interceptor{
			&MeterInterceptor{Meter: meter},
			&CarbonInterceptor{Func: carbonFn},
		}})
		if err != nil {
			t.Fatal(err)
		}
		for _, sed := range []*SED{l, e} {
			if err := sed.Register(burnService(2e9)); err != nil {
				t.Fatal(err)
			}
		}
		legacy[spec.name] = l
		explicit[spec.name] = e
	}
	return legacy, explicit
}

// TestLegacySEDConfigMatchesInterceptorStack: after identical priming,
// the deterministic tags agree and every policy elects the same server
// from both spellings.
func TestLegacySEDConfigMatchesInterceptorStack(t *testing.T) {
	legacy, explicit := compatPair(t)
	prime(t, legacy)
	prime(t, explicit)

	// Constant meters make the learned power exact: the adapters must
	// have fed the same readings to both estimators.
	for name := range legacy {
		lw := legacy[name].Stats().PowerW
		ew := explicit[name].Stats().PowerW
		if lw != ew || lw == 0 {
			t.Errorf("%s: learned power legacy=%v explicit=%v", name, lw, ew)
		}
	}

	// The deterministic estimation tags must agree bit-for-bit.
	req := Request{Service: "burn", Ops: 1e7}
	for name := range legacy {
		lv, err := legacy[name].Estimate(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		ev, err := explicit[name].Estimate(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		for _, tag := range []estvec.Tag{
			estvec.TagPowerW, estvec.TagCarbonIntensity, estvec.TagFreeCores,
			estvec.TagQueueLen, estvec.TagActive, estvec.TagKnown, estvec.TagRequests,
		} {
			if lg, eg := lv[0].Value(tag, -1), ev[0].Value(tag, -1); lg != eg {
				t.Errorf("%s: tag %s legacy=%v explicit=%v", name, tag, lg, eg)
			}
		}
	}

	// Opposing policies must elect the same (different) servers from
	// both spellings.
	elect := func(seds map[string]*SED, policy sched.Policy) string {
		t.Helper()
		ma, err := NewMasterAgent("ma", policy)
		if err != nil {
			t.Fatal(err)
		}
		ma.Attach(seds["greedy-clean"], seds["frugal-dirty"])
		SeedRand(7)
		server, _, err := ma.Elect(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		return server
	}
	for _, tc := range []struct {
		policy sched.Kind
		want   string
	}{
		{sched.Power, "frugal-dirty"},
		{sched.Carbon, "greedy-clean"},
	} {
		lw := elect(legacy, sched.New(tc.policy))
		ew := elect(explicit, sched.New(tc.policy))
		if lw != ew {
			t.Errorf("%v: legacy elected %s, explicit %s", tc.policy, lw, ew)
		}
		if lw != tc.want {
			t.Errorf("%v elected %s, want %s", tc.policy, lw, tc.want)
		}
	}
}

// TestLegacyEstimationMatchesEstimationInterceptor: a fully custom
// estimation function produces byte-identical vectors through the
// legacy field and the explicit interceptor.
func TestLegacyEstimationMatchesEstimationInterceptor(t *testing.T) {
	custom := func(s *SED, req Request) *estvec.Vector {
		return estvec.New(s.Name()).
			Set(estvec.Tag("rack_temp_c"), 21).
			Set(estvec.TagFlops, 3e9).
			SetBool(estvec.TagActive, true)
	}
	l, err := NewSED(SEDConfig{Name: "custom", Slots: 1, Estimation: custom,
		Carbon: func() (float64, bool) { return 400, true }})
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewSED(SEDConfig{Name: "custom", Slots: 1, Interceptors: []Interceptor{
		&CarbonInterceptor{Func: func() (float64, bool) { return 400, true }},
		&EstimationInterceptor{Estimate: custom},
	}})
	if err != nil {
		t.Fatal(err)
	}
	for _, sed := range []*SED{l, e} {
		if err := sed.Register(burnService(2e9)); err != nil {
			t.Fatal(err)
		}
	}
	ctx := context.Background()
	lv, err := l.Estimate(ctx, Request{Service: "burn", Ops: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	ev, err := e.Estimate(ctx, Request{Service: "burn", Ops: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(lv, ev) {
		t.Errorf("vectors diverged:\nlegacy:   %v\nexplicit: %v", lv[0], ev[0])
	}
	// Both spellings suppress the carbon tag: the custom function
	// replaces everything below it in the chain (the documented legacy
	// override order).
	if lv[0].Has(estvec.TagCarbonIntensity) || ev[0].Has(estvec.TagCarbonIntensity) {
		t.Error("estimation override must suppress the carbon tag in both spellings")
	}
}
