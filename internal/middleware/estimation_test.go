package middleware

import (
	"context"
	"testing"

	"greensched/internal/estvec"
	"greensched/internal/sched"
)

// TestCustomEstimationFunction exercises the paper's plug-in hook:
// "A developer can create his own performance estimation function and
// include it into a SED so that when the SED receives a user request,
// the custom function is called to populate an estimation vector."
func TestCustomEstimationFunction(t *testing.T) {
	calls := 0
	sed, err := NewSED(SEDConfig{
		Name:  "custom",
		Slots: 2,
		Estimation: func(s *SED, req Request) *estvec.Vector {
			calls++
			// Start from the defaults, then overlay a custom tag
			// and a synthetic flops estimate.
			v := s.DefaultEstimation(req)
			v.Set(estvec.Tag("gpu_mem_free_gb"), 11)
			v.Set(estvec.TagFlops, 42e9)
			return v
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	sed.Register(Service{Name: "burn", Solve: func(ctx context.Context, r Request) ([]byte, error) {
		return nil, nil
	}})
	list, err := sed.Estimate(context.Background(), Request{Service: "burn", Ops: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("custom estimation called %d times", calls)
	}
	v := list[0]
	if v.Value(estvec.Tag("gpu_mem_free_gb"), 0) != 11 {
		t.Fatal("custom tag missing")
	}
	if v.Value(estvec.TagFlops, 0) != 42e9 {
		t.Fatal("custom flops override missing")
	}
	// Standard tags still present (built on DefaultEstimation).
	if !v.Has(estvec.TagFreeCores) || !v.Has(estvec.TagActive) {
		t.Fatal("default tags lost")
	}
}

// TestCustomEstimationDrivesElection: a custom tag plus a custom
// policy changes the Master Agent's election — the full §III framework
// loop for third-party extensions.
func TestCustomEstimationDrivesElection(t *testing.T) {
	const tagLocality = estvec.Tag("data_locality")
	mk := func(name string, locality float64) *SED {
		sed, err := NewSED(SEDConfig{
			Name:  name,
			Slots: 1,
			Estimation: func(s *SED, req Request) *estvec.Vector {
				return s.DefaultEstimation(req).Set(tagLocality, locality)
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		sed.Register(Service{Name: "burn", Solve: func(ctx context.Context, r Request) ([]byte, error) {
			return []byte(name), nil
		}})
		return sed
	}
	far := mk("far", 0.1)
	near := mk("near", 0.9)

	localityPolicy := policyFunc{
		name: "LOCALITY",
		less: estvec.ByTagDesc(tagLocality, estvec.ByServerName),
	}
	ma, err := NewMasterAgent("ma", localityPolicy)
	if err != nil {
		t.Fatal(err)
	}
	ma.Attach(far, near)
	server, _, err := ma.Elect(context.Background(), Request{Service: "burn", Ops: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	if server != "near" {
		t.Fatalf("locality policy elected %s, want near", server)
	}
}

// policyFunc adapts a Less into a sched.Policy for tests.
type policyFunc struct {
	name string
	less estvec.Less
}

func (p policyFunc) Name() string                  { return p.name }
func (p policyFunc) Less(a, b *estvec.Vector) bool { return p.less(a, b) }

var _ sched.Policy = policyFunc{}
