package middleware

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"greensched/internal/budget"
	"greensched/internal/estvec"
	"greensched/internal/sched"
	"greensched/internal/sla"
)

// recorder appends labelled lifecycle events to a shared log.
type recorder struct {
	mu     sync.Mutex
	events []string
}

func (r *recorder) add(e string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, e)
}

func (r *recorder) log() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.events...)
}

func recordingInterceptor(rec *recorder, label string) *HookInterceptor {
	return &HookInterceptor{
		InitFunc:     func(Mount) error { rec.add("init-" + label); return nil },
		OnSubmitFunc: func(_ context.Context, _ float64, _ *Request) error { rec.add("submit-" + label); return nil },
		OnElectFunc:  func(_ float64, _ Request, _ string, _ estvec.List) { rec.add("elect-" + label) },
		OnCompleteFunc: func(RequestRecord) {
			rec.add("complete-" + label)
		},
		FinalizeFunc: func(*LiveResult) { rec.add("finalize-" + label) },
	}
}

// TestMasterLifecycleHookOrder: entry hooks (Init, OnSubmit, OnElect,
// OnComplete) run in stack order; Finalize runs in reverse — the
// onion's exit path.
func TestMasterLifecycleHookOrder(t *testing.T) {
	rec := &recorder{}
	m, err := NewMaster(
		WithPolicy(sched.New(sched.Power)),
		WithSEDs(newSED(t, "only", 1, 2e9, 100)),
		WithInterceptors(recordingInterceptor(rec, "a"), recordingInterceptor(rec, "b")),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(context.Background(), "burn", 1e6, 0, nil); err != nil {
		t.Fatal(err)
	}
	m.Finalize()
	want := []string{
		"init-a", "init-b",
		"submit-a", "submit-b",
		"elect-a", "elect-b",
		"complete-a", "complete-b",
		"finalize-b", "finalize-a",
	}
	got := rec.log()
	if len(got) != len(want) {
		t.Fatalf("events = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d = %s, want %s (full: %v)", i, got[i], want[i], got)
		}
	}
}

// TestEstimationWrapsFoldLeftToRight: the first interceptor in a SED's
// stack wraps DefaultEstimation, the last is outermost — and the inner
// function runs first, so tag overrides compose in stack order.
func TestEstimationWrapsFoldLeftToRight(t *testing.T) {
	rec := &recorder{}
	wrap := func(label string, tag estvec.Tag, val float64) *HookInterceptor {
		return &HookInterceptor{
			WrapEstimationFunc: func(base EstimationFunc) EstimationFunc {
				return func(s *SED, req Request) *estvec.Vector {
					v := base(s, req)
					rec.add(label)
					return v.Set(tag, val)
				}
			},
		}
	}
	shared := estvec.Tag("layer")
	sed, err := NewSED(SEDConfig{Name: "wrapped", Slots: 1, Interceptors: []Interceptor{
		wrap("a", shared, 1),
		wrap("b", shared, 2),
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := sed.Register(burnService(2e9)); err != nil {
		t.Fatal(err)
	}
	list, err := sed.Estimate(context.Background(), Request{Service: "burn", Ops: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	got := rec.log()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("wrap execution order = %v, want [a b]", got)
	}
	// The later interceptor is outermost: its override wins.
	if v := list[0].Value(shared, 0); v != 2 {
		t.Fatalf("layer tag = %v, want 2 (outermost wrap)", v)
	}
	// Default tags survive underneath the wraps.
	if !list[0].Has(estvec.TagFreeCores) {
		t.Fatal("wraps lost the stock estimation tags")
	}
}

// TestOnSubmitRejectionShortCircuits: the first rejecting hook wins —
// later hooks never run, the submission surfaces ErrRejected, and the
// master books a rejection, not a failure.
func TestOnSubmitRejectionShortCircuits(t *testing.T) {
	var later atomic.Int64
	m, err := NewMaster(
		WithPolicy(sched.New(sched.Power)),
		WithSEDs(newSED(t, "only", 1, 2e9, 100)),
		WithInterceptors(
			&HookInterceptor{OnSubmitFunc: func(_ context.Context, _ float64, req *Request) error {
				return fmt.Errorf("%w: request %d refused by policy", ErrRejected, req.ID)
			}},
			&HookInterceptor{OnSubmitFunc: func(context.Context, float64, *Request) error {
				later.Add(1)
				return nil
			}},
		),
	)
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.Submit(context.Background(), "burn", 1e6, 0, nil)
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v, want ErrRejected", err)
	}
	if later.Load() != 0 {
		t.Error("a hook after the rejecting one still ran")
	}
	res := m.Finalize()
	if res.Submitted != 1 || res.Rejected != 1 || res.Failed != 0 || res.Completed != 0 {
		t.Errorf("result = %+v, want 1 submitted / 1 rejected", res)
	}
}

// TestOnSubmitMutationVisibleDownstream: an earlier hook's request
// mutation reaches later hooks and the elected SED.
func TestOnSubmitMutationVisibleDownstream(t *testing.T) {
	var sawClass atomic.Value
	m, err := NewMaster(
		WithPolicy(sched.New(sched.Power)),
		WithSEDs(newSED(t, "only", 1, 2e9, 100)),
		WithInterceptors(
			&HookInterceptor{OnSubmitFunc: func(_ context.Context, _ float64, req *Request) error {
				req.Class = "boosted"
				return nil
			}},
			&HookInterceptor{OnSubmitFunc: func(_ context.Context, _ float64, req *Request) error {
				sawClass.Store(req.Class)
				return nil
			}},
		),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(context.Background(), "burn", 1e6, 0, nil); err != nil {
		t.Fatal(err)
	}
	if got, _ := sawClass.Load().(string); got != "boosted" {
		t.Errorf("later hook saw class %q, want \"boosted\"", got)
	}
}

// TestNewMasterValidation: construction fails loudly on a missing
// policy, nil interceptors and failing Inits.
func TestNewMasterValidation(t *testing.T) {
	if _, err := NewMaster(); err == nil {
		t.Error("master without a policy accepted")
	}
	if _, err := NewMaster(WithPolicy(sched.New(sched.Power)), WithInterceptors(nil)); err == nil {
		t.Error("nil interceptor accepted")
	}
	boom := &HookInterceptor{InitFunc: func(Mount) error { return errors.New("boom") }}
	if _, err := NewMaster(WithPolicy(sched.New(sched.Power)), WithInterceptors(boom)); err == nil {
		t.Error("failing Init accepted")
	}
}

// TestAgentFromConfigMountsInterceptors: mid-tree agents run Init with
// the agent mount and propagate failures.
func TestAgentFromConfigMountsInterceptors(t *testing.T) {
	var mounted *Agent
	ic := &HookInterceptor{InitFunc: func(m Mount) error {
		mounted = m.Agent
		return nil
	}}
	a, err := NewAgentFromConfig(AgentConfig{
		Name: "la", Policy: sched.New(sched.Power), Interceptors: []Interceptor{ic},
	})
	if err != nil {
		t.Fatal(err)
	}
	if mounted != a {
		t.Error("Init did not receive the agent mount")
	}
	boom := &HookInterceptor{InitFunc: func(Mount) error { return errors.New("boom") }}
	if _, err := NewAgentFromConfig(AgentConfig{
		Name: "la", Policy: sched.New(sched.Power), Interceptors: []Interceptor{boom},
	}); err == nil {
		t.Error("failing Init accepted")
	}
}

// TestSEDFailedCounter is the observability regression test: Solve
// errors must not vanish — they surface in SEDStats.Failed and through
// the master's aggregation.
func TestSEDFailedCounter(t *testing.T) {
	sed, err := NewSED(SEDConfig{Name: "flaky", Slots: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := sed.Register(Service{Name: "burn", Solve: func(context.Context, Request) ([]byte, error) {
		return nil, errors.New("cosmic ray")
	}}); err != nil {
		t.Fatal(err)
	}
	m, err := NewMaster(WithPolicy(sched.New(sched.Power)), WithSEDs(sed))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(context.Background(), "burn", 1e6, 0, nil); err == nil {
		t.Fatal("failing service should surface its error")
	}
	st := sed.Stats()
	if st.Failed != 1 || st.Completed != 0 {
		t.Errorf("stats = %+v, want Failed=1 Completed=0", st)
	}
	agg := m.SEDStats()
	if len(agg) != 1 || agg[0].Failed != 1 {
		t.Errorf("aggregated stats = %+v, want one SED with Failed=1", agg)
	}
	if res := m.Finalize(); res.Failed != 1 {
		t.Errorf("master result failed = %d, want 1", res.Failed)
	}
	// Unknown-service routing errors count too.
	if _, err := sed.Solve(context.Background(), Request{Service: "missing"}); err == nil {
		t.Fatal("unknown service should error")
	}
	if got := sed.Failed(); got != 2 {
		t.Errorf("Failed() = %d, want 2", got)
	}
}

// TestSLAInterceptorLiveLedger: the live path runs per-class admission
// and accrues real dollars — an on-time completion earns its class
// value, a provably worthless request is rejected and forfeited.
func TestSLAInterceptorLiveLedger(t *testing.T) {
	catalog := sla.Catalog{
		"express": {Name: "express", RelDeadlineSec: 60, ValueUSD: 2, Curve: sla.HardDrop{}},
		"doomed":  {Name: "doomed", RelDeadlineSec: 0.001, ValueUSD: 1, Curve: sla.HardDrop{}},
	}
	ic := &SLAInterceptor{
		Config:    &sla.Config{Catalog: catalog, Admission: &sla.Admission{Margin: 1}},
		BestFlops: 2e9, // ops 1e8 → best case 50ms ≫ the doomed 1ms deadline
	}
	m, err := NewMaster(
		WithPolicy(sched.New(sched.Power)),
		WithSEDs(newSED(t, "fast", 2, 2e9, 100)),
		WithInterceptors(ic),
	)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := m.Do(ctx, Request{Service: "burn", Ops: 1e8, Class: "express"}); err != nil {
		t.Fatal(err)
	}
	_, err = m.Do(ctx, Request{Service: "burn", Ops: 1e8, Class: "doomed"})
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("doomed request err = %v, want ErrRejected", err)
	}
	res := m.Finalize()
	if res.SLA == nil {
		t.Fatal("no ledger summary published")
	}
	if res.SLA.EarnedUSD != 2 || res.SLA.ForfeitedUSD != 1 {
		t.Errorf("ledger earned $%.2f forfeited $%.2f, want $2.00 / $1.00", res.SLA.EarnedUSD, res.SLA.ForfeitedUSD)
	}
	if res.SLA.Rejected != 1 || res.Rejected != 1 {
		t.Errorf("rejections: ledger %d master %d, want 1/1", res.SLA.Rejected, res.Rejected)
	}
	if res.SLA.OnTime != 1 {
		t.Errorf("on-time = %d, want 1", res.SLA.OnTime)
	}
}

// TestCarbonInterceptorDefersUntilClean: a deferrable request
// submitted on a dirty grid waits for the window to open; urgent and
// non-deferrable traffic passes straight through.
func TestCarbonInterceptorDefersUntilClean(t *testing.T) {
	var dirty atomic.Bool
	dirty.Store(true)
	feed := func() (float64, bool) {
		if dirty.Load() {
			return 600, true
		}
		return 50, true
	}
	ic := &CarbonInterceptor{Func: feed, DirtyG: 300, MaxDeferSec: 10, PollSec: 0.005}
	m, err := NewMaster(
		WithPolicy(sched.New(sched.Power)),
		WithSEDs(newSED(t, "only", 2, 2e9, 100)),
		WithInterceptors(ic),
	)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Non-deferrable work is never parked.
	done := make(chan error, 1)
	go func() {
		_, err := m.Do(ctx, Request{Service: "burn", Ops: 1e6})
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("non-deferrable request was deferred")
	}

	// A deferrable request waits until the grid turns clean.
	deferredDone := make(chan error, 1)
	go func() {
		_, err := m.Do(ctx, Request{Service: "burn", Ops: 1e6, Deferrable: true})
		deferredDone <- err
	}()
	select {
	case <-deferredDone:
		t.Fatal("deferrable request ran while the grid was dirty")
	case <-time.After(50 * time.Millisecond):
	}
	dirty.Store(false)
	select {
	case err := <-deferredDone:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("deferred request never resumed after the window opened")
	}

	res := m.Finalize()
	if res.Deferred != 1 || res.DeferredSec <= 0 {
		t.Errorf("deferred=%d sec=%.3f, want 1 deferral with positive wait", res.Deferred, res.DeferredSec)
	}
	if res.CO2Grams <= 0 {
		t.Errorf("CO2 attribution = %v, want positive grams", res.CO2Grams)
	}
}

// TestCarbonInterceptorMaxDeferBound: a grid that never turns clean
// releases the request once MaxDeferSec expires.
func TestCarbonInterceptorMaxDeferBound(t *testing.T) {
	ic := &CarbonInterceptor{
		Func:   func() (float64, bool) { return 900, true },
		DirtyG: 300, MaxDeferSec: 0.05, PollSec: 0.005,
	}
	m, err := NewMaster(
		WithPolicy(sched.New(sched.Power)),
		WithSEDs(newSED(t, "only", 1, 2e9, 100)),
		WithInterceptors(ic),
	)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := m.Do(context.Background(), Request{Service: "burn", Ops: 1e6, Deferrable: true}); err != nil {
		t.Fatal(err)
	}
	if waited := time.Since(start); waited < 50*time.Millisecond || waited > 2*time.Second {
		t.Errorf("waited %v, want ≈ MaxDeferSec", waited)
	}
	// Context cancellation bounds the wait too.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	ic2 := &CarbonInterceptor{
		Func:   func() (float64, bool) { return 900, true },
		DirtyG: 300, MaxDeferSec: 60, PollSec: 0.005,
	}
	m2, err := NewMaster(
		WithPolicy(sched.New(sched.Power)),
		WithSEDs(newSED(t, "only2", 1, 2e9, 100)),
		WithInterceptors(ic2),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m2.Do(ctx, Request{Service: "burn", Ops: 1e6, Deferrable: true}); err == nil {
		t.Fatal("cancelled deferral should surface the context error")
	}
}

// TestDeferrableDeadlineClassNeverParked: with the SLA interceptor
// mounted before the carbon one (the documented order), a Deferrable
// request whose CLASS carries the deadline is still exempt from
// green-window parking — the resolved absolute deadline reaches the
// deferral check.
func TestDeferrableDeadlineClassNeverParked(t *testing.T) {
	catalog := sla.Catalog{
		"express": {Name: "express", RelDeadlineSec: 60, ValueUSD: 2, Curve: sla.HardDrop{}},
	}
	m, err := NewMaster(
		WithPolicy(sched.New(sched.Power)),
		WithSEDs(newSED(t, "only", 1, 2e9, 100)),
		WithInterceptors(
			&SLAInterceptor{Config: &sla.Config{Catalog: catalog}},
			&CarbonInterceptor{
				Func:   func() (float64, bool) { return 900, true }, // permanently dirty
				DirtyG: 300, MaxDeferSec: 30, PollSec: 0.005,
			},
		),
	)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := m.Do(context.Background(), Request{
			Service: "burn", Ops: 1e6, Class: "express", Deferrable: true,
		})
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("deadline-class request was parked behind the green window")
	}
	if res := m.Finalize(); res.Deferred != 0 {
		t.Errorf("deferred = %d, want 0", res.Deferred)
	}
}

// TestSLAInterceptorBooksFailures: an admitted request that fails in
// execution forfeits its value in the ledger and releases the
// per-request terms — no silent loss, no state leak.
func TestSLAInterceptorBooksFailures(t *testing.T) {
	sed, err := NewSED(SEDConfig{Name: "flaky", Slots: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := sed.Register(Service{Name: "burn", Solve: func(context.Context, Request) ([]byte, error) {
		return nil, errors.New("cosmic ray")
	}}); err != nil {
		t.Fatal(err)
	}
	catalog := sla.Catalog{
		"express": {Name: "express", RelDeadlineSec: 60, ValueUSD: 2, Curve: sla.HardDrop{}},
	}
	ic := &SLAInterceptor{Config: &sla.Config{Catalog: catalog}}
	m, err := NewMaster(
		WithPolicy(sched.New(sched.Power)),
		WithSEDs(sed),
		WithInterceptors(ic),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Do(context.Background(), Request{Service: "burn", Ops: 1e6, Class: "express"}); err == nil {
		t.Fatal("failing service should surface its error")
	}
	res := m.Finalize()
	if res.SLA == nil {
		t.Fatal("no ledger summary")
	}
	if res.SLA.Failed != 1 || res.SLA.ForfeitedUSD != 2 {
		t.Errorf("ledger failed=%d forfeited=$%.2f, want 1 / $2.00", res.SLA.Failed, res.SLA.ForfeitedUSD)
	}
	ic.mu.Lock()
	leaked := len(ic.terms)
	ic.mu.Unlock()
	if leaked != 0 {
		t.Errorf("%d terms entries leaked after the failure", leaked)
	}
}

// TestWithTransportRegistersSEDs: WithSEDs composes with an explicit
// WithTransport directory — the SEDs are registered where elections
// will be resolved, not into a discarded implicit one.
func TestWithTransportRegistersSEDs(t *testing.T) {
	dir := NewMapDirectory()
	m, err := NewMaster(
		WithPolicy(sched.New(sched.Power)),
		WithTransport(dir),
		WithSEDs(newSED(t, "only", 1, 2e9, 100)),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := dir.Lookup("only"); !ok {
		t.Fatal("SED not registered into the explicit transport")
	}
	if _, err := m.Submit(context.Background(), "burn", 1e6, 0, nil); err != nil {
		t.Fatalf("election through explicit transport: %v", err)
	}
	// A transport that cannot register is a construction-time error.
	if _, err := NewMaster(
		WithPolicy(sched.New(sched.Power)),
		WithTransport(lookupOnlyDirectory{}),
		WithSEDs(newSED(t, "only2", 1, 2e9, 100)),
	); err == nil {
		t.Fatal("unregisterable transport + WithSEDs accepted")
	}
}

// lookupOnlyDirectory is a Directory without an Add method.
type lookupOnlyDirectory struct{}

func (lookupOnlyDirectory) Lookup(string) (Solver, bool) { return nil, false }

// TestBudgetInterceptorChargesAndEnforces: completions charge their
// attributed energy share; exhaustion turns into admission control.
func TestBudgetInterceptorChargesAndEnforces(t *testing.T) {
	tracker, err := budget.NewTracker(1, 3600) // 1 J: the first request exhausts it
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMaster(
		WithPolicy(sched.New(sched.Power)),
		WithSEDs(newSED(t, "hot", 1, 2e9, 5000)),
		WithInterceptors(&BudgetInterceptor{Tracker: tracker, Enforce: true}),
	)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := m.Submit(ctx, "burn", 2e7, 0, nil); err != nil { // ~10ms at 5kW
		t.Fatal(err)
	}
	if !tracker.Exhausted() {
		t.Fatalf("tracker spent %.3f J, want > 1 J", tracker.Spent())
	}
	_, err = m.Submit(ctx, "burn", 2e7, 0, nil)
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("over-budget submission err = %v, want ErrRejected", err)
	}
	res := m.Finalize()
	if math.Abs(res.BudgetSpentJ-res.EnergyJ) > 1e-9 {
		t.Errorf("budget metered %.6f J, master attributed %.6f J", res.BudgetSpentJ, res.EnergyJ)
	}
	if res.BudgetSpentJ <= 0 {
		t.Error("no energy was metered")
	}
}
