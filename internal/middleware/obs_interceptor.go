package middleware

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"greensched/internal/estvec"
	"greensched/internal/obs"
)

// ObsInterceptor puts the whole request lifecycle on a scrape
// endpoint — the observability mirror of the accounting the other
// interceptors already do. Mounted on a Master (FIRST in the stack, so
// it sees every submission before admission control can refuse it), it
// maintains:
//
//   - counters: requests, completions, failures, rejections, per-server
//     elections, carbon deferrals (count and parked seconds);
//   - gauges: in-flight requests, the parked deferral queue (count and
//     oldest age, from Master.Deferred), and the ledger — attributed
//     energy, CO2 grams, budget joules, earned/penalty/forfeited
//     dollars — refreshed from the interceptor stack's own Finalize
//     totals at every scrape, so the endpoint always agrees with the
//     books;
//   - histograms: solve latency and attributed energy per request.
//
// Init registers a scrape collector that runs Master.Finalize before
// each render (Finalize is documented to re-publish current totals),
// which is what keeps a live scrape and an end-of-run study printout
// byte-for-byte consistent.
//
// Several masters may share one Registry: give each mount distinct
// Labels values (the same label KEYS — exposition families are shared)
// and every series splits cleanly, e.g. {transport="tcp"} next to
// {transport="inproc"}.
//
// With a Tracer attached the interceptor also emits the structured
// lifecycle events (submit → admit → elect → solve → complete, or
// reject/fail), in the exact JSONL schema sim.TraceModule emits for a
// simulated run.
type ObsInterceptor struct {
	BaseInterceptor

	// Registry receives the metric families; nil means a private
	// registry created at Init (reachable via Metrics).
	Registry *obs.Registry
	// Tracer, when set, receives lifecycle events. A nil tracer is a
	// no-op.
	Tracer *obs.Tracer
	// Labels are constant labels stamped on every metric this mount
	// produces. All mounts sharing a Registry must use the same label
	// keys.
	Labels map[string]string

	master *Master
	src    string
	names  []string // sorted label names
	vals   []string // label values, parallel to names

	requests    obs.Counter
	completions obs.Counter
	failures    obs.Counter
	rejections  obs.Counter
	deferrals   obs.Counter
	deferredSec obs.Counter
	elections   *obs.CounterVec

	inflight     obs.Gauge
	parked       obs.Gauge
	parkedOldest obs.Gauge
	energyJ      obs.Gauge
	co2Grams     obs.Gauge
	budgetJ      obs.Gauge
	earnedUSD    obs.Gauge
	penaltyUSD   obs.Gauge
	forfeitUSD   obs.Gauge

	solveSec  obs.Histogram
	energyReq obs.Histogram

	// Journal families, registered only when the master mounts a
	// journal and refreshed at scrape time from journal.Stats plus the
	// master's replay atomics.
	jrnRecords  obs.Counter
	jrnBytes    obs.Counter
	jrnRotates  obs.Counter
	jrnReplays  obs.Counter
	jrnExpiries obs.Counter
	jrnRedone   obs.Counter
	jrnErrors   obs.Counter
	jrnPending  obs.Gauge

	// Fleet-wide per-SED families, labelled (labels..., "sed") and
	// refreshed at scrape time from Master.SEDStats — which covers
	// remote daemons through the wireStats frame, so one master scrape
	// sees the whole fleet without per-SED listeners.
	sedCompleted *obs.CounterVec
	sedFailed    *obs.CounterVec
	sedInflight  *obs.GaugeVec
	sedQueued    *obs.GaugeVec
	sedActive    *obs.GaugeVec
	sedMeanExec  *obs.GaugeVec
	sedPowerW    *obs.GaugeVec

	mu           sync.Mutex
	seen         map[uint64]struct{}
	lastDeferred float64
	lastDefSec   float64

	// electBy caches the per-server election counters (copy-on-write,
	// like the Agent snapshots): the hot OnElect path is one atomic load
	// and a map read instead of two slice allocations plus a label-key
	// join under the family mutex per request.
	electMu sync.Mutex
	electBy atomic.Pointer[map[string]obs.Counter]
}

// Metrics returns the registry the interceptor publishes into —
// the one given, or the private one Init created.
func (o *ObsInterceptor) Metrics() *obs.Registry { return o.Registry }

// Init implements Interceptor: it resolves the label set, registers
// every family, and hooks the scrape-time refresh.
func (o *ObsInterceptor) Init(mount Mount) error {
	if mount.Master == nil {
		return fmt.Errorf("middleware: obs interceptor mounts on a Master")
	}
	o.master = mount.Master
	o.src = mount.Master.Name()
	if o.Registry == nil {
		o.Registry = obs.NewRegistry()
	}
	o.names = make([]string, 0, len(o.Labels))
	for k := range o.Labels {
		o.names = append(o.names, k)
	}
	sort.Strings(o.names)
	o.vals = make([]string, len(o.names))
	for i, k := range o.names {
		o.vals[i] = o.Labels[k]
	}
	o.seen = make(map[uint64]struct{})
	o.electBy.Store(&map[string]obs.Counter{})

	reg := o.Registry
	counter := func(name, help string) obs.Counter {
		return reg.CounterVec(name, help, o.names...).With(o.vals...)
	}
	gauge := func(name, help string) obs.Gauge {
		return reg.GaugeVec(name, help, o.names...).With(o.vals...)
	}
	o.requests = counter("greensched_requests_total", "Requests submitted to the master.")
	o.completions = counter("greensched_completions_total", "Requests solved successfully.")
	o.failures = counter("greensched_failures_total", "Requests failed after admission (election, transport, execution).")
	o.rejections = counter("greensched_rejections_total", "Submissions refused by admission control.")
	o.deferrals = counter("greensched_deferrals_total", "Requests released after a carbon-window deferral.")
	o.deferredSec = counter("greensched_deferred_seconds_total", "Seconds requests spent parked in carbon-window deferrals.")
	o.elections = reg.CounterVec("greensched_elections_total",
		"Elections won, by SED.", append(append([]string{}, o.names...), "server")...)

	o.inflight = gauge("greensched_inflight", "Admitted requests currently in the lifecycle (including parked).")
	o.parked = gauge("greensched_deferred_parked", "Carbon-deferred requests currently parked.")
	o.parkedOldest = gauge("greensched_deferred_oldest_age_seconds", "Age of the oldest currently parked request.")
	o.energyJ = gauge("greensched_energy_joules", "Attributed energy of all completions (LiveResult.EnergyJ).")
	o.co2Grams = gauge("greensched_co2_grams", "Emissions attribution (LiveResult.CO2Grams).")
	o.budgetJ = gauge("greensched_budget_spent_joules", "Energy the budget tracker metered (LiveResult.BudgetSpentJ).")
	o.earnedUSD = gauge("greensched_ledger_earned_dollars", "SLA ledger dollars earned.")
	o.penaltyUSD = gauge("greensched_ledger_penalty_dollars", "SLA ledger contractual penalties.")
	o.forfeitUSD = gauge("greensched_ledger_forfeited_dollars", "SLA ledger value forfeited by rejections and failures.")

	solveB := append([]float64{0.001, 0.0025}, obs.DefBuckets...)
	o.solveSec = reg.HistogramVec("greensched_solve_seconds",
		"Solve latency of successful requests.", solveB, o.names...).With(o.vals...)
	o.energyReq = reg.HistogramVec("greensched_request_energy_joules",
		"Attributed energy share per successful request.", obs.ExpBuckets(0.001, 10, 12), o.names...).With(o.vals...)

	if mount.Master.jrn != nil {
		o.jrnRecords = counter("greensched_journal_records_total", "Lifecycle records appended to the dispatch journal.")
		o.jrnBytes = counter("greensched_journal_bytes_total", "Bytes appended to the dispatch journal (headers + payloads).")
		o.jrnRotates = counter("greensched_journal_rotations_total", "Segment rotations (compactions) the journal performed.")
		o.jrnReplays = counter("greensched_journal_replays_total", "Incomplete requests re-submitted by Master.Replay.")
		o.jrnExpiries = counter("greensched_journal_lease_expiries_total", "Leases found expired (or waited out) during replay.")
		o.jrnRedone = counter("greensched_journal_redo_total", "Leased requests redone on a different SED after lease expiry.")
		o.jrnErrors = counter("greensched_journal_errors_total", "Journal append/sync errors (appends the master could not make durable).")
		o.jrnPending = gauge("greensched_journal_pending", "Incomplete lifecycles currently tracked by the journal.")
	}

	sedLabels := append(append([]string{}, o.names...), "sed")
	o.sedCompleted = reg.CounterVec("greensched_sed_completed_total", "Requests each SED completed (fleet-wide, incl. remotes).", sedLabels...)
	o.sedFailed = reg.CounterVec("greensched_sed_failed_total", "Requests each SED failed (fleet-wide, incl. remotes).", sedLabels...)
	o.sedInflight = reg.GaugeVec("greensched_sed_inflight", "Requests currently executing on each SED.", sedLabels...)
	o.sedQueued = reg.GaugeVec("greensched_sed_queued", "Requests waiting in each SED's queue.", sedLabels...)
	o.sedActive = reg.GaugeVec("greensched_sed_active", "1 when the SED accepts work, 0 when drained.", sedLabels...)
	o.sedMeanExec = reg.GaugeVec("greensched_sed_mean_exec_seconds", "Mean execution time of each SED's completions.", sedLabels...)
	o.sedPowerW = reg.GaugeVec("greensched_sed_power_watts", "Each SED's learned power draw.", sedLabels...)

	// Scrape-time refresh: the ledger gauges re-publish through the
	// stack's Finalize (idempotent by contract), the parked-queue
	// gauges read Master.Deferred, and the fleet families read
	// Master.SEDStats, so any scraper sees totals that agree with the
	// books at that instant. The SED counters arrive as absolute
	// snapshots; the monotone delta keeps them counters.
	master := mount.Master
	reg.OnScrape(func() {
		st := master.Deferred()
		o.parked.Set(float64(st.Parked))
		o.parkedOldest.Set(st.OldestSec)
		if jrn := master.jrn; jrn != nil {
			js := jrn.Stats()
			o.jrnRecords.Add(float64(js.Appended) - o.jrnRecords.Value())
			o.jrnBytes.Add(float64(js.BytesTotal) - o.jrnBytes.Value())
			o.jrnRotates.Add(float64(js.Rotations) - o.jrnRotates.Value())
			o.jrnReplays.Add(float64(master.replays.Load()) - o.jrnReplays.Value())
			o.jrnExpiries.Add(float64(master.leaseExpiries.Load()) - o.jrnExpiries.Value())
			o.jrnRedone.Add(float64(master.redone.Load()) - o.jrnRedone.Value())
			o.jrnErrors.Add(float64(js.SyncErrors) + float64(master.journalErrs.Load()) - o.jrnErrors.Value())
			o.jrnPending.Set(float64(js.Pending))
		}
		for _, s := range master.SEDStats() {
			lv := append(append([]string{}, o.vals...), s.Name)
			c := o.sedCompleted.With(lv...)
			c.Add(float64(s.Completed) - c.Value())
			f := o.sedFailed.With(lv...)
			f.Add(float64(s.Failed) - f.Value())
			o.sedInflight.With(lv...).Set(float64(s.InFlight))
			o.sedQueued.With(lv...).Set(float64(s.Queued))
			active := 0.0
			if s.Active {
				active = 1
			}
			o.sedActive.With(lv...).Set(active)
			o.sedMeanExec.With(lv...).Set(s.MeanExecSec)
			o.sedPowerW.With(lv...).Set(s.PowerW)
		}
		master.Finalize()
	})
	return nil
}

// OnSubmit implements Interceptor: every submission counts, enters the
// in-flight gauge and emits a submit event.
func (o *ObsInterceptor) OnSubmit(_ context.Context, now float64, req *Request) error {
	o.requests.Inc()
	o.inflight.Inc()
	o.mu.Lock()
	o.seen[req.ID] = struct{}{}
	o.mu.Unlock()
	o.Tracer.Emit(obs.Event{T: now, Event: obs.EventSubmit, ID: req.ID, Src: o.src, Class: req.Class})
	return nil
}

// OnElect implements Interceptor: the election's winner is counted and
// the admit + elect transitions hit the trace (an elected request has,
// by construction, cleared every admission screen before it).
func (o *ObsInterceptor) OnElect(now float64, req Request, server string, _ estvec.List) {
	o.electionCounter(server).Inc()
	o.Tracer.Emit(obs.Event{T: now, Event: obs.EventAdmit, ID: req.ID, Src: o.src, Class: req.Class})
	o.Tracer.Emit(obs.Event{T: now, Event: obs.EventElect, ID: req.ID, Src: o.src, Class: req.Class, Server: server})
}

// electionCounter resolves the per-server election counter through the
// copy-on-write cache; a miss (first election of a new server) takes
// the slow path once and publishes a fresh snapshot.
func (o *ObsInterceptor) electionCounter(server string) obs.Counter {
	if c, ok := (*o.electBy.Load())[server]; ok {
		return c
	}
	o.electMu.Lock()
	defer o.electMu.Unlock()
	cur := *o.electBy.Load()
	if c, ok := cur[server]; ok {
		return c
	}
	c := o.elections.With(append(append([]string{}, o.vals...), server)...)
	next := make(map[string]obs.Counter, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	next[server] = c
	o.electBy.Store(&next)
	return c
}

// OnComplete implements Interceptor: outcomes split into completions,
// rejections and failures; latency and energy reach the histograms.
// Records for requests this interceptor never saw submit (possible
// when it is mounted after a rejecting interceptor) still count as
// requests, so the counters stay consistent at any mount position.
func (o *ObsInterceptor) OnComplete(rec RequestRecord) {
	o.mu.Lock()
	_, wasSeen := o.seen[rec.Req.ID]
	delete(o.seen, rec.Req.ID)
	o.mu.Unlock()
	if wasSeen {
		o.inflight.Dec()
	} else {
		o.requests.Inc()
	}
	switch {
	case rec.Err == nil:
		o.completions.Inc()
		o.solveSec.Observe(rec.Finish - rec.Start)
		o.energyReq.Observe(rec.EnergyJ)
		o.Tracer.Emit(obs.Event{T: rec.Start, Event: obs.EventSolve, ID: rec.Req.ID, Src: o.src, Class: rec.Req.Class, Server: rec.Server})
		o.Tracer.Emit(obs.Event{T: rec.Finish, Event: obs.EventComplete, ID: rec.Req.ID, Src: o.src, Class: rec.Req.Class,
			Server: rec.Server, DurSec: rec.Finish - rec.Start, EnergyJ: rec.EnergyJ})
	case errors.Is(rec.Err, ErrRejected):
		o.rejections.Inc()
		o.Tracer.Emit(obs.Event{T: rec.Finish, Event: obs.EventReject, ID: rec.Req.ID, Src: o.src, Class: rec.Req.Class, Err: rec.Err.Error()})
	default:
		o.failures.Inc()
		o.Tracer.Emit(obs.Event{T: rec.Finish, Event: obs.EventFail, ID: rec.Req.ID, Src: o.src, Class: rec.Req.Class,
			Server: rec.Server, Err: rec.Err.Error()})
	}
}

// Rebook implements Rebooker: a journaled, settled outcome restored
// after a restart counts as one request with its outcome — never as
// in-flight, and without trace events (its lifecycle happened in a
// previous incarnation; the tracer only records this one's).
func (o *ObsInterceptor) Rebook(rec RequestRecord) {
	o.requests.Inc()
	switch {
	case rec.Err == nil:
		o.completions.Inc()
		o.solveSec.Observe(rec.Finish - rec.Start)
		o.energyReq.Observe(rec.EnergyJ)
	case errors.Is(rec.Err, ErrRejected):
		o.rejections.Inc()
	default:
		o.failures.Inc()
	}
}

// Finalize implements Interceptor: the ledger gauges re-publish from
// the totals the rest of the stack put on the result. Mount this
// interceptor FIRST so reverse-order Finalize runs it LAST, after the
// carbon, budget and SLA interceptors have published theirs.
func (o *ObsInterceptor) Finalize(res *LiveResult) {
	o.mu.Lock()
	o.deferrals.Add(float64(res.Deferred) - o.lastDeferred)
	o.deferredSec.Add(res.DeferredSec - o.lastDefSec)
	o.lastDeferred = float64(res.Deferred)
	o.lastDefSec = res.DeferredSec
	o.mu.Unlock()

	o.energyJ.Set(res.EnergyJ)
	o.co2Grams.Set(res.CO2Grams)
	o.budgetJ.Set(res.BudgetSpentJ)
	if res.SLA != nil {
		o.earnedUSD.Set(res.SLA.EarnedUSD)
		o.penaltyUSD.Set(res.SLA.PenaltyUSD)
		o.forfeitUSD.Set(res.SLA.ForfeitedUSD)
	}
}
