package middleware

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"greensched/internal/sla"
	"greensched/internal/workload"
)

// SLAInterceptor puts the sla package's machinery on the live serving
// path — the mirror of sim.SLAModule. Mounted on a Master it resolves
// every request's class terms against the catalog, screens first
// submissions through the admission controller (a refusal surfaces as
// ErrRejected and forfeits the request's value in the ledger), and
// credits every live completion through its penalty curve, so a
// deployment accrues real dollars exactly the way a simulated run
// does.
//
// Admission needs a best-case execution estimate; the interceptor
// learns the platform's fastest observed flops from completions and
// starts from the BestFlops hint until the first one lands.
//
// Mount it BEFORE a deferring CarbonInterceptor: OnSubmit writes the
// resolved absolute deadline back onto the request, and that is what
// keeps deadline-carrying traffic out of green-window parking. (The
// ledger summary still sees the carbon totals — Finalize hooks run in
// reverse stack order.)
type SLAInterceptor struct {
	BaseInterceptor

	// Config supplies the catalog and admission controller; nil (or
	// nil fields) means DefaultCatalog and admit-everything. The
	// queue-discipline and bypass fields have no live counterpart —
	// SED queues are the transport's FIFO semaphores.
	Config *sla.Config

	// BestFlops seeds the best-case execution estimate (flop/s of the
	// fastest node) before any completion is observed; 0 admits
	// everything until the first completion calibrates it.
	BestFlops float64

	mu        sync.Mutex
	catalog   sla.Catalog
	admission *sla.Admission
	ledger    *sla.Ledger
	terms     map[uint64]sla.Terms
	bestFlops float64
}

// Init implements Interceptor.
func (i *SLAInterceptor) Init(Mount) error {
	cfg := i.Config
	if cfg == nil {
		cfg = &sla.Config{}
	}
	if err := cfg.Validate(); err != nil {
		return err
	}
	if i.BestFlops < 0 {
		return fmt.Errorf("middleware: SLA interceptor BestFlops %v negative", i.BestFlops)
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	i.catalog = cfg.EffectiveCatalog()
	i.admission = cfg.Admission
	i.ledger = sla.NewLedger()
	i.terms = make(map[uint64]sla.Terms)
	i.bestFlops = i.BestFlops
	return nil
}

// OnSubmit implements Interceptor: it resolves the request's terms
// (writing the effective absolute deadline back onto the request so
// later interceptors and policies see it), runs admission, and books a
// rejection's forfeited value.
func (i *SLAInterceptor) OnSubmit(_ context.Context, now float64, req *Request) error {
	terms := i.catalog.Resolve(workload.Task{
		ID: int(req.ID), Ops: req.Ops, Submit: now,
		Deadline: req.Deadline, Value: req.Value, Class: req.Class,
	})
	req.Deadline = terms.Deadline
	req.Value = terms.ValueUSD

	i.mu.Lock()
	defer i.mu.Unlock()
	if i.admission != nil && i.bestFlops > 0 && req.Ops > 0 {
		best := req.Ops / i.bestFlops
		if i.admission.Decide(now, best, terms) == sla.Reject {
			i.ledger.Reject(terms)
			return fmt.Errorf("%w: %s request %d: best case %.3gs cannot earn by deadline %.3gs",
				ErrRejected, terms.Class, req.ID, best, terms.Deadline)
		}
	}
	i.terms[req.ID] = terms
	return nil
}

// OnComplete implements Interceptor: a success is credited through its
// penalty curve (and recalibrates the best-case flops estimate); a
// failure forfeits the admitted value and releases the per-request
// terms either way, so a long-lived master with flaky SEDs neither
// leaks state nor loses dollars from the books.
func (i *SLAInterceptor) OnComplete(rec RequestRecord) {
	i.mu.Lock()
	defer i.mu.Unlock()
	if rec.Err == nil && rec.ExecSec > 0 && rec.Req.Ops > 0 {
		if f := rec.Req.Ops / rec.ExecSec; f > i.bestFlops {
			i.bestFlops = f
		}
	}
	terms, ok := i.terms[rec.Req.ID]
	if !ok {
		return
	}
	delete(i.terms, rec.Req.ID)
	if rec.Err != nil {
		i.ledger.Fail(terms)
		return
	}
	i.ledger.Complete(terms, rec.Finish)
}

// Rebook implements Rebooker: a journaled, already-settled outcome is
// restored to the ledger after a master restart. Terms resolve from
// the record's ORIGINAL submit time, so the dollars land exactly where
// the dead master would have booked them; nothing is stored in the
// per-request terms map — the lifecycle is already over.
func (i *SLAInterceptor) Rebook(rec RequestRecord) {
	terms := i.catalog.Resolve(workload.Task{
		ID: int(rec.Req.ID), Ops: rec.Req.Ops, Submit: rec.Submit,
		Deadline: rec.Req.Deadline, Value: rec.Req.Value, Class: rec.Req.Class,
	})
	i.mu.Lock()
	defer i.mu.Unlock()
	switch {
	case rec.Err == nil:
		if rec.ExecSec > 0 && rec.Req.Ops > 0 {
			if f := rec.Req.Ops / rec.ExecSec; f > i.bestFlops {
				i.bestFlops = f
			}
		}
		i.ledger.Complete(terms, rec.Finish)
	case errors.Is(rec.Err, ErrRejected):
		i.ledger.Reject(terms)
	default:
		i.ledger.Fail(terms)
	}
}

// Finalize implements Interceptor: it publishes the ledger summary,
// dividing the run's energy and emissions into per-dollar intensities.
// Master.Finalize runs hooks in reverse stack order, so an
// SLAInterceptor mounted early sees the totals interceptors mounted
// after it published.
func (i *SLAInterceptor) Finalize(res *LiveResult) {
	s := i.Summarize(res.EnergyJ, res.CO2Grams)
	res.SLA = &s
}

// Summarize snapshots the live ledger against running energy and
// emissions totals.
func (i *SLAInterceptor) Summarize(energyJ, co2Grams float64) sla.Summary {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.ledger.Summarize(energyJ, co2Grams)
}
