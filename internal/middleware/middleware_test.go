package middleware

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"greensched/internal/estvec"
	"greensched/internal/sched"
)

// burnService pretends to compute: it sleeps proportionally to
// req.Ops at a given speed (flop/s).
func burnService(speed float64) Service {
	return Service{
		Name: "burn",
		Solve: func(ctx context.Context, req Request) ([]byte, error) {
			d := time.Duration(req.Ops / speed * float64(time.Second))
			select {
			case <-time.After(d):
				return []byte("done"), nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
	}
}

func newSED(t *testing.T, name string, slots int, speed, watts float64) *SED {
	t.Helper()
	sed, err := NewSED(SEDConfig{
		Name:  name,
		Slots: slots,
		Meter: func() (float64, bool) { return watts, true },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sed.Register(burnService(speed)); err != nil {
		t.Fatal(err)
	}
	return sed
}

func TestSEDValidation(t *testing.T) {
	if _, err := NewSED(SEDConfig{Name: "", Slots: 1}); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := NewSED(SEDConfig{Name: "x", Slots: 0}); err == nil {
		t.Fatal("zero slots accepted")
	}
	sed, _ := NewSED(SEDConfig{Name: "x", Slots: 1})
	if err := sed.Register(Service{}); err == nil {
		t.Fatal("invalid service accepted")
	}
}

func TestSEDEstimateOnlyForOfferedServices(t *testing.T) {
	sed := newSED(t, "s1", 2, 1e9, 100)
	list, err := sed.Estimate(context.Background(), Request{Service: "burn"})
	if err != nil || len(list) != 1 {
		t.Fatalf("Estimate = %v, %v", list, err)
	}
	list, err = sed.Estimate(context.Background(), Request{Service: "nope"})
	if err != nil || list != nil {
		t.Fatalf("unknown service should yield nil list, got %v, %v", list, err)
	}
}

func TestSEDSolveAndLearn(t *testing.T) {
	sed := newSED(t, "s1", 2, 1e9, 150)
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		resp, err := sed.Solve(ctx, Request{ID: uint64(i), Service: "burn", Ops: 2e7})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Server != "s1" || string(resp.Output) != "done" {
			t.Fatalf("resp = %+v", resp)
		}
	}
	if sed.Completed() != 3 {
		t.Fatalf("Completed = %d", sed.Completed())
	}
	v := sed.DefaultEstimation(Request{Service: "burn", Ops: 2e7})
	if !v.Bool(estvec.TagKnown) {
		t.Fatal("estimator should be known after 3 requests")
	}
	if got := v.Value(estvec.TagPowerW, 0); got != 150 {
		t.Fatalf("learned power = %v, want 150", got)
	}
	flops := v.Value(estvec.TagFlops, 0)
	if flops < 1e8 || flops > 2e9 {
		t.Fatalf("learned flops = %v, want near 1e9", flops)
	}
}

func TestSEDSolveUnknownService(t *testing.T) {
	sed := newSED(t, "s1", 1, 1e9, 100)
	if _, err := sed.Solve(context.Background(), Request{Service: "nope"}); err == nil {
		t.Fatal("unknown service solved")
	}
}

func TestSEDConcurrencyBound(t *testing.T) {
	sed, _ := NewSED(SEDConfig{Name: "s", Slots: 3})
	var cur, peak atomic.Int64
	sed.Register(Service{
		Name: "track",
		Solve: func(ctx context.Context, req Request) ([]byte, error) {
			n := cur.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(5 * time.Millisecond)
			cur.Add(-1)
			return nil, nil
		},
	})
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sed.Solve(context.Background(), Request{ID: uint64(i), Service: "track"})
		}(i)
	}
	wg.Wait()
	if got := peak.Load(); got > 3 {
		t.Fatalf("peak concurrency %d exceeded 3 slots", got)
	}
}

func TestSEDContextCancellationWhileQueued(t *testing.T) {
	sed, _ := NewSED(SEDConfig{Name: "s", Slots: 1})
	release := make(chan struct{})
	sed.Register(Service{
		Name: "block",
		Solve: func(ctx context.Context, req Request) ([]byte, error) {
			<-release
			return nil, nil
		},
	})
	go sed.Solve(context.Background(), Request{ID: 1, Service: "block"})
	time.Sleep(10 * time.Millisecond) // occupy the slot
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := sed.Solve(ctx, Request{ID: 2, Service: "block"})
	if err == nil {
		t.Fatal("queued request should fail on context timeout")
	}
	close(release)
}

func buildHierarchy(t *testing.T, policy sched.Policy) (*MasterAgent, *Client, map[string]*SED) {
	t.Helper()
	// MA over two LAs over two SEDs each — the paper's agent tree.
	seds := map[string]*SED{
		"lean-0":   newSED(t, "lean-0", 2, 2e9, 90),
		"lean-1":   newSED(t, "lean-1", 2, 2e9, 95),
		"hungry-0": newSED(t, "hungry-0", 2, 4e9, 300),
		"hungry-1": newSED(t, "hungry-1", 2, 4e9, 310),
	}
	la1, err := NewAgent("la1", policy, 0)
	if err != nil {
		t.Fatal(err)
	}
	la2, err := NewAgent("la2", policy, 0)
	if err != nil {
		t.Fatal(err)
	}
	la1.Attach(seds["lean-0"], seds["lean-1"])
	la2.Attach(seds["hungry-0"], seds["hungry-1"])
	ma, err := NewMasterAgent("ma", policy)
	if err != nil {
		t.Fatal(err)
	}
	ma.Attach(la1, la2)
	dir := NewMapDirectory()
	for name, sed := range seds {
		dir.Add(name, sed)
	}
	client, err := NewClient(ma, dir)
	if err != nil {
		t.Fatal(err)
	}
	return ma, client, seds
}

// prime runs one request through every SED so estimators are known.
func prime(t *testing.T, seds map[string]*SED) {
	t.Helper()
	for _, sed := range seds {
		if _, err := sed.Solve(context.Background(), Request{Service: "burn", Ops: 4e7}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestHierarchyElectionFollowsPolicy(t *testing.T) {
	ma, _, seds := buildHierarchy(t, sched.New(sched.Power))
	prime(t, seds)
	server, list, err := ma.Elect(context.Background(), Request{Service: "burn", Ops: 1e7})
	if err != nil {
		t.Fatal(err)
	}
	if server != "lean-0" {
		t.Fatalf("POWER elected %s, want lean-0", server)
	}
	if len(list) != 4 {
		t.Fatalf("candidate list has %d entries, want 4", len(list))
	}
	// Performance policy prefers the fast nodes.
	ma.SetPolicy(sched.New(sched.Performance))
	server, _, err = ma.Elect(context.Background(), Request{Service: "burn", Ops: 1e7})
	if err != nil {
		t.Fatal(err)
	}
	if server != "hungry-0" && server != "hungry-1" {
		t.Fatalf("PERFORMANCE elected %s, want a hungry node", server)
	}
}

func TestHierarchyUnknownService(t *testing.T) {
	ma, _, _ := buildHierarchy(t, sched.New(sched.Power))
	if _, _, err := ma.Elect(context.Background(), Request{Service: "missing"}); err == nil {
		t.Fatal("unknown service should error (paper step 1)")
	}
}

func TestClientEndToEnd(t *testing.T) {
	_, client, seds := buildHierarchy(t, sched.New(sched.Power))
	prime(t, seds)
	resp, err := client.Submit(context.Background(), "burn", 1e7, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Server == "" || string(resp.Output) != "done" {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestClientConcurrentSubmissions(t *testing.T) {
	_, client, seds := buildHierarchy(t, sched.New(sched.GreenPerf))
	prime(t, seds)
	var wg sync.WaitGroup
	errs := make([]error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = client.Submit(context.Background(), "burn", 2e7, 1, nil)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("submission %d failed: %v", i, err)
		}
	}
	total := uint64(0)
	for _, sed := range seds {
		total += sed.Completed()
	}
	if total != 32+4 { // 32 + priming
		t.Fatalf("completed %d, want 36", total)
	}
}

func TestCandidateFilterApplied(t *testing.T) {
	ma, _, seds := buildHierarchy(t, sched.New(sched.Performance))
	prime(t, seds)
	// Provider filter: drop hungry nodes entirely.
	ma.SetCandidateFilter(func(l estvec.List) estvec.List {
		var out estvec.List
		for _, v := range l {
			if v.Value(estvec.TagPowerW, 1e9) < 200 {
				out = append(out, v)
			}
		}
		return out
	})
	server, _, err := ma.Elect(context.Background(), Request{Service: "burn", Ops: 1e7})
	if err != nil {
		t.Fatal(err)
	}
	if server != "lean-0" && server != "lean-1" {
		t.Fatalf("filter ignored: elected %s", server)
	}
	// A filter that removes everything surfaces the no-server error.
	ma.SetCandidateFilter(func(estvec.List) estvec.List { return nil })
	if _, _, err := ma.Elect(context.Background(), Request{Service: "burn", Ops: 1e7}); err == nil {
		t.Fatal("empty filtered list should error")
	}
}

func TestAgentSurvivesFailingChild(t *testing.T) {
	policy := sched.New(sched.Power)
	ma, err := NewMasterAgent("ma", policy)
	if err != nil {
		t.Fatal(err)
	}
	good := newSED(t, "good", 1, 1e9, 100)
	prime(t, map[string]*SED{"good": good})
	ma.Attach(failingChild{}, good)
	server, _, err := ma.Elect(context.Background(), Request{Service: "burn", Ops: 1e7})
	if err != nil {
		t.Fatalf("healthy subtree should win: %v", err)
	}
	if server != "good" {
		t.Fatalf("elected %s", server)
	}
	// All children failing is an error.
	ma2, _ := NewMasterAgent("ma2", policy)
	ma2.Attach(failingChild{})
	if _, _, err := ma2.Elect(context.Background(), Request{Service: "burn"}); err == nil {
		t.Fatal("all-failed hierarchy should error")
	}
}

type failingChild struct{}

func (failingChild) Name() string { return "dead" }
func (failingChild) Estimate(context.Context, Request) (estvec.List, error) {
	return nil, fmt.Errorf("connection refused")
}

func TestAgentTopKTrim(t *testing.T) {
	policy := sched.New(sched.Power)
	la, err := NewAgent("la", policy, 1)
	if err != nil {
		t.Fatal(err)
	}
	a := newSED(t, "a", 1, 1e9, 100)
	b := newSED(t, "b", 1, 1e9, 50)
	prime(t, map[string]*SED{"a": a, "b": b})
	la.Attach(a, b)
	list, err := la.Estimate(context.Background(), Request{Service: "burn", Ops: 1e7})
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].Server != "b" {
		t.Fatalf("topK trim wrong: %v", list.Servers())
	}
}

func TestAgentValidation(t *testing.T) {
	if _, err := NewAgent("", sched.New(sched.Power), 0); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := NewAgent("a", nil, 0); err == nil {
		t.Fatal("nil policy accepted")
	}
	if _, err := NewAgent("a", sched.New(sched.Power), -1); err == nil {
		t.Fatal("negative topK accepted")
	}
	if _, err := NewClient(nil, NewMapDirectory()); err == nil {
		t.Fatal("nil MA accepted")
	}
}

func TestInactiveSEDNotElected(t *testing.T) {
	ma, _, seds := buildHierarchy(t, sched.New(sched.Power))
	prime(t, seds)
	seds["lean-0"].SetActive(false)
	seds["lean-1"].SetActive(false)
	server, _, err := ma.Elect(context.Background(), Request{Service: "burn", Ops: 1e7})
	if err != nil {
		t.Fatal(err)
	}
	if server == "lean-0" || server == "lean-1" {
		t.Fatalf("drained SED %s elected", server)
	}
	if !seds["hungry-0"].Active() {
		t.Fatal("Active getter wrong")
	}
}

func TestSEDStats(t *testing.T) {
	sed := newSED(t, "stats", 2, 1e9, 120)
	st := sed.Stats()
	if st.Name != "stats" || st.Completed != 0 || st.MeanExecSec != 0 || !st.Active {
		t.Fatalf("fresh stats = %+v", st)
	}
	for i := 0; i < 3; i++ {
		if _, err := sed.Solve(context.Background(), Request{Service: "burn", Ops: 2e7}); err != nil {
			t.Fatal(err)
		}
	}
	st = sed.Stats()
	if st.Completed != 3 {
		t.Fatalf("Completed = %d", st.Completed)
	}
	if st.MeanExecSec <= 0 {
		t.Fatal("MeanExecSec not tracked")
	}
	if st.PowerW != 120 {
		t.Fatalf("learned PowerW = %v", st.PowerW)
	}
	if st.Flops <= 0 || st.GreenPerf <= 0 {
		t.Fatalf("learned estimates missing: %+v", st)
	}
	if st.InFlight != 0 || st.Queued != 0 {
		t.Fatalf("idle SED reports load: %+v", st)
	}
	sed.SetActive(false)
	if sed.Stats().Active {
		t.Fatal("Active not reflected")
	}
}

func TestGobVectorRoundTrip(t *testing.T) {
	v := estvec.New("s1").Set(estvec.TagFlops, 9e9).Set(estvec.TagPowerW, 222)
	data, err := v.GobEncode()
	if err != nil {
		t.Fatal(err)
	}
	var back estvec.Vector
	if err := back.GobDecode(data); err != nil {
		t.Fatal(err)
	}
	if back.Server != "s1" || back.Value(estvec.TagFlops, 0) != 9e9 {
		t.Fatalf("round trip = %v", back.String())
	}
	var empty estvec.Vector
	data, _ = empty.GobEncode()
	var back2 estvec.Vector
	if err := back2.GobDecode(data); err != nil {
		t.Fatal(err)
	}
	back2.Set(estvec.TagFlops, 1) // decoded empty vector must be usable
}

func TestGobDecodeGarbage(t *testing.T) {
	var v estvec.Vector
	if err := v.GobDecode(bytes.Repeat([]byte{0xff}, 16)); err == nil {
		t.Fatal("garbage decoded")
	}
}

func TestTCPTransportEndToEnd(t *testing.T) {
	policy := sched.New(sched.Power)
	// Two SEDs behind TCP endpoints.
	sedA := newSED(t, "tcp-a", 2, 2e9, 80)
	sedB := newSED(t, "tcp-b", 2, 2e9, 200)
	prime(t, map[string]*SED{"a": sedA, "b": sedB})
	epA, err := Serve("127.0.0.1:0", sedA, sedA)
	if err != nil {
		t.Fatal(err)
	}
	defer epA.Close()
	epB, err := Serve("127.0.0.1:0", sedB, sedB)
	if err != nil {
		t.Fatal(err)
	}
	defer epB.Close()

	remA := Dial("tcp-a", epA.Addr())
	remB := Dial("tcp-b", epB.Addr())
	defer remA.Close()
	defer remB.Close()

	ma, err := NewMasterAgent("ma", policy)
	if err != nil {
		t.Fatal(err)
	}
	ma.Attach(remA, remB)
	dir := NewMapDirectory()
	dir.Add("tcp-a", remA)
	dir.Add("tcp-b", remB)
	client, err := NewClient(ma, dir)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Submit(context.Background(), "burn", 1e7, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Server != "tcp-a" {
		t.Fatalf("POWER over TCP elected %s, want tcp-a", resp.Server)
	}
	// An agent can itself sit behind TCP.
	epMA, err := Serve("127.0.0.1:0", ma, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer epMA.Close()
	remMA := Dial("ma", epMA.Addr())
	defer remMA.Close()
	list, err := remMA.Estimate(context.Background(), Request{Service: "burn", Ops: 1e7})
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 || list[0].Server != "tcp-a" {
		t.Fatalf("remote agent estimate = %v", list.Servers())
	}
	// Solve on a non-solver endpoint errors cleanly.
	if _, err := remMA.Solve(context.Background(), Request{Service: "burn"}); err == nil {
		t.Fatal("solving on an agent endpoint should error")
	}
}

func TestTCPRemoteDialFailure(t *testing.T) {
	rem := Dial("ghost", "127.0.0.1:1") // nothing listens there
	rem.SetTimeout(200 * time.Millisecond)
	if _, err := rem.Estimate(context.Background(), Request{Service: "burn"}); err == nil {
		t.Fatal("dial to dead address should error")
	}
}

func BenchmarkHierarchyElection(b *testing.B) {
	policy := sched.New(sched.GreenPerf)
	ma, _ := NewMasterAgent("ma", policy)
	for i := 0; i < 16; i++ {
		sed, _ := NewSED(SEDConfig{Name: fmt.Sprintf("s%d", i), Slots: 4,
			Meter: func() (float64, bool) { return 100, true }})
		sed.Register(Service{Name: "burn", Solve: func(ctx context.Context, r Request) ([]byte, error) { return nil, nil }})
		sed.Solve(context.Background(), Request{Service: "burn", Ops: 1e6})
		ma.Attach(sed)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := ma.Elect(context.Background(), Request{Service: "burn", Ops: 1e6}); err != nil {
			b.Fatal(err)
		}
	}
}
