package middleware

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"greensched/internal/estvec"
	"greensched/internal/sched"
)

func TestBuildTreeWiresHierarchy(t *testing.T) {
	seds := map[string]*SED{}
	mk := func(name string, watts float64) *SED {
		sed := newSED(t, name, 2, 2e9, watts)
		seds[name] = sed
		return sed
	}
	spec := TreeSpec{
		Name: "ma",
		Children: []TreeSpec{
			{Name: "la-lyon", SEDs: []*SED{mk("taurus-0", 150), mk("taurus-1", 155)}},
			{Name: "la-grenoble", SEDs: []*SED{mk("genepi-0", 250)}, Children: []TreeSpec{
				{Name: "la-deep", SEDs: []*SED{mk("deep-0", 90)}},
			}},
		},
	}
	ma, dir, err := BuildTree(spec, sched.New(sched.Power))
	if err != nil {
		t.Fatal(err)
	}
	prime(t, seds)
	server, list, err := ma.Elect(context.Background(), Request{Service: "burn", Ops: 1e7})
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 4 {
		t.Fatalf("hierarchy found %d SEDs, want 4", len(list))
	}
	if server != "deep-0" {
		t.Fatalf("POWER elected %s, want deep-0 (90 W)", server)
	}
	for name := range seds {
		if _, ok := dir.Lookup(name); !ok {
			t.Errorf("directory missing %s", name)
		}
	}
}

func TestBuildTreeValidation(t *testing.T) {
	if _, _, err := BuildTree(TreeSpec{Name: "ma"}, nil); err == nil {
		t.Fatal("nil policy accepted")
	}
	if _, _, err := BuildTree(TreeSpec{Name: "ma", SEDs: []*SED{nil}}, sched.New(sched.Power)); err == nil {
		t.Fatal("nil SED accepted")
	}
	if _, _, err := BuildTree(TreeSpec{Name: ""}, sched.New(sched.Power)); err == nil {
		t.Fatal("empty root name accepted")
	}
	bad := TreeSpec{Name: "ma", Children: []TreeSpec{{Name: ""}}}
	if _, _, err := BuildTree(bad, sched.New(sched.Power)); err == nil {
		t.Fatal("empty child name accepted")
	}
}

// flakySED fails its first n Solve calls.
type flakySED struct {
	*SED
	failures atomic.Int64
}

func (f *flakySED) Solve(ctx context.Context, req Request) (Response, error) {
	if f.failures.Add(-1) >= 0 {
		return Response{}, errors.New("injected failure")
	}
	return f.SED.Solve(ctx, req)
}

func TestSubmitWithRetryFailsOver(t *testing.T) {
	lean := newSED(t, "lean", 2, 2e9, 90)
	hungry := newSED(t, "hungry", 2, 2e9, 300)
	prime(t, map[string]*SED{"lean": lean, "hungry": hungry})
	flaky := &flakySED{SED: lean}
	flaky.failures.Store(100) // lean always fails

	ma, err := NewMasterAgent("ma", sched.New(sched.Power))
	if err != nil {
		t.Fatal(err)
	}
	ma.Attach(lean, hungry)
	dir := NewMapDirectory()
	dir.Add("lean", flaky) // directory routes to the flaky wrapper
	dir.Add("hungry", hungry)
	client, err := NewClient(ma, dir)
	if err != nil {
		t.Fatal(err)
	}

	// Plain Submit elects lean (lowest watts) and fails.
	if _, err := client.Submit(context.Background(), "burn", 1e7, 0, nil); err == nil {
		t.Fatal("expected failure without retry")
	}
	// With retry the request fails over to hungry.
	resp, err := client.SubmitWithRetry(context.Background(), "burn", 1e7, 0, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Server != "hungry" {
		t.Fatalf("failover elected %s, want hungry", resp.Server)
	}
}

func TestSubmitWithRetryExhaustsAttempts(t *testing.T) {
	lean := newSED(t, "lean", 2, 2e9, 90)
	prime(t, map[string]*SED{"lean": lean})
	flaky := &flakySED{SED: lean}
	flaky.failures.Store(100)
	ma, _ := NewMasterAgent("ma", sched.New(sched.Power))
	ma.Attach(lean)
	dir := NewMapDirectory()
	dir.Add("lean", flaky)
	client, _ := NewClient(ma, dir)
	_, err := client.SubmitWithRetry(context.Background(), "burn", 1e7, 0, nil, 3)
	if err == nil {
		t.Fatal("all-failing SED should exhaust retries")
	}
}

func TestElectExcluding(t *testing.T) {
	a := newSED(t, "a", 2, 2e9, 90)
	b := newSED(t, "b", 2, 2e9, 300)
	prime(t, map[string]*SED{"a": a, "b": b})
	ma, _ := NewMasterAgent("ma", sched.New(sched.Power))
	ma.Attach(a, b)
	server, _, err := ma.ElectExcluding(context.Background(), Request{Service: "burn", Ops: 1e7}, map[string]bool{"a": true})
	if err != nil {
		t.Fatal(err)
	}
	if server != "b" {
		t.Fatalf("elected %s with a excluded", server)
	}
	_, _, err = ma.ElectExcluding(context.Background(), Request{Service: "burn", Ops: 1e7},
		map[string]bool{"a": true, "b": true})
	if err == nil {
		t.Fatal("excluding everything should error")
	}
}

func TestProviderFilterAlgorithm1(t *testing.T) {
	mk := func(name string, flops, watts float64) *estvec.Vector {
		return estvec.New(name).
			Set(estvec.TagFlops, flops).
			Set(estvec.TagPowerW, watts).
			SetBool(estvec.TagActive, true)
	}
	list := estvec.List{
		mk("green", 10e9, 100),
		mk("mid", 8e9, 150),
		mk("hot", 5e9, 250),
	}
	// pref 0.5: P_total=500, required 250 → green(100)+mid(150).
	filter := ProviderFilter(func() float64 { return 0.5 })
	out := filter(list)
	if len(out) != 2 || out[0].Server != "green" || out[1].Server != "mid" {
		t.Fatalf("filtered = %v", out.Servers())
	}
	// Unmeasured servers always pass (learning phase).
	novice := estvec.New("novice").SetBool(estvec.TagActive, true)
	out = filter(append(list, novice))
	found := false
	for _, v := range out {
		if v.Server == "novice" {
			found = true
		}
	}
	if !found {
		t.Fatal("unmeasured server dropped by provider filter")
	}
	// pref 0: only unmeasured pass.
	zero := ProviderFilter(func() float64 { return 0 })
	out = zero(append(list, novice))
	if len(out) != 1 || out[0].Server != "novice" {
		t.Fatalf("zero-pref filter = %v", out.Servers())
	}
}

func TestProviderFilterOnMasterAgent(t *testing.T) {
	seds := map[string]*SED{}
	var tree TreeSpec
	tree.Name = "ma"
	for i, w := range []float64{90, 150, 400} {
		sed := newSED(t, fmt.Sprintf("s%d", i), 2, 2e9, w)
		seds[sed.Name()] = sed
		tree.SEDs = append(tree.SEDs, sed)
	}
	ma, dir, err := BuildTree(tree, sched.New(sched.GreenPerf))
	if err != nil {
		t.Fatal(err)
	}
	prime(t, seds)
	// A stingy provider excludes the hungriest server.
	ma.SetCandidateFilter(ProviderFilter(func() float64 { return 0.4 }))
	client, _ := NewClient(ma, dir)
	for i := 0; i < 6; i++ {
		resp, err := client.Submit(context.Background(), "burn", 1e7, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Server == "s2" {
			t.Fatal("power-capped candidate set still elected the 400 W server")
		}
	}
}
