package middleware

import (
	"context"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"greensched/internal/budget"
	"greensched/internal/obs"
	"greensched/internal/sched"
	"greensched/internal/sla"
)

// scrape renders the registry and parses it back — the same view a
// Prometheus scraper gets.
func scrape(t *testing.T, reg *obs.Registry) obs.Samples {
	t.Helper()
	var sb strings.Builder
	if err := reg.Render(&sb); err != nil {
		t.Fatal(err)
	}
	samples, err := obs.ParseText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("own exposition does not parse: %v\n%s", err, sb.String())
	}
	return samples
}

// TestObsInterceptorCountsLifecycle: the full composed stack under the
// obs interceptor; every counter and ledger gauge on the scrape agrees
// with the Finalize result — the ISSUE's counter/ledger parity.
func TestObsInterceptorCountsLifecycle(t *testing.T) {
	catalog := sla.Catalog{
		"gold":   {Name: "gold", RelDeadlineSec: 60, ValueUSD: 2, Curve: sla.HardDrop{}},
		"doomed": {Name: "doomed", RelDeadlineSec: 0.001, ValueUSD: 1, Curve: sla.HardDrop{}},
	}
	tracker, err := budget.NewTracker(1e12, 3600)
	if err != nil {
		t.Fatal(err)
	}
	obsIC := &ObsInterceptor{
		Tracer: obs.NewTracer(io.Discard),
		Labels: map[string]string{"transport": "inproc"},
	}
	m, err := NewMaster(
		WithPolicy(sched.New(sched.Power)),
		WithSEDs(newSED(t, "only", 2, 2e9, 100)),
		WithInterceptors(
			obsIC,
			&SLAInterceptor{
				Config:    &sla.Config{Catalog: catalog, Admission: &sla.Admission{Margin: 1}},
				BestFlops: 2e9, // ops 1e8 → best case 50ms ≫ the doomed 1ms deadline
			},
			&BudgetInterceptor{Tracker: tracker},
		),
	)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := m.Do(ctx, Request{Service: "burn", Ops: 1e8, Class: "gold"}); err != nil {
			t.Fatal(err)
		}
	}
	// A provably hopeless deadline is refused at admission.
	if _, err := m.Do(ctx, Request{Service: "burn", Ops: 1e8, Class: "doomed"}); err == nil {
		t.Fatal("admission accepted a hopeless deadline")
	}
	// An unknown service fails at election (no SED offers it).
	if _, err := m.Do(ctx, Request{Service: "nosuch", Ops: 1e6}); err == nil {
		t.Fatal("unknown service solved")
	}

	res := m.Finalize()
	samples := scrape(t, obsIC.Metrics())
	lbl := `transport=inproc`
	for _, tc := range []struct {
		name string
		want float64
	}{
		{"greensched_requests_total", float64(res.Submitted)},
		{"greensched_completions_total", float64(res.Completed)},
		{"greensched_rejections_total", float64(res.Rejected)},
		{"greensched_failures_total", float64(res.Failed)},
		{"greensched_inflight", 0},
		{"greensched_energy_joules", res.EnergyJ},
		{"greensched_budget_spent_joules", res.BudgetSpentJ},
		{"greensched_ledger_earned_dollars", res.SLA.EarnedUSD},
		{"greensched_ledger_forfeited_dollars", res.SLA.ForfeitedUSD},
	} {
		got, ok := samples.Value(tc.name, lbl)
		if !ok || got != tc.want {
			t.Errorf("%s{%s} = %v ok=%v, want %v", tc.name, lbl, got, ok, tc.want)
		}
	}
	if res.Submitted != 5 || res.Completed != 3 || res.Rejected != 1 || res.Failed != 1 {
		t.Errorf("result %+v, want 5 submitted / 3 completed / 1 rejected / 1 failed", res)
	}
	if got, ok := samples.Value("greensched_elections_total", "server=only", lbl); !ok || got != 3 {
		t.Errorf("elections{server=only} = %v ok=%v, want 3 (the completions; a failed election elects nobody)", got, ok)
	}
	if got, ok := samples.Value("greensched_solve_seconds_count", lbl); !ok || got != 3 {
		t.Errorf("solve histogram count = %v ok=%v, want 3", got, ok)
	}
}

// TestObsInterceptorScrapeRefreshesLedger: ledger gauges refresh
// through the OnScrape collector without an explicit Finalize call —
// a mid-run scrape sees current totals.
func TestObsInterceptorScrapeRefreshesLedger(t *testing.T) {
	obsIC := &ObsInterceptor{}
	m, err := NewMaster(
		WithPolicy(sched.New(sched.Power)),
		WithSEDs(newSED(t, "only", 1, 2e9, 100)),
		WithInterceptors(obsIC),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Do(context.Background(), Request{Service: "burn", Ops: 1e6}); err != nil {
		t.Fatal(err)
	}
	// No m.Finalize() here: the scrape itself must refresh the gauge.
	samples := scrape(t, obsIC.Metrics())
	if got, ok := samples.Value("greensched_energy_joules"); !ok || got <= 0 {
		t.Errorf("scrape did not refresh energy gauge: %v ok=%v", got, ok)
	}
}

// TestMasterDeferredVisibleWhileParked is the satellite regression
// test: a carbon-parked request shows up in Master.Deferred — and on
// the scrape's parked gauges — BEFORE its window opens.
func TestMasterDeferredVisibleWhileParked(t *testing.T) {
	var dirty atomic.Bool
	dirty.Store(true)
	feed := func() (float64, bool) {
		if dirty.Load() {
			return 600, true
		}
		return 50, true
	}
	obsIC := &ObsInterceptor{}
	m, err := NewMaster(
		WithPolicy(sched.New(sched.Power)),
		WithSEDs(newSED(t, "only", 1, 2e9, 100)),
		WithInterceptors(
			obsIC,
			&CarbonInterceptor{Func: feed, DirtyG: 300, MaxDeferSec: 30, PollSec: 0.005},
		),
	)
	if err != nil {
		t.Fatal(err)
	}
	if st := m.Deferred(); st.Parked != 0 {
		t.Fatalf("idle master reports %d parked", st.Parked)
	}

	done := make(chan error, 1)
	go func() {
		_, err := m.Do(context.Background(), Request{Service: "burn", Ops: 1e6, Deferrable: true})
		done <- err
	}()

	// The parked request must become visible while the grid is dirty.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if st := m.Deferred(); st.Parked == 1 {
			if st.OldestSec < 0 {
				t.Errorf("negative parked age %v", st.OldestSec)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("parked request never became visible in Master.Deferred")
		}
		time.Sleep(time.Millisecond)
	}
	// And on the exposition, via the scrape-time collector.
	samples := scrape(t, obsIC.Metrics())
	if got, ok := samples.Value("greensched_deferred_parked"); !ok || got != 1 {
		t.Errorf("greensched_deferred_parked = %v ok=%v, want 1", got, ok)
	}

	dirty.Store(false)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if st := m.Deferred(); st.Parked != 0 {
		t.Errorf("released request still parked: %+v", st)
	}
	res := m.Finalize()
	if res.Deferred != 1 {
		t.Errorf("deferrals = %d, want 1", res.Deferred)
	}
	samples = scrape(t, obsIC.Metrics())
	if got, ok := samples.Value("greensched_deferrals_total"); !ok || got != 1 {
		t.Errorf("greensched_deferrals_total = %v ok=%v, want 1", got, ok)
	}
}

// TestMasterMetricsListener: WithMetricsAddr serves the interceptor's
// registry over HTTP; without an ObsInterceptor it is a construction
// error.
func TestMasterMetricsListener(t *testing.T) {
	obsIC := &ObsInterceptor{}
	m, err := NewMaster(
		WithPolicy(sched.New(sched.Power)),
		WithSEDs(newSED(t, "only", 1, 2e9, 100)),
		WithInterceptors(obsIC),
		WithMetricsAddr("127.0.0.1:0"),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if _, err := m.Do(context.Background(), Request{Service: "burn", Ops: 1e6}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + m.MetricsAddr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	samples, err := obs.ParseText(resp.Body)
	if err != nil {
		t.Fatalf("/metrics does not parse: %v", err)
	}
	if got, ok := samples.Value("greensched_requests_total"); !ok || got != 1 {
		t.Errorf("greensched_requests_total over HTTP = %v ok=%v, want 1", got, ok)
	}

	if _, err := NewMaster(
		WithPolicy(sched.New(sched.Power)),
		WithSEDs(newSED(t, "only2", 1, 2e9, 100)),
		WithMetricsAddr("127.0.0.1:0"),
	); err == nil {
		t.Error("WithMetricsAddr without an ObsInterceptor accepted")
	}
}

// TestSEDMetricsListener: SEDConfig.MetricsAddr serves per-node
// greensched_sed_* families labeled with the SED's name, refreshed
// from Stats at scrape time.
func TestSEDMetricsListener(t *testing.T) {
	sed, err := NewSED(SEDConfig{
		Name: "node-1", Slots: 2,
		Meter:       func() (float64, bool) { return 120, true },
		MetricsAddr: "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sed.Close()
	if err := sed.Register(burnService(2e9)); err != nil {
		t.Fatal(err)
	}
	if _, err := sed.Solve(context.Background(), Request{Service: "burn", Ops: 1e6}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + sed.MetricsAddr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	samples, err := obs.ParseText(resp.Body)
	if err != nil {
		t.Fatalf("/metrics does not parse: %v", err)
	}
	for _, tc := range []struct {
		name string
		want float64
	}{
		{"greensched_sed_completed_total", 1},
		{"greensched_sed_failed_total", 0},
		{"greensched_sed_slots", 2},
		{"greensched_sed_active", 1},
		{"greensched_sed_inflight", 0},
	} {
		if got, ok := samples.Value(tc.name, "sed=node-1"); !ok || got != tc.want {
			t.Errorf("%s{sed=node-1} = %v ok=%v, want %v", tc.name, got, ok, tc.want)
		}
	}
	if got, ok := samples.Value("greensched_sed_power_watts", "sed=node-1"); !ok || got <= 0 {
		t.Errorf("learned power gauge = %v ok=%v, want positive", got, ok)
	}
}

// TestObsInterceptorTraceSchema: the live path emits the documented
// lifecycle sequence for one successful request.
func TestObsInterceptorTraceSchema(t *testing.T) {
	var sb strings.Builder
	obsIC := &ObsInterceptor{Tracer: obs.NewTracer(&sb)}
	m, err := NewMaster(
		WithPolicy(sched.New(sched.Power)),
		WithSEDs(newSED(t, "only", 1, 2e9, 100)),
		WithInterceptors(obsIC),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Do(context.Background(), Request{Service: "burn", Ops: 1e6}); err != nil {
		t.Fatal(err)
	}
	events, err := obs.ReadEvents(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{obs.EventSubmit, obs.EventAdmit, obs.EventElect, obs.EventSolve, obs.EventComplete}
	if len(events) != len(want) {
		t.Fatalf("got %d events, want %d: %+v", len(events), len(want), events)
	}
	for i, ev := range events {
		if ev.Event != want[i] {
			t.Errorf("event %d = %s, want %s", i, ev.Event, want[i])
		}
		if ev.ID == 0 || ev.Src != "master" {
			t.Errorf("event %d missing identity: %+v", i, ev)
		}
	}
	last := events[len(events)-1]
	if last.Server != "only" || last.EnergyJ <= 0 || last.DurSec <= 0 {
		t.Errorf("complete event incomplete: %+v", last)
	}
}
