package middleware

import (
	"context"
	"fmt"

	"greensched/internal/budget"
)

// BudgetInterceptor meters the live deployment against an energy
// budget — the mirror of budget.Module: every completion charges its
// attributed energy share (Response.EnergyJ, which crosses the TCP
// transport) to the Tracker at its finish time, and with Enforce set
// an exhausted budget refuses new submissions instead of scheduling
// them.
type BudgetInterceptor struct {
	BaseInterceptor

	// Tracker meters consumption (joules) against the budget; give
	// every deployment its own.
	Tracker *budget.Tracker

	// Enforce turns exhaustion into admission control: submissions
	// are rejected (ErrRejected) once no budget remains.
	Enforce bool
}

// Init implements Interceptor.
func (b *BudgetInterceptor) Init(Mount) error {
	if b.Tracker == nil {
		return fmt.Errorf("middleware: budget interceptor needs a tracker")
	}
	return nil
}

// OnSubmit implements Interceptor.
func (b *BudgetInterceptor) OnSubmit(_ context.Context, _ float64, req *Request) error {
	if b.Enforce && b.Tracker.Exhausted() {
		return fmt.Errorf("%w: request %d: energy budget exhausted (%.0f J spent)",
			ErrRejected, req.ID, b.Tracker.Spent())
	}
	return nil
}

// OnComplete implements Interceptor.
func (b *BudgetInterceptor) OnComplete(rec RequestRecord) {
	b.Tracker.Charge(rec.Finish, rec.EnergyJ)
}

// Rebook implements Rebooker: a journaled outcome's energy share is
// charged at its original finish time, exactly once, after a restart.
func (b *BudgetInterceptor) Rebook(rec RequestRecord) {
	b.Tracker.Charge(rec.Finish, rec.EnergyJ)
}

// Finalize implements Interceptor.
func (b *BudgetInterceptor) Finalize(res *LiveResult) {
	res.BudgetSpentJ += b.Tracker.Spent()
}
