package middleware

import (
	"context"
	"math"
	"strings"
	"testing"
	"time"

	"greensched/internal/budget"
	"greensched/internal/estvec"
	"greensched/internal/obs"
	"greensched/internal/power"
	"greensched/internal/powerd"
	"greensched/internal/sched"
	"greensched/internal/sla"
)

// Scheduler-level fault injection for the external power path: a full
// interceptor stack (SLA ledger + budget metering + sidecar power on
// both substrates) keeps electing when the powerd sidecar is killed
// mid-run, the fallback is loud on the metrics endpoint, and a
// restarted sidecar brings fresh readings back — with the ledger and
// budget books equal to an uninterrupted control run. The
// protocol-level fault matrix (hung, malformed, short read, wrong
// version, over both powerd socket families) lives in internal/powerd.

const pfOps = 4e6

// powerRunTotals is what must match between a faulted and a control
// run: the deterministic books, not wall-clock-dependent joules.
type powerRunTotals struct {
	completed int
	earnedUSD float64
	energyJ   float64
	budgetJ   float64
	fallbacks uint64
}

// runPowerStudy drives 14 SLA-carrying requests through a two-SED
// hierarchy whose only power feed is a powerd sidecar. With fault set,
// the sidecar is killed after the first third and restarted (serving
// shifted watt figures) before the last third.
func runPowerStudy(t *testing.T, transport string, fault bool) powerRunTotals {
	t.Helper()
	sockDir := t.TempDir()
	addr := "unix:" + sockDir + "/powerd.sock"
	liveSrc := power.StaticSource{"lean": 80, "hungry": 320}
	srv, err := powerd.Serve(addr, liveSrc, powerd.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// The fallback curves match the sidecar's figures, so a faulted
	// run and the control attribute identical watts throughout — the
	// books must come out the same either way.
	cli, err := powerd.NewClient(powerd.Config{
		Addr: addr, Timeout: 100 * time.Millisecond, Retries: -1,
		StalenessSec: 0.05, BreakerAfter: 2, ReprobeSec: 0.02,
		Fallback: power.StaticSource{"lean": 80, "hungry": 320},
		Logf:     func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	newPowerSED := func(name string, flops float64) *SED {
		sed, err := NewSED(SEDConfig{
			Name:  name,
			Slots: 2,
			Interceptors: []Interceptor{
				&ExternalPowerInterceptor{Source: cli},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := sed.Register(burnService(flops)); err != nil {
			t.Fatal(err)
		}
		return sed
	}
	lean := newPowerSED("lean", 1e9)
	hungry := newPowerSED("hungry", 4e9)

	tracker, err := budget.NewTracker(1e6, 60)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	ics := []Interceptor{
		&SLAInterceptor{
			Config: &sla.Config{
				Catalog: sla.Catalog{
					"gold": {Name: "gold", RelDeadlineSec: 60, ValueUSD: 2, Curve: sla.HardDrop{}},
				},
				Admission: &sla.Admission{Margin: 1},
			},
			BestFlops: 4e9,
		},
		&BudgetInterceptor{Tracker: tracker},
		&ExternalPowerInterceptor{
			Source:   cli,
			Registry: reg,
			Labels:   map[string]string{"transport": transport},
		},
	}
	opts := []Option{
		WithName("power-" + transport),
		WithPolicy(sched.New(sched.GreenPerf)),
		WithInterceptors(ics...),
	}
	switch transport {
	case "inproc":
		opts = append(opts, WithSEDs(lean, hungry))
	case "tcp":
		for _, sed := range []*SED{lean, hungry} {
			ep, err := Serve("127.0.0.1:0", sed, sed)
			if err != nil {
				t.Fatal(err)
			}
			defer ep.Close()
			rem := Dial(sed.Name(), ep.Addr())
			defer rem.Close()
			opts = append(opts, WithRemotes(rem))
		}
	default:
		t.Fatalf("unknown transport %q", transport)
	}
	master, err := NewMaster(opts...)
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	do := func(n int) {
		for i := 0; i < n; i++ {
			if _, err := master.Do(ctx, Request{Service: "burn", Ops: pfOps, Class: "gold"}); err != nil {
				t.Fatalf("request failed (elections must survive sidecar faults): %v", err)
			}
		}
	}

	do(5) // phase 1: live sidecar readings
	if fault {
		srv.Close() // kill -9 mid-run
		// Outlive the last-good cache window so phase 2 provably runs
		// on the analytic fallback curves, not the cache.
		time.Sleep(100 * time.Millisecond)
	}
	do(5) // phase 2: fallback curves (or still live, in the control)
	if fault {
		// Restart at the same address with shifted figures, then wait
		// for the background probe to close the breaker and a fresh
		// reading to prove the client converged back to the sidecar.
		srv2, err := powerd.Serve(addr, power.StaticSource{"lean": 81, "hungry": 321}, powerd.Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer srv2.Close()
		deadline := time.Now().Add(5 * time.Second)
		for {
			if w, ok := cli.NodePowerW("lean", nil, nil); ok && w == 81 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("client never recovered to the restarted sidecar (stats %+v)", cli.Stats())
			}
			time.Sleep(10 * time.Millisecond)
		}
		if _, age, ok := cli.LastReading("lean"); !ok || age > 5 {
			t.Errorf("reading not fresh after restart: age %v, ok %v", age, ok)
		}
	}
	do(4) // phase 3: back on live readings either way

	res := master.Finalize()
	if res.Failed != 0 || res.Rejected != 0 {
		t.Fatalf("result %+v: nothing should fail or be rejected", res)
	}
	totals := powerRunTotals{
		completed: res.Completed,
		energyJ:   res.EnergyJ,
		budgetJ:   res.BudgetSpentJ,
		fallbacks: cli.Stats().Fallbacks,
	}
	if res.SLA != nil {
		totals.earnedUSD = res.SLA.EarnedUSD
	}

	// The books balance internally: the budget metered exactly what the
	// master attributed.
	if math.Abs(res.BudgetSpentJ-res.EnergyJ) > 1e-6*math.Max(1, res.EnergyJ) {
		t.Errorf("budget metered %.6f J, master attributed %.6f J", res.BudgetSpentJ, res.EnergyJ)
	}

	// The fallback must be loud on the exposition endpoint.
	var sb strings.Builder
	if err := reg.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `greensched_power_requests_total{transport="`+transport+`"}`) {
		t.Errorf("power families missing from exposition:\n%s", out)
	}
	if fault {
		if totals.fallbacks < 1 {
			t.Errorf("sidecar killed but no fallback counted: %+v", cli.Stats())
		}
		if strings.Contains(out, `greensched_power_fallbacks_total{transport="`+transport+`"} 0`) {
			t.Errorf("fallbacks not visible on the exposition endpoint:\n%s", out)
		}
	}
	return totals
}

func TestExternalPowerSidecarKilledMidRun(t *testing.T) {
	for _, transport := range []string{"inproc", "tcp"} {
		t.Run(transport, func(t *testing.T) {
			control := runPowerStudy(t, transport, false)
			faulted := runPowerStudy(t, transport, true)
			if faulted.completed != control.completed {
				t.Errorf("completed %d with faults, %d in control", faulted.completed, control.completed)
			}
			if math.Abs(faulted.earnedUSD-control.earnedUSD) > 1e-9 {
				t.Errorf("ledger earned $%.4f with faults, $%.4f in control", faulted.earnedUSD, control.earnedUSD)
			}
			if faulted.earnedUSD != 28 { // 14 gold requests at $2
				t.Errorf("earned $%.4f, want $28", faulted.earnedUSD)
			}
			if control.fallbacks != 0 {
				t.Errorf("control run fell back %d times", control.fallbacks)
			}
		})
	}
}

// TestExternalPowerEstimationOverride: the SED's estimation vector
// carries sidecar watts (and the green-perf ratio derived from them),
// not the trailing estimator mean.
func TestExternalPowerEstimationOverride(t *testing.T) {
	sed, err := NewSED(SEDConfig{
		Name:  "n",
		Slots: 2,
		Interceptors: []Interceptor{
			&ExternalPowerInterceptor{Source: power.StaticSource{"n": 111}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sed.Register(burnService(1e9)); err != nil {
		t.Fatal(err)
	}
	// Learn flops (and a power mean the sidecar must then override).
	if _, err := sed.Solve(context.Background(), Request{ID: 1, Service: "burn", Ops: 1e6}); err != nil {
		t.Fatal(err)
	}
	list, err := sed.Estimate(context.Background(), Request{Service: "burn", Ops: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	v := list[0]
	w, ok := v.Get(estvec.TagPowerW)
	if !ok || w != 111 {
		t.Fatalf("power_w = %v, %v; want sidecar's 111", w, ok)
	}
	f, okF := v.Get(estvec.TagFlops)
	gp, okG := v.Get(estvec.TagGreenPerf)
	if !okF || !okG || math.Abs(gp-111/f) > 1e-12 {
		t.Fatalf("greenperf %v (flops %v): want recomputed 111/flops", gp, f)
	}
}

// TestExternalPowerMasterAttribution: completions arriving without
// SED-side energy get sidecar watts integrated over their execution
// time — only from fresh readings.
func TestExternalPowerMasterAttribution(t *testing.T) {
	srv, err := powerd.Serve("127.0.0.1:0", power.StaticSource{"bare": 50}, powerd.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := powerd.NewClient(powerd.Config{Addr: srv.Addr(), Logf: func(string, ...any) {}})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	// A SED with no meter and no interceptors: its completions carry
	// EnergyJ == 0, the master-side attribution's trigger.
	sed, err := NewSED(SEDConfig{Name: "bare", Slots: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := sed.Register(burnService(1e9)); err != nil {
		t.Fatal(err)
	}
	// Warm the client's cache for the node so the reading is fresh.
	if w, ok := cli.NodePowerW("bare", nil, nil); !ok || w != 50 {
		t.Fatalf("sidecar reading %v, %v", w, ok)
	}
	pi := &ExternalPowerInterceptor{Source: cli}
	master, err := NewMaster(WithPolicy(sched.New(sched.GreenPerf)), WithSEDs(sed), WithInterceptors(pi))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := master.Do(context.Background(), Request{Service: "burn", Ops: 1e7}); err != nil {
		t.Fatal(err)
	}
	res := master.Finalize()
	if pi.AttributedJ() <= 0 {
		t.Fatal("no sidecar energy attributed to a meterless completion")
	}
	// ~10ms at 50W: the attribution is watts × exec, within scheduling
	// jitter.
	if res.EnergyJ < 1e-4 || res.EnergyJ > 50 {
		t.Errorf("EnergyJ %v implausible for ~10ms at 50W", res.EnergyJ)
	}
	if res.EnergyJ != pi.AttributedJ() {
		t.Errorf("result energy %v != attributed %v", res.EnergyJ, pi.AttributedJ())
	}
}
