// Package cluster models the physical platform: node specifications,
// clusters of identical nodes, and whole platforms, together with the
// runtime state machine of a node (off / booting / on, busy cores).
//
// The catalog reproduces the paper's Table I infrastructure (Orion,
// Sagittaire and Taurus clusters of GRID'5000 Lyon) and the Table III
// simulated clusters (Sim1, Sim2). Absolute wattages are calibrated
// from published GRID'5000 node characteristics; the scheduler under
// study only ever consumes the (power, performance) pairs, so the
// heterogeneity ratios — not the absolute values — drive every result.
package cluster

import (
	"fmt"
	"math"
	"sort"

	"greensched/internal/power"
)

// NodeSpec is the static description of one physical node.
type NodeSpec struct {
	Name    string // unique node name, e.g. "taurus-3"
	Cluster string // cluster the node belongs to, e.g. "taurus"

	Cores        int     // schedulable cores (the paper: one task per core)
	FlopsPerCore float64 // sustained flop/s of one core

	IdleW       power.Watts // draw when on and idle
	PeakW       power.Watts // draw with all cores busy
	ActivationW power.Watts // first-busy-core step (package/uncore wake-up)
	BootW       power.Watts // draw during boot (bcs in Eq. 5)
	OffW        power.Watts // residual draw when off

	BootSec float64 // boot duration in seconds (bts in Eq. 4/5)
}

// Validate reports a descriptive error for inconsistent specs.
func (s NodeSpec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("cluster: node with empty name")
	}
	if s.Cores <= 0 {
		return fmt.Errorf("cluster: node %s has %d cores", s.Name, s.Cores)
	}
	if s.FlopsPerCore <= 0 {
		return fmt.Errorf("cluster: node %s has non-positive flops/core", s.Name)
	}
	if s.BootSec < 0 {
		return fmt.Errorf("cluster: node %s has negative boot time", s.Name)
	}
	return s.PowerModel().Validate()
}

// PowerModel returns the node's power model.
func (s NodeSpec) PowerModel() power.LinearModel {
	return power.LinearModel{
		IdleW: s.IdleW, PeakW: s.PeakW, ActivationW: s.ActivationW,
		BootW: s.BootW, OffW: s.OffW,
	}
}

// TotalFlops is the node's aggregate sustained performance (fs in the
// paper's notation, for a fully used node).
func (s NodeSpec) TotalFlops() float64 { return float64(s.Cores) * s.FlopsPerCore }

// TaskSeconds returns the execution time of a task of ops flops on one
// core of this node (ni/fs with per-core fs).
func (s NodeSpec) TaskSeconds(ops float64) float64 { return ops / s.FlopsPerCore }

// GreenPerfStatic returns the ratio peak-power/performance the static
// benchmarking approach would compute (lower is better). The dynamic
// approach in internal/power.Estimator supersedes it at runtime.
func (s NodeSpec) GreenPerfStatic() float64 { return s.PeakW / s.TotalFlops() }

// Spec catalog calibrated for the experiments. Wattages follow the
// published characteristics of the GRID'5000 Lyon site:
//   - Taurus: Dell R720, 2×6 cores E5-2630 @2.3 GHz — lean (no
//     accelerator), the most energy-efficient nodes in the paper.
//   - Orion: Dell R720 + Tesla M2075 — same CPU as Taurus plus a GPU,
//     hence the highest idle and peak draw, but marginally the fastest
//     CPU clocks in practice (the paper's PERFORMANCE policy prefers
//     them).
//   - Sagittaire: Sun V20z, 2×1 core Opteron 250 @2.4 GHz (2005) —
//     slow and power-hungry: worst on both axes.
//
// FlopsPerCore is scaled so that the paper's CPU-bound task (nominally
// 1e8 successive additions) lands in the same duration regime as the
// testbed runs; see DESIGN.md §3.
var catalog = map[string]NodeSpec{
	"taurus": {
		Cluster: "taurus", Cores: 12, FlopsPerCore: 9.0e9,
		IdleW: 95, PeakW: 222, ActivationW: 50, BootW: 170, OffW: 8, BootSec: 120,
	},
	"orion": {
		Cluster: "orion", Cores: 12, FlopsPerCore: 9.6e9,
		IdleW: 165, PeakW: 490, ActivationW: 160, BootW: 250, OffW: 10, BootSec: 150,
	},
	"sagittaire": {
		Cluster: "sagittaire", Cores: 2, FlopsPerCore: 4.6e9,
		IdleW: 190, PeakW: 258, ActivationW: 55, BootW: 230, OffW: 10, BootSec: 180,
	},
	// Table III simulated clusters (idle/peak published in the paper).
	"sim1": {
		Cluster: "sim1", Cores: 8, FlopsPerCore: 4.0e9,
		IdleW: 190, PeakW: 230, ActivationW: 20, BootW: 210, OffW: 8, BootSec: 100,
	},
	"sim2": {
		Cluster: "sim2", Cores: 8, FlopsPerCore: 3.0e9,
		IdleW: 160, PeakW: 190, ActivationW: 15, BootW: 175, OffW: 8, BootSec: 100,
	},
}

// Spec returns the catalog spec for a cluster type, or false if the
// type is unknown. The returned spec has no Name; use NewNodes.
func Spec(clusterType string) (NodeSpec, bool) {
	s, ok := catalog[clusterType]
	return s, ok
}

// Types returns the catalog cluster types in sorted order.
func Types() []string {
	out := make([]string, 0, len(catalog))
	for k := range catalog {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// NewNodes mints n nodes of a catalog type, named type-0..type-n-1.
// It panics on unknown types: platform construction is configuration,
// and a typo should fail loudly at startup.
func NewNodes(clusterType string, n int) []NodeSpec {
	spec, ok := Spec(clusterType)
	if !ok {
		panic(fmt.Sprintf("cluster: unknown catalog type %q (have %v)", clusterType, Types()))
	}
	out := make([]NodeSpec, n)
	for i := range out {
		spec.Name = fmt.Sprintf("%s-%d", clusterType, i)
		out[i] = spec
	}
	return out
}

// Platform is an ordered collection of nodes (order defines the stable
// identity used in figures: x-axis "nodes available to solve the
// problem").
type Platform struct {
	Nodes []NodeSpec
}

// NewPlatform concatenates node groups into a platform and validates
// every node, rejecting duplicate names.
func NewPlatform(groups ...[]NodeSpec) (*Platform, error) {
	p := &Platform{}
	seen := make(map[string]bool)
	for _, g := range groups {
		for _, n := range g {
			if err := n.Validate(); err != nil {
				return nil, err
			}
			if seen[n.Name] {
				return nil, fmt.Errorf("cluster: duplicate node name %q", n.Name)
			}
			seen[n.Name] = true
			p.Nodes = append(p.Nodes, n)
		}
	}
	if len(p.Nodes) == 0 {
		return nil, fmt.Errorf("cluster: empty platform")
	}
	return p, nil
}

// MustPlatform is NewPlatform for static configuration; it panics on
// error.
func MustPlatform(groups ...[]NodeSpec) *Platform {
	p, err := NewPlatform(groups...)
	if err != nil {
		panic(err)
	}
	return p
}

// PaperPlatform returns the Table I SED infrastructure: 4 Orion,
// 4 Sagittaire and 4 Taurus nodes (the MA and client nodes carry no
// tasks and, per §IV-A, their constant draw "does not present any
// influence on the comparison", so they are not modelled as SEDs).
func PaperPlatform() *Platform {
	return MustPlatform(NewNodes("orion", 4), NewNodes("sagittaire", 4), NewNodes("taurus", 4))
}

// LowHeterogeneityPlatform returns the Figure 6 scenario: two server
// types with similar specifications (Table I types).
func LowHeterogeneityPlatform() *Platform {
	return MustPlatform(NewNodes("taurus", 4), NewNodes("orion", 4))
}

// HighHeterogeneityPlatform returns the Figure 7 scenario: four
// different server types (Table I types plus the Table III simulated
// clusters).
func HighHeterogeneityPlatform() *Platform {
	return MustPlatform(NewNodes("taurus", 4), NewNodes("orion", 4), NewNodes("sim1", 4), NewNodes("sim2", 4))
}

// Cores returns the total schedulable cores.
func (p *Platform) Cores() int {
	total := 0
	for _, n := range p.Nodes {
		total += n.Cores
	}
	return total
}

// Clusters returns the distinct cluster names in first-appearance
// order.
func (p *Platform) Clusters() []string {
	var out []string
	seen := make(map[string]bool)
	for _, n := range p.Nodes {
		if !seen[n.Cluster] {
			seen[n.Cluster] = true
			out = append(out, n.Cluster)
		}
	}
	return out
}

// ByCluster returns the indices of nodes belonging to the cluster.
func (p *Platform) ByCluster(cluster string) []int {
	var out []int
	for i, n := range p.Nodes {
		if n.Cluster == cluster {
			out = append(out, i)
		}
	}
	return out
}

// Find returns the index of the named node, or -1.
func (p *Platform) Find(name string) int {
	for i, n := range p.Nodes {
		if n.Name == name {
			return i
		}
	}
	return -1
}

// TotalFlops returns the aggregate sustained performance of all nodes.
func (p *Platform) TotalFlops() float64 {
	total := 0.0
	for _, n := range p.Nodes {
		total += n.TotalFlops()
	}
	return total
}

// PeakWatts returns the aggregate fully-loaded draw — the PTotal of
// the paper's Algorithm 1.
func (p *Platform) PeakWatts() power.Watts {
	total := 0.0
	for _, n := range p.Nodes {
		total += n.PeakW
	}
	return total
}

// HeterogeneityIndex quantifies "the level of heterogeneity" §IV-B
// manages: the coefficient of variation (stddev/mean) of the nodes'
// static GreenPerf ratios. 0 means a perfectly homogeneous platform;
// Figure 7's four-type platform scores well above Figure 6's two-type
// one.
func (p *Platform) HeterogeneityIndex() float64 {
	n := float64(len(p.Nodes))
	mean := 0.0
	for _, node := range p.Nodes {
		mean += node.GreenPerfStatic()
	}
	mean /= n
	if mean == 0 {
		return 0
	}
	ss := 0.0
	for _, node := range p.Nodes {
		d := node.GreenPerfStatic() - mean
		ss += d * d
	}
	return math.Sqrt(ss/n) / mean
}

// SyntheticPlatform builds a platform of `types` synthetic node types,
// `nodesPerType` nodes each, whose power/performance diversity is set
// by spread ∈ [0, 1]: 0 yields identical nodes, 1 the widest mix. The
// types interpolate between four hardware archetypes mirroring the
// paper's testbed (Table I): lean-balanced (taurus-like, the best
// power/performance ratio), fast-hungry (orion-like), frugal-slow (the
// lowest absolute draw, which pure POWER ranking chases), and legacy
// slow-hungry (sagittaire-like, bad on both axes). The mix keeps power
// and performance non-co-monotone, so GreenPerf, POWER and PERFORMANCE
// pick genuinely different nodes at every nonzero spread. It is the
// knob behind the heterogeneity-continuum study generalizing Figures
// 6–7: the paper concludes "the effectiveness of this metric strongly
// relies on the heterogeneity of servers", and the continuum
// quantifies that claim beyond the two published points.
func SyntheticPlatform(types, nodesPerType int, spread float64) (*Platform, error) {
	if types < 2 {
		return nil, fmt.Errorf("cluster: synthetic platform needs >=2 types, got %d", types)
	}
	if nodesPerType < 1 {
		return nil, fmt.Errorf("cluster: synthetic platform needs >=1 node per type, got %d", nodesPerType)
	}
	if spread < 0 || spread > 1 {
		return nil, fmt.Errorf("cluster: spread %v outside [0,1]", spread)
	}
	const (
		baseFlops = 6.0e9 // per core
		basePeak  = 260.0 // watts
		cores     = 8
	)
	// Archetype deltas at spread=1: multipliers applied as 1 + spread*d.
	archetypes := []struct{ dFlops, dPeak float64 }{
		{0.0, -0.40},  // lean-balanced: base speed, much lower draw
		{+0.8, +1.20}, // fast-hungry: fastest, hungriest
		{-0.7, -0.60}, // frugal-slow: lowest draw, slow (worse ratio than lean)
		{-0.5, +0.30}, // legacy: slow and hungry
	}
	groups := make([][]NodeSpec, types)
	for i := 0; i < types; i++ {
		a := archetypes[i%len(archetypes)]
		f := baseFlops * (1 + spread*a.dFlops)
		peak := basePeak * (1 + spread*a.dPeak)
		spec := NodeSpec{
			Cluster:      fmt.Sprintf("syn%d", i),
			Cores:        cores,
			FlopsPerCore: f,
			IdleW:        0.45 * peak,
			PeakW:        peak,
			ActivationW:  0.10 * peak,
			BootW:        0.80 * peak,
			OffW:         0.03 * peak, // residual scales with the PSU
			BootSec:      120,
		}
		group := make([]NodeSpec, nodesPerType)
		for j := range group {
			spec.Name = fmt.Sprintf("syn%d-%d", i, j)
			group[j] = spec
		}
		groups[i] = group
	}
	return NewPlatform(groups...)
}
