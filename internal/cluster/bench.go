package cluster

import (
	"math/rand"

	"greensched/internal/power"
)

// Calibration is the per-node (performance, power) data an initial
// benchmark campaign produces — the paper's first, static approach to
// GreenPerf inputs (§III-A): "benchmarking nodes by computing a job on
// each node, measuring the energy spent to complete it, and then
// dividing the amount of energy by time". The experiments in §IV-B use
// exactly this to seed the simulation: "After performing an initial
// benchmark on the physical nodes of GRID'5000, we obtained for each
// server its mean computation time for a single task along with its
// peak and idle power consumptions."
type Calibration struct {
	Node        string
	TaskSeconds float64 // mean computation time of the reference task
	MeanWatts   float64 // mean draw measured during the benchmark
	IdleWatts   float64
	PeakWatts   float64
	Flops       float64 // derived sustained flop/s for one core
}

// GreenPerf returns the static ratio power/performance measured by the
// benchmark (lower is better).
func (c Calibration) GreenPerf() float64 {
	if c.Flops <= 0 {
		return 0
	}
	return c.MeanWatts / c.Flops
}

// BenchmarkNode emulates running the reference benchmark (the paper
// uses ATLAS/HPL over Open MPI) on a node: a single-core CPU-bound job
// of refOps flops, executed on an otherwise idle node. jitter adds a
// relative uniform error (hardware variance, ±jitter) drawn from rng;
// pass jitter=0 for the noiseless spec values.
func BenchmarkNode(spec NodeSpec, refOps, jitter float64, rng *rand.Rand) Calibration {
	perturb := func(v float64) float64 {
		if jitter <= 0 || rng == nil {
			return v
		}
		return v * (1 + (rng.Float64()*2-1)*jitter)
	}
	flops := perturb(spec.FlopsPerCore)
	secs := refOps / flops
	// One core busy out of Cores: the wattmeter sees the node draw at
	// utilization 1/Cores for the duration of the run.
	mean := spec.PowerModel().Power(power.On, 1/float64(spec.Cores))
	mean = perturb(mean)
	return Calibration{
		Node:        spec.Name,
		TaskSeconds: secs,
		MeanWatts:   mean,
		IdleWatts:   perturb(spec.IdleW),
		PeakWatts:   perturb(spec.PeakW),
		Flops:       flops,
	}
}

// BenchmarkPlatform calibrates every node of a platform.
func BenchmarkPlatform(p *Platform, refOps, jitter float64, rng *rand.Rand) []Calibration {
	out := make([]Calibration, len(p.Nodes))
	for i, n := range p.Nodes {
		out[i] = BenchmarkNode(n, refOps, jitter, rng)
	}
	return out
}
