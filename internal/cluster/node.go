package cluster

import (
	"fmt"

	"greensched/internal/power"
)

// Node is the runtime state machine of one physical node inside a
// simulation: operating state, busy cores, energy accounting and the
// attached (emulated) wattmeter.
//
// Node performs exact piecewise-constant energy integration: every
// state transition first settles the elapsed interval at the old draw.
// Node is not safe for concurrent use; the DES is single-goroutine.
type Node struct {
	Spec NodeSpec

	state     power.State
	busyCores int

	acc   *power.Accumulator
	meter *power.Wattmeter

	bootDoneAt float64 // valid while state == Booting
	boots      int     // number of boot cycles completed or started

	// OnSettle, when set, observes every settled interval [from, to]
	// and the constant draw that held over it — the exact
	// piecewise-constant power signal. Carbon accounting hooks in
	// here; the callback must not mutate the node.
	OnSettle func(from, to float64, w power.Watts)
}

// NewNode returns a powered-on idle node at time t0 with an attached
// ideal 1 Hz wattmeter. Pass meter=nil to attach one later or run
// meterless.
func NewNode(spec NodeSpec, t0 float64, meter *power.Wattmeter) *Node {
	return &Node{
		Spec:  spec,
		state: power.On,
		acc:   power.NewAccumulator(t0),
		meter: meter,
	}
}

// NewNodeOff returns a powered-off node (used by the adaptive
// provisioning experiment, where non-candidate nodes are shut down).
func NewNodeOff(spec NodeSpec, t0 float64, meter *power.Wattmeter) *Node {
	n := NewNode(spec, t0, meter)
	n.state = power.Off
	return n
}

// State returns the current operating state.
func (n *Node) State() power.State { return n.state }

// BusyCores returns the number of cores currently executing tasks.
func (n *Node) BusyCores() int { return n.busyCores }

// FreeCores returns schedulable spare capacity (0 unless On).
func (n *Node) FreeCores() int {
	if n.state != power.On {
		return 0
	}
	return n.Spec.Cores - n.busyCores
}

// Utilization returns busy/total cores in [0,1].
func (n *Node) Utilization() float64 {
	return float64(n.busyCores) / float64(n.Spec.Cores)
}

// Power returns the current instantaneous draw.
func (n *Node) Power() power.Watts {
	return n.Spec.PowerModel().Power(n.state, n.Utilization())
}

// Energy returns the accumulated energy through the last settle point.
func (n *Node) Energy() power.Joules { return n.acc.Total() }

// Boots returns how many boot cycles the node has started.
func (n *Node) Boots() int { return n.boots }

// Meter returns the attached wattmeter (may be nil).
func (n *Node) Meter() *power.Wattmeter { return n.meter }

// settle integrates energy (and feeds the wattmeter) for the interval
// since the last transition, at the draw that held over that interval.
func (n *Node) settle(now float64) {
	from := n.acc.LastTime()
	w := n.Power()
	if n.meter != nil && now > from {
		n.meter.Observe(from, now, w)
	}
	n.acc.Advance(now, w)
	if n.OnSettle != nil && now > from {
		n.OnSettle(from, now, w)
	}
}

// Settle exposes settlement for metric sampling points (e.g. the
// 10-minute averages of Figure 9) without changing state.
func (n *Node) Settle(now float64) { n.settle(now) }

// LastSettle returns the node's integration cursor: the latest time
// its energy accounting reflects. Finalization code settles at
// max(makespan, LastSettle) so power transitions that outlive the last
// task (a boot completing after the final finish) stay integrated
// instead of panicking the accumulator.
func (n *Node) LastSettle() float64 { return n.acc.LastTime() }

// StartTask marks one core busy. It returns an error if the node is
// not On or already full — callers (the scheduler) must respect the
// paper's constraint that "a server cannot execute a number of tasks
// greater than its number of cores".
func (n *Node) StartTask(now float64) error {
	if n.state != power.On {
		return fmt.Errorf("cluster: %s is %v, cannot start task", n.Spec.Name, n.state)
	}
	if n.busyCores >= n.Spec.Cores {
		return fmt.Errorf("cluster: %s has no free core (%d busy)", n.Spec.Name, n.busyCores)
	}
	n.settle(now)
	n.busyCores++
	return nil
}

// FinishTask releases one core.
func (n *Node) FinishTask(now float64) error {
	if n.busyCores <= 0 {
		return fmt.Errorf("cluster: %s has no running task to finish", n.Spec.Name)
	}
	n.settle(now)
	n.busyCores--
	return nil
}

// PowerOff transitions On→Off. Tasks must have drained first; shutting
// down a busy node is an orchestration bug and returns an error.
func (n *Node) PowerOff(now float64) error {
	if n.state != power.On {
		return fmt.Errorf("cluster: %s is %v, cannot power off", n.Spec.Name, n.state)
	}
	if n.busyCores > 0 {
		return fmt.Errorf("cluster: %s still has %d busy cores", n.Spec.Name, n.busyCores)
	}
	n.settle(now)
	n.state = power.Off
	return nil
}

// PowerOn transitions Off→Booting and returns the absolute time the
// boot completes (now + BootSec). Callers schedule BootDone then.
func (n *Node) PowerOn(now float64) (bootDone float64, err error) {
	if n.state != power.Off {
		return 0, fmt.Errorf("cluster: %s is %v, cannot power on", n.Spec.Name, n.state)
	}
	n.settle(now)
	n.state = power.Booting
	n.boots++
	n.bootDoneAt = now + n.Spec.BootSec
	return n.bootDoneAt, nil
}

// BootDone transitions Booting→On. It must be called at the time
// returned by PowerOn.
func (n *Node) BootDone(now float64) error {
	if n.state != power.Booting {
		return fmt.Errorf("cluster: %s is %v, spurious BootDone", n.Spec.Name, n.state)
	}
	n.settle(now)
	n.state = power.On
	return nil
}

// Crash models a node failure: all running work is lost and the node
// is Off. It returns the number of tasks that were killed; the caller
// must reschedule them.
func (n *Node) Crash(now float64) int {
	n.settle(now)
	killed := n.busyCores
	n.busyCores = 0
	n.state = power.Off
	return killed
}
