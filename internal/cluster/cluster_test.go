package cluster

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"greensched/internal/power"
)

func TestCatalogSpecsValid(t *testing.T) {
	for _, typ := range Types() {
		spec, ok := Spec(typ)
		if !ok {
			t.Fatalf("Spec(%q) not found", typ)
		}
		spec.Name = typ + "-x"
		if err := spec.Validate(); err != nil {
			t.Errorf("catalog %s invalid: %v", typ, err)
		}
	}
}

func TestCatalogMatchesPaperTables(t *testing.T) {
	// Table I shapes.
	for _, c := range []struct {
		typ   string
		cores int
	}{
		{"orion", 12}, {"taurus", 12}, {"sagittaire", 2},
	} {
		s, _ := Spec(c.typ)
		if s.Cores != c.cores {
			t.Errorf("%s cores = %d, want %d (Table I)", c.typ, s.Cores, c.cores)
		}
	}
	// Table III exact wattages.
	s1, _ := Spec("sim1")
	if s1.IdleW != 190 || s1.PeakW != 230 {
		t.Errorf("sim1 = %v/%v W, want 190/230 (Table III)", s1.IdleW, s1.PeakW)
	}
	s2, _ := Spec("sim2")
	if s2.IdleW != 160 || s2.PeakW != 190 {
		t.Errorf("sim2 = %v/%v W, want 160/190 (Table III)", s2.IdleW, s2.PeakW)
	}
}

func TestCatalogHeterogeneityOrdering(t *testing.T) {
	// The experiments rely on these orderings; pin them.
	taurus, _ := Spec("taurus")
	orion, _ := Spec("orion")
	sag, _ := Spec("sagittaire")
	if !(orion.FlopsPerCore > taurus.FlopsPerCore) {
		t.Error("orion must be the fastest per core (PERFORMANCE prefers it)")
	}
	if !(taurus.GreenPerfStatic() < orion.GreenPerfStatic()) {
		t.Error("taurus must be more energy-efficient than orion")
	}
	if !(sag.GreenPerfStatic() > orion.GreenPerfStatic()) {
		t.Error("sagittaire must be the least energy-efficient")
	}
	if !(sag.FlopsPerCore < taurus.FlopsPerCore) {
		t.Error("sagittaire must be the slowest")
	}
}

func TestUnknownSpec(t *testing.T) {
	if _, ok := Spec("cray"); ok {
		t.Fatal("unknown type should not resolve")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewNodes with unknown type should panic")
		}
	}()
	NewNodes("cray", 2)
}

func TestNewNodesNaming(t *testing.T) {
	nodes := NewNodes("taurus", 3)
	if len(nodes) != 3 {
		t.Fatalf("len = %d, want 3", len(nodes))
	}
	for i, n := range nodes {
		want := "taurus-" + string(rune('0'+i))
		if n.Name != want {
			t.Errorf("node %d name = %q, want %q", i, n.Name, want)
		}
		if n.Cluster != "taurus" {
			t.Errorf("node %d cluster = %q", i, n.Cluster)
		}
	}
}

func TestPlatformConstruction(t *testing.T) {
	p, err := NewPlatform(NewNodes("taurus", 2), NewNodes("orion", 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Nodes) != 3 {
		t.Fatalf("nodes = %d, want 3", len(p.Nodes))
	}
	if p.Cores() != 36 {
		t.Fatalf("cores = %d, want 36", p.Cores())
	}
	got := p.Clusters()
	if len(got) != 2 || got[0] != "taurus" || got[1] != "orion" {
		t.Fatalf("clusters = %v", got)
	}
	if idx := p.ByCluster("taurus"); len(idx) != 2 || idx[0] != 0 || idx[1] != 1 {
		t.Fatalf("ByCluster = %v", idx)
	}
	if p.Find("orion-0") != 2 {
		t.Fatalf("Find = %d, want 2", p.Find("orion-0"))
	}
	if p.Find("nope") != -1 {
		t.Fatal("Find of missing node should be -1")
	}
}

func TestPlatformRejectsDuplicatesAndEmpty(t *testing.T) {
	if _, err := NewPlatform(NewNodes("taurus", 1), NewNodes("taurus", 1)); err == nil {
		t.Fatal("duplicate names accepted")
	}
	if _, err := NewPlatform(); err == nil {
		t.Fatal("empty platform accepted")
	}
	bad := NewNodes("taurus", 1)
	bad[0].Cores = 0
	if _, err := NewPlatform(bad); err == nil {
		t.Fatal("invalid node accepted")
	}
}

func TestPaperPlatform(t *testing.T) {
	p := PaperPlatform()
	if len(p.Nodes) != 12 {
		t.Fatalf("paper platform has %d nodes, want 12 (Table I)", len(p.Nodes))
	}
	// 4*12 + 4*2 + 4*12 = 104 cores.
	if p.Cores() != 104 {
		t.Fatalf("paper platform cores = %d, want 104", p.Cores())
	}
	cl := p.Clusters()
	want := []string{"orion", "sagittaire", "taurus"}
	if strings.Join(cl, ",") != strings.Join(want, ",") {
		t.Fatalf("clusters = %v, want %v", cl, want)
	}
}

func TestHeterogeneityPlatforms(t *testing.T) {
	if n := len(LowHeterogeneityPlatform().Clusters()); n != 2 {
		t.Fatalf("low-het platform has %d types, want 2 (Fig. 6)", n)
	}
	if n := len(HighHeterogeneityPlatform().Clusters()); n != 4 {
		t.Fatalf("high-het platform has %d types, want 4 (Fig. 7)", n)
	}
}

func TestPlatformAggregates(t *testing.T) {
	p := MustPlatform(NewNodes("sim1", 2))
	if got, want := p.TotalFlops(), 2*8*4.0e9; got != want {
		t.Fatalf("TotalFlops = %v, want %v", got, want)
	}
	if got, want := p.PeakWatts(), 460.0; got != want {
		t.Fatalf("PeakWatts = %v, want %v", got, want)
	}
}

func TestHeterogeneityIndexOrdering(t *testing.T) {
	// A single-type platform is homogeneous.
	homo := MustPlatform(NewNodes("taurus", 4))
	if got := homo.HeterogeneityIndex(); got != 0 {
		t.Fatalf("homogeneous index = %v, want 0", got)
	}
	// The Figure 7 platform must be strictly more heterogeneous than
	// the Figure 6 one — the §IV-B premise.
	low := LowHeterogeneityPlatform().HeterogeneityIndex()
	high := HighHeterogeneityPlatform().HeterogeneityIndex()
	if low <= 0 {
		t.Fatalf("low-het index = %v, want > 0", low)
	}
	if high <= low {
		t.Fatalf("high-het index %v not above low-het %v", high, low)
	}
}

func TestNodeLifecycleEnergy(t *testing.T) {
	spec, _ := Spec("taurus")
	spec.Name = "t0"
	n := NewNode(spec, 0, nil)
	if n.State() != power.On || n.FreeCores() != 12 {
		t.Fatal("fresh node should be on and empty")
	}
	// 10 s idle.
	if err := n.StartTask(10); err != nil {
		t.Fatal(err)
	}
	// 10 s with 1/12 utilization.
	if err := n.FinishTask(20); err != nil {
		t.Fatal(err)
	}
	n.Settle(30) // 10 more idle seconds
	wantIdle := 95.0 * 20
	wantBusy := (95 + 50 + (222-95-50)/12.0) * 10
	if got := n.Energy(); math.Abs(got-(wantIdle+wantBusy)) > 1e-9 {
		t.Fatalf("energy = %v, want %v", got, wantIdle+wantBusy)
	}
}

func TestNodeCapacityEnforced(t *testing.T) {
	spec, _ := Spec("sagittaire") // 2 cores
	spec.Name = "s0"
	n := NewNode(spec, 0, nil)
	if err := n.StartTask(1); err != nil {
		t.Fatal(err)
	}
	if err := n.StartTask(1); err != nil {
		t.Fatal(err)
	}
	if err := n.StartTask(1); err == nil {
		t.Fatal("third task on a 2-core node should fail")
	}
	if n.FreeCores() != 0 || n.Utilization() != 1 {
		t.Fatal("full node accounting wrong")
	}
	if err := n.FinishTask(2); err != nil {
		t.Fatal(err)
	}
	if err := n.FinishTask(2); err != nil {
		t.Fatal(err)
	}
	if err := n.FinishTask(2); err == nil {
		t.Fatal("finishing with no running task should fail")
	}
}

func TestNodeBootCycle(t *testing.T) {
	spec, _ := Spec("taurus")
	spec.Name = "t0"
	n := NewNodeOff(spec, 0, nil)
	if n.State() != power.Off {
		t.Fatal("NewNodeOff should start off")
	}
	if err := n.StartTask(1); err == nil {
		t.Fatal("task on an off node should fail")
	}
	done, err := n.PowerOn(100)
	if err != nil {
		t.Fatal(err)
	}
	if done != 220 {
		t.Fatalf("boot done at %v, want 220", done)
	}
	if n.State() != power.Booting {
		t.Fatal("state should be booting")
	}
	if _, err := n.PowerOn(101); err == nil {
		t.Fatal("double PowerOn should fail")
	}
	if err := n.BootDone(220); err != nil {
		t.Fatal(err)
	}
	if n.State() != power.On {
		t.Fatal("state should be on after boot")
	}
	if err := n.BootDone(221); err == nil {
		t.Fatal("spurious BootDone should fail")
	}
	// Energy: 100 s off @8 W + 120 s boot @170 W.
	want := 100*8.0 + 120*170.0
	if got := n.Energy(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("boot-cycle energy = %v, want %v", got, want)
	}
	if n.Boots() != 1 {
		t.Fatalf("Boots = %d, want 1", n.Boots())
	}
}

func TestNodePowerOffRules(t *testing.T) {
	spec, _ := Spec("taurus")
	spec.Name = "t0"
	n := NewNode(spec, 0, nil)
	n.StartTask(1)
	if err := n.PowerOff(2); err == nil {
		t.Fatal("powering off a busy node should fail")
	}
	n.FinishTask(3)
	if err := n.PowerOff(4); err != nil {
		t.Fatal(err)
	}
	if err := n.PowerOff(5); err == nil {
		t.Fatal("double PowerOff should fail")
	}
}

func TestNodeCrashKillsTasks(t *testing.T) {
	spec, _ := Spec("taurus")
	spec.Name = "t0"
	n := NewNode(spec, 0, nil)
	n.StartTask(1)
	n.StartTask(1)
	killed := n.Crash(5)
	if killed != 2 {
		t.Fatalf("Crash killed %d, want 2", killed)
	}
	if n.State() != power.Off || n.BusyCores() != 0 {
		t.Fatal("crashed node should be off and empty")
	}
}

func TestNodeMeterSeesTransitions(t *testing.T) {
	spec, _ := Spec("taurus")
	spec.Name = "t0"
	meter := power.NewWattmeter(0, 1)
	n := NewNode(spec, 0, meter)
	n.StartTask(10)
	n.FinishTask(20)
	n.Settle(30)
	if meter.Len() != 30 {
		t.Fatalf("meter samples = %d, want 30", meter.Len())
	}
	mean, cnt := meter.MeanWindow(10, 19)
	if cnt != 10 {
		t.Fatalf("window count = %d, want 10", cnt)
	}
	wantBusy := 95 + 50 + (222-95-50)/12.0
	if math.Abs(mean-wantBusy) > 1e-9 {
		t.Fatalf("busy-window mean = %v, want %v", mean, wantBusy)
	}
}

func TestBenchmarkNodeNoiseless(t *testing.T) {
	spec, _ := Spec("taurus")
	spec.Name = "t0"
	cal := BenchmarkNode(spec, 9.0e9, 0, nil)
	if math.Abs(cal.TaskSeconds-1.0) > 1e-12 {
		t.Fatalf("TaskSeconds = %v, want 1.0", cal.TaskSeconds)
	}
	if cal.Flops != 9.0e9 {
		t.Fatalf("Flops = %v", cal.Flops)
	}
	wantMean := 95 + 50 + (222-95-50)/12.0
	if math.Abs(cal.MeanWatts-wantMean) > 1e-9 {
		t.Fatalf("MeanWatts = %v, want %v", cal.MeanWatts, wantMean)
	}
	if cal.GreenPerf() <= 0 {
		t.Fatal("GreenPerf should be positive")
	}
}

func TestBenchmarkPlatformJitterBounded(t *testing.T) {
	p := PaperPlatform()
	rng := rand.New(rand.NewSource(3))
	cals := BenchmarkPlatform(p, 1e12, 0.05, rng)
	if len(cals) != 12 {
		t.Fatalf("calibrations = %d, want 12", len(cals))
	}
	for i, c := range cals {
		spec := p.Nodes[i]
		if c.Node != spec.Name {
			t.Errorf("cal %d node = %q, want %q", i, c.Node, spec.Name)
		}
		if math.Abs(c.Flops-spec.FlopsPerCore) > 0.05*spec.FlopsPerCore+1 {
			t.Errorf("%s flops jitter out of bounds: %v vs %v", c.Node, c.Flops, spec.FlopsPerCore)
		}
	}
}

func TestCalibrationGreenPerfZeroFlops(t *testing.T) {
	c := Calibration{MeanWatts: 100}
	if c.GreenPerf() != 0 {
		t.Fatal("GreenPerf with zero flops should be 0")
	}
}

// Property: node energy is non-decreasing over any sequence of valid
// operations, and utilization stays within [0,1].
func TestPropertyNodeEnergyMonotone(t *testing.T) {
	f := func(ops []uint8) bool {
		spec, _ := Spec("taurus")
		spec.Name = "t"
		n := NewNode(spec, 0, nil)
		now := 0.0
		lastE := 0.0
		for _, op := range ops {
			now += float64(op%7) + 0.5
			switch op % 3 {
			case 0:
				if n.FreeCores() > 0 {
					n.StartTask(now)
				}
			case 1:
				if n.BusyCores() > 0 {
					n.FinishTask(now)
				}
			default:
				n.Settle(now)
			}
			if u := n.Utilization(); u < 0 || u > 1 {
				return false
			}
			if n.Energy() < lastE {
				return false
			}
			lastE = n.Energy()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkNodeTransitions(b *testing.B) {
	spec, _ := Spec("taurus")
	spec.Name = "t"
	n := NewNode(spec, 0, nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		now := float64(i)
		n.StartTask(now)
		n.FinishTask(now + 0.5)
	}
}
