package sched

import (
	"fmt"
	"math"

	"greensched/internal/core"
	"greensched/internal/estvec"
)

// This file holds the SLA-aware scheduling surfaces: task-queue
// disciplines (which accepted task runs next) and server policies
// that price deadline risk next to watts. Package sla supplies the
// value/penalty semantics; these orderings only consume the numbers.

// TaskView is the slice of a task a queue discipline may rank on.
// Deadline is absolute (same timeline as Submit); 0 means none.
type TaskView struct {
	ID       int
	Ops      float64
	Submit   float64
	Deadline float64
	Value    float64
}

// ValueDensity returns the task's dollars per flop — the classic
// value-density heuristic from revenue-aware scheduling. Zero-ops
// tasks are invalid upstream; guard anyway.
func (t TaskView) ValueDensity() float64 {
	if t.Ops <= 0 {
		return 0
	}
	return t.Value / t.Ops
}

// TaskOrder ranks queued tasks: Less reports whether a should run
// strictly before b. Implementations must be pure so SED queues stay
// deterministic.
type TaskOrder interface {
	// Name identifies the discipline in reports ("EDF", ...).
	Name() string
	// Less reports whether a runs strictly before b.
	Less(a, b TaskView) bool
}

// TaskOrderKind selects one of the bundled queue disciplines.
type TaskOrderKind string

// Bundled queue disciplines.
const (
	// FIFO runs tasks in submission order — the paper's implicit
	// discipline, kept as the baseline.
	FIFO TaskOrderKind = "FIFO"
	// EDF runs the earliest absolute deadline first; deadline-free
	// tasks run last. The classic optimality result (Liu & Layland)
	// holds per server under preemption; here it minimizes misses
	// among queued work without migration.
	EDF TaskOrderKind = "EDF"
	// ValueDensityOrder runs the highest dollars-per-flop first, so a
	// backlog burns its cycles on the most valuable work; ties break
	// toward earlier deadlines.
	ValueDensityOrder TaskOrderKind = "VALUE-DENSITY"
)

// NewOrder returns the bundled discipline for a kind. It panics on
// unknown kinds (configuration error).
func NewOrder(k TaskOrderKind) TaskOrder {
	switch k {
	case FIFO:
		return fifoOrder{}
	case EDF:
		return edfOrder{}
	case ValueDensityOrder:
		return valueDensityOrder{}
	default:
		panic(fmt.Sprintf("sched: unknown task order kind %q", k))
	}
}

type fifoOrder struct{}

func (fifoOrder) Name() string { return string(FIFO) }
func (fifoOrder) Less(a, b TaskView) bool {
	if a.Submit != b.Submit {
		return a.Submit < b.Submit
	}
	return a.ID < b.ID
}

type edfOrder struct{}

func (edfOrder) Name() string { return string(EDF) }
func (edfOrder) Less(a, b TaskView) bool {
	da, db := deadlineOrInf(a), deadlineOrInf(b)
	if da != db {
		return da < db
	}
	// Equal (or both absent) deadlines: highest value density, then
	// FIFO.
	if va, vb := a.ValueDensity(), b.ValueDensity(); va != vb {
		return va > vb
	}
	return fifoOrder{}.Less(a, b)
}

type valueDensityOrder struct{}

func (valueDensityOrder) Name() string { return string(ValueDensityOrder) }
func (valueDensityOrder) Less(a, b TaskView) bool {
	if va, vb := a.ValueDensity(), b.ValueDensity(); va != vb {
		return va > vb
	}
	da, db := deadlineOrInf(a), deadlineOrInf(b)
	if da != db {
		return da < db
	}
	return fifoOrder{}.Less(a, b)
}

func deadlineOrInf(t TaskView) float64 {
	if t.Deadline <= 0 {
		return math.Inf(1)
	}
	return t.Deadline
}

// DeadlineAware wraps a server policy with a hard deadline screen for
// one arriving task: servers whose estimated completion meets the
// deadline rank first (in Base order — typically an energy ordering,
// so the scheduler stays green *among the feasible*), servers that
// would miss rank after them by completion time ascending (least-late
// first), and servers still in the learning phase rank last. With no
// deadline the ordering is exactly Base.
type DeadlineAware struct {
	Base Policy
	// Ops is the arriving task's size; Now the decision time; Deadline
	// the absolute deadline (0 = none).
	Ops      float64
	Now      float64
	Deadline float64
}

// Name implements Policy.
func (p DeadlineAware) Name() string { return fmt.Sprintf("DEADLINE(%s)", p.Base.Name()) }

// Less implements Policy.
func (p DeadlineAware) Less(a, b *estvec.Vector) bool {
	if p.Deadline <= 0 {
		return p.Base.Less(a, b)
	}
	ca, aok := completionEstimate(a, p.Ops)
	cb, bok := completionEstimate(b, p.Ops)
	switch {
	case aok && !bok:
		return true
	case !aok && bok:
		return false
	case !aok && !bok:
		return p.Base.Less(a, b)
	}
	left := p.Deadline - p.Now
	ma, mb := ca <= left, cb <= left
	switch {
	case ma && !mb:
		return true
	case !ma && mb:
		return false
	case ma && mb:
		return p.Base.Less(a, b)
	default:
		// Both miss: least-late first so the curve forfeits the least.
		if ca != cb {
			return ca < cb
		}
		return p.Base.Less(a, b)
	}
}

// SLAWeightedPolicy blends the provider's green weighting with
// deadline urgency: the score is the log-linear GreenWeights mix plus
// Urgency·ln(1+projected lateness) on servers that would finish the
// task late. Feasible servers therefore compete purely on the green
// score, while infeasible ones are pushed down smoothly — unlike
// DeadlineAware's hard screen, a very efficient server that misses by
// a second can still beat a hungry one that misses by an hour.
type SLAWeightedPolicy struct {
	W core.GreenWeights
	// Urgency scales the lateness term; 0 degrades to the pure green
	// ordering.
	Urgency float64
	// Ops, Now, Deadline describe the arriving task (Deadline 0 =
	// none).
	Ops      float64
	Now      float64
	Deadline float64
}

// Name implements Policy.
func (p SLAWeightedPolicy) Name() string {
	return fmt.Sprintf("SLA-WEIGHTED(p=%g,w=%g,c=%g,u=%g)", p.W.Perf, p.W.Watts, p.W.Carbon, p.Urgency)
}

// Less implements Policy. Learning-phase servers rank last; while the
// carbon axis carries weight, unmetered servers rank after metered
// ones (the CARBON fail-safe).
func (p SLAWeightedPolicy) Less(a, b *estvec.Vector) bool {
	if p.W.Carbon > 0 && a.Has(estvec.TagCarbonIntensity) != b.Has(estvec.TagCarbonIntensity) {
		return a.Has(estvec.TagCarbonIntensity)
	}
	sa, aok := p.score(a)
	sb, bok := p.score(b)
	switch {
	case aok && !bok:
		return true
	case !aok && bok:
		return false
	case aok && bok && sa != sb:
		return sa < sb
	default:
		return a.Server < b.Server
	}
}

func (p SLAWeightedPolicy) score(v *estvec.Vector) (float64, bool) {
	srv, ok := ServerFromVector(v)
	if !ok {
		return 0, false
	}
	s := p.W.Score(srv)
	if p.Deadline > 0 && p.Urgency > 0 {
		if late := p.Now + srv.ComputationTime(p.Ops) - p.Deadline; late > 0 {
			s += p.Urgency * math.Log1p(late)
		}
	}
	return s, true
}

// completionEstimate reconstructs Eq. 4's completion time from an
// estimation vector; ok is false while the server's estimator is
// still learning.
func completionEstimate(v *estvec.Vector, ops float64) (float64, bool) {
	srv, ok := ServerFromVector(v)
	if !ok {
		return 0, false
	}
	return srv.ComputationTime(ops), true
}
