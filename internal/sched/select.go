package sched

import (
	"errors"

	"greensched/internal/estvec"
)

// ErrNoServer is returned when no server can accept the request ("If
// no server is able to solve it, an error message is returned",
// §III-A step 1).
var ErrNoServer = errors.New("sched: no server able to accept the request")

// Selector implements the server-election procedure the Master Agent
// performs once the sorted candidate list reaches it. It layers the
// operational constraints of §IV-A on top of a Policy:
//
//  1. Learning phase — servers whose dynamic estimators have no data
//     yet (TagKnown=0) are elected first so the scheduler can measure
//     them ("the dynamic information is gathered as tasks are computed
//     by the servers"; Figs. 2–3 show this as the residual tasks on
//     non-preferred clusters).
//  2. Capacity — "a server cannot execute a number of tasks greater
//     than its number of cores": servers with a free core are
//     preferred, in policy order.
//  3. Overload spill — when every server is busy, the request may
//     queue on a server whose backlog is below QueueFactor×cores
//     (policy order). This reproduces "execution on Orion ... occurs
//     when Taurus nodes are overloaded".
//  4. Last resort — every queue is at cap: elect the server with the
//     smallest estimated wait.
type Selector struct {
	Policy Policy
	// QueueFactor bounds a server's backlog to QueueFactor×cores
	// before the policy spills to the next server. The ablation bench
	// sweeps this; 1.0 is the default used by the experiments.
	QueueFactor float64
	// Explore enables the learning phase (step 1). Disabled for
	// RANDOM, which needs no estimates.
	Explore bool
	// RankAll drops the free-core preference of step 2: every active
	// server under its queue cap competes purely on the policy
	// ordering. Score-based policies (§III-C) set this — their Eq. 4
	// wait term already prices queueing, so forcing free servers
	// first would double-count availability and flatten the
	// performance↔efficiency trade-off.
	RankAll bool
}

// NewSelector returns a selector with the experiment defaults.
func NewSelector(p Policy) *Selector {
	return &Selector{Policy: p, QueueFactor: 1.0, Explore: true}
}

// Select elects one server from the estimation vectors. The list is
// not mutated. Select performs no allocations: inactive servers are
// skipped inline during each scan instead of being filtered into a
// temporary slice, which matters in the simulator's per-arrival
// election loop at million-task scale. Scan order over the active
// vectors is unchanged, so elections are identical to the filtering
// implementation.
func (s *Selector) Select(list estvec.List) (*estvec.Vector, error) {
	anyActive := false
	for _, v := range list {
		if v.Bool(estvec.TagActive) {
			anyActive = true
			break
		}
	}
	if !anyActive {
		return nil, ErrNoServer
	}

	// Learning phase: fewest completed requests first, then policy.
	if s.Explore {
		var best *estvec.Vector
		for _, v := range list {
			if !v.Bool(estvec.TagActive) {
				continue
			}
			if v.Bool(estvec.TagKnown) || v.Value(estvec.TagFreeCores, 0) <= 0 {
				continue
			}
			if best == nil || s.learnLess(v, best) {
				best = v
			}
		}
		if best != nil {
			return best, nil
		}
	}

	qf := s.QueueFactor
	if qf <= 0 {
		qf = 1.0
	}

	if s.RankAll {
		// Score-style election: free or queued-under-cap servers
		// compete purely on the policy ordering.
		if v := s.bestWhere(list, func(v *estvec.Vector) bool {
			return v.Value(estvec.TagFreeCores, 0) > 0 || underCap(v, qf)
		}); v != nil {
			return v, nil
		}
	} else {
		// Free capacity, policy order.
		if v := s.bestWhere(list, func(v *estvec.Vector) bool {
			return v.Value(estvec.TagFreeCores, 0) > 0
		}); v != nil {
			return v, nil
		}
		// Overload spill under the queue cap.
		if v := s.bestWhere(list, func(v *estvec.Vector) bool {
			return underCap(v, qf)
		}); v != nil {
			return v, nil
		}
	}

	// Everything saturated: minimal estimated wait.
	less := estvec.ByTagAsc(estvec.TagWaitSec, estvec.ByServerName)
	var best *estvec.Vector
	for _, v := range list {
		if !v.Bool(estvec.TagActive) {
			continue
		}
		if best == nil || less(v, best) {
			best = v
		}
	}
	return best, nil
}

// underCap reports whether a server's backlog is below qf×cores.
func underCap(v *estvec.Vector, qf float64) bool {
	cores := v.Value(estvec.TagFreeCores, 0) + busyCores(v)
	return v.Value(estvec.TagQueueLen, 0) < qf*cores
}

func (s *Selector) learnLess(a, b *estvec.Vector) bool {
	// Exploration load counts completed requests plus in-flight work,
	// so simultaneous unknowns spread across servers instead of
	// piling onto the first name.
	load := func(v *estvec.Vector) float64 {
		return v.Value(estvec.TagRequests, 0) + busyCores(v) + v.Value(estvec.TagQueueLen, 0)
	}
	ra, rb := load(a), load(b)
	if ra != rb {
		return ra < rb
	}
	return s.Policy.Less(a, b)
}

func (s *Selector) bestWhere(list estvec.List, ok func(*estvec.Vector) bool) *estvec.Vector {
	var best *estvec.Vector
	for _, v := range list {
		if !v.Bool(estvec.TagActive) || !ok(v) {
			continue
		}
		if best == nil || s.Policy.Less(v, best) {
			best = v
		}
	}
	return best
}

// busyCores recovers the busy-core count a SED reported implicitly:
// vectors carry free cores; total cores = free + busy is not a tag, so
// SEDs additionally report queue occupancy against their own capacity.
// When the cores tag is absent we fall back to treating free==0 as "no
// headroom" with a single-slot queue cap.
func busyCores(v *estvec.Vector) float64 {
	if c, ok := v.Get(tagCores); ok {
		return c - v.Value(estvec.TagFreeCores, 0)
	}
	return 1
}

// tagCores is an auxiliary tag SEDs set so selectors can compute queue
// caps proportional to capacity.
const tagCores = estvec.Tag("cores")

// TagCores exposes the auxiliary capacity tag for SED estimation
// functions.
func TagCores() estvec.Tag { return tagCores }

// SortCandidates orders a full estimation list by the policy (best
// first) without applying capacity constraints — the per-agent sorting
// step 4 of the scheduling process ("at each level of the hierarchy,
// agents ... sort servers according to a specific criterion").
func SortCandidates(list estvec.List, p Policy) estvec.List {
	out := list.Clone()
	out.SortStable(p.Less)
	return out
}
