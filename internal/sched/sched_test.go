package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"greensched/internal/core"
	"greensched/internal/estvec"
)

// vec builds a SED response typical of the experiments.
func vec(name string, flops, pw float64, freeCores, cores, queueLen int) *estvec.Vector {
	v := estvec.New(name).
		Set(estvec.TagFlops, flops).
		Set(estvec.TagPowerW, pw).
		Set(estvec.TagGreenPerf, pw/flops).
		Set(estvec.TagFreeCores, float64(freeCores)).
		Set(TagCores(), float64(cores)).
		Set(estvec.TagQueueLen, float64(queueLen)).
		SetBool(estvec.TagActive, true).
		SetBool(estvec.TagKnown, true).
		Set(estvec.TagRequests, 10)
	return v
}

func TestNewKnownKinds(t *testing.T) {
	for _, k := range []Kind{Random, Power, Performance, GreenPerf} {
		p := New(k)
		if p.Name() != string(k) {
			t.Errorf("New(%s).Name() = %s", k, p.Name())
		}
	}
	if len(Kinds()) != 3 {
		t.Fatal("Kinds should list the three paper policies")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown kind should panic")
		}
	}()
	New(Kind("BOGUS"))
}

func TestPowerPolicyOrdering(t *testing.T) {
	lean := vec("lean", 5e9, 100, 1, 2, 0)
	hungry := vec("hungry", 9e9, 300, 1, 2, 0)
	p := New(Power)
	if !p.Less(lean, hungry) || p.Less(hungry, lean) {
		t.Fatal("POWER must prefer the lower draw")
	}
	// Tie on power: faster first.
	fastSame := vec("fast", 9e9, 100, 1, 2, 0)
	if !p.Less(fastSame, lean) {
		t.Fatal("POWER tie must break by performance")
	}
}

func TestPerformancePolicyOrdering(t *testing.T) {
	slow := vec("slow", 4e9, 100, 1, 2, 0)
	fast := vec("fast", 9e9, 300, 1, 2, 0)
	p := New(Performance)
	if !p.Less(fast, slow) || p.Less(slow, fast) {
		t.Fatal("PERFORMANCE must prefer the higher flops")
	}
	leanSame := vec("lean", 9e9, 100, 1, 2, 0)
	if !p.Less(leanSame, fast) {
		t.Fatal("PERFORMANCE tie must break by power")
	}
}

func TestGreenPerfPolicyOrdering(t *testing.T) {
	// gp: a = 20e-9, b = 30e-9 — a wins despite higher raw power.
	a := vec("a", 10e9, 200, 1, 2, 0)
	b := vec("b", 5e9, 150, 1, 2, 0)
	p := New(GreenPerf)
	if !p.Less(a, b) {
		t.Fatal("GREENPERF must rank by ratio, not raw power")
	}
}

func TestRandomPolicyUsesRandomTag(t *testing.T) {
	a := vec("a", 1e9, 100, 1, 2, 0).Set(estvec.TagRandom, 0.7)
	b := vec("b", 9e9, 10, 1, 2, 0).Set(estvec.TagRandom, 0.1)
	p := New(Random)
	if !p.Less(b, a) || p.Less(a, b) {
		t.Fatal("RANDOM must order by the random draw only")
	}
}

func TestScorePolicyPreferenceSwing(t *testing.T) {
	fast := vec("fast", 10e9, 400, 1, 2, 0)
	lean := vec("lean", 2e9, 60, 1, 2, 0)
	perfSeeker := ScorePolicy{Ops: 1e12, Pref: -0.9}
	if !perfSeeker.Less(fast, lean) {
		t.Fatal("P=-0.9 should rank fast first")
	}
	greenSeeker := ScorePolicy{Ops: 1e12, Pref: 0.9}
	if !greenSeeker.Less(lean, fast) {
		t.Fatal("P=+0.9 should rank lean first")
	}
	if perfSeeker.Name() != "SCORE(P=-0.90)" {
		t.Fatalf("Name = %q", perfSeeker.Name())
	}
}

func TestScorePolicyMissingTagsRankLast(t *testing.T) {
	known := vec("known", 5e9, 100, 1, 2, 0)
	unknown := estvec.New("unknown").SetBool(estvec.TagActive, true)
	p := ScorePolicy{Ops: 1e9, Pref: 0}
	if !p.Less(known, unknown) || p.Less(unknown, known) {
		t.Fatal("servers without estimates must rank last")
	}
	// Two unknowns: deterministic name order.
	u2 := estvec.New("aunknown").SetBool(estvec.TagActive, true)
	if !p.Less(u2, unknown) {
		t.Fatal("unknown tie must break by name")
	}
}

func TestServerFromVector(t *testing.T) {
	v := vec("s", 9e9, 222, 3, 12, 1).
		Set(estvec.TagWaitSec, 4).
		Set(estvec.TagBootSec, 120).
		Set(estvec.TagBootPowerW, 170)
	srv, ok := ServerFromVector(v)
	if !ok {
		t.Fatal("conversion failed")
	}
	want := core.Server{Name: "s", Flops: 9e9, PowerW: 222, BootPowerW: 170, BootSec: 120, WaitSec: 4, Active: true}
	if srv != want {
		t.Fatalf("ServerFromVector = %+v, want %+v", srv, want)
	}
	if _, ok := ServerFromVector(estvec.New("x")); ok {
		t.Fatal("vector without estimates should not convert")
	}
	// Negative wait (clock skew) clamps to zero.
	v.Set(estvec.TagWaitSec, -3)
	srv, _ = ServerFromVector(v)
	if srv.WaitSec != 0 {
		t.Fatal("negative wait should clamp to 0")
	}
}

func TestSelectorEmptyAndInactive(t *testing.T) {
	s := NewSelector(New(Power))
	if _, err := s.Select(nil); err != ErrNoServer {
		t.Fatalf("empty list: err = %v, want ErrNoServer", err)
	}
	off := vec("off", 1e9, 100, 1, 2, 0).SetBool(estvec.TagActive, false)
	if _, err := s.Select(estvec.List{off}); err != ErrNoServer {
		t.Fatalf("all inactive: err = %v, want ErrNoServer", err)
	}
}

func TestSelectorPrefersPolicyBestWithFreeCore(t *testing.T) {
	s := NewSelector(New(Power))
	lean := vec("lean", 5e9, 100, 2, 4, 0)
	hungry := vec("hungry", 9e9, 300, 4, 4, 0)
	got, err := s.Select(estvec.List{hungry, lean})
	if err != nil {
		t.Fatal(err)
	}
	if got.Server != "lean" {
		t.Fatalf("selected %s, want lean", got.Server)
	}
}

func TestSelectorLearningPhaseFirst(t *testing.T) {
	s := NewSelector(New(Power))
	known := vec("known", 5e9, 50, 4, 4, 0)
	novice := vec("novice", 9e9, 999, 4, 4, 0).SetBool(estvec.TagKnown, false).Set(estvec.TagRequests, 0)
	got, _ := s.Select(estvec.List{known, novice})
	if got.Server != "novice" {
		t.Fatal("unknown server must be explored first")
	}
	// Exploration disabled: policy best wins.
	s.Explore = false
	got, _ = s.Select(estvec.List{known, novice})
	if got.Server != "known" {
		t.Fatal("without exploration the policy best must win")
	}
}

func TestSelectorLearningPrefersFewestRequests(t *testing.T) {
	s := NewSelector(New(Power))
	a := vec("a", 5e9, 50, 1, 2, 0).SetBool(estvec.TagKnown, false).Set(estvec.TagRequests, 3)
	b := vec("b", 5e9, 70, 1, 2, 0).SetBool(estvec.TagKnown, false).Set(estvec.TagRequests, 1)
	got, _ := s.Select(estvec.List{a, b})
	if got.Server != "b" {
		t.Fatal("learning must prefer the least-measured server")
	}
	// Busy unknown servers cannot be explored.
	b.Set(estvec.TagFreeCores, 0)
	got, _ = s.Select(estvec.List{a, b})
	if got.Server != "a" {
		t.Fatal("full unknown server must be skipped")
	}
}

func TestSelectorOverloadSpill(t *testing.T) {
	s := NewSelector(New(Power))
	// Preferred (lean) node is full with a saturated queue
	// (queue 4 == 1.0×4 cores); spill to the hungry one.
	lean := vec("lean", 5e9, 100, 0, 4, 4)
	hungry := vec("hungry", 9e9, 300, 0, 4, 1)
	got, _ := s.Select(estvec.List{lean, hungry})
	if got.Server != "hungry" {
		t.Fatalf("selected %s, want spill to hungry", got.Server)
	}
	// With a bigger queue factor the lean node keeps absorbing.
	s.QueueFactor = 2
	got, _ = s.Select(estvec.List{lean, hungry})
	if got.Server != "lean" {
		t.Fatalf("QueueFactor=2: selected %s, want lean", got.Server)
	}
}

func TestSelectorSaturatedFallsBackToMinWait(t *testing.T) {
	s := NewSelector(New(Power))
	a := vec("a", 5e9, 100, 0, 2, 2).Set(estvec.TagWaitSec, 50)
	b := vec("b", 9e9, 300, 0, 2, 2).Set(estvec.TagWaitSec, 10)
	got, _ := s.Select(estvec.List{a, b})
	if got.Server != "b" {
		t.Fatal("saturated platform must elect the min-wait server")
	}
}

func TestSelectorZeroQueueFactorDefaults(t *testing.T) {
	s := &Selector{Policy: New(Power), QueueFactor: 0}
	full := vec("full", 5e9, 100, 0, 2, 1) // queue 1 < 1.0*2
	got, err := s.Select(estvec.List{full})
	if err != nil || got.Server != "full" {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestSelectorRankAllIgnoresFreePreference(t *testing.T) {
	s := &Selector{Policy: New(Power), QueueFactor: 2, RankAll: true}
	// lean is full but under its queue cap; hungry has free cores.
	lean := vec("lean", 5e9, 100, 0, 4, 2)
	hungry := vec("hungry", 9e9, 300, 4, 4, 0)
	got, err := s.Select(estvec.List{hungry, lean})
	if err != nil {
		t.Fatal(err)
	}
	if got.Server != "lean" {
		t.Fatalf("RankAll selected %s, want lean (policy order wins over free cores)", got.Server)
	}
	// Over the cap, lean drops out.
	lean.Set(estvec.TagQueueLen, 8)
	got, _ = s.Select(estvec.List{hungry, lean})
	if got.Server != "hungry" {
		t.Fatalf("over-cap server still elected: %s", got.Server)
	}
	// Everything over cap: min-wait fallback still works.
	hungry.Set(estvec.TagFreeCores, 0).Set(estvec.TagQueueLen, 9).Set(estvec.TagWaitSec, 5)
	lean.Set(estvec.TagWaitSec, 50)
	got, _ = s.Select(estvec.List{hungry, lean})
	if got.Server != "hungry" {
		t.Fatalf("saturated RankAll fallback = %s, want min wait", got.Server)
	}
}

func TestSortCandidates(t *testing.T) {
	a := vec("a", 5e9, 300, 1, 2, 0)
	b := vec("b", 5e9, 100, 1, 2, 0)
	c := vec("c", 5e9, 200, 1, 2, 0)
	in := estvec.List{a, b, c}
	out := SortCandidates(in, New(Power))
	if got := out.Servers(); got[0] != "b" || got[1] != "c" || got[2] != "a" {
		t.Fatalf("sorted = %v", got)
	}
	// Input order untouched.
	if in[0].Server != "a" {
		t.Fatal("SortCandidates mutated its input")
	}
}

// Property: every policy's Less is a strict weak ordering over
// distinct-named servers: irreflexive and asymmetric.
func TestPropertyPolicyAsymmetry(t *testing.T) {
	policies := []Policy{New(Power), New(Performance), New(GreenPerf), ScorePolicy{Ops: 1e12, Pref: 0.3}}
	f := func(f1, p1, f2, p2 uint16, r1, r2 uint8) bool {
		a := vec("a", float64(f1)+1e9, float64(p1)+1, 1, 2, 0).Set(estvec.TagRandom, float64(r1)/256)
		b := vec("b", float64(f2)+1e9, float64(p2)+1, 1, 2, 0).Set(estvec.TagRandom, float64(r2)/256)
		for _, p := range policies {
			if p.Less(a, a) || p.Less(b, b) {
				return false
			}
			if p.Less(a, b) && p.Less(b, a) {
				return false
			}
			// Totality over distinct names: one direction must hold.
			if !p.Less(a, b) && !p.Less(b, a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the selector never elects an inactive server and never
// elects a server with no free core while some active server has one.
func TestPropertySelectorRespectsCapacity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := NewSelector(New(GreenPerf))
	for trial := 0; trial < 300; trial++ {
		var list estvec.List
		anyFree := false
		for i := 0; i < 1+rng.Intn(8); i++ {
			free := rng.Intn(3)
			active := rng.Intn(4) > 0
			v := vec(string(rune('a'+i)), float64(rng.Intn(10)+1)*1e9,
				float64(rng.Intn(300)+50), free, 4, rng.Intn(5))
			v.SetBool(estvec.TagActive, active)
			if active && free > 0 {
				anyFree = true
			}
			list = append(list, v)
		}
		got, err := s.Select(list)
		if err != nil {
			hasActive := false
			for _, v := range list {
				if v.Bool(estvec.TagActive) {
					hasActive = true
				}
			}
			if hasActive {
				t.Fatalf("trial %d: error with active servers present: %v", trial, err)
			}
			continue
		}
		if !got.Bool(estvec.TagActive) {
			t.Fatalf("trial %d: elected inactive server %s", trial, got.Server)
		}
		if anyFree && got.Value(estvec.TagFreeCores, 0) <= 0 {
			t.Fatalf("trial %d: elected full server %s while free ones existed", trial, got.Server)
		}
	}
}

func BenchmarkSelect(b *testing.B) {
	s := NewSelector(New(GreenPerf))
	var list estvec.List
	for i := 0; i < 64; i++ {
		list = append(list, vec(string(rune('a'+i%26))+string(rune('0'+i/26)),
			float64(i%9+1)*1e9, float64(i%13+1)*25, i%3, 4, i%5))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Select(list)
	}
}
