package sched

import (
	"math"
	"testing"
)

func TestNewVictimView(t *testing.T) {
	v := NewVictimView(TaskView{ID: 1, Ops: 1e9, Deadline: 500, Value: 2}, 100, 150)
	if v.SlackSec != 250 {
		t.Fatalf("slack %v, want 500-100-150", v.SlackSec)
	}
	free := NewVictimView(TaskView{ID: 2, Ops: 1e9}, 100, 150)
	if !math.IsInf(free.SlackSec, 1) {
		t.Fatalf("deadline-free slack %v, want +Inf", free.SlackSec)
	}
}

func TestVictimLessOrdering(t *testing.T) {
	batch := NewVictimView(TaskView{ID: 0, Ops: 1e12, Value: 0.05}, 0, 500)
	pricey := NewVictimView(TaskView{ID: 1, Ops: 1e12, Value: 5}, 0, 500)
	loose := NewVictimView(TaskView{ID: 2, Ops: 1e12, Value: 0.05, Deadline: 10000}, 0, 500)
	tight := NewVictimView(TaskView{ID: 3, Ops: 1e12, Value: 0.05, Deadline: 600}, 0, 500)
	fresh := NewVictimView(TaskView{ID: 4, Ops: 1e12, Value: 0.05}, 0, 900)

	cases := []struct {
		name string
		a, b VictimView
		want bool
	}{
		{"lower value density first", batch, pricey, true},
		{"higher value density last", pricey, batch, false},
		{"no deadline (infinite slack) before a deadline", batch, loose, true},
		{"more slack before less", loose, tight, true},
		{"more remaining (less progress lost) first", fresh, batch, true},
		{"id tiebreak", batch, NewVictimView(TaskView{ID: 9, Ops: 1e12, Value: 0.05}, 0, 500), true},
	}
	for _, c := range cases {
		if got := VictimLess(c.a, c.b); got != c.want {
			t.Errorf("%s: VictimLess = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestBestVictim(t *testing.T) {
	views := []VictimView{
		NewVictimView(TaskView{ID: 0, Ops: 1e12, Value: 5}, 0, 500),
		NewVictimView(TaskView{ID: 1, Ops: 1e12, Value: 0.05}, 0, 500),
		NewVictimView(TaskView{ID: 2, Ops: 1e12, Value: 0.01}, 0, 500),
	}
	if got := BestVictim(views, nil); got != 2 {
		t.Fatalf("best %d, want the cheapest density", got)
	}
	// A safety filter can veto the cheapest.
	got := BestVictim(views, func(v VictimView) bool { return v.ID != 2 })
	if got != 1 {
		t.Fatalf("filtered best %d, want 1", got)
	}
	if got := BestVictim(views, func(VictimView) bool { return false }); got != -1 {
		t.Fatalf("all-vetoed best %d, want -1", got)
	}
}
