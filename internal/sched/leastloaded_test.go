package sched

import (
	"testing"

	"greensched/internal/estvec"
)

func llVec(name string, wait, free float64) *estvec.Vector {
	return estvec.New(name).
		Set(estvec.TagWaitSec, wait).
		Set(estvec.TagFreeCores, free).
		SetBool(estvec.TagActive, true)
}

func TestLeastLoadedOrdersByWait(t *testing.T) {
	p := New(LeastLoaded)
	short := llVec("short", 5, 0)
	long := llVec("long", 50, 4)
	if !p.Less(short, long) {
		t.Error("shorter wait must rank first regardless of free cores")
	}
	if p.Less(long, short) {
		t.Error("ordering must be asymmetric")
	}
}

func TestLeastLoadedTieBreaks(t *testing.T) {
	p := New(LeastLoaded)
	roomy := llVec("roomy", 10, 8)
	tight := llVec("tight", 10, 1)
	if !p.Less(roomy, tight) {
		t.Error("equal wait: more free capacity first")
	}
	a := llVec("a", 10, 2)
	b := llVec("b", 10, 2)
	if !p.Less(a, b) || p.Less(b, a) {
		t.Error("full tie must fall back to name order")
	}
}

func TestLeastLoadedName(t *testing.T) {
	if got := New(LeastLoaded).Name(); got != "LEASTLOADED" {
		t.Errorf("Name() = %q", got)
	}
}

func TestLeastLoadedIsEnergyBlind(t *testing.T) {
	// Identical load, wildly different power: the baseline must not
	// care — that is exactly the gap GreenPerf fills.
	p := New(LeastLoaded)
	hog := llVec("hog", 10, 2).Set(estvec.TagPowerW, 500).Set(estvec.TagGreenPerf, 99)
	eff := llVec("zeff", 10, 2).Set(estvec.TagPowerW, 50).Set(estvec.TagGreenPerf, 1)
	if !p.Less(hog, eff) {
		t.Error("least-loaded must order by name here, ignoring power tags")
	}
}

func TestLeastLoadedSelectorIntegration(t *testing.T) {
	sel := NewSelector(New(LeastLoaded))
	sel.Explore = false
	list := estvec.List{
		llVec("busy", 120, 0).Set(TagCores(), 4),
		llVec("free", 0, 2).Set(TagCores(), 4),
	}
	got, err := sel.Select(list)
	if err != nil {
		t.Fatal(err)
	}
	if got.Server != "free" {
		t.Errorf("selected %s, want free", got.Server)
	}
}
