package sched

import "math"

// VictimView describes one running task as a preemption candidate: the
// task slice the queue disciplines already rank on, plus how much run
// time it has left and how much deadline margin that leaves it.
type VictimView struct {
	TaskView
	// RemainingSec is the run time left on the owning node if the task
	// is not disturbed.
	RemainingSec float64
	// SlackSec is deadline − now − RemainingSec: the margin the task's
	// own deadline retains. Deadline-free tasks carry +Inf.
	SlackSec float64
}

// NewVictimView builds a VictimView from a task slice at time now,
// deriving SlackSec from the deadline and remaining run time.
func NewVictimView(t TaskView, now, remainingSec float64) VictimView {
	v := VictimView{TaskView: t, RemainingSec: remainingSec, SlackSec: math.Inf(1)}
	if t.Deadline > 0 {
		v.SlackSec = t.Deadline - now - remainingSec
	}
	return v
}

// VictimLess orders preemption candidates cheapest-to-displace first:
// lowest value density (the fewest dollars per flop at stake), then
// most remaining slack (the victim that can best absorb a restart —
// deadline-free batch work, with +Inf slack, always precedes deadline
// carriers), then most remaining run time (the least completed work to
// checkpoint), then task ID for determinism.
func VictimLess(a, b VictimView) bool {
	if va, vb := a.ValueDensity(), b.ValueDensity(); va != vb {
		return va < vb
	}
	if a.SlackSec != b.SlackSec {
		return a.SlackSec > b.SlackSec
	}
	if a.RemainingSec != b.RemainingSec {
		return a.RemainingSec > b.RemainingSec
	}
	return a.ID < b.ID
}

// BestVictim returns the index of the cheapest displacement candidate
// among views that pass the ok filter (the caller's safety screen), or
// -1 when none qualifies.
func BestVictim(views []VictimView, ok func(VictimView) bool) int {
	best := -1
	for i, v := range views {
		if ok != nil && !ok(v) {
			continue
		}
		if best < 0 || VictimLess(v, views[best]) {
			best = i
		}
	}
	return best
}
