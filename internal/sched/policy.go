// Package sched implements the paper's scheduling policies as DIET
// plug-in schedulers: pure orderings over estimation vectors plus the
// server-selection procedure agents run at every level of the
// hierarchy.
//
// The three policies evaluated in §IV-A are POWER and PERFORMANCE
// (respectively "giving priority to ... the most energy-efficient
// nodes" and "to the fastest", "establishing the bounds of the
// GreenPerf metric") and RANDOM. GREENPERF ranks by the
// power/performance ratio itself, and SCORE ranks by the Eq. 6 score
// for a given task size and combined preference.
package sched

import (
	"fmt"
	"math"

	"greensched/internal/core"
	"greensched/internal/estvec"
)

// Policy is a plug-in scheduler: a total order over estimation
// vectors, best server first. Implementations must be pure functions
// of the two vectors so that sorting is deterministic and hierarchical
// merges are well-defined.
type Policy interface {
	// Name identifies the policy in reports ("POWER", ...).
	Name() string
	// Less reports whether a ranks strictly before (better than) b.
	Less(a, b *estvec.Vector) bool
}

// Kind selects one of the bundled policies by name.
type Kind string

// Bundled policy kinds.
const (
	Random      Kind = "RANDOM"
	Power       Kind = "POWER"
	Performance Kind = "PERFORMANCE"
	GreenPerf   Kind = "GREENPERF"
	// LeastLoaded is the classical grid meta-scheduler baseline
	// (§II-B: local resource managers balancing queue depth): shortest
	// estimated wait first, energy-blind. It bounds what queue
	// balancing alone achieves without the paper's energy tags.
	LeastLoaded Kind = "LEASTLOADED"
	// Carbon ranks by grams-per-flop: the GreenPerf ratio weighted by
	// each site's current grid carbon intensity (TagCarbonIntensity).
	// On a single-site platform it coincides with GREENPERF; across
	// sites it shifts work toward cleaner grids.
	Carbon Kind = "CARBON"
	// Renewable ranks by the grid's renewable supply fraction
	// (TagRenewableFrac, descending): work follows the wind and sun
	// regardless of absolute intensity. Unmetered servers rank last,
	// mirroring the CARBON fail-safe.
	Renewable Kind = "RENEWABLE"
)

// Kinds lists the bundled comparison policies in the order the paper's
// tables present them.
func Kinds() []Kind { return []Kind{Random, Power, Performance} }

// New returns the bundled policy for a kind. It panics on unknown
// kinds (configuration error).
func New(k Kind) Policy {
	switch k {
	case Random:
		return randomPolicy{}
	case Power:
		return powerPolicy{}
	case Performance:
		return performancePolicy{}
	case GreenPerf:
		return greenPerfPolicy{}
	case LeastLoaded:
		return leastLoadedPolicy{}
	case Carbon:
		return carbonPolicy{}
	case Renewable:
		return renewablePolicy{}
	default:
		panic(fmt.Sprintf("sched: unknown policy kind %q", k))
	}
}

type powerPolicy struct{}

func (powerPolicy) Name() string { return string(Power) }
func (powerPolicy) Less(a, b *estvec.Vector) bool {
	less := estvec.ByTagAsc(estvec.TagPowerW,
		estvec.ByTagDesc(estvec.TagFlops, estvec.ByServerName))
	return less(a, b)
}

type performancePolicy struct{}

func (performancePolicy) Name() string { return string(Performance) }
func (performancePolicy) Less(a, b *estvec.Vector) bool {
	less := estvec.ByTagDesc(estvec.TagFlops,
		estvec.ByTagAsc(estvec.TagPowerW, estvec.ByServerName))
	return less(a, b)
}

type greenPerfPolicy struct{}

func (greenPerfPolicy) Name() string { return string(GreenPerf) }
func (greenPerfPolicy) Less(a, b *estvec.Vector) bool {
	// Ratio ascending, performance descending as the secondary
	// parameter (§III-A).
	less := estvec.ByTagAsc(estvec.TagGreenPerf,
		estvec.ByTagDesc(estvec.TagFlops, estvec.ByServerName))
	return less(a, b)
}

type leastLoadedPolicy struct{}

func (leastLoadedPolicy) Name() string { return string(LeastLoaded) }
func (leastLoadedPolicy) Less(a, b *estvec.Vector) bool {
	// Shortest estimated wait, then the most free capacity, then name.
	less := estvec.ByTagAsc(estvec.TagWaitSec,
		estvec.ByTagDesc(estvec.TagFreeCores, estvec.ByServerName))
	return less(a, b)
}

type randomPolicy struct{}

func (randomPolicy) Name() string { return string(Random) }
func (randomPolicy) Less(a, b *estvec.Vector) bool {
	// SEDs draw TagRandom per response; ordering by it implements a
	// uniform shuffle while keeping Less a pure function.
	less := estvec.ByTagAsc(estvec.TagRandom, estvec.ByServerName)
	return less(a, b)
}

// carbonPolicy ranks by the emissions rate of placing work on a
// server: power × site carbon intensity / flops (grams per flop,
// ascending). Servers missing the power/flops estimates (learning
// phase) rank last. A server whose vector carries no intensity tag
// ranks after every metered one — an unmetered site must fail safe,
// not look infinitely clean; when *no* server reports an intensity
// (single-site platform without a grid feed) the ordering degrades to
// GreenPerf via CarbonPerf's neutral intensity.
type carbonPolicy struct{}

func (carbonPolicy) Name() string { return string(Carbon) }
func (carbonPolicy) Less(a, b *estvec.Vector) bool {
	if a.Has(estvec.TagCarbonIntensity) != b.Has(estvec.TagCarbonIntensity) {
		return a.Has(estvec.TagCarbonIntensity)
	}
	sa, aok := carbonRate(a)
	sb, bok := carbonRate(b)
	switch {
	case aok && !bok:
		return true
	case !aok && bok:
		return false
	case aok && bok && sa != sb:
		return sa < sb
	default:
		less := estvec.ByTagAsc(estvec.TagGreenPerf,
			estvec.ByTagDesc(estvec.TagFlops, estvec.ByServerName))
		return less(a, b)
	}
}

// renewablePolicy ranks by the renewable supply fraction of each
// SED's grid, descending: the greenest electrons first, whatever the
// absolute intensity. Servers whose vectors omit TagRenewableFrac
// (unmetered sites) rank after every metered one — the same fail-safe
// the CARBON policy applies — and ties fall through to GreenPerf so
// same-grid servers still order by efficiency.
type renewablePolicy struct{}

func (renewablePolicy) Name() string { return string(Renewable) }
func (renewablePolicy) Less(a, b *estvec.Vector) bool {
	less := estvec.ByTagDesc(estvec.TagRenewableFrac,
		estvec.ByTagAsc(estvec.TagGreenPerf,
			estvec.ByTagDesc(estvec.TagFlops, estvec.ByServerName)))
	return less(a, b)
}

func carbonRate(v *estvec.Vector) (float64, bool) {
	srv, ok := ServerFromVector(v)
	if !ok {
		return 0, false
	}
	return srv.CarbonPerf(), true
}

// WeightedGreenPolicy ranks by the blended core.GreenWeights score —
// the provider's performance/watts/carbon weighting applied as a
// plug-in scheduler. Servers still in the learning phase rank last,
// and while the carbon axis carries weight, servers without an
// intensity reading rank after metered ones (fail safe, as in the
// CARBON policy).
type WeightedGreenPolicy struct {
	W core.GreenWeights
}

// Name implements Policy.
func (p WeightedGreenPolicy) Name() string {
	return fmt.Sprintf("WEIGHTED(p=%g,w=%g,c=%g)", p.W.Perf, p.W.Watts, p.W.Carbon)
}

// Less implements Policy.
func (p WeightedGreenPolicy) Less(a, b *estvec.Vector) bool {
	if p.W.Carbon > 0 && a.Has(estvec.TagCarbonIntensity) != b.Has(estvec.TagCarbonIntensity) {
		return a.Has(estvec.TagCarbonIntensity)
	}
	sva, aok := ServerFromVector(a)
	svb, bok := ServerFromVector(b)
	switch {
	case aok && !bok:
		return true
	case !aok && bok:
		return false
	case !aok && !bok:
		return a.Server < b.Server
	}
	sa, sb := p.W.Score(sva), p.W.Score(svb)
	if sa != sb {
		return sa < sb
	}
	return a.Server < b.Server
}

// ScorePolicy ranks by the Eq. 6 score for a task of Ops flops under
// the combined preference Pref. It is the policy behind the §III-C
// energy-event scheduling process.
type ScorePolicy struct {
	Ops  float64
	Pref core.UserPref
}

// Name implements Policy.
func (p ScorePolicy) Name() string { return fmt.Sprintf("SCORE(P=%.2f)", float64(p.Pref)) }

// Less implements Policy by reconstructing the Eq. 4–6 inputs from the
// estimation vector. Servers missing mandatory tags rank last.
func (p ScorePolicy) Less(a, b *estvec.Vector) bool {
	sa, aok := p.score(a)
	sb, bok := p.score(b)
	switch {
	case aok && !bok:
		return true
	case !aok && bok:
		return false
	case sa != sb:
		return sa < sb
	default:
		return a.Server < b.Server
	}
}

func (p ScorePolicy) score(v *estvec.Vector) (float64, bool) {
	srv, ok := ServerFromVector(v)
	if !ok {
		return 0, false
	}
	return srv.Score(p.Ops, p.Pref), true
}

// ServerFromVector converts an estimation vector into the core.Server
// the Eq. 4–6 models consume. ok is false when the mandatory flops or
// power tags are absent (server still in the learning phase).
func ServerFromVector(v *estvec.Vector) (core.Server, bool) {
	flops, okF := v.Get(estvec.TagFlops)
	pw, okP := v.Get(estvec.TagPowerW)
	if !okF || !okP || flops <= 0 || pw <= 0 {
		return core.Server{}, false
	}
	return core.Server{
		Name:            v.Server,
		Flops:           flops,
		PowerW:          pw,
		BootPowerW:      v.Value(estvec.TagBootPowerW, 0),
		BootSec:         v.Value(estvec.TagBootSec, 0),
		WaitSec:         math.Max(0, v.Value(estvec.TagWaitSec, 0)),
		CarbonIntensity: v.Value(estvec.TagCarbonIntensity, 0),
		Active:          v.Bool(estvec.TagActive),
	}, true
}
