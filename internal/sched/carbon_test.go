package sched

import (
	"testing"

	"greensched/internal/core"
	"greensched/internal/estvec"
)

func carbonVec(name string, flops, powerW, gPerKWh float64) *estvec.Vector {
	v := estvec.New(name).
		Set(estvec.TagFlops, flops).
		Set(estvec.TagPowerW, powerW).
		SetBool(estvec.TagActive, true).
		SetBool(estvec.TagKnown, true)
	if gPerKWh > 0 {
		v.Set(estvec.TagCarbonIntensity, gPerKWh)
	}
	return v
}

func TestCarbonPolicyPrefersCleanerGrid(t *testing.T) {
	p := New(Carbon)
	if p.Name() != "CARBON" {
		t.Fatalf("policy name %q", p.Name())
	}
	hungryClean := carbonVec("hungry-clean", 5e9, 300, 50)
	leanDirty := carbonVec("lean-dirty", 5e9, 200, 500)
	if !p.Less(hungryClean, leanDirty) {
		t.Error("the cleaner site must rank first despite higher watts")
	}
	if p.Less(leanDirty, hungryClean) {
		t.Error("ordering must be asymmetric")
	}
}

func TestCarbonPolicySingleSiteMatchesGreenPerf(t *testing.T) {
	p := New(Carbon)
	gp := New(GreenPerf)
	a := carbonVec("a", 9e9, 220, 300).Set(estvec.TagGreenPerf, 220.0/9e9)
	b := carbonVec("b", 4.6e9, 250, 300).Set(estvec.TagGreenPerf, 250.0/4.6e9)
	if p.Less(a, b) != gp.Less(a, b) || p.Less(b, a) != gp.Less(b, a) {
		t.Error("equal intensities must reproduce the GREENPERF ordering")
	}
}

func TestCarbonPolicyLearningPhaseRanksLast(t *testing.T) {
	p := New(Carbon)
	known := carbonVec("known", 5e9, 200, 100)
	novice := estvec.New("novice").SetBool(estvec.TagActive, true) // no estimates yet
	if !p.Less(known, novice) {
		t.Error("server with estimates must rank before a novice")
	}
	if p.Less(novice, known) {
		t.Error("novice must not outrank a measured server")
	}
}

// TestCarbonPolicyUnmeteredSiteFailsSafe: a server whose grid feed is
// down (no intensity tag) must not look infinitely clean — it ranks
// after every metered server, even a very dirty one.
func TestCarbonPolicyUnmeteredSiteFailsSafe(t *testing.T) {
	p := New(Carbon)
	metered := carbonVec("metered-dirty", 5e9, 200, 550)
	unmetered := carbonVec("unmetered", 5e9, 200, 0) // no tag set
	if !p.Less(metered, unmetered) || p.Less(unmetered, metered) {
		t.Error("unmetered server must rank after the metered one")
	}
	// The weighted policy applies the same guard while carbon carries
	// weight…
	wp := WeightedGreenPolicy{W: core.GreenWeights{Watts: 1, Carbon: 1}}
	if !wp.Less(metered, unmetered) || wp.Less(unmetered, metered) {
		t.Error("weighted policy must rank the unmetered server last")
	}
	// …but ignores the tag when the carbon weight is zero.
	wattsOnly := WeightedGreenPolicy{W: core.GreenWeights{Watts: 1}}
	lean := carbonVec("lean-unmetered", 5e9, 100, 0)
	if !wattsOnly.Less(lean, metered) {
		t.Error("carbon-blind weighting must still rank by watts")
	}
}

func TestServerFromVectorCarriesCarbonIntensity(t *testing.T) {
	v := carbonVec("x", 5e9, 200, 321)
	srv, ok := ServerFromVector(v)
	if !ok {
		t.Fatal("vector with flops+power must convert")
	}
	if srv.CarbonIntensity != 321 {
		t.Errorf("CarbonIntensity = %v, want 321", srv.CarbonIntensity)
	}
	srv2, _ := ServerFromVector(carbonVec("y", 5e9, 200, 0))
	if srv2.CarbonIntensity != 0 {
		t.Errorf("missing tag must read as 0, got %v", srv2.CarbonIntensity)
	}
}

func TestWeightedGreenPolicy(t *testing.T) {
	fast := carbonVec("fast", 10e9, 400, 400)
	clean := carbonVec("clean", 4e9, 100, 20)
	perfOnly := WeightedGreenPolicy{W: core.GreenWeights{Perf: 1}}
	if !perfOnly.Less(fast, clean) {
		t.Error("perf-weighted policy must prefer the fast node")
	}
	carbonOnly := WeightedGreenPolicy{W: core.GreenWeights{Carbon: 1}}
	if !carbonOnly.Less(clean, fast) {
		t.Error("carbon-weighted policy must prefer the clean node")
	}
	// Novices rank last regardless of weights.
	novice := estvec.New("novice").SetBool(estvec.TagActive, true)
	if !carbonOnly.Less(fast, novice) || carbonOnly.Less(novice, fast) {
		t.Error("novice must rank last")
	}
	if perfOnly.Name() != "WEIGHTED(p=1,w=0,c=0)" {
		t.Errorf("name %q", perfOnly.Name())
	}
}
