package sched

import (
	"sort"
	"testing"

	"greensched/internal/core"
	"greensched/internal/estvec"
)

func view(id int, submit, deadline, value, ops float64) TaskView {
	return TaskView{ID: id, Ops: ops, Submit: submit, Deadline: deadline, Value: value}
}

func sortViews(order TaskOrder, views []TaskView) []int {
	out := make([]TaskView, len(views))
	copy(out, views)
	sort.SliceStable(out, func(i, j int) bool { return order.Less(out[i], out[j]) })
	ids := make([]int, len(out))
	for i, v := range out {
		ids[i] = v.ID
	}
	return ids
}

func TestEDFOrder(t *testing.T) {
	order := NewOrder(EDF)
	views := []TaskView{
		view(0, 0, 0, 1, 1e9),    // best effort: last
		view(1, 10, 500, 1, 1e9), // tightest deadline: first
		view(2, 5, 900, 1, 1e9),
		view(3, 0, 0, 9, 1e9), // best effort, higher density: before 0
	}
	got := sortViews(order, views)
	want := []int{1, 2, 3, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("EDF order %v, want %v", got, want)
		}
	}
}

func TestValueDensityOrder(t *testing.T) {
	order := NewOrder(ValueDensityOrder)
	views := []TaskView{
		view(0, 0, 100, 0.5, 1e9), // 5e-10 $/flop
		view(1, 0, 0, 2, 1e9),     // 2e-9 $/flop: first
		view(2, 0, 50, 1, 1e10),   // 1e-10 $/flop: last despite deadline
	}
	got := sortViews(order, views)
	want := []int{1, 0, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("VALUE-DENSITY order %v, want %v", got, want)
		}
	}
}

func TestFIFOOrderAndTies(t *testing.T) {
	order := NewOrder(FIFO)
	a, b := view(2, 5, 0, 0, 1), view(1, 5, 0, 0, 1)
	if !order.Less(b, a) || order.Less(a, b) {
		t.Error("FIFO submit tie must break by ID")
	}
	// EDF with equal deadlines and densities falls back to FIFO.
	edf := NewOrder(EDF)
	x, y := view(7, 1, 100, 1, 1e9), view(8, 2, 100, 1, 1e9)
	if !edf.Less(x, y) || edf.Less(y, x) {
		t.Error("EDF deadline tie must fall through to FIFO")
	}
}

func TestNewOrderPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown order kind did not panic")
		}
	}()
	NewOrder(TaskOrderKind("NOPE"))
}

// sedVec builds a learning-complete vector for DeadlineAware tests.
func sedVec(name string, flops, powerW, waitSec float64, active bool) *estvec.Vector {
	return estvec.New(name).
		Set(estvec.TagFlops, flops).
		Set(estvec.TagPowerW, powerW).
		Set(estvec.TagGreenPerf, powerW/flops).
		Set(estvec.TagWaitSec, waitSec).
		SetBool(estvec.TagActive, active)
}

func TestDeadlineAwareFeasibleFirst(t *testing.T) {
	// fast finishes in 100 s; lean is greener but queues 900 s.
	fast := sedVec("fast", 1e9, 400, 0, true)
	lean := sedVec("lean", 1e9, 100, 900, true)
	base := New(GreenPerf)

	// Without a deadline the greener server wins.
	open := DeadlineAware{Base: base, Ops: 1e11, Now: 0}
	if !open.Less(lean, fast) {
		t.Error("no deadline: base (GreenPerf) ordering expected")
	}

	// A 500 s deadline flips the order: only fast can meet it.
	tight := DeadlineAware{Base: base, Ops: 1e11, Now: 0, Deadline: 500}
	if !tight.Less(fast, lean) || tight.Less(lean, fast) {
		t.Error("deadline screen must put the feasible server first")
	}

	// A loose deadline both can meet: back to GreenPerf.
	loose := DeadlineAware{Base: base, Ops: 1e11, Now: 0, Deadline: 5000}
	if !loose.Less(lean, fast) {
		t.Error("both feasible: base ordering expected")
	}

	// Both miss: least-late first.
	hopeless := DeadlineAware{Base: base, Ops: 1e11, Now: 0, Deadline: 50}
	if !hopeless.Less(fast, lean) {
		t.Error("both miss: least-late server must rank first")
	}
}

func TestDeadlineAwareLearningPhaseRanksLast(t *testing.T) {
	known := sedVec("known", 1e9, 300, 0, true)
	novice := estvec.New("novice").SetBool(estvec.TagActive, true)
	p := DeadlineAware{Base: New(GreenPerf), Ops: 1e9, Now: 0, Deadline: 100}
	if !p.Less(known, novice) || p.Less(novice, known) {
		t.Error("servers without estimates must rank last under a deadline")
	}
}

func TestSLAWeightedUrgency(t *testing.T) {
	// lean is far greener; fast is the only one meeting the deadline.
	fast := sedVec("fast", 1e9, 400, 0, true)
	lean := sedVec("lean", 1e9, 100, 900, true)

	green := SLAWeightedPolicy{W: core.GreenWeights{Watts: 1}, Urgency: 0, Ops: 1e11, Now: 0, Deadline: 500}
	if !green.Less(lean, fast) {
		t.Error("zero urgency must degrade to the green ordering")
	}

	urgent := SLAWeightedPolicy{W: core.GreenWeights{Watts: 1}, Urgency: 10, Ops: 1e11, Now: 0, Deadline: 500}
	if !urgent.Less(fast, lean) {
		t.Error("urgency must price the projected lateness into the score")
	}

	// Names identify the parameterization.
	if urgent.Name() == green.Name() {
		t.Error("names must reflect the urgency weight")
	}
}

func TestRenewablePolicy(t *testing.T) {
	p := New(Renewable)
	if p.Name() != string(Renewable) {
		t.Fatalf("name %q", p.Name())
	}
	windy := sedVec("windy", 1e9, 300, 0, true).Set(estvec.TagRenewableFrac, 0.8)
	sooty := sedVec("sooty", 1e9, 100, 0, true).Set(estvec.TagRenewableFrac, 0.1)
	unmetered := sedVec("unmetered", 1e9, 50, 0, true)

	if !p.Less(windy, sooty) || p.Less(sooty, windy) {
		t.Error("higher renewable fraction must rank first")
	}
	// Fail-safe: a server without the tag ranks after every metered
	// one, even the dirtiest.
	if !p.Less(sooty, unmetered) || p.Less(unmetered, sooty) {
		t.Error("unmetered server must rank last")
	}
	// Equal fractions fall through to GreenPerf.
	greenish := sedVec("greenish", 1e9, 100, 0, true).Set(estvec.TagRenewableFrac, 0.8)
	if !p.Less(greenish, windy) {
		t.Error("renewable tie must break by GreenPerf")
	}
}
