package consolidation

import (
	"testing"

	"greensched/internal/power"
	"greensched/internal/sim"
)

// TestControllerPreemptsInsteadOfBooting: with PreemptBatch on, the
// idle-shutdown controller rescues at-risk queued deadline work by
// checkpointing the cheap batch victim on the same node instead of
// express-booting dark capacity the queued work could never migrate
// to.
func TestControllerPreemptsInsteadOfBooting(t *testing.T) {
	c := &Controller{IdleTimeout: 600, MinOn: 1, DeadlineSlackSec: 300, PreemptBatch: true}
	slack := 100.0
	ctl := &fakeControl{
		nodes: []sim.NodeView{
			{Name: "n0", State: power.On, Slots: 1, Running: 1, Queued: 1,
				Candidate: true, QueuedAtRisk: true, TaskW: 10, BootSec: 120, BootW: 170},
			{Name: "n1", State: power.Off, Slots: 1, BootSec: 120, BootW: 170},
		},
		running: map[string][]sim.RunningView{
			"n0": {{TaskID: 7, Class: "batch", ValueUSD: 0.05, Ops: 1e12, RemainingSec: 500, RedoSec: 20}},
		},
		pendingSlack: &slack,
	}
	c.Tick(0, ctl)
	// Redo cost 20 s × 10 W = 200 J ≪ one 120 s × 170 W boot transient.
	if len(ctl.preempts) != 1 || ctl.preempts[0] != "n0/7" {
		t.Fatalf("preempts %v, want [n0/7]", ctl.preempts)
	}
	if len(ctl.ons) != 0 {
		t.Fatalf("booted %v although preemption reclaimed the slot in place", ctl.ons)
	}
}

// TestControllerBootsWhenPreemptionTooExpensive: a victim whose
// re-executed work would cost more joules than a boot transient is
// left alone; the urgent path falls back to waking capacity.
func TestControllerBootsWhenPreemptionTooExpensive(t *testing.T) {
	c := &Controller{IdleTimeout: 600, MinOn: 1, DeadlineSlackSec: 300, PreemptBatch: true}
	slack := 100.0
	ctl := &fakeControl{
		nodes: []sim.NodeView{
			{Name: "n0", State: power.On, Slots: 1, Running: 1, Queued: 1,
				Candidate: true, QueuedAtRisk: true, TaskW: 10, BootSec: 120, BootW: 170},
			{Name: "n1", State: power.Off, Slots: 1, BootSec: 120, BootW: 170},
		},
		running: map[string][]sim.RunningView{
			// 5000 s of redone work at 10 W dwarfs the 20.4 kJ boot.
			"n0": {{TaskID: 7, Class: "batch", ValueUSD: 0.05, Ops: 1e12, RemainingSec: 500, RedoSec: 5000}},
		},
		pendingSlack: &slack,
	}
	c.Tick(0, ctl)
	if len(ctl.preempts) != 0 {
		t.Fatalf("preempted %v although redo work beats a boot", ctl.preempts)
	}
	if len(ctl.ons) != 1 || ctl.ons[0] != "n1" {
		t.Fatalf("woke %v, want the express boot [n1]", ctl.ons)
	}
}

// TestControllerPreemptDisabledByDefault: without PreemptBatch the
// controller keeps the PR-2 behaviour — express boots only.
func TestControllerPreemptDisabledByDefault(t *testing.T) {
	c := &Controller{IdleTimeout: 600, MinOn: 1, DeadlineSlackSec: 300}
	slack := 100.0
	ctl := &fakeControl{
		nodes: []sim.NodeView{
			{Name: "n0", State: power.On, Slots: 1, Running: 1, Queued: 1,
				Candidate: true, QueuedAtRisk: true, TaskW: 10, BootSec: 120, BootW: 170},
			{Name: "n1", State: power.Off, Slots: 1, BootSec: 120, BootW: 170},
		},
		running: map[string][]sim.RunningView{
			"n0": {{TaskID: 7, Class: "batch", ValueUSD: 0.05, Ops: 1e12, RemainingSec: 500, RedoSec: 20}},
		},
		pendingSlack: &slack,
	}
	c.Tick(0, ctl)
	if len(ctl.preempts) != 0 {
		t.Fatalf("preempted %v without opting in", ctl.preempts)
	}
	if len(ctl.ons) != 1 {
		t.Fatalf("woke %v, want the boot fallback", ctl.ons)
	}
}

// TestPreemptForUrgentSkipsUnsafeVictims: a Preempt refusal (the
// simulator vetoes victims whose own deadline the restart would
// breach) must not end the search — and with every candidate refused,
// the helper reports failure so the boot fallback still runs.
func TestPreemptForUrgentSkipsUnsafeVictims(t *testing.T) {
	slack := 100.0
	ctl := &fakeControl{
		nodes: []sim.NodeView{
			{Name: "n0", State: power.On, Slots: 1, Running: 1, Queued: 1,
				Candidate: true, QueuedAtRisk: true, TaskW: 10},
		},
		running: map[string][]sim.RunningView{
			"n0": {{TaskID: 7, Class: "batch", ValueUSD: 0.05, Ops: 1e12, RemainingSec: 500, RedoSec: 20}},
		},
		pendingSlack: &slack,
		preemptErr:   errRefused,
	}
	if preemptForUrgent(0, ctl, ctl.nodes) {
		t.Fatal("reported success although every Preempt was refused")
	}
}

var errRefused = fmtError("refused")

type fmtError string

func (e fmtError) Error() string { return string(e) }
