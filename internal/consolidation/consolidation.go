// Package consolidation implements the related-work baseline the
// paper positions itself against (§II-B): load concentration with idle
// shutdown, in the style of Hermenier et al. [11] and the Green Open
// Cloud architecture of Orgerie & Lefèvre [12].
//
// It has two cooperating halves:
//
//   - Policy, a plug-in scheduler that concentrates tasks onto the
//     fewest nodes (most-loaded-but-not-full first) — energy-blind
//     placement, unlike GreenPerf;
//   - Controller, a sim.Control client that powers nodes off after an
//     idle timeout and back on when unplaced requests build up.
//
// Together they save energy on under-utilized platforms exactly where
// GreenPerf alone cannot: GreenPerf reduces the draw of the *active*
// servers but leaves idle servers burning their idle floor, which the
// paper itself concedes in §IV-C by resorting to shutdowns. The
// extension experiment (experiments.RunConsolidation) quantifies both
// effects and their combination.
package consolidation

import (
	"fmt"

	"greensched/internal/estvec"
	"greensched/internal/power"
	"greensched/internal/sched"
	"greensched/internal/sim"
)

// PolicyName identifies the concentration policy in reports.
const PolicyName = "CONSOLIDATION"

// Policy orders servers for load concentration: the most loaded
// not-yet-full server first, so new work fills partially busy nodes
// before opening fresh ones, and whole nodes drain to idle sooner.
// Ties break toward smaller remaining capacity, then node name, which
// pins the concentration order and keeps elections deterministic.
//
// The ordering is intentionally energy-blind — this is the related-work
// baseline, not the paper's contribution. Combine it with GreenPerf by
// wrapping (see GreenTieBreak) to concentrate onto efficient nodes.
type Policy struct{}

// Name implements sched.Policy.
func (Policy) Name() string { return PolicyName }

// Less implements sched.Policy.
func (Policy) Less(a, b *estvec.Vector) bool {
	ba, bb := busy(a), busy(b)
	if ba != bb {
		return ba > bb // more loaded first
	}
	fa := a.Value(estvec.TagFreeCores, 0)
	fb := b.Value(estvec.TagFreeCores, 0)
	if fa != fb {
		return fa < fb // tighter fit first
	}
	return a.Server < b.Server
}

// GreenTieBreak concentrates like Policy but breaks load ties by
// GreenPerf ratio instead of name — the natural composition of the
// related-work baseline with the paper's metric.
type GreenTieBreak struct{}

// Name implements sched.Policy.
func (GreenTieBreak) Name() string { return "CONSOLIDATION+GREENPERF" }

// Less implements sched.Policy.
func (GreenTieBreak) Less(a, b *estvec.Vector) bool {
	ba, bb := busy(a), busy(b)
	if ba != bb {
		return ba > bb
	}
	less := estvec.ByTagAsc(estvec.TagGreenPerf,
		estvec.ByTagDesc(estvec.TagFlops, estvec.ByServerName))
	return less(a, b)
}

func busy(v *estvec.Vector) float64 {
	cores := v.Value(sched.TagCores(), 0)
	free := v.Value(estvec.TagFreeCores, 0)
	if cores <= 0 {
		// No capacity tag: treat occupied as busy=1, free as busy=0.
		if free > 0 {
			return 0
		}
		return 1
	}
	return cores - free
}

// Controller is an idle-timeout power manager driven by the
// sim.Config.OnControl hook.
type Controller struct {
	// IdleTimeout powers a node off after this much workless time
	// (seconds). Must be positive.
	IdleTimeout float64
	// MinOn is the number of candidate nodes always kept available
	// (≥1; the grid must keep answering requests — §II-B notes
	// management tools treat powered-off resources as failures, so a
	// floor is operationally mandatory).
	MinOn int

	// WakeSlack powers on this many extra slots beyond the observed
	// unplaced backlog (0 = exact match). Slack trades energy for
	// reaction time on bursty arrivals.
	WakeSlack int

	// DeadlineSlackSec, when positive, makes the controller refuse
	// energy savings that would breach an admitted task's deadline:
	// while the tightest pending deadline margin (sim
	// Control.PendingSlack) is at or below this guard, shutdowns pause
	// and the backlog is treated as urgent enough to wake capacity
	// even when free slots nominally cover it. 0 keeps the classic
	// SLA-blind behaviour.
	DeadlineSlackSec float64

	// PreemptBatch, with the simulator's Config.Preemption enabled,
	// lets the urgent path checkpoint a cheap running victim on a node
	// whose queue holds at-risk deadline work instead of express-
	// booting dark capacity the queued work could never migrate to —
	// chosen when the re-executed work costs fewer joules than a boot
	// transient.
	PreemptBatch bool
}

// Validate checks the controller parameters.
func (c *Controller) Validate() error {
	if c.IdleTimeout <= 0 {
		return fmt.Errorf("consolidation: IdleTimeout %v must be positive", c.IdleTimeout)
	}
	if c.MinOn < 1 {
		return fmt.Errorf("consolidation: MinOn %d must be at least 1", c.MinOn)
	}
	if c.WakeSlack < 0 {
		return fmt.Errorf("consolidation: WakeSlack %d must be non-negative", c.WakeSlack)
	}
	if c.DeadlineSlackSec < 0 {
		return fmt.Errorf("consolidation: DeadlineSlackSec %v must be non-negative", c.DeadlineSlackSec)
	}
	return nil
}

// Tick implements the power-management step; install it as
// sim.Config.OnControl. Wake-ups answer unplaced backlog; shutdowns
// apply the idle timeout while respecting MinOn.
func (c *Controller) Tick(now float64, ctl sim.Control) {
	nodes := ctl.Nodes()

	// SLA guard: while an admitted deadline is within the guard
	// margin, powering down is off the table and waking is urgent.
	urgent := false
	if c.DeadlineSlackSec > 0 {
		if slack, ok := ctl.PendingSlack(); ok && slack <= c.DeadlineSlackSec {
			urgent = true
		}
	}

	// Preemption-first: deadline work stuck in a full node's queue is
	// rescued in place — fresh capacity cannot take it (an elected
	// request never migrates), so a cheap checkpoint beats a boot.
	preempted := false
	if urgent && c.PreemptBatch {
		preempted = preemptForUrgent(now, ctl, nodes)
		if preempted {
			nodes = ctl.Nodes() // refresh: a slot freed and the queue drained
		}
	}

	// How many slots are (or will shortly be) available?
	availOn := 0
	for _, n := range nodes {
		if n.Candidate && n.State.Usable() {
			availOn++
		}
	}

	// Wake path: cover the net backlog (plus slack) with Off nodes, in
	// platform order for determinism. Backlog is unplaced requests
	// plus queued tasks; queued work cannot migrate once elected (the
	// SED keeps its problem, §III-A step 5), but it signals that
	// *future* arrivals need somewhere to go. Netting out free slots
	// and capacity already booting is what prevents wake thrash: a
	// tick must not re-answer pressure the previous tick already paid
	// a boot for.
	backlog := ctl.Unplaced()
	free, inbound := 0, 0
	for _, n := range nodes {
		if !n.Candidate {
			continue
		}
		switch n.State {
		case power.On:
			backlog += n.Queued
			if f := n.Slots - n.Running; f > 0 {
				free += f
			}
		case power.Booting:
			inbound += n.Slots
		}
	}
	need := backlog - free - inbound
	if need > 0 {
		need += c.WakeSlack
	}
	if urgent && !preempted && need <= 0 && backlog > 0 {
		// A deadline is at risk: free slots on loaded nodes may drain
		// too late, so answer the backlog with fresh capacity anyway
		// (unless a preemption just reclaimed a slot in place).
		need = backlog
	}
	for _, n := range nodes {
		if need <= 0 {
			break
		}
		if n.Candidate && n.State.Usable() {
			continue // already counted; its backlog drains by itself
		}
		if err := ctl.PowerOn(n.Name); err == nil {
			need -= n.Slots
			availOn++
		}
	}

	// Shutdown path: idle past the timeout, never below MinOn. Only
	// fully On nodes qualify — a Booting node was just paid for and is
	// about to receive the backlog that woke it. Paused entirely while
	// a pending deadline sits inside the SLA guard: a node shed now
	// costs BootSec to win back, exactly the seconds the task lacks.
	if urgent {
		return
	}
	for _, n := range nodes {
		if availOn <= c.MinOn {
			break
		}
		if !n.Candidate || n.State != power.On {
			continue
		}
		if n.Running > 0 || n.Queued > 0 || n.Idle < c.IdleTimeout {
			continue
		}
		if err := ctl.PowerOff(n.Name); err == nil {
			availOn--
		}
	}
}
