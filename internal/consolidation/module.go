package consolidation

import (
	"fmt"

	"greensched/internal/sim"
)

// Ticker is the controller surface a Module drives: both Controller
// (idle shutdown) and CarbonController (candidacy windows) satisfy it.
type Ticker interface {
	Tick(now float64, ctl sim.Control)
}

// Module mounts a power-management controller on a scenario's module
// stack: the controller's Tick runs at every Config.ControlEvery
// cadence alongside whatever other modules the scenario composes
// (carbon accounting, SLA machinery, preemption, budget, thermal).
//
//	sim.WithModules(
//		&sim.CarbonModule{Profile: profile},
//		&consolidation.Module{Controller: &consolidation.CarbonController{…}},
//	)
//
// A controller instance carries run state (the carbon controller's
// deferral clock); give every run its own.
type Module struct {
	sim.BaseModule
	Controller Ticker
}

// Init implements sim.Module: it validates the controller when it
// exposes a Validate method (both shipped controllers do).
func (m *Module) Init(*sim.Runner) error {
	if m.Controller == nil {
		return fmt.Errorf("consolidation: module needs a controller")
	}
	if v, ok := m.Controller.(interface{ Validate() error }); ok {
		return v.Validate()
	}
	return nil
}

// OnTick implements sim.Module.
func (m *Module) OnTick(now float64, ctl sim.Control) {
	m.Controller.Tick(now, ctl)
}
