package consolidation

import (
	"testing"

	"greensched/internal/carbon"
	"greensched/internal/power"
	"greensched/internal/sim"
)

func slackOf(v float64) *float64 { return &v }

// TestControllerGuardPausesShutdowns: the idle-shutdown controller
// must not shed capacity while an admitted deadline sits inside the
// guard margin.
func TestControllerGuardPausesShutdowns(t *testing.T) {
	c := &Controller{IdleTimeout: 60, MinOn: 1, DeadlineSlackSec: 300}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	ctl := &fakeControl{
		nodes: []sim.NodeView{
			onNode("a", 2, 0, 1e4), // idle far past the timeout
			onNode("b", 2, 1, 0),
		},
		pendingSlack: slackOf(100), // tight deadline pending
	}
	c.Tick(0, ctl)
	if len(ctl.offs) != 0 {
		t.Fatalf("shutdowns issued under a tight deadline: %v", ctl.offs)
	}

	// Same platform, comfortable slack: the idle node goes down.
	ctl = &fakeControl{
		nodes: []sim.NodeView{
			onNode("a", 2, 0, 1e4),
			onNode("b", 2, 1, 0),
		},
		pendingSlack: slackOf(5000),
	}
	c.Tick(0, ctl)
	if len(ctl.offs) != 1 || ctl.offs[0] != "a" {
		t.Fatalf("comfortable slack must allow the idle shutdown, got %v", ctl.offs)
	}
}

// TestControllerGuardWakesForUrgentBacklog: queued deadline work with
// tight slack counts as urgent backlog even when free slots nominally
// cover it — fresh capacity boots anyway.
func TestControllerGuardWakesForUrgentBacklog(t *testing.T) {
	c := &Controller{IdleTimeout: 600, MinOn: 1, DeadlineSlackSec: 300}
	ctl := &fakeControl{
		nodes: []sim.NodeView{
			{Name: "busy", State: power.On, Slots: 2, Running: 1, Queued: 1, Candidate: true},
			offNode("spare", 2),
		},
		pendingSlack: slackOf(50),
	}
	c.Tick(0, ctl)
	if len(ctl.ons) != 1 || ctl.ons[0] != "spare" {
		t.Fatalf("urgent backlog must boot the spare node, got %v", ctl.ons)
	}

	// Without the guard the free slot on "busy" absorbs the backlog
	// and nothing boots.
	blind := &Controller{IdleTimeout: 600, MinOn: 1}
	ctl = &fakeControl{
		nodes: []sim.NodeView{
			{Name: "busy", State: power.On, Slots: 2, Running: 1, Queued: 1, Candidate: true},
			offNode("spare", 2),
		},
		pendingSlack: slackOf(50),
	}
	blind.Tick(0, ctl)
	if len(ctl.ons) != 0 {
		t.Fatalf("SLA-blind controller booted %v", ctl.ons)
	}
}

// carbonCtl builds a validated carbon controller over a constant-dirty
// single-site profile, so every candidacy window is closed.
func dirtyCarbonController(t *testing.T, slackGuard float64) *CarbonController {
	t.Helper()
	profile := carbon.MustProfile(carbon.SiteProfile{Site: "grid", Signal: carbon.Constant{G: 600}})
	c := &CarbonController{
		Profile:          profile,
		CleanG:           150,
		DirtyG:           450,
		IdleTimeout:      600,
		MinOn:            0,
		MaxDeferSec:      3600 * 20,
		DeadlineSlackSec: slackGuard,
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestCarbonControllerExpressBoot: on a dark platform under a closed
// window, a tight pending deadline boots exactly one node as express
// capacity — with its candidacy still revoked, so the deferred batch
// cannot ride the emergency.
func TestCarbonControllerExpressBoot(t *testing.T) {
	c := dirtyCarbonController(t, 450)
	ctl := &fakeControl{
		nodes: []sim.NodeView{
			offNode("n0", 2),
			offNode("n1", 2),
		},
		unplaced:     5, // deferred batch waiting for a window
		pendingSlack: slackOf(200),
	}
	c.Tick(0, ctl)
	if len(ctl.ons) != 1 {
		t.Fatalf("express boot must power exactly one node, got %v", ctl.ons)
	}
	for _, n := range ctl.nodes {
		if n.Candidate {
			t.Fatalf("express node %s kept candidacy: the deferred batch could flood in", n.Name)
		}
	}
}

// TestCarbonControllerGuardKeepsWindowsShut: the SLA guard must not
// force candidacy windows open — deferral discipline survives, only
// shutdowns pause.
func TestCarbonControllerGuardKeepsWindowsShut(t *testing.T) {
	c := dirtyCarbonController(t, 450)
	ctl := &fakeControl{
		nodes: []sim.NodeView{
			onNode("n0", 2, 1, 0),   // serving express traffic
			onNode("n1", 2, 0, 1e4), // idle past every timeout
		},
		unplaced:     5,
		pendingSlack: slackOf(200),
	}
	// Established candidacy state: both revoked by earlier ticks.
	ctl.nodes[0].Candidate = false
	ctl.nodes[1].Candidate = false
	c.Tick(0, ctl)
	for _, n := range ctl.nodes {
		if n.Candidate {
			t.Fatalf("tight slack opened the window on %s", n.Name)
		}
	}
	if len(ctl.offs) != 0 {
		t.Fatalf("shutdowns issued under a tight deadline: %v", ctl.offs)
	}

	// With comfortable slack the dirty-grid idle node is shed
	// immediately (intensity ≥ DirtyG).
	c2 := dirtyCarbonController(t, 450)
	ctl2 := &fakeControl{
		nodes: []sim.NodeView{
			onNode("n0", 2, 1, 0),
			onNode("n1", 2, 0, 1e4),
		},
		pendingSlack: slackOf(9999),
	}
	c2.Tick(0, ctl2)
	if len(ctl2.offs) != 1 || ctl2.offs[0] != "n1" {
		t.Fatalf("comfortable slack must shed the dirty idle node, got %v", ctl2.offs)
	}
}

// TestControllerValidateSLA: negative guards are rejected.
func TestControllerValidateSLA(t *testing.T) {
	bad := &Controller{IdleTimeout: 60, MinOn: 1, DeadlineSlackSec: -1}
	if err := bad.Validate(); err == nil {
		t.Error("negative guard validated (Controller)")
	}
	badC := dirtyCarbonController(t, 0)
	badC.DeadlineSlackSec = -1
	if err := badC.Validate(); err == nil {
		t.Error("negative guard validated (CarbonController)")
	}
}
