package consolidation

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"greensched/internal/estvec"
	"greensched/internal/power"
	"greensched/internal/sched"
	"greensched/internal/sim"
)

func vec(name string, cores, free float64) *estvec.Vector {
	return estvec.New(name).
		Set(sched.TagCores(), cores).
		Set(estvec.TagFreeCores, free).
		SetBool(estvec.TagActive, true)
}

func TestPolicyConcentrates(t *testing.T) {
	p := Policy{}
	halfFull := vec("a", 4, 2)
	empty := vec("b", 4, 4)
	if !p.Less(halfFull, empty) {
		t.Error("a loaded node must rank before an empty one")
	}
	if p.Less(empty, halfFull) {
		t.Error("ordering must be asymmetric")
	}
}

func TestPolicyTightFitTieBreak(t *testing.T) {
	p := Policy{}
	small := vec("small", 3, 1) // busy 2, one slot left
	large := vec("large", 6, 4) // busy 2, four slots left
	if !p.Less(small, large) {
		t.Error("equal load: the tighter node must fill first")
	}
}

func TestPolicyNameTieBreakIsStable(t *testing.T) {
	p := Policy{}
	a := vec("alpha", 4, 2)
	b := vec("beta", 4, 2)
	if !p.Less(a, b) || p.Less(b, a) {
		t.Error("identical load/fit must order by name")
	}
}

func TestPolicyWithoutCapacityTag(t *testing.T) {
	p := Policy{}
	busy := estvec.New("busy").Set(estvec.TagFreeCores, 0)
	free := estvec.New("free").Set(estvec.TagFreeCores, 2)
	if !p.Less(busy, free) {
		t.Error("without a cores tag, an occupied node still concentrates first")
	}
}

func TestPolicyIsStrictWeakOrder(t *testing.T) {
	// quick property: irreflexive and asymmetric over random vectors.
	p := Policy{}
	f := func(c1, f1, c2, f2 uint8, swapName bool) bool {
		na, nb := "n1", "n2"
		if swapName {
			na, nb = nb, na
		}
		a := vec(na, float64(c1%32), math.Min(float64(f1%32), float64(c1%32)))
		b := vec(nb, float64(c2%32), math.Min(float64(f2%32), float64(c2%32)))
		if p.Less(a, a) || p.Less(b, b) {
			return false // reflexive
		}
		return !(p.Less(a, b) && p.Less(b, a)) // asymmetric
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGreenTieBreakPrefersEfficientNode(t *testing.T) {
	p := GreenTieBreak{}
	eff := vec("eff", 4, 2).Set(estvec.TagGreenPerf, 10).Set(estvec.TagFlops, 1e9)
	hog := vec("hog", 4, 2).Set(estvec.TagGreenPerf, 50).Set(estvec.TagFlops, 1e9)
	if !p.Less(eff, hog) {
		t.Error("equal load: lower power/performance ratio must win")
	}
	loaded := vec("loaded", 4, 1).Set(estvec.TagGreenPerf, 99)
	if !p.Less(loaded, eff) {
		t.Error("load still dominates the green tie-break")
	}
}

func TestControllerValidate(t *testing.T) {
	cases := []Controller{
		{IdleTimeout: 0, MinOn: 1},
		{IdleTimeout: -5, MinOn: 1},
		{IdleTimeout: 10, MinOn: 0},
		{IdleTimeout: 10, MinOn: 1, WakeSlack: -1},
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d (%+v): want error", i, c)
		}
	}
	ok := Controller{IdleTimeout: 10, MinOn: 1}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid controller rejected: %v", err)
	}
}

// fakeControl scripts a platform for Tick unit tests.
type fakeControl struct {
	nodes    []sim.NodeView
	unplaced int
	ons      []string
	offs     []string

	// pendingSlack scripts PendingSlack; nil = no pending deadlines.
	pendingSlack *float64

	// running scripts Running per node; preempts records Preempt calls
	// as "node/taskID"; preemptErr, when set, refuses every Preempt.
	running    map[string][]sim.RunningView
	preempts   []string
	preemptErr error
}

func (f *fakeControl) Nodes() []sim.NodeView { return f.nodes }
func (f *fakeControl) Unplaced() int         { return f.unplaced }

func (f *fakeControl) Running(name string) []sim.RunningView { return f.running[name] }

func (f *fakeControl) Preempt(name string, taskID int) error {
	if f.preemptErr != nil {
		return f.preemptErr
	}
	for i := range f.nodes {
		if f.nodes[i].Name == name {
			f.nodes[i].Running--
			f.nodes[i].QueuedAtRisk = false
			f.preempts = append(f.preempts, fmt.Sprintf("%s/%d", name, taskID))
			return nil
		}
	}
	return fmt.Errorf("unknown %s", name)
}

func (f *fakeControl) PendingSlack() (float64, bool) {
	if f.pendingSlack == nil {
		return 0, false
	}
	return *f.pendingSlack, true
}

func (f *fakeControl) PowerOn(name string) error {
	for i := range f.nodes {
		if f.nodes[i].Name == name {
			f.nodes[i].State = power.Booting
			f.nodes[i].Candidate = true
			f.ons = append(f.ons, name)
			return nil
		}
	}
	return fmt.Errorf("unknown %s", name)
}

func (f *fakeControl) SetCandidate(name string, candidate bool) error {
	for i := range f.nodes {
		if f.nodes[i].Name == name {
			f.nodes[i].Candidate = candidate
			return nil
		}
	}
	return fmt.Errorf("unknown %s", name)
}

func (f *fakeControl) PowerOff(name string) error {
	for i := range f.nodes {
		if f.nodes[i].Name == name {
			if f.nodes[i].Running > 0 || f.nodes[i].Queued > 0 {
				return fmt.Errorf("%s busy", name)
			}
			f.nodes[i].State = power.Off
			f.nodes[i].Candidate = false
			f.offs = append(f.offs, name)
			return nil
		}
	}
	return fmt.Errorf("unknown %s", name)
}

func onNode(name string, slots, running int, idle float64) sim.NodeView {
	return sim.NodeView{Name: name, State: power.On, Slots: slots,
		Running: running, Idle: idle, Candidate: true}
}

func offNode(name string, slots int) sim.NodeView {
	return sim.NodeView{Name: name, State: power.Off, Slots: slots}
}

func TestTickShutsDownIdleNodes(t *testing.T) {
	c := Controller{IdleTimeout: 100, MinOn: 1}
	ctl := &fakeControl{nodes: []sim.NodeView{
		onNode("a", 2, 1, 0),   // busy: stays
		onNode("b", 2, 0, 150), // idle past timeout: off
		onNode("c", 2, 0, 50),  // idle under timeout: stays
	}}
	c.Tick(0, ctl)
	if len(ctl.offs) != 1 || ctl.offs[0] != "b" {
		t.Errorf("offs = %v, want [b]", ctl.offs)
	}
	if len(ctl.ons) != 0 {
		t.Errorf("unexpected power-ons %v", ctl.ons)
	}
}

func TestTickRespectsMinOn(t *testing.T) {
	c := Controller{IdleTimeout: 100, MinOn: 2}
	ctl := &fakeControl{nodes: []sim.NodeView{
		onNode("a", 2, 0, 500),
		onNode("b", 2, 0, 500),
		onNode("c", 2, 0, 500),
	}}
	c.Tick(0, ctl)
	if len(ctl.offs) != 1 {
		t.Errorf("offs = %v, want exactly one (MinOn=2 of 3)", ctl.offs)
	}
}

func TestTickWakesForBacklog(t *testing.T) {
	c := Controller{IdleTimeout: 100, MinOn: 1}
	ctl := &fakeControl{
		nodes: []sim.NodeView{
			onNode("a", 2, 2, 0), // saturated
			offNode("b", 2),
			offNode("c", 2),
			offNode("d", 2),
		},
		unplaced: 3,
	}
	c.Tick(0, ctl)
	// 3 unplaced need 2 nodes of 2 slots.
	if len(ctl.ons) != 2 {
		t.Errorf("ons = %v, want two wake-ups for 3 unplaced tasks", ctl.ons)
	}
}

func TestTickWakeSlack(t *testing.T) {
	c := Controller{IdleTimeout: 100, MinOn: 1, WakeSlack: 2}
	ctl := &fakeControl{
		nodes: []sim.NodeView{
			onNode("a", 2, 2, 0),
			offNode("b", 1),
			offNode("c", 1),
			offNode("d", 1),
		},
		unplaced: 1,
	}
	c.Tick(0, ctl)
	if len(ctl.ons) != 3 {
		t.Errorf("ons = %v, want 3 (1 unplaced + 2 slack over 1-slot nodes)", ctl.ons)
	}
}

func TestTickNoWakeWithoutBacklog(t *testing.T) {
	c := Controller{IdleTimeout: 100, MinOn: 1, WakeSlack: 5}
	ctl := &fakeControl{nodes: []sim.NodeView{
		onNode("a", 2, 1, 0),
		offNode("b", 2),
	}}
	c.Tick(0, ctl)
	if len(ctl.ons) != 0 {
		t.Errorf("slack must not wake nodes when nothing is unplaced, got %v", ctl.ons)
	}
}

func TestTickDoesNotRewakeForBootingCapacity(t *testing.T) {
	c := Controller{IdleTimeout: 100, MinOn: 1}
	ctl := &fakeControl{
		nodes: []sim.NodeView{
			onNode("a", 2, 2, 0),
			{Name: "b", State: power.Booting, Slots: 2, Candidate: true},
			offNode("c", 2),
		},
		unplaced: 2,
	}
	c.Tick(0, ctl)
	if len(ctl.ons) != 0 {
		t.Errorf("booting capacity already covers the backlog; got wake-ups %v", ctl.ons)
	}
}

func TestTickNetsQueueAgainstFreeSlots(t *testing.T) {
	c := Controller{IdleTimeout: 100, MinOn: 1}
	ctl := &fakeControl{nodes: []sim.NodeView{
		{Name: "a", State: power.On, Slots: 2, Running: 2, Queued: 3, Candidate: true},
		{Name: "b", State: power.On, Slots: 4, Running: 0, Candidate: true, Idle: 10},
		offNode("c", 2),
	}}
	c.Tick(0, ctl)
	// Queue of 3 on a, but 4 free slots on b absorb future arrivals:
	// no wake needed.
	if len(ctl.ons) != 0 {
		t.Errorf("free capacity covers the queue; got wake-ups %v", ctl.ons)
	}
}

func TestTickDoesNotShutDownBootingNodes(t *testing.T) {
	c := Controller{IdleTimeout: 1, MinOn: 1}
	ctl := &fakeControl{nodes: []sim.NodeView{
		onNode("a", 2, 1, 0),
		{Name: "b", State: power.Booting, Slots: 2, Candidate: true, Idle: 999},
	}}
	c.Tick(0, ctl)
	if len(ctl.offs) != 0 {
		t.Errorf("booting node must not be shut down, got %v", ctl.offs)
	}
}
