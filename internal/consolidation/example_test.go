package consolidation_test

import (
	"fmt"

	"greensched/internal/cluster"
	"greensched/internal/consolidation"
	"greensched/internal/sim"
	"greensched/internal/workload"
)

// Example runs the related-work baseline end to end: concentration
// placement plus an idle-timeout power controller on a workload with a
// long idle gap.
func Example() {
	first, _ := workload.BurstThenRate{Total: 24, Burst: 24, Ops: 4.5e11}.Tasks()
	second, _ := workload.BurstThenRate{Total: 24, Burst: 6, Rate: 0.25, Ops: 4.5e11}.Tasks()
	tasks := workload.Merge(first, workload.Shift(second, 1800))

	ctl := &consolidation.Controller{IdleTimeout: 600, MinOn: 2}
	if err := ctl.Validate(); err != nil {
		panic(err)
	}
	res, err := sim.Run(sim.Config{
		Platform:     cluster.PaperPlatform(),
		Policy:       consolidation.Policy{},
		Tasks:        tasks,
		Seed:         1,
		OnControl:    ctl.Tick,
		ControlEvery: 60,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("completed %d tasks; nodes were shut down: %v\n",
		res.Completed, res.Shutdowns > 0)
	// Output: completed 48 tasks; nodes were shut down: true
}
