package consolidation

import (
	"math"
	"sort"

	"greensched/internal/power"
	"greensched/internal/sched"
	"greensched/internal/sim"
)

// preemptForUrgent reclaims a slot for deadline traffic by
// checkpointing the cheapest safe victim on a node whose queue holds
// at-risk deadline work (sim.NodeView.QueuedAtRisk). An elected
// request never migrates — the SED keeps its problem — so
// express-booting a dark node cannot rescue work already queued behind
// full slots; displacing a running victim in place can, and usually
// for fewer joules than one boot transient. Victims are ranked by
// sched.VictimLess (lowest value density, most slack first) and a
// candidate is taken only when its re-executed work costs no more than
// the cheapest boot alternative (or nothing is left to boot); the
// simulator's own safety calculus still rejects any victim whose
// deadline the restart would breach. Returns true when a victim was
// displaced.
func preemptForUrgent(now float64, ctl sim.Control, nodes []sim.NodeView) bool {
	bootJ := math.Inf(1)
	for _, n := range nodes {
		if n.State == power.Off {
			if j := n.BootSec * n.BootW; j < bootJ {
				bootJ = j
			}
		}
	}
	type candidate struct {
		node  string
		id    int
		costJ float64
		view  sched.VictimView
	}
	var cands []candidate
	for _, n := range nodes {
		if n.State != power.On || !n.QueuedAtRisk || n.Running < n.Slots {
			continue
		}
		for _, rv := range ctl.Running(n.Name) {
			view := sched.NewVictimView(sched.TaskView{
				ID: rv.TaskID, Ops: rv.Ops, Deadline: rv.Deadline, Value: rv.ValueUSD,
			}, now, rv.RemainingSec)
			cands = append(cands, candidate{node: n.Name, id: rv.TaskID, costJ: rv.RedoSec * n.TaskW, view: view})
		}
	}
	sort.SliceStable(cands, func(a, b int) bool { return sched.VictimLess(cands[a].view, cands[b].view) })
	for _, c := range cands {
		if c.costJ > bootJ {
			continue // torching this much batch beats nothing: boot instead
		}
		if ctl.Preempt(c.node, c.id) == nil {
			return true
		}
	}
	return false
}
