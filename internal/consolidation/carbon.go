package consolidation

import (
	"fmt"
	"sort"

	"greensched/internal/carbon"
	"greensched/internal/power"
	"greensched/internal/sim"
)

// CarbonController extends the idle-shutdown controller with grid
// awareness: it shifts deferrable work and shutdown windows into
// low-carbon periods.
//
// Because an elected request never migrates (the SED keeps its
// problem, §III-A step 5), temporal shifting must happen at election
// time: the controller opens and closes *candidacy windows*. A node is
// electable only while its site's grid is clean (intensity ≤ CleanG);
// outside the window every candidacy is revoked, so new arrivals stay
// unplaced and simply wait — work already accepted keeps running. The
// wait is bounded: once unplaced work has aged MaxDeferSec, the
// controller force-opens every site until the backlog drains, which
// caps the makespan cost of being green.
//
//   - Wake: when a window is open and backlog exists, Off nodes at
//     open sites boot, cleanest grid first.
//   - Shutdown: idle nodes on a dirty grid (intensity ≥ DirtyG) are
//     shut down immediately — every idle second there burns the idle
//     floor at peak grams — others after IdleTimeout; dirtiest site
//     first; MinOn nodes stay powered for fast window-open reaction.
//
// Pair it with Config.RetryEvery of a minute or so: deferred requests
// re-try election on that cadence.
type CarbonController struct {
	// Profile maps each node's cluster to its site's grid signal.
	Profile *carbon.Profile

	// CleanG is the intensity (gCO2/kWh) at or below which a site's
	// candidacy window is open. DirtyG is the level at or above which
	// idle capacity is shed immediately; between the two, idle nodes
	// get the normal IdleTimeout grace. CleanG < DirtyG.
	CleanG float64
	DirtyG float64

	// IdleTimeout powers an idle node off after this much workless
	// time while its grid is below DirtyG (seconds).
	IdleTimeout float64
	// MinOn is the number of nodes always kept powered on (0 allows a
	// fully dark platform between windows; booting costs BootSec on
	// window open).
	MinOn int
	// WakeSlack powers on this many extra slots beyond the observed
	// backlog when waking nodes.
	WakeSlack int
	// MaxDeferSec bounds how long unplaced work may wait for a clean
	// window before every site is force-opened.
	MaxDeferSec float64

	// DeadlineSlackSec, when positive, subordinates energy savings to
	// admitted SLAs: whenever the tightest pending deadline margin
	// (sim Control.PendingSlack) falls to or below this guard,
	// shutdowns pause and — if no node is powered — the cleanest Off
	// node boots as *express capacity* for the deadline traffic
	// (which reaches it through the sla.Config.UrgentBypass lane).
	// The candidacy windows themselves stay closed, so deferred batch
	// work cannot ride the emergency: carbon deferral consumes only a
	// task's surplus slack, never seconds the deadline needs, and the
	// grid-window discipline survives intact. 0 keeps the SLA-blind
	// behaviour.
	DeadlineSlackSec float64

	// PreemptBatch, with the simulator's Config.Preemption enabled,
	// lets the urgent path checkpoint a cheap running victim on a node
	// whose queue holds at-risk deadline work instead of express-
	// booting a dark node the queued work could never migrate to —
	// chosen when the re-executed work costs fewer joules than a boot
	// transient.
	PreemptBatch bool

	deferring  bool
	deferSince float64
}

// Validate checks the controller parameters.
func (c *CarbonController) Validate() error {
	switch {
	case c.Profile == nil:
		return fmt.Errorf("consolidation: carbon controller needs a profile")
	case c.CleanG < 0 || c.DirtyG <= c.CleanG:
		return fmt.Errorf("consolidation: thresholds clean=%v dirty=%v must satisfy 0 ≤ clean < dirty", c.CleanG, c.DirtyG)
	case c.IdleTimeout <= 0:
		return fmt.Errorf("consolidation: IdleTimeout %v must be positive", c.IdleTimeout)
	case c.MinOn < 0:
		return fmt.Errorf("consolidation: MinOn %d must be non-negative", c.MinOn)
	case c.WakeSlack < 0:
		return fmt.Errorf("consolidation: WakeSlack %d must be non-negative", c.WakeSlack)
	case c.MaxDeferSec <= 0:
		return fmt.Errorf("consolidation: MaxDeferSec %v must be positive (it bounds the makespan cost)", c.MaxDeferSec)
	case c.DeadlineSlackSec < 0:
		return fmt.Errorf("consolidation: DeadlineSlackSec %v must be non-negative", c.DeadlineSlackSec)
	}
	return nil
}

// Tick implements the carbon-aware power-management step; install it
// as sim.Config.OnControl.
func (c *CarbonController) Tick(now float64, ctl sim.Control) {
	nodes := ctl.Nodes()
	intensity := make([]float64, len(nodes))
	for i, n := range nodes {
		intensity[i] = c.Profile.IntensityAt(n.Cluster, now)
	}

	// Deferral clock: it starts when unplaced work appears and resets
	// when the backlog drains.
	if ctl.Unplaced() > 0 {
		if !c.deferring {
			c.deferring = true
			c.deferSince = now
		}
	} else {
		c.deferring = false
	}
	forced := c.deferring && now-c.deferSince >= c.MaxDeferSec

	// SLA guard: an admitted deadline inside the guard margin trumps
	// energy savings (but not the windows — deferred work stays
	// deferred; the express lane only needs powered capacity).
	urgent := false
	if c.DeadlineSlackSec > 0 {
		if slack, ok := ctl.PendingSlack(); ok && slack <= c.DeadlineSlackSec {
			urgent = true
		}
	}

	open := func(i int) bool { return forced || intensity[i] <= c.CleanG }

	// Candidacy follows the window.
	for i, n := range nodes {
		if n.Candidate != open(i) {
			_ = ctl.SetCandidate(n.Name, open(i))
		}
	}

	// Wake path: cover the net backlog with nodes at open sites,
	// cleanest grid first. Only unplaced work counts as backlog: a
	// queued task never migrates (the SED keeps its problem), so
	// booting another node for it would burn idle joules on capacity
	// that can never take the work.
	backlog := ctl.Unplaced()
	free, inbound, powered := 0, 0, 0
	for i, n := range nodes {
		if n.State == power.On {
			powered++
		}
		if !open(i) {
			continue
		}
		switch n.State {
		case power.On:
			if f := n.Slots - n.Running; f > 0 {
				free += f
			}
		case power.Booting:
			inbound += n.Slots
		}
	}
	order := make([]int, len(nodes))
	for i := range order {
		order[i] = i
	}
	if need := backlog - free - inbound; need > 0 {
		need += c.WakeSlack
		sort.SliceStable(order, func(a, b int) bool { return intensity[order[a]] < intensity[order[b]] })
		for _, i := range order {
			if need <= 0 {
				break
			}
			if !open(i) || nodes[i].State.Usable() {
				continue
			}
			if err := ctl.PowerOn(nodes[i].Name); err == nil {
				need -= nodes[i].Slots
			}
		}
	}

	// SLA express boot: a deadline is inside the guard margin and the
	// platform is dark — boot the cleanest node so the bypass lane has
	// somewhere to land. Shutdowns pause while the deadline is tight;
	// shedding capacity now would spend the very seconds it needs.
	// Deadline work already stuck in a full node's queue is instead
	// rescued in place by preempting a cheap victim (fresh capacity
	// could never take it).
	if urgent {
		if c.PreemptBatch && preemptForUrgent(now, ctl, nodes) {
			return
		}
		usable := 0
		for _, n := range nodes {
			if n.State.Usable() {
				usable++
			}
		}
		if usable == 0 {
			sort.SliceStable(order, func(a, b int) bool { return intensity[order[a]] < intensity[order[b]] })
			for _, i := range order {
				if nodes[i].State == power.Off && ctl.PowerOn(nodes[i].Name) == nil {
					// PowerOn restores candidacy; re-close it when the
					// site's window is shut so the deferred backlog
					// cannot ride the emergency boot — only the bypass
					// lane may use this node.
					if !open(i) {
						_ = ctl.SetCandidate(nodes[i].Name, false)
					}
					break
				}
			}
		}
		return
	}

	// Shutdown path: dirty-grid idle nodes go down immediately,
	// others after the timeout; dirtiest site first, keeping MinOn
	// nodes powered.
	sort.SliceStable(order, func(a, b int) bool { return intensity[order[a]] > intensity[order[b]] })
	for _, i := range order {
		if powered <= c.MinOn {
			break
		}
		n := nodes[i]
		if n.State != power.On || n.Running > 0 || n.Queued > 0 {
			continue
		}
		// Never shed an electable node while backlog is waiting for
		// it — the wake path counted its free slots.
		if open(i) && backlog > 0 {
			continue
		}
		grace := c.IdleTimeout
		if intensity[i] >= c.DirtyG {
			grace = 0
		}
		if n.Idle < grace {
			continue
		}
		if err := ctl.PowerOff(n.Name); err == nil {
			powered--
		}
	}
}
