package consolidation

import (
	"testing"

	"greensched/internal/carbon"
	"greensched/internal/cluster"
	"greensched/internal/power"
	"greensched/internal/sched"
	"greensched/internal/sim"
	"greensched/internal/workload"
)

func twoSiteProfile() *carbon.Profile {
	p := carbon.MustProfile(carbon.SiteProfile{Site: "dirty", Signal: carbon.Constant{G: 600}})
	if err := p.SetCluster("green", carbon.SiteProfile{Site: "clean", Signal: carbon.Constant{G: 50}}); err != nil {
		panic(err)
	}
	return p
}

func newCarbonController(p *carbon.Profile) *CarbonController {
	return &CarbonController{
		Profile:     p,
		CleanG:      200,
		DirtyG:      500,
		IdleTimeout: 600,
		MinOn:       1,
		MaxDeferSec: 3600,
	}
}

func TestCarbonControllerValidate(t *testing.T) {
	if err := newCarbonController(twoSiteProfile()).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*CarbonController{
		{CleanG: 100, DirtyG: 500, IdleTimeout: 1, MinOn: 1, MaxDeferSec: 1}, // no profile
		{Profile: twoSiteProfile(), CleanG: 500, DirtyG: 100, IdleTimeout: 1, MinOn: 1, MaxDeferSec: 1},
		{Profile: twoSiteProfile(), CleanG: 100, DirtyG: 500, IdleTimeout: 0, MinOn: 1, MaxDeferSec: 1},
		{Profile: twoSiteProfile(), CleanG: 100, DirtyG: 500, IdleTimeout: 1, MinOn: -1, MaxDeferSec: 1},
		{Profile: twoSiteProfile(), CleanG: 100, DirtyG: 500, IdleTimeout: 1, MinOn: 1, MaxDeferSec: 0},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("case %d must be rejected", i)
		}
	}
}

func TestCarbonControllerClosesWindowAndDefers(t *testing.T) {
	c := newCarbonController(twoSiteProfile())
	ctl := &fakeControl{
		nodes: []sim.NodeView{
			{Name: "d0", Cluster: "coal", State: power.On, Slots: 2, Running: 2, Candidate: true},
			{Name: "d1", Cluster: "coal", State: power.Off, Slots: 2},
		},
		unplaced: 4,
	}
	// Dirty period: candidacy revoked, no wake — the backlog defers.
	c.Tick(0, ctl)
	if len(ctl.ons) != 0 {
		t.Fatalf("dirty-period backlog woke %v", ctl.ons)
	}
	if ctl.nodes[0].Candidate {
		t.Error("window must close: d0 still a candidate")
	}
	// Still deferring one tick before the bound.
	c.Tick(c.MaxDeferSec-1, ctl)
	if len(ctl.ons) != 0 {
		t.Fatalf("backlog released early: %v", ctl.ons)
	}
	// Bound reached: the forced release re-opens candidacy and wakes
	// the off node.
	c.Tick(c.MaxDeferSec, ctl)
	if len(ctl.ons) != 1 || ctl.ons[0] != "d1" {
		t.Fatalf("forced release woke %v, want [d1]", ctl.ons)
	}
	if !ctl.nodes[0].Candidate || !ctl.nodes[1].Candidate {
		t.Error("forced release must restore candidacy")
	}
}

func TestCarbonControllerWakesCleanestSiteFirst(t *testing.T) {
	c := newCarbonController(twoSiteProfile())
	ctl := &fakeControl{
		nodes: []sim.NodeView{
			{Name: "d0", Cluster: "coal", State: power.On, Slots: 2, Running: 2, Candidate: true},
			{Name: "d1", Cluster: "coal", State: power.Off, Slots: 4},
			{Name: "g0", Cluster: "green", State: power.Off, Slots: 2},
			{Name: "g1", Cluster: "green", State: power.Off, Slots: 2},
		},
		unplaced: 3,
	}
	c.Tick(0, ctl)
	// Need 3 slots: both green nodes (2+2) cover it; the dirty d1
	// must stay off even though it alone has 4 slots.
	if len(ctl.ons) != 2 || ctl.ons[0] != "g0" || ctl.ons[1] != "g1" {
		t.Fatalf("woke %v, want the clean-site nodes [g0 g1]", ctl.ons)
	}
	// The clean site's window is open, the dirty site's closed.
	for _, n := range ctl.nodes {
		want := n.Cluster == "green"
		if n.Candidate != want {
			t.Errorf("%s candidacy %v, want %v", n.Name, n.Candidate, want)
		}
	}
}

// TestCarbonControllerQueuedBacklogTriggersNoBoots: queued work never
// migrates (the SED keeps its problem), so a backlog that exists only
// inside SED queues must not boot nodes — they could never take the
// work and would only burn idle energy.
func TestCarbonControllerQueuedBacklogTriggersNoBoots(t *testing.T) {
	c := newCarbonController(twoSiteProfile())
	ctl := &fakeControl{
		nodes: []sim.NodeView{
			// Clean site (window open): one saturated node with a deep
			// queue, one node powered off.
			{Name: "g0", Cluster: "green", State: power.On, Slots: 2, Running: 2, Queued: 5, Candidate: true},
			{Name: "g1", Cluster: "green", State: power.Off, Slots: 2},
		},
		unplaced: 0,
	}
	c.Tick(0, ctl)
	if len(ctl.ons) != 0 {
		t.Fatalf("queued-only backlog booted %v; queued work cannot migrate there", ctl.ons)
	}
	// Genuinely unplaced work still wakes capacity.
	ctl.unplaced = 1
	c.Tick(60, ctl)
	if len(ctl.ons) != 1 || ctl.ons[0] != "g1" {
		t.Fatalf("unplaced backlog woke %v, want [g1]", ctl.ons)
	}
}

// TestCarbonControllerPreemptsInsteadOfExpressBoot: with PreemptBatch
// on, deadline work stuck behind a full node's slots is rescued by
// checkpointing the cheap batch victim in place — no express boot.
func TestCarbonControllerPreemptsInsteadOfExpressBoot(t *testing.T) {
	c := newCarbonController(twoSiteProfile())
	c.DeadlineSlackSec = 300
	c.PreemptBatch = true
	slack := 100.0
	ctl := &fakeControl{
		nodes: []sim.NodeView{
			{Name: "g0", Cluster: "green", State: power.On, Slots: 1, Running: 1, Queued: 1,
				Candidate: true, QueuedAtRisk: true, TaskW: 10, BootSec: 120, BootW: 170},
			{Name: "g1", Cluster: "green", State: power.Off, Slots: 1, BootSec: 120, BootW: 170},
		},
		running: map[string][]sim.RunningView{
			"g0": {{TaskID: 7, Class: "batch", ValueUSD: 0.05, Ops: 1e12, RemainingSec: 500, RedoSec: 20}},
		},
		pendingSlack: &slack,
	}
	c.Tick(0, ctl)
	// Redo cost 20 s × 10 W = 200 J ≪ one 120 s × 170 W boot: preempt.
	if len(ctl.preempts) != 1 || ctl.preempts[0] != "g0/7" {
		t.Fatalf("preempts %v, want [g0/7]", ctl.preempts)
	}
	if len(ctl.ons) != 0 {
		t.Fatalf("express-booted %v although preemption reclaimed a slot", ctl.ons)
	}
}

func TestCarbonControllerShutdownWindows(t *testing.T) {
	c := newCarbonController(twoSiteProfile())
	ctl := &fakeControl{
		nodes: []sim.NodeView{
			{Name: "d0", Cluster: "coal", State: power.On, Slots: 2, Candidate: true, Idle: 5},
			{Name: "g0", Cluster: "green", State: power.On, Slots: 2, Candidate: true, Idle: 5},
			{Name: "g1", Cluster: "green", State: power.On, Slots: 2, Candidate: true, Idle: 700},
		},
	}
	c.Tick(0, ctl)
	// d0 idles on a 600 g grid → immediate shutdown; g0 idles on a
	// clean grid below the timeout → stays; g1 exceeded the timeout →
	// down, but MinOn=1 keeps the last node powered.
	if len(ctl.offs) != 2 || ctl.offs[0] != "d0" || ctl.offs[1] != "g1" {
		t.Fatalf("shut down %v, want [d0 g1]", ctl.offs)
	}
	for _, n := range ctl.nodes {
		if n.Name == "g0" && n.State != power.On {
			t.Error("g0 must survive as the MinOn floor")
		}
	}
}

// TestCarbonControllerEndToEnd runs the controller inside the real
// simulator on a diurnal grid: a burst submitted in the dirty evening
// must wait for the clean midday window and still complete in full.
func TestCarbonControllerEndToEnd(t *testing.T) {
	d := carbon.Diurnal{MeanG: 300, AmplitudeG: 250, CleanHour: 13}
	profile := carbon.MustProfile(carbon.SiteProfile{Site: "solar", Signal: d})
	c := &CarbonController{
		Profile:     profile,
		CleanG:      150,
		DirtyG:      450,
		IdleTimeout: 1200,
		MinOn:       1,
		MaxDeferSec: 24 * 3600,
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// Burst at 20:00 (intensity ≈ 540: dirty, window closed).
	burst, err := workload.BurstThenRate{Total: 60, Burst: 60, Ops: 4.5e11}.Tasks()
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(sim.Config{
		Platform:     cluster.MustPlatform(cluster.NewNodes("taurus", 4)),
		Policy:       sched.New(sched.Carbon),
		Tasks:        workload.Shift(burst, 20*3600),
		Explore:      true,
		Seed:         1,
		Carbon:       profile,
		OnControl:    c.Tick,
		ControlEvery: 300,
		RetryEvery:   60,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 60 {
		t.Fatalf("completed %d of 60", res.Completed)
	}
	if res.Boots == 0 {
		t.Error("controller never booted capacity for the deferred burst")
	}
	// Every task must have started inside the clean window (the
	// intensity at its start below the threshold, with a little slack
	// for the tick cadence), i.e. deferred ≈13.5 h into next midday.
	for _, rec := range res.Records {
		if g := d.IntensityAt(rec.Start); g > c.CleanG*1.2 {
			t.Fatalf("task %d started at t=%.0f with intensity %.0f g/kWh (window closed)",
				rec.ID, rec.Start, g)
		}
	}
	if w := res.MeanWait(); w < 10*3600 {
		t.Errorf("mean wait %.0f s; the evening burst should defer into next midday", w)
	}
}
