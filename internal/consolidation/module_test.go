package consolidation

import (
	"testing"

	"greensched/internal/cluster"
	"greensched/internal/power"
	"greensched/internal/sched"
	"greensched/internal/sim"
	"greensched/internal/workload"
)

func TestModuleInitValidatesController(t *testing.T) {
	if err := (&Module{}).Init(nil); err == nil {
		t.Error("nil controller accepted")
	}
	bad := &Module{Controller: &Controller{IdleTimeout: -1, MinOn: 1}}
	if err := bad.Init(nil); err == nil {
		t.Error("invalid controller accepted")
	}
	ok := &Module{Controller: &Controller{IdleTimeout: 10, MinOn: 1}}
	if err := ok.Init(nil); err != nil {
		t.Errorf("valid controller rejected: %v", err)
	}
}

func TestModuleTickDelegates(t *testing.T) {
	// A drained, long-idle node must be shut down through the module
	// path exactly as through the legacy OnControl hook.
	ctl := &fakeControl{nodes: []sim.NodeView{
		{Name: "a", State: power.On, Slots: 2, Idle: 500, Candidate: true},
		{Name: "b", State: power.On, Slots: 2, Idle: 500, Candidate: true},
	}}
	m := &Module{Controller: &Controller{IdleTimeout: 300, MinOn: 1}}
	if err := m.Init(nil); err != nil {
		t.Fatal(err)
	}
	m.OnTick(1000, ctl)
	if len(ctl.offs) != 1 {
		t.Fatalf("module tick powered off %v, want exactly one node", ctl.offs)
	}
}

// TestModulePathMatchesLegacyHook runs the identical consolidation
// scenario once through Config.OnControl and once as a Module and
// requires the byte-identical Result — the controller cannot tell
// which mount it runs on.
func TestModulePathMatchesLegacyHook(t *testing.T) {
	tasks, err := workload.BurstThenRate{Total: 30, Burst: 6, Rate: 0.02, Ops: 4e11}.Tasks()
	if err != nil {
		t.Fatal(err)
	}
	platform := func() *cluster.Platform {
		return cluster.MustPlatform(cluster.NewNodes("taurus", 2), cluster.NewNodes("sagittaire", 2))
	}
	run := func(modular bool) *sim.Result {
		ctl := &Controller{IdleTimeout: 60, MinOn: 1}
		cfg := sim.Config{
			Platform:     platform(),
			Policy:       sched.New(sched.GreenPerf),
			Tasks:        tasks,
			Explore:      true,
			Seed:         11,
			ControlEvery: 30,
		}
		if modular {
			cfg.Modules = []sim.Module{&Module{Controller: ctl}}
		} else {
			cfg.OnControl = ctl.Tick
		}
		res, err := sim.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	legacy, mod := run(false), run(true)
	if legacy.EnergyJ != mod.EnergyJ || legacy.Makespan != mod.Makespan ||
		legacy.Boots != mod.Boots || legacy.Shutdowns != mod.Shutdowns {
		t.Fatalf("module path diverged from legacy hook:\nlegacy: E=%v makespan=%v boots=%d shutdowns=%d\nmodule: E=%v makespan=%v boots=%d shutdowns=%d",
			legacy.EnergyJ, legacy.Makespan, legacy.Boots, legacy.Shutdowns,
			mod.EnergyJ, mod.Makespan, mod.Boots, mod.Shutdowns)
	}
	if mod.Shutdowns == 0 {
		t.Error("scenario never exercised the controller (no shutdowns)")
	}
}
