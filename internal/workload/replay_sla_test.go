package workload

import (
	"strings"
	"testing"
)

// TestParseTraceSLAColumns: the optional deadline/value/class columns
// parse positionally, with the deadline read relative to submission.
func TestParseTraceSLAColumns(t *testing.T) {
	in := `# submit,ops,pref,deadline,value,class
0,1e9
10,2e9,0.5
20,3e9,0,600
30,4e9,-0.5,1800,2.5
40,5e9,0,0,0.25,interactive
`
	tasks, err := ParseTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 5 {
		t.Fatalf("len = %d", len(tasks))
	}
	if tasks[0].Deadline != 0 || tasks[1].Deadline != 0 {
		t.Errorf("short rows must carry no deadline: %+v %+v", tasks[0], tasks[1])
	}
	if tasks[2].Deadline != 620 {
		t.Errorf("deadline must be submit-relative: got %v, want 620", tasks[2].Deadline)
	}
	if tasks[3].Deadline != 1830 || tasks[3].Value != 2.5 {
		t.Errorf("row 3 = %+v", tasks[3])
	}
	if tasks[4].Deadline != 0 || tasks[4].Value != 0.25 || tasks[4].Class != "interactive" {
		t.Errorf("row 4 = %+v (zero deadline column means none)", tasks[4])
	}
}

// TestTraceRoundTripSLA: WriteTrace → ParseTrace preserves the SLA
// annotations, including class names and relative deadlines.
func TestTraceRoundTripSLA(t *testing.T) {
	orig, err := BurstThenRate{
		Total: 6, Burst: 2, Rate: 1, Ops: 1e9,
		Class: "deadline", Value: 0.5, RelDeadline: 900,
	}.Tasks()
	if err != nil {
		t.Fatal(err)
	}
	orig[1].Pref = 0.25
	orig[3].Class = "" // mixed rows: this one degrades to a value column
	var b strings.Builder
	if err := WriteTrace(&b, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ParseTrace(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("%v\ntrace:\n%s", err, b.String())
	}
	if len(back) != len(orig) {
		t.Fatalf("round trip lost tasks: %d vs %d", len(back), len(orig))
	}
	for i := range orig {
		got, want := back[i], orig[i]
		if got.Submit != want.Submit || got.Ops != want.Ops || got.Pref != want.Pref ||
			got.Deadline != want.Deadline || got.Value != want.Value || got.Class != want.Class {
			t.Errorf("task %d mismatch:\n got %+v\nwant %+v", i, got, want)
		}
	}
}

// TestParseTraceSLAMalformed: every malformed SLA field must be
// rejected with its line number, not silently zeroed.
func TestParseTraceSLAMalformed(t *testing.T) {
	cases := []struct {
		in   string
		line string
	}{
		{"0,1e9,0,bad\n", "line 1"},                   // unparsable deadline
		{"0,1e9,0,-5\n", "line 1"},                    // negative deadline
		{"5,1e9,0,600,x\n", "line 1"},                 // unparsable value
		{"5,1e9,0,600,-2\n", "line 1"},                // negative value (Validate)
		{"0,1e9\n5,1e9,0,600,1,c,extra\n", "line 2"},  // 7 fields
		{"0,1e9\n# ok\n5,1e9,0,600,zz,c\n", "line 3"}, // bad value with class
	}
	for _, c := range cases {
		_, err := ParseTrace(strings.NewReader(c.in))
		if err == nil {
			t.Errorf("%q: accepted", c.in)
			continue
		}
		if !strings.Contains(err.Error(), c.line) {
			t.Errorf("%q: error %q does not name %s", c.in, err, c.line)
		}
	}
}

// TestWriteTraceRejectsUnwritableClass: class names that would corrupt
// the CSV dialect are refused instead of round-tripping wrong.
func TestWriteTraceRejectsUnwritableClass(t *testing.T) {
	tasks := []Task{{ID: 0, Ops: 1e9, Submit: 0, Class: "a,b"}}
	var b strings.Builder
	if err := WriteTrace(&b, tasks); err == nil {
		t.Error("comma-bearing class written without error")
	}
}

// TestTaskValidateSLA: the new fields are screened like the old ones.
func TestTaskValidateSLA(t *testing.T) {
	if err := (Task{Ops: 1, Submit: 5, Deadline: 5}).Validate(); err == nil {
		t.Error("deadline at submit accepted")
	}
	if err := (Task{Ops: 1, Submit: 0, Deadline: -1}).Validate(); err == nil {
		t.Error("negative deadline accepted")
	}
	if err := (Task{Ops: 1, Submit: 0, Value: -0.5}).Validate(); err == nil {
		t.Error("negative value accepted")
	}
	if err := (Task{Ops: 1, Submit: 5, Deadline: 6, Value: 1, Class: "x"}).Validate(); err != nil {
		t.Errorf("valid SLA task rejected: %v", err)
	}
}

// TestShiftMovesDeadlines: Shift must keep deadlines on the same
// timeline as submissions.
func TestShiftMovesDeadlines(t *testing.T) {
	tasks := []Task{
		{ID: 0, Ops: 1, Submit: 0, Deadline: 100},
		{ID: 1, Ops: 1, Submit: 10}, // best-effort stays deadline-free
	}
	out := Shift(tasks, 50)
	if out[0].Submit != 50 || out[0].Deadline != 150 {
		t.Errorf("shifted deadline task = %+v", out[0])
	}
	if out[1].Deadline != 0 {
		t.Errorf("best-effort task gained a deadline: %+v", out[1])
	}
}
