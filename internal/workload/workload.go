// Package workload models the paper's client workloads: independent
// CPU-bound tasks submitted in a burst phase followed by a continuous
// phase at a fixed rate (§IV-A), plus Poisson arrivals and the
// closed-loop ("capacity tracking") client of §IV-C.
package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"greensched/internal/core"
)

// Task is one client request: a single-core CPU-bound problem of Ops
// flops. The paper's reference task is "1e8 successive additions"; Ops
// carries the calibrated flop count (see DESIGN.md §3).
type Task struct {
	ID     int
	Ops    float64
	Submit float64       // arrival time, seconds
	Pref   core.UserPref // Preference_user attached to the request

	// Deadline is the absolute completion deadline in seconds (same
	// timeline as Submit); 0 means best-effort. Package sla resolves
	// it against the task's class defaults.
	Deadline float64
	// Value is the dollars an on-time completion earns (0 = use the
	// class default, or worthless best-effort work).
	Value float64
	// Class names the task's SLA class ("" = best-effort); see
	// sla.Catalog.
	Class string
}

// Validate reports a descriptive error for malformed tasks.
func (t Task) Validate() error {
	switch {
	case t.Ops <= 0:
		return fmt.Errorf("workload: task %d has non-positive ops", t.ID)
	case t.Submit < 0:
		return fmt.Errorf("workload: task %d submitted at negative time", t.ID)
	case t.Deadline < 0:
		return fmt.Errorf("workload: task %d has negative deadline", t.ID)
	case t.Deadline > 0 && t.Deadline <= t.Submit:
		return fmt.Errorf("workload: task %d deadline %g not after submit %g", t.ID, t.Deadline, t.Submit)
	case t.Value < 0:
		return fmt.Errorf("workload: task %d has negative value", t.ID)
	}
	return nil
}

// BurstThenRate is the §IV-A temporal distribution: "a burst phase,
// when the client submits r simultaneous requests and a continuous
// phase when the client submits requests at an arbitrary rate".
type BurstThenRate struct {
	Total int     // total number of requests
	Burst int     // r: simultaneous requests at t=0
	Rate  float64 // continuous-phase arrivals per second
	Ops   float64 // flops per task
	Pref  core.UserPref

	// SLA annotations applied to every generated task: class name,
	// per-task value, and a deadline RelDeadline seconds after each
	// task's submission (0 = none).
	Class       string
	Value       float64
	RelDeadline float64
}

// Validate reports configuration errors.
func (g BurstThenRate) Validate() error {
	switch {
	case g.Total <= 0:
		return fmt.Errorf("workload: total %d must be positive", g.Total)
	case g.Burst < 0 || g.Burst > g.Total:
		return fmt.Errorf("workload: burst %d outside [0,%d]", g.Burst, g.Total)
	case g.Rate <= 0 && g.Burst < g.Total:
		return fmt.Errorf("workload: continuous phase needs a positive rate")
	case g.Ops <= 0:
		return fmt.Errorf("workload: ops must be positive")
	default:
		return nil
	}
}

// Tasks materializes the arrival schedule. Burst tasks arrive at t=0;
// the remaining Total−Burst tasks arrive every 1/Rate seconds starting
// at 1/Rate.
func (g BurstThenRate) Tasks() ([]Task, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	out := make([]Task, 0, g.Total)
	for i := 0; i < g.Burst; i++ {
		out = append(out, g.task(i, 0))
	}
	period := 0.0
	if g.Rate > 0 {
		period = 1 / g.Rate
	}
	for i := g.Burst; i < g.Total; i++ {
		at := float64(i-g.Burst+1) * period
		out = append(out, g.task(i, at))
	}
	return out, nil
}

func (g BurstThenRate) task(id int, at float64) Task {
	t := Task{ID: id, Ops: g.Ops, Submit: at, Pref: g.Pref,
		Class: g.Class, Value: g.Value}
	if g.RelDeadline > 0 {
		t.Deadline = at + g.RelDeadline
	}
	return t
}

// Poisson generates Total tasks with exponential inter-arrival times
// of mean 1/Rate — the memoryless open-loop load used by robustness
// tests and ablations.
type Poisson struct {
	Total int
	Rate  float64
	Ops   float64
	Pref  core.UserPref
	Seed  int64
}

// Tasks materializes the schedule.
func (g Poisson) Tasks() ([]Task, error) {
	if g.Total <= 0 || g.Rate <= 0 || g.Ops <= 0 {
		return nil, fmt.Errorf("workload: poisson needs positive total, rate and ops")
	}
	rng := rand.New(rand.NewSource(g.Seed))
	out := make([]Task, g.Total)
	at := 0.0
	for i := range out {
		at += rng.ExpFloat64() / g.Rate
		out[i] = Task{ID: i, Ops: g.Ops, Submit: at, Pref: g.Pref}
	}
	return out, nil
}

// Merge interleaves several task schedules (e.g. the two clients of
// §IV-B) into one stream sorted by submit time, re-numbering IDs so
// they stay unique. Ties keep schedule order (client 1 before
// client 2), which keeps multi-client runs deterministic.
func Merge(schedules ...[]Task) []Task {
	var out []Task
	for _, s := range schedules {
		out = append(out, s...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Submit < out[j].Submit })
	for i := range out {
		out[i].ID = i
	}
	return out
}

// PerCore returns the paper's request-count rule: "a number of 10
// client requests per available core" (reqsPerCore=10).
func PerCore(totalCores, reqsPerCore int) int { return totalCores * reqsPerCore }

// Shift returns a copy of tasks with every submit time moved by
// `by` seconds (IDs unchanged). Composing Shift with Merge builds
// multi-phase schedules — e.g. the burst / idle-gap / burst pattern of
// under-utilized platforms (§II-B: "Cloud computing infrastructures
// are seldom fully utilized").
func Shift(tasks []Task, by float64) []Task {
	out := make([]Task, len(tasks))
	for i, t := range tasks {
		t.Submit += by
		if t.Deadline > 0 {
			t.Deadline += by // deadlines ride the same timeline
		}
		out[i] = t
	}
	return out
}
