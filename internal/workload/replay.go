package workload

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"greensched/internal/core"
)

// ParseTrace reads a submission trace in a minimal CSV dialect:
//
//	# comment lines and blank lines are skipped
//	submit_seconds,ops[,preference]
//
// and returns the time-sorted task list. It is the entry point for
// replaying recorded production workloads (the stand-in for the batch
// traces grid sites publish) through the scheduler.
func ParseTrace(r io.Reader) ([]Task, error) {
	scanner := bufio.NewScanner(r)
	var out []Task
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, ",")
		if len(fields) != 2 && len(fields) != 3 {
			return nil, fmt.Errorf("workload: trace line %d: want 2-3 fields, got %d", lineNo, len(fields))
		}
		submit, err := strconv.ParseFloat(strings.TrimSpace(fields[0]), 64)
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: bad submit time: %w", lineNo, err)
		}
		ops, err := strconv.ParseFloat(strings.TrimSpace(fields[1]), 64)
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: bad ops: %w", lineNo, err)
		}
		pref := 0.0
		if len(fields) == 3 {
			pref, err = strconv.ParseFloat(strings.TrimSpace(fields[2]), 64)
			if err != nil {
				return nil, fmt.Errorf("workload: trace line %d: bad preference: %w", lineNo, err)
			}
		}
		task := Task{Ops: ops, Submit: submit, Pref: core.UserPref(pref)}
		if err := task.Validate(); err != nil {
			return nil, fmt.Errorf("workload: trace line %d: %w", lineNo, err)
		}
		out = append(out, task)
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("workload: reading trace: %w", err)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("workload: empty trace")
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Submit < out[j].Submit })
	for i := range out {
		out[i].ID = i
	}
	return out, nil
}

// WriteTrace renders tasks in the ParseTrace format, preferences
// included only when non-zero.
func WriteTrace(w io.Writer, tasks []Task) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# submit_seconds,ops[,preference]")
	for _, t := range tasks {
		if t.Pref != 0 {
			fmt.Fprintf(bw, "%g,%g,%g\n", t.Submit, t.Ops, float64(t.Pref))
		} else {
			fmt.Fprintf(bw, "%g,%g\n", t.Submit, t.Ops)
		}
	}
	return bw.Flush()
}
