package workload

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"greensched/internal/core"
)

// ParseTrace reads a submission trace in a minimal CSV dialect:
//
//	# comment lines and blank lines are skipped
//	submit_seconds,ops[,preference[,deadline_seconds[,value_usd[,class]]]]
//
// and returns the time-sorted task list. It is the entry point for
// replaying recorded production workloads (the stand-in for the batch
// traces grid sites publish) through the scheduler.
//
// The SLA columns are optional and positional: deadline_seconds is the
// completion deadline *relative to the task's submission* (0 = none),
// value_usd the dollars an on-time completion earns, and class the SLA
// class name (see package sla). Older 2- and 3-field traces parse
// unchanged.
func ParseTrace(r io.Reader) ([]Task, error) {
	scanner := bufio.NewScanner(r)
	var out []Task
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, ",")
		if len(fields) < 2 || len(fields) > 6 {
			return nil, fmt.Errorf("workload: trace line %d: want 2-6 fields, got %d", lineNo, len(fields))
		}
		submit, err := strconv.ParseFloat(strings.TrimSpace(fields[0]), 64)
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: bad submit time: %w", lineNo, err)
		}
		ops, err := strconv.ParseFloat(strings.TrimSpace(fields[1]), 64)
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d: bad ops: %w", lineNo, err)
		}
		task := Task{Ops: ops, Submit: submit}
		if len(fields) >= 3 {
			pref, err := strconv.ParseFloat(strings.TrimSpace(fields[2]), 64)
			if err != nil {
				return nil, fmt.Errorf("workload: trace line %d: bad preference: %w", lineNo, err)
			}
			task.Pref = core.UserPref(pref)
		}
		if len(fields) >= 4 {
			rel, err := strconv.ParseFloat(strings.TrimSpace(fields[3]), 64)
			if err != nil {
				return nil, fmt.Errorf("workload: trace line %d: bad deadline: %w", lineNo, err)
			}
			if rel < 0 {
				return nil, fmt.Errorf("workload: trace line %d: negative deadline %g", lineNo, rel)
			}
			if rel > 0 {
				task.Deadline = submit + rel
			}
		}
		if len(fields) >= 5 {
			task.Value, err = strconv.ParseFloat(strings.TrimSpace(fields[4]), 64)
			if err != nil {
				return nil, fmt.Errorf("workload: trace line %d: bad value: %w", lineNo, err)
			}
		}
		if len(fields) == 6 {
			task.Class = strings.TrimSpace(fields[5])
		}
		if err := task.Validate(); err != nil {
			return nil, fmt.Errorf("workload: trace line %d: %w", lineNo, err)
		}
		out = append(out, task)
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("workload: reading trace: %w", err)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("workload: empty trace")
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Submit < out[j].Submit })
	for i := range out {
		out[i].ID = i
	}
	return out, nil
}

// WriteTrace renders tasks in the ParseTrace format, emitting only as
// many trailing optional columns as the task actually uses (deadlines
// are written relative to submission, the way ParseTrace reads them).
func WriteTrace(w io.Writer, tasks []Task) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# submit_seconds,ops[,preference[,deadline_seconds[,value_usd[,class]]]]")
	for _, t := range tasks {
		if strings.ContainsAny(t.Class, ",\n#") {
			return fmt.Errorf("workload: class %q cannot be written to a trace", t.Class)
		}
		cols := 2
		switch {
		case t.Class != "":
			cols = 6
		case t.Value != 0:
			cols = 5
		case t.Deadline != 0:
			cols = 4
		case t.Pref != 0:
			cols = 3
		}
		fmt.Fprintf(bw, "%g,%g", t.Submit, t.Ops)
		if cols >= 3 {
			fmt.Fprintf(bw, ",%g", float64(t.Pref))
		}
		if cols >= 4 {
			rel := 0.0
			if t.Deadline > 0 {
				rel = t.Deadline - t.Submit
			}
			fmt.Fprintf(bw, ",%g", rel)
		}
		if cols >= 5 {
			fmt.Fprintf(bw, ",%g", t.Value)
		}
		if cols == 6 {
			fmt.Fprintf(bw, ",%s", t.Class)
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}
