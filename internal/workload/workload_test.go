package workload

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestTaskValidate(t *testing.T) {
	if err := (Task{ID: 1, Ops: 1e9, Submit: 0}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Task{ID: 1, Ops: 0}).Validate(); err == nil {
		t.Fatal("zero ops accepted")
	}
	if err := (Task{ID: 1, Ops: 1, Submit: -1}).Validate(); err == nil {
		t.Fatal("negative submit accepted")
	}
}

func TestBurstThenRateSchedule(t *testing.T) {
	g := BurstThenRate{Total: 10, Burst: 4, Rate: 2, Ops: 1e9}
	tasks, err := g.Tasks()
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 10 {
		t.Fatalf("len = %d, want 10", len(tasks))
	}
	for i := 0; i < 4; i++ {
		if tasks[i].Submit != 0 {
			t.Fatalf("burst task %d at %v, want 0", i, tasks[i].Submit)
		}
	}
	// Continuous: 0.5 s apart starting at 0.5.
	for i := 4; i < 10; i++ {
		want := float64(i-3) * 0.5
		if math.Abs(tasks[i].Submit-want) > 1e-12 {
			t.Fatalf("task %d at %v, want %v", i, tasks[i].Submit, want)
		}
	}
	// IDs dense and unique.
	for i, task := range tasks {
		if task.ID != i {
			t.Fatalf("task %d has ID %d", i, task.ID)
		}
		if task.Ops != 1e9 {
			t.Fatalf("task %d ops = %v", i, task.Ops)
		}
	}
}

func TestBurstOnlySchedule(t *testing.T) {
	g := BurstThenRate{Total: 5, Burst: 5, Ops: 1e9}
	tasks, err := g.Tasks()
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range tasks {
		if task.Submit != 0 {
			t.Fatal("burst-only schedule must all arrive at 0")
		}
	}
}

func TestBurstThenRateValidation(t *testing.T) {
	bad := []BurstThenRate{
		{Total: 0, Ops: 1},
		{Total: 5, Burst: 6, Ops: 1, Rate: 1},
		{Total: 5, Burst: -1, Ops: 1, Rate: 1},
		{Total: 5, Burst: 2, Rate: 0, Ops: 1}, // continuous phase without rate
		{Total: 5, Burst: 2, Rate: 1, Ops: 0},
	}
	for i, g := range bad {
		if _, err := g.Tasks(); err == nil {
			t.Errorf("case %d: invalid generator accepted: %+v", i, g)
		}
	}
}

func TestPoissonSchedule(t *testing.T) {
	g := Poisson{Total: 1000, Rate: 2, Ops: 1e9, Seed: 7}
	tasks, err := g.Tasks()
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 1000 {
		t.Fatalf("len = %d", len(tasks))
	}
	if !sort.SliceIsSorted(tasks, func(i, j int) bool { return tasks[i].Submit < tasks[j].Submit }) {
		t.Fatal("poisson arrivals must be sorted")
	}
	// Mean inter-arrival ~ 1/2 s: the 1000th arrival lands near 500 s.
	last := tasks[len(tasks)-1].Submit
	if last < 400 || last > 600 {
		t.Fatalf("poisson horizon = %v, want ≈500", last)
	}
	// Determinism.
	again, _ := Poisson{Total: 1000, Rate: 2, Ops: 1e9, Seed: 7}.Tasks()
	for i := range tasks {
		if tasks[i] != again[i] {
			t.Fatal("same seed must reproduce the same schedule")
		}
	}
	if _, err := (Poisson{Total: 0, Rate: 1, Ops: 1}).Tasks(); err == nil {
		t.Fatal("invalid poisson accepted")
	}
}

func TestMergeTwoClients(t *testing.T) {
	c1, _ := BurstThenRate{Total: 3, Burst: 1, Rate: 1, Ops: 1e9}.Tasks()
	c2, _ := BurstThenRate{Total: 3, Burst: 1, Rate: 1, Ops: 2e9}.Tasks()
	merged := Merge(c1, c2)
	if len(merged) != 6 {
		t.Fatalf("len = %d", len(merged))
	}
	if !sort.SliceIsSorted(merged, func(i, j int) bool { return merged[i].Submit < merged[j].Submit }) {
		t.Fatal("merged stream must be time-sorted")
	}
	// Tie at t=0: client 1's task first (stable).
	if merged[0].Ops != 1e9 || merged[1].Ops != 2e9 {
		t.Fatal("stable merge order violated")
	}
	for i, task := range merged {
		if task.ID != i {
			t.Fatal("merge must re-number IDs densely")
		}
	}
}

func TestPerCore(t *testing.T) {
	// Paper: 104 cores × 10 requests/core.
	if got := PerCore(104, 10); got != 1040 {
		t.Fatalf("PerCore = %d, want 1040", got)
	}
}

// Property: schedules are always time-sorted with dense IDs, and the
// continuous phase spans (total-burst)/rate seconds.
func TestPropertyBurstThenRate(t *testing.T) {
	f := func(totalRaw, burstRaw uint8, rateRaw uint16) bool {
		total := int(totalRaw)%200 + 1
		burst := int(burstRaw) % (total + 1)
		rate := float64(rateRaw)/1000 + 0.1
		g := BurstThenRate{Total: total, Burst: burst, Rate: rate, Ops: 1e9}
		tasks, err := g.Tasks()
		if err != nil {
			return false
		}
		if len(tasks) != total {
			return false
		}
		if !sort.SliceIsSorted(tasks, func(i, j int) bool { return tasks[i].Submit < tasks[j].Submit }) {
			return false
		}
		want := float64(total-burst) / rate
		last := tasks[len(tasks)-1].Submit
		return math.Abs(last-want) < 1e-6 || (burst == total && last == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestShiftMovesSubmitTimes(t *testing.T) {
	tasks, err := BurstThenRate{Total: 4, Burst: 2, Rate: 1, Ops: 1e9}.Tasks()
	if err != nil {
		t.Fatal(err)
	}
	shifted := Shift(tasks, 100)
	for i := range tasks {
		if shifted[i].Submit != tasks[i].Submit+100 {
			t.Errorf("task %d: submit %v, want %v", i, shifted[i].Submit, tasks[i].Submit+100)
		}
		if shifted[i].ID != tasks[i].ID || shifted[i].Ops != tasks[i].Ops {
			t.Errorf("task %d: Shift must only change Submit", i)
		}
	}
	// The input must not be mutated.
	if tasks[0].Submit != 0 {
		t.Errorf("Shift mutated its input: %v", tasks[0])
	}
}

func TestShiftQuickProperties(t *testing.T) {
	f := func(rawOps []uint32, by uint16) bool {
		if len(rawOps) == 0 {
			return true
		}
		tasks := make([]Task, len(rawOps))
		for i, o := range rawOps {
			tasks[i] = Task{ID: i, Ops: float64(o%1000) + 1, Submit: float64(i)}
		}
		shifted := Shift(tasks, float64(by))
		if len(shifted) != len(tasks) {
			return false
		}
		for i := range tasks {
			// Relative spacing is preserved exactly.
			if shifted[i].Submit-tasks[i].Submit != float64(by) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShiftComposesWithMerge(t *testing.T) {
	a, err := BurstThenRate{Total: 3, Burst: 3, Ops: 1e9}.Tasks()
	if err != nil {
		t.Fatal(err)
	}
	b, err := BurstThenRate{Total: 3, Burst: 3, Ops: 2e9}.Tasks()
	if err != nil {
		t.Fatal(err)
	}
	merged := Merge(a, Shift(b, 50))
	if len(merged) != 6 {
		t.Fatalf("merged %d tasks, want 6", len(merged))
	}
	for i := 1; i < len(merged); i++ {
		if merged[i].Submit < merged[i-1].Submit {
			t.Fatal("merge must sort by submit time")
		}
		if merged[i].ID != i {
			t.Fatal("merge must renumber IDs")
		}
	}
	if merged[3].Submit != 50 {
		t.Errorf("second phase starts at %v, want 50", merged[3].Submit)
	}
}
