package workload

import (
	"strings"
	"testing"
)

func TestParseTraceBasic(t *testing.T) {
	in := `# a trace
10,1e9
0,2e9,0.5

5,3e9,-1
`
	tasks, err := ParseTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 3 {
		t.Fatalf("len = %d", len(tasks))
	}
	// Sorted and renumbered.
	if tasks[0].Submit != 0 || tasks[1].Submit != 5 || tasks[2].Submit != 10 {
		t.Fatalf("order wrong: %+v", tasks)
	}
	for i, task := range tasks {
		if task.ID != i {
			t.Fatal("IDs not dense")
		}
	}
	if tasks[0].Pref != 0.5 || tasks[1].Pref != -1 || tasks[2].Pref != 0 {
		t.Fatalf("preferences wrong: %+v", tasks)
	}
}

func TestParseTraceErrors(t *testing.T) {
	cases := []string{
		"",                // empty
		"1\n",             // one field
		"a,1e9\n",         // bad time
		"1,b\n",           // bad ops
		"1,1e9,x\n",       // bad pref
		"1,1e9,0,extra\n", // four fields
		"-1,1e9\n",        // negative submit (Validate)
		"1,0\n",           // zero ops (Validate)
	}
	for i, in := range cases {
		if _, err := ParseTrace(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: invalid trace accepted: %q", i, in)
		}
	}
}

func TestTraceRoundTrip(t *testing.T) {
	orig, _ := BurstThenRate{Total: 10, Burst: 3, Rate: 2, Ops: 1e9}.Tasks()
	orig[2].Pref = 0.9
	var b strings.Builder
	if err := WriteTrace(&b, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ParseTrace(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(orig) {
		t.Fatalf("round trip lost tasks: %d vs %d", len(back), len(orig))
	}
	for i := range orig {
		if back[i].Submit != orig[i].Submit || back[i].Ops != orig[i].Ops || back[i].Pref != orig[i].Pref {
			t.Fatalf("task %d mismatch: %+v vs %+v", i, back[i], orig[i])
		}
	}
}
