package workload

import (
	"strings"
	"testing"
)

// TestParseTraceErrorsCarryLineNumbers: a malformed row must be
// reported with its 1-based physical line (comments and blanks
// counted), which is what makes multi-thousand-line trace files
// debuggable.
func TestParseTraceErrorsCarryLineNumbers(t *testing.T) {
	cases := []struct {
		in   string
		line string
	}{
		{"# header\n\n10,abc\n", "line 3"},            // malformed ops
		{"0,1e9\n5,1e9,zz\n", "line 2"},               // bad preference column
		{"0,1e9\n1,1e9\nnope,1e9\n", "line 3"},        // bad submit time
		{"0,1e9\n1,1e9,0.5,too,many\n", "line 2"},     // field count
		{"# ok\n0,1e9\n# more\n\n-3,1e9\n", "line 5"}, // negative submit
	}
	for _, c := range cases {
		_, err := ParseTrace(strings.NewReader(c.in))
		if err == nil {
			t.Errorf("%q: accepted", c.in)
			continue
		}
		if !strings.Contains(err.Error(), c.line) {
			t.Errorf("%q: error %q does not name %s", c.in, err, c.line)
		}
	}
}

func TestParseTraceRejectsNegativeOps(t *testing.T) {
	if _, err := ParseTrace(strings.NewReader("0,-1e9\n")); err == nil {
		t.Error("negative ops accepted")
	}
}

// TestParseTraceUnsortedSubmitsAreSortedStably: out-of-order rows are
// legal (recorded traces often interleave sources) and must come back
// time-sorted with ties keeping file order, then densely renumbered.
func TestParseTraceUnsortedSubmitsAreSortedStably(t *testing.T) {
	in := "30,3e9\n10,1e9\n10,2e9\n0,9e9\n"
	tasks, err := ParseTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	wantSubmit := []float64{0, 10, 10, 30}
	wantOps := []float64{9e9, 1e9, 2e9, 3e9} // tie at t=10 keeps file order
	for i, task := range tasks {
		if task.Submit != wantSubmit[i] || task.Ops != wantOps[i] {
			t.Fatalf("row %d = %+v, want submit %v ops %v", i, task, wantSubmit[i], wantOps[i])
		}
		if task.ID != i {
			t.Fatalf("IDs not dense after sorting: %+v", tasks)
		}
	}
}

// TestParseTraceWhitespaceDialect: the dialect trims field whitespace
// and skips blank/comment lines — shared with carbon.ParseTrace so the
// two CSVs stay interchangeable tooling-wise.
func TestParseTraceWhitespaceDialect(t *testing.T) {
	in := "  # padded comment\n\n  10 , 1e9 , 0.25  \n"
	tasks, err := ParseTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 1 || tasks[0].Submit != 10 || tasks[0].Ops != 1e9 || tasks[0].Pref != 0.25 {
		t.Fatalf("parsed %+v", tasks)
	}
}
