package budget

import (
	"math"
	"sync"
	"testing"
	"testing/quick"

	"greensched/internal/core"
	"greensched/internal/estvec"
)

func TestNewTrackerValidation(t *testing.T) {
	if _, err := NewTracker(0, 100); err == nil {
		t.Fatal("zero budget accepted")
	}
	if _, err := NewTracker(100, 0); err == nil {
		t.Fatal("zero horizon accepted")
	}
}

func TestTrackerAccounting(t *testing.T) {
	tr, err := NewTracker(1000, 100)
	if err != nil {
		t.Fatal(err)
	}
	tr.Charge(10, 300)
	tr.Charge(20, 200)
	tr.Charge(15, -50) // negative charges ignored
	if tr.Spent() != 500 {
		t.Fatalf("Spent = %v", tr.Spent())
	}
	if tr.Remaining() != 500 {
		t.Fatalf("Remaining = %v", tr.Remaining())
	}
	if tr.Exhausted() {
		t.Fatal("not exhausted yet")
	}
	tr.Charge(30, 600)
	if !tr.Exhausted() || tr.Remaining() != 0 {
		t.Fatal("overspend should exhaust with zero remaining")
	}
}

func TestBurnError(t *testing.T) {
	tr, _ := NewTracker(1000, 100)
	// Halfway through time, nothing spent: 50% behind.
	if got := tr.BurnError(50); math.Abs(got-(-0.5)) > 1e-12 {
		t.Fatalf("BurnError = %v, want -0.5", got)
	}
	tr.Charge(50, 700)
	// Spent 700 vs expected 500: 20% ahead.
	if got := tr.BurnError(50); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("BurnError = %v, want 0.2", got)
	}
	// Clamped time.
	if got := tr.BurnError(1e9); math.Abs(got-(-0.3)) > 1e-12 {
		t.Fatalf("BurnError past horizon = %v, want -0.3", got)
	}
	if got := tr.BurnError(-5); math.Abs(got-0.7) > 1e-12 {
		t.Fatalf("BurnError before start = %v, want 0.7", got)
	}
}

func TestTrackerConcurrentCharges(t *testing.T) {
	tr, _ := NewTracker(1e6, 100)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				tr.Charge(1, 1)
			}
		}()
	}
	wg.Wait()
	if tr.Spent() != 8000 {
		t.Fatalf("Spent = %v, want 8000", tr.Spent())
	}
}

func TestPreferenceSteering(t *testing.T) {
	tr, _ := NewTracker(1000, 100)
	p := Preference{Tracker: tr, Base: 0, Gain: 5}
	// On budget: base preference.
	tr.Charge(50, 500)
	if got := p.At(50); got != 0 {
		t.Fatalf("on-budget preference = %v, want 0", got)
	}
	// 10% over: pushed toward efficiency by gain 5 → +0.5.
	tr.Charge(50, 100)
	if got := p.At(50); math.Abs(float64(got)-0.5) > 1e-12 {
		t.Fatalf("over-budget preference = %v, want 0.5", got)
	}
	// Way over: clamped at +0.9.
	tr.Charge(50, 500)
	if got := p.At(50); got != 0.9 {
		t.Fatalf("far-over preference = %v, want 0.9", got)
	}
}

func TestPreferenceUnderBudget(t *testing.T) {
	tr, _ := NewTracker(1000, 100)
	// Conservative (default): surplus does not change the preference.
	cons := Preference{Tracker: tr, Base: 0.2, Gain: 5}
	if got := cons.At(50); got != 0.2 {
		t.Fatalf("conservative under-budget = %v, want base", got)
	}
	// Aggressive: surplus buys performance.
	aggr := Preference{Tracker: tr, Base: 0.2, Gain: 1, Aggressive: true}
	got := aggr.At(50) // error -0.5, gain 1 → 0.2-0.5 = -0.3
	if math.Abs(float64(got)-(-0.3)) > 1e-12 {
		t.Fatalf("aggressive under-budget = %v, want -0.3", got)
	}
}

func vec(name string, flops, watts float64) *estvec.Vector {
	return estvec.New(name).
		Set(estvec.TagFlops, flops).
		Set(estvec.TagPowerW, watts).
		SetBool(estvec.TagActive, true)
}

func TestPolicySwitchesWithBudget(t *testing.T) {
	tr, _ := NewTracker(1000, 100)
	now := 0.0
	policy, err := NewPolicy(tr, core.PrefNone, 1e12, func() float64 { return now })
	if err != nil {
		t.Fatal(err)
	}
	fast := vec("fast", 10e9, 400)
	lean := vec("lean", 2e9, 60)
	// Under budget with aggressive steering off and base 0 the EDP
	// ordering applies: fast has EDP 100s*4e4J=4e6, lean 500*3e4=1.5e7
	// → fast first.
	if !policy.Less(fast, lean) {
		t.Fatal("on-budget: EDP should favor fast")
	}
	// Blow the budget: steering pushes to max efficiency → lean first.
	now = 10
	tr.Charge(10, 900)
	if !policy.Less(lean, fast) {
		t.Fatal("over-budget: steering should favor lean")
	}
	if policy.Name() != "BUDGET" {
		t.Fatal("name wrong")
	}
}

func TestNewPolicyValidation(t *testing.T) {
	tr, _ := NewTracker(1, 1)
	if _, err := NewPolicy(nil, 0, 1, func() float64 { return 0 }); err == nil {
		t.Fatal("nil tracker accepted")
	}
	if _, err := NewPolicy(tr, 0, 1, nil); err == nil {
		t.Fatal("nil clock accepted")
	}
	if _, err := NewPolicy(tr, 0, 0, func() float64 { return 0 }); err == nil {
		t.Fatal("zero ops accepted")
	}
}

func TestEnforcer(t *testing.T) {
	tr, _ := NewTracker(100, 10)
	e := Enforcer{Tracker: tr}
	if err := e.Admit(); err != nil {
		t.Fatal(err)
	}
	tr.Charge(5, 100)
	if err := e.Admit(); err == nil {
		t.Fatal("exhausted budget admitted a request")
	}
}

// Property: BurnError is always within [-1, 1] and monotone in spend.
func TestPropertyBurnErrorBounded(t *testing.T) {
	f := func(spendRaw, nowRaw uint16) bool {
		tr, _ := NewTracker(1000, 100)
		now := float64(nowRaw % 200)
		tr.Charge(now, float64(spendRaw))
		e := tr.BurnError(now)
		if e < -1 || e > 1 {
			return false
		}
		before := e
		tr.Charge(now, 10)
		return tr.BurnError(now) >= before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the steered preference is always a valid clamped pref.
func TestPropertyPreferenceClamped(t *testing.T) {
	f := func(spendRaw, nowRaw uint16, baseRaw int8) bool {
		tr, _ := NewTracker(1000, 100)
		now := float64(nowRaw % 100)
		tr.Charge(now, float64(spendRaw))
		p := Preference{Tracker: tr, Base: core.UserPref(float64(baseRaw) / 127), Gain: 5, Aggressive: true}
		got := float64(p.At(now))
		return got >= -core.ClampLimit-1e-12 && got <= core.ClampLimit+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPolicyLess(b *testing.B) {
	tr, _ := NewTracker(1e9, 1e4)
	policy, _ := NewPolicy(tr, 0, 1e12, func() float64 { return 100 })
	fast := vec("fast", 10e9, 400)
	lean := vec("lean", 2e9, 60)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		policy.Less(fast, lean)
	}
}
