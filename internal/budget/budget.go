// Package budget implements the paper's announced future work:
// "budget constrained scheduling" (§V). A Tracker meters cumulative
// energy (or monetary cost) against a budget over a planning horizon,
// and a Policy wrapper steers the scheduler continuously from
// performance-seeking to efficiency-seeking as consumption runs ahead
// of the budget's linear burn-down.
//
// The mechanism reuses the paper's own machinery: the burn-down error
// is mapped onto an effective Preference_user, and the Eq. 6 score
// policy does the ranking — no new scheduling math, just a feedback
// loop around it.
package budget

import (
	"fmt"
	"math"
	"sync"

	"greensched/internal/core"
	"greensched/internal/estvec"
	"greensched/internal/sched"
)

// Tracker meters consumption against a total budget across a horizon.
// It is safe for concurrent use (the live middleware charges it from
// SED completion callbacks).
type Tracker struct {
	mu       sync.Mutex
	total    float64 // budget in joules (or cost units)
	horizon  float64 // seconds
	spent    float64
	lastTime float64
}

// NewTracker returns a tracker for `total` units over `horizon`
// seconds.
func NewTracker(total, horizon float64) (*Tracker, error) {
	if total <= 0 || horizon <= 0 {
		return nil, fmt.Errorf("budget: total and horizon must be positive")
	}
	return &Tracker{total: total, horizon: horizon}, nil
}

// Charge records consumption at time now (seconds since the horizon
// start). Charges may arrive out of order from concurrent completions;
// only the monotonic maximum of now is retained for pacing.
func (t *Tracker) Charge(now, amount float64) {
	if amount < 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.spent += amount
	if now > t.lastTime {
		t.lastTime = now
	}
}

// Spent returns cumulative consumption.
func (t *Tracker) Spent() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.spent
}

// Remaining returns the unspent budget (never negative).
func (t *Tracker) Remaining() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return math.Max(0, t.total-t.spent)
}

// Exhausted reports whether the budget is fully consumed.
func (t *Tracker) Exhausted() bool { return t.Remaining() == 0 }

// BurnError returns how far consumption runs ahead (+) or behind (−)
// of the linear burn-down at time now, normalized to [−1, 1]:
//
//	error = (spent − total·now/horizon) / total
//
// +0.1 means 10 % of the whole budget ahead of schedule.
func (t *Tracker) BurnError(now float64) float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if now < 0 {
		now = 0
	}
	if now > t.horizon {
		now = t.horizon
	}
	expected := t.total * now / t.horizon
	e := (t.spent - expected) / t.total
	return math.Max(-1, math.Min(1, e))
}

// Preference maps the burn error onto an effective Preference_user:
// on-budget → the caller's base preference; ahead of budget → pushed
// toward +0.9 (maximize efficiency); behind budget → allowed toward
// the base (or further toward performance when Aggressive). Gain
// controls how hard the loop steers; 5 reaches full efficiency at 18 %
// over-burn.
type Preference struct {
	Tracker    *Tracker
	Base       core.UserPref
	Gain       float64
	Aggressive bool // spend surplus on performance when under budget
}

// At returns the effective preference at time now.
func (p Preference) At(now float64) core.UserPref {
	gain := p.Gain
	if gain <= 0 {
		gain = 5
	}
	e := p.Tracker.BurnError(now)
	pref := float64(p.Base)
	if e > 0 {
		pref += gain * e
	} else if p.Aggressive {
		pref += gain * e // e < 0 pulls toward performance
	}
	return core.UserPref(pref).Clamped()
}

// Policy is a plug-in scheduler that re-ranks by the Eq. 6 score under
// the tracker-steered preference. Clock supplies "now" (virtual or
// wall time in seconds).
type Policy struct {
	Pref  Preference
	Ops   float64
	Clock func() float64
}

// NewPolicy builds a budget-aware policy for tasks of `ops` flops.
func NewPolicy(tr *Tracker, base core.UserPref, ops float64, clock func() float64) (*Policy, error) {
	if tr == nil || clock == nil {
		return nil, fmt.Errorf("budget: policy needs a tracker and a clock")
	}
	if ops <= 0 {
		return nil, fmt.Errorf("budget: policy needs positive ops")
	}
	return &Policy{Pref: Preference{Tracker: tr, Base: base}, Ops: ops, Clock: clock}, nil
}

// Name implements sched.Policy.
func (p *Policy) Name() string { return "BUDGET" }

// Less implements sched.Policy.
func (p *Policy) Less(a, b *estvec.Vector) bool {
	inner := sched.ScorePolicy{Ops: p.Ops, Pref: p.Pref.At(p.Clock())}
	return inner.Less(a, b)
}

// Enforcer gates admission when the budget is exhausted: requests are
// rejected rather than scheduled, mirroring the management of budget
// limits §III-B motivates.
type Enforcer struct {
	Tracker *Tracker
}

// Admit returns an error when no budget remains.
func (e Enforcer) Admit() error {
	if e.Tracker.Exhausted() {
		return fmt.Errorf("budget: exhausted (%.0f spent)", e.Tracker.Spent())
	}
	return nil
}
