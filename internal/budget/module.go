package budget

import (
	"fmt"

	"greensched/internal/core"
	"greensched/internal/sched"
	"greensched/internal/sim"
	"greensched/internal/workload"
)

// Module meters a simulation run against an energy budget: every
// completed task charges its exact per-task energy share
// (TaskRecord.EnergyShareJ) to the Tracker, and — when Steer is set —
// elections are re-ranked toward energy efficiency whenever
// consumption runs ahead of the budget's linear burn-down.
//
// The steering is deliberately conditional: while the run is on or
// under pace the stack's base policy (GreenPerf, CARBON, whatever the
// scenario composed below this module) keeps full control, so budget
// awareness costs nothing until the burn-down is actually violated.
//
// While over budget the module REPLACES the ranking the stack built
// so far with the steered Eq. 6 score. Mount it before (earlier in
// the stack than) modules whose wrappers must survive steering —
// e.g. an SLAModule with WrapDeadline, whose deadline-feasibility
// screen then wraps the steered ranking instead of being discarded
// by it.
type Module struct {
	sim.BaseModule

	// Tracker meters consumption (joules) against the budget; give
	// every run its own (charges accumulate).
	Tracker *Tracker

	// Steer enables election re-ranking while over budget; the fields
	// below parameterize the Preference feedback loop it applies.
	Steer      bool
	Base       core.UserPref
	Gain       float64
	Aggressive bool
}

// Init implements sim.Module.
func (m *Module) Init(*sim.Runner) error {
	if m.Tracker == nil {
		return fmt.Errorf("budget: module needs a tracker")
	}
	return nil
}

// OnFinish implements sim.Module: it charges the completion's energy
// share at its virtual finish time, so the burn-down comparison always
// sees consumption dated to when it happened.
func (m *Module) OnFinish(rec sim.TaskRecord) {
	m.Tracker.Charge(rec.Finish, rec.EnergyShareJ)
}

// WrapPolicy implements sim.Module: while consumption runs ahead of
// the linear burn-down the election is re-ranked by the Eq. 6 score
// under the tracker-steered preference (replacing the ranking built
// so far — see the type comment for stack placement); on or under
// pace the base policy passes through untouched.
func (m *Module) WrapPolicy(now float64, t workload.Task, base sched.Policy) sched.Policy {
	if !m.Steer || m.Tracker.BurnError(now) <= 0 {
		return base
	}
	return &Policy{
		Pref:  Preference{Tracker: m.Tracker, Base: m.Base, Gain: m.Gain, Aggressive: m.Aggressive},
		Ops:   t.Ops,
		Clock: func() float64 { return now },
	}
}
