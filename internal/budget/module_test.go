package budget

import (
	"testing"

	"greensched/internal/cluster"
	"greensched/internal/core"
	"greensched/internal/sched"
	"greensched/internal/sim"
	"greensched/internal/workload"
)

func budgetTasks(t *testing.T, n int) []workload.Task {
	t.Helper()
	tasks, err := workload.BurstThenRate{Total: n, Burst: 4, Rate: 0.05, Ops: 2e11}.Tasks()
	if err != nil {
		t.Fatal(err)
	}
	return tasks
}

// TestModuleChargesExactEnergyShares is the accounting invariant: the
// tracker's consumption equals the sum of every completed task's
// energy share, charge for charge.
func TestModuleChargesExactEnergyShares(t *testing.T) {
	tracker, err := NewTracker(1e9, 3600)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(sim.NewScenario(
		cluster.MustPlatform(cluster.NewNodes("taurus", 2)),
		budgetTasks(t, 20),
		sim.WithSeed(3),
		sim.WithExplore(),
		sim.WithModules(&Module{Tracker: tracker}),
	))
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, rec := range res.Records {
		sum += rec.EnergyShareJ
	}
	if sum <= 0 {
		t.Fatal("no energy attributed")
	}
	if got := tracker.Spent(); got != sum {
		t.Errorf("tracker spent %v J, records sum to %v J", got, sum)
	}
}

// TestModuleSteersOnlyWhenOverBudget: on/under pace the base policy
// passes through untouched; ahead of the burn-down the election is
// re-ranked by the steered score policy.
func TestModuleSteersOnlyWhenOverBudget(t *testing.T) {
	tracker, err := NewTracker(1000, 1000)
	if err != nil {
		t.Fatal(err)
	}
	m := &Module{Tracker: tracker, Steer: true, Base: core.PrefNone}
	base := sched.New(sched.GreenPerf)
	task := workload.Task{ID: 1, Ops: 1e11}

	if got := m.WrapPolicy(500, task, base); got != base {
		t.Error("under budget: base policy must pass through")
	}
	tracker.Charge(100, 900) // 90% spent at 10% of the horizon
	got := m.WrapPolicy(100, task, base)
	if got == base {
		t.Fatal("over budget: election must be re-ranked")
	}
	if _, ok := got.(*Policy); !ok {
		t.Fatalf("over budget wrap returned %T, want *budget.Policy", got)
	}

	unsteered := &Module{Tracker: tracker}
	if got := unsteered.WrapPolicy(100, task, base); got != base {
		t.Error("Steer off: policy must always pass through")
	}
}

func TestModuleInitNeedsTracker(t *testing.T) {
	if err := (&Module{}).Init(nil); err == nil {
		t.Error("nil tracker accepted")
	}
}
