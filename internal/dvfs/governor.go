package dvfs

import (
	"fmt"

	"greensched/internal/cluster"
)

// Governor picks a normalized frequency from the observed utilization
// in [0,1] — the OS-level policy knob of the §II-B related work.
type Governor interface {
	Name() string
	// Pick returns the desired normalized frequency for the current
	// utilization; callers clamp it to the level ladder.
	Pick(utilization float64) float64
}

// PerformanceGov always runs at f_max.
type PerformanceGov struct{}

func (PerformanceGov) Name() string         { return "performance" }
func (PerformanceGov) Pick(float64) float64 { return 1 }

// PowersaveGov always runs at the floor.
type PowersaveGov struct{}

func (PowersaveGov) Name() string         { return "powersave" }
func (PowersaveGov) Pick(float64) float64 { return 0 }

// OnDemandGov tracks utilization proportionally with headroom, like
// Linux's ondemand: f = util + Headroom.
type OnDemandGov struct{ Headroom float64 }

func (OnDemandGov) Name() string { return "ondemand" }
func (g OnDemandGov) Pick(util float64) float64 {
	h := g.Headroom
	if h <= 0 {
		h = 0.1
	}
	return util + h
}

// GovernorRun is the outcome of a single-node governor simulation.
type GovernorRun struct {
	Governor  string
	Makespan  float64
	EnergyJ   float64
	MeanFreq  float64
	Completed int
}

// SimulateGovernor runs a periodic single-core task stream on one node
// under a governor: tasks of ops flops arrive every period seconds,
// count of them; the governor re-evaluates at each task boundary from
// the instantaneous utilization. Queued tasks run back to back. It is
// a self-contained analytic simulation (no DES needed: one node, FIFO,
// deterministic).
func SimulateGovernor(spec cluster.NodeSpec, levels Levels, gov Governor, ops, period float64, count int) (GovernorRun, error) {
	if err := levels.Validate(); err != nil {
		return GovernorRun{}, err
	}
	if gov == nil || ops <= 0 || period <= 0 || count <= 0 {
		return GovernorRun{}, fmt.Errorf("dvfs: simulate needs governor, ops, period and count")
	}
	now := 0.0
	energy := 0.0
	freqSum := 0.0
	for i := 0; i < count; i++ {
		arrive := float64(i) * period
		idleFrom := now
		if arrive > now {
			// Idle gap before this task.
			energy += (arrive - now) * spec.IdleW
			now = arrive
		}
		// Utilization proxy: fraction of the last period spent busy.
		util := 1 - (now-idleFrom)/period
		if util < 0 {
			util = 0
		} else if util > 1 {
			util = 1
		}
		f := levels.Clamp(gov.Pick(util))
		exec := ExecSeconds(spec, ops, f)
		energy += exec * PowerAt(spec, f, 1)
		now += exec
		freqSum += f
	}
	return GovernorRun{
		Governor:  gov.Name(),
		Makespan:  now,
		EnergyJ:   energy,
		MeanFreq:  freqSum / float64(count),
		Completed: count,
	}, nil
}
