package dvfs

import (
	"math"
	"testing"
	"testing/quick"

	"greensched/internal/cluster"
)

func taurus() cluster.NodeSpec {
	s, _ := cluster.Spec("taurus")
	s.Name = "t0"
	return s
}

func TestLevelsValidate(t *testing.T) {
	if err := DefaultLevels().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Levels{
		{},
		{0.5, 0.4},    // unsorted
		{0, 0.5},      // zero
		{0.5, 1.0001}, // above 1
	}
	for i, l := range bad {
		if l.Validate() == nil {
			t.Errorf("case %d: invalid levels accepted", i)
		}
	}
}

func TestLevelsClamp(t *testing.T) {
	l := Levels{0.4, 0.7, 1.0}
	if l.Clamp(0.1) != 0.4 {
		t.Fatal("clamp below floor wrong")
	}
	if l.Clamp(0.7) != 0.7 {
		t.Fatal("exact clamp wrong")
	}
	if l.Clamp(0.71) != 1.0 {
		t.Fatal("clamp up wrong")
	}
	if l.Clamp(5) != 1.0 {
		t.Fatal("clamp above ceiling wrong")
	}
}

func TestPowerAtFrequencyScaling(t *testing.T) {
	spec := taurus() // idle 95, act 50, peak 222, 12 cores
	if got := PowerAt(spec, 1, 0); got != 95 {
		t.Fatalf("idle power = %v", got)
	}
	full := PowerAt(spec, 1, 12)
	if math.Abs(full-222) > 1e-9 {
		t.Fatalf("full power at fmax = %v, want 222", full)
	}
	// Half frequency: dynamic part shrinks by 8x.
	halfDyn := PowerAt(spec, 0.5, 12) - 95 - 50
	fullDyn := full - 95 - 50
	if math.Abs(halfDyn-fullDyn/8) > 1e-9 {
		t.Fatalf("cubic scaling broken: %v vs %v/8", halfDyn, fullDyn)
	}
	// Busy cores clamped.
	if PowerAt(spec, 1, 100) != full {
		t.Fatal("overcommitted cores should clamp")
	}
}

func TestExecSecondsScaling(t *testing.T) {
	spec := taurus()
	base := ExecSeconds(spec, 9e11, 1)
	if math.Abs(base-100) > 1e-9 {
		t.Fatalf("exec at fmax = %v, want 100", base)
	}
	if math.Abs(ExecSeconds(spec, 9e11, 0.5)-200) > 1e-9 {
		t.Fatal("exec at half frequency should double")
	}
	if !math.IsInf(ExecSeconds(spec, 1, 0), 1) {
		t.Fatal("zero frequency should be infinite")
	}
}

func TestEnergyFixedWorkDeadline(t *testing.T) {
	spec := taurus()
	// Work fits at fmax but not at 0.4.
	horizon := 150.0
	if !math.IsInf(EnergyFixedWork(spec, 9e11, 0.4, horizon), 1) {
		t.Fatal("missed deadline must cost +Inf")
	}
	e := EnergyFixedWork(spec, 9e11, 1, horizon)
	want := 100*PowerAt(spec, 1, 1) + 50*95
	if math.Abs(e-want) > 1e-9 {
		t.Fatalf("energy = %v, want %v", e, want)
	}
	// Shutdown variant replaces the idle tail with the off draw.
	es := EnergyFixedWorkWithShutdown(spec, 9e11, 1, horizon)
	if math.Abs(es-(100*PowerAt(spec, 1, 1)+50*8)) > 1e-9 {
		t.Fatalf("shutdown energy = %v", es)
	}
	if es >= e {
		t.Fatal("shutdown tail must beat idle tail")
	}
}

// The headline reproduction: on high-idle-floor hardware, the best
// DVFS level saves almost nothing over race-to-idle (ref [8]'s
// diminishing returns), while on hypothetical near-zero-idle hardware
// slowing down pays.
func TestDiminishingReturnsOnRealHardware(t *testing.T) {
	spec := taurus()
	saving, err := DiminishingReturns(spec, 9e11, 500, DefaultLevels())
	if err != nil {
		t.Fatal(err)
	}
	if saving > 0.05 {
		t.Fatalf("DVFS saving on taurus = %.1f%%, expected ≤5%% (race-to-idle wins)", saving*100)
	}
	// Energy-proportional strawman: no idle floor, no activation.
	proportional := spec
	proportional.IdleW = 0
	proportional.ActivationW = 0
	proportional.OffW = 0
	saving, err = DiminishingReturns(proportional, 9e11, 500, DefaultLevels())
	if err != nil {
		t.Fatal(err)
	}
	if saving < 0.3 {
		t.Fatalf("DVFS saving on proportional hardware = %.1f%%, expected ≥30%%", saving*100)
	}
}

func TestOptimalFreq(t *testing.T) {
	spec := taurus()
	f, err := OptimalFreq(spec, 9e11, 500, DefaultLevels())
	if err != nil {
		t.Fatal(err)
	}
	if f != 1.0 {
		t.Fatalf("optimal frequency on taurus = %v, want 1.0 (race-to-idle)", f)
	}
	// Too tight a horizon: no feasible level.
	if _, err := OptimalFreq(spec, 9e11, 10, DefaultLevels()); err == nil {
		t.Fatal("infeasible horizon accepted")
	}
	proportional := spec
	proportional.IdleW, proportional.ActivationW = 0, 0
	f, err = OptimalFreq(proportional, 9e11, 1e6, DefaultLevels())
	if err != nil {
		t.Fatal(err)
	}
	if f != 0.4 {
		t.Fatalf("optimal on proportional hardware = %v, want the floor", f)
	}
}

func TestCurveShape(t *testing.T) {
	spec := taurus()
	curve, err := Curve(spec, 9e11, 1000, DefaultLevels())
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != len(DefaultLevels()) {
		t.Fatalf("curve has %d points", len(curve))
	}
	// Exec times strictly decrease with frequency.
	for i := 1; i < len(curve); i++ {
		if curve[i].ExecSec >= curve[i-1].ExecSec {
			t.Fatal("exec time must decrease with frequency")
		}
	}
	if _, err := Curve(spec, 0, 100, DefaultLevels()); err == nil {
		t.Fatal("zero ops accepted")
	}
	if _, err := Curve(spec, 1, 100, Levels{}); err == nil {
		t.Fatal("empty levels accepted")
	}
}

func TestSimulateGovernorComparison(t *testing.T) {
	spec := taurus()
	levels := DefaultLevels()
	// Light periodic load: one 50 s task every 200 s.
	run := func(g Governor) GovernorRun {
		r, err := SimulateGovernor(spec, levels, g, 4.5e11, 200, 20)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	perf := run(PerformanceGov{})
	save := run(PowersaveGov{})
	ond := run(OnDemandGov{Headroom: 0.1})

	if math.Abs(perf.MeanFreq-1) > 1e-9 {
		t.Fatal("performance governor must pin fmax")
	}
	if math.Abs(save.MeanFreq-levels[0]) > 1e-9 {
		t.Fatal("powersave governor must pin the floor")
	}
	if !(perf.Makespan < save.Makespan) {
		t.Fatal("powersave must be slower")
	}
	// The reproduction point: on this hardware powersave does NOT
	// save meaningful energy — the idle floor dominates.
	if save.EnergyJ < perf.EnergyJ*0.97 {
		t.Fatalf("powersave energy %.0f vs performance %.0f: idle floor should dominate",
			save.EnergyJ, perf.EnergyJ)
	}
	if ond.MeanFreq <= levels[0] || ond.MeanFreq > 1 {
		t.Fatalf("ondemand mean frequency = %v", ond.MeanFreq)
	}
	if ond.Completed != 20 {
		t.Fatal("lost tasks")
	}
}

func TestSimulateGovernorBackToBack(t *testing.T) {
	spec := taurus()
	// Saturating load: tasks arrive faster than they finish, so
	// utilization stays 1 and ondemand pins fmax.
	r, err := SimulateGovernor(spec, DefaultLevels(), OnDemandGov{}, 9e11, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	if r.MeanFreq < 0.99 {
		t.Fatalf("saturated ondemand mean freq = %v, want ≈1", r.MeanFreq)
	}
}

func TestSimulateGovernorValidation(t *testing.T) {
	spec := taurus()
	if _, err := SimulateGovernor(spec, Levels{}, PerformanceGov{}, 1, 1, 1); err == nil {
		t.Fatal("bad levels accepted")
	}
	if _, err := SimulateGovernor(spec, DefaultLevels(), nil, 1, 1, 1); err == nil {
		t.Fatal("nil governor accepted")
	}
	if _, err := SimulateGovernor(spec, DefaultLevels(), PerformanceGov{}, 0, 1, 1); err == nil {
		t.Fatal("zero ops accepted")
	}
}

// Property: energy at the optimal frequency never exceeds energy at
// f_max, and both respect the deadline when feasible.
func TestPropertyOptimalNoWorseThanMax(t *testing.T) {
	f := func(opsRaw uint16, horizonRaw uint16) bool {
		spec := taurus()
		ops := float64(opsRaw)*1e8 + 1e10
		horizon := ExecSeconds(spec, ops, 1) * (1.1 + float64(horizonRaw)/1000)
		fOpt, err := OptimalFreq(spec, ops, horizon, DefaultLevels())
		if err != nil {
			return false
		}
		eOpt := EnergyFixedWork(spec, ops, fOpt, horizon)
		eMax := EnergyFixedWork(spec, ops, 1, horizon)
		return eOpt <= eMax+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCurve(b *testing.B) {
	spec := taurus()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Curve(spec, 9e11, 500, DefaultLevels()); err != nil {
			b.Fatal(err)
		}
	}
}
