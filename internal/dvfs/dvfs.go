// Package dvfs models dynamic voltage and frequency scaling, the
// alternative power-saving technique the paper's related work weighs
// against shutdown-based provisioning (§II-B): "slowing down certain
// server components ... techniques that according to Le Sueur et al.
// are becoming less attractive on modern hardware".
//
// The model is the classic cubic one: per-core dynamic power scales
// with (f/f_max)³ (voltage tracks frequency), execution time scales
// with f_max/f, and the idle floor is frequency-independent. On
// hardware with a high idle floor, finishing fast and idling (or
// powering off) beats running slow — the "laws of diminishing
// returns" this package reproduces quantitatively, justifying the
// paper's choice of provisioning over DVFS.
package dvfs

import (
	"fmt"
	"math"
	"sort"

	"greensched/internal/cluster"
)

// Levels is the set of available normalized frequencies (f/f_max],
// sorted ascending, each in (0, 1].
type Levels []float64

// DefaultLevels mirrors a typical ACPI P-state ladder.
func DefaultLevels() Levels { return Levels{0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0} }

// Validate checks range and ordering.
func (l Levels) Validate() error {
	if len(l) == 0 {
		return fmt.Errorf("dvfs: empty level set")
	}
	if !sort.Float64sAreSorted(l) {
		return fmt.Errorf("dvfs: levels must be ascending")
	}
	for _, f := range l {
		if f <= 0 || f > 1 {
			return fmt.Errorf("dvfs: level %v outside (0,1]", f)
		}
	}
	return nil
}

// Clamp returns the lowest level ≥ want, or the highest level when
// want exceeds all.
func (l Levels) Clamp(want float64) float64 {
	for _, f := range l {
		if f >= want {
			return f
		}
	}
	return l[len(l)-1]
}

// PowerAt returns a node's draw running busyCores at normalized
// frequency f: the idle floor and activation step are
// frequency-independent; the per-core dynamic increment scales
// cubically.
func PowerAt(spec cluster.NodeSpec, f float64, busyCores int) float64 {
	if busyCores <= 0 {
		return spec.IdleW
	}
	if busyCores > spec.Cores {
		busyCores = spec.Cores
	}
	slope := (spec.PeakW - spec.IdleW - spec.ActivationW) / float64(spec.Cores)
	return spec.IdleW + spec.ActivationW + slope*float64(busyCores)*f*f*f
}

// ExecSeconds returns the single-core execution time of ops flops at
// normalized frequency f.
func ExecSeconds(spec cluster.NodeSpec, ops, f float64) float64 {
	if f <= 0 {
		return math.Inf(1)
	}
	return ops / (spec.FlopsPerCore * f)
}

// EnergyFixedWork returns the node energy to execute ops flops on one
// core at frequency f and then idle until the horizon (race-to-idle
// when f=1). It returns +Inf when the work does not fit the horizon —
// slowing down must never be credited for missing the deadline.
func EnergyFixedWork(spec cluster.NodeSpec, ops, f, horizon float64) float64 {
	exec := ExecSeconds(spec, ops, f)
	if exec > horizon {
		return math.Inf(1)
	}
	return exec*PowerAt(spec, f, 1) + (horizon-exec)*spec.IdleW
}

// EnergyFixedWorkWithShutdown is EnergyFixedWork with the idle tail
// replaced by a power-off tail (residual OffW), modelling the paper's
// shutdown-based provisioning as the competitor.
func EnergyFixedWorkWithShutdown(spec cluster.NodeSpec, ops, f, horizon float64) float64 {
	exec := ExecSeconds(spec, ops, f)
	if exec > horizon {
		return math.Inf(1)
	}
	return exec*PowerAt(spec, f, 1) + (horizon-exec)*spec.OffW
}

// CurvePoint is one point of the energy-vs-frequency curve.
type CurvePoint struct {
	Freq    float64
	Energy  float64
	ExecSec float64
}

// Curve evaluates EnergyFixedWork across the level ladder.
func Curve(spec cluster.NodeSpec, ops, horizon float64, levels Levels) ([]CurvePoint, error) {
	if err := levels.Validate(); err != nil {
		return nil, err
	}
	if ops <= 0 || horizon <= 0 {
		return nil, fmt.Errorf("dvfs: curve needs positive ops and horizon")
	}
	out := make([]CurvePoint, len(levels))
	for i, f := range levels {
		out[i] = CurvePoint{
			Freq:    f,
			Energy:  EnergyFixedWork(spec, ops, f, horizon),
			ExecSec: ExecSeconds(spec, ops, f),
		}
	}
	return out, nil
}

// OptimalFreq returns the level minimizing EnergyFixedWork (ties break
// toward the higher frequency: finish sooner at equal energy).
func OptimalFreq(spec cluster.NodeSpec, ops, horizon float64, levels Levels) (float64, error) {
	curve, err := Curve(spec, ops, horizon, levels)
	if err != nil {
		return 0, err
	}
	best := curve[0]
	for _, p := range curve[1:] {
		if p.Energy <= best.Energy {
			best = p
		}
	}
	if math.IsInf(best.Energy, 1) {
		return 0, fmt.Errorf("dvfs: work does not fit the horizon at any level")
	}
	return best.Freq, nil
}

// DiminishingReturns quantifies ref [8]'s claim for a node: the
// relative energy saving of the *best* DVFS level over running at
// f_max, for a fixed horizon. Near-zero (or negative) savings mean
// race-to-idle wins and DVFS is not worth its complexity.
func DiminishingReturns(spec cluster.NodeSpec, ops, horizon float64, levels Levels) (saving float64, err error) {
	curve, err := Curve(spec, ops, horizon, levels)
	if err != nil {
		return 0, err
	}
	atMax := curve[len(curve)-1].Energy
	best := atMax
	for _, p := range curve {
		if p.Energy < best {
			best = p.Energy
		}
	}
	if math.IsInf(atMax, 1) {
		return 0, fmt.Errorf("dvfs: work does not fit the horizon")
	}
	return (atMax - best) / atMax, nil
}
