package powerd

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"

	"greensched/internal/power"
)

// TraceModel replays recorded per-node wattage samples — the
// CSV/trace-backed model the tests (and `greensched powerd -trace`)
// serve, and the model the simulator's ExternalPowerModule queries so
// sim and live runs share one recorded estimator stream.
//
// Lookup is deterministic two ways:
//
//   - time-keyed: a request carrying power.MetricTime gets the last
//     sample at or before that instant (none yet → no reading), so the
//     same virtual time always yields the same watts;
//   - sequential: without a time metric each request pops the node's
//     next sample in recorded order, holding the last one once the
//     trace is exhausted — a fixed request sequence replays fixedly.
type TraceModel struct {
	mu     sync.Mutex
	series map[string][]power.Sample
	cursor map[string]int
}

// NewTraceModel returns an empty trace model.
func NewTraceModel() *TraceModel {
	return &TraceModel{series: make(map[string][]power.Sample), cursor: make(map[string]int)}
}

// Add records one sample for node at time t. Samples are kept sorted
// by time regardless of insertion order.
func (m *TraceModel) Add(node string, t float64, w power.Watts) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.series[node]
	s = append(s, power.Sample{T: t, W: w})
	for i := len(s) - 1; i > 0 && s[i].T < s[i-1].T; i-- {
		s[i], s[i-1] = s[i-1], s[i]
	}
	m.series[node] = s
}

// Nodes returns the recorded node names, sorted.
func (m *TraceModel) Nodes() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	nodes := make([]string, 0, len(m.series))
	for n := range m.series {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	return nodes
}

// NodePowerW implements power.Source.
func (m *TraceModel) NodePowerW(node string, metrics []string, values []float64) (power.Watts, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.series[node]
	if len(s) == 0 {
		return 0, false
	}
	if t, ok := power.MetricValue(metrics, values, power.MetricTime); ok {
		// Last sample with T <= t.
		i := sort.Search(len(s), func(i int) bool { return s[i].T > t })
		if i == 0 {
			return 0, false
		}
		return s[i-1].W, true
	}
	i := m.cursor[node]
	if i >= len(s) {
		i = len(s) - 1
	} else {
		m.cursor[node] = i + 1
	}
	return s[i].W, true
}

// ModelName identifies the trace model in powerd responses.
func (m *TraceModel) ModelName() string { return "trace" }

// ParseTraceCSV reads a recorded estimator stream: one "node,t,watts"
// triple per line, '#' comments and blank lines skipped. An optional
// header line starting with "node," is skipped too.
func ParseTraceCSV(r io.Reader) (*TraceModel, error) {
	m := NewTraceModel()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 4096), maxLine)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if lineNo == 1 && strings.HasPrefix(line, "node,") {
			continue
		}
		parts := strings.Split(line, ",")
		if len(parts) != 3 {
			return nil, fmt.Errorf("powerd: trace line %d: want node,t,watts, got %q", lineNo, line)
		}
		node := strings.TrimSpace(parts[0])
		t, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err != nil {
			return nil, fmt.Errorf("powerd: trace line %d: bad time: %v", lineNo, err)
		}
		w, err := strconv.ParseFloat(strings.TrimSpace(parts[2]), 64)
		if err != nil {
			return nil, fmt.Errorf("powerd: trace line %d: bad watts: %v", lineNo, err)
		}
		if node == "" {
			return nil, fmt.Errorf("powerd: trace line %d: empty node", lineNo)
		}
		m.Add(node, t, w)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("powerd: reading trace: %w", err)
	}
	if len(m.series) == 0 {
		return nil, fmt.Errorf("powerd: trace holds no samples")
	}
	return m, nil
}
