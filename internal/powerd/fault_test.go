package powerd

import (
	"encoding/json"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"greensched/internal/power"
)

// The protocol-level fault suite: every way a sidecar can misbehave on
// the wire — absent at boot, killed mid-run, hung, malformed JSON,
// short read, wrong-version reply — must degrade to the analytic
// fallback (loudly: counters plus a one-shot log) and converge back to
// live readings after the sidecar returns. The middleware-level
// counterpart (elections continuing on fallback curves over both
// middleware transports) lives in internal/middleware.

// faultListener serves one connection handler per accept on either
// socket family; handler runs until it returns or the test closes.
func faultListener(t *testing.T, addr string, handler func(net.Conn)) (dialAddr string, closeFn func()) {
	t.Helper()
	network, address := SplitAddr(addr)
	ln, err := net.Listen(network, address)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				handler(conn)
			}()
		}
	}()
	dialAddr = ln.Addr().String()
	if network == "unix" {
		dialAddr = "unix:" + dialAddr
	}
	return dialAddr, func() { close(done); ln.Close() }
}

// faultClient builds the client under test: tight timeouts, no retry
// (each call is one observable attempt), a two-failure breaker, a fast
// background probe and counting logs.
func faultClient(t *testing.T, addr string, fallbackW float64, warns, recovers *atomic.Int64) *Client {
	t.Helper()
	cli, err := NewClient(Config{
		Addr: addr, Timeout: 80 * time.Millisecond, Retries: -1,
		StalenessSec: 0.001, BreakerAfter: 2, ReprobeSec: 0.02,
		Fallback: power.StaticSource{"node": fallbackW},
		Logf: func(format string, args ...any) {
			switch {
			case strings.Contains(format, "falling back"):
				warns.Add(1)
			case strings.Contains(format, "recovered"):
				recovers.Add(1)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	return cli
}

// mustFallback asserts n consecutive readings all serve the analytic
// fallback value — the scheduler's view never goes blind.
func mustFallback(t *testing.T, cli *Client, want float64, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		w, ok := cli.NodePowerW("node", nil, nil)
		if !ok || w != want {
			t.Fatalf("reading %d: got %v, %v; want fallback %v", i, w, ok, want)
		}
	}
}

// awaitLive polls until the client serves the sidecar's value again.
func awaitLive(t *testing.T, cli *Client, want float64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if w, ok := cli.NodePowerW("node", nil, nil); ok && w == want {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("client never converged back to the sidecar reading %v (stats %+v)", want, cli.Stats())
}

// TestFaultAbsentAtBootThenRecovery: no sidecar at client boot — every
// reading must come from the fallback curves with exactly one warning;
// once the sidecar appears at that address the background probe closes
// the breaker and live readings resume.
func TestFaultAbsentAtBootThenRecovery(t *testing.T) {
	bothNetworks(t, func(t *testing.T, addr string) {
		var warns, recovers atomic.Int64
		var dialAddr string
		if strings.HasPrefix(addr, "unix:") {
			dialAddr = addr
		} else {
			// Reserve a concrete TCP port, then free it: absent at
			// boot, reusable for the late-started sidecar.
			ln, err := net.Listen("tcp", addr)
			if err != nil {
				t.Fatal(err)
			}
			dialAddr = ln.Addr().String()
			ln.Close()
		}
		cli := faultClient(t, dialAddr, 77, &warns, &recovers)
		mustFallback(t, cli, 77, 5)
		st := cli.Stats()
		if st.Fallbacks < 5 || st.Errors < 2 || !st.BreakerOpen {
			t.Fatalf("stats %+v: want fallbacks, errors and an open breaker", st)
		}
		if warns.Load() != 1 {
			t.Fatalf("fallback warned %d times, want exactly 1 (loud, not noisy)", warns.Load())
		}

		srv, err := Serve(dialAddr, power.StaticSource{"node": 150}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		awaitLive(t, cli, 150)
		if recovers.Load() < 1 {
			t.Error("recovery was silent")
		}
		if cli.Stats().BreakerOpen {
			t.Error("breaker still open after recovery")
		}
	})
}

// TestFaultKilledMidRunThenRestart: live readings, then the sidecar
// dies; readings continue from the fallback; a restarted sidecar at
// the same address brings fresh readings back within the staleness
// window.
func TestFaultKilledMidRunThenRestart(t *testing.T) {
	bothNetworks(t, func(t *testing.T, addr string) {
		var warns, recovers atomic.Int64
		srv, err := Serve(addr, power.StaticSource{"node": 150}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		dialAddr := srv.Addr()
		cli := faultClient(t, dialAddr, 77, &warns, &recovers)
		if w, ok := cli.NodePowerW("node", nil, nil); !ok || w != 150 {
			t.Fatalf("live reading %v, %v", w, ok)
		}

		srv.Close() // kill -9
		// Let the 1ms staleness window of the test client lapse so the
		// readings below provably come from the fallback curves, not
		// the last-good cache.
		time.Sleep(10 * time.Millisecond)
		mustFallback(t, cli, 77, 4)
		if warns.Load() != 1 {
			t.Fatalf("fallback warned %d times, want exactly 1", warns.Load())
		}
		if cli.Stats().Fallbacks < 1 {
			t.Fatalf("stats %+v", cli.Stats())
		}

		srv2, err := Serve(dialAddr, power.StaticSource{"node": 151}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer srv2.Close()
		awaitLive(t, cli, 151)
		if _, age, ok := cli.LastReading("node"); !ok || age > 5 {
			t.Errorf("reading not fresh after restart: age %v, ok %v", age, ok)
		}
		if recovers.Load() < 1 {
			t.Error("recovery was silent")
		}
	})
}

// TestFaultHungSidecar: the sidecar accepts and never answers — the
// request timeout must cut each attempt and the breaker must stop the
// bleeding.
func TestFaultHungSidecar(t *testing.T) {
	bothNetworks(t, func(t *testing.T, addr string) {
		hold := make(chan struct{})
		defer close(hold)
		dialAddr, stop := faultListener(t, addr, func(conn net.Conn) {
			buf := make([]byte, 256)
			conn.Read(buf)
			<-hold // never reply
		})
		defer stop()
		var warns, recovers atomic.Int64
		cli := faultClient(t, dialAddr, 77, &warns, &recovers)
		start := time.Now()
		mustFallback(t, cli, 77, 4)
		if elapsed := time.Since(start); elapsed > 3*time.Second {
			t.Fatalf("4 readings against a hung sidecar took %v — timeout not enforced", elapsed)
		}
		st := cli.Stats()
		if st.Errors < 2 || !st.BreakerOpen {
			t.Fatalf("stats %+v: want timeout errors and an open breaker", st)
		}
	})
}

// TestFaultMalformedJSON: the sidecar answers garbage — the client
// must drop the desynchronized connection and fall back.
func TestFaultMalformedJSON(t *testing.T) {
	bothNetworks(t, func(t *testing.T, addr string) {
		dialAddr, stop := faultListener(t, addr, func(conn net.Conn) {
			buf := make([]byte, 256)
			for {
				if _, err := conn.Read(buf); err != nil {
					return
				}
				if _, err := conn.Write([]byte("{this is not json\n")); err != nil {
					return
				}
			}
		})
		defer stop()
		var warns, recovers atomic.Int64
		cli := faultClient(t, dialAddr, 77, &warns, &recovers)
		mustFallback(t, cli, 77, 4)
		if st := cli.Stats(); st.Errors < 2 {
			t.Fatalf("stats %+v", st)
		}
		if warns.Load() != 1 {
			t.Fatalf("warned %d times", warns.Load())
		}
	})
}

// TestFaultShortRead: the sidecar dies mid-line — half a reply is a
// transport error, not a parsed zero.
func TestFaultShortRead(t *testing.T) {
	bothNetworks(t, func(t *testing.T, addr string) {
		dialAddr, stop := faultListener(t, addr, func(conn net.Conn) {
			buf := make([]byte, 256)
			conn.Read(buf)
			conn.Write([]byte(`{"v":1,"watts":15`)) // no newline, then close
		})
		defer stop()
		var warns, recovers atomic.Int64
		cli := faultClient(t, dialAddr, 77, &warns, &recovers)
		mustFallback(t, cli, 77, 4)
		if st := cli.Stats(); st.Errors < 2 {
			t.Fatalf("stats %+v", st)
		}
	})
}

// TestFaultWrongVersionReply: a future (or ancient) sidecar — the
// client must refuse to guess across versions and fall back.
func TestFaultWrongVersionReply(t *testing.T) {
	bothNetworks(t, func(t *testing.T, addr string) {
		dialAddr, stop := faultListener(t, addr, func(conn net.Conn) {
			buf := make([]byte, 256)
			for {
				if _, err := conn.Read(buf); err != nil {
					return
				}
				line, _ := json.Marshal(PowerResponse{V: 99, Watts: 1234, Model: "future"})
				if _, err := conn.Write(append(line, '\n')); err != nil {
					return
				}
			}
		})
		defer stop()
		var warns, recovers atomic.Int64
		cli := faultClient(t, dialAddr, 77, &warns, &recovers)
		mustFallback(t, cli, 77, 4)
		st := cli.Stats()
		if st.Errors < 2 || !st.BreakerOpen {
			t.Fatalf("stats %+v: wrong-version replies must count as failures", st)
		}
	})
}
