package powerd

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"greensched/internal/power"
)

// Options configures a reference sidecar.
type Options struct {
	// Model names the serving model in every response. Empty: the
	// source's ModelName() if it has one, else "external".
	Model string
}

// Server is the reference sidecar: it serves any power.Source over the
// powerd line protocol. One goroutine per connection, any number of
// requests per connection.
type Server struct {
	ln    net.Listener
	src   power.Source
	model string

	requests atomic.Uint64

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// Serve listens on addr (SplitAddr syntax: "unix:/path", "/path",
// "tcp:host:port" or "host:port") and serves src until Close.
func Serve(addr string, src power.Source, opts Options) (*Server, error) {
	if src == nil {
		return nil, fmt.Errorf("powerd: serve needs a power source")
	}
	network, address := SplitAddr(addr)
	ln, err := net.Listen(network, address)
	if err != nil {
		return nil, fmt.Errorf("powerd: listen %s %s: %w", network, address, err)
	}
	return NewServer(ln, src, opts), nil
}

// NewServer serves src on an existing listener (tests inject fault
// listeners through this).
func NewServer(ln net.Listener, src power.Source, opts Options) *Server {
	model := opts.Model
	if model == "" {
		if n, ok := src.(interface{ ModelName() string }); ok {
			model = n.ModelName()
		} else {
			model = "external"
		}
	}
	s := &Server{ln: ln, src: src, model: model, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the server's dialable address in SplitAddr syntax:
// "unix:/path" for unix-domain listeners, "host:port" for TCP.
func (s *Server) Addr() string {
	a := s.ln.Addr()
	if a.Network() == "unix" {
		return "unix:" + a.String()
	}
	return a.String()
}

// Model returns the model name stamped on responses.
func (s *Server) Model() string { return s.model }

// Requests returns how many protocol requests the server has answered.
func (s *Server) Requests() uint64 { return s.requests.Load() }

// Close stops the listener, drops every open connection and waits for
// the connection goroutines — after Close returns, a client's next
// exchange fails exactly as a killed sidecar's would.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handle(conn)
	}
}

func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 4096), maxLine)
	w := bufio.NewWriter(conn)
	for sc.Scan() {
		s.requests.Add(1)
		resp := s.answer(sc.Bytes())
		line, err := json.Marshal(resp)
		if err != nil {
			return
		}
		line = append(line, '\n')
		if _, err := w.Write(line); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// answer resolves one request line to a response. Every answer carries
// the server's version — malformed or mismatched requests get a
// msg-carrying reply on the current protocol, never silence.
func (s *Server) answer(line []byte) PowerResponse {
	resp := PowerResponse{V: ProtocolVersion, Model: s.model}
	var req PowerRequest
	if err := json.Unmarshal(line, &req); err != nil {
		resp.Msg = fmt.Sprintf("bad request: %v", err)
		return resp
	}
	if req.V != ProtocolVersion {
		resp.Msg = fmt.Sprintf("protocol v%d not supported (server speaks v%d)", req.V, ProtocolVersion)
		return resp
	}
	if req.Node == "" {
		return resp // liveness probe
	}
	w, ok := s.src.NodePowerW(req.Node, req.Metrics, req.Values)
	if !ok {
		resp.Msg = fmt.Sprintf("no reading for node %q", req.Node)
		return resp
	}
	resp.Watts = w
	return resp
}
