package powerd

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"greensched/internal/power"
)

// Config parameterizes a sidecar client. Only Addr is required; the
// zero value of everything else picks conservative defaults sized for
// a local socket.
type Config struct {
	// Addr is the sidecar's address in SplitAddr syntax
	// ("unix:/run/powerd.sock", "/run/powerd.sock", "host:port").
	Addr string

	// Timeout bounds one dial-plus-exchange attempt (default 250ms —
	// the sidecar is local; a slow answer is a hung answer).
	Timeout time.Duration
	// Retries is how many extra attempts follow a failed exchange
	// within one reading (default 1; negative disables retry).
	Retries int
	// StalenessSec is the last-good cache window: a reading this
	// recent is served in place of an unreachable sidecar before the
	// client falls back to analytic curves (default 5).
	StalenessSec float64
	// BreakerAfter trips the circuit breaker after this many
	// consecutive failed readings (default 3): calls then skip the
	// socket entirely — cache, then fallback — while a background
	// probe waits for the sidecar to return.
	BreakerAfter int
	// ReprobeSec is the background probe period while the breaker is
	// open (default 0.25).
	ReprobeSec float64

	// Fallback serves readings when the sidecar is unusable and the
	// cache is stale — wire the built-in analytic curves
	// (power.CurveSource / power.StaticSource) here so estimation
	// degrades to the in-process model instead of going blind. Nil:
	// unusable sidecar means no reading.
	Fallback power.Source

	// Logf receives the one-shot fallback and recovery notices
	// (default log.Printf). Fallback is deliberately loud — once per
	// outage, never per call, never silent.
	Logf func(format string, args ...any)
	// Clock is the staleness clock in seconds (default: monotonic
	// since NewClient). Tests inject it to pin cache-window edges.
	Clock func() float64
}

// Stats is a point-in-time snapshot of the client's counters — the
// source of the greensched_power_* metric families.
type Stats struct {
	// Requests counts protocol exchanges attempted (including retries
	// and breaker probes); Errors the ones that failed.
	Requests uint64
	Errors   uint64
	// Fallbacks counts readings the local Fallback curves served;
	// CacheHits the ones the last-good cache absorbed first.
	Fallbacks uint64
	CacheHits uint64
	// BreakerOpen reports the breaker state; while open every reading
	// is local and a background probe polls the sidecar.
	BreakerOpen bool
	// LastGoodSec is the age of the newest successful reading across
	// all nodes (-1 before the first) — the staleness gauge.
	LastGoodSec float64
}

// Reading is one node's cached last-good value.
type Reading struct {
	Node   string
	Watts  power.Watts
	AgeSec float64
}

// errApp marks an application-level reply (node unknown, bad request):
// the sidecar is alive and authoritative, so the failure must not trip
// the breaker.
var errApp = errors.New("powerd: application error")

type cached struct {
	w  power.Watts
	at float64
}

// Client is the consuming half of the protocol: a concurrency-safe
// power.Source backed by an out-of-process sidecar. Every reading is
// one request/response exchange on a single multiplexed connection,
// with a per-attempt timeout and bounded retry; failures degrade
// loudly through the last-good cache to the analytic Fallback, and a
// circuit breaker stops hammering a dead socket while a background
// probe watches for recovery.
type Client struct {
	cfg              Config
	network, address string

	// connMu serializes exchanges on the one connection (and lazy
	// redials). Breaker-open readings never touch it.
	connMu sync.Mutex
	conn   net.Conn
	sc     *bufio.Scanner

	// stateMu guards the cache and breaker state.
	stateMu     sync.Mutex
	cache       map[string]cached
	consecFails int
	breakerOpen bool
	probing     bool
	warnArmed   bool

	requests  atomic.Uint64
	errors    atomic.Uint64
	fallbacks atomic.Uint64
	cacheHits atomic.Uint64

	closed atomic.Bool
	done   chan struct{}
	wg     sync.WaitGroup
}

// NewClient returns a client for the sidecar at cfg.Addr. It does NOT
// dial: a sidecar absent at boot is a normal, loud-fallback condition,
// and the first reading (or breaker probe) connects when it can.
func NewClient(cfg Config) (*Client, error) {
	if cfg.Addr == "" {
		return nil, fmt.Errorf("powerd: client needs an address")
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 250 * time.Millisecond
	}
	if cfg.Retries == 0 {
		cfg.Retries = 1
	} else if cfg.Retries < 0 {
		cfg.Retries = 0
	}
	if cfg.StalenessSec <= 0 {
		cfg.StalenessSec = 5
	}
	if cfg.BreakerAfter <= 0 {
		cfg.BreakerAfter = 3
	}
	if cfg.ReprobeSec <= 0 {
		cfg.ReprobeSec = 0.25
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	if cfg.Clock == nil {
		start := time.Now()
		cfg.Clock = func() float64 { return time.Since(start).Seconds() }
	}
	network, address := SplitAddr(cfg.Addr)
	return &Client{
		cfg: cfg, network: network, address: address,
		cache: make(map[string]cached), warnArmed: true,
		done: make(chan struct{}),
	}, nil
}

// NodePowerW implements power.Source: the node's current draw from
// the sidecar, or — degrading loudly — from the last-good cache
// within the staleness window, or from the analytic Fallback.
func (c *Client) NodePowerW(node string, metrics []string, values []float64) (power.Watts, bool) {
	if node == "" {
		return 0, false
	}
	if c.closed.Load() || c.breakerIsOpen() {
		return c.serveLocal(node, metrics, values)
	}
	w, err := c.fetch(node, metrics, values)
	if err == nil {
		c.noteSuccess(node, w)
		return w, true
	}
	c.noteFailure(err)
	return c.serveLocal(node, metrics, values)
}

// LastReading implements power.ReadingSource.
func (c *Client) LastReading(node string) (power.Watts, float64, bool) {
	now := c.cfg.Clock()
	c.stateMu.Lock()
	defer c.stateMu.Unlock()
	r, ok := c.cache[node]
	if !ok {
		return 0, 0, false
	}
	return r.w, now - r.at, true
}

// Readings returns every node's cached last-good value, sorted by
// node — what refreshes the per-node watts gauges at scrape time.
func (c *Client) Readings() []Reading {
	now := c.cfg.Clock()
	c.stateMu.Lock()
	out := make([]Reading, 0, len(c.cache))
	for node, r := range c.cache {
		out = append(out, Reading{Node: node, Watts: r.w, AgeSec: now - r.at})
	}
	c.stateMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// Stats returns a snapshot of the client's counters.
func (c *Client) Stats() Stats {
	st := Stats{
		Requests:    c.requests.Load(),
		Errors:      c.errors.Load(),
		Fallbacks:   c.fallbacks.Load(),
		CacheHits:   c.cacheHits.Load(),
		LastGoodSec: -1,
	}
	now := c.cfg.Clock()
	c.stateMu.Lock()
	st.BreakerOpen = c.breakerOpen
	for _, r := range c.cache {
		if age := now - r.at; st.LastGoodSec < 0 || age < st.LastGoodSec {
			st.LastGoodSec = age
		}
	}
	c.stateMu.Unlock()
	return st
}

// Close stops the background probe and drops the connection. Readings
// after Close serve from cache/fallback only.
func (c *Client) Close() error {
	if !c.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(c.done)
	c.connMu.Lock()
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
		c.sc = nil
	}
	c.connMu.Unlock()
	c.wg.Wait()
	return nil
}

func (c *Client) breakerIsOpen() bool {
	c.stateMu.Lock()
	defer c.stateMu.Unlock()
	return c.breakerOpen
}

// fetch asks the sidecar for one reading, retrying transient failures
// up to cfg.Retries times.
func (c *Client) fetch(node string, metrics []string, values []float64) (power.Watts, error) {
	req := PowerRequest{V: ProtocolVersion, Node: node, Metrics: metrics, Values: values}
	var err error
	for attempt := 0; attempt <= c.cfg.Retries; attempt++ {
		c.requests.Add(1)
		var resp PowerResponse
		resp, err = c.exchange(req)
		if err == nil {
			return resp.Watts, nil
		}
		c.errors.Add(1)
		if errors.Is(err, errApp) {
			return 0, err // authoritative answer; retry won't change it
		}
	}
	return 0, err
}

// exchange performs one request/response round trip, dialing lazily.
// Transport failures reset the connection so the next attempt redials.
func (c *Client) exchange(req PowerRequest) (PowerResponse, error) {
	line, err := json.Marshal(req)
	if err != nil {
		return PowerResponse{}, err
	}
	line = append(line, '\n')

	c.connMu.Lock()
	defer c.connMu.Unlock()
	if c.conn == nil {
		conn, err := net.DialTimeout(c.network, c.address, c.cfg.Timeout)
		if err != nil {
			return PowerResponse{}, fmt.Errorf("powerd: dial %s: %w", c.cfg.Addr, err)
		}
		c.conn = conn
		c.sc = bufio.NewScanner(conn)
		c.sc.Buffer(make([]byte, 4096), maxLine)
	}
	reset := func() {
		c.conn.Close()
		c.conn = nil
		c.sc = nil
	}
	c.conn.SetDeadline(time.Now().Add(c.cfg.Timeout))
	if _, err := c.conn.Write(line); err != nil {
		reset()
		return PowerResponse{}, fmt.Errorf("powerd: write: %w", err)
	}
	if !c.sc.Scan() {
		err := c.sc.Err()
		if err == nil {
			err = errors.New("connection closed mid-exchange")
		}
		reset()
		return PowerResponse{}, fmt.Errorf("powerd: read: %w", err)
	}
	var resp PowerResponse
	if err := json.Unmarshal(c.sc.Bytes(), &resp); err != nil {
		// The stream is desynchronized (malformed JSON, short line):
		// drop the connection rather than guess at framing.
		reset()
		return PowerResponse{}, fmt.Errorf("powerd: malformed reply: %w", err)
	}
	if resp.V != ProtocolVersion {
		reset()
		return PowerResponse{}, fmt.Errorf("powerd: server speaks protocol v%d, want v%d", resp.V, ProtocolVersion)
	}
	if resp.Msg != "" {
		return PowerResponse{}, fmt.Errorf("%w: %s", errApp, resp.Msg)
	}
	return resp, nil
}

// noteSuccess caches the reading and closes the failure streak.
func (c *Client) noteSuccess(node string, w power.Watts) {
	now := c.cfg.Clock()
	c.stateMu.Lock()
	c.cache[node] = cached{w: w, at: now}
	c.consecFails = 0
	if !c.warnArmed {
		c.cfg.Logf("powerd: sidecar %s recovered; resuming external readings", c.cfg.Addr)
		c.warnArmed = true
	}
	c.stateMu.Unlock()
}

// noteFailure advances the breaker. Application-level replies reset
// the streak instead: the sidecar answered, it just has no number.
func (c *Client) noteFailure(err error) {
	c.stateMu.Lock()
	defer c.stateMu.Unlock()
	if errors.Is(err, errApp) {
		c.consecFails = 0
		return
	}
	c.consecFails++
	if c.consecFails < c.cfg.BreakerAfter || c.breakerOpen {
		return
	}
	c.breakerOpen = true
	if !c.probing && !c.closed.Load() {
		c.probing = true
		c.wg.Add(1)
		go c.reprobe()
	}
}

// serveLocal answers without the sidecar: last-good cache within the
// staleness window first, then the analytic Fallback — counted, and
// announced once per outage.
func (c *Client) serveLocal(node string, metrics []string, values []float64) (power.Watts, bool) {
	now := c.cfg.Clock()
	c.stateMu.Lock()
	if r, ok := c.cache[node]; ok && now-r.at <= c.cfg.StalenessSec {
		c.stateMu.Unlock()
		c.cacheHits.Add(1)
		return r.w, true
	}
	if c.warnArmed {
		c.warnArmed = false
		c.cfg.Logf("powerd: sidecar %s unreachable; falling back to analytic power curves", c.cfg.Addr)
	}
	c.stateMu.Unlock()
	c.fallbacks.Add(1)
	if c.cfg.Fallback == nil {
		return 0, false
	}
	return c.cfg.Fallback.NodePowerW(node, metrics, values)
}

// reprobe polls the sidecar while the breaker is open and closes it on
// the first healthy versioned reply.
func (c *Client) reprobe() {
	defer c.wg.Done()
	ticker := time.NewTicker(time.Duration(c.cfg.ReprobeSec * float64(time.Second)))
	defer ticker.Stop()
	for {
		select {
		case <-c.done:
			c.stateMu.Lock()
			c.probing = false
			c.stateMu.Unlock()
			return
		case <-ticker.C:
		}
		c.requests.Add(1)
		_, err := c.exchange(PowerRequest{V: ProtocolVersion})
		if err != nil {
			c.errors.Add(1)
			continue
		}
		c.stateMu.Lock()
		c.breakerOpen = false
		c.consecFails = 0
		c.probing = false
		if !c.warnArmed {
			c.cfg.Logf("powerd: sidecar %s recovered; resuming external readings", c.cfg.Addr)
			c.warnArmed = true
		}
		c.stateMu.Unlock()
		return
	}
}
