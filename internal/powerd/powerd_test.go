package powerd

import (
	"strings"
	"sync"
	"testing"
	"time"

	"greensched/internal/power"
)

func TestSplitAddr(t *testing.T) {
	for _, tc := range []struct {
		in, network, address string
	}{
		{"unix:/run/powerd.sock", "unix", "/run/powerd.sock"},
		{"/run/powerd.sock", "unix", "/run/powerd.sock"},
		{"tcp:127.0.0.1:9371", "tcp", "127.0.0.1:9371"},
		{"127.0.0.1:9371", "tcp", "127.0.0.1:9371"},
		{"localhost:0", "tcp", "localhost:0"},
	} {
		network, address := SplitAddr(tc.in)
		if network != tc.network || address != tc.address {
			t.Errorf("SplitAddr(%q) = (%q, %q), want (%q, %q)", tc.in, network, address, tc.network, tc.address)
		}
	}
}

// bothNetworks runs fn once per socket family the protocol supports.
func bothNetworks(t *testing.T, fn func(t *testing.T, addr string)) {
	t.Helper()
	t.Run("unix", func(t *testing.T) {
		fn(t, "unix:"+t.TempDir()+"/powerd.sock")
	})
	t.Run("tcp", func(t *testing.T) {
		fn(t, "127.0.0.1:0")
	})
}

func TestServeRoundTrip(t *testing.T) {
	bothNetworks(t, func(t *testing.T, addr string) {
		srv, err := Serve(addr, power.StaticSource{"lean": 80, "hungry": 320}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()

		cli, err := NewClient(Config{Addr: srv.Addr()})
		if err != nil {
			t.Fatal(err)
		}
		defer cli.Close()

		for node, want := range map[string]float64{"lean": 80, "hungry": 320} {
			w, ok := cli.NodePowerW(node, nil, nil)
			if !ok || w != want {
				t.Errorf("NodePowerW(%s) = %v, %v; want %v, true", node, w, ok, want)
			}
		}
		w, age, ok := cli.LastReading("lean")
		if !ok || w != 80 || age > 1 {
			t.Errorf("LastReading(lean) = %v, %v, %v", w, age, ok)
		}
		st := cli.Stats()
		if st.Requests < 2 || st.Errors != 0 || st.Fallbacks != 0 {
			t.Errorf("stats %+v", st)
		}
		if srv.Requests() < 2 {
			t.Errorf("server answered %d requests", srv.Requests())
		}
		rd := cli.Readings()
		if len(rd) != 2 || rd[0].Node != "hungry" || rd[1].Node != "lean" {
			t.Errorf("readings %+v", rd)
		}
	})
}

func TestServeCurveModelUtilization(t *testing.T) {
	curve := power.CurveSource{Default: power.LinearModel{IdleW: 100, PeakW: 300}}
	srv, err := Serve("127.0.0.1:0", curve, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.Model() != "curve" {
		t.Errorf("model %q, want curve (from ModelName)", srv.Model())
	}
	cli, err := NewClient(Config{Addr: srv.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	idle, ok := cli.NodePowerW("any", nil, nil)
	if !ok || idle != 100 {
		t.Fatalf("idle reading %v, %v", idle, ok)
	}
	busy, ok := cli.NodePowerW("any", []string{power.MetricUtil}, []float64{1})
	if !ok || busy != 300 {
		t.Fatalf("busy reading %v, %v", busy, ok)
	}
}

// TestClientUnknownNodeDoesNotTripBreaker: an application-level "no
// reading for node" reply is authoritative — it must fall back, count
// an error, and NOT open the breaker (the sidecar is alive).
func TestClientUnknownNodeDoesNotTripBreaker(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", power.StaticSource{"known": 50}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := NewClient(Config{
		Addr: srv.Addr(), BreakerAfter: 2, Retries: -1,
		Fallback: power.StaticSource{"ghost": 123},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	for i := 0; i < 5; i++ {
		w, ok := cli.NodePowerW("ghost", nil, nil)
		if !ok || w != 123 {
			t.Fatalf("call %d: got %v, %v; want fallback 123", i, w, ok)
		}
	}
	st := cli.Stats()
	if st.BreakerOpen {
		t.Error("application errors tripped the breaker")
	}
	if st.Errors < 5 || st.Fallbacks < 5 {
		t.Errorf("stats %+v", st)
	}
	// The live node still reads straight through.
	if w, ok := cli.NodePowerW("known", nil, nil); !ok || w != 50 {
		t.Errorf("known node: %v, %v", w, ok)
	}
}

func TestClientStalenessWindow(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", power.StaticSource{"n": 200}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	now := 0.0
	var mu sync.Mutex
	clock := func() float64 { mu.Lock(); defer mu.Unlock(); return now }
	tick := func(d float64) { mu.Lock(); now += d; mu.Unlock() }
	cli, err := NewClient(Config{
		Addr: srv.Addr(), Timeout: 50 * time.Millisecond, Retries: -1,
		StalenessSec: 5, BreakerAfter: 1, ReprobeSec: 3600,
		Fallback: power.StaticSource{"n": 999},
		Clock:    clock, Logf: func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	if w, ok := cli.NodePowerW("n", nil, nil); !ok || w != 200 {
		t.Fatalf("live reading %v, %v", w, ok)
	}
	srv.Close()

	// Within the staleness window the cached last-good value serves.
	tick(1)
	if w, ok := cli.NodePowerW("n", nil, nil); !ok || w != 200 {
		t.Fatalf("cached reading %v, %v; want 200 from last-good cache", w, ok)
	}
	if st := cli.Stats(); st.CacheHits < 1 {
		t.Errorf("stats %+v: no cache hit recorded", st)
	}
	// Past the window the analytic fallback takes over.
	tick(10)
	if w, ok := cli.NodePowerW("n", nil, nil); !ok || w != 999 {
		t.Fatalf("stale reading %v, %v; want fallback 999", w, ok)
	}
	st := cli.Stats()
	if st.Fallbacks < 1 || st.LastGoodSec < 5 {
		t.Errorf("stats %+v", st)
	}
}

func TestTraceModelTimeKeyed(t *testing.T) {
	m := NewTraceModel()
	m.Add("n", 10, 150)
	m.Add("n", 0, 100) // out of order on purpose
	m.Add("n", 20, 200)

	if _, ok := m.NodePowerW("n", []string{power.MetricTime}, []float64{-1}); ok {
		t.Error("reading before the first sample should miss")
	}
	for _, tc := range []struct{ t, want float64 }{
		{0, 100}, {5, 100}, {10, 150}, {19.9, 150}, {20, 200}, {1e9, 200},
	} {
		w, ok := m.NodePowerW("n", []string{power.MetricTime}, []float64{tc.t})
		if !ok || w != tc.want {
			t.Errorf("t=%v: got %v, %v; want %v", tc.t, w, ok, tc.want)
		}
	}
	// Determinism: the same time always yields the same watts.
	for i := 0; i < 3; i++ {
		if w, _ := m.NodePowerW("n", []string{power.MetricTime}, []float64{10}); w != 150 {
			t.Fatalf("repeat %d: %v", i, w)
		}
	}
	if _, ok := m.NodePowerW("ghost", []string{power.MetricTime}, []float64{10}); ok {
		t.Error("unknown node should miss")
	}
}

func TestTraceModelSequential(t *testing.T) {
	m := NewTraceModel()
	m.Add("n", 0, 1)
	m.Add("n", 1, 2)
	want := []float64{1, 2, 2, 2} // holds the last sample when exhausted
	for i, wv := range want {
		if w, ok := m.NodePowerW("n", nil, nil); !ok || w != wv {
			t.Errorf("pop %d: got %v, %v; want %v", i, w, ok, wv)
		}
	}
}

func TestParseTraceCSV(t *testing.T) {
	m, err := ParseTraceCSV(strings.NewReader(`node,t,watts
# recorded estimator stream
lean, 0, 80
lean, 1, 85
hungry,0,320
`))
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Nodes(); len(got) != 2 || got[0] != "hungry" || got[1] != "lean" {
		t.Fatalf("nodes %v", got)
	}
	if w, ok := m.NodePowerW("lean", []string{power.MetricTime}, []float64{1}); !ok || w != 85 {
		t.Fatalf("lean@1 = %v, %v", w, ok)
	}
	if _, err := ParseTraceCSV(strings.NewReader("lean,notanumber,80\n")); err == nil {
		t.Error("bad time parsed")
	}
	if _, err := ParseTraceCSV(strings.NewReader("just,two\n")); err == nil {
		t.Error("two-column line parsed")
	}
	if _, err := ParseTraceCSV(strings.NewReader("# empty\n")); err == nil {
		t.Error("empty trace parsed")
	}
}

// TestClientConcurrent hammers one client from many goroutines while
// the sidecar dies mid-run — the -race shape of the live SED stack
// polling power sources from every execution slot.
func TestClientConcurrent(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", power.StaticSource{"a": 10, "b": 20}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cli, err := NewClient(Config{
		Addr: srv.Addr(), Timeout: 50 * time.Millisecond, Retries: -1,
		BreakerAfter: 2, ReprobeSec: 0.01, StalenessSec: 0.001,
		Fallback: power.StaticSource{"a": 11, "b": 21},
		Logf:     func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			node := []string{"a", "b"}[g%2]
			for i := 0; i < 40; i++ {
				if _, ok := cli.NodePowerW(node, nil, nil); !ok {
					t.Errorf("reading %s lost entirely (fallback must always answer)", node)
					return
				}
				if i == 20 && g == 0 {
					srv.Close() // killed mid-run
				}
			}
		}()
	}
	wg.Wait()
	if st := cli.Stats(); st.Requests == 0 {
		t.Errorf("stats %+v", st)
	}
}
