// Package powerd is the out-of-process power estimation protocol: a
// versioned JSON line protocol over a unix-domain or TCP socket,
// through which per-node power readings come from an external sidecar
// (learned models, RAPL readers, GPU meters) instead of the built-in
// analytic curves — the Kepler architecture applied to the paper's
// §III-A dynamic estimation.
//
// One request per line, one response per line:
//
//	→ {"v":1,"node":"lean","metrics":["util"],"values":[0.5]}
//	← {"v":1,"watts":182.5,"model":"curve"}
//
// A response with a non-empty msg is an application-level error (node
// unknown to the model, malformed request); the connection stays up. A
// request with an empty node is a liveness probe: the server answers
// with its version and model and no watts.
//
// Serve wraps any power.Source as a sidecar; Client is the consuming
// half — a concurrency-safe power.Source with request timeouts,
// bounded retry, last-good caching and a circuit breaker that trips to
// a local fallback and re-probes in the background.
package powerd

import "strings"

// ProtocolVersion is the wire version both halves stamp on every
// message. A mismatch is an error on the client and a msg-carrying
// response from the server: neither side guesses across versions.
const ProtocolVersion = 1

// PowerRequest asks the sidecar for one node's current draw. Metrics
// and Values are parallel slices describing the caller's operating
// point (power.MetricUtil, power.MetricTime, ...); servers ignore
// metrics they don't understand.
type PowerRequest struct {
	V       int       `json:"v"`
	Node    string    `json:"node"`
	Metrics []string  `json:"metrics,omitempty"`
	Values  []float64 `json:"values,omitempty"`
}

// PowerResponse is the sidecar's answer: the node's estimated draw and
// the name of the model that produced it. A non-empty Msg marks an
// application-level error (Watts is then meaningless).
type PowerResponse struct {
	V     int     `json:"v"`
	Watts float64 `json:"watts"`
	Model string  `json:"model,omitempty"`
	Msg   string  `json:"msg,omitempty"`
}

// maxLine bounds one protocol line on both halves — a malformed peer
// cannot make the other side buffer without bound.
const maxLine = 1 << 20

// SplitAddr resolves a powerd address string to a (network, address)
// pair for net.Dial/net.Listen:
//
//	"unix:/run/powerd.sock"  → ("unix", "/run/powerd.sock")
//	"tcp:127.0.0.1:9371"     → ("tcp", "127.0.0.1:9371")
//	"/run/powerd.sock"       → ("unix", ...)   (contains a slash)
//	"127.0.0.1:9371"         → ("tcp", ...)
func SplitAddr(addr string) (network, address string) {
	switch {
	case strings.HasPrefix(addr, "unix:"):
		return "unix", strings.TrimPrefix(addr, "unix:")
	case strings.HasPrefix(addr, "tcp:"):
		return "tcp", strings.TrimPrefix(addr, "tcp:")
	case strings.Contains(addr, "/"):
		return "unix", addr
	default:
		return "tcp", addr
	}
}
