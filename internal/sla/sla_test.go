package sla

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"greensched/internal/workload"
)

func TestCurveShapes(t *testing.T) {
	cases := []struct {
		name     string
		c        Curve
		lateness float64
		want     float64
	}{
		{"flat early", Flat{}, -10, 1},
		{"flat late", Flat{}, 1e6, 1},
		{"hard on time", HardDrop{}, 0, 1},
		{"hard late", HardDrop{}, 0.001, 0},
		{"linear on time", LinearDecay{DecaySec: 100}, -1, 1},
		{"linear half", LinearDecay{DecaySec: 100}, 50, 0.5},
		{"linear floor", LinearDecay{DecaySec: 100}, 500, 0},
		{"linear penalty floor", LinearDecay{DecaySec: 100, Floor: -0.5}, 100, -0.5},
		{"linear midway to penalty", LinearDecay{DecaySec: 100, Floor: -1}, 50, 0},
		{"stepped on time", Stepped{Steps: []Step{{0, 0.5}, {60, 0}}}, 0, 1},
		{"stepped first", Stepped{Steps: []Step{{0, 0.5}, {60, 0}}}, 30, 0.5},
		{"stepped at boundary", Stepped{Steps: []Step{{0, 0.5}, {60, 0}}}, 60, 0},
		{"stepped beyond", Stepped{Steps: []Step{{0, 0.5}, {60, 0}, {300, -0.25}}}, 400, -0.25},
	}
	for _, c := range cases {
		if got := c.c.Retained(c.lateness); got != c.want {
			t.Errorf("%s: Retained(%v) = %v, want %v", c.name, c.lateness, got, c.want)
		}
	}
}

func TestCurveMonotone(t *testing.T) {
	curves := []Curve{
		HardDrop{}, Flat{},
		LinearDecay{DecaySec: 120, Floor: -0.5},
		Stepped{Steps: []Step{{0, 0.8}, {30, 0.3}, {600, -1}}},
	}
	for _, c := range curves {
		if err := c.Validate(); err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		prev := math.Inf(1)
		for late := -10.0; late < 1000; late += 7 {
			got := c.Retained(late)
			if got > prev {
				t.Fatalf("%s not non-increasing at lateness %v: %v > %v", c.Name(), late, got, prev)
			}
			prev = got
		}
	}
}

func TestCurveValidation(t *testing.T) {
	bad := []Curve{
		LinearDecay{DecaySec: 0},
		LinearDecay{DecaySec: 10, Floor: 2},
		Stepped{},
		Stepped{Steps: []Step{{AfterSec: -1, Retained: 0.5}}},
		Stepped{Steps: []Step{{0, 0.5}, {0, 0.2}}},  // not strictly increasing
		Stepped{Steps: []Step{{0, 0.2}, {10, 0.5}}}, // retained increases
		Stepped{Steps: []Step{{0, 1.5}}},            // above full value
		Stepped{Steps: []Step{{5, 0.9}, {2, 0.1}}},  // unsorted
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad curve %d (%s) validated", i, c.Name())
		}
	}
}

func TestCatalogResolve(t *testing.T) {
	cat := DefaultCatalog()
	if err := cat.Validate(); err != nil {
		t.Fatal(err)
	}

	// Class defaults fill value, deadline and curve.
	terms := cat.Resolve(workload.Task{ID: 1, Ops: 1, Submit: 100, Class: ClassDeadline})
	if terms.Deadline != 100+3600 || terms.ValueUSD != 0.50 {
		t.Errorf("class defaults not applied: %+v", terms)
	}
	if terms.Curve.Name() != "hard-drop" {
		t.Errorf("deadline class curve = %s", terms.Curve.Name())
	}

	// Explicit task fields override the class.
	terms = cat.Resolve(workload.Task{ID: 2, Ops: 1, Submit: 100, Class: ClassDeadline, Deadline: 400, Value: 9})
	if terms.Deadline != 400 || terms.ValueUSD != 9 {
		t.Errorf("explicit fields lost: %+v", terms)
	}

	// Unclassified with a bare deadline: hard-drop fail-safe.
	terms = cat.Resolve(workload.Task{ID: 3, Ops: 1, Submit: 0, Deadline: 50, Value: 1})
	if terms.Curve.Name() != "hard-drop" {
		t.Errorf("bare deadline curve = %s, want hard-drop", terms.Curve.Name())
	}

	// Unclassified best effort: flat.
	terms = cat.Resolve(workload.Task{ID: 4, Ops: 1, Submit: 0})
	if terms.Curve.Name() != "flat" || terms.Deadline != 0 {
		t.Errorf("best-effort terms = %+v", terms)
	}
}

func TestCatalogValidateKeyMismatch(t *testing.T) {
	cat := Catalog{"a": {Name: "b"}}
	if err := cat.Validate(); err == nil {
		t.Error("key/name mismatch validated")
	}
}

func TestTermsEarned(t *testing.T) {
	terms := Terms{Class: "x", Deadline: 100, ValueUSD: 2, Curve: LinearDecay{DecaySec: 100, Floor: -0.5}}
	if got := terms.EarnedUSD(50); got != 2 {
		t.Errorf("on-time earned %v", got)
	}
	if got := terms.EarnedUSD(150); got != 0.5 {
		t.Errorf("half-late earned %v, want 0.5", got)
	}
	if got := terms.EarnedUSD(1000); got != -1 {
		t.Errorf("penalty earned %v, want -1", got)
	}
	if got := terms.Lateness(150); got != 50 {
		t.Errorf("lateness %v", got)
	}
	if slack, ok := terms.Slack(70); !ok || slack != 30 {
		t.Errorf("slack = %v, %v", slack, ok)
	}
	if _, ok := (Terms{Curve: Flat{}}).Slack(70); ok {
		t.Error("deadline-free terms reported slack")
	}
}

func TestAdmissionVerdicts(t *testing.T) {
	a := Admission{}
	hard := Terms{Class: "d", Deadline: 1000, ValueUSD: 1, Curve: HardDrop{}}
	soft := Terms{Class: "s", Deadline: 1000, ValueUSD: 1, Curve: LinearDecay{DecaySec: 600}}
	free := Terms{Curve: Flat{}}

	if v := a.Decide(0, 500, hard); v != Admit {
		t.Errorf("feasible hard task: %v", v)
	}
	if v := a.Decide(800, 500, hard); v != Reject {
		t.Errorf("hopeless hard task: %v (running it earns nothing)", v)
	}
	if v := a.Decide(800, 500, soft); v != AdmitLate {
		t.Errorf("late-but-valuable soft task: %v", v)
	}
	if v := a.Decide(0, 1e9, free); v != Admit {
		t.Errorf("best-effort task: %v", v)
	}
	// Margin reserves headroom: 900 × 1.5 > 1000.
	m := Admission{Margin: 1.5}
	if v := m.Decide(0, 900, hard); v != Reject {
		t.Errorf("margin not applied: %v", v)
	}
	if a.Decide(0, 900, hard) != Admit {
		t.Error("default margin rejected a feasible task")
	}
	// Verdicts render.
	for _, v := range []Verdict{Admit, AdmitLate, Reject} {
		if v.String() == "" || strings.HasPrefix(v.String(), "verdict(") {
			t.Errorf("verdict %d renders %q", int(v), v.String())
		}
	}
}

func TestAdmissionValidate(t *testing.T) {
	if err := (Admission{Margin: -1}).Validate(); err == nil {
		t.Error("negative margin validated")
	}
	if err := (Admission{}).Validate(); err != nil {
		t.Errorf("zero margin (default) rejected: %v", err)
	}
}

func TestLedgerAccounting(t *testing.T) {
	l := NewLedger()
	hard := Terms{Class: "deadline", Deadline: 100, ValueUSD: 2, Curve: HardDrop{}}
	pen := Terms{Class: "interactive", Deadline: 100, ValueUSD: 4, Curve: Stepped{Steps: []Step{{0, -0.25}}}}
	flat := Terms{Class: "", ValueUSD: 1, Curve: Flat{}}

	l.Complete(hard, 90)  // on time: +2
	l.Complete(hard, 150) // late: forfeits 2
	l.Complete(pen, 50)   // on time: +4
	l.Complete(pen, 200)  // late: forfeits 4, penalty 1
	l.Complete(flat, 1e6) // best effort always earns
	l.Reject(hard)        // forfeits 2

	s := l.Summarize(1000, 50)
	if s.EarnedUSD != 7 {
		t.Errorf("earned %v, want 7", s.EarnedUSD)
	}
	if s.ForfeitedUSD != 8 {
		t.Errorf("forfeited %v, want 8 (2 late + 4 late + 2 rejected)", s.ForfeitedUSD)
	}
	if s.PenaltyUSD != 1 {
		t.Errorf("penalty %v, want 1", s.PenaltyUSD)
	}
	if s.Completed != 5 || s.OnTime != 3 || s.Misses != 2 || s.Rejected != 1 {
		t.Errorf("counts %+v", s)
	}
	if s.NetUSD() != 6 {
		t.Errorf("net %v", s.NetUSD())
	}
	if got := s.JoulesPerUSD; math.Abs(got-1000.0/6) > 1e-9 {
		t.Errorf("J/$ = %v", got)
	}
	if got := s.GramsPerUSD; math.Abs(got-50.0/6) > 1e-9 {
		t.Errorf("g/$ = %v", got)
	}
	// Per-class split, sorted by name; unclassified lands in
	// best-effort.
	if len(s.PerClass) != 3 || s.PerClass[0].Class != "best-effort" ||
		s.PerClass[1].Class != "deadline" || s.PerClass[2].Class != "interactive" {
		t.Fatalf("per-class %+v", s.PerClass)
	}
	d := s.PerClass[1]
	if d.Completed != 2 || d.Misses != 1 || d.Rejected != 1 || d.EarnedUSD != 2 || d.ForfeitedUSD != 4 {
		t.Errorf("deadline account %+v", d)
	}
	if d.WorstLateness != 50 {
		t.Errorf("worst lateness %v", d.WorstLateness)
	}
	// Mean slack over the two deadline completions: (10 + (−50))/2.
	if got := d.MeanSlack(); got != -20 {
		t.Errorf("mean slack %v, want -20", got)
	}

	var b strings.Builder
	if err := s.Render(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"best-effort", "deadline", "interactive", "total earned"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("render missing %q:\n%s", want, b.String())
		}
	}
}

func TestLedgerEarnsNothing(t *testing.T) {
	l := NewLedger()
	l.Reject(Terms{Class: "d", ValueUSD: 5, Curve: HardDrop{}})
	s := l.Summarize(100, 10)
	if !math.IsInf(s.JoulesPerUSD, 1) || !math.IsInf(s.GramsPerUSD, 1) {
		t.Errorf("zero-revenue intensities = %v, %v; want +Inf", s.JoulesPerUSD, s.GramsPerUSD)
	}
	// The report renders the sentinel as n/a, never "+Inf J/$".
	var b strings.Builder
	if err := s.Render(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "Inf") {
		t.Errorf("render leaks the Inf sentinel:\n%s", b.String())
	}
	if !strings.Contains(b.String(), "n/a J/$, n/a gCO2/$") {
		t.Errorf("render missing n/a intensities:\n%s", b.String())
	}
}

func TestConfigValidate(t *testing.T) {
	var nilCfg *Config
	if err := nilCfg.Validate(); err == nil {
		t.Error("nil config validated")
	}
	bad := &Config{Catalog: Catalog{"a": {Name: "b"}}}
	if err := bad.Validate(); err == nil {
		t.Error("bad catalog validated")
	}
	bad = &Config{Admission: &Admission{Margin: -2}}
	if err := bad.Validate(); err == nil {
		t.Error("bad admission validated")
	}
	ok := &Config{}
	if err := ok.Validate(); err != nil {
		t.Errorf("empty config rejected: %v", err)
	}
	if len(ok.EffectiveCatalog()) == 0 {
		t.Error("empty config has no effective catalog")
	}
}

// TestSummarizeIsOrderIndependent pins the ledger's determinism
// contract: dollar totals must be bit-for-bit identical however Go
// happens to order the accounts map, because simulation determinism
// tests compare Results exactly. (Summarize folds accounts in sorted
// class order; summing in map order flakes by one ULP.)
func TestSummarizeIsOrderIndependent(t *testing.T) {
	build := func() Summary {
		l := NewLedger()
		for i, class := range []string{"a", "b", "c", "d", "e", "f", "g", "h"} {
			terms := Terms{Class: class, Deadline: 100, ValueUSD: 0.1 * float64(i+1), Curve: Stepped{
				Steps: []Step{{AfterSec: 0, Retained: 0.3}, {AfterSec: 60, Retained: -0.1}},
			}}
			l.Complete(terms, 90+float64(i))
			l.Complete(terms, 110+float64(i)*7)
			l.Reject(terms)
		}
		return l.Summarize(1234.567, 89.1011)
	}
	want := build()
	for i := 0; i < 25; i++ {
		if got := build(); !reflect.DeepEqual(got, want) {
			t.Fatalf("summary %d diverged:\n%+v\n%+v", i, got, want)
		}
	}
}
