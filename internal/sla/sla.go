// Package sla adds service-level objectives to the green scheduler:
// SLA classes with deadlines, per-task dollar values and lateness
// penalty curves, an admission controller that refuses work the
// platform provably cannot serve profitably, and a revenue/penalty
// ledger that turns each run into dollars earned, dollars forfeited,
// and joules / CO2 grams per dollar.
//
// GreenPerf (and the carbon layer) optimize watts and grams but treat
// every task as equally urgent and equally valuable; this package
// supplies the missing objective — energy saved vs. service promises
// broken — in the style of "Energy and SLA aware VM Scheduling"
// (Nanduri et al.) and "On Time-Sensitive Revenue Management and
// Energy Scheduling in Green Data Centers" (Li et al.).
//
// Everything here is a pure computation over task and class
// descriptions: no clocks, no goroutines, no I/O. The simulator and
// the live middleware both consume it, which keeps the two execution
// modes comparable.
package sla

import (
	"fmt"
	"sort"

	"greensched/internal/workload"
)

// Class is one service level: a relative deadline, a per-task value
// and the penalty curve applied when the deadline slips. Tasks refer
// to classes by name (workload.Task.Class); explicit per-task deadline
// or value fields override the class defaults.
type Class struct {
	Name string
	// RelDeadlineSec is the default completion deadline, seconds after
	// submission (0 = no deadline).
	RelDeadlineSec float64
	// ValueUSD is the default dollars earned by an on-time completion.
	ValueUSD float64
	// Curve maps lateness to the retained value fraction; nil means
	// Flat (full value whenever the task completes).
	Curve Curve
}

// Validate reports a descriptive error for unusable classes.
func (c Class) Validate() error {
	switch {
	case c.Name == "":
		return fmt.Errorf("sla: class with empty name")
	case c.RelDeadlineSec < 0:
		return fmt.Errorf("sla: class %s has negative deadline", c.Name)
	case c.ValueUSD < 0:
		return fmt.Errorf("sla: class %s has negative value", c.Name)
	}
	if c.Curve != nil {
		return c.Curve.Validate()
	}
	return nil
}

// Catalog maps class names to their definitions.
type Catalog map[string]Class

// Canonical class names of the default catalog.
const (
	ClassBatch       = "batch"
	ClassDeadline    = "deadline"
	ClassInteractive = "interactive"
)

// DefaultCatalog returns the three-tier catalog the SLA study uses:
//
//	batch        no deadline, low value      — deferrable filler work
//	deadline     1 h hard-drop deadline      — worthless when late
//	interactive  60 s stepped deadline       — high value, partial
//	             credit for small slips, contractual penalty beyond
func DefaultCatalog() Catalog {
	return Catalog{
		ClassBatch: {
			Name: ClassBatch, ValueUSD: 0.05, Curve: Flat{},
		},
		ClassDeadline: {
			Name: ClassDeadline, RelDeadlineSec: 3600, ValueUSD: 0.50,
			Curve: HardDrop{},
		},
		ClassInteractive: {
			Name: ClassInteractive, RelDeadlineSec: 60, ValueUSD: 2.00,
			Curve: Stepped{Steps: []Step{
				{AfterSec: 0, Retained: 0.5},
				{AfterSec: 30, Retained: 0},
				{AfterSec: 300, Retained: -0.25},
			}},
		},
	}
}

// Validate checks every class and that map keys match class names.
func (c Catalog) Validate() error {
	for name, cl := range c {
		if name != cl.Name {
			return fmt.Errorf("sla: catalog key %q holds class %q", name, cl.Name)
		}
		if err := cl.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Names returns the catalog's class names, sorted.
func (c Catalog) Names() []string {
	out := make([]string, 0, len(c))
	for name := range c {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Terms is the resolved service agreement for one task: the absolute
// deadline, the dollar value and the penalty curve in force.
type Terms struct {
	Class    string
	Deadline float64 // absolute seconds; 0 = none
	ValueUSD float64
	Curve    Curve
}

// Resolve computes a task's effective terms: explicit task fields win,
// class defaults fill the gaps, and unclassified tasks fall back to
// best-effort (Flat curve, HardDrop when they carry a bare deadline).
func (c Catalog) Resolve(t workload.Task) Terms {
	out := Terms{Class: t.Class, Deadline: t.Deadline, ValueUSD: t.Value}
	if cl, ok := c[t.Class]; ok {
		if out.Deadline == 0 && cl.RelDeadlineSec > 0 {
			out.Deadline = t.Submit + cl.RelDeadlineSec
		}
		if out.ValueUSD == 0 {
			out.ValueUSD = cl.ValueUSD
		}
		out.Curve = cl.Curve
	}
	if out.Curve == nil {
		if out.Deadline > 0 {
			out.Curve = HardDrop{}
		} else {
			out.Curve = Flat{}
		}
	}
	return out
}

// Lateness returns how far past the terms' deadline a completion at
// finish is; ≤ 0 means on time (and always 0 without a deadline).
func (t Terms) Lateness(finish float64) float64 {
	if t.Deadline <= 0 {
		return 0
	}
	return finish - t.Deadline
}

// EarnedUSD returns the dollars a completion at finish earns under the
// terms — negative when the curve imposes a contractual penalty.
func (t Terms) EarnedUSD(finish float64) float64 {
	return t.ValueUSD * t.Curve.Retained(t.Lateness(finish))
}

// Slack returns deadline − finish: the scheduling margin a completion
// at finish leaves (negative = miss). Without a deadline it returns
// +Inf semantics via ok=false.
func (t Terms) Slack(finish float64) (float64, bool) {
	if t.Deadline <= 0 {
		return 0, false
	}
	return t.Deadline - finish, true
}
