package sla

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// Account aggregates one SLA class's outcomes over a run.
type Account struct {
	Class string

	Completed int // tasks that ran to completion
	OnTime    int // completed with non-positive lateness
	Misses    int // completed past their deadline
	Rejected  int // refused by admission control
	Failed    int // admitted but lost to an execution failure

	EarnedUSD    float64 // value actually credited (post-curve)
	ForfeitedUSD float64 // value lost to lateness and rejections
	PenaltyUSD   float64 // contractual penalties (negative retained)

	WorstLateness float64 // largest lateness observed, seconds
	SlackSum      float64 // summed (deadline − finish) over deadline tasks
	deadlineTasks int
}

// MeanSlack returns the average completion slack across this class's
// deadline-carrying completions (positive = early).
func (a Account) MeanSlack() float64 {
	if a.deadlineTasks == 0 {
		return 0
	}
	return a.SlackSum / float64(a.deadlineTasks)
}

// Ledger turns task fates into dollars: each completion is credited
// through its penalty curve, each rejection forfeits its value, and
// the totals divide the run's joules and grams into cost-of-revenue
// intensities. The zero value is not ready; use NewLedger.
type Ledger struct {
	accounts map[string]*Account
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger { return &Ledger{accounts: make(map[string]*Account)} }

// account returns (creating) the class bucket; unclassified tasks
// land under "best-effort".
func (l *Ledger) account(class string) *Account {
	if class == "" {
		class = "best-effort"
	}
	a, ok := l.accounts[class]
	if !ok {
		a = &Account{Class: class}
		l.accounts[class] = a
	}
	return a
}

// Complete credits a completion at finish under its terms.
func (l *Ledger) Complete(t Terms, finish float64) {
	a := l.account(t.Class)
	a.Completed++
	earned := t.EarnedUSD(finish)
	if earned > 0 {
		a.EarnedUSD += earned
		a.ForfeitedUSD += t.ValueUSD - earned
	} else {
		a.ForfeitedUSD += t.ValueUSD
		a.PenaltyUSD += -earned
	}
	lateness := t.Lateness(finish)
	if t.Deadline > 0 {
		a.deadlineTasks++
		a.SlackSum += t.Deadline - finish
		if lateness > 0 {
			a.Misses++
			if lateness > a.WorstLateness {
				a.WorstLateness = lateness
			}
		} else {
			a.OnTime++
		}
	} else {
		a.OnTime++
	}
}

// Reject forfeits a refused task's full value.
func (l *Ledger) Reject(t Terms) {
	a := l.account(t.Class)
	a.Rejected++
	a.ForfeitedUSD += t.ValueUSD
}

// Fail forfeits an admitted task's full value when its execution was
// lost (crash, transport failure): the platform earns nothing, and the
// loss must not vanish from the books the way a silent drop would.
func (l *Ledger) Fail(t Terms) {
	a := l.account(t.Class)
	a.Failed++
	a.ForfeitedUSD += t.ValueUSD
}

// Summary is the whole-run revenue picture, with the run's energy and
// emissions divided into per-dollar intensities.
type Summary struct {
	EarnedUSD    float64
	ForfeitedUSD float64
	PenaltyUSD   float64

	Completed int
	OnTime    int
	Misses    int
	Rejected  int
	Failed    int

	// JoulesPerUSD and GramsPerUSD are the run's energy/emissions per
	// net dollar earned; +Inf when the run earned nothing.
	JoulesPerUSD float64
	GramsPerUSD  float64

	PerClass []Account // sorted by class name
}

// NetUSD returns earned minus contractual penalties.
func (s Summary) NetUSD() float64 { return s.EarnedUSD - s.PenaltyUSD }

// Summarize aggregates the ledger against the run's total energy and
// emissions. Accounts are folded in sorted class order so the dollar
// totals are bit-for-bit reproducible — map iteration order must not
// leak into float addition order (determinism tests compare Results
// exactly).
func (l *Ledger) Summarize(energyJ, co2Grams float64) Summary {
	var s Summary
	classes := make([]string, 0, len(l.accounts))
	for class := range l.accounts {
		classes = append(classes, class)
	}
	sort.Strings(classes)
	for _, class := range classes {
		a := l.accounts[class]
		s.EarnedUSD += a.EarnedUSD
		s.ForfeitedUSD += a.ForfeitedUSD
		s.PenaltyUSD += a.PenaltyUSD
		s.Completed += a.Completed
		s.OnTime += a.OnTime
		s.Misses += a.Misses
		s.Rejected += a.Rejected
		s.Failed += a.Failed
		s.PerClass = append(s.PerClass, *a)
	}
	if net := s.NetUSD(); net > 0 {
		s.JoulesPerUSD = energyJ / net
		s.GramsPerUSD = co2Grams / net
	} else {
		s.JoulesPerUSD = math.Inf(1)
		s.GramsPerUSD = math.Inf(1)
	}
	return s
}

// Line renders the account as one report row.
func (a Account) Line() string {
	return fmt.Sprintf(
		"%-12s %3d done (%d on time, %d late, %d rejected)  earned $%.2f  forfeited $%.2f  penalties $%.2f",
		a.Class, a.Completed, a.OnTime, a.Misses, a.Rejected,
		a.EarnedUSD, a.ForfeitedUSD, a.PenaltyUSD)
}

// Render writes the per-class breakdown plus totals. Runs that earned
// nothing have no meaningful cost-of-revenue intensity, so the +Inf
// sentinels render as "n/a" instead of leaking into the report.
func (s Summary) Render(w io.Writer) error {
	for _, a := range s.PerClass {
		if _, err := fmt.Fprintf(w, "  %s\n", a.Line()); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "  total earned $%.2f, forfeited $%.2f, penalties $%.2f; %s J/$, %s gCO2/$\n",
		s.EarnedUSD, s.ForfeitedUSD, s.PenaltyUSD,
		perUSD(s.JoulesPerUSD, "%.0f"), perUSD(s.GramsPerUSD, "%.1f"))
	return err
}

// perUSD formats a per-dollar intensity, mapping the zero-revenue +Inf
// sentinel to "n/a".
func perUSD(v float64, format string) string {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return "n/a"
	}
	return fmt.Sprintf(format, v)
}
