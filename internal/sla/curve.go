package sla

import (
	"fmt"
	"sort"
)

// Curve maps a task's lateness (seconds past its deadline; ≤ 0 means
// on time) to the fraction of the task's value retained. On-time
// completions always retain 1. Fractions may go negative — a
// contractual penalty on top of the forfeited value — but must stay
// bounded and monotonically non-increasing in lateness.
type Curve interface {
	// Name identifies the curve in reports ("hard-drop", ...).
	Name() string
	// Retained returns the retained value fraction for a lateness.
	Retained(lateness float64) float64
	// Validate reports a descriptive error for malformed curves.
	Validate() error
}

// Flat retains full value no matter how late the task completes —
// best-effort work whose value does not decay.
type Flat struct{}

// Name implements Curve.
func (Flat) Name() string { return "flat" }

// Retained implements Curve.
func (Flat) Retained(float64) float64 { return 1 }

// Validate implements Curve.
func (Flat) Validate() error { return nil }

// HardDrop forfeits the whole value at the deadline: a result
// delivered one second late is worth nothing (the classic hard
// real-time contract).
type HardDrop struct{}

// Name implements Curve.
func (HardDrop) Name() string { return "hard-drop" }

// Retained implements Curve.
func (HardDrop) Retained(lateness float64) float64 {
	if lateness > 0 {
		return 0
	}
	return 1
}

// Validate implements Curve.
func (HardDrop) Validate() error { return nil }

// LinearDecay retains full value at the deadline and decays linearly
// to Floor over DecaySec of lateness — the soft contract under which
// late work is still worth finishing.
type LinearDecay struct {
	// DecaySec is the lateness at which the retained fraction reaches
	// Floor. Must be positive.
	DecaySec float64
	// Floor is the retained fraction once the decay completes; 0
	// forfeits the value, negative adds a contractual penalty.
	Floor float64
}

// Name implements Curve.
func (c LinearDecay) Name() string { return "linear-decay" }

// Retained implements Curve.
func (c LinearDecay) Retained(lateness float64) float64 {
	if lateness <= 0 {
		return 1
	}
	if lateness >= c.DecaySec {
		return c.Floor
	}
	return 1 + (c.Floor-1)*lateness/c.DecaySec
}

// Validate implements Curve.
func (c LinearDecay) Validate() error {
	if c.DecaySec <= 0 {
		return fmt.Errorf("sla: linear decay needs a positive DecaySec, got %v", c.DecaySec)
	}
	if c.Floor > 1 {
		return fmt.Errorf("sla: linear decay floor %v above full value", c.Floor)
	}
	return nil
}

// Step is one plateau of a Stepped curve: from AfterSec of lateness
// onward, the retained fraction is Retained (until a later step).
type Step struct {
	AfterSec float64
	Retained float64
}

// Stepped drops the retained fraction in plateaus — the shape of real
// service credits ("99.9% on time: 50% credit; 99%: full refund").
// Steps must be sorted by AfterSec ascending with non-increasing
// retained fractions.
type Stepped struct {
	Steps []Step
}

// Name implements Curve.
func (Stepped) Name() string { return "stepped" }

// Retained implements Curve.
func (c Stepped) Retained(lateness float64) float64 {
	if lateness <= 0 {
		return 1
	}
	// Last step whose threshold the lateness has passed.
	i := sort.Search(len(c.Steps), func(i int) bool { return c.Steps[i].AfterSec > lateness }) - 1
	if i < 0 {
		return 1
	}
	return c.Steps[i].Retained
}

// Validate implements Curve.
func (c Stepped) Validate() error {
	if len(c.Steps) == 0 {
		return fmt.Errorf("sla: stepped curve needs at least one step")
	}
	prevAt, prevRet := -1.0, 1.0
	for i, s := range c.Steps {
		if s.AfterSec < 0 {
			return fmt.Errorf("sla: step %d at negative lateness %v", i, s.AfterSec)
		}
		if s.AfterSec <= prevAt {
			return fmt.Errorf("sla: step %d at %v not after previous step at %v", i, s.AfterSec, prevAt)
		}
		if s.Retained > prevRet {
			return fmt.Errorf("sla: step %d retains %v, more than the preceding %v", i, s.Retained, prevRet)
		}
		prevAt, prevRet = s.AfterSec, s.Retained
	}
	return nil
}
