package sla

import (
	"math"
	"testing"
)

func TestPreemptionValidate(t *testing.T) {
	for _, ok := range []float64{0, 0.5, 1} {
		if err := (Preemption{RestartPenaltyFrac: ok}).Validate(); err != nil {
			t.Errorf("penalty %v rejected: %v", ok, err)
		}
	}
	for _, bad := range []float64{-0.1, 1.1} {
		if err := (Preemption{RestartPenaltyFrac: bad}).Validate(); err == nil {
			t.Errorf("penalty %v accepted", bad)
		}
	}
}

func TestPreemptionOps(t *testing.T) {
	p := Preemption{RestartPenaltyFrac: 0.5}
	if got := p.RedoneOps(100); got != 50 {
		t.Errorf("redone %v, want 50", got)
	}
	if got := p.RedoneOps(-5); got != 0 {
		t.Errorf("negative done redone %v, want 0", got)
	}
	// 1000 total, 100 done: 900 left plus 50 redone.
	if got := p.RemainingOps(1000, 100); got != 950 {
		t.Errorf("remaining %v, want 950", got)
	}
	// Perfect checkpoint keeps every op; full penalty restarts cold.
	if got := (Preemption{}).RemainingOps(1000, 400); got != 600 {
		t.Errorf("perfect checkpoint remaining %v, want 600", got)
	}
	if got := (Preemption{RestartPenaltyFrac: 1}).RemainingOps(1000, 400); got != 1000 {
		t.Errorf("cold restart remaining %v, want 1000", got)
	}
	// Clamps: done beyond total, negative done.
	if got := p.RemainingOps(1000, 2000); got != 500 {
		t.Errorf("overdone remaining %v, want 500", got)
	}
	if got := p.RemainingOps(1000, -10); got != 1000 {
		t.Errorf("underdone remaining %v, want 1000", got)
	}
}

func TestSafeToDisplace(t *testing.T) {
	victim := Terms{Deadline: 1000, Curve: HardDrop{}}
	// 100 + 50 urgent + 800 restart = 950 ≤ 1000: safe.
	if !SafeToDisplace(100, 50, 800, victim) {
		t.Error("feasible displacement refused")
	}
	// 100 + 50 + 900 = 1050 > 1000: the restart would breach.
	if SafeToDisplace(100, 50, 900, victim) {
		t.Error("breaching displacement allowed")
	}
	// Exactly at the deadline counts as met (the boundary rule).
	if !SafeToDisplace(100, 50, 850, victim) {
		t.Error("boundary displacement refused")
	}
	// Deadline-free victims are always safe.
	if !SafeToDisplace(100, 50, math.Inf(1), Terms{Curve: Flat{}}) {
		t.Error("deadline-free victim refused")
	}
}

func TestDisplacementGainUSD(t *testing.T) {
	hard := Terms{Deadline: 100, ValueUSD: 2, Curve: HardDrop{}}
	// Starting now finishes at 60 (on time, $2); waiting 500 s loses it.
	if got := DisplacementGainUSD(hard, 50, 10, 500); got != 2 {
		t.Errorf("gain %v, want 2", got)
	}
	// Waiting still meets the deadline: nothing to gain.
	if got := DisplacementGainUSD(hard, 50, 10, 20); got != 0 {
		t.Errorf("no-op gain %v, want 0", got)
	}
	// Already hopeless either way: nothing to gain.
	if got := DisplacementGainUSD(hard, 150, 10, 500); got != 0 {
		t.Errorf("hopeless gain %v, want 0", got)
	}
	// A decay curve gains partially.
	soft := Terms{Deadline: 100, ValueUSD: 2, Curve: LinearDecay{DecaySec: 100}}
	got := DisplacementGainUSD(soft, 100, 10, 50)
	want := 2*(1-10.0/100) - 2*(1-60.0/100)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("decay gain %v, want %v", got, want)
	}
}
