package sla

import "fmt"

// This file holds the preemption cost calculus: pure arithmetic over
// resolved Terms that decides when displacing a running task for a
// deadline-urgent one is safe and worthwhile. The simulator (and any
// live executor) supplies the mechanics — checkpointing a task's
// completed Ops fraction and re-queueing the remainder — and consults
// these functions for the policy, in the style of the preemptive
// revenue-management schedulers of Li et al.
//
// The cardinal rule: preemption may never manufacture a new SLA breach.
// A victim whose own deadline the restart penalty would push past is
// untouchable, no matter how urgent the preemptor.

// Preemption parameterizes checkpoint/restart semantics.
type Preemption struct {
	// RestartPenaltyFrac is the fraction of checkpointed progress that
	// must be re-executed after a restart, in [0, 1]: 0 models a
	// perfect checkpoint (every completed op survives), 1 models no
	// checkpoint at all (the task restarts from scratch).
	RestartPenaltyFrac float64
}

// Validate reports configuration errors.
func (p Preemption) Validate() error {
	if p.RestartPenaltyFrac < 0 || p.RestartPenaltyFrac > 1 {
		return fmt.Errorf("sla: restart penalty fraction %v outside [0,1]", p.RestartPenaltyFrac)
	}
	return nil
}

// RedoneOps returns the completed work a checkpoint at doneOps forfeits
// to the restart penalty.
func (p Preemption) RedoneOps(doneOps float64) float64 {
	if doneOps <= 0 {
		return 0
	}
	return p.RestartPenaltyFrac * doneOps
}

// RemainingOps returns the ops a task of totalOps still owes after
// being checkpointed with doneOps completed: the unfinished work plus
// the penalty's share of the finished work, clamped to [0, totalOps].
func (p Preemption) RemainingOps(totalOps, doneOps float64) float64 {
	if doneOps < 0 {
		doneOps = 0
	}
	if doneOps > totalOps {
		doneOps = totalOps
	}
	rem := totalOps - doneOps + p.RedoneOps(doneOps)
	if rem > totalOps {
		rem = totalOps
	}
	if rem < 0 {
		rem = 0
	}
	return rem
}

// SafeToDisplace reports whether checkpointing a victim for an urgent
// task cannot itself breach the victim's deadline: parked while the
// urgent work runs for urgentExecSec and then restarted with
// restartRemainingSec of (penalty-inflated) work left, the victim must
// still finish by its deadline. Victims without a deadline are always
// safe to displace — they lose time, never contractual value.
func SafeToDisplace(now, urgentExecSec, restartRemainingSec float64, victim Terms) bool {
	if victim.Deadline <= 0 {
		return true
	}
	return now+urgentExecSec+restartRemainingSec <= victim.Deadline
}

// DisplacementGainUSD returns the dollars an urgent task gains by
// starting now (completing after execSec) instead of waiting waitSec
// for a slot — the value the penalty curve preserves. Non-positive
// gain means preemption buys nothing: the task is either on time
// anyway or already past the point its curve rewards.
func DisplacementGainUSD(t Terms, now, execSec, waitSec float64) float64 {
	return t.EarnedUSD(now+execSec) - t.EarnedUSD(now+waitSec+execSec)
}
