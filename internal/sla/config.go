package sla

import (
	"fmt"

	"greensched/internal/sched"
)

// Config wires SLA awareness into an executor (the simulator's
// sim.Config.SLA, or a live deployment): the class catalog that
// resolves task terms, the admission controller, and the queue
// discipline SEDs apply to accepted-but-not-started work.
type Config struct {
	// Catalog resolves task classes; nil falls back to DefaultCatalog.
	Catalog Catalog
	// Admission, when set, screens every first submission; nil admits
	// everything (accounting still runs).
	Admission *Admission
	// Order is the SED queue discipline (sched.NewOrder: FIFO, EDF,
	// VALUE-DENSITY); nil keeps FIFO.
	Order sched.TaskOrder
	// UrgentBypass opens an express lane for deadline-carrying tasks:
	// they may elect any powered-on server even while a controller has
	// revoked its candidacy (carbon windows then defer only deferrable
	// work — SLA traffic is never parked behind a green window).
	// Powered-off servers remain unusable; waking them stays the
	// controllers' job, driven by Control.PendingSlack.
	UrgentBypass bool
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	if c == nil {
		return fmt.Errorf("sla: nil config")
	}
	if c.Catalog != nil {
		if err := c.Catalog.Validate(); err != nil {
			return err
		}
	}
	if c.Admission != nil {
		if err := c.Admission.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// EffectiveCatalog returns the configured catalog or the default.
func (c *Config) EffectiveCatalog() Catalog {
	if c.Catalog != nil {
		return c.Catalog
	}
	return DefaultCatalog()
}
