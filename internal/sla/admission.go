package sla

import "fmt"

// Admission is the controller that decides, at submission time,
// whether the platform should take a task on. The test is
// conservative on purpose: a task is refused only when even the
// *best-case* completion — the fastest node, an immediately free slot
// — earns nothing under its penalty curve. Work that would merely be
// late but still valuable is admitted as deferred (the scheduler may
// queue it behind urgent work or a carbon window).
type Admission struct {
	// Margin scales the best-case completion estimate before the
	// deadline comparison; 1 (the default for 0) admits on provable
	// feasibility alone, larger values reserve headroom for queueing
	// and estimation error.
	Margin float64
}

// Verdict is one admission decision.
type Verdict int

// Admission verdicts.
const (
	// Admit: the task can complete on time in the best case.
	Admit Verdict = iota
	// AdmitLate: the deadline is already unreachable, but the penalty
	// curve still retains value at the best-case lateness — run it,
	// possibly deferred behind on-time work.
	AdmitLate
	// Reject: even the best case earns nothing (or a net penalty);
	// running the task would burn joules for negative dollars.
	Reject
)

// String renders the verdict for reports.
func (v Verdict) String() string {
	switch v {
	case Admit:
		return "admit"
	case AdmitLate:
		return "admit-late"
	case Reject:
		return "reject"
	default:
		return fmt.Sprintf("verdict(%d)", int(v))
	}
}

// Validate reports configuration errors.
func (a Admission) Validate() error {
	if a.Margin != 0 && a.Margin < 1 {
		return fmt.Errorf("sla: admission margin %v must be at least 1 (0 means the default of 1); sub-1 margins would admit provably infeasible work", a.Margin)
	}
	return nil
}

// Decide evaluates a task's terms at time now given bestExecSec, the
// best-case execution time across the platform (fastest node, free
// slot, no queue). Tasks without a deadline are always admitted.
func (a Admission) Decide(now, bestExecSec float64, t Terms) Verdict {
	if t.Deadline <= 0 {
		return Admit
	}
	// Floor at 1 even if Validate was skipped: a sub-1 margin would
	// shrink the best-case estimate and admit provably infeasible work.
	margin := a.Margin
	if margin < 1 {
		margin = 1
	}
	lateness := now + margin*bestExecSec - t.Deadline
	if lateness <= 0 {
		return Admit
	}
	if t.ValueUSD*t.Curve.Retained(lateness) > 0 {
		return AdmitLate
	}
	return Reject
}
