// Package analysis provides the statistics used to aggregate repeated
// experiment runs: descriptive summaries, percentiles, Student-t
// confidence intervals, Welch's two-sample t-test and simple linear
// regression.
//
// The paper reports single-run numbers; a faithful reproduction on a
// simulator can do better by replicating each experiment across seeds
// and reporting mean ± confidence interval, so that the headline
// claims ("25% energy gain", "6% makespan loss") are checked as
// populations rather than point estimates. This package contains the
// numerics for that: the t distribution is computed from the
// regularized incomplete beta function (dist.go), not from hard-coded
// quantile tables, so any confidence level and sample size work.
package analysis

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Summary is a descriptive summary of a sample.
type Summary struct {
	N      int     // sample size
	Mean   float64 // arithmetic mean
	Var    float64 // unbiased sample variance (n-1 denominator)
	Std    float64 // sqrt(Var)
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes the descriptive summary of xs. It returns an
// error on an empty sample or non-finite values (a NaN mean silently
// poisons every downstream ratio, so reject it at the door).
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, errors.New("analysis: empty sample")
	}
	for i, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return Summary{}, fmt.Errorf("analysis: sample[%d] = %v is not finite", i, x)
		}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Var = ss / float64(s.N-1)
		s.Std = math.Sqrt(s.Var)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Median = Percentile(sorted, 0.5)
	return s, nil
}

// StdErr returns the standard error of the mean, 0 for N < 2.
func (s Summary) StdErr() float64 {
	if s.N < 2 {
		return 0
	}
	return s.Std / math.Sqrt(float64(s.N))
}

// CI returns the Student-t confidence interval of the mean at the
// given confidence level (e.g. 0.95). For N < 2 the interval collapses
// to the mean itself, as no dispersion estimate exists.
func (s Summary) CI(level float64) (lo, hi float64) {
	if s.N < 2 || level <= 0 || level >= 1 {
		return s.Mean, s.Mean
	}
	t := TQuantile(0.5+level/2, float64(s.N-1))
	h := t * s.StdErr()
	return s.Mean - h, s.Mean + h
}

// String renders "mean ± half-width-of-95%-CI (n=N)".
func (s Summary) String() string {
	lo, hi := s.CI(0.95)
	return fmt.Sprintf("%.4g ± %.2g (n=%d)", s.Mean, (hi-lo)/2, s.N)
}

// Percentile returns the p-quantile (p in [0,1]) of an ascending-sorted
// sample with linear interpolation between closest ranks. It panics on
// an empty sample (programming error, not data error).
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		panic("analysis: Percentile of empty sample")
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := p * float64(len(sorted)-1)
	i := int(math.Floor(pos))
	frac := pos - float64(i)
	if i+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	return sorted[i]*(1-frac) + sorted[i+1]*frac
}

// WelchResult is the outcome of a Welch two-sample t-test.
type WelchResult struct {
	T  float64 // test statistic
	DF float64 // Welch-Satterthwaite degrees of freedom
	P  float64 // two-sided p-value
}

// WelchT compares the means of two summarized samples without assuming
// equal variances. It errors when either sample has fewer than two
// observations (no variance estimate).
func WelchT(a, b Summary) (WelchResult, error) {
	if a.N < 2 || b.N < 2 {
		return WelchResult{}, fmt.Errorf("analysis: Welch t-test needs n>=2 on both sides (got %d, %d)", a.N, b.N)
	}
	va := a.Var / float64(a.N)
	vb := b.Var / float64(b.N)
	if va+vb == 0 {
		// Identical constant samples: no evidence of difference.
		if a.Mean == b.Mean {
			return WelchResult{T: 0, DF: float64(a.N + b.N - 2), P: 1}, nil
		}
		return WelchResult{T: math.Inf(sign(a.Mean - b.Mean)), DF: float64(a.N + b.N - 2), P: 0}, nil
	}
	t := (a.Mean - b.Mean) / math.Sqrt(va+vb)
	df := (va + vb) * (va + vb) /
		(va*va/float64(a.N-1) + vb*vb/float64(b.N-1))
	p := 2 * (1 - TCDF(math.Abs(t), df))
	return WelchResult{T: t, DF: df, P: p}, nil
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}

// Fit is a least-squares line y = Slope*x + Intercept.
type Fit struct {
	Slope     float64
	Intercept float64
	R2        float64 // coefficient of determination
}

// LinearFit fits a least-squares line through (xs[i], ys[i]). It
// errors on mismatched lengths, fewer than two points, or degenerate
// (constant) x.
func LinearFit(xs, ys []float64) (Fit, error) {
	if len(xs) != len(ys) {
		return Fit{}, fmt.Errorf("analysis: LinearFit length mismatch %d vs %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return Fit{}, errors.New("analysis: LinearFit needs at least two points")
	}
	n := float64(len(xs))
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return Fit{}, errors.New("analysis: LinearFit with constant x")
	}
	f := Fit{Slope: sxy / sxx}
	f.Intercept = my - f.Slope*mx
	if syy == 0 {
		f.R2 = 1 // constant y fit exactly by slope 0
	} else {
		f.R2 = (sxy * sxy) / (sxx * syy)
	}
	return f, nil
}

// Gain returns the relative reduction (base-new)/base, the form the
// paper uses for "POWER presents a gain of 25% when compared to
// RANDOM". base must be nonzero.
func Gain(base, new float64) float64 { return (base - new) / base }

// PairwiseGains maps Gain over two equal-length per-seed series,
// producing the per-seed gain sample that Summarize then aggregates.
// This sidesteps ratio-of-means bias: each seed contributes its own
// ratio.
func PairwiseGains(base, new []float64) ([]float64, error) {
	if len(base) != len(new) {
		return nil, fmt.Errorf("analysis: PairwiseGains length mismatch %d vs %d", len(base), len(new))
	}
	out := make([]float64, len(base))
	for i := range base {
		if base[i] == 0 {
			return nil, fmt.Errorf("analysis: PairwiseGains base[%d] = 0", i)
		}
		out[i] = Gain(base[i], new[i])
	}
	return out, nil
}
