package analysis_test

import (
	"fmt"

	"greensched/internal/analysis"
)

func ExampleSummarize() {
	energies := []float64{5.66e6, 5.71e6, 5.64e6, 5.69e6, 5.70e6}
	s, err := analysis.Summarize(energies)
	if err != nil {
		panic(err)
	}
	lo, hi := s.CI(0.95)
	fmt.Printf("mean %.3g J, 95%% CI [%.3g, %.3g]\n", s.Mean, lo, hi)
	// Output: mean 5.68e+06 J, 95% CI [5.64e+06, 5.72e+06]
}

func ExampleWelchT() {
	power, _ := analysis.Summarize([]float64{5.66, 5.71, 5.64, 5.69, 5.70})
	random, _ := analysis.Summarize([]float64{7.38, 7.41, 7.36, 7.42, 7.40})
	r, err := analysis.WelchT(power, random)
	if err != nil {
		panic(err)
	}
	fmt.Printf("separated: %v\n", r.P < 0.001)
	// Output: separated: true
}

func ExampleLinearFit() {
	het := []float64{0.04, 0.11, 0.23, 0.36, 0.51}
	spread := []float64{0.9, 1.6, 2.4, 11.5, 15.3}
	fit, err := analysis.LinearFit(het, spread)
	if err != nil {
		panic(err)
	}
	fmt.Printf("slope positive: %v\n", fit.Slope > 0)
	// Output: slope positive: true
}
