package analysis

import "math"

// Distribution numerics for the Student-t confidence intervals and
// Welch tests: Lanczos log-gamma, the regularized incomplete beta
// function by Lentz continued fraction, and the t CDF/quantile built
// on top of them. Implemented from the standard formulations
// (Numerical Recipes §6.1, §6.4) against stdlib-only constraints.

// lanczosCoef are the g=7, n=9 Lanczos coefficients.
var lanczosCoef = [9]float64{
	0.99999999999980993,
	676.5203681218851,
	-1259.1392167224028,
	771.32342877765313,
	-176.61502916214059,
	12.507343278686905,
	-0.13857109526572012,
	9.9843695780195716e-6,
	1.5056327351493116e-7,
}

// logGamma returns ln Γ(x) for x > 0.
func logGamma(x float64) float64 {
	if x < 0.5 {
		// Reflection: Γ(x)Γ(1−x) = π/sin(πx).
		return math.Log(math.Pi/math.Sin(math.Pi*x)) - logGamma(1-x)
	}
	x--
	a := lanczosCoef[0]
	t := x + 7.5
	for i := 1; i < 9; i++ {
		a += lanczosCoef[i] / (x + float64(i))
	}
	return 0.5*math.Log(2*math.Pi) + (x+0.5)*math.Log(t) - t + math.Log(a)
}

// RegIncBeta returns the regularized incomplete beta function
// I_x(a, b) for a, b > 0 and x in [0, 1].
func RegIncBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	// Prefactor x^a (1-x)^b / (a B(a,b)).
	ln := logGamma(a+b) - logGamma(a) - logGamma(b) +
		a*math.Log(x) + b*math.Log(1-x)
	front := math.Exp(ln)
	// The continued fraction converges fast for x < (a+1)/(a+b+2);
	// otherwise use the symmetry I_x(a,b) = 1 − I_{1−x}(b,a).
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - math.Exp(ln)*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the continued fraction for the incomplete beta
// function by the modified Lentz method.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		tiny    = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		// Even step.
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		// Odd step.
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// TCDF returns P(T <= x) for Student's t with nu > 0 degrees of
// freedom.
func TCDF(x, nu float64) float64 {
	if nu <= 0 {
		return math.NaN()
	}
	if x == 0 {
		return 0.5
	}
	// P(|T| > |x|) = I_{nu/(nu+x^2)}(nu/2, 1/2).
	p := RegIncBeta(nu/2, 0.5, nu/(nu+x*x)) / 2
	if x > 0 {
		return 1 - p
	}
	return p
}

// TQuantile returns the p-quantile of Student's t with nu degrees of
// freedom (the value t with TCDF(t, nu) = p), by bisection. p must be
// in (0, 1).
func TQuantile(p, nu float64) float64 {
	if math.IsNaN(p) || p <= 0 || p >= 1 || nu <= 0 {
		return math.NaN()
	}
	if p == 0.5 {
		return 0
	}
	// Symmetric: solve for the upper half only.
	if p < 0.5 {
		return -TQuantile(1-p, nu)
	}
	lo, hi := 0.0, 1.0
	for TCDF(hi, nu) < p {
		hi *= 2
		if hi > 1e9 { // p indistinguishable from 1 at this nu
			return math.Inf(1)
		}
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if TCDF(mid, nu) < p {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-12*(1+hi) {
			break
		}
	}
	return (lo + hi) / 2
}

// NormQuantile returns the p-quantile of the standard normal
// distribution, p in (0, 1), via Acklam's rational approximation
// (|relative error| < 1.15e-9) refined with one Halley step against
// math.Erfc.
func NormQuantile(p float64) float64 {
	if math.IsNaN(p) || p <= 0 || p >= 1 {
		return math.NaN()
	}
	// Acklam coefficients.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}
	const plow, phigh = 0.02425, 1 - 0.02425
	var x float64
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= phigh:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley refinement using the exact CDF via Erfc.
	e := 0.5*math.Erfc(-x/math.Sqrt2) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	return x - u/(1+x*u/2)
}
