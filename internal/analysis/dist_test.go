package analysis

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLogGammaKnown(t *testing.T) {
	// Γ(1)=1, Γ(2)=1, Γ(3)=2, Γ(0.5)=√π, Γ(10)=362880.
	cases := []struct{ x, want float64 }{
		{1, 0},
		{2, 0},
		{3, math.Log(2)},
		{0.5, math.Log(math.Sqrt(math.Pi))},
		{10, math.Log(362880)},
	}
	for _, c := range cases {
		if got := logGamma(c.x); math.Abs(got-c.want) > 1e-10*(1+math.Abs(c.want)) {
			t.Errorf("logGamma(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestRegIncBetaKnown(t *testing.T) {
	// I_x(1,1) = x (uniform CDF).
	for _, x := range []float64{0, 0.25, 0.5, 0.75, 1} {
		if got := RegIncBeta(1, 1, x); math.Abs(got-x) > 1e-12 {
			t.Errorf("I_%v(1,1) = %v, want %v", x, got, x)
		}
	}
	// I_x(2,2) = 3x^2 - 2x^3 (Beta(2,2) CDF).
	for _, x := range []float64{0.1, 0.3, 0.5, 0.9} {
		want := 3*x*x - 2*x*x*x
		if got := RegIncBeta(2, 2, x); math.Abs(got-want) > 1e-12 {
			t.Errorf("I_%v(2,2) = %v, want %v", x, got, want)
		}
	}
	// Symmetry: I_x(a,b) = 1 − I_{1−x}(b,a).
	if got, want := RegIncBeta(3.5, 1.25, 0.37), 1-RegIncBeta(1.25, 3.5, 0.63); math.Abs(got-want) > 1e-12 {
		t.Errorf("symmetry: %v vs %v", got, want)
	}
}

func TestRegIncBetaQuickProperties(t *testing.T) {
	f := func(ra, rb, rx, ry float64) bool {
		a := 0.5 + math.Abs(math.Mod(ra, 20))
		b := 0.5 + math.Abs(math.Mod(rb, 20))
		x := math.Abs(math.Mod(rx, 1))
		y := math.Abs(math.Mod(ry, 1))
		if x > y {
			x, y = y, x
		}
		ix, iy := RegIncBeta(a, b, x), RegIncBeta(a, b, y)
		// In [0,1], monotone nondecreasing in x.
		return ix >= -1e-12 && iy <= 1+1e-12 && ix <= iy+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTCDFKnown(t *testing.T) {
	// With nu → large, TCDF approaches the normal CDF.
	if got, want := TCDF(1.959964, 1e6), 0.975; math.Abs(got-want) > 1e-4 {
		t.Errorf("TCDF(1.96, 1e6) = %v, want ≈%v", got, want)
	}
	// nu=1 is Cauchy: CDF(1) = 3/4.
	if got := TCDF(1, 1); math.Abs(got-0.75) > 1e-10 {
		t.Errorf("TCDF(1,1) = %v, want 0.75", got)
	}
	if got := TCDF(0, 5); got != 0.5 {
		t.Errorf("TCDF(0,5) = %v, want 0.5", got)
	}
}

func TestTQuantileAgainstTables(t *testing.T) {
	// Classic two-sided 95% critical values t_{0.975, nu}.
	cases := []struct{ nu, want float64 }{
		{1, 12.706},
		{2, 4.303},
		{5, 2.571},
		{10, 2.228},
		{30, 2.042},
		{120, 1.980},
	}
	for _, c := range cases {
		got := TQuantile(0.975, c.nu)
		if math.Abs(got-c.want) > 0.002 {
			t.Errorf("t_{0.975,%v} = %v, want %v", c.nu, got, c.want)
		}
	}
}

func TestTQuantileRoundTrip(t *testing.T) {
	f := func(rp, rnu float64) bool {
		p := 0.001 + 0.998*math.Abs(math.Mod(rp, 1))
		nu := 1 + math.Abs(math.Mod(rnu, 200))
		q := TQuantile(p, nu)
		back := TCDF(q, nu)
		return math.Abs(back-p) < 1e-8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTQuantileSymmetry(t *testing.T) {
	for _, p := range []float64{0.6, 0.8, 0.95, 0.999} {
		for _, nu := range []float64{1, 4, 17, 93} {
			if got, want := TQuantile(1-p, nu), -TQuantile(p, nu); math.Abs(got-want) > 1e-9 {
				t.Errorf("TQuantile(%v,%v) = %v, want %v", 1-p, nu, got, want)
			}
		}
	}
}

func TestTQuantileDomain(t *testing.T) {
	for _, p := range []float64{-0.1, 0, 1, 1.1, math.NaN()} {
		if got := TQuantile(p, 5); !math.IsNaN(got) {
			t.Errorf("TQuantile(%v, 5) = %v, want NaN", p, got)
		}
	}
	if got := TQuantile(0.9, 0); !math.IsNaN(got) {
		t.Errorf("TQuantile(0.9, 0) = %v, want NaN", got)
	}
}

func TestNormQuantileKnown(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959964},
		{0.025, -1.959964},
		{0.84134474, 1}, // Φ(1)
		{0.99865010, 3}, // Φ(3)
	}
	for _, c := range cases {
		if got := NormQuantile(c.p); math.Abs(got-c.want) > 1e-6 {
			t.Errorf("NormQuantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestNormQuantileRoundTrip(t *testing.T) {
	f := func(rp float64) bool {
		p := 1e-9 + (1-2e-9)*math.Abs(math.Mod(rp, 1))
		x := NormQuantile(p)
		back := 0.5 * math.Erfc(-x/math.Sqrt2)
		return math.Abs(back-p) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTApproachesNormalForLargeNu(t *testing.T) {
	for _, p := range []float64{0.7, 0.9, 0.975, 0.999} {
		tq := TQuantile(p, 1e7)
		nq := NormQuantile(p)
		if math.Abs(tq-nq) > 1e-3 {
			t.Errorf("t_{%v,1e7} = %v vs normal %v", p, tq, nq)
		}
	}
}
